package dpbench

import (
	"context"
	"math"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/workload"
)

// End-to-end integration tests: the full DPBench pipeline — registry ->
// generator G -> mechanisms -> measurement standards -> interpretation
// standards — on small but real settings. These assert the paper's headline
// findings hold on this implementation, not just that the plumbing works.

func TestEndToEnd1DPipeline(t *testing.T) {
	b := core.NewRangeQueryBenchmark1D(256)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Dataset:     b.Datasets[0],
		Dims:        []int{256},
		Scale:       10_000,
		Eps:         0.1,
		Workload:    b.Workloads[0],
		Algorithms:  b.Algorithms,
		DataSamples: 1,
		Trials:      2,
		Seed:        123,
	}
	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(b.Algorithms) {
		t.Fatalf("%d results for %d algorithms", len(results), len(b.Algorithms))
	}
	comp := core.CompetitiveSet(results, 0.05)
	if len(comp) == 0 {
		t.Fatal("empty competitive set")
	}
}

func TestEndToEnd2DPipeline(t *testing.T) {
	b := core.NewRangeQueryBenchmark2D(16, 50, 5)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Dataset:     b.Datasets[0],
		Dims:        []int{16, 16},
		Scale:       10_000,
		Eps:         0.5,
		Workload:    b.Workloads[0],
		Algorithms:  b.Algorithms,
		DataSamples: 1,
		Trials:      2,
		Seed:        321,
	}
	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.MeanError() <= 0 || math.IsInf(r.MeanError(), 0) {
			t.Fatalf("%s: bad mean error %v", r.Name, r.MeanError())
		}
		if r.P95Error() < r.MeanError()/10 {
			t.Fatalf("%s: p95 %v implausibly below mean %v", r.Name, r.P95Error(), r.MeanError())
		}
	}
}

func TestHeadlineFindingScaleCrossover(t *testing.T) {
	// Findings 1-2 end to end: on a skewed dataset, the best data-dependent
	// algorithm beats Hb at small scale, and Hb beats (almost) all of them
	// at large scale.
	if testing.Short() {
		t.Skip("integration experiment")
	}
	d, err := dataset.ByName("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Prefix(512)
	run := func(scale int) map[string]float64 {
		algos := []algo.Algorithm{
			mustNew(t, "HB"), mustNew(t, "IDENTITY"),
			mustNew(t, "DAWA"), mustNew(t, "AHP*"), mustNew(t, "MWEM*"),
		}
		cfg := core.Config{
			Dataset: d, Dims: []int{512}, Scale: scale, Eps: 0.1,
			Workload: w, Algorithms: algos,
			DataSamples: 2, Trials: 4, Seed: 777,
		}
		results, err := core.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, r := range results {
			out[r.Name] = r.MeanError()
		}
		return out
	}

	small := run(1_000)
	bestDD := math.Min(small["DAWA"], math.Min(small["AHP*"], small["MWEM*"]))
	if bestDD >= small["HB"] {
		t.Errorf("scale 1e3: best data-dependent %v not below HB %v (Finding 1)", bestDD, small["HB"])
	}

	large := run(10_000_000)
	if large["HB"] >= large["MWEM*"] {
		t.Errorf("scale 1e7: HB %v not below MWEM* %v (Finding 2)", large["HB"], large["MWEM*"])
	}
	if large["HB"] >= large["IDENTITY"] {
		t.Errorf("scale 1e7: HB %v not below IDENTITY %v", large["HB"], large["IDENTITY"])
	}
}

func TestHeadlineFindingBaselinesMatter(t *testing.T) {
	// Finding 10 end to end: at large scale MWEM falls behind IDENTITY.
	if testing.Short() {
		t.Skip("integration experiment")
	}
	d, err := dataset.ByName("SEARCH")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Dataset: d, Dims: []int{256}, Scale: 10_000_000, Eps: 0.1,
		Workload:    workload.Prefix(256),
		Algorithms:  []algo.Algorithm{mustNew(t, "IDENTITY"), mustNew(t, "MWEM")},
		DataSamples: 2, Trials: 3, Seed: 888,
	}
	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].MeanError() >= results[1].MeanError() {
		t.Errorf("IDENTITY %v not below MWEM %v at scale 1e7", results[0].MeanError(), results[1].MeanError())
	}
}

func TestSelectorAgreesWithMeasurement(t *testing.T) {
	// The Section 8 selector's high-signal recommendation must actually win
	// a measured comparison at high signal.
	if testing.Short() {
		t.Skip("integration experiment")
	}
	rec, err := core.SelectAlgorithm(0.1, 1e7, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dataset.ByName("INCOME")
	algos := []algo.Algorithm{mustNew(t, rec.Primary), mustNew(t, "MWEM"), mustNew(t, "UNIFORM")}
	cfg := core.Config{
		Dataset: d, Dims: []int{256}, Scale: 1e7, Eps: 0.1,
		Workload: workload.Prefix(256), Algorithms: algos,
		DataSamples: 1, Trials: 3, Seed: 999,
	}
	results, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best := core.BestByMean(results); best != rec.Primary {
		t.Errorf("selector recommended %s but %s won", rec.Primary, best)
	}
}

func mustNew(t *testing.T, name string) algo.Algorithm {
	t.Helper()
	a, err := algo.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
