package dpbench_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dpbench"
	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/workload"
	"dpbench/release"
)

// TestQuickstartPublicPathBitIdentical pins the acceptance criterion of the
// public API redesign: the examples/quickstart cell (MEDCOST, n=1024,
// scale=50k, eps=0.1) run end-to-end through ONLY public packages produces
// output bit-identical to the same cell run via the internal packages. The
// facade promotes the internal types by alias, so any wrapper layer that
// re-derived seeds, copied data, or reordered noise would break this test.
func TestQuickstartPublicPathBitIdentical(t *testing.T) {
	const (
		domain = 1024
		scale  = 50_000
		eps    = 0.1
	)

	// Public path: dpbench + dpbench/release only.
	pubDS, err := dpbench.OpenDataset("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	pubX, err := pubDS.Generate(rand.New(rand.NewSource(1)), scale, domain)
	if err != nil {
		t.Fatal(err)
	}
	pubW := dpbench.Prefix(domain)

	// Internal path: the packages the benchmark itself runs on.
	intDS, err := dataset.ByName("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	intX, err := intDS.Generate(rand.New(rand.NewSource(1)), scale, domain)
	if err != nil {
		t.Fatal(err)
	}
	intW := workload.Prefix(domain)

	for i := range intX.Data {
		if pubX.Data[i] != intX.Data[i] {
			t.Fatalf("generated data diverges at cell %d: %v vs %v", i, pubX.Data[i], intX.Data[i])
		}
	}

	for _, name := range []string{"IDENTITY", "HB", "DAWA"} {
		t.Run(name, func(t *testing.T) {
			m, err := release.New(name)
			if err != nil {
				t.Fatal(err)
			}
			pubEst, err := release.Run(m, pubX, pubW, eps, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}

			a, err := algo.New(name)
			if err != nil {
				t.Fatal(err)
			}
			intEst, err := a.Run(intX, intW, eps, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}

			if len(pubEst) != len(intEst) {
				t.Fatalf("estimate lengths differ: %d vs %d", len(pubEst), len(intEst))
			}
			for i := range intEst {
				if pubEst[i] != intEst[i] {
					t.Fatalf("estimates diverge at cell %d: public %v vs internal %v", i, pubEst[i], intEst[i])
				}
			}
		})
	}
}

// TestFacadeRunMatchesCoreRun pins the runner facade: dpbench.Run over a
// public Config returns results bit-identical to internal/core.Run over the
// equivalent core.Config, serial and parallel, audited and not.
func TestFacadeRunMatchesCoreRun(t *testing.T) {
	ctx := context.Background()
	pubDS, err := dpbench.OpenDataset("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	intDS, err := dataset.ByName("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	pubW, intW := dpbench.Prefix(n), workload.Prefix(n)

	for _, audit := range []bool{false, true} {
		pubCfg := dpbench.Config{
			Dataset: pubDS, Dims: []int{n}, Scale: 10_000, Epsilon: 0.1,
			Workload: pubW, Mechanisms: mustPublic(t, "IDENTITY", "DAWA"),
			DataSamples: 2, Trials: 2, Seed: 11, Audit: audit,
		}
		intCfg := core.Config{
			Dataset: intDS, Dims: []int{n}, Scale: 10_000, Eps: 0.1,
			Workload: intW, Algorithms: mustInternal(t, "IDENTITY", "DAWA"),
			DataSamples: 2, Trials: 2, Seed: 11, Audit: audit,
		}
		pub, err := dpbench.Run(ctx, pubCfg)
		if err != nil {
			t.Fatal(err)
		}
		intr, err := core.Run(ctx, intCfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("Run audit=%v", audit), pub, intr)

		par, err := dpbench.RunParallel(ctx, pubCfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("RunParallel audit=%v", audit), par, intr)
	}
}

// TestFacadeRunHonorsCancellation pins the context plumbing: a cancelled
// context stops a facade run with ctx.Err().
func TestFacadeRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := dpbench.OpenDataset("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpbench.Config{
		Dataset: ds, Dims: []int{64}, Scale: 1000, Epsilon: 0.1,
		Workload: dpbench.Prefix(64), Mechanisms: mustPublic(t, "IDENTITY"),
		DataSamples: 1, Trials: 1, Seed: 1,
	}
	if _, err := dpbench.Run(ctx, cfg); err != context.Canceled {
		t.Errorf("Run on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := dpbench.RunParallel(ctx, cfg, 4); err != context.Canceled {
		t.Errorf("RunParallel on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func assertSameResults(t *testing.T, label string, got, want []dpbench.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("%s: result %d name %q vs %q", label, i, got[i].Name, want[i].Name)
		}
		if len(got[i].Errors) != len(want[i].Errors) {
			t.Fatalf("%s: result %d has %d errors vs %d", label, i, len(got[i].Errors), len(want[i].Errors))
		}
		for j := range want[i].Errors {
			if got[i].Errors[j] != want[i].Errors[j] {
				t.Fatalf("%s: result %d error %d: %v vs %v (must be bit-identical)",
					label, i, j, got[i].Errors[j], want[i].Errors[j])
			}
		}
	}
}

func mustPublic(t *testing.T, names ...string) []dpbench.Mechanism {
	t.Helper()
	out := make([]dpbench.Mechanism, 0, len(names))
	for _, n := range names {
		m, err := release.New(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func mustInternal(t *testing.T, names ...string) []algo.Algorithm {
	t.Helper()
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, err := algo.New(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}
