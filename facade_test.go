package dpbench_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dpbench"
	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/noise"
	"dpbench/internal/workload"
	"dpbench/release"
)

// TestQuickstartPublicPathBitIdentical pins the acceptance criterion of the
// public API redesign: the examples/quickstart cell (MEDCOST, n=1024,
// scale=50k, eps=0.1) run end-to-end through ONLY public packages produces
// output bit-identical to the same cell run via the internal packages. The
// facade promotes the internal types by alias, so any wrapper layer that
// re-derived seeds, copied data, or reordered noise would break this test.
func TestQuickstartPublicPathBitIdentical(t *testing.T) {
	const (
		domain = 1024
		scale  = 50_000
		eps    = 0.1
	)

	// Public path: dpbench + dpbench/release only.
	pubDS, err := dpbench.OpenDataset("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	pubX, err := pubDS.Generate(rand.New(rand.NewSource(1)), scale, domain)
	if err != nil {
		t.Fatal(err)
	}
	pubW := dpbench.Prefix(domain)

	// Internal path: the packages the benchmark itself runs on.
	intDS, err := dataset.ByName("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	intX, err := intDS.Generate(rand.New(rand.NewSource(1)), scale, domain)
	if err != nil {
		t.Fatal(err)
	}
	intW := workload.Prefix(domain)

	for i := range intX.Data {
		if pubX.Data[i] != intX.Data[i] {
			t.Fatalf("generated data diverges at cell %d: %v vs %v", i, pubX.Data[i], intX.Data[i])
		}
	}

	for _, name := range []string{"IDENTITY", "HB", "DAWA"} {
		t.Run(name, func(t *testing.T) {
			m, err := release.New(name)
			if err != nil {
				t.Fatal(err)
			}
			pubEst, err := release.Run(m, pubX, pubW, eps, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}

			a, err := algo.New(name)
			if err != nil {
				t.Fatal(err)
			}
			intEst, err := a.Run(intX, intW, eps, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}

			if len(pubEst) != len(intEst) {
				t.Fatalf("estimate lengths differ: %d vs %d", len(pubEst), len(intEst))
			}
			for i := range intEst {
				if pubEst[i] != intEst[i] {
					t.Fatalf("estimates diverge at cell %d: public %v vs internal %v", i, pubEst[i], intEst[i])
				}
			}
		})
	}
}

// TestFacadeRunMatchesCoreRun pins the runner facade: dpbench.Run over a
// public Config returns results bit-identical to internal/core.Run over the
// equivalent core.Config, serial and parallel, audited and not.
func TestFacadeRunMatchesCoreRun(t *testing.T) {
	ctx := context.Background()
	pubDS, err := dpbench.OpenDataset("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	intDS, err := dataset.ByName("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	pubW, intW := dpbench.Prefix(n), workload.Prefix(n)

	for _, audit := range []bool{false, true} {
		pubCfg := dpbench.Config{
			Dataset: pubDS, Dims: []int{n}, Scale: 10_000, Epsilon: 0.1,
			Workload: pubW, Mechanisms: mustPublic(t, "IDENTITY", "DAWA"),
			DataSamples: 2, Trials: 2, Seed: 11, Audit: audit,
		}
		intCfg := core.Config{
			Dataset: intDS, Dims: []int{n}, Scale: 10_000, Eps: 0.1,
			Workload: intW, Algorithms: mustInternal(t, "IDENTITY", "DAWA"),
			DataSamples: 2, Trials: 2, Seed: 11, Audit: audit,
		}
		pub, err := dpbench.Run(ctx, pubCfg)
		if err != nil {
			t.Fatal(err)
		}
		intr, err := core.Run(ctx, intCfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("Run audit=%v", audit), pub, intr)

		par, err := dpbench.RunParallel(ctx, pubCfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("RunParallel audit=%v", audit), par, intr)
	}
}

// TestFacadeRunHonorsCancellation pins the context plumbing: a cancelled
// context stops a facade run with ctx.Err().
func TestFacadeRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := dpbench.OpenDataset("TRACE")
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpbench.Config{
		Dataset: ds, Dims: []int{64}, Scale: 1000, Epsilon: 0.1,
		Workload: dpbench.Prefix(64), Mechanisms: mustPublic(t, "IDENTITY"),
		DataSamples: 1, Trials: 1, Seed: 1,
	}
	if _, err := dpbench.Run(ctx, cfg); err != context.Canceled {
		t.Errorf("Run on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := dpbench.RunParallel(ctx, cfg, 4); err != context.Canceled {
		t.Errorf("RunParallel on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func assertSameResults(t *testing.T, label string, got, want []dpbench.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("%s: result %d name %q vs %q", label, i, got[i].Name, want[i].Name)
		}
		if len(got[i].Errors) != len(want[i].Errors) {
			t.Fatalf("%s: result %d has %d errors vs %d", label, i, len(got[i].Errors), len(want[i].Errors))
		}
		for j := range want[i].Errors {
			if got[i].Errors[j] != want[i].Errors[j] {
				t.Fatalf("%s: result %d error %d: %v vs %v (must be bit-identical)",
					label, i, j, got[i].Errors[j], want[i].Errors[j])
			}
		}
	}
}

func mustPublic(t *testing.T, names ...string) []dpbench.Mechanism {
	t.Helper()
	out := make([]dpbench.Mechanism, 0, len(names))
	for _, n := range names {
		m, err := release.New(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func mustInternal(t *testing.T, names ...string) []algo.Algorithm {
	t.Helper()
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, err := algo.New(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

// TestWithSamplerFacade pins the public sampler-selection path: a mechanism
// built with release.WithSampler(SamplerFast) runs on exactly the stream the
// internal algo.WithSamplerVersion wrapper draws, composes with other options
// through the unwrap path, audits cleanly, and an unpinned mechanism stays
// bit-identical to the legacy default.
func TestWithSamplerFacade(t *testing.T) {
	ds, err := dpbench.OpenDataset("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	x, err := ds.Generate(rand.New(rand.NewSource(3)), 20_000, 256)
	if err != nil {
		t.Fatal(err)
	}
	w := dpbench.Prefix(256)

	fastPub, err := release.New("MWEM",
		release.WithSampler(release.SamplerFast), release.WithMWEMRounds(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err := release.Run(fastPub, x, w, 0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}

	// Internal path: the same pin applied directly around the algo type.
	ref, err := algo.New("MWEM")
	if err != nil {
		t.Fatal(err)
	}
	ref.(*algo.MWEM).T = 6
	ref.(*algo.MWEM).TFromSignal = nil
	want, err := algo.WithSamplerVersion(ref, noise.SamplerFast).Run(x, w, 0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: facade fast run %v != internal fast run %v (bitwise)", i, got[i], want[i])
		}
	}

	// The fast stream is a different stream than legacy on the same seed.
	legacyPub, err := release.New("MWEM", release.WithMWEMRounds(6))
	if err != nil {
		t.Fatal(err)
	}
	leg, err := release.Run(legacyPub, x, w, 0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range leg {
		if got[i] != leg[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fast and legacy runs drew identical outputs on one seed")
	}

	// Option order must not matter: the sampler pin is applied last either way.
	swapped, err := release.New("MWEM",
		release.WithMWEMRounds(6), release.WithSampler(release.SamplerFast))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := release.Run(swapped, x, w, 0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("cell %d: option order changed the fast stream: %v vs %v", i, got[i], got2[i])
		}
	}

	// A fast-pinned mechanism passes the budget audit like a legacy one.
	if _, err := release.RunAudited(fastPub, x, w, 0.5, rand.New(rand.NewSource(11))); err != nil {
		t.Fatalf("fast-pinned mechanism failed the audit: %v", err)
	}

	// ParseSampler round-trips the CLI spellings and rejects junk; an invalid
	// version fails construction loudly.
	if v, err := release.ParseSampler("fast"); err != nil || v != release.SamplerFast {
		t.Fatalf("ParseSampler(fast) = %v, %v", v, err)
	}
	if v, err := release.ParseSampler(""); err != nil || v != release.SamplerLegacy {
		t.Fatalf("ParseSampler(\"\") = %v, %v", v, err)
	}
	if _, err := release.ParseSampler("warp"); err == nil {
		t.Fatal("ParseSampler must reject unknown names")
	}
	if _, err := release.New("MWEM", release.WithSampler(release.Sampler(42))); err == nil {
		t.Fatal("New must reject an out-of-range sampler version")
	}
}
