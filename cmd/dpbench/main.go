// Command dpbench regenerates the tables and figures of "Principled
// Evaluation of Differentially Private Algorithms using DPBench" (Hay et
// al., SIGMOD 2016) from this repository's from-scratch implementations,
// and serves budget-metered DP range queries over HTTP.
//
// Usage:
//
//	dpbench -experiment fig1a            # quick grid (seconds..minutes)
//	dpbench -experiment tab3b -full      # the paper's full grid (slow)
//	dpbench -experiment all -workers 8   # bound the experiment worker pool
//	dpbench -experiment fig1a -n 1048576 # 1D sweep at a million-bin domain
//	dpbench -list                        # print the mechanism registry
//	dpbench serve -addr :8080 \
//	  -datasets ADULT,TRACE -mechanisms IDENTITY,HB,DAWA -eps 0.05,0.1
//
// The grid runs on a bounded worker pool (default: GOMAXPROCS); output is
// bit-identical for every -workers value, including 1. The -audit flag
// verifies the privacy-budget ledger of every trial without changing any
// output value. Interrupting a long run (Ctrl-C) cancels it cleanly between
// cells. The -cpuprofile and -memprofile flags write pprof profiles
// covering the whole run.
//
// The serve subcommand precompiles one release plan per (dataset,
// mechanism, epsilon) cell and answers range-query workloads over
// HTTP/JSON, charging each request's epsilon to the caller's API-key budget
// and refusing (HTTP 429) any request that would overspend it. With
// -ledger <path> every charge is group-committed to an append-only,
// tamper-evident WAL before noise is drawn: a restart replays the log so
// spent budget survives crashes, /v1/root publishes a Merkle root over the
// committed history, and /v1/proof returns inclusion proofs. On a store
// write failure the server fails closed (503, degraded /healthz). See the
// README's walkthrough.
//
// Experiments: fig1a fig1b fig2a fig2b fig2c tab3a tab3b find6 find7 find8
// find9 find10 regret1d regret2d exch cons all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dpbench/internal/experiments"
	"dpbench/internal/serve"
	"dpbench/release"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "serve" {
		os.Exit(runServe(args[1:]))
	}
	os.Exit(runExperiments(args))
}

// domain1DExperiments are the experiments whose grid honors the -n override;
// the rest are 2D or sweep domains themselves, so a silently ignored -n
// would mislead.
var domain1DExperiments = map[string]bool{
	"fig1a": true, "fig2a": true, "tab3a": true,
	"find6": true, "find7": true, "find9": true,
	"regret1d": true, "all": true,
}

// runExperiments holds the real main so deferred cleanups (profile flushes)
// execute before the process exits with a status code.
func runExperiments(args []string) int {
	fs := flag.NewFlagSet("dpbench", flag.ExitOnError)
	var (
		experiment = fs.String("experiment", "fig1a", "which paper artifact to regenerate (or 'all')")
		full       = fs.Bool("full", false, "run the paper's full grid instead of the quick one")
		seed       = fs.Int64("seed", 20160626, "random seed")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the experiment grid (results are identical for any value)")
		domain1D   = fs.Int("n", 0, "override the 1D domain size (0 = the grid's default; planned mechanisms scale to 2^20 bins)")
		audit      = fs.Bool("audit", false, "verify the privacy-budget ledger after every trial (output is identical; fails fast on any budget-math bug)")
		sampler    = fs.String("sampler", "legacy", "noise-sampler family: legacy (reference, golden-pinned stream) or fast (table-accelerated)")
		list       = fs.Bool("list", false, "print the mechanism registry (name, dims, data dependence, composition) and exit")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	fs.Parse(args)

	if *list {
		printRegistry()
		return 0
	}

	// Validate flag combinations up front with actionable messages rather
	// than silently running something other than what was asked for.
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "-workers must be >= 1, got %d; omit the flag to use all %d cores\n", *workers, runtime.GOMAXPROCS(0))
		return 2
	}
	if *domain1D < 0 {
		fmt.Fprintf(os.Stderr, "-n must be positive, got %d\n", *domain1D)
		return 2
	}
	if *domain1D > 0 && !domain1DExperiments[*experiment] {
		honored := make([]string, 0, len(domain1DExperiments))
		for name := range domain1DExperiments {
			honored = append(honored, name)
		}
		sort.Strings(honored)
		fmt.Fprintf(os.Stderr, "-n only affects 1D-grid experiments (%s); %q would silently ignore it\n",
			strings.Join(honored, " "), *experiment)
		return 2
	}
	if *cpuProfile != "" && *cpuProfile == *memProfile {
		fmt.Fprintf(os.Stderr, "-cpuprofile and -memprofile point at the same file %q; the second write would clobber the first\n", *cpuProfile)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush pending frees so the heap profile is settled
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	samplerV, err := release.ParseSampler(*sampler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-sampler: %v\n", err)
		return 2
	}

	// Ctrl-C cancels the grid between cells instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiments.Options{Out: os.Stdout, Quick: !*full, Seed: *seed, Workers: *workers, Audit: *audit, Domain1D: *domain1D, Sampler: samplerV, Ctx: ctx}

	runners := map[string]func() error{
		"fig1a":    func() error { _, err := experiments.Fig1a(opt); return err },
		"fig1b":    func() error { _, err := experiments.Fig1b(opt); return err },
		"fig2a":    func() error { return experiments.Fig2a(opt) },
		"fig2b":    func() error { return experiments.Fig2b(opt) },
		"fig2c":    func() error { return experiments.Fig2c(opt) },
		"tab3a":    func() error { _, err := experiments.Table3(opt, false); return err },
		"tab3b":    func() error { _, err := experiments.Table3(opt, true); return err },
		"find6":    func() error { _, err := experiments.Finding6(opt); return err },
		"find7":    func() error { _, err := experiments.Finding7(opt); return err },
		"find8":    func() error { _, err := experiments.Finding8(opt); return err },
		"find9":    func() error { _, err := experiments.Finding9(opt); return err },
		"find10":   func() error { return experiments.Finding10(opt) },
		"regret1d": func() error { _, err := experiments.Regret(opt, false); return err },
		"regret2d": func() error { _, err := experiments.Regret(opt, true); return err },
		"exch":     func() error { return experiments.Exchangeability(opt) },
		"cons":     func() error { return experiments.Consistency(opt) },
	}
	order := []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "tab3a", "tab3b",
		"find6", "find7", "find8", "find9", "find10", "regret1d", "regret2d", "exch", "cons"}

	var names []string
	if *experiment == "all" {
		names = order
	} else if _, ok := runners[*experiment]; ok {
		names = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or 'all'\n", *experiment, order)
		return 2
	}

	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := runners[name](); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
				return 130
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		fmt.Printf("(%s completed in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// printRegistry renders the public mechanism registry (dpbench -list).
func printRegistry() {
	fmt.Printf("%-10s %-6s %-16s %s\n", "MECHANISM", "DIMS", "DATA-DEPENDENT", "COMPOSITION")
	for _, info := range release.List() {
		dims := make([]string, len(info.Dims))
		for i, d := range info.Dims {
			dims[i] = strconv.Itoa(d) + "D"
		}
		dep := "no"
		if info.DataDependent {
			dep = "yes"
		}
		fmt.Printf("%-10s %-6s %-16s %s\n", info.Name, strings.Join(dims, ","), dep, info.Composition)
	}
}

// runServe starts the budget-metered DP query service (dpbench serve).
func runServe(args []string) int {
	fs := flag.NewFlagSet("dpbench serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		datasets    = fs.String("datasets", "ADULT", "comma-separated benchmark datasets to register")
		mechs       = fs.String("mechanisms", "IDENTITY,HB,DAWA", "comma-separated mechanisms to precompile")
		epsList     = fs.String("eps", "0.05,0.1", "comma-separated per-query privacy budgets")
		domain1D    = fs.Int("domain", 1024, "1D domain size")
		side2D      = fs.Int("side", 64, "2D grid side")
		scale       = fs.Int("scale", 100_000, "tuples drawn per dataset")
		seed        = fs.Int64("seed", 20160626, "data-generator seed (noise streams are crypto-seeded)")
		keyBudget   = fs.Float64("key-budget", 1.0, "total epsilon each API key may spend")
		totalBudget = fs.Float64("total-budget", 0, "total epsilon spendable per dataset across all keys (0 = 10x key-budget)")
		allowSeeded = fs.Bool("allow-seeded-queries", false, "accept client-pinned noise seeds (test/replay only: seeded releases are denoisable)")
		sampler     = fs.String("sampler", "legacy", "noise-sampler family: legacy (reference) or fast (table-accelerated)")
		ledgerPath  = fs.String("ledger", "", "path of the durable budget ledger WAL; empty keeps accounting in-memory")
		audit       = fs.Bool("audit", false, "retain full per-spend accountant history (memory grows per request; off keeps O(1) totals)")
	)
	fs.Parse(args)

	epsilons, err := parseFloats(*epsList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-eps: %v\n", err)
		return 2
	}
	samplerV, err := release.ParseSampler(*sampler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-sampler: %v\n", err)
		return 2
	}
	srv, err := serve.New(serve.Config{
		Datasets:           splitCSV(*datasets),
		Mechanisms:         splitCSV(*mechs),
		Epsilons:           epsilons,
		Domain1D:           *domain1D,
		Side2D:             *side2D,
		Scale:              *scale,
		Seed:               *seed,
		KeyBudget:          *keyBudget,
		TotalBudget:        *totalBudget,
		AllowSeededQueries: *allowSeeded,
		Sampler:            samplerV,
		LedgerPath:         *ledgerPath,
		Audit:              *audit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	defer srv.Close()
	if records, truncated, ok := srv.RecoveryInfo(); ok {
		fmt.Printf("serve: ledger %s recovered %d committed spend(s)", *ledgerPath, records)
		if truncated > 0 {
			fmt.Printf(", discarded %d torn-tail byte(s)", truncated)
		}
		fmt.Println()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dpbench serve: listening on %s (datasets=%s mechanisms=%s eps=%s key-budget=%g)\n",
		*addr, *datasets, *mechs, *epsList, *keyBudget)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
			return 1
		}
		fmt.Println("serve: drained and stopped")
		return 0
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitCSV(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
