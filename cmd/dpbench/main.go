// Command dpbench regenerates the tables and figures of "Principled
// Evaluation of Differentially Private Algorithms using DPBench" (Hay et
// al., SIGMOD 2016) from this repository's from-scratch implementations.
//
// Usage:
//
//	dpbench -experiment fig1a            # quick grid (seconds..minutes)
//	dpbench -experiment tab3b -full      # the paper's full grid (slow)
//	dpbench -experiment all -workers 8   # bound the experiment worker pool
//	dpbench -experiment fig1a -n 1048576 # 1D sweep at a million-bin domain
//	dpbench -experiment all -cpuprofile cpu.prof -memprofile mem.prof
//
// The grid runs on a bounded worker pool (default: GOMAXPROCS); output is
// bit-identical for every -workers value, including 1. The -audit flag
// verifies the privacy-budget ledger of every trial (spends sum to exactly
// eps and match the mechanism's declared composition plan) without changing
// any output value. The -cpuprofile and -memprofile flags write pprof
// profiles covering the whole run, so performance work on the grid can be
// driven by evidence (go tool pprof cpu.prof).
//
// Experiments: fig1a fig1b fig2a fig2b fig2c tab3a tab3b find6 find7 find8
// find9 find10 regret1d regret2d exch cons all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanups (profile flushes) execute
// before the process exits with a status code.
func run() int {
	var (
		experiment = flag.String("experiment", "fig1a", "which paper artifact to regenerate (or 'all')")
		full       = flag.Bool("full", false, "run the paper's full grid instead of the quick one")
		seed       = flag.Int64("seed", 20160626, "random seed")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the experiment grid (results are identical for any value)")
		domain1D   = flag.Int("n", 0, "override the 1D domain size (0 = the grid's default; planned mechanisms scale to 2^20 bins)")
		audit      = flag.Bool("audit", false, "verify the privacy-budget ledger after every trial (output is identical; fails fast on any budget-math bug)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush pending frees so the heap profile is settled
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opt := experiments.Options{Out: os.Stdout, Quick: !*full, Seed: *seed, Workers: *workers, Audit: *audit, Domain1D: *domain1D}

	runners := map[string]func() error{
		"fig1a":    func() error { _, err := experiments.Fig1a(opt); return err },
		"fig1b":    func() error { _, err := experiments.Fig1b(opt); return err },
		"fig2a":    func() error { return experiments.Fig2a(opt) },
		"fig2b":    func() error { return experiments.Fig2b(opt) },
		"fig2c":    func() error { return experiments.Fig2c(opt) },
		"tab3a":    func() error { _, err := experiments.Table3(opt, false); return err },
		"tab3b":    func() error { _, err := experiments.Table3(opt, true); return err },
		"find6":    func() error { _, err := experiments.Finding6(opt); return err },
		"find7":    func() error { _, err := experiments.Finding7(opt); return err },
		"find8":    func() error { _, err := experiments.Finding8(opt); return err },
		"find9":    func() error { _, err := experiments.Finding9(opt); return err },
		"find10":   func() error { return experiments.Finding10(opt) },
		"regret1d": func() error { _, err := experiments.Regret(opt, false); return err },
		"regret2d": func() error { _, err := experiments.Regret(opt, true); return err },
		"exch":     func() error { return experiments.Exchangeability(opt) },
		"cons":     func() error { return experiments.Consistency(opt) },
	}
	order := []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "tab3a", "tab3b",
		"find6", "find7", "find8", "find9", "find10", "regret1d", "regret2d", "exch", "cons"}

	var names []string
	if *experiment == "all" {
		names = order
	} else if _, ok := runners[*experiment]; ok {
		names = []string{*experiment}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or 'all'\n", *experiment, order)
		return 2
	}

	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		fmt.Printf("(%s completed in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
