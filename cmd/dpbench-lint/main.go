// Command dpbench-lint runs the dpbench static-analysis suite: the eight
// analyzers under internal/analysis that enforce the privacy-budget and
// determinism invariants at compile time (see internal/analysis/doc.go).
//
// Two modes:
//
//	dpbench-lint [packages]       standalone; defaults to ./...
//	go vet -vettool=$(which dpbench-lint) ./...
//
// The second form speaks the go vet driver protocol (-V=full, -flags, and a
// single *.cfg argument per package), which lets the go command schedule the
// analyzers per package with caching. Exit status: 0 clean, 1 operational
// error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/allocfree"
	"dpbench/internal/analysis/budgetlabel"
	"dpbench/internal/analysis/determinism"
	"dpbench/internal/analysis/driver"
	"dpbench/internal/analysis/epsflow"
	"dpbench/internal/analysis/internalboundary"
	"dpbench/internal/analysis/load"
	"dpbench/internal/analysis/noisegate"
	"dpbench/internal/analysis/privtaint"
	"dpbench/internal/analysis/subclose"
)

var analyzers = []*analysis.Analyzer{
	noisegate.Analyzer,
	budgetlabel.Analyzer,
	subclose.Analyzer,
	determinism.Analyzer,
	internalboundary.Analyzer,
	privtaint.Analyzer,
	allocfree.Analyzer,
	epsflow.Analyzer,
}

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print tool flags as JSON and exit (go vet protocol)")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		// No tool-specific flags; go vet wants a JSON array either way.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: dpbench-lint [packages]
       go vet -vettool=$(which dpbench-lint) [packages]

Runs the dpbench invariant analyzers:
`)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-17s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full handshake: the go command keys its vet
// result cache on this line, so it must change whenever the binary does —
// hashing the executable guarantees that.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// standalone loads the given patterns (default ./...) with go list and runs
// every analyzer over every module package.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.Meta.ImportPath, terr)
			exit = 1
		}
		if len(pkg.TypeErrs) > 0 {
			continue
		}
		findings, err := driver.Analyze(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

// vetConfig is the JSON the go command writes per package when invoking a
// -vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package described by a go vet .cfg file.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dpbench-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// These analyzers exchange no facts, but the go command still expects the
	// output file to exist before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants these analyzers enforce are about shipped code; tests
	// legitimately reach into internals and draw raw randomness, so test
	// package variants (any unit containing a _test.go file) are skipped —
	// matching standalone mode, where go list never surfaces test files.
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("dpbench-lint: no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	pkg, err := load.LoadFilesLookup(lookup, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(pkg.TypeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, terr)
		}
		return 1
	}
	findings, err := driver.Analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
