// Package privacy is the public face of dpbench's privacy-budget machinery:
// the Accountant (a composition-aware budget ledger), the Meter (a
// budget-metered noise source every mechanism draws through), and the
// sentinel errors callers match with errors.Is to handle budget exhaustion
// and composition violations programmatically.
//
// Every error produced inside a mechanism run wraps these sentinels with %w,
// so the chain survives all the way out of release.RunAudited, dpbench.Run,
// and the dpbench serve HTTP layer (which maps ErrBudgetExhausted to a
// 429-style response):
//
//	if errors.Is(err, privacy.ErrBudgetExhausted) {
//		// the caller's epsilon is spent; no more queries on this budget
//	}
//
// The types are aliases of the internal implementations, so a Meter obtained
// here is exactly the meter the mechanisms and the audit machinery use —
// there is no wrapper layer that could drift out of sync.
package privacy

import (
	"math/rand"

	"dpbench/internal/noise"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrBudgetExhausted marks a spend that would exceed an accountant's
	// total privacy budget. The serving layer maps it to HTTP 429.
	ErrBudgetExhausted = noise.ErrBudgetExhausted
	// ErrCompositionViolation marks a budget-ledger audit failure: a spend
	// under an undeclared label, or per-trial spends that do not sum to the
	// trial's epsilon (both over- and under-spend violate the mechanism's
	// declared composition).
	ErrCompositionViolation = noise.ErrCompositionViolation
)

// Accountant tracks a privacy budget under sequential and parallel
// composition. Spend consumes budget for a sequentially composed subroutine;
// SpendParallel charges a family of spends over disjoint data partitions by
// their running maximum. Once the total is exhausted, every further spend
// fails with an error wrapping ErrBudgetExhausted.
type Accountant = noise.Accountant

// Spend is one recorded budget expenditure in an Accountant's ledger.
type Spend = noise.Spend

// Meter is a privacy-metered noise source: an RNG paired with a total budget
// and (optionally) an Accountant charged on every draw. Mechanism plans
// consume one per trial via Plan.Execute.
type Meter = noise.Meter

// Plan declares the ledger labels a mechanism may emit and how each
// composes; the audit rejects any spend outside it.
type Plan = noise.Plan

// PlanEntry is one declared ledger label of a Plan.
type PlanEntry = noise.PlanEntry

// SpendKind classifies how spends under one ledger label compose.
type SpendKind = noise.SpendKind

// Composition kinds for PlanEntry.
const (
	// Sequential spends add up (sequential composition).
	Sequential = noise.Sequential
	// Parallel spends on disjoint partitions count their maximum once.
	Parallel = noise.Parallel
)

// NewAccountant returns an accountant for the given total budget. The
// dpbench serve layer keeps one per API key.
func NewAccountant(total float64) (*Accountant, error) { return noise.NewAccountant(total) }

// NewMeter returns an unaudited meter: draws pass through to the noise
// primitives and budget charges are no-ops, which is the allocation-free
// serving/benchmark hot path.
func NewMeter(eps float64, rng *rand.Rand) *Meter { return noise.NewMeter(eps, rng) }

// NewAuditedMeter returns a meter whose every charge is recorded in a
// ledger, for callers that want to verify a mechanism's budget arithmetic
// with Meter.Audit. Call Release when done to return the pooled ledger.
func NewAuditedMeter(eps float64, rng *rand.Rand) (*Meter, error) {
	return noise.NewAuditedMeter(eps, rng)
}

// VerifyPlan checks every ledger entry against a declared composition plan,
// returning an error wrapping ErrCompositionViolation on the first spend the
// plan does not cover.
func VerifyPlan(ledger []Spend, plan Plan) error { return noise.VerifyPlan(ledger, plan) }
