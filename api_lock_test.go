package dpbench_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAPILock is the compatibility tripwire for the public surface: the
// exported identifiers of dpbench, dpbench/release and dpbench/privacy are
// pinned to testdata/api_lock.golden, so an accidental addition, rename or
// removal fails CI instead of silently shipping. Intentional surface
// changes regenerate the golden with:
//
//	UPDATE_API_LOCK=1 go test -run TestAPILock .
//
// and the diff then documents the API change in review.
func TestAPILock(t *testing.T) {
	var b strings.Builder
	for _, pkg := range []struct{ name, dir string }{
		{"dpbench", "."},
		{"dpbench/privacy", "privacy"},
		{"dpbench/release", "release"},
	} {
		fmt.Fprintf(&b, "package %s\n", pkg.name)
		for _, id := range exportedSurface(t, pkg.dir) {
			fmt.Fprintf(&b, "  %s\n", id)
		}
	}
	got := b.String()

	const goldenPath = "testdata/api_lock.golden"
	if os.Getenv("UPDATE_API_LOCK") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading the API lock (run UPDATE_API_LOCK=1 go test -run TestAPILock . to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed.\nIf intentional, regenerate with UPDATE_API_LOCK=1 go test -run TestAPILock .\n%s", surfaceDiff(string(want), got))
	}
}

// exportedSurface parses one package directory (tests excluded) and returns
// its exported declarations, one line each, sorted: "func F", "type T",
// "method (T) M", "var V", "const C", and "field T.F" for exported struct
// fields of exported types.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	var out []string
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv == nil {
						add("func %s", d.Name.Name)
						continue
					}
					recv := receiverType(d.Recv.List[0].Type)
					if recv == "" || !ast.IsExported(recv) {
						continue
					}
					add("method (%s) %s", recv, d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							add("type %s", s.Name.Name)
							if st, ok := s.Type.(*ast.StructType); ok {
								for _, fld := range st.Fields.List {
									for _, n := range fld.Names {
										if n.IsExported() {
											add("field %s.%s", s.Name.Name, n.Name)
										}
									}
								}
							}
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, n := range s.Names {
								if n.IsExported() {
									add("%s %s", kind, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func receiverType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverType(t.X)
	default:
		return ""
	}
}

// surfaceDiff renders a line-level diff of the two surfaces, enough to see
// what appeared or vanished without a diff library. Identifier lines are
// qualified by their enclosing "package ..." header before comparison, so a
// symbol removed from one package still shows up even when another package
// exports the same name (the facade re-exports several release/privacy
// names).
func surfaceDiff(want, got string) string {
	qualify := func(s string) []string {
		var out []string
		pkg := ""
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "package ") {
				pkg = strings.TrimPrefix(l, "package ")
				continue
			}
			if strings.TrimSpace(l) != "" {
				out = append(out, pkg+": "+strings.TrimSpace(l))
			}
		}
		return out
	}
	wantLines, gotLines := qualify(want), qualify(got)
	toSet := func(ls []string) map[string]bool {
		m := make(map[string]bool, len(ls))
		for _, l := range ls {
			m[l] = true
		}
		return m
	}
	wantSet, gotSet := toSet(wantLines), toSet(gotLines)
	var b strings.Builder
	for _, l := range gotLines {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	return b.String()
}
