package dpbench

import (
	"fmt"
	"math/rand"

	"dpbench/internal/dataset"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
	"dpbench/privacy"
	"dpbench/release"
)

// The facade nouns. Histogram, Workload, Mechanism and Plan alias the types
// declared in dpbench/release, and Meter aliases dpbench/privacy's, so every
// layer of the public API — and the internal implementation underneath —
// exchanges identical types with no conversions.

// Histogram is a non-negative count vector over a 1D or 2D domain: the
// private input x a mechanism releases an estimate of. Data holds the counts
// in row-major order; Dims the domain shape.
type Histogram = release.Histogram

// Workload is a set of inclusive axis-aligned range queries over a fixed
// domain — the analyst's question set W.
type Workload = release.Workload

// Mechanism is a differentially private data-release mechanism from the
// dpbench/release registry.
type Mechanism = release.Mechanism

// Plan is a prepared, concurrency-safe release plan bound to one
// (histogram, workload, epsilon) cell; see release.NewPlan.
type Plan = release.Plan

// Meter is the budget-metered noise source one trial executes against; see
// privacy.NewMeter.
type Meter = privacy.Meter

// NewHistogram builds a histogram from row-major counts over the given
// domain (one dim for 1D, two for 2D). The product of dims must equal
// len(counts); the data is copied.
func NewHistogram(counts []float64, dims ...int) (*Histogram, error) {
	c := append([]float64(nil), counts...)
	return vec.FromData(c, dims...)
}

// NewWorkload returns an empty named workload over the given domain; grow it
// with AddRange (1D) or AddRect (2D).
func NewWorkload(name string, dims ...int) *Workload {
	return &workload.Workload{Name: name, Dims: append([]int(nil), dims...)}
}

// Prefix returns the 1D Prefix workload over domain size n: queries [0, i]
// for every i. Any 1D range query is a difference of two prefix queries,
// which is why the paper uses it as the canonical 1D workload.
func Prefix(n int) *Workload { return workload.Prefix(n) }

// Identity returns the workload of n point queries over a 1D domain.
func Identity(n int) *Workload { return workload.Identity(n) }

// AllRange returns all n*(n+1)/2 range queries over a 1D domain (intended
// for small n).
func AllRange(n int) *Workload { return workload.AllRange(n) }

// RandomRange returns q uniformly random 1D range queries over domain n.
func RandomRange(n, q int, rng *rand.Rand) *Workload { return workload.RandomRange(n, q, rng) }

// RandomRange2D returns q uniformly random rectangle queries over an
// nx x ny grid, the paper's 2D workload.
func RandomRange2D(nx, ny, q int, rng *rand.Rand) *Workload {
	return workload.RandomRange2D(nx, ny, q, rng)
}

// Dataset is one of the benchmark's 27 source datasets (Table 2 of the
// paper): a deterministic shape plus the DPBench generator G that resamples
// it at any requested scale and domain size.
type Dataset struct {
	d dataset.Dataset
}

// OpenDataset returns the named benchmark dataset, e.g. "ADULT" (1D) or
// "GOWALLA" (2D).
func OpenDataset(name string) (Dataset, error) {
	d, err := dataset.ByName(name)
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{d: d}, nil
}

// Datasets1D returns the 18 one-dimensional benchmark datasets.
func Datasets1D() []Dataset { return wrapDatasets(dataset.Registry1D()) }

// Datasets2D returns the 9 two-dimensional benchmark datasets.
func Datasets2D() []Dataset { return wrapDatasets(dataset.Registry2D()) }

func wrapDatasets(ds []dataset.Dataset) []Dataset {
	out := make([]Dataset, len(ds))
	for i, d := range ds {
		out[i] = Dataset{d: d}
	}
	return out
}

// Name returns the paper's dataset identifier.
func (d Dataset) Name() string { return d.d.Name }

// Dim returns the dataset's dimensionality (1 or 2).
func (d Dataset) Dim() int { return d.d.Dim }

// OriginalScale returns the source dataset's tuple count from Table 2.
func (d Dataset) OriginalScale() float64 { return d.d.OriginalScale }

// Shape returns the dataset's normalized shape vector (sums to 1) coarsened
// to the requested domain; dims must evenly divide the maximum domain
// (4096 for 1D, 256x256 for 2D).
func (d Dataset) Shape(dims ...int) (*Histogram, error) { return d.d.Shape(dims...) }

// Generate is the DPBench data generator G: it resamples the dataset's
// shape on the requested domain, drawing scale tuples with replacement on
// the given RNG stream, and returns a histogram with integral counts
// summing exactly to scale.
func (d Dataset) Generate(rng *rand.Rand, scale int, dims ...int) (*Histogram, error) {
	if rng == nil {
		return nil, fmt.Errorf("dpbench: Generate needs a non-nil rng (seed one with rand.New)")
	}
	return d.d.Generate(rng, scale, dims...)
}
