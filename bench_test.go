package dpbench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/core"
	"dpbench/internal/dataset"
	"dpbench/internal/experiments"
	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// benchOptions trims the experiment grids to benchmark-friendly sizes while
// exercising exactly the code paths of the paper's artifacts. Run the CLI
// (cmd/dpbench) for presentation-quality grids.
func benchOptions() experiments.Options {
	return experiments.Options{Out: io.Discard, Quick: true, Seed: 20160626}
}

// BenchmarkFig1a regenerates Figure 1a (1D error vs scale, Prefix workload).
func BenchmarkFig1a(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1a(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1b regenerates Figure 1b (2D error vs scale, random ranges).
func BenchmarkFig1b(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a regenerates Figure 2a (1D error by shape at small scale).
func BenchmarkFig2a(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2a(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2b regenerates Figure 2b (2D error by shape).
func BenchmarkFig2b(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2c regenerates Figure 2c (2D error vs domain size).
func BenchmarkFig2c(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2c(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3a regenerates Table 3a (1D competitive counts).
func BenchmarkTable3a(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(opt, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3b regenerates Table 3b (2D competitive counts).
func BenchmarkTable3b(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(opt, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinding6 regenerates the parameter-sensitivity study.
func BenchmarkFinding6(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Finding6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinding7 regenerates the MWEM/MWEM* ratio table.
func BenchmarkFinding7(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Finding7(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinding8 regenerates the mean-vs-p95 winner-flip study.
func BenchmarkFinding8(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Finding8(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinding9 regenerates the bias/variance decomposition.
func BenchmarkFinding9(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Finding9(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinding10 regenerates the baseline comparison.
func BenchmarkFinding10(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Finding10(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegret regenerates the Section 7.2 regret measure (1D).
func BenchmarkRegret(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Regret(opt, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeability runs the Definition 4 check across the roster.
func BenchmarkExchangeability(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Exchangeability(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsistency runs the Definition 5 sweep across the roster.
func BenchmarkConsistency(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if err := experiments.Consistency(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serial vs parallel experiment runner (the determinism guarantee makes
// these directly comparable: both produce bit-identical results) ---

func runnerBenchConfig(b *testing.B) core.Config {
	d, err := dataset.ByName("MEDCOST")
	if err != nil {
		b.Fatal(err)
	}
	mk := func(name string) algo.Algorithm {
		a, err := algo.New(name)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	return core.Config{
		Dataset:     d,
		Dims:        []int{1024},
		Scale:       100_000,
		Eps:         0.1,
		Workload:    workload.Prefix(1024),
		Algorithms:  []algo.Algorithm{mk("HB"), mk("DAWA"), mk("MWEM"), mk("EFPA")},
		DataSamples: 2,
		Trials:      3,
		Seed:        20160626,
	}
}

// BenchmarkRunSerial measures one experimental setting on the serial runner.
func BenchmarkRunSerial(b *testing.B) {
	cfg := runnerBenchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunParallel measures the identical setting on the worker pool at
// several widths; compare against BenchmarkRunSerial for the speedup.
func BenchmarkRunParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := runnerBenchConfig(b)
			for i := 0; i < b.N; i++ {
				if _, err := core.RunParallel(context.Background(), cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepSerial runs the Figure 1a grid sweep on a single worker.
func BenchmarkSweepSerial(b *testing.B) {
	opt := benchOptions()
	opt.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1aData(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerialFast runs the Figure 1a grid sweep on a single worker
// with the fast sampler — the ROADMAP item 2 configuration (-sampler=fast).
func BenchmarkSweepSerialFast(b *testing.B) {
	opt := benchOptions()
	opt.Workers = 1
	opt.Sampler = noise.SamplerFast
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1aData(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel4 runs the identical grid sweep with -workers=4; the
// acceptance target is >1.5x over BenchmarkSweepSerial on a multi-core box.
func BenchmarkSweepParallel4(b *testing.B) {
	opt := benchOptions()
	opt.Workers = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1aData(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-algorithm microbenchmarks (runtime of one release at the paper's
// full 1D domain) ---

func benchAlgorithm1D(b *testing.B, name string) {
	d, err := dataset.ByName("SEARCH")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, err := d.Generate(rng, 100_000, 4096)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Prefix(4096)
	a, err := algo.New(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(x, w, 0.1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAlgorithm1DFast is benchAlgorithm1D with the mechanism pinned to the
// fast sampler via algo.WithSamplerVersion — the exp-mech-heavy mechanisms
// (MWEM, PHP, AHP, SF) are the ones the Gumbel-max top-1 path targets.
func benchAlgorithm1DFast(b *testing.B, name string) {
	d, err := dataset.ByName("SEARCH")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, err := d.Generate(rng, 100_000, 4096)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Prefix(4096)
	a, err := algo.New(name)
	if err != nil {
		b.Fatal(err)
	}
	a = algo.WithSamplerVersion(a, noise.SamplerFast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(x, w, 0.1, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoIdentity(b *testing.B) { benchAlgorithm1D(b, "IDENTITY") }
func BenchmarkAlgoHB(b *testing.B)       { benchAlgorithm1D(b, "HB") }
func BenchmarkAlgoPrivelet(b *testing.B) { benchAlgorithm1D(b, "PRIVELET") }
func BenchmarkAlgoDAWA(b *testing.B)     { benchAlgorithm1D(b, "DAWA") }
func BenchmarkAlgoMWEM(b *testing.B)     { benchAlgorithm1D(b, "MWEM") }
func BenchmarkAlgoEFPA(b *testing.B)     { benchAlgorithm1D(b, "EFPA") }
func BenchmarkAlgoSF(b *testing.B)       { benchAlgorithm1D(b, "SF") }
func BenchmarkAlgoAHP(b *testing.B)      { benchAlgorithm1D(b, "AHP") }
func BenchmarkAlgoPHP(b *testing.B)      { benchAlgorithm1D(b, "PHP") }

func BenchmarkAlgoMWEMFast(b *testing.B) { benchAlgorithm1DFast(b, "MWEM") }
func BenchmarkAlgoPHPFast(b *testing.B)  { benchAlgorithm1DFast(b, "PHP") }
func BenchmarkAlgoAHPFast(b *testing.B)  { benchAlgorithm1DFast(b, "AHP") }
func BenchmarkAlgoSFFast(b *testing.B)   { benchAlgorithm1DFast(b, "SF") }

// --- Plan/Execute amortization benchmarks ---

// BenchmarkPlanExecute measures ONE trial through a prepared plan (structure
// building amortized away), next to BenchmarkAlgo* which pays Plan+Execute
// per Run. The gap is what the experiment runner saves on every trial after
// the first.
func BenchmarkPlanExecute(b *testing.B) {
	d, err := dataset.ByName("SEARCH")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, err := d.Generate(rng, 100_000, 4096)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Prefix(4096)
	for _, name := range []string{"IDENTITY", "HB", "PRIVELET", "DAWA", "MWEM", "EFPA", "SF", "AHP", "PHP"} {
		name := name
		b.Run(name, func(b *testing.B) {
			a, err := algo.New(name)
			if err != nil {
				b.Fatal(err)
			}
			p, err := a.Plan(x, w, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, x.N())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Execute(noise.NewMeter(0.1, rng), out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeDomain executes prepared plans for the data-independent
// mechanisms on domains up to 2^20 bins — the scaling regime the Plan split
// opens up: the million-node structures are built once (and cached
// process-wide), so each trial costs only its noise draws and inference.
func BenchmarkLargeDomain(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i % 23)
		}
		x, err := vec.FromData(data, n)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"IDENTITY", "H", "HB", "PRIVELET"} {
			name := name
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				a, err := algo.New(name)
				if err != nil {
					b.Fatal(err)
				}
				p, err := a.Plan(x, nil, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(2))
				out := make([]float64, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := p.Execute(noise.NewMeter(0.1, rng), out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationConsistency compares hierarchical estimation with and
// without the least-squares consistency pass: it reports the mean squared
// error of the root (total-count) query under both estimators.
func BenchmarkAblationConsistency(b *testing.B) {
	const n, eps = 1024, 0.1
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i % 11)
	}
	var trueTotal float64
	for _, v := range data {
		trueTotal += v
	}
	rng := rand.New(rand.NewSource(9))
	var withSE, withoutSE float64
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, err := tree.BuildInterval(n, 2)
		if err != nil {
			b.Fatal(err)
		}
		root.Measure(noise.NewMeter(eps, rng), data, tree.UniformLevelBudget(eps, root.Height()))
		est := root.Infer(n)
		var total float64
		for _, v := range est {
			total += v
		}
		withSE += (total - trueTotal) * (total - trueTotal)

		// Without consistency: leaves only (identity-equivalent answer).
		flatRoot, _ := tree.BuildInterval(n, 2)
		budget := make([]float64, flatRoot.Height())
		budget[len(budget)-1] = eps // all budget on leaves, no hierarchy
		flatRoot.Measure(noise.NewMeter(eps, rng), data, budget)
		flatEst := flatRoot.Infer(n)
		var ftotal float64
		for _, v := range flatEst {
			ftotal += v
		}
		withoutSE += (ftotal - trueTotal) * (ftotal - trueTotal)
		trials++
	}
	if trials > 0 {
		b.ReportMetric(withSE/float64(trials), "mse-with-consistency")
		b.ReportMetric(withoutSE/float64(trials), "mse-leaves-only")
	}
}

// BenchmarkAblationDawaPartition compares DAWA's dyadic-restricted partition
// DP against the unrestricted O(n^2) variant on a small domain.
func BenchmarkAblationDawaPartition(b *testing.B) {
	d1, _ := algo.New("DAWA")
	d2 := &algo.DAWA{Rho: 0.25, B: 2, NoDyadicRestriction: true}
	ds, _ := dataset.ByName("TRACE")
	rng := rand.New(rand.NewSource(3))
	x, err := ds.Generate(rng, 10_000, 256)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Prefix(256)
	b.Run("dyadic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d1.Run(x, w, 0.1, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unrestricted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d2.Run(x, w, 0.1, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBudgetSplit sweeps the two-stage budget split rho for
// DAWA and reports the scaled error at each setting.
func BenchmarkAblationBudgetSplit(b *testing.B) {
	ds, _ := dataset.ByName("MEDCOST")
	rng := rand.New(rand.NewSource(5))
	x, err := ds.Generate(rng, 100_000, 512)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Prefix(512)
	trueAns, err := w.Evaluate(x)
	if err != nil {
		b.Fatal(err)
	}
	for _, rho := range []float64{0.1, 0.25, 0.5, 0.75} {
		rho := rho
		b.Run(ratioName(rho), func(b *testing.B) {
			a := &algo.DAWA{Rho: rho, B: 2}
			var errSum float64
			for i := 0; i < b.N; i++ {
				est, err := a.Run(x, w, 0.1, rng)
				if err != nil {
					b.Fatal(err)
				}
				estAns := w.EvaluateFlat(est)
				errSum += core.ScaledError(core.L2Loss(estAns, trueAns), x.Scale(), w.Size())
			}
			b.ReportMetric(errSum/float64(b.N)*1e6, "scaled-err-x1e6")
		})
	}
}

func ratioName(rho float64) string {
	switch rho {
	case 0.1:
		return "rho=0.10"
	case 0.25:
		return "rho=0.25"
	case 0.5:
		return "rho=0.50"
	default:
		return "rho=0.75"
	}
}

// BenchmarkAblationHilbert compares Hilbert against row-major linearization
// for DAWA on clustered 2D data, reporting scaled error: the Hilbert curve's
// locality should yield cheaper partitions.
func BenchmarkAblationHilbert(b *testing.B) {
	ds, _ := dataset.ByName("GOWALLA")
	rng := rand.New(rand.NewSource(11))
	x, err := ds.Generate(rng, 100_000, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.RandomRange2D(32, 32, 200, rand.New(rand.NewSource(12)))
	trueAns, err := w.Evaluate(x)
	if err != nil {
		b.Fatal(err)
	}
	dawa, _ := algo.New("DAWA")
	b.Run("hilbert", func(b *testing.B) {
		var errSum float64
		for i := 0; i < b.N; i++ {
			est, err := dawa.Run(x, w, 0.1, rng)
			if err != nil {
				b.Fatal(err)
			}
			estAns := w.EvaluateFlat(est)
			errSum += core.ScaledError(core.L2Loss(estAns, trueAns), x.Scale(), w.Size())
		}
		b.ReportMetric(errSum/float64(b.N)*1e6, "scaled-err-x1e6")
	})
	b.Run("rowmajor", func(b *testing.B) {
		inner := &algo.DAWA{Rho: 0.25, B: 2}
		var errSum float64
		for i := 0; i < b.N; i++ {
			// Row-major: flatten as 1D and run DAWA directly.
			flat, _ := vec.FromData(append([]float64(nil), x.Data...), x.N())
			est, err := inner.Run(flat, nil, 0.1, rng)
			if err != nil {
				b.Fatal(err)
			}
			estAns := w.EvaluateFlat(est)
			errSum += core.ScaledError(core.L2Loss(estAns, trueAns), x.Scale(), w.Size())
		}
		b.ReportMetric(errSum/float64(b.N)*1e6, "scaled-err-x1e6")
	})
}

// --- Hot-path microbenchmarks for the allocation-free kernels ---

// BenchmarkEvaluatorPrefix4096 measures one Reset+AnswerAll cycle of the
// reusable workload Evaluator at the paper's full 1D domain; the fast path
// must report zero allocs/op.
func BenchmarkEvaluatorPrefix4096(b *testing.B) {
	w := workload.Prefix(4096)
	ev := workload.NewEvaluator(w)
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i % 17)
	}
	out := make([]float64, w.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset(data)
		ev.AnswerAll(out)
	}
}

// BenchmarkEvaluatorLegacyEvaluateFlat is the allocating per-call baseline
// the Evaluator replaces; compare with BenchmarkEvaluatorPrefix4096.
func BenchmarkEvaluatorLegacyEvaluateFlat(b *testing.B) {
	w := workload.Prefix(4096)
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i % 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.EvaluateFlat(data)
	}
}

// BenchmarkEvaluator2D measures the summed-area-table path on the paper's 2D
// workload shape (2000 random rectangles over 128x128).
func BenchmarkEvaluator2D(b *testing.B) {
	w := workload.RandomRange2D(128, 128, 2000, rand.New(rand.NewSource(21)))
	ev := workload.NewEvaluator(w)
	data := make([]float64, 128*128)
	for i := range data {
		data[i] = float64(i % 13)
	}
	out := make([]float64, w.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset(data)
		ev.AnswerAll(out)
	}
}

// BenchmarkGeneratorG measures the data generator's multinomial sampling at
// the paper's largest scale.
func BenchmarkGeneratorG(b *testing.B) {
	d, _ := dataset.ByName("INCOME")
	rng := rand.New(rand.NewSource(13))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Generate(rng, 100_000_000, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHilbertLinearize measures the 2D linearization at 256x256.
func BenchmarkHilbertLinearize(b *testing.B) {
	data := make([]float64, 256*256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := transform.HilbertLinearize(data, 256); err != nil {
			b.Fatal(err)
		}
	}
}
