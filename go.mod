module dpbench

go 1.24
