// Package repro is a from-scratch Go reproduction of "Principled Evaluation
// of Differentially Private Algorithms using DPBench" (Hay, Machanavajjhala,
// Miklau, Chen, Zhang — SIGMOD 2016).
//
// The library lives under internal/: the 17 mechanisms in internal/algo, the
// DPBench framework in internal/core, the experiment harness in
// internal/experiments, and the substrates (data vectors, noise primitives,
// transforms, trees, workloads, datasets, statistics) in their own packages.
// The cmd/dpbench binary regenerates every table and figure of the paper;
// the root-level benchmarks (bench_test.go) expose the same experiments as
// `go test -bench` targets, including serial-vs-parallel runner comparisons.
//
// The experiment grid runs on a bounded worker pool (core.RunParallel and
// the parallel sweep in internal/experiments; -workers on the CLI) with a
// hard determinism guarantee: every (sample, trial, algorithm) cell draws
// from its own SplitMix64-derived RNG stream and writes into a pre-sized,
// coordinate-indexed slot, so output is bit-identical for every worker
// count, including the serial path.
//
// Mechanism execution is split into Plan and Execute: Algorithm.Plan
// prepares an executable release plan for one (data, workload, epsilon)
// cell — all deterministic structure building (trees, transforms, layouts,
// score tables, deviation tables) happens there, with no randomness and no
// privacy cost — and Plan.Execute runs one independent trial through a
// noise.Meter. Run is exactly Plan followed by one Execute, so both entry
// points are bit-identical (a registry-wide property test enforces it).
// Every plan is safe for concurrent Execute: the runners build one plan per
// (sample, algorithm) and share it read-only across trials and workers,
// while data-independent structures (interval trees, grids, quadtrees,
// branching factors, Hilbert permutations, canonical workload weights) are
// additionally cached process-wide. The flattened tree form
// (internal/tree.Flat) keeps per-trial measurements in pooled scratch
// outside the shared structure.
//
// The per-trial hot path is allocation-free: workload query bounds are
// stored flat (struct-of-arrays) and answered through the reusable
// workload.Evaluator; MWEM applies multiplicative-weight updates through a
// lazy range-multiply segment tree (1D) with a deferred renormalization
// scalar; DAWA's partition costs are tabulated once per plan (merged sorted
// half-intervals for the dyadic set, a rank-indexed Fenwick scanner for the
// unrestricted ablation) and only perturbed per trial; and the runners give
// every worker a private scratch arena. Golden tests pin every optimized
// path to the seed implementations. See README.md ("Performance").
//
// Privacy-budget enforcement is machine-checked end to end. Every mechanism
// draws all of its randomness through a noise.Meter — an accountant-backed
// noise source constructed inside Run from (eps, rng) — and declares a
// composition plan: the ledger labels it may emit and whether each composes
// sequentially (spends add) or in parallel (spends over disjoint partitions
// count their maximum once). In audit mode (core.Config.Audit, the trainer's
// Audit field, experiments.Options.Audit, the CLI's -audit flag) every trial
// runs through algo.ExecuteAudited (algo.RunAudited for one-shot callers),
// which fails the run unless the ledger sums
// to exactly the trial's epsilon (within 1e-9; under-spend fails too) and
// stays inside the declared plan (the budget arithmetic is machine-checked;
// the scale/spend calibration of each draw is stated at its draw site and
// verified by inspection and the statistical tests). The meter wraps the
// noise stream without reordering it, so audited output is bit-identical to
// unaudited output —
// and with audit off no accountant is attached, keeping the hot path
// allocation-free. See README.md ("Budget metering and audit mode").
package repro
