// Package dpbench is a from-scratch Go reproduction of "Principled
// Evaluation of Differentially Private Algorithms using DPBench" (Hay,
// Machanavajjhala, Miklau, Chen, Zhang — SIGMOD 2016), promoted into an
// importable library and a servable system.
//
// # Public surface
//
// Three packages form the stable public API; everything under internal/ may
// change at any time:
//
//   - dpbench (this package): the facade — Dataset, Histogram, Workload,
//     Mechanism, Plan, Meter, Result, Config, the benchmark runners
//     (Run / RunParallel, both context-aware) and the free-parameter
//     trainers (TrainMWEM / TrainAHP).
//   - dpbench/release: the mechanism registry (the paper's 17 release
//     mechanisms by name), functional construction options, and the
//     Plan/Execute machinery for amortized repeated trials.
//   - dpbench/privacy: the budget accountant and metered noise source, with
//     sentinel errors (ErrBudgetExhausted, ErrCompositionViolation) that
//     every layer wraps with %w for errors.Is handling.
//
// The facade promotes the internal types by alias, so a public-API run is
// bit-identical to the same cell run through the internal packages (pinned
// by a golden test), and the exported surface of all three packages is
// locked by TestAPILock against testdata/api_lock.golden. The examples/
// programs are written exclusively against this surface.
//
// A minimal end-to-end release:
//
//	ds, _ := dpbench.OpenDataset("MEDCOST")
//	x, _ := ds.Generate(rand.New(rand.NewSource(1)), 50_000, 1024)
//	w := dpbench.Prefix(1024)
//	m, _ := release.New("DAWA")
//	est, _ := release.Run(m, x, w, 0.1, rand.New(rand.NewSource(7)))
//
// # The benchmark underneath
//
// internal/ holds the reproduction the facade exposes: the 17 mechanisms in
// internal/algo, the DPBench framework in internal/core, the experiment
// harness in internal/experiments, the HTTP query service in internal/serve,
// and the substrates (data vectors, noise primitives, transforms, trees,
// workloads, datasets, statistics) in their own packages. The cmd/dpbench
// binary regenerates every table and figure of the paper and runs the
// budget-metered query service (dpbench serve); the root-level benchmarks
// (bench_test.go) expose the same experiments as `go test -bench` targets.
//
// The experiment grid runs on a bounded worker pool with a hard determinism
// guarantee: every (sample, trial, mechanism) cell draws from its own
// SplitMix64-derived RNG stream and writes into a pre-sized,
// coordinate-indexed slot, so output is bit-identical for every worker
// count, including the serial path. Cancelling the context stops a grid
// between cells without changing any value a completed run reports.
//
// Mechanism execution is split into Plan and Execute: Plan prepares an
// executable release plan for one (data, workload, epsilon) cell — all
// deterministic structure building happens there, with no randomness and no
// privacy cost — and Execute runs one independent trial through a metered
// noise source. Run is exactly Plan followed by one Execute, so both entry
// points are bit-identical (a registry-wide property test enforces it), and
// every plan is safe for concurrent Execute — which is what lets the serve
// layer share one precompiled plan across all requests, and the runners
// share one plan per (sample, mechanism) across trials and workers.
//
// Noise sampling is versioned. The legacy samplers (the default everywhere)
// call math.Log per Laplace draw and math.Exp per exponential-mechanism
// score, and their exact stream is what every golden output, CLI diff and
// recorded figure pins — so the default never changes. The fast samplers
// (release.WithSampler(release.SamplerFast), the CLI's -sampler=fast flag,
// the serve roster's Sampler field) replace the per-draw transcendentals
// with table-accelerated inverse-CDF evaluation, batched vector draws, and a
// Gumbel-max top-1 exponential-mechanism selection. They sample the
// identical distributions — pinned by fixed-seed Kolmogorov–Smirnov,
// chi-square and selection-frequency tests plus their own output goldens —
// but draw a different stream, so selecting them is always an explicit,
// visible choice carried on the plan, never an upgrade applied silently to
// a reproducible run. Budget charges are independent of the sampler
// version: a fast trial passes the same ledger audit a legacy trial does.
//
// Privacy-budget enforcement is machine-checked end to end. Every mechanism
// draws all randomness through a privacy.Meter and declares a composition
// plan (the ledger labels it may emit, each composing sequentially or in
// parallel). In audit mode (Config.Audit, the CLI's -audit flag) every
// trial fails unless its ledger sums to exactly the trial's epsilon and
// stays inside the declared plan; audited output is bit-identical to
// unaudited output, and with audit off no ledger exists and the hot path
// stays allocation-free. The serve layer reuses the same accountant type
// for its per-API-key budgets, refusing (HTTP 429) any query that would
// overspend a key's epsilon. See README.md for the full walkthroughs.
package dpbench
