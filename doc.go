// Package repro is a from-scratch Go reproduction of "Principled Evaluation
// of Differentially Private Algorithms using DPBench" (Hay, Machanavajjhala,
// Miklau, Chen, Zhang — SIGMOD 2016).
//
// The library lives under internal/: the 17 mechanisms in internal/algo, the
// DPBench framework in internal/core, the experiment harness in
// internal/experiments, and the substrates (data vectors, noise primitives,
// transforms, trees, workloads, datasets, statistics) in their own packages.
// The cmd/dpbench binary regenerates every table and figure of the paper;
// the root-level benchmarks (bench_test.go) expose the same experiments as
// `go test -bench` targets. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
