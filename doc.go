// Package repro is a from-scratch Go reproduction of "Principled Evaluation
// of Differentially Private Algorithms using DPBench" (Hay, Machanavajjhala,
// Miklau, Chen, Zhang — SIGMOD 2016).
//
// The library lives under internal/: the 17 mechanisms in internal/algo, the
// DPBench framework in internal/core, the experiment harness in
// internal/experiments, and the substrates (data vectors, noise primitives,
// transforms, trees, workloads, datasets, statistics) in their own packages.
// The cmd/dpbench binary regenerates every table and figure of the paper;
// the root-level benchmarks (bench_test.go) expose the same experiments as
// `go test -bench` targets, including serial-vs-parallel runner comparisons.
//
// The experiment grid runs on a bounded worker pool (core.RunParallel and
// the parallel sweep in internal/experiments; -workers on the CLI) with a
// hard determinism guarantee: every (sample, trial, algorithm) cell draws
// from its own SplitMix64-derived RNG stream and writes into a pre-sized,
// coordinate-indexed slot, so output is bit-identical for every worker
// count, including the serial path.
//
// The per-trial hot path is allocation-free: workload query bounds are
// stored flat (struct-of-arrays) and answered through the reusable
// workload.Evaluator; MWEM applies range-based multiplicative-weight updates
// with a deferred renormalization scalar; DAWA's partition costs are
// computed by merging sorted half-intervals (dyadic) or a rank-indexed
// Fenwick scanner (the unrestricted ablation); and the runners pool
// per-worker scratch buffers. Golden tests pin every optimized path to the
// seed implementations. See README.md ("Performance").
package repro
