// Quickstart: release a differentially private histogram and answer range
// queries with it — through dpbench's public API only.
//
// A data owner holds a histogram of 50,000 records over a 1024-cell domain
// and wants to publish range-query answers under epsilon-differential
// privacy. This example runs three mechanisms — the IDENTITY baseline, the
// hierarchical Hb, and the data-aware DAWA — and compares their scaled
// per-query error on the Prefix workload, illustrating the benchmark's core
// loop: generate data, run a mechanism, measure scaled error.
//
// Everything here imports dpbench and dpbench/release; a golden test pins
// this public-API path bit-identical to the same cell run through the
// internal packages.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dpbench"
	"dpbench/release"
)

func main() {
	const (
		domain = 1024
		scale  = 50_000
		eps    = 0.1
	)

	// 1. Draw a dataset from the benchmark's generator: the MEDCOST shape
	//    (a skewed medical-cost histogram) resampled to 50,000 tuples.
	ds, err := dpbench.OpenDataset("MEDCOST")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, err := ds.Generate(rng, scale, domain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d cells, %.0f tuples, %.1f%% empty cells\n",
		ds.Name(), x.N(), x.Scale(), 100*x.ZeroFraction())

	// 2. The analyst's workload: all prefix range queries.
	w := dpbench.Prefix(domain)
	trueAns, err := w.Evaluate(x)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run three mechanisms at the same privacy budget.
	for _, name := range []string{"IDENTITY", "HB", "DAWA"} {
		m, err := release.New(name)
		if err != nil {
			log.Fatal(err)
		}
		est, err := release.Run(m, x, w, eps, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		estAns := w.EvaluateFlat(est)
		errVal := dpbench.ScaledError(dpbench.L2Loss(estAns, trueAns), x.Scale(), w.Size())
		fmt.Printf("%-9s scaled per-query error: %.3g\n", name, errVal)

		// Answer one concrete question privately: how many records fall in
		// the first quarter of the domain?
		var private float64
		for i := 0; i < domain/4; i++ {
			private += est[i]
		}
		var truth float64
		for i := 0; i < domain/4; i++ {
			truth += x.Data[i]
		}
		fmt.Printf("          count in first quarter: true %.0f, private %.0f\n", truth, private)
	}
}
