// Algoselect: the practitioner's algorithm-selection problem.
//
// Section 8's "lessons for practitioners" distilled into a runnable tool: a
// data owner cannot pick the best mechanism by trying them all on her data
// (that would leak), but she CAN reason from public facts — her privacy
// budget and her dataset's scale, i.e. the signal strength eps*scale. This
// example sweeps the signal axis on two contrasting shapes and prints which
// regime each mechanism wins, reproducing the paper's headline storyline:
// data-dependent algorithms dominate at low signal, data-independent ones at
// high signal, and the crossover is where algorithm selection gets hard.
//
// It also demonstrates the framework's repair functions through the public
// API: free parameters come from the trained profiles (MWEM* vs MWEM), and
// side information is removed via dpbench.RepairSideInfo.
package main

import (
	"context"
	"fmt"
	"log"

	"dpbench"
	"dpbench/release"
)

func main() {
	const (
		domain = 512
		eps    = 0.1
	)
	ctx := context.Background()
	w := dpbench.Prefix(domain)

	// A sparse, spiky shape (favors data-dependent mechanisms) and a dense,
	// noisy-uniform one (favors data-independent mechanisms).
	for _, dsName := range []string{"TRACE", "BIDS-ALL"} {
		ds, err := dpbench.OpenDataset(dsName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== dataset %s ===\n", dsName)
		for _, scale := range []int{1_000, 100_000, 10_000_000} {
			signal := eps * float64(scale)
			mechs := mustMechs("IDENTITY", "HB", "DAWA", "MWEM*", "AHP*", "UNIFORM")
			// Principle 7: no mechanism may consume the true scale as free
			// side information; spend 5% of budget estimating it instead.
			dpbench.RepairSideInfo(mechs, 0.05)
			cfg := dpbench.Config{
				Dataset: ds, Dims: []int{domain}, Scale: scale, Epsilon: eps,
				Workload: w, Mechanisms: mechs,
				DataSamples: 2, Trials: 3, Seed: 7,
			}
			results, err := dpbench.Run(ctx, cfg)
			if err != nil {
				log.Fatal(err)
			}
			best := dpbench.BestByMean(results)
			regime := "low signal -> expect data-dependent winners"
			if signal >= 1e4 {
				regime = "high signal -> expect data-independent winners"
			}
			fmt.Printf("signal eps*scale = %-10g (%s)\n", signal, regime)
			for _, r := range results {
				marker := " "
				if r.Name == best {
					marker = "*"
				}
				fmt.Printf("  %s %-9s mean %.3g\n", marker, r.Name, r.MeanError())
			}
		}
	}
	fmt.Println("\nLesson (Section 8): pick by signal strength — in high-signal regimes the")
	fmt.Println("simple, parameter-free data-independent mechanisms (HB) are hard to beat;")
	fmt.Println("in low-signal regimes a data-dependent mechanism like DAWA pays off, with")
	fmt.Println("the caveat that its error varies with shape and has no public bound.")
}

func mustMechs(names ...string) []dpbench.Mechanism {
	out := make([]dpbench.Mechanism, 0, len(names))
	for _, n := range names {
		m, err := release.New(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}
