// Algoselect: the practitioner's algorithm-selection problem.
//
// Section 8's "lessons for practitioners" distilled into a runnable tool: a
// data owner cannot pick the best mechanism by trying them all on her data
// (that would leak), but she CAN reason from public facts — her privacy
// budget and her dataset's scale, i.e. the signal strength eps*scale. This
// example sweeps the signal axis on two contrasting shapes and prints which
// regime each mechanism wins, reproducing the paper's headline storyline:
// data-dependent algorithms dominate at low signal, data-independent ones at
// high signal, and the crossover is where algorithm selection gets hard.
//
// It also demonstrates the framework's repair functions: free parameters are
// set via the trained profiles (MWEM* vs MWEM), and side information is
// removed via RepairSideInfo.
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	const (
		domain = 512
		eps    = 0.1
	)
	w := workload.Prefix(domain)

	// A sparse, spiky shape (favors data-dependent mechanisms) and a dense,
	// noisy-uniform one (favors data-independent mechanisms).
	for _, dsName := range []string{"TRACE", "BIDS-ALL"} {
		ds, err := dataset.ByName(dsName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== dataset %s ===\n", dsName)
		for _, scale := range []int{1_000, 100_000, 10_000_000} {
			signal := eps * float64(scale)
			algos := mustAlgos("IDENTITY", "HB", "DAWA", "MWEM*", "AHP*", "UNIFORM")
			// Principle 7: no mechanism may consume the true scale as free
			// side information; spend 5% of budget estimating it instead.
			core.RepairSideInfo(algos, 0.05)
			cfg := core.Config{
				Dataset: ds, Dims: []int{domain}, Scale: scale, Eps: eps,
				Workload: w, Algorithms: algos,
				DataSamples: 2, Trials: 3, Seed: 7,
			}
			results, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			best := core.BestByMean(results)
			regime := "low signal -> expect data-dependent winners"
			if signal >= 1e4 {
				regime = "high signal -> expect data-independent winners"
			}
			fmt.Printf("signal eps*scale = %-10g (%s)\n", signal, regime)
			for _, r := range results {
				marker := " "
				if r.Name == best {
					marker = "*"
				}
				fmt.Printf("  %s %-9s mean %.3g\n", marker, r.Name, r.MeanError())
			}
		}
	}
	fmt.Println("\nLesson (Section 8): pick by signal strength — in high-signal regimes the")
	fmt.Println("simple, parameter-free data-independent mechanisms (HB) are hard to beat;")
	fmt.Println("in low-signal regimes a data-dependent mechanism like DAWA pays off, with")
	fmt.Println("the caveat that its error varies with shape and has no public bound.")
}

func mustAlgos(names ...string) []algo.Algorithm {
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, err := algo.New(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}
