// Geodata: publish a private 2D location heatmap.
//
// The motivating 2D scenario of the paper: a taxi company wants to release
// trip start locations (a 64x64 spatial grid) without exposing any single
// trip. This example compares the 2D mechanisms — UGrid, AGrid, QuadTree,
// DAWA (via Hilbert linearization) and the baselines — on random rectangle
// queries ("how many pickups in this neighbourhood?"), and demonstrates the
// algorithm-selection lesson of Section 8: grid methods win on dense areas,
// DAWA on very sparse ones.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"dpbench"
	"dpbench/release"
)

func main() {
	const (
		side  = 64
		eps   = 0.1
		q     = 500
		tries = 3
	)

	ctx := context.Background()
	w := dpbench.RandomRange2D(side, side, q, rand.New(rand.NewSource(2)))

	for _, dsName := range []string{"BJ-CABS-S", "SF-CABS-E"} {
		ds, err := dpbench.OpenDataset(dsName)
		if err != nil {
			log.Fatal(err)
		}
		for _, scale := range []int{10_000, 1_000_000} {
			fmt.Printf("\n%s at scale %d (eps=%g, %d random rectangles)\n", dsName, scale, eps, q)
			cfg := dpbench.Config{
				Dataset:     ds,
				Dims:        []int{side, side},
				Scale:       scale,
				Epsilon:     eps,
				Workload:    w,
				Mechanisms:  mustMechs("IDENTITY", "UNIFORM", "UGRID", "AGRID", "QUADTREE", "DAWA", "HB"),
				DataSamples: 2,
				Trials:      tries,
				Seed:        42,
			}
			results, err := dpbench.Run(ctx, cfg)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				fmt.Printf("  %-9s mean %.3g   p95 %.3g\n", r.Name, r.MeanError(), r.P95Error())
			}
			fmt.Printf("  competitive: %v\n", dpbench.CompetitiveSet(results, 0.05))
		}
	}
}

func mustMechs(names ...string) []dpbench.Mechanism {
	out := make([]dpbench.Mechanism, 0, len(names))
	for _, n := range names {
		m, err := release.New(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}
