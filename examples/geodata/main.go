// Geodata: publish a private 2D location heatmap.
//
// The motivating 2D scenario of the paper: a taxi company wants to release
// trip start locations (a 64x64 spatial grid) without exposing any single
// trip. This example compares the 2D mechanisms — UGrid, AGrid, QuadTree,
// DAWA (via Hilbert linearization) and the baselines — on random rectangle
// queries ("how many pickups in this neighbourhood?"), and demonstrates the
// algorithm-selection lesson of Section 8: grid methods win on dense areas,
// DAWA on very sparse ones.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	const (
		side  = 64
		eps   = 0.1
		q     = 500
		tries = 3
	)

	w := workload.RandomRange2D(side, side, q, rand.New(rand.NewSource(2)))

	for _, dsName := range []string{"BJ-CABS-S", "SF-CABS-E"} {
		ds, err := dataset.ByName(dsName)
		if err != nil {
			log.Fatal(err)
		}
		for _, scale := range []int{10_000, 1_000_000} {
			fmt.Printf("\n%s at scale %d (eps=%g, %d random rectangles)\n", dsName, scale, eps, q)
			cfg := core.Config{
				Dataset:     ds,
				Dims:        []int{side, side},
				Scale:       scale,
				Eps:         eps,
				Workload:    w,
				Algorithms:  mustAlgos("IDENTITY", "UNIFORM", "UGRID", "AGRID", "QUADTREE", "DAWA", "HB"),
				DataSamples: 2,
				Trials:      tries,
				Seed:        42,
			}
			results, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range results {
				fmt.Printf("  %-9s mean %.3g   p95 %.3g\n", r.Name, r.MeanError(), r.P95Error())
			}
			fmt.Printf("  competitive: %v\n", core.CompetitiveSet(results, 0.05))
		}
	}
}

func mustAlgos(names ...string) []algo.Algorithm {
	out := make([]algo.Algorithm, 0, len(names))
	for _, n := range names {
		a, err := algo.New(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}
