// Trainparams: learning free parameters the DPBench way.
//
// Principle 6 ("No Free Parameters") forbids tuning parameters on the
// evaluation data. DPBench's repair function Rparam (Section 5.2) instead
// trains a data-independent profile on synthetic shapes: for each signal
// level eps*scale it grid-searches candidate settings on power-law and
// normal distributions and records the winner. This example runs the actual
// trainer for MWEM's round count T through the public API
// (dpbench.TrainMWEM + release.WithMWEMProfile), prints the learned
// profile, and then shows the payoff of Finding 7 — the trained MWEM*
// beating static-T MWEM at high signal on a dataset the trainer never saw.
package main

import (
	"context"
	"fmt"
	"log"

	"dpbench"
	"dpbench/release"
)

func main() {
	const domain = 256
	ctx := context.Background()

	// 1. Train T on synthetic shapes (never on evaluation data).
	signals := []float64{1e2, 1e3, 1e4, 1e5}
	fmt.Println("training MWEM round count T on synthetic power-law/normal shapes...")
	profile, err := dpbench.TrainMWEM(ctx, domain, signals, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned profile (signal eps*scale -> T):")
	for _, s := range signals {
		fmt.Printf("  %-8g -> T=%d\n", s, profile(s))
	}

	// 2. Evaluate static MWEM against the trained variant on a held-out
	//    dataset (TRACE) at a strong signal, where Finding 7 reports the
	//    big wins for MWEM*.
	static, err := release.New("MWEM",
		release.WithMWEMRounds(10), release.WithMWEMUpdateSweeps(2))
	if err != nil {
		log.Fatal(err)
	}
	trained, err := release.New("MWEM",
		release.WithMWEMProfile(profile), release.WithMWEMUpdateSweeps(2))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dpbench.OpenDataset("TRACE")
	if err != nil {
		log.Fatal(err)
	}
	cfg := dpbench.Config{
		Dataset: ds, Dims: []int{domain}, Scale: 1_000_000, Epsilon: 0.1,
		Workload:    dpbench.Prefix(domain),
		Mechanisms:  []dpbench.Mechanism{static, trained},
		DataSamples: 2, Trials: 3, Seed: 99,
	}
	results, err := dpbench.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{"static T=10", fmt.Sprintf("trained T=%d", profile(1e5))}
	fmt.Printf("\nTRACE at scale 1e6, eps 0.1 (signal 1e5):\n")
	for i, r := range results {
		fmt.Printf("  MWEM %-13s mean scaled error %.3g\n", labels[i], r.MeanError())
	}
	ratio := results[0].MeanError() / results[1].MeanError()
	fmt.Printf("improvement ratio static/trained: %.2fx (Finding 7 reports up to 27.9x at scale 1e8)\n", ratio)
}
