package dpbench_test

import (
	"errors"
	"math/rand"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
	"dpbench/privacy"
	"dpbench/release"
)

// misbehavingMechanism is a test double whose Execute misbudgets in a
// configurable way, so the tests can prove the error-hygiene sweep: every
// layer between the accountant and the public entry points wraps with %w,
// and the privacy sentinels survive the whole chain.
type misbehavingMechanism struct {
	// mode selects the defect: "overspend" draws more than the budget,
	// "underspend" leaves budget on the table, "undeclared" spends the
	// full budget under a label outside the declared composition plan.
	mode string
}

func (m *misbehavingMechanism) Name() string        { return "MISBEHAVING-" + m.mode }
func (m *misbehavingMechanism) Supports(k int) bool { return k == 1 }
func (m *misbehavingMechanism) DataDependent() bool { return false }

func (m *misbehavingMechanism) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	p, err := m.Plan(x, w, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.N())
	if err := p.Execute(noise.NewMeter(eps, rng), out); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *misbehavingMechanism) Plan(x *vec.Vector, w *workload.Workload, eps float64) (algo.Plan, error) {
	return &misbehavingPlan{mode: m.mode, eps: eps}, nil
}

func (m *misbehavingMechanism) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "counts", Kind: noise.Sequential}}
}

type misbehavingPlan struct {
	mode string
	eps  float64
}

func (p *misbehavingPlan) Execute(m *noise.Meter, out []float64) error {
	switch p.mode {
	case "overspend":
		// Two full-budget draws: the second charge exceeds the total.
		out[0] = m.Laplace("counts", 1/p.eps, p.eps)
		out[0] += m.Laplace("counts", 1/p.eps, p.eps)
	case "underspend":
		out[0] = m.Laplace("counts", 2/p.eps, p.eps/2)
	case "undeclared":
		out[0] = m.Laplace("shadow", 1/p.eps, p.eps)
	}
	return m.Err()
}

// TestBudgetSentinelSurvivesRunAudited is the error-hygiene satellite's
// acceptance test: an overspending mechanism run through the audited entry
// points fails with an error chain that errors.Is-matches
// privacy.ErrBudgetExhausted — from the internal accountant, through the
// meter's sticky error, the audit wrapper, and the public release facade.
func TestBudgetSentinelSurvivesRunAudited(t *testing.T) {
	x := vec.New(8)
	for i := range x.Data {
		x.Data[i] = 1
	}
	w := workload.Prefix(8)

	over := &misbehavingMechanism{mode: "overspend"}
	_, err := algo.RunAudited(over, x, w, 0.1, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("RunAudited accepted an overspending mechanism")
	}
	if !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Errorf("internal RunAudited error chain lost ErrBudgetExhausted: %v", err)
	}

	// The same chain through the public facade.
	_, err = release.RunAudited(over, x, w, 0.1, rand.New(rand.NewSource(1)))
	if !errors.Is(err, privacy.ErrBudgetExhausted) {
		t.Errorf("release.RunAudited error chain lost ErrBudgetExhausted: %v", err)
	}
}

// TestCompositionSentinelSurvivesRunAudited covers the second sentinel: both
// an under-spend (ledger sums below eps) and a spend under an undeclared
// label must surface as privacy.ErrCompositionViolation through the public
// audited entry point.
func TestCompositionSentinelSurvivesRunAudited(t *testing.T) {
	x := vec.New(8)
	for i := range x.Data {
		x.Data[i] = 1
	}
	w := workload.Prefix(8)

	for _, mode := range []string{"underspend", "undeclared"} {
		t.Run(mode, func(t *testing.T) {
			_, err := release.RunAudited(&misbehavingMechanism{mode: mode}, x, w, 0.1, rand.New(rand.NewSource(1)))
			if err == nil {
				t.Fatalf("RunAudited accepted a %s mechanism", mode)
			}
			if !errors.Is(err, privacy.ErrCompositionViolation) {
				t.Errorf("error chain lost ErrCompositionViolation: %v", err)
			}
		})
	}
}

// TestUnknownMechanismSentinel pins the registry sentinel the serving layer
// maps to 404.
func TestUnknownMechanismSentinel(t *testing.T) {
	if _, err := release.New("NO-SUCH-MECHANISM"); !errors.Is(err, release.ErrUnknownMechanism) {
		t.Errorf("release.New error chain lost ErrUnknownMechanism: %v", err)
	}
}

// TestOptionMisuseFailsLoudly pins the functional-options contract: an
// option applied to a mechanism it does not configure is a constructor
// error, not a silent default.
func TestOptionMisuseFailsLoudly(t *testing.T) {
	if _, err := release.New("IDENTITY", release.WithMWEMRounds(5)); err == nil {
		t.Error("WithMWEMRounds on IDENTITY should fail")
	}
	if _, err := release.New("IDENTITY", release.WithSideInfoRepair(0.05)); err == nil {
		t.Error("WithSideInfoRepair on IDENTITY (no side info) should fail")
	}
	if _, err := release.New("MWEM", release.WithMWEMRounds(-1)); err == nil {
		t.Error("non-positive MWEM rounds should fail")
	}
	if _, err := release.New("MWEM", release.WithSideInfoRepair(0.05)); err != nil {
		t.Errorf("WithSideInfoRepair on MWEM should apply: %v", err)
	}
	if _, err := release.New("AHP", release.WithAHPParams(0.3, 0.2)); err != nil {
		t.Errorf("WithAHPParams on AHP should apply: %v", err)
	}
}
