#!/usr/bin/env bash
# Run the full lint surface: the dpbench invariant analyzers through the
# go vet driver (per-package, cached), then staticcheck and govulncheck when
# they are installed. CI's lint job runs exactly this script; locally the
# optional tools are skipped rather than failing, so the script works in
# offline environments with nothing beyond the go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/dpbench-lint" ./cmd/dpbench-lint
go vet -vettool="$tmp/dpbench-lint" ./...

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "lint.sh: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "lint.sh: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi
