#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record the results as
# a JSON snapshot (BENCH_<date>.json in the repo root), seeding the repo's
# performance trajectory: one snapshot per perf-relevant PR makes regressions
# and wins diffable.
#
# Usage:
#   scripts/bench.sh                 # full suite, default benchtime
#   BENCHTIME=10x scripts/bench.sh   # bound per-benchmark iterations
#   BENCH='AlgoMWEM|SweepSerial' scripts/bench.sh   # subset
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
pattern="${BENCH:-.}"
out="BENCH_$(date +%Y%m%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" ./... | tee "$raw"

# Convert `go test -bench` lines into a JSON array. Fields absent from a line
# (e.g. custom -ReportMetric rows without -benchmem columns) are omitted.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, benchtime
    n = 0
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.-]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    if (n++) printf ","
    printf "\n%s", line
}
END {
    printf "\n  ],\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\"\n}\n", goos, goarch, cpu
}' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
