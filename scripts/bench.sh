#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record the results as
# a JSON snapshot (BENCH_<date>.json in the repo root), seeding the repo's
# performance trajectory: one snapshot per perf-relevant PR makes regressions
# and wins diffable. After writing the snapshot, it diffs against the latest
# committed BENCH_*.json and prints per-benchmark time/alloc deltas.
#
# The suite covers every package, including the serving layer's end-to-end
# request-throughput benchmarks (BenchmarkServeQuery and its WAL-backed
# sibling BenchmarkServeQueryDurable in internal/serve) and the durable
# ledger's group-commit amortization pair (BenchmarkWALAppendSerial vs
# BenchmarkBatcherSubmitWAL in internal/ledger).
#
# Usage:
#   scripts/bench.sh                 # full suite, default benchtime
#   BENCHTIME=10x scripts/bench.sh   # bound per-benchmark iterations
#   BENCH='AlgoMWEM|SweepSerial' scripts/bench.sh   # subset
#   BENCH=ServeQuery scripts/bench.sh               # serving hot path (both
#                                                   # in-memory and durable)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
pattern="${BENCH:-.}"
out="BENCH_$(date +%Y%m%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" ./... | tee "$raw"

# Convert `go test -bench` lines into a JSON array. Fields absent from a line
# (e.g. custom -ReportMetric rows without -benchmem columns) are omitted.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, benchtime
    n = 0
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_.-]/, "_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    if (n++) printf ","
    printf "\n%s", line
}
END {
    printf "\n  ],\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\"\n}\n", goos, goarch, cpu
}' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"

# Diff against the latest committed snapshot (the newest BENCH_*.json tracked
# by git, read at its last committed content so a same-day rerun that
# overwrites the file still diffs against the true baseline): per-benchmark
# ns/op and allocs/op ratios, so a perf PR's wins and regressions are visible
# at a glance.
base="$(git ls-files 'BENCH_*.json' | sort | tail -1 || true)"
if [ -z "$base" ] || ! git cat-file -e "HEAD:$base" 2>/dev/null; then
    echo "no committed BENCH_*.json baseline to diff against"
    exit 0
fi
basejson="$(mktemp)"
trap 'rm -f "$raw" "$basejson"' EXIT
git show "HEAD:$base" > "$basejson"
echo
echo "delta vs committed $base (new/old; <1.00x is faster/leaner):"
python3 - "$basejson" "$out" <<'PYEOF' 2>/dev/null || awk -v b="$base" 'BEGIN{print "  (python3 unavailable; skipping delta table)"}'
import json, sys

def load(path):
    with open(path) as f:
        return {b["name"]: b for b in json.load(f)["benchmarks"]}

old, new = load(sys.argv[1]), load(sys.argv[2])
rows = []
for name in new:
    if name not in old:
        rows.append((name, None, None))
        continue
    o, n = old[name], new[name]
    t = n["ns_per_op"] / o["ns_per_op"] if o.get("ns_per_op") else None
    a = None
    if o.get("allocs_per_op") and n.get("allocs_per_op") is not None:
        a = n["allocs_per_op"] / o["allocs_per_op"]
    rows.append((name, t, a))
for name, t, a in sorted(rows):
    ts = f"{t:7.2f}x" if t is not None else "    new "
    As = f"{a:7.2f}x" if a is not None else "       -"
    print(f"  {name:<55s} time {ts}  allocs {As}")
PYEOF
