package dpbench

import (
	"context"
	"fmt"

	"dpbench/internal/core"
)

// Config describes one experimental setting of the benchmark: a (dataset,
// domain, scale, epsilon) cell, the workload the loss is measured over, and
// the mechanisms under comparison. It is the public form of the DPBench
// evaluation protocol (Section 6.1 of the paper): DataSamples data vectors
// are drawn from the generator and every mechanism runs Trials times on each.
type Config struct {
	// Dataset is the source shape (see OpenDataset).
	Dataset Dataset
	// Dims is the domain, e.g. []int{4096} or []int{128, 128}.
	Dims []int
	// Scale is the number of tuples the generator draws.
	Scale int
	// Epsilon is the privacy budget of every trial.
	Epsilon float64
	// Workload is the query set; the loss is computed over its answers.
	Workload *Workload
	// Mechanisms are the release mechanisms to compare (release.New).
	Mechanisms []Mechanism
	// DataSamples is the number of vectors drawn from the generator
	// (paper: 5). Defaults to 3.
	DataSamples int
	// Trials is the number of mechanism executions per vector (paper: 10).
	// Defaults to 3.
	Trials int
	// Seed makes the experiment reproducible: results are a pure function
	// of (Config, Seed), identical for every worker count.
	Seed int64
	// Parallelism is the worker count RunParallel uses when its workers
	// argument is <= 0. Zero means runtime.GOMAXPROCS(0).
	Parallelism int
	// Audit executes every trial through a ledger-backed noise meter and
	// fails the run unless each mechanism's recorded spends sum to exactly
	// Epsilon and match its declared composition plan. Results are
	// bit-identical to an unaudited run.
	Audit bool
}

// internal converts the facade config to the runner's form. Mechanism
// aliases the internal algorithm interface, so the mechanism roster passes
// through without conversion.
func (c Config) internal() core.Config {
	return core.Config{
		Dataset:     c.Dataset.d,
		Dims:        c.Dims,
		Scale:       c.Scale,
		Eps:         c.Epsilon,
		Workload:    c.Workload,
		Algorithms:  c.Mechanisms,
		DataSamples: c.DataSamples,
		Trials:      c.Trials,
		Seed:        c.Seed,
		Parallelism: c.Parallelism,
		Audit:       c.Audit,
	}
}

// Result holds every scaled-error observation for one mechanism in one
// setting (DataSamples * Trials values) plus the aggregates DPBench reports:
// Name, Errors, MeanError (risk-neutral) and P95Error (risk-averse).
type Result = core.AlgResult

// Run executes one experimental setting serially and returns per-mechanism
// results in roster order. Every (sample, trial, mechanism) cell draws from
// an independent deterministic RNG stream derived from Config.Seed, so
// results are reproducible and mechanisms do not perturb each other's
// randomness. Cancelling ctx stops the run between cells with ctx.Err().
func Run(ctx context.Context, cfg Config) ([]Result, error) {
	return core.Run(ctx, cfg.internal())
}

// RunParallel is Run fanned out over a bounded worker pool (workers <= 0
// means Config.Parallelism, then GOMAXPROCS). Results are bit-identical to
// Run for every worker count.
func RunParallel(ctx context.Context, cfg Config, workers int) ([]Result, error) {
	return core.RunParallel(ctx, cfg.internal(), workers)
}

// RepairSideInfo applies the paper's Rside repair (Principle 7) to every
// mechanism in the roster that consumes public side information, directing
// it to spend the fraction rho of its budget on a private estimate instead.
// The paper's experiments use rho = 0.05. Mechanisms without side
// information are left untouched; to fail loudly on a mechanism that cannot
// be repaired, use release.WithSideInfoRepair at construction instead.
func RepairSideInfo(ms []Mechanism, rho float64) { core.RepairSideInfo(ms, rho) }

// ScaledError converts a loss into the scaled average per-query error of
// Definition 3: loss / (scale * queries), interpretable as a population
// fraction. All DPBench findings are stated in this quantity.
func ScaledError(loss, scale float64, queries int) float64 {
	return core.ScaledError(loss, scale, queries)
}

// L2Loss is the loss the paper uses throughout: the L2 norm of the error
// vector between the mechanism's workload answers and the true answers.
func L2Loss(estimated, truth []float64) float64 { return core.L2Loss(estimated, truth) }

// CompetitiveSet returns the names of mechanisms competitive for
// state-of-the-art performance in this setting (Section 5.3): the lowest
// mean error plus every mechanism not statistically distinguishable from it
// under a Welch t-test at the Bonferroni-corrected level alpha/(n-1).
func CompetitiveSet(results []Result, alpha float64) []string {
	return core.CompetitiveSet(results, alpha)
}

// BestByMean returns the name of the mechanism with the lowest mean error.
func BestByMean(results []Result) string { return core.BestByMean(results) }

// BestByP95 returns the name of the mechanism with the lowest
// 95th-percentile error, the risk-averse winner of Finding 8.
func BestByP95(results []Result) string { return core.BestByP95(results) }

// TrainMWEM learns MWEM's round count T the DPBench way (Rparam, Section
// 5.2): a grid search on synthetic power-law and normal shapes — never on
// evaluation data — at each eps*scale signal level. The returned profile is
// data-independent, so using it does not violate Principle 6; plug it into a
// mechanism with release.WithMWEMProfile. Cancelling ctx stops training.
func TrainMWEM(ctx context.Context, domain int, signals []float64, trials int, seed int64) (func(signal float64) int, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("dpbench: training domain must be positive, got %d", domain)
	}
	return core.TrainMWEM(ctx, domain, signals, trials, seed)
}

// TrainAHP learns AHP's (rho, eta) clustering parameters over the given
// signal levels, analogous to TrainMWEM; plug the result into
// release.WithAHPParams per signal level.
func TrainAHP(ctx context.Context, domain int, signals []float64, trials int, seed int64) (func(signal float64) (rho, eta float64), error) {
	if domain <= 0 {
		return nil, fmt.Errorf("dpbench: training domain must be positive, got %d", domain)
	}
	return core.TrainAHP(ctx, domain, signals, trials, seed)
}
