package ledger

import (
	"fmt"
	"runtime"
	"sync"
)

// pending is one submitted record waiting for its group commit.
type pending struct {
	rec  Record
	seq  uint64
	err  error
	done chan struct{} // buffered(1): reusable one-shot completion signal
}

// pendingPool recycles submissions (and their completion channels) so the
// serving hot path does not allocate a channel per request.
var pendingPool = sync.Pool{New: func() any { return &pending{done: make(chan struct{}, 1)} }}

// Batcher turns per-request durable commits into group commits: callers
// Submit one record and block until it is on disk, while a single committer
// goroutine drains every waiting submission into one Store.Append — one
// fsync per batch, not per request. Completion order follows commit order,
// and the OnCommit hook observes every batch (with sequence numbers
// assigned) after it is durable but before any submitter is released, so a
// caller that holds its sequence number can immediately ask for an inclusion
// proof of it.
type Batcher struct {
	store    Store
	onCommit func([]Record)
	maxBatch int

	ch   chan *pending
	stop chan struct{} // closed when the committer has drained and exited

	mu     sync.RWMutex // guards closed against in-flight Submits
	closed bool

	errMu   sync.Mutex
	lastErr error
}

// NewBatcher starts a group-commit loop in front of store. maxBatch bounds
// the records per Append (<=0 selects a default of 128); onCommit, when
// non-nil, is called from the committer goroutine with each durably
// committed batch in order.
func NewBatcher(store Store, maxBatch int, onCommit func([]Record)) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 128
	}
	b := &Batcher{
		store:    store,
		onCommit: onCommit,
		maxBatch: maxBatch,
		ch:       make(chan *pending, 2*maxBatch),
		stop:     make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit durably commits rec, blocking until the group commit containing it
// has been fsynced, and returns the record's assigned sequence number. On a
// store failure every submission in the failed batch — and, because stores
// are fail-closed, every later one — returns the error.
func (b *Batcher) Submit(rec Record) (uint64, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, fmt.Errorf("ledger: submit: %w", ErrClosed)
	}
	p := pendingPool.Get().(*pending)
	p.rec, p.seq, p.err = rec, 0, nil
	b.ch <- p
	b.mu.RUnlock()
	<-p.done
	seq, err := p.seq, p.err
	pendingPool.Put(p)
	return seq, err
}

// Err returns the first commit error observed (nil while healthy). The
// serving layer surfaces it as a degraded /healthz.
func (b *Batcher) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.lastErr
}

// Close stops accepting submissions, flushes everything already submitted,
// and waits for the committer to exit. It does not close the Store.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.stop
		return nil
	}
	b.closed = true
	close(b.ch)
	b.mu.Unlock()
	<-b.stop
	return nil
}

// run is the committer loop: block for one submission, then drain whatever
// else is already waiting (up to maxBatch) into the same Append.
func (b *Batcher) run() {
	defer close(b.stop)
	items := make([]*pending, 0, b.maxBatch)
	batch := make([]Record, 0, b.maxBatch)
	for p := range b.ch {
		items = append(items[:0], p)
		batch = append(batch[:0], p.rec)
		// One scheduling quantum before claiming the fsync: submitters that
		// are runnable but not yet enqueued (the common case right after the
		// previous commit released a batch) get to join this one. Costs a
		// yield when nothing is waiting; multiplies the batch size when the
		// system is saturated.
		runtime.Gosched()
	drain:
		for len(items) < b.maxBatch {
			select {
			case q, ok := <-b.ch:
				if !ok {
					break drain
				}
				items = append(items, q)
				batch = append(batch, q.rec)
			default:
				break drain
			}
		}
		b.commit(items, batch)
	}
}

// commit appends one batch and completes its submitters.
func (b *Batcher) commit(items []*pending, batch []Record) {
	first, err := b.store.Append(batch)
	if err != nil {
		b.errMu.Lock()
		if b.lastErr == nil {
			b.lastErr = err
		}
		b.errMu.Unlock()
		for _, it := range items {
			it.err = err
			it.done <- struct{}{}
		}
		return
	}
	for i := range batch {
		batch[i].Seq = first + uint64(i)
	}
	if b.onCommit != nil {
		b.onCommit(batch)
	}
	for i, it := range items {
		it.seq = first + uint64(i)
		it.done <- struct{}{}
	}
}
