package ledger

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// Hash is a SHA-256 digest: a Merkle leaf, node, or root.
type Hash = [sha256.Size]byte

// Domain-separation prefixes (RFC 6962): a leaf hash can never be
// reinterpreted as an interior node or vice versa.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes one canonical record encoding into its Merkle leaf.
func LeafHash(leaf []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(leaf)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// EmptyRoot is the root of a ledger with no committed records.
func EmptyRoot() Hash { return sha256.Sum256(nil) }

// Tree is an append-only RFC 6962-style Merkle tree over the ledger's
// canonical record encodings, appended in commit order. The root at size n
// commits the entire committed prefix: changing, dropping, or reordering any
// record changes the root, so a caller that remembers one root — or compares
// roots with other callers — can detect a rewritten history. It is safe for
// concurrent appends and reads.
type Tree struct {
	mu     sync.RWMutex
	leaves []Hash
	// stack holds the roots of the maximal perfect subtrees of the current
	// leaf sequence, largest first — the binary decomposition of len(leaves).
	// Appending merges trailing equal-size subtrees, so the running root
	// folds in O(log n) instead of rehashing the whole tree.
	stack []Hash
	sizes []uint64 // leaf count under each stack entry
}

// Append adds one record encoding as the next leaf.
func (t *Tree) Append(leaf []byte) {
	h := LeafHash(leaf)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.leaves = append(t.leaves, h)
	t.stack = append(t.stack, h)
	t.sizes = append(t.sizes, 1)
	for n := len(t.stack); n >= 2 && t.sizes[n-1] == t.sizes[n-2]; n = len(t.stack) {
		t.stack[n-2] = nodeHash(t.stack[n-2], t.stack[n-1])
		t.sizes[n-2] *= 2
		t.stack = t.stack[:n-1]
		t.sizes = t.sizes[:n-1]
	}
}

// Size returns the number of leaves.
func (t *Tree) Size() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return uint64(len(t.leaves))
}

// Root returns the current root and the size it commits to.
func (t *Tree) Root() (Hash, uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rootLocked(), uint64(len(t.leaves))
}

func (t *Tree) rootLocked() Hash {
	if len(t.stack) == 0 {
		return EmptyRoot()
	}
	// Fold the perfect-subtree roots right to left: exactly MTH(D[n]) for
	// the RFC 6962 split at the largest power of two below n.
	r := t.stack[len(t.stack)-1]
	for i := len(t.stack) - 2; i >= 0; i-- {
		r = nodeHash(t.stack[i], r)
	}
	return r
}

// Proof is an inclusion proof: the leaf at Index is committed by Root, which
// covers Size leaves. Path lists the sibling subtree hashes bottom-up.
// VerifyInclusion checks it offline — nothing beyond the proof itself and
// the expected root is needed.
type Proof struct {
	Index    uint64
	Size     uint64
	LeafHash Hash
	Path     []Hash
	Root     Hash
}

// Prove returns the inclusion proof for the leaf at index (0-based) against
// the tree's current root. The proof and root are taken under one lock, so
// they are mutually consistent even while appends race.
func (t *Tree) Prove(index uint64) (Proof, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := uint64(len(t.leaves))
	if index >= n {
		return Proof{}, fmt.Errorf("ledger: proof index %d out of range (size %d)", index, n)
	}
	return Proof{
		Index:    index,
		Size:     n,
		LeafHash: t.leaves[index],
		Path:     authPath(t.leaves, index),
		Root:     t.rootLocked(),
	}, nil
}

// mth computes the RFC 6962 Merkle tree hash of a non-empty leaf-hash range.
func mth(h []Hash) Hash {
	if len(h) == 1 {
		return h[0]
	}
	k := splitPoint(len(h))
	return nodeHash(mth(h[:k]), mth(h[k:]))
}

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for 2*k < n {
		k *= 2
	}
	return k
}

// authPath collects the sibling hashes proving leaves[i], bottom-up.
func authPath(leaves []Hash, i uint64) []Hash {
	if len(leaves) <= 1 {
		return nil
	}
	k := uint64(splitPoint(len(leaves)))
	if i < k {
		return append(authPath(leaves[:k], i), mth(leaves[k:]))
	}
	return append(authPath(leaves[k:], i-k), mth(leaves[:k]))
}

// VerifyInclusion recomputes the root from the proof's leaf hash and path
// and compares it to the proof's root. A caller verifying that a specific
// spend is in the ledger additionally recomputes the leaf hash from the
// record fields it knows (LeafHash of EncodeRecord) and compares it to
// p.LeafHash — the server cannot substitute someone else's record at that
// position without breaking one of the two comparisons.
func VerifyInclusion(p Proof) bool {
	r, ok := rootFromPath(p.LeafHash, p.Index, p.Size, p.Path)
	return ok && r == p.Root
}

// rootFromPath folds the audit path mirroring authPath's recursion.
func rootFromPath(leaf Hash, index, size uint64, path []Hash) (Hash, bool) {
	if size == 0 || index >= size {
		return Hash{}, false
	}
	if size == 1 {
		return leaf, len(path) == 0
	}
	if len(path) == 0 {
		return Hash{}, false
	}
	sib := path[len(path)-1]
	k := uint64(splitPoint(int(size)))
	if index < k {
		sub, ok := rootFromPath(leaf, index, k, path[:len(path)-1])
		if !ok {
			return Hash{}, false
		}
		return nodeHash(sub, sib), true
	}
	sub, ok := rootFromPath(leaf, index-k, size-k, path[:len(path)-1])
	if !ok {
		return Hash{}, false
	}
	return nodeHash(sib, sub), true
}
