package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, path string) *WAL {
	t.Helper()
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w
}

func walRecords(t *testing.T, w *WAL) []Record {
	t.Helper()
	var out []Record
	if err := w.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestWALAppendReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spend.wal")
	w := openTestWAL(t, path)
	want := []Record{
		{Key: "alice", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1},
		{Key: "bob", Dataset: "ADULT", Mechanism: "HB", Eps: 0.05},
		{Key: "alice", Dataset: "TRACE", Mechanism: "IDENTITY", Eps: 0.2},
	}
	if first, err := w.Append(want[:2]); err != nil || first != 1 {
		t.Fatalf("Append batch 1: first=%d err=%v", first, err)
	}
	if first, err := w.Append(want[2:]); err != nil || first != 3 {
		t.Fatalf("Append batch 2: first=%d err=%v", first, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w = openTestWAL(t, path)
	defer w.Close()
	if rec, torn := w.Recovered(); rec != 3 || torn != 0 {
		t.Fatalf("Recovered() = (%d, %d), want (3, 0)", rec, torn)
	}
	got := walRecords(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		exp := want[i]
		exp.Seq = uint64(i) + 1
		if r != exp {
			t.Errorf("record %d: got %+v, want %+v", i, r, exp)
		}
	}
	// Appends continue the recovered sequence.
	if first, err := w.Append([]Record{{Key: "carol", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1}}); err != nil || first != 4 {
		t.Fatalf("post-recovery Append: first=%d err=%v, want 4", first, err)
	}
}

// TestWALCrashRecoveryEveryTruncationPoint is the crash-recovery property
// test: write K spends, then simulate a crash at EVERY byte offset of the
// file — including mid-header and mid-frame — and assert the reopened log
// recovers exactly the records whose frames are wholly within the surviving
// prefix, discarding the torn tail.
func TestWALCrashRecoveryEveryTruncationPoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spend.wal")
	w := openTestWAL(t, path)
	const K = 5
	// boundaries[i] is the committed file length after i records.
	boundaries := make([]int64, K+1)
	boundaries[0] = int64(len(walHeader))
	for i := 1; i <= K; i++ {
		if _, err := w.Append([]Record{{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Eps: float64(i) / 10}}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		boundaries[i] = info.Size()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		// The durable prefix: every record whose frame ends at or before cut.
		wantRecs := 0
		for wantRecs < K && boundaries[wantRecs+1] <= cut {
			wantRecs++
		}
		tw, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: OpenWAL: %v", cut, err)
		}
		gotRecs, gotTorn := tw.Recovered()
		if gotRecs != uint64(wantRecs) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, gotRecs, wantRecs)
		}
		// Bytes past the last whole frame are discarded (for a cut inside the
		// header the whole file is rewritten, so everything counts as torn).
		wantTorn := cut - boundaries[wantRecs]
		if cut < int64(len(walHeader)) {
			wantTorn = cut
		}
		if gotTorn != wantTorn {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, gotTorn, wantTorn)
		}
		var total float64
		recs := walRecords(t, tw)
		for i, r := range recs {
			if r.Seq != uint64(i)+1 {
				t.Fatalf("cut %d: record %d has seq %d", cut, i, r.Seq)
			}
			total += r.Eps
		}
		wantTotal := 0.0
		for i := 1; i <= wantRecs; i++ {
			wantTotal += float64(i) / 10
		}
		if total != wantTotal {
			t.Fatalf("cut %d: recovered total %v, want %v", cut, total, wantTotal)
		}
		// The truncated log accepts new appends at the recovered sequence.
		if first, err := tw.Append([]Record{{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1}}); err != nil || first != uint64(wantRecs)+1 {
			t.Fatalf("cut %d: post-recovery Append: first=%d err=%v, want %d", cut, first, err, wantRecs+1)
		}
		tw.Close()
	}
}

// TestWALTamperDetection pins the ErrCorrupt posture: states no crash can
// produce — a foreign header, or CRC-valid records at the wrong positions —
// refuse to open rather than silently truncating.
func TestWALTamperDetection(t *testing.T) {
	dir := t.TempDir()

	t.Run("foreign file", func(t *testing.T) {
		path := filepath.Join(dir, "foreign.wal")
		if err := os.WriteFile(path, []byte("definitely not a wal file"), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("OpenWAL on a foreign file: %v, want ErrCorrupt", err)
		}
	})

	t.Run("spliced frames", func(t *testing.T) {
		path := filepath.Join(dir, "spliced.wal")
		w := openTestWAL(t, path)
		// Two identically sized records, so the frames can be swapped byte
		// for byte: both stay CRC-valid, but their sequence numbers no
		// longer match their positions.
		if _, err := w.Append([]Record{
			{Key: "aa", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1},
			{Key: "bb", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.2},
		}); err != nil {
			t.Fatal(err)
		}
		w.Close()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		frames := b[len(walHeader):]
		if len(frames)%2 != 0 {
			t.Fatalf("frames not evenly sized: %d bytes", len(frames))
		}
		half := len(frames) / 2
		swapped := append([]byte{}, b[:len(walHeader)]...)
		swapped = append(swapped, frames[half:]...)
		swapped = append(swapped, frames[:half]...)
		if err := os.WriteFile(path, swapped, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("OpenWAL on a spliced log: %v, want ErrCorrupt", err)
		}
	})

	t.Run("mid-log byte flip", func(t *testing.T) {
		// Flipping a byte inside an interior record leaves intact frames
		// after the damage — a state no torn final append can produce.
		// Truncating here would silently forget committed spends, so
		// recovery must refuse instead.
		path := filepath.Join(dir, "midflip.wal")
		w := openTestWAL(t, path)
		for i := 0; i < 3; i++ {
			if _, err := w.Append([]Record{{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1}}); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		flipByteAt(t, path, int64(len(walHeader))+frameHeaderLen+2)
		if _, err := OpenWAL(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("OpenWAL on a mid-log flip: %v, want ErrCorrupt", err)
		}
	})

	t.Run("final-record byte flip truncates as torn", func(t *testing.T) {
		// The same flip in the *last* record is indistinguishable from a
		// torn write, so recovery keeps the intact prefix and truncates.
		// Tamper evidence for the tail comes from the published Merkle
		// root, not the file.
		path := filepath.Join(dir, "tailflip.wal")
		w := openTestWAL(t, path)
		var lastStart int64
		for i := 0; i < 3; i++ {
			lastStart = w.size
			if _, err := w.Append([]Record{{Key: "k", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1}}); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		flipByteAt(t, path, lastStart+frameHeaderLen+2)
		w2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("OpenWAL after tail flip: %v", err)
		}
		defer w2.Close()
		records, truncated := w2.Recovered()
		if records != 2 || truncated == 0 {
			t.Fatalf("Recovered() = (%d, %d), want 2 records and a truncated tail", records, truncated)
		}
	})
}

// flipByteAt XORs the byte at offset with 0xff.
func flipByteAt(t *testing.T, path string, offset int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
}

func TestWALAppendAfterCloseAndOversize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spend.wal")
	w := openTestWAL(t, path)
	// A record that encodes past maxRecordBytes is refused before any write,
	// and the refusal is not sticky: the medium did nothing wrong.
	huge := Record{Key: string(make([]byte, maxRecordBytes)), Dataset: "d", Mechanism: "m"}
	if _, err := w.Append([]Record{huge}); err == nil {
		t.Fatal("oversized record committed")
	}
	if _, err := w.Append([]Record{{Key: "k", Dataset: "d", Mechanism: "m", Eps: 0.1}}); err != nil {
		t.Fatalf("append after oversize refusal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := w.Append([]Record{{Key: "k"}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}
