package ledger

import (
	"path/filepath"
	"testing"
)

// BenchmarkWALAppendSerial is the un-batched floor: one record, one fsync.
func BenchmarkWALAppendSerial(b *testing.B) {
	w, err := OpenWAL(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{Key: "bench", Dataset: "ADULT", Mechanism: "HB", Eps: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append([]Record{rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatcherSubmitWAL measures group commit doing its job: many
// concurrent submitters share each fsync, so per-op cost lands well under the
// serial floor (divide this ns/op into BenchmarkWALAppendSerial's to see the
// effective batch size).
func BenchmarkBatcherSubmitWAL(b *testing.B) {
	w, err := OpenWAL(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	bt := NewBatcher(w, 128, nil)
	defer bt.Close()
	rec := Record{Key: "bench", Dataset: "ADULT", Mechanism: "HB", Eps: 0.1}
	b.ReportAllocs()
	b.SetParallelism(64) // keep well over maxBatch submissions in flight
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bt.Submit(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
