package ledger

import (
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{Seq: 1, Key: "alice", Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1},
		{Seq: 1<<63 + 7, Key: strings.Repeat("k", 256), Dataset: "", Mechanism: "IDENTITY", Eps: -0.0},
		{Seq: 42, Key: "emoji-é世", Dataset: "GOWALLA", Mechanism: "UGRID", Eps: 1e-300},
	}
	for _, want := range cases {
		got, err := DecodeRecord(EncodeRecord(want))
		if err != nil {
			t.Fatalf("DecodeRecord(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestRecordEncodingIsPositional pins the property the Merkle leaves rely on:
// the encoding commits to the sequence number, so the same spend at two
// positions yields two different leaves.
func TestRecordEncodingIsPositional(t *testing.T) {
	a := Record{Seq: 1, Key: "k", Dataset: "d", Mechanism: "m", Eps: 0.1}
	b := a
	b.Seq = 2
	if string(EncodeRecord(a)) == string(EncodeRecord(b)) {
		t.Error("encodings of the same spend at different positions are identical")
	}
	if LeafHash(EncodeRecord(a)) == LeafHash(EncodeRecord(b)) {
		t.Error("leaf hashes of the same spend at different positions are identical")
	}
}

func TestDecodeRecordRejectsMalformed(t *testing.T) {
	valid := EncodeRecord(Record{Seq: 3, Key: "k", Dataset: "d", Mechanism: "m", Eps: 0.5})
	cases := map[string][]byte{
		"empty":            {},
		"truncated prefix": valid[:len(valid)-9],
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"string overruns":  {0x01, 0xff, 'x'},
	}
	for name, b := range cases {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("%s: DecodeRecord accepted %x", name, b)
		}
	}
}
