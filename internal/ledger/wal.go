package ledger

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// walHeader identifies a dpbench ledger WAL, version 1. A file that exists
// but does not begin with it is some other file, not a torn log — recovery
// refuses to touch it.
var walHeader = []byte("dpbenchwal\x00\x01")

// frameHeaderLen is the per-record framing overhead: a little-endian uint32
// payload length followed by the payload's CRC32-C checksum.
const frameHeaderLen = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is the durable Store backend: an append-only, length+CRC-framed log
// file with one fsync per Append. See the package documentation for the
// recovery and tamper-evidence semantics.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	size   int64  // validated committed length; appends extend it
	next   uint64 // sequence number the next appended record receives
	buf    []byte // reusable frame-encoding buffer
	failed error  // sticky first append failure: fail-closed
	closed bool

	recovered uint64 // records found valid at Open
	truncated int64  // torn-tail bytes discarded at Open
}

// OpenWAL opens (creating if absent) the ledger log at path and recovers it:
// every frame is validated in order, a torn final frame is truncated away,
// and a structurally impossible committed prefix fails with ErrCorrupt.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ledger: opening WAL: %w", err)
	}
	w := &WAL{f: f, next: 1}
	if err := w.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// recover validates the log from the start, truncating a torn tail.
func (w *WAL) recover() error {
	info, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("ledger: WAL stat: %w", err)
	}
	fileSize := info.Size()
	if fileSize == 0 {
		// Fresh log: write the header and durably create the file, syncing
		// the directory so the entry itself survives a crash.
		if _, err := w.f.Write(walHeader); err != nil {
			return fmt.Errorf("ledger: writing WAL header: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("ledger: syncing WAL header: %w", err)
		}
		syncDir(w.f.Name())
		w.size = int64(len(walHeader))
		return nil
	}

	header := make([]byte, len(walHeader))
	n, err := io.ReadFull(w.f, header)
	if err != nil && err != io.ErrUnexpectedEOF {
		return fmt.Errorf("ledger: reading WAL header: %w", err)
	}
	if n < len(walHeader) {
		// A crash while creating the log can leave a partial header with no
		// committed records behind it: rewrite from scratch.
		return w.truncateTo(0, fileSize, func() error {
			if _, err := w.f.WriteAt(walHeader, 0); err != nil {
				return err
			}
			w.size = int64(len(walHeader))
			return nil
		})
	}
	if string(header) != string(walHeader) {
		return fmt.Errorf("ledger: %w: %s is not a dpbench ledger WAL", ErrCorrupt, w.f.Name())
	}

	offset := int64(len(walHeader))
	var frame [frameHeaderLen]byte
	payload := make([]byte, maxRecordBytes)
	for offset < fileSize {
		if fileSize-offset < frameHeaderLen {
			break // torn frame header
		}
		if _, err := w.f.ReadAt(frame[:], offset); err != nil {
			return fmt.Errorf("ledger: reading WAL frame at %d: %w", offset, err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > maxRecordBytes || int64(length) > fileSize-offset-frameHeaderLen {
			break // torn or garbage length: tail ends here
		}
		payload = payload[:length]
		if _, err := w.f.ReadAt(payload, offset+frameHeaderLen); err != nil {
			return fmt.Errorf("ledger: reading WAL payload at %d: %w", offset, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// A CRC-valid frame that does not decode cannot come from a
			// crash: the checksum certifies the payload bytes are exactly
			// what some writer framed.
			return fmt.Errorf("ledger: %w: undecodable record at offset %d: %v", ErrCorrupt, offset, err)
		}
		if rec.Seq != w.next {
			return fmt.Errorf("ledger: %w: record at offset %d has seq %d, want %d (reordered or spliced log)", ErrCorrupt, offset, rec.Seq, w.next)
		}
		w.next++
		w.recovered++
		offset += frameHeaderLen + int64(length)
	}
	if offset < fileSize {
		// A crash tears only the final append (frames are written in one
		// WriteAt and fsynced), so past the break point there can be nothing
		// but that partial write. A complete, CRC-valid record beyond it is
		// crash-impossible — the middle of the log was altered — and
		// truncating would silently forget committed spends, the one
		// direction the ledger must never fail in.
		if w.validFrameWithin(offset, fileSize) {
			return fmt.Errorf("ledger: %w: intact record beyond unreadable bytes at offset %d (mid-log corruption, not a torn tail)", ErrCorrupt, offset)
		}
		return w.truncateTo(offset, fileSize, nil)
	}
	w.size = offset
	return nil
}

// validFrameWithin reports whether any byte position in [offset, fileSize)
// starts a complete, CRC-valid, decodable frame. Used to distinguish a torn
// final append (nothing intact past the tear) from mid-log corruption. A
// random partial write passing CRC32-C *and* decoding as a record is a
// ~2^-32 coincidence, so a hit is treated as deliberate.
func (w *WAL) validFrameWithin(offset, fileSize int64) bool {
	n := fileSize - offset
	if n <= frameHeaderLen {
		return false
	}
	tail := make([]byte, n)
	if _, err := w.f.ReadAt(tail, offset); err != nil {
		return false
	}
	for p := int64(0); p+frameHeaderLen < n; p++ {
		length := binary.LittleEndian.Uint32(tail[p : p+4])
		if length == 0 || length > maxRecordBytes || int64(length) > n-p-frameHeaderLen {
			continue
		}
		payload := tail[p+frameHeaderLen : p+frameHeaderLen+int64(length)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(tail[p+4:p+8]) {
			continue
		}
		if _, err := DecodeRecord(payload); err == nil {
			return true
		}
	}
	return false
}

// truncateTo durably discards everything past offset, recording how much was
// dropped, then runs fixup (if any) and syncs.
func (w *WAL) truncateTo(offset, fileSize int64, fixup func() error) error {
	if err := w.f.Truncate(offset); err != nil {
		return fmt.Errorf("ledger: truncating torn WAL tail: %w", err)
	}
	w.truncated = fileSize - offset
	w.size = offset
	if fixup != nil {
		if err := fixup(); err != nil {
			return fmt.Errorf("ledger: rewriting WAL header: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ledger: syncing truncated WAL: %w", err)
	}
	return nil
}

// Recovered reports what Open found: the number of valid records and the
// torn-tail bytes truncated away.
func (w *WAL) Recovered() (records uint64, truncatedBytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovered, w.truncated
}

// Append implements Store: the batch is framed, written in one write, and
// fsynced before the assigned sequence numbers are returned. Any failure is
// sticky — the log's tail state is unknown after a failed write, so the only
// safe posture is to refuse all further commits and let a restart re-run
// recovery.
func (w *WAL) Append(batch []Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("ledger: WAL append: %w", ErrClosed)
	}
	if w.failed != nil {
		return 0, fmt.Errorf("ledger: WAL append: %w: %w", ErrUnavailable, w.failed)
	}
	first := w.next
	w.buf = w.buf[:0]
	for i, r := range batch {
		r.Seq = first + uint64(i)
		before := len(w.buf)
		w.buf = appendFrame(w.buf, r)
		// The medium is fine, so this is not sticky — but a frame recovery
		// would refuse must never reach the disk.
		if len(w.buf)-before-frameHeaderLen > maxRecordBytes {
			return 0, fmt.Errorf("ledger: WAL append: record %d encodes to %d bytes, limit %d", i, len(w.buf)-before-frameHeaderLen, maxRecordBytes)
		}
	}
	if _, err := w.f.WriteAt(w.buf, w.size); err != nil {
		w.failed = err
		return 0, fmt.Errorf("ledger: WAL write: %w: %w", ErrUnavailable, err)
	}
	if err := w.f.Sync(); err != nil {
		w.failed = err
		return 0, fmt.Errorf("ledger: WAL fsync: %w: %w", ErrUnavailable, err)
	}
	w.size += int64(len(w.buf))
	w.next += uint64(len(batch))
	return first, nil
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, r Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = AppendRecord(buf, r)
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// Replay implements Store, streaming the committed records in order. Open
// already validated the committed prefix, so any inconsistency here means
// the file changed underneath a live WAL.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	size := w.size
	w.mu.Unlock()
	offset := int64(len(walHeader))
	var frame [frameHeaderLen]byte
	payload := make([]byte, maxRecordBytes)
	for offset < size {
		if _, err := w.f.ReadAt(frame[:], offset); err != nil {
			return fmt.Errorf("ledger: WAL replay at %d: %w", offset, err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		if length > maxRecordBytes || int64(length) > size-offset-frameHeaderLen {
			return fmt.Errorf("ledger: %w: WAL changed during replay at offset %d", ErrCorrupt, offset)
		}
		payload = payload[:length]
		if _, err := w.f.ReadAt(payload, offset+frameHeaderLen); err != nil {
			return fmt.Errorf("ledger: WAL replay payload at %d: %w", offset, err)
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[4:8]) {
			return fmt.Errorf("ledger: %w: WAL checksum changed during replay at offset %d", ErrCorrupt, offset)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("ledger: %w: WAL replay decode at offset %d: %v", ErrCorrupt, offset, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		offset += frameHeaderLen + int64(length)
	}
	return nil
}

// Close implements Store.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// syncDir fsyncs the directory containing path, making the file's directory
// entry durable. Best-effort: some filesystems refuse directory fsync, and a
// missing entry sync only loses an *empty* log.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
