package ledger

import (
	"fmt"
	"sync"
	"time"
)

// FaultStore wraps a Store and injects failures or stalls into chosen
// commits, so tests can drive the fail-closed serving paths (HTTP 503,
// degraded /healthz) and the batcher's behavior under a slow disk without a
// real medium failure. It is a test fixture that lives in the package so the
// serving layer's handler tests can use it against any backend.
type FaultStore struct {
	inner Store

	// FailOn, when > 0, fails the FailOn-th Append call (1-based) — and,
	// matching the fail-closed contract of real stores, every later one.
	FailOn int
	// Err is the injected failure; it wraps ErrUnavailable by default so
	// the serving layer's 503 mapping sees what a real store failure
	// produces.
	Err error
	// StallOn, when > 0, delays the StallOn-th Append call by StallFor
	// before forwarding it.
	StallOn  int
	StallFor time.Duration

	mu      sync.Mutex
	appends int
	tripped bool
}

// NewFaultStore wraps inner. Configure the exported fields before use.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner, Err: fmt.Errorf("%w: injected fault", ErrUnavailable)}
}

// Append implements Store, injecting the configured fault.
func (f *FaultStore) Append(batch []Record) (uint64, error) {
	f.mu.Lock()
	f.appends++
	n := f.appends
	if f.FailOn > 0 && n >= f.FailOn {
		f.tripped = true
	}
	tripped := f.tripped
	stall := f.StallOn > 0 && n == f.StallOn
	f.mu.Unlock()
	if tripped {
		return 0, f.Err
	}
	if stall {
		time.Sleep(f.StallFor)
	}
	return f.inner.Append(batch)
}

// Appends reports how many Append calls the store has seen.
func (f *FaultStore) Appends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends
}

// Replay implements Store.
func (f *FaultStore) Replay(fn func(Record) error) error { return f.inner.Replay(fn) }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }
