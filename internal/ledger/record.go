package ledger

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record is one durably committed budget spend: the caller's API key charged
// Eps for a release of Dataset through Mechanism. Seq is the record's 1-based
// position in the ledger, assigned by the store at commit; replay yields
// records with Seq set, and the canonical encoding includes it, so a record's
// Merkle leaf commits to its position as well as its content.
type Record struct {
	Seq       uint64
	Key       string
	Dataset   string
	Mechanism string
	Eps       float64
}

// maxRecordBytes bounds one encoded record. Keys are capped at the serving
// layer and dataset/mechanism names are registry constants, so a frame
// claiming a larger payload can only be corruption.
const maxRecordBytes = 4096

// AppendRecord appends r's canonical binary encoding to buf and returns the
// extended slice. The encoding is deterministic — uvarint-length-prefixed
// strings and big-endian IEEE 754 bits for the epsilon — and is used both as
// the WAL frame payload and as the Merkle leaf, so an offline verifier can
// reconstruct a leaf from the record fields alone.
func AppendRecord(buf []byte, r Record) []byte {
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = appendString(buf, r.Key)
	buf = appendString(buf, r.Dataset)
	buf = appendString(buf, r.Mechanism)
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Eps))
}

// EncodeRecord returns r's canonical binary encoding.
func EncodeRecord(r Record) []byte { return AppendRecord(nil, r) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeRecord parses a canonical record encoding. The whole buffer must be
// consumed: trailing bytes mean the frame length and the payload disagree.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	var err error
	if r.Seq, b, err = readUvarint(b); err != nil {
		return r, fmt.Errorf("ledger: record seq: %w", err)
	}
	if r.Key, b, err = readString(b); err != nil {
		return r, fmt.Errorf("ledger: record key: %w", err)
	}
	if r.Dataset, b, err = readString(b); err != nil {
		return r, fmt.Errorf("ledger: record dataset: %w", err)
	}
	if r.Mechanism, b, err = readString(b); err != nil {
		return r, fmt.Errorf("ledger: record mechanism: %w", err)
	}
	if len(b) != 8 {
		return r, fmt.Errorf("ledger: record epsilon: %d bytes left, want 8", len(b))
	}
	r.Eps = math.Float64frombits(binary.BigEndian.Uint64(b))
	return r, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
