package ledger

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBatcherConcurrentSubmitExactAccounting hammers one batcher from 8
// goroutines and checks the strongest invariants group commit must preserve:
// every submission gets a distinct sequence number, the store holds exactly
// the submitted records in sequence order, and the OnCommit hook saw every
// record exactly once, in order. Run with -race.
func TestBatcherConcurrentSubmitExactAccounting(t *testing.T) {
	const goroutines, perG = 8, 50
	store := NewMemStore()
	var hookMu sync.Mutex // the hook is single-goroutine, but -race can't know
	var hooked []Record
	b := NewBatcher(store, 16, func(recs []Record) {
		hookMu.Lock()
		hooked = append(hooked, recs...)
		hookMu.Unlock()
	})

	seqs := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seq, err := b.Submit(Record{Key: fmt.Sprintf("key-%d", g), Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d submit %d: %v", g, i, err)
					return
				}
				seqs[g] = append(seqs[g], seq)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = goroutines * perG
	// Every sequence number 1..total was handed out exactly once.
	seen := make(map[uint64]bool, total)
	for g, list := range seqs {
		if len(list) != perG {
			t.Fatalf("goroutine %d got %d seqs, want %d", g, len(list), perG)
		}
		for _, s := range list {
			if s < 1 || s > total || seen[s] {
				t.Fatalf("goroutine %d got invalid or duplicate seq %d", g, s)
			}
			seen[s] = true
		}
	}
	// The store holds the full history in sequence order, with per-key
	// counts exactly matching what was submitted.
	counts := map[string]int{}
	var next uint64 = 1
	if err := store.Replay(func(r Record) error {
		if r.Seq != next {
			return fmt.Errorf("record out of order: seq %d at position %d", r.Seq, next)
		}
		next++
		counts[r.Key]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next != total+1 {
		t.Fatalf("store holds %d records, want %d", next-1, total)
	}
	for g := 0; g < goroutines; g++ {
		if got := counts[fmt.Sprintf("key-%d", g)]; got != perG {
			t.Errorf("key-%d has %d committed records, want %d", g, got, perG)
		}
	}
	// The hook observed the identical history, in order.
	if len(hooked) != total {
		t.Fatalf("OnCommit saw %d records, want %d", len(hooked), total)
	}
	for i, r := range hooked {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("OnCommit record %d has seq %d", i, r.Seq)
		}
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(Record{Key: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestBatcherGroupsWaitingSubmissions pins that the batcher actually batches:
// submissions that queue while a commit is in flight share one Append.
func TestBatcherGroupsWaitingSubmissions(t *testing.T) {
	const waiters = 15
	fs := NewFaultStore(NewMemStore())
	fs.StallOn, fs.StallFor = 1, 200*time.Millisecond
	b := NewBatcher(fs, 128, nil)
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < waiters+1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(Record{Key: fmt.Sprintf("k%d", i), Eps: 0.1}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// The first Append stalls; the other submissions pile up behind it and
	// drain into far fewer Appends than submissions.
	if got := fs.Appends(); got >= waiters+1 {
		t.Errorf("%d submissions took %d Appends; group commit never grouped", waiters+1, got)
	}
}

// TestBatcherFailClosed pins the sticky failure contract: once the store
// fails, the failed submission and every later one error out, and Err()
// reports the degradation.
func TestBatcherFailClosed(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailOn = 2
	b := NewBatcher(fs, 128, nil)
	defer b.Close()

	if _, err := b.Submit(Record{Key: "ok", Eps: 0.1}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if b.Err() != nil {
		t.Fatalf("healthy batcher reports error: %v", b.Err())
	}
	if _, err := b.Submit(Record{Key: "doomed", Eps: 0.1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("failed submit: %v, want ErrUnavailable", err)
	}
	if _, err := b.Submit(Record{Key: "after", Eps: 0.1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("submit after failure: %v, want ErrUnavailable", err)
	}
	if err := b.Err(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Err() = %v, want ErrUnavailable", err)
	}
	// Only the pre-failure record is durable.
	n := 0
	if err := fs.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("store holds %d records after failure, want 1", n)
	}
}
