// Package ledger provides the durable, tamper-evident budget ledger behind
// the serving layer's privacy accountants.
//
// The in-process accountants in internal/noise are authoritative for budget
// arithmetic but amnesiac: a process restart refunds every caller's epsilon,
// and a crash between charging and answering can spend budget without any
// durable trace. This package closes that gap with four composable pieces:
//
//   - Store: the pluggable commit log interface. Append durably commits a
//     batch of spend records and assigns them contiguous sequence numbers;
//     Replay streams every committed record back in order. MemStore is the
//     in-memory reference implementation (tests, single-process tooling);
//     WAL is the production backend.
//
//   - WAL: an append-only write-ahead log file. Each record is framed as
//     [u32 payload length][u32 CRC32-C][payload], where the payload is the
//     record's canonical binary encoding (EncodeRecord); every Append ends
//     with one fsync, so a record handed back to a caller is on disk. Opening
//     a WAL recovers it: frames are validated in order, a torn final frame
//     (the signature of a crash mid-write) is truncated away, and states no
//     crash can produce — a CRC-valid frame whose sequence number does not
//     match its position, or damaged bytes with an intact frame after them
//     (a crash tears only the final append) — fail recovery as evidence of
//     tampering instead of silently truncating committed spends.
//
//   - Batcher: an asynchronous group-commit loop in front of a Store. Callers
//     Submit one record and block until it is durable; the committer drains
//     every waiting submission into a single Append (one fsync per batch, not
//     per record) and completes each waiter with its assigned sequence
//     number. A store failure is sticky and fail-closed: the failed batch and
//     every later submission return the error, so no caller ever proceeds on
//     a spend that was not durably recorded.
//
//   - Tree: an RFC 6962-style Merkle tree over the canonical record
//     encodings, appended in commit order. The running root commits the
//     entire spend history; Prove returns an inclusion proof for any
//     committed record that VerifyInclusion checks offline against a
//     published root, so any caller can verify that their charge — and
//     everyone else's — is in the ledger the server claims to enforce.
//
// FaultStore wraps any Store and fails or stalls the Nth commit, driving the
// fail-closed paths (HTTP 503, degraded /healthz) in serving-layer tests.
//
// Records deliberately carry no timestamps: recovery must rebuild the exact
// accountant state from the log alone, and the determinism analyzer bans
// wall-clock reads in replayed code paths.
package ledger
