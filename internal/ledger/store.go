package ledger

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors for programmatic handling by the serving layer.
var (
	// ErrUnavailable marks a store whose durable medium failed. Stores are
	// fail-closed: once an Append errors, every later Append wraps this
	// sentinel, so a caller can distinguish "out of budget" from "cannot
	// durably record" and refuse service (HTTP 503) on the latter.
	ErrUnavailable = errors.New("ledger store unavailable")
	// ErrCorrupt marks a log whose committed prefix is structurally invalid
	// in a way no crash can produce (a CRC-valid record at the wrong
	// sequence position, a foreign file header) — evidence of tampering, not
	// of a torn write, so recovery refuses rather than truncates.
	ErrCorrupt = errors.New("ledger store corrupt")
	// ErrClosed marks a submission to a closed store or batcher.
	ErrClosed = errors.New("ledger store closed")
)

// Store is the pluggable ledger store (the LedgerStore interface): a durable,
// append-only commit log of spend records.
//
// Append durably commits the batch and returns the 1-based sequence number
// assigned to the first record (the rest follow contiguously); when it
// returns, every record in the batch is recoverable by a later Replay even
// across a crash. Implementations are fail-closed: after any Append error,
// all subsequent Appends fail with ErrUnavailable. Replay streams every
// committed record in sequence order and must not run concurrently with
// Append — the serving layer replays once, at startup, before taking
// traffic. Close releases the underlying medium; Append after Close returns
// ErrClosed.
type Store interface {
	Append(batch []Record) (firstSeq uint64, err error)
	Replay(fn func(Record) error) error
	Close() error
}

// MemStore is the in-memory Store: the existing non-durable accounting path
// expressed behind the interface. It is the reference implementation for
// tests and single-process tooling; a restart loses it by construction.
type MemStore struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(batch []Record) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("ledger: memory append: %w", ErrClosed)
	}
	first := uint64(len(m.recs)) + 1
	for i, r := range batch {
		r.Seq = first + uint64(i)
		m.recs = append(m.recs, r)
	}
	return first, nil
}

// Replay implements Store.
func (m *MemStore) Replay(fn func(Record) error) error {
	m.mu.Lock()
	recs := m.recs[:len(m.recs):len(m.recs)]
	m.mu.Unlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
