package ledger

import (
	"fmt"
	"testing"
)

func testLeaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = EncodeRecord(Record{Seq: uint64(i) + 1, Key: fmt.Sprintf("k%d", i), Dataset: "ADULT", Mechanism: "DAWA", Eps: 0.1})
	}
	return out
}

// TestTreeRootMatchesRFC6962 checks the incremental O(log n) root against a
// from-scratch recursive MTH over the same leaves, for every size up to 33
// (crossing several power-of-two boundaries).
func TestTreeRootMatchesRFC6962(t *testing.T) {
	var tr Tree
	if root, size := tr.Root(); size != 0 || root != EmptyRoot() {
		t.Fatalf("empty tree root = %x (size %d), want EmptyRoot", root, size)
	}
	leaves := testLeaves(33)
	var hashes []Hash
	for i, l := range leaves {
		tr.Append(l)
		hashes = append(hashes, LeafHash(l))
		got, size := tr.Root()
		if size != uint64(i)+1 {
			t.Fatalf("size after %d appends = %d", i+1, size)
		}
		if want := mth(hashes); got != want {
			t.Fatalf("size %d: incremental root %x != recursive MTH %x", i+1, got, want)
		}
	}
}

// TestTreeProofsVerify proves every leaf at every tree size and verifies each
// proof offline, then checks that any mutation of a valid proof is rejected.
func TestTreeProofsVerify(t *testing.T) {
	leaves := testLeaves(13)
	var tr Tree
	for size := 1; size <= len(leaves); size++ {
		tr.Append(leaves[size-1])
		for i := 0; i < size; i++ {
			p, err := tr.Prove(uint64(i))
			if err != nil {
				t.Fatalf("size %d: Prove(%d): %v", size, i, err)
			}
			if !VerifyInclusion(p) {
				t.Fatalf("size %d: proof for leaf %d does not verify", size, i)
			}
			// The proof's leaf hash is reconstructible from the record alone,
			// which is what lets a client verify its own spend offline.
			if p.LeafHash != LeafHash(leaves[i]) {
				t.Fatalf("size %d: proof leaf hash mismatch for leaf %d", size, i)
			}
		}
	}

	p, err := tr.Prove(5)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(Proof) Proof{
		"flipped leaf":    func(p Proof) Proof { p.LeafHash[0] ^= 1; return p },
		"flipped root":    func(p Proof) Proof { p.Root[0] ^= 1; return p },
		"flipped sibling": func(p Proof) Proof { p.Path = append([]Hash{}, p.Path...); p.Path[0][0] ^= 1; return p },
		"wrong index":     func(p Proof) Proof { p.Index++; return p },
		// Size+1 would keep the fold shape for this index and legitimately
		// reverify (the claimed size is authenticated by comparing Root to
		// the published root); halving it changes the shape and must fail.
		"halved size":     func(p Proof) Proof { p.Size /= 2; return p },
		"dropped sibling": func(p Proof) Proof { p.Path = p.Path[:len(p.Path)-1]; return p },
		"extra sibling":   func(p Proof) Proof { p.Path = append(append([]Hash{}, p.Path...), Hash{}); return p },
	}
	for name, mutate := range mutations {
		if VerifyInclusion(mutate(p)) {
			t.Errorf("%s: mutated proof still verifies", name)
		}
	}

	if _, err := tr.Prove(uint64(len(leaves))); err == nil {
		t.Error("Prove past the end succeeded")
	}
}
