package transform

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaarRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		c, err := HaarForward(x)
		if err != nil {
			return false
		}
		y, err := HaarInverse(c)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaarAverageCoefficient(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	c, err := HaarForward(x)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 4 { // average
		t.Fatalf("c[0] = %v, want 4", c[0])
	}
	// Root detail: (avg(1,3) - avg(5,7))/2 = (2-6)/2 = -2.
	if c[1] != -2 {
		t.Fatalf("c[1] = %v, want -2", c[1])
	}
}

func TestHaarRejectsNonPow2(t *testing.T) {
	if _, err := HaarForward(make([]float64, 3)); err == nil {
		t.Fatal("expected error for n=3")
	}
	if _, err := HaarInverse(make([]float64, 0)); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestHaarUnitSensitivity(t *testing.T) {
	// Adding 1 to any single cell changes the coefficient vector by exactly
	// 1 in L1 norm (this justifies Privelet's noise calibration).
	for n := 2; n <= 64; n *= 2 {
		for cell := 0; cell < n; cell += n/2 + 1 {
			x := make([]float64, n)
			c0, _ := HaarForward(x)
			x[cell] = 1
			c1, _ := HaarForward(x)
			var l1 float64
			for i := range c0 {
				l1 += math.Abs(c1[i] - c0[i])
			}
			if math.Abs(l1-1) > 1e-9 {
				t.Fatalf("n=%d cell=%d: L1 sensitivity %v, want 1", n, cell, l1)
			}
		}
	}
}

func TestHaarLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4}
	for i, want := range cases {
		if got := HaarLevel(i); got != want {
			t.Fatalf("HaarLevel(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFFTRoundTripPow2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFFTRoundTripArbitraryN(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-y[i]) > 1e-7 {
				t.Fatalf("n=%d: round trip error %v at %d", n, cmplx.Abs(x[i]-y[i]), i)
			}
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{4, 8, 7, 12} {
		rng := rand.New(rand.NewSource(int64(100 + n)))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				ang := -2 * math.Pi * float64(k*j) / float64(n)
				want += x[j] * cmplx.Exp(complex(0, ang))
			}
			if cmplx.Abs(got[k]-want) > 1e-7 {
				t.Fatalf("n=%d k=%d: FFT %v, naive %v", n, k, got[k], want)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 256
	x := make([]float64, n)
	var tEnergy float64
	for i := range x {
		x[i] = rng.NormFloat64()
		tEnergy += x[i] * x[i]
	}
	F := FFTReal(x)
	var fEnergy float64
	for _, v := range F {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fEnergy/float64(n)-tEnergy) > 1e-8 {
		t.Fatalf("Parseval violated: %v vs %v", fEnergy/float64(n), tEnergy)
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil {
		t.Fatal("FFT(nil) should be nil")
	}
	if IFFT(nil) != nil {
		t.Fatal("IFFT(nil) should be nil")
	}
}

func TestHilbertBijection(t *testing.T) {
	for _, order := range []uint{1, 2, 3, 5} {
		side := 1 << order
		seen := make(map[int]bool)
		for d := 0; d < side*side; d++ {
			x, y := HilbertD2XY(order, d)
			if x < 0 || x >= side || y < 0 || y >= side {
				t.Fatalf("order %d d=%d: out of range (%d,%d)", order, d, x, y)
			}
			if got := HilbertXY2D(order, x, y); got != d {
				t.Fatalf("order %d: XY2D(D2XY(%d)) = %d", order, d, got)
			}
			key := y*side + x
			if seen[key] {
				t.Fatalf("order %d: cell (%d,%d) visited twice", order, x, y)
			}
			seen[key] = true
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive curve positions are grid neighbours — the locality
	// property DAWA relies on.
	order := uint(4)
	side := 1 << order
	for d := 0; d+1 < side*side; d++ {
		x0, y0 := HilbertD2XY(order, d)
		x1, y1 := HilbertD2XY(order, d+1)
		if manhattan(x0, y0, x1, y1) != 1 {
			t.Fatalf("positions %d and %d not adjacent: (%d,%d) (%d,%d)", d, d+1, x0, y0, x1, y1)
		}
	}
}

func manhattan(x0, y0, x1, y1 int) int {
	dx, dy := x1-x0, y1-y0
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func TestHilbertOrder(t *testing.T) {
	if k, err := HilbertOrder(64); err != nil || k != 6 {
		t.Fatalf("HilbertOrder(64) = %d, %v", k, err)
	}
	if _, err := HilbertOrder(48); err == nil {
		t.Fatal("expected error for non-power-of-two side")
	}
	if _, err := HilbertOrder(0); err == nil {
		t.Fatal("expected error for zero side")
	}
}

func TestHilbertLinearizeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 1 << (1 + rng.Intn(5))
		data := make([]float64, side*side)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		lin, perm, err := HilbertLinearize(data, side)
		if err != nil {
			return false
		}
		back := HilbertDelinearize(lin, perm)
		for i := range data {
			if data[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertLinearizeErrors(t *testing.T) {
	if _, _, err := HilbertLinearize(make([]float64, 10), 4); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, _, err := HilbertLinearize(make([]float64, 9), 3); err == nil {
		t.Fatal("expected non-power-of-two error")
	}
}
