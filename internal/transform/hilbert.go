package transform

import "fmt"

// HilbertD2XY converts a distance d along the Hilbert curve of order k (a
// 2^k x 2^k grid) into (x, y) coordinates, using the classic rotation-based
// construction.
func HilbertD2XY(order uint, d int) (x, y int) {
	t := d
	for s := 1; s < 1<<order; s <<= 1 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// HilbertXY2D converts (x, y) coordinates on a 2^k x 2^k grid into the
// distance along the Hilbert curve of order k.
func HilbertXY2D(order uint, x, y int) int {
	d := 0
	for s := 1 << (order - 1); s > 0; s >>= 1 {
		var rx, ry int
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

func hilbertRot(s, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertOrder returns k such that the grid is 2^k x 2^k, or an error if side
// is not a power of two.
func HilbertOrder(side int) (uint, error) {
	if side <= 0 || side&(side-1) != 0 {
		return 0, fmt.Errorf("transform: Hilbert side %d is not a power of two", side)
	}
	var k uint
	for 1<<k < side {
		k++
	}
	return k, nil
}

// HilbertLinearize maps a row-major 2D data slice on a side x side grid
// (side a power of two) onto a 1D slice ordered by Hilbert distance, so
// spatially adjacent cells tend to stay adjacent. The returned permutation
// perm satisfies out[d] = data[perm[d]].
func HilbertLinearize(data []float64, side int) (out []float64, perm []int, err error) {
	order, err := HilbertOrder(side)
	if err != nil {
		return nil, nil, err
	}
	if len(data) != side*side {
		return nil, nil, fmt.Errorf("transform: data length %d does not match %dx%d grid", len(data), side, side)
	}
	out = make([]float64, len(data))
	perm = make([]int, len(data))
	for d := range data {
		x, y := HilbertD2XY(order, d)
		src := y*side + x
		out[d] = data[src]
		perm[d] = src
	}
	return out, perm, nil
}

// HilbertDelinearize inverts HilbertLinearize given the permutation it
// produced: result[perm[d]] = lin[d].
func HilbertDelinearize(lin []float64, perm []int) []float64 {
	out := make([]float64, len(lin))
	for d, src := range perm {
		out[src] = lin[d]
	}
	return out
}
