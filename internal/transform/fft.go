package transform

import (
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x. Power-of-two lengths use
// the iterative radix-2 Cooley-Tukey algorithm; other lengths fall back to
// Bluestein's chirp-z algorithm so EFPA works on arbitrary domain sizes.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := append([]complex128(nil), x...)
		fftRadix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x (normalized by
// 1/n so that IFFT(FFT(x)) == x).
func IFFT(x []complex128) []complex128 {
	if len(x) == 0 {
		return nil
	}
	return IFFTInto(make([]complex128, len(x)), x)
}

// IFFTInto is IFFT writing into a caller-provided destination (len(x)), so
// per-trial hot paths (EFPA's reconstruction) invert without allocating on
// power-of-two lengths; other lengths fall back to Bluestein's internal
// buffers. dst must not alias x. The arithmetic is identical to IFFT.
func IFFTInto(dst, x []complex128) []complex128 {
	n := len(x)
	if len(dst) != n {
		panic("transform: IFFTInto length mismatch")
	}
	if n == 0 {
		return dst
	}
	if n&(n-1) == 0 {
		copy(dst, x)
		fftRadix2(dst, true)
	} else {
		copy(dst, bluestein(x, true))
	}
	inv := complex(1/float64(n), 0)
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// FFTReal transforms a real vector.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// fftRadix2 runs an in-place iterative radix-2 FFT. inverse selects the
// conjugated twiddle factors (no normalization).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// bluestein implements the chirp-z transform, expressing a DFT of arbitrary
// length as a convolution that is evaluated with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n; use modular arithmetic on 2n.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}
