// Package transform implements the signal transforms the algorithm suite
// depends on: the discrete Haar wavelet used by Privelet, the discrete
// Fourier transform used by EFPA, and the Hilbert space-filling curve used by
// DAWA and GreedyH to linearize 2D domains.
package transform

import "fmt"

// HaarForward computes the unnormalized discrete Haar wavelet transform of x
// in the form Privelet uses: coefficient 0 is the overall average, and the
// coefficient for an internal node of the dyadic tree is
// (avg(left half) - avg(right half)) / 2.
// len(x) must be a power of two. The input is not modified.
func HaarForward(x []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("transform: Haar length %d is not a power of two", n)
	}
	// avg[i] holds running averages of blocks at the current level.
	avg := append([]float64(nil), x...)
	coeffs := make([]float64, n)
	level := n
	for level > 1 {
		half := level / 2
		next := make([]float64, half)
		detail := make([]float64, half)
		for i := 0; i < half; i++ {
			a, b := avg[2*i], avg[2*i+1]
			next[i] = (a + b) / 2
			detail[i] = (a - b) / 2
		}
		// Coefficients for this level occupy positions [half, level).
		copy(coeffs[half:level], detail)
		avg = next
		level = half
	}
	coeffs[0] = avg[0]
	return coeffs, nil
}

// HaarInverse inverts HaarForward.
func HaarInverse(c []float64) ([]float64, error) {
	n := len(c)
	dst := make([]float64, n)
	if err := HaarInverseInto(dst, make([]float64, n), c); err != nil {
		return nil, err
	}
	return dst, nil
}

// HaarInverseInto inverts HaarForward into dst using tmp as ping-pong
// scratch (both len(c)); no allocations, identical arithmetic to
// HaarInverse. dst and tmp must not alias c or each other.
func HaarInverseInto(dst, tmp, c []float64) error {
	n := len(c)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("transform: Haar length %d is not a power of two", n)
	}
	if len(dst) != n || len(tmp) != n {
		return fmt.Errorf("transform: Haar inverse buffer length mismatch")
	}
	cur, next := dst, tmp
	cur[0] = c[0]
	for level := 1; level < n; level *= 2 {
		detail := c[level : 2*level]
		for i := 0; i < level; i++ {
			next[2*i] = cur[i] + detail[i]
			next[2*i+1] = cur[i] - detail[i]
		}
		cur, next = next, cur
	}
	if &cur[0] != &dst[0] {
		copy(dst, cur)
	}
	return nil
}

// HaarLevel returns the tree level of coefficient index i in the layout
// produced by HaarForward: level 0 is the average coefficient, level 1 the
// root detail coefficient, level l the 2^(l-1) coefficients at depth l.
func HaarLevel(i int) int {
	if i == 0 {
		return 0
	}
	level := 0
	for i > 0 {
		i >>= 1
		level++
	}
	return level
}
