package core

import (
	"context"
	"math"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/workload"
)

func TestScaledError(t *testing.T) {
	if got := ScaledError(100, 1000, 10); got != 0.01 {
		t.Fatalf("ScaledError = %v, want 0.01", got)
	}
	if got := ScaledError(1, 0, 10); !math.IsInf(got, 1) {
		t.Fatalf("zero scale should give +Inf, got %v", got)
	}
}

func TestScaledErrorInterpretation(t *testing.T) {
	// Paper example: absolute error 100 at scale 1000 vs scale 100,000 maps
	// to 0.1 and 0.001 per-query scaled error (one query).
	if got := ScaledError(100, 1000, 1); got != 0.1 {
		t.Fatalf("got %v, want 0.1", got)
	}
	if got := ScaledError(100, 100_000, 1); got != 0.001 {
		t.Fatalf("got %v, want 0.001", got)
	}
}

func TestBenchmark1DAssembly(t *testing.T) {
	b := NewRangeQueryBenchmark1D(256)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Datasets) != 18 {
		t.Fatalf("1D benchmark has %d datasets, want 18", len(b.Datasets))
	}
	if b.Workloads[0].Size() != 256 {
		t.Fatalf("prefix workload size %d", b.Workloads[0].Size())
	}
	// 14 one-dimensional algorithms are evaluated (Section 7: "we evaluated
	// 14 algorithms"), i.e. every registered algorithm supporting 1D + the
	// starred variants.
	if len(b.Algorithms) < 14 {
		t.Fatalf("only %d 1D algorithms", len(b.Algorithms))
	}
}

func TestBenchmark2DAssembly(t *testing.T) {
	b := NewRangeQueryBenchmark2D(32, 100, 7)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Datasets) != 9 {
		t.Fatalf("2D benchmark has %d datasets, want 9", len(b.Datasets))
	}
	if b.Workloads[0].Size() != 100 {
		t.Fatalf("workload size %d", b.Workloads[0].Size())
	}
}

func TestBenchmarkValidateCatchesMismatches(t *testing.T) {
	b := NewRangeQueryBenchmark1D(64)
	b.Datasets = dataset.Registry2D()
	if err := b.Validate(); err == nil {
		t.Fatal("expected dimensionality mismatch error")
	}
	b = NewRangeQueryBenchmark1D(64)
	b.Loss = nil
	if err := b.Validate(); err == nil {
		t.Fatal("expected missing-loss error")
	}
	b = &Benchmark{}
	if err := b.Validate(); err == nil {
		t.Fatal("expected empty-benchmark error")
	}
}

func TestRepairSideInfo(t *testing.T) {
	m, _ := algo.New("MWEM")
	u, _ := algo.New("UGRID")
	id, _ := algo.New("IDENTITY")
	RepairSideInfo([]algo.Algorithm{m, u, id}, 0.05)
	if got := m.(*algo.MWEM).ScaleRho; got != 0.05 {
		t.Fatalf("MWEM ScaleRho = %v", got)
	}
	if got := u.(*algo.UGrid).ScaleRho; got != 0.05 {
		t.Fatalf("UGrid ScaleRho = %v", got)
	}
}

func mustAlgo(t *testing.T, name string) algo.Algorithm {
	t.Helper()
	a, err := algo.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRunProducesAllObservations(t *testing.T) {
	d, _ := dataset.ByName("MEDCOST")
	cfg := Config{
		Dataset:     d,
		Dims:        []int{256},
		Scale:       10_000,
		Eps:         0.5,
		Workload:    workload.Prefix(256),
		Algorithms:  []algo.Algorithm{mustAlgo(t, "IDENTITY"), mustAlgo(t, "UNIFORM"), mustAlgo(t, "HB")},
		DataSamples: 2,
		Trials:      3,
		Seed:        1,
	}
	results, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.Errors) != 6 {
			t.Fatalf("%s: %d observations, want 6", r.Name, len(r.Errors))
		}
		for _, e := range r.Errors {
			if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s: bad error %v", r.Name, e)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	d, _ := dataset.ByName("TRACE")
	mk := func() Config {
		return Config{
			Dataset:    d,
			Dims:       []int{256},
			Scale:      5000,
			Eps:        0.1,
			Workload:   workload.Prefix(256),
			Algorithms: []algo.Algorithm{mustAlgo(t, "IDENTITY")},
			Seed:       99,
		}
	}
	r1, err := Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1[0].Errors {
		if r1[0].Errors[i] != r2[0].Errors[i] {
			t.Fatal("runs with the same seed differ")
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	d, _ := dataset.ByName("ADULT")
	if _, err := Run(context.Background(), Config{Dataset: d}); err == nil {
		t.Fatal("expected error for missing workload")
	}
	if _, err := Run(context.Background(), Config{Dataset: d, Workload: workload.Prefix(4)}); err == nil {
		t.Fatal("expected error for missing algorithms")
	}
	if _, err := Run(context.Background(), Config{Dataset: d, Workload: workload.Prefix(4), Algorithms: []algo.Algorithm{mustAlgo(t, "IDENTITY")}}); err == nil {
		t.Fatal("expected error for zero scale")
	}
}

func TestCompetitiveSetIncludesBestAndTies(t *testing.T) {
	results := []AlgResult{
		{Name: "A", Errors: []float64{1.0, 1.1, 0.9, 1.05, 0.95}},
		{Name: "B", Errors: []float64{1.0, 1.05, 0.95, 1.02, 0.98}}, // tie with A
		{Name: "C", Errors: []float64{9.0, 9.1, 8.9, 9.05, 8.95}},   // clearly worse
	}
	comp := CompetitiveSet(results, 0.05)
	if !contains(comp, "A") || !contains(comp, "B") {
		t.Fatalf("competitive set %v should contain A and B", comp)
	}
	if contains(comp, "C") {
		t.Fatalf("competitive set %v should not contain C", comp)
	}
}

func TestCompetitiveSetEmpty(t *testing.T) {
	if got := CompetitiveSet(nil, 0.05); got != nil {
		t.Fatalf("want nil, got %v", got)
	}
}

func TestBestByMeanAndP95CanDiffer(t *testing.T) {
	// A has the lower mean but a heavy tail; B is steadier (Finding 8).
	results := []AlgResult{
		{Name: "volatile", Errors: []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 5.0}},
		{Name: "steady", Errors: []float64{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7}},
	}
	if got := BestByMean(results); got != "volatile" {
		t.Fatalf("BestByMean = %s", got)
	}
	if got := BestByP95(results); got != "steady" {
		t.Fatalf("BestByP95 = %s", got)
	}
}

func TestRegretTable(t *testing.T) {
	names := []string{"A", "B"}
	settings := [][]float64{
		{1, 2}, // oracle 1
		{4, 2}, // oracle 2
	}
	reg := RegretTable(names, settings)
	// A: ratios {1, 2} -> sqrt(2); B: ratios {2, 1} -> sqrt(2).
	if math.Abs(reg["A"]-math.Sqrt2) > 1e-12 || math.Abs(reg["B"]-math.Sqrt2) > 1e-12 {
		t.Fatalf("regret = %v", reg)
	}
}

func TestRegretOracleHasRegretOne(t *testing.T) {
	names := []string{"oracle-like", "other"}
	settings := [][]float64{{1, 5}, {2, 7}, {3, 11}}
	reg := RegretTable(names, settings)
	if math.Abs(reg["oracle-like"]-1) > 1e-12 {
		t.Fatalf("oracle regret = %v, want 1", reg["oracle-like"])
	}
	if reg["other"] <= 1 {
		t.Fatalf("dominated algorithm regret = %v, want > 1", reg["other"])
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
