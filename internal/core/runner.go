package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algo"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one experimental setting: a (dataset, domain, scale,
// epsilon) cell of the benchmark grid, following Section 6.1's protocol of
// drawing several data vectors from the generator and running each algorithm
// several times on each vector.
type Config struct {
	// Dataset is the source shape.
	Dataset dataset.Dataset
	// Dims is the domain, e.g. []int{4096} or []int{128, 128}.
	Dims []int
	// Scale is the number of tuples the generator draws.
	Scale int
	// Eps is the privacy budget.
	Eps float64
	// Workload is the query set; the loss is computed over its answers.
	Workload *workload.Workload
	// Algorithms are the mechanisms to compare.
	Algorithms []algo.Algorithm
	// DataSamples is the number of vectors drawn from the generator
	// (paper: 5). Defaults to 3.
	DataSamples int
	// Trials is the number of algorithm executions per vector (paper: 10).
	// Defaults to 3.
	Trials int
	// Seed makes the experiment reproducible.
	Seed int64
	// Loss defaults to L2Loss.
	Loss LossFunc
}

// AlgResult holds every scaled-error observation for one algorithm in one
// setting (DataSamples * Trials values), plus the aggregates DPBench
// reports.
type AlgResult struct {
	Name   string
	Errors []float64
}

// MeanError returns the mean scaled error (the risk-neutral measure).
func (r AlgResult) MeanError() float64 { return stats.Mean(r.Errors) }

// P95Error returns the 95th-percentile scaled error (the risk-averse
// measure of Principle 8).
func (r AlgResult) P95Error() float64 { return stats.Percentile(r.Errors, 95) }

// newRNG builds a deterministic RNG from a seed.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Run executes one experimental setting and returns per-algorithm results in
// the order of cfg.Algorithms. Each algorithm sees the same sequence of data
// vectors; every (vector, trial, algorithm) triple gets an independent
// deterministic RNG stream so results are reproducible and algorithms do not
// perturb each other's randomness.
func Run(cfg Config) ([]AlgResult, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("core: config has no workload")
	}
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("core: config has no algorithms")
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("core: non-positive scale %d", cfg.Scale)
	}
	samples := cfg.DataSamples
	if samples <= 0 {
		samples = 3
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	loss := cfg.Loss
	if loss == nil {
		loss = L2Loss
	}
	results := make([]AlgResult, len(cfg.Algorithms))
	for i, a := range cfg.Algorithms {
		results[i].Name = a.Name()
	}
	q := cfg.Workload.Size()
	for s := 0; s < samples; s++ {
		genRNG := newRNG(cfg.Seed ^ int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)*int64(s+1))
		x, err := cfg.Dataset.Generate(genRNG, cfg.Scale, cfg.Dims...)
		if err != nil {
			return nil, fmt.Errorf("core: generating %s: %w", cfg.Dataset.Name, err)
		}
		trueAns, err := cfg.Workload.Evaluate(x)
		if err != nil {
			return nil, err
		}
		for t := 0; t < trials; t++ {
			for i, a := range cfg.Algorithms {
				runRNG := newRNG(cfg.Seed + int64(s)*1_000_003 + int64(t)*7_919 + int64(i)*104_729 + 17)
				est, err := a.Run(x, cfg.Workload, cfg.Eps, runRNG)
				if err != nil {
					return nil, fmt.Errorf("core: %s on %s: %w", a.Name(), cfg.Dataset.Name, err)
				}
				estAns := cfg.Workload.EvaluateFlat(est)
				e := ScaledError(loss(estAns, trueAns), float64(cfg.Scale), q)
				results[i].Errors = append(results[i].Errors, e)
			}
		}
	}
	return results, nil
}

// CompetitiveSet returns the names of algorithms that are competitive for
// state-of-the-art performance in this setting (Section 5.3): the algorithm
// with the lowest mean error, plus every algorithm whose mean-error
// difference from it is not statistically significant under an unpaired
// Welch t-test at the Bonferroni-corrected level alpha/(nalgs-1).
func CompetitiveSet(results []AlgResult, alpha float64) []string {
	if len(results) == 0 {
		return nil
	}
	best := 0
	for i := range results {
		if results[i].MeanError() < results[best].MeanError() {
			best = i
		}
	}
	corrected := stats.Bonferroni(alpha, len(results)-1)
	out := []string{results[best].Name}
	for i := range results {
		if i == best {
			continue
		}
		tt := stats.WelchTTest(results[i].Errors, results[best].Errors)
		if tt.P > corrected {
			out = append(out, results[i].Name)
		}
	}
	return out
}

// BestByP95 returns the name of the algorithm with the lowest 95th-percentile
// error, the risk-averse winner of Finding 8.
func BestByP95(results []AlgResult) string {
	if len(results) == 0 {
		return ""
	}
	best := 0
	for i := range results {
		if results[i].P95Error() < results[best].P95Error() {
			best = i
		}
	}
	return results[best].Name
}

// BestByMean returns the name of the algorithm with the lowest mean error.
func BestByMean(results []AlgResult) string {
	if len(results) == 0 {
		return ""
	}
	best := 0
	for i := range results {
		if results[i].MeanError() < results[best].MeanError() {
			best = i
		}
	}
	return results[best].Name
}

// RegretTable computes, for each algorithm, the geometric-mean ratio of its
// mean error to the per-setting oracle minimum, over a grid of settings
// (Section 7.2: DAWA achieves 1.32 on 1D, 1.73 on 2D). settings[i][j] is the
// mean error of algorithm j on setting i; algorithm order must be fixed
// across settings.
func RegretTable(names []string, settings [][]float64) map[string]float64 {
	out := make(map[string]float64, len(names))
	if len(settings) == 0 {
		return out
	}
	oracle := make([]float64, len(settings))
	for i, row := range settings {
		m := row[0]
		for _, v := range row[1:] {
			if v < m {
				m = v
			}
		}
		oracle[i] = m
	}
	for j, name := range names {
		errs := make([]float64, len(settings))
		for i, row := range settings {
			errs[i] = row[j]
		}
		out[name] = stats.Regret(errs, oracle)
	}
	return out
}
