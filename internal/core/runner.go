package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/noise"
	"dpbench/internal/stats"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Config describes one experimental setting: a (dataset, domain, scale,
// epsilon) cell of the benchmark grid, following Section 6.1's protocol of
// drawing several data vectors from the generator and running each algorithm
// several times on each vector.
type Config struct {
	// Dataset is the source shape.
	Dataset dataset.Dataset
	// Dims is the domain, e.g. []int{4096} or []int{128, 128}.
	Dims []int
	// Scale is the number of tuples the generator draws.
	Scale int
	// Eps is the privacy budget.
	Eps float64
	// Workload is the query set; the loss is computed over its answers.
	Workload *workload.Workload
	// Algorithms are the mechanisms to compare.
	Algorithms []algo.Algorithm
	// DataSamples is the number of vectors drawn from the generator
	// (paper: 5). Defaults to 3.
	DataSamples int
	// Trials is the number of algorithm executions per vector (paper: 10).
	// Defaults to 3.
	Trials int
	// Seed makes the experiment reproducible.
	Seed int64
	// Loss defaults to L2Loss.
	Loss LossFunc
	// Parallelism is the worker count RunParallel uses when its workers
	// argument is <= 0. Zero means runtime.GOMAXPROCS(0). Serial Run
	// ignores it.
	Parallelism int
	// Audit, when true, executes every trial through a ledger-backed noise
	// meter and fails the run unless the mechanism's recorded spends sum to
	// exactly Eps (within 1e-9) and match its declared composition plan.
	// Results are bit-identical to an unaudited run — the meter wraps the
	// noise stream without reordering it.
	Audit bool
	// Sampler selects the noise-sampling implementation family every trial's
	// meter routes draws through. The zero value is noise.SamplerLegacy, the
	// bit-identical golden/repro path; noise.SamplerFast trades the legacy
	// stream for table-accelerated samplers (same distributions, different
	// draws — see the noise package).
	Sampler noise.SamplerVersion
}

// AlgResult holds every scaled-error observation for one algorithm in one
// setting (DataSamples * Trials values), plus the aggregates DPBench
// reports.
type AlgResult struct {
	Name   string
	Errors []float64
}

// MeanError returns the mean scaled error (the risk-neutral measure).
func (r AlgResult) MeanError() float64 { return stats.Mean(r.Errors) }

// P95Error returns the 95th-percentile scaled error (the risk-averse
// measure of Principle 8).
func (r AlgResult) P95Error() float64 { return stats.Percentile(r.Errors, 95) }

// newRNG builds a deterministic RNG whose stream identity is the full 64-bit
// seed (noise.NewRand's SplitMix64 source).
func newRNG(seed int64) *rand.Rand { return noise.NewRand(uint64(seed)) }

// runPlan is a Config with defaults applied, shared by Run and RunParallel so
// both paths execute exactly the same cells.
type runPlan struct {
	samples, trials int
	loss            LossFunc
	q               int
}

// plan validates the config and resolves the defaulted fields.
func (cfg *Config) plan() (runPlan, error) {
	if cfg.Workload == nil {
		return runPlan{}, fmt.Errorf("core: config has no workload")
	}
	if len(cfg.Algorithms) == 0 {
		return runPlan{}, fmt.Errorf("core: config has no algorithms")
	}
	if cfg.Scale <= 0 {
		return runPlan{}, fmt.Errorf("core: non-positive scale %d", cfg.Scale)
	}
	p := runPlan{samples: cfg.DataSamples, trials: cfg.Trials, loss: cfg.Loss, q: cfg.Workload.Size()}
	if p.samples <= 0 {
		p.samples = 3
	}
	if p.trials <= 0 {
		p.trials = 3
	}
	if p.loss == nil {
		p.loss = L2Loss
	}
	return p, nil
}

// newResults pre-sizes one error slot per (sample, trial) observation for
// each algorithm, so serial and parallel execution fill identical layouts
// regardless of completion order. Slot (s, t) lives at index s*trials+t,
// matching the serial loop order.
func newResults(cfg Config, p runPlan) []AlgResult {
	results := make([]AlgResult, len(cfg.Algorithms))
	for i, a := range cfg.Algorithms {
		results[i].Name = a.Name()
		results[i].Errors = make([]float64, p.samples*p.trials)
	}
	return results
}

// evalScratch holds the per-worker trial buffers: a reusable workload
// Evaluator, the answer vector the loss is computed over, and the estimate
// buffer mechanism plans execute into. One scratch serves every cell a
// worker executes, so the per-trial hot path of the runner performs no
// workload-evaluation or estimate allocations.
type evalScratch struct {
	ev     *workload.Evaluator
	estAns []float64
	est    []float64
}

func newEvalScratch(w *workload.Workload) *evalScratch {
	return &evalScratch{ev: workload.NewEvaluator(w), estAns: make([]float64, w.Size())}
}

// estBuf returns the scratch's estimate buffer at length n, growing it on
// first use (the domain size is fixed within one Config).
func (sc *evalScratch) estBuf(n int) []float64 {
	if cap(sc.est) < n {
		sc.est = make([]float64, n)
	}
	return sc.est[:n]
}

// generateSample draws sample s's data vector from the generator on its
// dedicated RNG stream and evaluates the workload's true answers.
func generateSample(cfg Config, s int) (*vec.Vector, []float64, error) {
	genRNG := newRNG(generatorSeed(cfg.Seed, s))
	x, err := cfg.Dataset.Generate(genRNG, cfg.Scale, cfg.Dims...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generating %s: %w", cfg.Dataset.Name, err)
	}
	trueAns, err := cfg.Workload.Evaluate(x)
	if err != nil {
		return nil, nil, err
	}
	return x, trueAns, nil
}

// buildPlans prepares one executable plan per algorithm for one sample's
// data vector. Plans amortize all structure building across the sample's
// trials; data-independent mechanisms additionally share their structures
// process-wide, so repeated cells of a sweep pay for them once.
func buildPlans(cfg Config, x *vec.Vector) ([]algo.Plan, error) {
	plans := make([]algo.Plan, len(cfg.Algorithms))
	for i, a := range cfg.Algorithms {
		p, err := a.Plan(x, cfg.Workload, cfg.Eps)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s on %s: %w", a.Name(), cfg.Dataset.Name, err)
		}
		plans[i] = p
	}
	return plans, nil
}

// runCell executes one (sample, trial, algorithm) cell on its own RNG stream
// through the sample's prepared plan and returns the scaled error. sc
// provides the reusable evaluation and estimate buffers. With cfg.Audit set
// the trial runs through algo.ExecuteAudited, which verifies the mechanism's
// budget ledger after the run. Output is bit-identical to running the
// algorithm directly: Run is Plan + Execute by construction.
func runCell(cfg Config, p runPlan, plan algo.Plan, x *vec.Vector, trueAns []float64, s, t, i int, sc *evalScratch) (float64, error) {
	a := cfg.Algorithms[i]
	runRNG := newRNG(deriveSeed(cfg.Seed, s, t, i))
	est := sc.estBuf(x.N())
	var err error
	if cfg.Audit {
		err = algo.ExecuteAuditedV(a, plan, cfg.Eps, runRNG, cfg.Sampler, est)
	} else {
		err = plan.Execute(noise.NewMeterV(cfg.Eps, runRNG, cfg.Sampler), est)
	}
	if err != nil {
		return 0, fmt.Errorf("core: %s on %s: %w", a.Name(), cfg.Dataset.Name, err)
	}
	sc.ev.Reset(est)
	sc.ev.AnswerAll(sc.estAns)
	return ScaledError(p.loss(sc.estAns, trueAns), float64(cfg.Scale), p.q), nil
}

// Run executes one experimental setting and returns per-algorithm results in
// the order of cfg.Algorithms. Each algorithm sees the same sequence of data
// vectors; every (vector, trial, algorithm) triple gets an independent
// deterministic RNG stream (derived via SplitMix64, see deriveSeed) so
// results are reproducible and algorithms do not perturb each other's
// randomness. Each (sample, algorithm) pair is planned once and the plan is
// executed across all trials, so structure building is amortized out of the
// trial loop. RunParallel computes the identical output concurrently.
//
// Cancelling ctx stops the run between cells: the current cell finishes, no
// further cells start, and ctx.Err() is returned. Cancellation cannot change
// any value a completed run reports — every cell's RNG stream is derived
// from its coordinates, never from what ran before it.
func Run(ctx context.Context, cfg Config) ([]AlgResult, error) {
	p, err := cfg.plan()
	if err != nil {
		return nil, err
	}
	results := newResults(cfg, p)
	sc := newEvalScratch(cfg.Workload)
	for s := 0; s < p.samples; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, trueAns, err := generateSample(cfg, s)
		if err != nil {
			return nil, err
		}
		plans, err := buildPlans(cfg, x)
		if err != nil {
			return nil, err
		}
		for t := 0; t < p.trials; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for i := range cfg.Algorithms {
				e, err := runCell(cfg, p, plans[i], x, trueAns, s, t, i, sc)
				if err != nil {
					return nil, err
				}
				results[i].Errors[s*p.trials+t] = e
			}
		}
	}
	return results, nil
}

// CompetitiveSet returns the names of algorithms that are competitive for
// state-of-the-art performance in this setting (Section 5.3): the algorithm
// with the lowest mean error, plus every algorithm whose mean-error
// difference from it is not statistically significant under an unpaired
// Welch t-test at the Bonferroni-corrected level alpha/(nalgs-1).
func CompetitiveSet(results []AlgResult, alpha float64) []string {
	if len(results) == 0 {
		return nil
	}
	best := 0
	for i := range results {
		if results[i].MeanError() < results[best].MeanError() {
			best = i
		}
	}
	corrected := stats.Bonferroni(alpha, len(results)-1)
	out := []string{results[best].Name}
	for i := range results {
		if i == best {
			continue
		}
		tt := stats.WelchTTest(results[i].Errors, results[best].Errors)
		if tt.P > corrected {
			out = append(out, results[i].Name)
		}
	}
	return out
}

// BestByP95 returns the name of the algorithm with the lowest 95th-percentile
// error, the risk-averse winner of Finding 8.
func BestByP95(results []AlgResult) string {
	if len(results) == 0 {
		return ""
	}
	var sc stats.Scratch
	best, bestP95 := 0, math.Inf(1)
	for i := range results {
		if p95 := sc.Percentile(results[i].Errors, 95); p95 < bestP95 {
			best, bestP95 = i, p95
		}
	}
	return results[best].Name
}

// BestByMean returns the name of the algorithm with the lowest mean error.
func BestByMean(results []AlgResult) string {
	if len(results) == 0 {
		return ""
	}
	best := 0
	for i := range results {
		if results[i].MeanError() < results[best].MeanError() {
			best = i
		}
	}
	return results[best].Name
}

// RegretTable computes, for each algorithm, the geometric-mean ratio of its
// mean error to the per-setting oracle minimum, over a grid of settings
// (Section 7.2: DAWA achieves 1.32 on 1D, 1.73 on 2D). settings[i][j] is the
// mean error of algorithm j on setting i; algorithm order must be fixed
// across settings.
func RegretTable(names []string, settings [][]float64) map[string]float64 {
	out := make(map[string]float64, len(names))
	if len(settings) == 0 {
		return out
	}
	oracle := make([]float64, len(settings))
	for i, row := range settings {
		m := row[0]
		for _, v := range row[1:] {
			if v < m {
				m = v
			}
		}
		oracle[i] = m
	}
	for j, name := range names {
		errs := make([]float64, len(settings))
		for i, row := range settings {
			errs[i] = row[j]
		}
		out[name] = stats.Regret(errs, oracle)
	}
	return out
}
