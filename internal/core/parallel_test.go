package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

func parallelTestConfig(t *testing.T) Config {
	t.Helper()
	d, err := dataset.ByName("MEDCOST")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dataset:     d,
		Dims:        []int{256},
		Scale:       10_000,
		Eps:         0.5,
		Workload:    workload.Prefix(256),
		Algorithms:  []algo.Algorithm{mustAlgo(t, "IDENTITY"), mustAlgo(t, "HB"), mustAlgo(t, "DAWA")},
		DataSamples: 3,
		Trials:      4,
		Seed:        20160626,
	}
}

// TestRunParallelMatchesSerial is the golden determinism guarantee: the
// parallel runner must be bit-identical to the serial one for every worker
// count, because both draw every (sample, trial, algorithm) cell from the
// same deriveSeed stream and write into position-fixed slots.
func TestRunParallelMatchesSerial(t *testing.T) {
	serial, err := Run(context.Background(), parallelTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		par, err := RunParallel(context.Background(), parallelTestConfig(t), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Name != serial[i].Name {
				t.Fatalf("workers=%d: result %d is %s, want %s", workers, i, par[i].Name, serial[i].Name)
			}
			if len(par[i].Errors) != len(serial[i].Errors) {
				t.Fatalf("workers=%d: %s has %d observations, want %d",
					workers, par[i].Name, len(par[i].Errors), len(serial[i].Errors))
			}
			for j := range serial[i].Errors {
				if par[i].Errors[j] != serial[i].Errors[j] {
					t.Fatalf("workers=%d: %s observation %d = %v, serial %v (must be bit-identical)",
						workers, par[i].Name, j, par[i].Errors[j], serial[i].Errors[j])
				}
			}
		}
	}
}

// TestRunParallelUsesConfigParallelism checks the workers<=0 fallback chain.
func TestRunParallelUsesConfigParallelism(t *testing.T) {
	cfg := parallelTestConfig(t)
	cfg.Parallelism = 2
	par, err := RunParallel(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(context.Background(), parallelTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i].Errors {
			if par[i].Errors[j] != serial[i].Errors[j] {
				t.Fatal("Parallelism-driven run differs from serial")
			}
		}
	}
}

// failingAlgo errors on every cell after allowing `allow` successes, to
// exercise pool cancellation with work in flight.
type failingAlgo struct {
	allow int32
	calls atomic.Int32
}

func (f *failingAlgo) Name() string        { return "FAIL" }
func (f *failingAlgo) Supports(k int) bool { return true }
func (f *failingAlgo) DataDependent() bool { return false }
func (f *failingAlgo) Run(x *vec.Vector, _ *workload.Workload, _ float64, _ *rand.Rand) ([]float64, error) {
	if f.calls.Add(1) > f.allow {
		return nil, errors.New("synthetic failure")
	}
	return make([]float64, len(x.Data)), nil
}

func (f *failingAlgo) Plan(x *vec.Vector, _ *workload.Workload, _ float64) (algo.Plan, error) {
	return failingPlan{f}, nil
}

// failingPlan fails each Execute past the allowance, exercising in-flight
// error propagation through the plan-based trial loop.
type failingPlan struct{ f *failingAlgo }

func (p failingPlan) Execute(_ *noise.Meter, out []float64) error {
	if p.f.calls.Add(1) > p.f.allow {
		return errors.New("synthetic failure")
	}
	for i := range out {
		out[i] = 0
	}
	return nil
}

// TestRunParallelPropagatesError: a failing algorithm must cancel the pool
// without deadlock and surface its error through RunParallel.
func TestRunParallelPropagatesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := parallelTestConfig(t)
		cfg.Algorithms = []algo.Algorithm{mustAlgo(t, "IDENTITY"), &failingAlgo{allow: 2}}
		cfg.DataSamples = 4
		cfg.Trials = 8
		_, err := RunParallel(context.Background(), cfg, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected error from failing algorithm", workers)
		}
	}
}

// TestRunParallelValidation: the parallel path rejects the same bad configs
// as the serial one.
func TestRunParallelValidation(t *testing.T) {
	d, _ := dataset.ByName("ADULT")
	if _, err := RunParallel(context.Background(), Config{Dataset: d}, 4); err == nil {
		t.Fatal("expected error for missing workload")
	}
	if _, err := RunParallel(context.Background(), Config{Dataset: d, Workload: workload.Prefix(4)}, 4); err == nil {
		t.Fatal("expected error for missing algorithms")
	}
}

// TestParallelForCancelsAfterFirstError: the pool stops dispatching new
// indices once a call fails, and returns without deadlock.
func TestParallelForCancelsAfterFirstError(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := ParallelFor(4, 10_000, func(i int) error {
		started.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n == 10_000 {
		t.Fatal("pool dispatched every index despite an early error")
	}
}

// TestParallelForCoversAllIndices: every index runs exactly once on success.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		counts := make([]atomic.Int32, 137)
		if err := ParallelFor(workers, len(counts), func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestDeriveSeedDistinct: the SplitMix64 derivation must give distinct
// streams across a dense coordinate grid, including the reserved generator
// streams and adjacent base seeds (the failure mode of the old additive
// mixing).
func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	record := func(v int64, label string) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("seed collision between %s and %s", prev, label)
		}
		seen[v] = label
	}
	// firstDraw guards the *effective* stream space: newRNG must not reduce
	// the 64-bit seed into a smaller state (as stdlib rand.NewSource does,
	// mod 2^31-1), which would make distinct seeds alias to one stream.
	draws := map[int64]string{}
	firstDraw := func(v int64, label string) {
		d := newRNG(v).Int63()
		if prev, dup := draws[d]; dup {
			t.Fatalf("stream collision between %s and %s (identical first draw)", prev, label)
		}
		draws[d] = label
	}
	for _, base := range []int64{0, 1, 2, 20160626} {
		for s := 0; s < 8; s++ {
			label := fmt.Sprintf("gen(base=%d,s=%d)", base, s)
			record(generatorSeed(base, s), label)
			firstDraw(generatorSeed(base, s), label)
			for tr := 0; tr < 8; tr++ {
				for a := 0; a < 8; a++ {
					label := fmt.Sprintf("run(base=%d,s=%d,t=%d,a=%d)", base, s, tr, a)
					record(deriveSeed(base, s, tr, a), label)
					firstDraw(deriveSeed(base, s, tr, a), label)
				}
			}
		}
	}
}
