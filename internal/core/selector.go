package core

import (
	"fmt"

	"dpbench/internal/algo"
)

// Recommendation is the output of SelectAlgorithm: a mechanism choice with
// the reasoning a practitioner needs (Section 8's "lessons for
// practitioners" as code).
type Recommendation struct {
	// Primary is the recommended mechanism name.
	Primary string
	// Alternative is worth trying when the primary's caveat applies.
	Alternative string
	// Signal is the eps*scale product driving the choice.
	Signal float64
	// Regime is "low", "medium" or "high" signal.
	Regime string
	// Rationale explains the choice in the paper's terms.
	Rationale string
}

// Signal regime boundaries in eps*scale units. The low/high cut points come
// from the benchmark's scale sweeps at eps=0.1: data-dependent algorithms
// dominate below scale 1e4 (signal 1e3) and data-independent ones above
// scale 1e6 (signal 1e5).
const (
	lowSignalMax  = 1e3
	highSignalMin = 1e5
)

// SelectAlgorithm recommends a mechanism for a task from public facts only:
// the privacy budget, the (public or privately estimated) scale, and the
// dimensionality. It never touches the data vector, so using it costs no
// privacy budget — which is exactly the constraint that makes algorithm
// selection hard (Section 1) and signal-based rules the practical answer
// (Section 8).
func SelectAlgorithm(eps, scale float64, dims int) (Recommendation, error) {
	if eps <= 0 || scale <= 0 {
		return Recommendation{}, fmt.Errorf("core: eps and scale must be positive")
	}
	if dims != 1 && dims != 2 {
		return Recommendation{}, fmt.Errorf("core: selector covers the benchmark's 1D and 2D tasks, got %dD", dims)
	}
	signal := eps * scale
	rec := Recommendation{Signal: signal}
	switch {
	case signal < lowSignalMax:
		rec.Regime = "low"
		if dims == 1 {
			rec.Primary, rec.Alternative = "DAWA", "AHP*"
		} else {
			rec.Primary, rec.Alternative = "DAWA", "AGRID"
		}
		rec.Rationale = "low signal: data-dependent algorithms can beat data-independent ones " +
			"by up to an order of magnitude, but error varies with shape and has no public bound " +
			"(Findings 1, 3); DAWA has the lowest regret among them (Section 7.2)"
	case signal < highSignalMin:
		rec.Regime = "medium"
		if dims == 1 {
			rec.Primary, rec.Alternative = "DAWA", "HB"
		} else {
			rec.Primary, rec.Alternative = "AGRID", "HB"
		}
		rec.Rationale = "medium signal: the data-dependent advantage is shrinking; DAWA/AGRID remain " +
			"competitive while Hb closes in (Finding 5); a risk-averse user may already prefer Hb's " +
			"low variability (Finding 8)"
	default:
		rec.Regime = "high"
		rec.Primary, rec.Alternative = "HB", "IDENTITY"
		rec.Rationale = "high signal: data-independent hierarchies win, are easy to deploy, have " +
			"analytical error bounds and no free parameters (Section 8); most data-dependent " +
			"algorithms are beaten even by IDENTITY here (Finding 10)"
	}
	// The recommendation must name real, dimension-compatible mechanisms.
	for _, name := range []string{rec.Primary, rec.Alternative} {
		a, err := algo.New(name)
		if err != nil {
			return Recommendation{}, fmt.Errorf("core: selector produced unknown mechanism %s: %w", name, err)
		}
		if !a.Supports(dims) {
			return Recommendation{}, fmt.Errorf("core: selector produced %s which does not support %dD", name, dims)
		}
	}
	return rec, nil
}
