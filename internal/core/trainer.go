package core

import (
	"context"
	"fmt"
	"math"

	"dpbench/internal/algo"
	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Trainer implements Rparam, the free-parameter learning procedure of
// Section 5.2: given training shapes that are NOT part of the evaluation
// (DPBench trains on synthetic power-law and normal distributions), it grid
// searches each candidate parameter vector at a range of signal levels
// (eps * scale products) and records the winner per level. The resulting
// Profile is a data-independent function (eps, scale, n) -> theta, so using
// it does not violate Principle 6.
type Trainer struct {
	// Candidates is the parameter grid to search.
	Candidates [][]float64
	// Make builds an algorithm instance from a parameter vector.
	Make func(params []float64) algo.Algorithm
	// Domain is the training domain size n.
	Domain int
	// Products is the grid of eps*scale signal levels to train at.
	Products []float64
	// Trials is the number of runs averaged per (candidate, shape, level).
	Trials int
	// Seed fixes the training randomness.
	Seed int64
	// Audit runs every training trial through the budget-ledger audit
	// (algo.RunAudited), so a candidate parameterization with broken budget
	// arithmetic fails training instead of silently skewing the profile.
	Audit bool
}

// Profile is a step function from the eps*scale product to the best
// parameter vector found during training.
type Profile struct {
	// Products are the trained signal levels in increasing order.
	Products []float64
	// Params[i] is the winning parameter vector at Products[i].
	Params [][]float64
}

// Lookup returns the parameter vector trained at the largest product not
// exceeding the given one (or the smallest level for weaker signals).
func (p *Profile) Lookup(product float64) []float64 {
	if len(p.Products) == 0 {
		return nil
	}
	best := 0
	for i, lvl := range p.Products {
		if lvl <= product {
			best = i
		}
	}
	return p.Params[best]
}

// TrainingShapes returns the synthetic training distributions of Section
// 6.4: a power-law shape and a (discretized, truncated) normal shape over
// domain n. They are deliberately not drawn from the evaluation datasets.
func TrainingShapes(n int) []*vec.Vector {
	pl := vec.New(n)
	for i := range pl.Data {
		pl.Data[i] = math.Pow(float64(i+1), -1.5)
	}
	normalizeVec(pl)
	nm := vec.New(n)
	mu, sigma := float64(n)/2, float64(n)/8
	for i := range nm.Data {
		z := (float64(i) - mu) / sigma
		nm.Data[i] = math.Exp(-z * z / 2)
	}
	normalizeVec(nm)
	return []*vec.Vector{pl, nm}
}

func normalizeVec(v *vec.Vector) {
	s := v.Scale()
	for i := range v.Data {
		v.Data[i] /= s
	}
}

// Train runs the grid search and returns the learned profile. Cancelling ctx
// stops the search between training cells and returns ctx.Err(). Training fixes
// eps = 0.1 and varies scale to hit each product level, which is justified
// for scale-epsilon exchangeable algorithms (Definition 4); SF, the one
// exception, empirically behaves exchangeably (Section 5.5).
func (t *Trainer) Train(ctx context.Context) (*Profile, error) {
	if len(t.Candidates) == 0 || t.Make == nil {
		return nil, fmt.Errorf("core: trainer needs candidates and a constructor")
	}
	n := t.Domain
	if n <= 0 {
		n = 1024
	}
	products := t.Products
	if len(products) == 0 {
		products = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7}
	}
	trials := t.Trials
	if trials <= 0 {
		trials = 3
	}
	const eps = 0.1
	shapes := TrainingShapes(n)
	w := workload.Prefix(n)
	sc := newEvalScratch(w)
	prof := &Profile{}
	for li, product := range products {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scale := int(math.Round(product / eps))
		if scale < 1 {
			scale = 1
		}
		bestIdx, bestErr := 0, math.Inf(1)
		for ci, cand := range t.Candidates {
			var total float64
			runs := 0
			for si, shape := range shapes {
				genRNG := newRNG(t.Seed + int64(li*1_000+si))
				counts := noise.Multinomial(genRNG, scale, shape.Data)
				x := vec.New(n)
				for i, c := range counts {
					x.Data[i] = float64(c)
				}
				trueAns, err := w.Evaluate(x)
				if err != nil {
					return nil, err
				}
				// One candidate instance and one plan serve every trial on
				// this training vector; each trial keeps its own RNG stream.
				a := t.Make(cand)
				plan, err := a.Plan(x, w, eps)
				if err != nil {
					return nil, err
				}
				est := sc.estBuf(n)
				for tr := 0; tr < trials; tr++ {
					runRNG := newRNG(t.Seed + int64(li)*99_991 + int64(ci)*31_337 + int64(si)*7_907 + int64(tr))
					if t.Audit {
						err = algo.ExecuteAudited(a, plan, eps, runRNG, est)
					} else {
						err = plan.Execute(noise.NewMeter(eps, runRNG), est)
					}
					if err != nil {
						return nil, err
					}
					sc.ev.Reset(est)
					sc.ev.AnswerAll(sc.estAns)
					total += ScaledError(L2Loss(sc.estAns, trueAns), float64(scale), w.Size())
					runs++
				}
			}
			if avg := total / float64(runs); avg < bestErr {
				bestErr = avg
				bestIdx = ci
			}
		}
		prof.Products = append(prof.Products, product)
		prof.Params = append(prof.Params, t.Candidates[bestIdx])
	}
	return prof, nil
}

// TrainMWEM learns the round count T for MWEM* over the given signal levels
// and returns it as a T-profile function (Section 6.4: T between 1 and 200;
// the learned values range from 2 to 100 across the benchmark's scales).
func TrainMWEM(ctx context.Context, domain int, products []float64, trials int, seed int64) (func(product float64) int, error) {
	var candidates [][]float64
	for _, tv := range []float64{2, 5, 10, 20, 40, 70, 100} {
		candidates = append(candidates, []float64{tv})
	}
	tr := &Trainer{
		Candidates: candidates,
		Make: func(params []float64) algo.Algorithm {
			return &algo.MWEM{T: int(params[0]), UpdateSweeps: 2}
		},
		Domain:   domain,
		Products: products,
		Trials:   trials,
		Seed:     seed,
	}
	prof, err := tr.Train(ctx)
	if err != nil {
		return nil, err
	}
	return func(product float64) int {
		p := prof.Lookup(product)
		if len(p) == 0 {
			return 10
		}
		return int(p[0])
	}, nil
}

// TrainAHP learns (rho, eta) for AHP* over the given signal levels.
func TrainAHP(ctx context.Context, domain int, products []float64, trials int, seed int64) (func(product float64) (rho, eta float64), error) {
	var candidates [][]float64
	for _, rho := range []float64{0.15, 0.3, 0.5, 0.6} {
		for _, eta := range []float64{0.1, 0.2, 0.35, 0.5} {
			candidates = append(candidates, []float64{rho, eta})
		}
	}
	tr := &Trainer{
		Candidates: candidates,
		Make: func(params []float64) algo.Algorithm {
			return &algo.AHP{Rho: params[0], Eta: params[1]}
		},
		Domain:   domain,
		Products: products,
		Trials:   trials,
		Seed:     seed,
	}
	prof, err := tr.Train(ctx)
	if err != nil {
		return nil, err
	}
	return func(product float64) (float64, float64) {
		p := prof.Lookup(product)
		if len(p) < 2 {
			return 0.5, 0.35
		}
		return p[0], p[1]
	}, nil
}
