package core

import (
	"context"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/workload"
)

func auditConfig(t *testing.T, audit bool) Config {
	t.Helper()
	d, err := dataset.ByName("ADULT")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Dataset:     d,
		Dims:        []int{128},
		Scale:       10_000,
		Eps:         0.5,
		Workload:    workload.Prefix(128),
		Algorithms:  algo.All(1),
		DataSamples: 2,
		Trials:      2,
		Seed:        77,
		Audit:       audit,
	}
}

// TestRunAuditModeMatchesPlainRun asserts the audit's core contract at the
// runner level: with Audit on, every trial passes the ledger check AND every
// scaled error is bit-identical to the unaudited run — across the full 1D
// roster, serially and in parallel.
func TestRunAuditModeMatchesPlainRun(t *testing.T) {
	plain, err := Run(context.Background(), auditConfig(t, false))
	if err != nil {
		t.Fatal(err)
	}
	audited, err := Run(context.Background(), auditConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(context.Background(), auditConfig(t, true), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i].Errors {
			if plain[i].Errors[j] != audited[i].Errors[j] {
				t.Fatalf("%s trial %d: audited %v != plain %v", plain[i].Name, j, audited[i].Errors[j], plain[i].Errors[j])
			}
			if plain[i].Errors[j] != par[i].Errors[j] {
				t.Fatalf("%s trial %d: parallel audited %v != plain %v", plain[i].Name, j, par[i].Errors[j], plain[i].Errors[j])
			}
		}
	}
}

// TestTrainerAuditMode runs a miniature training grid search with the
// ledger audit on every candidate trial.
func TestTrainerAuditMode(t *testing.T) {
	tr := &Trainer{
		Candidates: [][]float64{{0.3}, {0.5}},
		Make: func(params []float64) algo.Algorithm {
			return &algo.AHP{Rho: params[0], Eta: 0.35}
		},
		Domain:   64,
		Products: []float64{1e3},
		Trials:   1,
		Seed:     5,
		Audit:    true,
	}
	if _, err := tr.Train(context.Background()); err != nil {
		t.Fatal(err)
	}
}
