package core

import (
	"strings"
	"testing"
)

func TestSelectAlgorithmRegimes(t *testing.T) {
	cases := []struct {
		eps, scale float64
		dims       int
		regime     string
		primary    string
	}{
		{0.1, 1_000, 1, "low", "DAWA"},
		{0.1, 1_000, 2, "low", "DAWA"},
		{0.1, 100_000, 1, "medium", "DAWA"},
		{0.1, 100_000, 2, "medium", "AGRID"},
		{0.1, 100_000_000, 1, "high", "HB"},
		{1.0, 10_000_000, 2, "high", "HB"},
	}
	for _, c := range cases {
		rec, err := SelectAlgorithm(c.eps, c.scale, c.dims)
		if err != nil {
			t.Fatalf("eps=%v scale=%v: %v", c.eps, c.scale, err)
		}
		if rec.Regime != c.regime {
			t.Errorf("eps=%v scale=%v dims=%d: regime %s, want %s", c.eps, c.scale, c.dims, rec.Regime, c.regime)
		}
		if rec.Primary != c.primary {
			t.Errorf("eps=%v scale=%v dims=%d: primary %s, want %s", c.eps, c.scale, c.dims, rec.Primary, c.primary)
		}
		if rec.Rationale == "" || rec.Alternative == "" {
			t.Errorf("incomplete recommendation %+v", rec)
		}
	}
}

func TestSelectAlgorithmSignalExchangeable(t *testing.T) {
	// The selector must depend only on the product eps*scale (Definition 4).
	a, err := SelectAlgorithm(0.01, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectAlgorithm(1.0, 10_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Primary != b.Primary || a.Regime != b.Regime {
		t.Fatalf("selector not exchangeable: %+v vs %+v", a, b)
	}
}

func TestSelectAlgorithmRejectsBadInputs(t *testing.T) {
	if _, err := SelectAlgorithm(0, 1000, 1); err == nil {
		t.Fatal("expected error for eps=0")
	}
	if _, err := SelectAlgorithm(0.1, -5, 1); err == nil {
		t.Fatal("expected error for negative scale")
	}
	if _, err := SelectAlgorithm(0.1, 1000, 3); err == nil {
		t.Fatal("expected error for 3D")
	}
}

func TestSelectAlgorithmRationaleCitesFindings(t *testing.T) {
	rec, err := SelectAlgorithm(0.1, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Rationale, "Finding") && !strings.Contains(rec.Rationale, "Section") {
		t.Fatalf("rationale should cite the paper: %q", rec.Rationale)
	}
}
