package core

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA 2014):
// a full-avalanche 64-bit mixer, so inputs differing in a single bit map to
// statistically independent outputs. It is the standard way to derive
// independent RNG streams from (seed, coordinate) pairs without the
// correlations that additive or multiplicative ad-hoc mixing exhibits for
// nearby inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// deriveSeed is the canonical per-stream seed derivation shared by the serial
// and parallel runners. Every (sample, trial, algorithm) cell of an
// experiment gets the stream deriveSeed(cfg.Seed, s, t, alg); the data
// generator for sample s gets the reserved stream
// deriveSeed(cfg.Seed, s, -1, -1). Each coordinate is folded through a
// SplitMix64 round, so distinct coordinates yield uncorrelated streams even
// when seeds or indices are adjacent.
func deriveSeed(seed int64, s, t, alg int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(int64(s)))
	h = splitmix64(h ^ uint64(int64(t)))
	h = splitmix64(h ^ uint64(int64(alg)))
	return int64(h)
}

// generatorSeed returns the seed of sample s's data-generation stream.
func generatorSeed(seed int64, s int) int64 { return deriveSeed(seed, s, -1, -1) }

// splitMix64Source is a rand.Source64 running the SplitMix64 generator
// itself: state advances by the golden-ratio gamma and each output is the
// finalizer mix of the new state. The experiment runners use it instead of
// the stdlib rngSource because rngSource.Seed reduces seeds mod 2^31-1,
// which would collapse deriveSeed's 64-bit stream space back into
// birthday-collision range for large grids; here the full 64-bit state is
// the stream identity.
type splitMix64Source struct{ state uint64 }

func (s *splitMix64Source) Uint64() uint64 {
	z := splitmix64(s.state)
	s.state += 0x9E3779B97F4A7C15
	return z
}

func (s *splitMix64Source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMix64Source) Seed(seed int64) { s.state = uint64(seed) }
