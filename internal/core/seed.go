package core

import "dpbench/internal/noise"

// deriveSeed is the canonical per-stream seed derivation shared by the serial
// and parallel runners. Every (sample, trial, algorithm) cell of an
// experiment gets the stream deriveSeed(cfg.Seed, s, t, alg); the data
// generator for sample s gets the reserved stream
// deriveSeed(cfg.Seed, s, -1, -1). Each coordinate is folded through a
// SplitMix64 round, so distinct coordinates yield uncorrelated streams even
// when seeds or indices are adjacent.
func deriveSeed(seed int64, s, t, alg int) int64 {
	h := noise.SplitMix64(uint64(seed))
	h = noise.SplitMix64(h ^ uint64(int64(s)))
	h = noise.SplitMix64(h ^ uint64(int64(t)))
	h = noise.SplitMix64(h ^ uint64(int64(alg)))
	return int64(h)
}

// generatorSeed returns the seed of sample s's data-generation stream.
func generatorSeed(seed int64, s int) int64 { return deriveSeed(seed, s, -1, -1) }
