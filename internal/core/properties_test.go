package core

import (
	"context"
	"math"
	"testing"

	"dpbench/internal/algo"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// skewedShape returns a normalized heavy-head shape over n cells.
func skewedShape(n int) *vec.Vector {
	p := vec.New(n)
	var total float64
	for i := range p.Data {
		p.Data[i] = math.Pow(float64(i+1), -1.3)
		total += p.Data[i]
	}
	for i := range p.Data {
		p.Data[i] /= total
	}
	return p
}

func TestExchangeabilityDataIndependent(t *testing.T) {
	// Theorem 1: the matrix-mechanism instances are exactly exchangeable;
	// the empirical ratio must sit near 1.
	shape := skewedShape(128)
	w := workload.Prefix(128)
	for _, name := range []string{"IDENTITY", "PRIVELET", "H", "HB", "GREEDY-H"} {
		a := mustAlgo(t, name)
		res, err := CheckExchangeability(a, shape, w, 20_000, 0.4, 10, 12, 0.5, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.WithinTolerance {
			t.Errorf("%s: exchangeability ratio %v outside tolerance (err1=%v err2=%v)",
				name, res.Ratio, res.Err1, res.Err2)
		}
	}
}

func TestExchangeabilityDataDependent(t *testing.T) {
	// Theorems 9-13: the data-dependent mechanisms are exchangeable too
	// (SF only empirically). Wider tolerance: their error distributions are
	// identical in law but high variance at these trial counts.
	shape := skewedShape(128)
	w := workload.Prefix(128)
	for _, name := range []string{"UNIFORM", "PHP", "EFPA", "DAWA", "AHP", "MWEM"} {
		a := mustAlgo(t, name)
		res, err := CheckExchangeability(a, shape, w, 20_000, 0.4, 10, 12, 1.0, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.WithinTolerance {
			t.Errorf("%s: exchangeability ratio %v outside tolerance (err1=%v err2=%v)",
				name, res.Ratio, res.Err1, res.Err2)
		}
	}
}

func TestConsistencySweep(t *testing.T) {
	// Definition 5 via an eps sweep: consistent algorithms decay, UNIFORM
	// plateaus at its shape bias.
	n := 128
	x := vec.New(n)
	for i := 0; i < n/4; i++ {
		x.Data[i] = 400 // decidedly non-uniform
	}
	w := workload.Prefix(n)
	sweep := []float64{0.01, 0.1, 1, 10, 1000}

	for _, name := range []string{"IDENTITY", "HB", "DAWA", "EFPA"} {
		res, err := CheckConsistency(mustAlgo(t, name), x, w, sweep, 3, 0.01, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Decaying {
			t.Errorf("%s: residual %v, expected decay (consistent algorithm)", name, res.ResidualAtMax)
		}
	}
	res, err := CheckConsistency(mustAlgo(t, "UNIFORM"), x, w, sweep, 3, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decaying {
		t.Errorf("UNIFORM: residual %v, expected bias plateau (inconsistent)", res.ResidualAtMax)
	}
}

func TestMWEMInconsistentWithFixedT(t *testing.T) {
	// Theorem 8: with T fixed below the number of distinct cells needing
	// correction, MWEM cannot converge even at huge eps.
	n := 64
	x := vec.New(n)
	for i := range x.Data {
		x.Data[i] = float64(i) // every cell distinct
	}
	w := workload.Identity(n)
	a := &algo.MWEM{T: 5, UpdateSweeps: 2}
	res, err := CheckConsistency(a, x, w, []float64{0.1, 10, 1000}, 2, 0.01, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decaying {
		t.Errorf("MWEM(T=5) residual %v, expected bias plateau", res.ResidualAtMax)
	}
}

func TestMeasureBiasIdentityIsVarianceDominated(t *testing.T) {
	x := vec.New(32)
	for i := range x.Data {
		x.Data[i] = 100
	}
	w := workload.Prefix(32)
	bv, err := MeasureBias(mustAlgo(t, "IDENTITY"), x, w, 0.5, 60, 17)
	if err != nil {
		t.Fatal(err)
	}
	if bv.BiasShare() > 0.2 {
		t.Fatalf("IDENTITY bias share %v, want ~0 (unbiased mechanism)", bv.BiasShare())
	}
}

func TestMeasureBiasUniformIsBiasDominated(t *testing.T) {
	// Finding 9: at large scale the error of UNIFORM is dominated by bias.
	n := 32
	x := vec.New(n)
	x.Data[0] = 1_000_000 // all mass in one cell
	w := workload.Prefix(n)
	bv, err := MeasureBias(mustAlgo(t, "UNIFORM"), x, w, 1.0, 40, 19)
	if err != nil {
		t.Fatal(err)
	}
	if bv.BiasShare() < 0.9 {
		t.Fatalf("UNIFORM bias share %v, want ~1 on concentrated data", bv.BiasShare())
	}
}

func TestBiasVarianceZeroTotal(t *testing.T) {
	var bv BiasVariance
	if bv.BiasShare() != 0 {
		t.Fatal("zero-total bias share should be 0")
	}
}

func TestTrainerProfileLookup(t *testing.T) {
	p := &Profile{
		Products: []float64{100, 10_000},
		Params:   [][]float64{{2}, {20}},
	}
	if got := p.Lookup(50); got[0] != 2 {
		t.Fatalf("Lookup(50) = %v", got)
	}
	if got := p.Lookup(100); got[0] != 2 {
		t.Fatalf("Lookup(100) = %v", got)
	}
	if got := p.Lookup(1e9); got[0] != 20 {
		t.Fatalf("Lookup(1e9) = %v", got)
	}
	empty := &Profile{}
	if got := empty.Lookup(1); got != nil {
		t.Fatalf("empty profile lookup = %v", got)
	}
}

func TestTrainingShapes(t *testing.T) {
	shapes := TrainingShapes(256)
	if len(shapes) != 2 {
		t.Fatalf("%d training shapes, want 2 (power law + normal)", len(shapes))
	}
	for i, s := range shapes {
		var sum float64
		for _, v := range s.Data {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shape %d sums to %v", i, sum)
		}
	}
}

func TestTrainerRejectsEmptyConfig(t *testing.T) {
	tr := &Trainer{}
	if _, err := tr.Train(context.Background()); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainMWEMLearnsIncreasingT(t *testing.T) {
	// The trained profile should give small T at weak signal and larger T
	// at strong signal — the mechanism behind Finding 7.
	profile, err := TrainMWEM(context.Background(), 64, []float64{1e2, 1e5}, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	weak := profile(1e2)
	strong := profile(1e5)
	if weak < 1 || strong < 1 {
		t.Fatalf("degenerate T values: %d, %d", weak, strong)
	}
	if strong < weak {
		t.Errorf("trained T decreases with signal: weak=%d strong=%d", weak, strong)
	}
}

func TestTrainAHPReturnsValidParams(t *testing.T) {
	profile, err := TrainAHP(context.Background(), 64, []float64{1e3}, 1, 29)
	if err != nil {
		t.Fatal(err)
	}
	rho, eta := profile(1e3)
	if rho <= 0 || rho >= 1 || eta <= 0 {
		t.Fatalf("invalid trained params rho=%v eta=%v", rho, eta)
	}
}
