package core

import (
	"math"

	"dpbench/internal/algo"
	"dpbench/internal/noise"
	"dpbench/internal/stats"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// ExchangeabilityResult reports one scale-epsilon exchangeability check
// (Definition 4): two settings with equal eps*scale product and the mean
// scaled errors observed at each.
type ExchangeabilityResult struct {
	Algorithm        string
	Scale1, Scale2   int
	Eps1, Eps2       float64
	Err1, Err2       float64
	Ratio            float64 // Err1/Err2; near 1 for exchangeable algorithms
	WithinTolerance  bool
	ToleranceApplied float64
}

// CheckExchangeability runs the algorithm at (scale, eps) and at
// (scale*factor, eps/factor) on the same shape and compares mean scaled
// errors. For a scale-epsilon exchangeable algorithm the two distributions
// are identical, so the ratio of mean errors converges to 1; tol bounds the
// accepted relative deviation given finite trials.
func CheckExchangeability(a algo.Algorithm, shape *vec.Vector, w *workload.Workload, scale int, eps float64, factor int, trials int, tol float64, seed int64) (ExchangeabilityResult, error) {
	res := ExchangeabilityResult{
		Algorithm: a.Name(),
		Scale1:    scale, Eps1: eps,
		Scale2: scale * factor, Eps2: eps / float64(factor),
		ToleranceApplied: tol,
	}
	e1, err := meanScaledError(a, shape, w, scale, eps, trials, seed)
	if err != nil {
		return res, err
	}
	e2, err := meanScaledError(a, shape, w, scale*factor, eps/float64(factor), trials, seed+1)
	if err != nil {
		return res, err
	}
	res.Err1, res.Err2 = e1, e2
	if e2 > 0 {
		res.Ratio = e1 / e2
	}
	res.WithinTolerance = res.Ratio > 0 && res.Ratio > 1/(1+tol) && res.Ratio < 1+tol
	return res, nil
}

// ConsistencyResult reports the error trend of one algorithm as the privacy
// budget grows (Definition 5): a consistent algorithm's error tends to zero.
type ConsistencyResult struct {
	Algorithm string
	Eps       []float64
	Err       []float64
	// Decaying reports whether the final error is a small fraction of the
	// first (the empirical signature of consistency).
	Decaying bool
	// ResidualAtMax is the last error relative to the first; inconsistent
	// algorithms plateau at a bias floor.
	ResidualAtMax float64
}

// CheckConsistency measures mean scaled error along an increasing epsilon
// sweep on a fixed data vector. A residual below decayThreshold marks the
// algorithm as (empirically) consistent.
func CheckConsistency(a algo.Algorithm, x *vec.Vector, w *workload.Workload, epsSweep []float64, trials int, decayThreshold float64, seed int64) (ConsistencyResult, error) {
	res := ConsistencyResult{Algorithm: a.Name(), Eps: epsSweep}
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return res, err
	}
	scale := x.Scale()
	sc := newEvalScratch(w)
	for ei, eps := range epsSweep {
		// One plan per epsilon serves the whole trial loop.
		plan, err := a.Plan(x, w, eps)
		if err != nil {
			return res, err
		}
		est := sc.estBuf(x.N())
		var total float64
		for t := 0; t < trials; t++ {
			rng := newRNG(seed + int64(ei)*911 + int64(t))
			if err := plan.Execute(noise.NewMeter(eps, rng), est); err != nil {
				return res, err
			}
			sc.ev.Reset(est)
			sc.ev.AnswerAll(sc.estAns)
			total += ScaledError(L2Loss(sc.estAns, trueAns), scale, w.Size())
		}
		res.Err = append(res.Err, total/float64(trials))
	}
	first, last := res.Err[0], res.Err[len(res.Err)-1]
	if first > 0 {
		res.ResidualAtMax = last / first
	}
	res.Decaying = res.ResidualAtMax < decayThreshold
	return res, nil
}

// BiasVariance decomposes an algorithm's expected squared workload error
// into bias^2 and variance components (Finding 9): over repeated runs on a
// fixed data vector, bias is the deviation of the mean answer from truth and
// variance the spread around that mean, both averaged per query and
// normalized by scale^2 to match scaled-error units.
type BiasVariance struct {
	Algorithm string
	Bias2     float64
	Variance  float64
}

// BiasShare returns the fraction of total error attributable to bias.
func (b BiasVariance) BiasShare() float64 {
	total := b.Bias2 + b.Variance
	if total == 0 {
		return 0
	}
	return b.Bias2 / total
}

// MeasureBias runs the algorithm repeatedly and decomposes its error.
func MeasureBias(a algo.Algorithm, x *vec.Vector, w *workload.Workload, eps float64, trials int, seed int64) (BiasVariance, error) {
	out := BiasVariance{Algorithm: a.Name()}
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return out, err
	}
	q := w.Size()
	plan, err := a.Plan(x, w, eps)
	if err != nil {
		return out, err
	}
	sc := newEvalScratch(w)
	est := sc.estBuf(x.N())
	answers := make([][]float64, trials)
	for t := 0; t < trials; t++ {
		rng := newRNG(seed + int64(t)*6_700_417)
		if err := plan.Execute(noise.NewMeter(eps, rng), est); err != nil {
			return out, err
		}
		sc.ev.Reset(est)
		answers[t] = sc.ev.AnswerAll(nil)
	}
	scale2 := x.Scale() * x.Scale()
	meanAns := make([]float64, q)
	for _, ans := range answers {
		for j, v := range ans {
			meanAns[j] += v
		}
	}
	for j := range meanAns {
		meanAns[j] /= float64(trials)
	}
	var bias2, variance float64
	for j := 0; j < q; j++ {
		d := meanAns[j] - trueAns[j]
		bias2 += d * d
		for _, ans := range answers {
			dv := ans[j] - meanAns[j]
			variance += dv * dv / float64(trials)
		}
	}
	out.Bias2 = bias2 / (float64(q) * scale2)
	out.Variance = variance / (float64(q) * scale2)
	return out, nil
}

// meanScaledError generates a data vector at the requested scale from the
// shape and averages the algorithm's scaled error over trials.
func meanScaledError(a algo.Algorithm, shape *vec.Vector, w *workload.Workload, scale int, eps float64, trials int, seed int64) (float64, error) {
	genRNG := newRNG(seed * 2_654_435_761 % math.MaxInt32)
	counts := noise.Multinomial(genRNG, scale, shape.Data)
	x := vec.New(shape.Dims...)
	for i, c := range counts {
		x.Data[i] = float64(c)
	}
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return 0, err
	}
	plan, err := a.Plan(x, w, eps)
	if err != nil {
		return 0, err
	}
	sc := newEvalScratch(w)
	est := sc.estBuf(x.N())
	errs := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		rng := newRNG(seed + int64(t)*15_485_863)
		if err := plan.Execute(noise.NewMeter(eps, rng), est); err != nil {
			return 0, err
		}
		sc.ev.Reset(est)
		sc.ev.AnswerAll(sc.estAns)
		errs = append(errs, ScaledError(L2Loss(sc.estAns, trueAns), float64(scale), w.Size()))
	}
	return stats.Mean(errs), nil
}
