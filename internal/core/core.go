// Package core implements the DPBench evaluation framework of Section 5 of
// the paper: the benchmark definition (the 9-tuple {T, W, D, M, L, G, R, EM,
// EI}), the experiment runner, the error-measurement standards (scaled
// average per-query error, mean and 95th-percentile aggregation, competitive
// sets via Welch t-tests with Bonferroni correction), the
// error-interpretation standards (baselines and regret), the algorithm
// repair functions (free-parameter training and side-information removal),
// and checkers for the two theoretical properties the paper formalizes
// (scale-epsilon exchangeability and consistency).
package core

import (
	"fmt"
	"math"

	"dpbench/internal/algo"
	"dpbench/internal/dataset"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Benchmark is the 9-tuple of Section 5. The task-specific components are
// explicit fields; the task-independent components (the data generator G,
// the repair functions R, and the measurement and interpretation standards
// EM and EI) are provided by this package's functions, which every benchmark
// shares.
type Benchmark struct {
	// Task names the analysis task T, e.g. "1D range queries".
	Task string
	// Workloads is W, the representative query workloads.
	Workloads []*workload.Workload
	// Datasets is D, the source datasets.
	Datasets []dataset.Dataset
	// Algorithms is M, the mechanisms under comparison.
	Algorithms []algo.Algorithm
	// Loss is L, the loss function between true and noisy workload answers.
	Loss LossFunc
}

// LossFunc measures the distance between the true workload answers y and the
// mechanism's answers yhat.
type LossFunc func(yhat, y []float64) float64

// L2Loss is the loss the paper uses throughout: the L2 norm of the error
// vector.
func L2Loss(yhat, y []float64) float64 { return vec.L2Distance(yhat, y) }

// ScaledError computes the scaled average per-query error of Definition 3:
// loss divided by (scale * number of queries). Scaled error is interpretable
// as a population fraction and is the quantity all DPBench findings are
// stated in.
func ScaledError(loss float64, scale float64, q int) float64 {
	if scale <= 0 || q <= 0 {
		return math.Inf(1)
	}
	return loss / (scale * float64(q))
}

// NewRangeQueryBenchmark1D assembles the paper's 1D benchmark: Prefix
// workload at domain size n, the 18 one-dimensional datasets, every
// registered algorithm supporting 1D, and L2 loss.
func NewRangeQueryBenchmark1D(n int) *Benchmark {
	return &Benchmark{
		Task:       "1D range queries",
		Workloads:  []*workload.Workload{workload.Prefix(n)},
		Datasets:   dataset.Registry1D(),
		Algorithms: algo.All(1),
		Loss:       L2Loss,
	}
}

// NewRangeQueryBenchmark2D assembles the paper's 2D benchmark: q random
// rectangle queries over a side x side grid (the paper uses q = 2000 and a
// fixed query set per experiment), the 9 two-dimensional datasets, every
// registered algorithm supporting 2D, and L2 loss.
func NewRangeQueryBenchmark2D(side, q int, seed int64) *Benchmark {
	rng := newRNG(seed)
	return &Benchmark{
		Task:       "2D range queries",
		Workloads:  []*workload.Workload{workload.RandomRange2D(side, side, q, rng)},
		Datasets:   dataset.Registry2D(),
		Algorithms: algo.All(2),
		Loss:       L2Loss,
	}
}

// Validate checks that the benchmark's components are mutually consistent.
func (b *Benchmark) Validate() error {
	if b.Task == "" {
		return fmt.Errorf("core: benchmark has no task")
	}
	if len(b.Workloads) == 0 {
		return fmt.Errorf("core: benchmark has no workloads")
	}
	if len(b.Datasets) == 0 {
		return fmt.Errorf("core: benchmark has no datasets")
	}
	if len(b.Algorithms) == 0 {
		return fmt.Errorf("core: benchmark has no algorithms")
	}
	if b.Loss == nil {
		return fmt.Errorf("core: benchmark has no loss function")
	}
	k := len(b.Workloads[0].Dims)
	for _, d := range b.Datasets {
		if d.Dim != k {
			return fmt.Errorf("core: dataset %s is %dD but workload is %dD", d.Name, d.Dim, k)
		}
	}
	for _, a := range b.Algorithms {
		if !a.Supports(k) {
			return fmt.Errorf("core: algorithm %s does not support %dD", a.Name(), k)
		}
	}
	return nil
}

// RepairSideInfo applies the Rside repair function (Section 5.2) to every
// algorithm that consumes public side information, directing it to spend the
// fraction rho of its budget on a private estimate instead. The paper's
// experiments use rhoTotal = 0.05.
func RepairSideInfo(algos []algo.Algorithm, rho float64) {
	for _, a := range algos {
		if s, ok := a.(algo.SideInfoUser); ok {
			s.SetScaleEstimator(rho)
		}
	}
}
