package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"dpbench/internal/algo"
	"dpbench/internal/vec"
)

// vecWithAnswers pairs one generated data sample with its true workload
// answers.
type vecWithAnswers struct {
	x       *vec.Vector
	trueAns []float64
}

// ParallelFor runs fn(0), ..., fn(n-1) on at most workers goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs inline). The
// first error stops dispatch of not-yet-started indices — in-flight calls
// finish — and is returned after all started calls complete. Callers get
// deterministic output by writing fn's result into a slot indexed by i, so
// scheduling order never matters.
func ParallelFor(workers, n int, fn func(i int) error) error {
	return ParallelForWorkers(workers, n, func(_, i int) error { return fn(i) })
}

// ParallelForCtx is ParallelFor with cancellation: once ctx is done, no new
// indices are dispatched (in-flight calls finish) and ctx.Err() is returned.
func ParallelForCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return parallelForWorkers(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ParallelForWorkers is ParallelFor with the executing worker's index (in
// [0, workers)) passed to fn, so callers can hand each worker a private
// scratch arena instead of contending on a shared pool. The inline
// single-worker path always reports worker 0.
func ParallelForWorkers(workers, n int, fn func(worker, i int) error) error {
	return parallelForWorkers(context.Background(), workers, n, fn)
}

func parallelForWorkers(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	tasks := make(chan int)
	done := make(chan struct{})
	var (
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(done)
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range tasks {
				if err := fn(worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(tasks)
		for i := 0; i < n; i++ {
			// Checked before the select: when both a worker and ctx.Done()
			// are ready, select picks randomly, so a pre-cancelled context
			// could otherwise still dispatch work.
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			select {
			case tasks <- i:
			case <-done:
				return
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
		}
	}()
	wg.Wait()
	return firstErr
}

// RunParallel executes the same experimental setting as Run, fanning the
// independent (sample, trial, algorithm) cells out over a bounded worker
// pool, and returns bit-identical results: every cell draws from the same
// deriveSeed RNG stream as the serial path and writes into a pre-sized slot
// indexed by (sample, trial), so neither scheduling nor collection order can
// affect the output. workers <= 0 falls back to cfg.Parallelism, then to
// runtime.GOMAXPROCS(0); workers == 1 delegates to the serial Run outright,
// paying zero pool or synchronization overhead. Each worker owns a private
// scratch arena (workload evaluator, answer and estimate buffers), so cells
// never contend on shared pools; the per-sample plans are built once and
// shared read-only by every worker (plan Executes are concurrency-safe).
// The first cell error cancels the remaining work and is propagated, and a
// cancelled ctx stops dispatch of not-yet-started cells the same way.
func RunParallel(ctx context.Context, cfg Config, workers int) ([]AlgResult, error) {
	if workers <= 0 {
		workers = cfg.Parallelism
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return Run(ctx, cfg)
	}
	p, err := cfg.plan()
	if err != nil {
		return nil, err
	}

	// Phase 1: draw every data sample concurrently; each sample has its own
	// generator stream, so sample s's vector is independent of who builds it.
	xs := make([]*vecWithAnswers, p.samples)
	err = ParallelForCtx(ctx, workers, p.samples, func(s int) error {
		x, trueAns, err := generateSample(cfg, s)
		if err != nil {
			return err
		}
		xs[s] = &vecWithAnswers{x: x, trueAns: trueAns}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 1.5: prepare every (sample, algorithm) plan concurrently. Plan
	// construction is deterministic, so build order cannot affect output.
	nalgs := len(cfg.Algorithms)
	plans := make([][]algo.Plan, p.samples)
	for s := range plans {
		plans[s] = make([]algo.Plan, nalgs)
	}
	err = ParallelForCtx(ctx, workers, p.samples*nalgs, func(c int) error {
		s, i := c/nalgs, c%nalgs
		pl, err := cfg.Algorithms[i].Plan(xs[s].x, cfg.Workload, cfg.Eps)
		if err != nil {
			return fmt.Errorf("core: planning %s on %s: %w", cfg.Algorithms[i].Name(), cfg.Dataset.Name, err)
		}
		plans[s][i] = pl
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: fan out all cells. Cell c decodes to (s, t, i) in the serial
	// loop order; its result lands in results[i].Errors[s*trials+t]. Each
	// worker keeps a private scratch arena for the whole phase — no pool
	// traffic, no contention; the scratch never influences results, only
	// where intermediates are stored.
	results := newResults(cfg, p)
	arenas := make([]*evalScratch, workers)
	perSample := p.trials * nalgs
	err = parallelForWorkers(ctx, workers, p.samples*perSample, func(worker, c int) error {
		s := c / perSample
		t := (c % perSample) / nalgs
		i := c % nalgs
		sc := arenas[worker]
		if sc == nil {
			sc = newEvalScratch(cfg.Workload)
			arenas[worker] = sc
		}
		e, err := runCell(cfg, p, plans[s][i], xs[s].x, xs[s].trueAns, s, t, i, sc)
		if err != nil {
			return err
		}
		results[i].Errors[s*p.trials+t] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
