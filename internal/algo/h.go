package algo

import (
	"fmt"
	"math"
	"math/rand"

	"dpbench/internal/noise"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// H is the hierarchical mechanism of Hay et al. (PVLDB 2010): a binary tree
// of interval counts over the 1D domain, uniform budget allocation across
// levels, Laplace noise on every node, and weighted least-squares consistency
// inference ("boosting") to produce the final cell estimates.
type H struct {
	// B is the branching factor; the published algorithm fixes b = 2.
	B int
}

func init() { Register("H", func() Algorithm { return &H{B: 2} }) }

// Name implements Algorithm.
func (h *H) Name() string { return "H" }

// Supports implements Algorithm; H is 1D only (Table 1).
func (h *H) Supports(k int) bool { return k == 1 }

// DataDependent implements Algorithm.
func (h *H) DataDependent() bool { return false }

// Run implements Algorithm.
func (h *H) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(h, x, w, eps, rng)
}

// RunMeter implements Metered: every level of the hierarchy is a parallel
// scope (its nodes partition the domain), and the uniform per-level budgets
// sum to eps.
func (h *H) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(h, x, w, m)
}

// treePlan is the shared plan of every fixed-structure hierarchical
// mechanism (H, Hb, QuadTree): a cached flat tree plus a per-level budget; a
// trial is sums + noise draws + inference through pooled scratch.
type treePlan struct {
	flat   *tree.Flat
	data   []float64
	budget []float64
}

//dp:hotpath
func (p *treePlan) Execute(m *noise.Meter, out []float64) error {
	flatTreeEstimate(p.flat, p.data, p.budget, m, out)
	return m.Err()
}

// Plan implements Algorithm.
func (h *H) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 1 {
		return nil, fmt.Errorf("h: 1D only, got %dD", x.K())
	}
	b := h.B
	if b < 2 {
		b = 2
	}
	flat, err := tree.SharedInterval(x.N(), b)
	if err != nil {
		return nil, err
	}
	return newTreePlan(flat, x.Data, tree.UniformLevelBudget(eps, flat.Height())), nil
}

// CompositionPlan implements Planner.
func (h *H) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// Hb is the hierarchical mechanism of Qardaji et al. (PVLDB 2013), which
// chooses the branching factor that minimizes the average variance of range
// queries answered through the tree and then proceeds as H does. For 2D it
// builds a grid hierarchy splitting both dimensions by b at every level.
type Hb struct{}

func init() { Register("HB", func() Algorithm { return Hb{} }) }

// Name implements Algorithm.
func (Hb) Name() string { return "HB" }

// Supports implements Algorithm.
func (Hb) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (Hb) DataDependent() bool { return false }

// Run implements Algorithm.
func (h Hb) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(h, x, w, eps, rng)
}

// RunMeter implements Metered; the budget structure is H's (uniform
// per-level parallel scopes summing to eps) at the variance-optimal
// branching factor.
func (h Hb) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(h, x, w, m)
}

// Plan implements Algorithm: the branching-factor search and the hierarchy
// are both cached — Hb's whole structural cost is paid once per shape.
func (Hb) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	var flat *tree.Flat
	var err error
	switch x.K() {
	case 1:
		n := x.N()
		flat, err = tree.SharedInterval(n, optimalBranchingCached(n, 1))
	case 2:
		ny, nx := x.Dims[0], x.Dims[1]
		side := nx
		if ny > side {
			side = ny
		}
		flat, err = tree.SharedGrid(nx, ny, optimalBranchingCached(side, 2))
	default:
		return nil, fmt.Errorf("hb: unsupported dimensionality %d", x.K())
	}
	if err != nil {
		return nil, err
	}
	return newTreePlan(flat, x.Data, tree.UniformLevelBudget(eps, flat.Height())), nil
}

// CompositionPlan implements Planner.
func (Hb) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// OptimalBranching returns the branching factor minimizing Qardaji et al.'s
// estimate of average range-query variance for a hierarchy over a domain of
// size n per dimension in k dimensions: with uniform budget over h =
// ceil(log_b n) + 1 levels, per-node variance grows as h^2 and a random range
// decomposes into about ((b-1)h)^k nodes, so the objective is
// (b-1)^k * h^(k+2).
func OptimalBranching(n, k int) int {
	if n <= 2 {
		return 2
	}
	bestB, bestCost := 2, math.Inf(1)
	for b := 2; b <= n; b++ {
		h := float64(heightFor(n, b))
		cost := math.Pow(float64(b-1), float64(k)) * math.Pow(h, float64(k+2))
		if cost < bestCost {
			bestCost = cost
			bestB = b
		}
	}
	return bestB
}

// heightFor returns the number of levels of a b-ary hierarchy over n leaves
// (including both the root and leaf levels).
func heightFor(n, b int) int {
	h := 1
	for span := 1; span < n; span *= b {
		h++
	}
	return h
}
