package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/noise"
	"repro/internal/tree"
	"repro/internal/vec"
	"repro/internal/workload"
)

// H is the hierarchical mechanism of Hay et al. (PVLDB 2010): a binary tree
// of interval counts over the 1D domain, uniform budget allocation across
// levels, Laplace noise on every node, and weighted least-squares consistency
// inference ("boosting") to produce the final cell estimates.
type H struct {
	// B is the branching factor; the published algorithm fixes b = 2.
	B int
}

func init() { Register("H", func() Algorithm { return &H{B: 2} }) }

// Name implements Algorithm.
func (h *H) Name() string { return "H" }

// Supports implements Algorithm; H is 1D only (Table 1).
func (h *H) Supports(k int) bool { return k == 1 }

// DataDependent implements Algorithm.
func (h *H) DataDependent() bool { return false }

// Run implements Algorithm.
func (h *H) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return h.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: every level of the hierarchy is a parallel
// scope (its nodes partition the domain), and the uniform per-level budgets
// sum to eps.
func (h *H) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 1 {
		return nil, fmt.Errorf("h: 1D only, got %dD", x.K())
	}
	b := h.B
	if b < 2 {
		b = 2
	}
	root, err := tree.BuildInterval(x.N(), b)
	if err != nil {
		return nil, err
	}
	height := root.Height()
	root.Measure(m, x.Data, tree.UniformLevelBudget(eps, height))
	return root.Infer(x.N()), m.Err()
}

// CompositionPlan implements Planner.
func (h *H) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// Hb is the hierarchical mechanism of Qardaji et al. (PVLDB 2013), which
// chooses the branching factor that minimizes the average variance of range
// queries answered through the tree and then proceeds as H does. For 2D it
// builds a grid hierarchy splitting both dimensions by b at every level.
type Hb struct{}

func init() { Register("HB", func() Algorithm { return Hb{} }) }

// Name implements Algorithm.
func (Hb) Name() string { return "HB" }

// Supports implements Algorithm.
func (Hb) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (Hb) DataDependent() bool { return false }

// Run implements Algorithm.
func (h Hb) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return h.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered; the budget structure is H's (uniform
// per-level parallel scopes summing to eps) at the variance-optimal
// branching factor.
func (Hb) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	switch x.K() {
	case 1:
		n := x.N()
		b := OptimalBranching(n, 1)
		root, err := tree.BuildInterval(n, b)
		if err != nil {
			return nil, err
		}
		root.Measure(m, x.Data, tree.UniformLevelBudget(eps, root.Height()))
		return root.Infer(n), m.Err()
	case 2:
		ny, nx := x.Dims[0], x.Dims[1]
		side := nx
		if ny > side {
			side = ny
		}
		b := OptimalBranching(side, 2)
		root, err := tree.BuildGrid(nx, ny, b)
		if err != nil {
			return nil, err
		}
		root.Measure(m, x.Data, tree.UniformLevelBudget(eps, root.Height()))
		return root.Infer(x.N()), m.Err()
	default:
		return nil, fmt.Errorf("hb: unsupported dimensionality %d", x.K())
	}
}

// CompositionPlan implements Planner.
func (Hb) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// OptimalBranching returns the branching factor minimizing Qardaji et al.'s
// estimate of average range-query variance for a hierarchy over a domain of
// size n per dimension in k dimensions: with uniform budget over h =
// ceil(log_b n) + 1 levels, per-node variance grows as h^2 and a random range
// decomposes into about ((b-1)h)^k nodes, so the objective is
// (b-1)^k * h^(k+2).
func OptimalBranching(n, k int) int {
	if n <= 2 {
		return 2
	}
	bestB, bestCost := 2, math.Inf(1)
	for b := 2; b <= n; b++ {
		h := float64(heightFor(n, b))
		cost := math.Pow(float64(b-1), float64(k)) * math.Pow(h, float64(k+2))
		if cost < bestCost {
			bestCost = cost
			bestB = b
		}
	}
	return bestB
}

// heightFor returns the number of levels of a b-ary hierarchy over n leaves
// (including both the root and leaf levels).
func heightFor(n, b int) int {
	h := 1
	for span := 1; span < n; span *= b {
		h++
	}
	return h
}
