package algo

import (
	"math"
	"math/rand"
	"testing"

	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Degenerate-input and failure-injection tests: empty databases, single-cell
// domains, all-mass-in-one-cell shapes, and tiny budgets. Every mechanism
// must stay finite and well-formed on all of them.

func TestAllAlgorithms1DOnEmptyDatabase(t *testing.T) {
	x := vec.New(32) // scale 0: a database with no records
	w := workload.Prefix(32)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 0.5, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d = %v on empty database", i, v)
				}
			}
		})
	}
}

func TestAllAlgorithms2DOnEmptyDatabase(t *testing.T) {
	x := vec.New(8, 8)
	w := workload.RandomRange2D(8, 8, 20, rand.New(rand.NewSource(2)))
	for _, a := range All(2) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 0.5, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d = %v on empty database", i, v)
				}
			}
		})
	}
}

func TestAllAlgorithms1DOnSingleCellDomain(t *testing.T) {
	x, _ := vec.FromData([]float64{1000}, 1)
	w := workload.Prefix(1)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 1.0, rand.New(rand.NewSource(4)))
			if err != nil {
				t.Fatal(err)
			}
			if len(est) != 1 {
				t.Fatalf("len = %d", len(est))
			}
			if math.IsNaN(est[0]) || math.IsInf(est[0], 0) {
				t.Fatalf("estimate %v", est[0])
			}
		})
	}
}

func TestAllAlgorithms1DOnPointMass(t *testing.T) {
	// All mass in one cell — the hardest shape for uniformity assumptions.
	x := vec.New(64)
	x.Data[17] = 1e6
	w := workload.Prefix(64)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 0.1, rand.New(rand.NewSource(5)))
			if err != nil {
				t.Fatal(err)
			}
			var total float64
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d = %v", i, v)
				}
				total += v
			}
			// The total should be in the right order of magnitude for every
			// mechanism at this strong signal.
			if total < 1e5 || total > 1e7 {
				t.Fatalf("total %v wildly off 1e6", total)
			}
		})
	}
}

func TestAllAlgorithms1DOnTinyBudget(t *testing.T) {
	x := test1DVector(32, 1000)
	w := workload.Prefix(32)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 1e-6, rand.New(rand.NewSource(6)))
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d = %v at eps=1e-6", i, v)
				}
			}
		})
	}
}

func TestAllAlgorithms2DOnTinyGrid(t *testing.T) {
	x := vec.New(2, 2)
	x.Data[0] = 100
	w := workload.RandomRange2D(2, 2, 5, rand.New(rand.NewSource(7)))
	for _, a := range All(2) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			est, err := a.Run(x, w, 1.0, rand.New(rand.NewSource(8)))
			if err != nil {
				t.Fatal(err)
			}
			if len(est) != 4 {
				t.Fatalf("len = %d", len(est))
			}
		})
	}
}

func TestLaplaceDPGuaranteeEmpirical(t *testing.T) {
	// A direct empirical check of Definition 1 for the Laplace mechanism at
	// the core of every algorithm: on neighboring databases differing in
	// one record, the probability of any output interval differs by at most
	// e^eps (up to sampling error). We estimate P[output in bin] on both
	// databases and verify the ratio bound with slack.
	const (
		eps    = 1.0
		trials = 200_000
	)
	rng := rand.New(rand.NewSource(99))
	x1 := vec.New(1)
	x1.Data[0] = 10
	x2 := vec.New(1)
	x2.Data[0] = 11 // neighbor: one extra record
	a := Identity{}
	binOf := func(v float64) int {
		b := int(math.Floor(v-10)) + 10 // bins of width 1 around the truth
		if b < 0 {
			b = 0
		}
		if b > 20 {
			b = 20
		}
		return b
	}
	count1 := make([]float64, 21)
	count2 := make([]float64, 21)
	for i := 0; i < trials; i++ {
		e1, _ := a.Run(x1, nil, eps, rng)
		e2, _ := a.Run(x2, nil, eps, rng)
		count1[binOf(e1[0])]++
		count2[binOf(e2[0])]++
	}
	bound := math.Exp(eps) * 1.25 // slack for sampling error
	for b := 0; b < 21; b++ {
		p1 := count1[b] / trials
		p2 := count2[b] / trials
		if p1 < 0.005 || p2 < 0.005 {
			continue // too rare to estimate the ratio reliably
		}
		if p1/p2 > bound || p2/p1 > bound {
			t.Fatalf("bin %d: probability ratio %v exceeds e^eps=%v",
				b, math.Max(p1/p2, p2/p1), math.Exp(eps))
		}
	}
}

func TestUniformSpreadHelper(t *testing.T) {
	out := make([]float64, 6)
	uniformSpread(out, 2, 5, 9)
	want := []float64{0, 0, 3, 3, 3, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	got := clampNonNegative([]float64{-1, 2, -0.5, 0})
	want := []float64{0, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
