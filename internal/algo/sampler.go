package algo

import (
	"math/rand"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// WithSamplerVersion returns a view of a whose plans pin the given sampler
// version: every Execute switches the supplied meter to v for the duration
// of the trial, so release.WithSampler callers get the fast (or legacy)
// noise stream regardless of how the meter was built. Wrapping with
// SamplerLegacy returns a unchanged — the legacy default costs nothing.
func WithSamplerVersion(a Algorithm, v noise.SamplerVersion) Algorithm {
	if v == noise.SamplerLegacy {
		return a
	}
	return &samplerVersioned{inner: a, v: v}
}

// samplerVersioned pins a sampler version on an algorithm's plans. It
// delegates everything else to the wrapped algorithm; options that need the
// concrete mechanism type unwrap it via Unwrap.
type samplerVersioned struct {
	inner Algorithm
	v     noise.SamplerVersion
}

// Unwrap returns the wrapped algorithm, so configuration helpers can reach
// the concrete mechanism type behind the sampler pin.
func (s *samplerVersioned) Unwrap() Algorithm { return s.inner }

// Name implements Algorithm.
func (s *samplerVersioned) Name() string { return s.inner.Name() }

// Supports implements Algorithm.
func (s *samplerVersioned) Supports(k int) bool { return s.inner.Supports(k) }

// DataDependent implements Algorithm.
func (s *samplerVersioned) DataDependent() bool { return s.inner.DataDependent() }

// Plan implements Algorithm: the inner plan is wrapped so Execute carries
// the pinned sampler version onto its meter.
func (s *samplerVersioned) Plan(x *vec.Vector, w *workload.Workload, eps float64) (Plan, error) {
	p, err := s.inner.Plan(x, w, eps)
	if err != nil {
		return nil, err
	}
	return &samplerPlan{p: p, v: s.v}, nil
}

// Run implements Algorithm.
func (s *samplerVersioned) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(s, x, w, eps, rng)
}

// RunMeter implements Metered.
func (s *samplerVersioned) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(s, x, w, m)
}

// CompositionPlan implements Planner by delegation; a wrapped mechanism
// without a declared plan reports nil, which the audit treats as
// "sum check only" exactly as for an unwrapped one.
func (s *samplerVersioned) CompositionPlan() noise.Plan {
	if pl, ok := s.inner.(Planner); ok {
		return pl.CompositionPlan()
	}
	return nil
}

// samplerPlan pins the sampler version for one plan execution.
type samplerPlan struct {
	p Plan
	v noise.SamplerVersion
}

// Execute implements Plan: the meter runs the trial under the pinned
// version and is restored afterwards, so a caller-owned meter can execute
// differently-pinned plans in sequence.
//
//dp:hotpath
func (sp *samplerPlan) Execute(m *noise.Meter, out []float64) error {
	prev := m.Sampler()
	m.SetSampler(sp.v)
	defer m.SetSampler(prev)
	return sp.p.Execute(m, out)
}
