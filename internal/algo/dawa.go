package algo

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// DAWA is the data- and workload-aware algorithm of Li, Hay and Miklau
// (PVLDB 2014). Stage one spends a rho fraction of the budget computing a
// least-cost partition of the domain into buckets via dynamic programming
// over noisy interval costs, where the cost of a bucket is its L1 deviation
// from uniformity plus the expected noise of measuring one more bucket.
// Candidate buckets are restricted to dyadic intervals, which keeps the
// number of perturbed costs at O(n log n) and the DP at O(n log n), as in
// the published implementation. Stage two runs GreedyH over the bucket-level
// domain with the remaining budget and spreads bucket estimates uniformly.
//
// For 2D inputs the domain is linearized along the Hilbert curve first, the
// 1D algorithm runs on the linearized vector, and the estimate is mapped
// back (Appendix B).
type DAWA struct {
	// Rho is the stage-one budget fraction (paper default: 0.25).
	Rho float64
	// B is the branching factor of the stage-two hierarchy (paper: 2).
	B int
	// NoDyadicRestriction switches the partition DP to consider all O(n^2)
	// intervals; exposed for the ablation benchmark only.
	NoDyadicRestriction bool
}

func init() { Register("DAWA", func() Algorithm { return &DAWA{Rho: 0.25, B: 2} }) }

// Name implements Algorithm.
func (d *DAWA) Name() string { return "DAWA" }

// Supports implements Algorithm.
func (d *DAWA) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (d *DAWA) DataDependent() bool { return true }

// Run implements Algorithm.
func (d *DAWA) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(d, x, w, eps, rng)
}

// RunMeter implements Metered: stage one charges per-dyadic-level parallel
// scopes summing to rho*eps, and stage two runs inside a sequential
// sub-meter holding the remaining (1-rho)*eps.
func (d *DAWA) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(d, x, w, m)
}

// CompositionPlan implements Planner. "part-forfeit" covers stage-one budget
// slices that buy no measurement (single-cell domains, and the phantom
// dyadic level the noise calibration assumes on non-power-of-two domains);
// charging them keeps the ledger equal to eps without touching the noise
// stream.
func (d *DAWA) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "part-level*", Kind: noise.Parallel},
		{Label: "part-all", Kind: noise.Parallel},
		{Label: "part-forfeit", Kind: noise.Sequential},
		{Label: "stage2", Kind: noise.Sequential},
	}
}

// dawaCandidate is one precomputed partition candidate: the interval, its
// exact (noise-free) deviation cost, and the ledger-label index of its
// dyadic level. The per-trial work is just the Laplace draw on top.
type dawaCandidate struct {
	lo, hi int32
	level  int32 // dyadic level (TrailingZeros of size); unused by the ablation
	dev    float64
}

// dawaPlan precomputes everything about stage one that does not depend on
// noise — the full candidate table in the exact seed enumeration order, the
// DP's end-grouping, the noise calibration — plus the Hilbert linearization
// for 2D. Each Execute re-runs the partition DP and stage two on fresh noise
// through pooled scratch.
type dawaPlan struct {
	data []float64 // 1D data, or its Hilbert linearization in 2D
	w    *workload.Workload
	perm []int // 2D only
	n, b int

	eps1, eps2 float64
	penalty    float64
	costNoise  float64 // dyadic per-candidate noise scale
	epsLevel   float64
	forfeit    float64 // phantom-level charge on non-pow2 domains (0 if none)
	allNoise   float64 // ablation noise scale
	ablation   bool

	cands  []dawaCandidate
	endOff []int32 // candidate indices with hi == j: endIdx[endOff[j]:endOff[j+1]]
	endIdx []int32

	bufs sync.Pool // *dawaScratch
}

// dawaScratch is one trial's partition and stage-two state. The stage-two
// hierarchy over the trial's buckets is rebuilt into the ftree arena — the
// noisy bucket count k rarely repeats across trials, so rebuilding beats any
// cache (and is allocation-free at steady state).
type dawaScratch struct {
	costs        []float64
	best         []float64
	back         []int
	bounds       []int
	bucketData   []float64
	bucketEst    []float64
	cellToBucket []int
	weights      []float64
	est          []float64 // 2D only: linearized estimate
	sub          noise.Meter
	ftree        tree.Flat
	fsc          *tree.Scratch
}

// Plan implements Algorithm. The deviation table — the expensive half of
// stage one — is a deterministic function of the data, so it is computed
// once here (O(n log n) for the dyadic set) and only perturbed per trial.
func (d *DAWA) Plan(x *vec.Vector, w *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	var data []float64
	var perm []int
	switch x.K() {
	case 1:
		data = x.Data
	case 2:
		ny, nx := x.Dims[0], x.Dims[1]
		if nx != ny {
			return nil, fmt.Errorf("dawa: 2D requires a square grid, got %dx%d", nx, ny)
		}
		var err error
		data, perm, err = hilbertLinearizeCached(x.Data, nx)
		if err != nil {
			return nil, err
		}
		w = nil // rectangles do not map to intervals on the curve
	default:
		return nil, fmt.Errorf("dawa: unsupported dimensionality %d", x.K())
	}

	rho := d.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.25
	}
	b := d.B
	if b < 2 {
		b = 2
	}
	n := len(data)
	p := &dawaPlan{
		data: data, w: w, perm: perm, n: n, b: b,
		eps1: rho * eps, eps2: (1 - rho) * eps,
		ablation: d.NoDyadicRestriction,
	}
	p.penalty = 1 / p.eps2

	if n > 1 {
		levels := log2Ceil(n) + 1
		// One record changes one cell by 1, which changes the cost of each
		// containing interval by at most 2; a cell is in at most one interval
		// per dyadic level.
		p.costNoise = 2 * float64(levels) / p.eps1
		p.epsLevel = p.eps1 / float64(levels)
		if p.ablation {
			// Exact O(n^2) interval set (ablation only; noise calibrated to
			// the declared sensitivity n, as in the published ablation). The
			// whole interval-cost family is accounted as one eps1 scope to
			// match that declaration. Deviations are maintained incrementally
			// over hi by a rank-indexed Fenwick scanner and tabulated once —
			// the enumeration order (lo ascending, then hi) is the seed
			// noise-draw order.
			p.allNoise = 2 * float64(n) / p.eps1
			p.cands = make([]dawaCandidate, 0, n*(n+1)/2)
			scan := newL1DevScanner(data)
			for lo := 0; lo < n; lo++ {
				scan.Restart()
				for hi := lo + 1; hi <= n; hi++ {
					scan.Push(hi - 1)
					p.cands = append(p.cands, dawaCandidate{lo: int32(lo), hi: int32(hi), dev: scan.Deviation()})
				}
			}
		} else {
			// All aligned dyadic intervals, costs computed bottom-up by
			// merging sorted halves; the visit order matches the seed
			// enumeration (ascending size, then lo), so the per-trial noise
			// stream is unchanged.
			p.cands = make([]dawaCandidate, 0, 2*n)
			dyadicDeviations(data, func(lo, size int, dev float64) {
				p.cands = append(p.cands, dawaCandidate{
					lo: int32(lo), hi: int32(lo + size),
					level: int32(bits.TrailingZeros(uint(size))), dev: dev,
				})
			})
			// The noise calibration counts log2Ceil(n)+1 levels, but on a
			// non-power-of-two domain only floor(log2(n))+1 dyadic sizes
			// exist: the phantom level's slice is charged as a forfeit so the
			// ledger sums to eps1 exactly (the calibration over-noises by
			// that slice — kept as-is to preserve the published noise
			// stream).
			if actual := bits.Len(uint(n)); actual < levels {
				p.forfeit = float64(levels-actual) * p.epsLevel
			}
		}
		// Group candidate indices by interval end for the DP, preserving the
		// enumeration order within each group (the DP's tie-breaking order).
		p.endOff = make([]int32, n+2)
		for _, c := range p.cands {
			p.endOff[c.hi+1]++
		}
		for j := 1; j <= n+1; j++ {
			p.endOff[j] += p.endOff[j-1]
		}
		p.endIdx = make([]int32, len(p.cands))
		fill := make([]int32, n+1)
		for i, c := range p.cands {
			p.endIdx[p.endOff[c.hi]+fill[c.hi]] = int32(i)
			fill[c.hi]++
		}
	}

	p.bufs.New = func() any {
		sc := &dawaScratch{
			fsc:        tree.NewScratch(),
			costs:      make([]float64, len(p.cands)),
			best:       make([]float64, n+1),
			back:       make([]int, n+1),
			bounds:     make([]int, 0, n+1),
			bucketData: make([]float64, n),
			bucketEst:  make([]float64, n),
		}
		if p.perm != nil {
			// 2D: the Hilbert inverse permutation scatters a full
			// linearized estimate into out, so the buffer is part of the
			// scratch, not a per-trial allocation.
			sc.est = make([]float64, n)
		}
		return sc
	}
	return p, nil
}

//dp:hotpath
func (p *dawaPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*dawaScratch)
	defer p.bufs.Put(sc)

	bounds := p.partition(sc, m)
	k := len(bounds) - 1

	// Stage two: GreedyH on the bucket-level vector. The workload is mapped
	// onto buckets by translating each cell range to the covering bucket
	// range, which preserves prefix/range structure.
	bucketData := sc.bucketData[:k]
	for i := 0; i < k; i++ {
		bucketData[i] = 0
		for c := bounds[i]; c < bounds[i+1]; c++ {
			bucketData[i] += p.data[c]
		}
	}
	if err := sc.ftree.RebuildInterval(k, p.b); err != nil {
		return err
	}
	weights := p.bucketWeights(sc, &sc.ftree, bounds, k)
	bucketEst := sc.bucketEst[:k]
	// The pooled tree scratch is pinned to a local for the whole
	// compute→measure→infer sequence: the raw bucket sums written by
	// ComputeSums only ever leave it through MeasureInto's metered draws.
	fsc := sc.fsc
	m.ResetSub(&sc.sub, "stage2", p.eps2, false)
	sc.ftree.ComputeSums(bucketData, fsc)
	sc.ftree.MeasureInto(&sc.sub, fsc, levelBudgetFromWeights(p.eps2, sc.ftree.Height(), weights))
	sc.ftree.InferInto(fsc, bucketEst)
	sc.sub.Close()

	if p.perm == nil {
		for i := 0; i < k; i++ {
			uniformSpread(out, bounds[i], bounds[i+1], bucketEst[i])
		}
		return m.Err()
	}
	for i := 0; i < k; i++ {
		uniformSpread(sc.est, bounds[i], bounds[i+1], bucketEst[i])
	}
	for d, src := range p.perm {
		out[src] = sc.est[d]
	}
	return m.Err()
}

// partition runs stage one on this trial's noise and returns bucket
// boundaries (len k+1, first 0, last n), stored in the scratch. All interval
// costs are the precomputed deviations perturbed with Laplace noise
// calibrated to the per-level sensitivity of the interval-cost vector, and
// the DP then operates purely on noisy values (so stage one is eps1-DP).
// Each dyadic level's intervals partition the domain, so the level is
// charged as one parallel scope of eps1/levels.
func (p *dawaPlan) partition(sc *dawaScratch, m *noise.Meter) []int {
	n := p.n
	if n == 1 {
		// A single-cell domain has no partition to select: the stage-one
		// allocation buys nothing. Charge it explicitly so the ledger still
		// accounts for the full budget (no noise is drawn, so golden outputs
		// are untouched; over-reporting a spend is privacy-safe).
		m.Charge("part-forfeit", p.eps1)
		sc.bounds = append(sc.bounds[:0], 0, 1)
		return sc.bounds
	}
	costs := sc.costs
	if p.ablation {
		for i := range p.cands {
			costs[i] = p.cands[i].dev + m.LaplacePar("part-all", p.allNoise, p.eps1)
		}
	} else {
		// Each dyadic level present in the candidate set is one parallel
		// scope of epsLevel; the phantom levels of a non-power-of-two
		// domain are the forfeit, charged separately below.
		//dp:spends p.eps1 - p.forfeit
		for i := range p.cands {
			c := p.cands[i].dev + m.LaplacePar(idxLabel(partLevelLabels, int(p.cands[i].level)), p.costNoise, p.epsLevel)
			// Deviation costs are non-negative by construction; clamping
			// the noisy value is post-processing and stops the DP from
			// chasing spuriously negative costs.
			if c < 0 {
				c = 0
			}
			costs[i] = c
		}
		if p.forfeit > 0 {
			m.Charge("part-forfeit", p.forfeit)
		}
	}

	// DP over bucket endpoints: best[j] = min cost to cover [0, j).
	best, back := sc.best, sc.back
	best[0] = 0
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		back[j] = j - 1
		for _, ci := range p.endIdx[p.endOff[j]:p.endOff[j+1]] {
			lo := int(p.cands[ci].lo)
			total := best[lo] + costs[ci] + p.penalty
			if total < best[j] {
				best[j] = total
				back[j] = lo
			}
		}
	}
	bounds := sc.bounds[:0]
	for j := n; j > 0; j = back[j] {
		bounds = append(bounds, j)
	}
	bounds = append(bounds, 0)
	sort.Ints(bounds)
	sc.bounds = bounds
	return bounds
}

// bucketWeights is bucketLevelWeights computed through scratch buffers over
// the trial's cached bucket tree: the cell-to-bucket mapping and per-level
// counts are identical, but no intermediate workload is materialized. A nil
// result means uniform allocation, as with bucketLevelWeights.
func (p *dawaPlan) bucketWeights(sc *dawaScratch, flat *tree.Flat, bounds []int, k int) []float64 {
	w := p.w
	if w == nil || len(w.Dims) != 1 || w.Dims[0] != p.n || k < 2 {
		return nil
	}
	if cap(sc.cellToBucket) < p.n {
		sc.cellToBucket = make([]int, p.n)
	}
	c2b := sc.cellToBucket[:p.n]
	for bi := 0; bi+1 < len(bounds); bi++ {
		for c := bounds[bi]; c < bounds[bi+1]; c++ {
			c2b[c] = bi
		}
	}
	h := flat.Height()
	if cap(sc.weights) < h {
		sc.weights = make([]float64, h)
	}
	weights := sc.weights[:h]
	for i := range weights {
		weights[i] = 0
	}
	for qi := 0; qi < w.Size(); qi++ {
		lo, hi := w.Range(qi)
		flat.AddCanonicalCount(c2b[lo], c2b[hi], weights)
	}
	return weights
}

// bucketLevelWeights maps the cell-level workload onto the bucket domain and
// computes canonical level weights there, so stage two's budget allocation
// remains workload-aware. Returns nil (uniform) when no usable workload.
func bucketLevelWeights(n, k, b int, bounds []int, w *workload.Workload) []float64 {
	if w == nil || len(w.Dims) != 1 || w.Dims[0] != n || k < 2 {
		return nil
	}
	// cellToBucket[i] = index of bucket containing cell i.
	cellToBucket := make([]int, n)
	for bi := 0; bi+1 < len(bounds); bi++ {
		for c := bounds[bi]; c < bounds[bi+1]; c++ {
			cellToBucket[c] = bi
		}
	}
	mapped := &workload.Workload{Name: w.Name + "/buckets", Dims: []int{k}}
	mapped.Grow(w.Size())
	for qi := 0; qi < w.Size(); qi++ {
		lo, hi := w.Range(qi)
		mapped.AddRange(cellToBucket[lo], cellToBucket[hi])
	}
	return CanonicalLevelWeights(k, b, mapped)
}
