package algo

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/noise"
	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/workload"
)

// DAWA is the data- and workload-aware algorithm of Li, Hay and Miklau
// (PVLDB 2014). Stage one spends a rho fraction of the budget computing a
// least-cost partition of the domain into buckets via dynamic programming
// over noisy interval costs, where the cost of a bucket is its L1 deviation
// from uniformity plus the expected noise of measuring one more bucket.
// Candidate buckets are restricted to dyadic intervals, which keeps the
// number of perturbed costs at O(n log n) and the DP at O(n log n), as in
// the published implementation. Stage two runs GreedyH over the bucket-level
// domain with the remaining budget and spreads bucket estimates uniformly.
//
// For 2D inputs the domain is linearized along the Hilbert curve first, the
// 1D algorithm runs on the linearized vector, and the estimate is mapped
// back (Appendix B).
type DAWA struct {
	// Rho is the stage-one budget fraction (paper default: 0.25).
	Rho float64
	// B is the branching factor of the stage-two hierarchy (paper: 2).
	B int
	// NoDyadicRestriction switches the partition DP to consider all O(n^2)
	// intervals; exposed for the ablation benchmark only.
	NoDyadicRestriction bool
}

func init() { Register("DAWA", func() Algorithm { return &DAWA{Rho: 0.25, B: 2} }) }

// Name implements Algorithm.
func (d *DAWA) Name() string { return "DAWA" }

// Supports implements Algorithm.
func (d *DAWA) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (d *DAWA) DataDependent() bool { return true }

// Run implements Algorithm.
func (d *DAWA) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return d.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: stage one charges per-dyadic-level parallel
// scopes summing to rho*eps, and stage two runs inside a sequential
// sub-meter holding the remaining (1-rho)*eps.
func (d *DAWA) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	if err := validate(x, m.Total()); err != nil {
		return nil, err
	}
	switch x.K() {
	case 1:
		return d.run1D(x.Data, w, m)
	case 2:
		ny, nx := x.Dims[0], x.Dims[1]
		if nx != ny {
			return nil, fmt.Errorf("dawa: 2D requires a square grid, got %dx%d", nx, ny)
		}
		lin, perm, err := transform.HilbertLinearize(x.Data, nx)
		if err != nil {
			return nil, err
		}
		est, err := d.run1D(lin, nil, m)
		if err != nil {
			return nil, err
		}
		return transform.HilbertDelinearize(est, perm), nil
	default:
		return nil, fmt.Errorf("dawa: unsupported dimensionality %d", x.K())
	}
}

// CompositionPlan implements Planner. "part-forfeit" covers stage-one budget
// slices that buy no measurement (single-cell domains, and the phantom
// dyadic level the noise calibration assumes on non-power-of-two domains);
// charging them keeps the ledger equal to eps without touching the noise
// stream.
func (d *DAWA) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "part-level*", Kind: noise.Parallel},
		{Label: "part-all", Kind: noise.Parallel},
		{Label: "part-forfeit", Kind: noise.Sequential},
		{Label: "stage2", Kind: noise.Sequential},
	}
}

func (d *DAWA) run1D(data []float64, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	rho := d.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.25
	}
	b := d.B
	if b < 2 {
		b = 2
	}
	n := len(data)
	eps1 := rho * eps
	eps2 := (1 - rho) * eps

	bounds := d.partition(data, eps1, eps2, m)
	k := len(bounds) - 1

	// Stage two: GreedyH on the bucket-level vector. The workload is mapped
	// onto buckets by translating each cell range to the covering bucket
	// range, which preserves prefix/range structure.
	bucketData := make([]float64, k)
	for i := 0; i < k; i++ {
		for c := bounds[i]; c < bounds[i+1]; c++ {
			bucketData[i] += data[c]
		}
	}
	weights := bucketLevelWeights(n, k, b, bounds, w)
	sub := m.SubEps("stage2", eps2)
	bucketEst, err := greedyHEstimate(bucketData, b, weights, sub)
	sub.Close()
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < k; i++ {
		uniformSpread(out, bounds[i], bounds[i+1], bucketEst[i])
	}
	return out, m.Err()
}

// partition runs stage one and returns bucket boundaries (len k+1, first 0,
// last n). All interval costs are perturbed with Laplace noise calibrated to
// the per-level sensitivity of the interval-cost vector, and the DP then
// operates purely on noisy values (so stage one is eps1-DP). Each dyadic
// level's intervals partition the domain, so the level is charged as one
// parallel scope of eps1/levels.
func (d *DAWA) partition(data []float64, eps1, eps2 float64, m *noise.Meter) []int {
	n := len(data)
	if n == 1 {
		// A single-cell domain has no partition to select: the stage-one
		// allocation buys nothing. Charge it explicitly so the ledger still
		// accounts for the full budget (no noise is drawn, so golden outputs
		// are untouched; over-reporting a spend is privacy-safe).
		m.Charge("part-forfeit", eps1)
		return []int{0, 1}
	}
	levels := log2Ceil(n) + 1
	// One record changes one cell by 1, which changes the cost of each
	// containing interval by at most 2; a cell is in at most one interval
	// per dyadic level.
	costNoise := 2 * float64(levels) / eps1
	epsLevel := eps1 / float64(levels)
	// The DP's per-bucket penalty: expected absolute Laplace error a bucket
	// count will incur in stage two.
	penalty := 1 / eps2

	type candidate struct {
		lo, hi int
		cost   float64
	}
	var cands []candidate
	if d.NoDyadicRestriction {
		// Exact O(n^2) interval set (ablation only; noise calibrated to the
		// declared sensitivity n, as in the published ablation). The whole
		// interval-cost family is accounted as one eps1 scope to match that
		// declaration. The deviation of [lo, hi) is maintained incrementally
		// over hi by a rank-indexed Fenwick scanner, O(log n) per interval
		// instead of a from-scratch O(hi-lo) pass.
		allNoise := 2 * float64(n) / eps1
		cands = make([]candidate, 0, n*(n+1)/2)
		scan := newL1DevScanner(data)
		for lo := 0; lo < n; lo++ {
			scan.Restart()
			for hi := lo + 1; hi <= n; hi++ {
				scan.Push(hi - 1)
				c := scan.Deviation() + m.LaplacePar("part-all", allNoise, eps1)
				cands = append(cands, candidate{lo, hi, c})
			}
		}
	} else {
		// All aligned dyadic intervals, costs computed bottom-up by merging
		// sorted halves; the visit order matches the seed enumeration
		// (ascending size, then lo), so the noise stream is unchanged.
		cands = make([]candidate, 0, 2*n)
		dyadicDeviations(data, func(lo, size int, dev float64) {
			lvl := bits.TrailingZeros(uint(size))
			c := dev + m.LaplacePar(idxLabel(partLevelLabels, lvl), costNoise, epsLevel)
			// Deviation costs are non-negative by construction; clamping
			// the noisy value is post-processing and stops the DP from
			// chasing spuriously negative costs.
			if c < 0 {
				c = 0
			}
			cands = append(cands, candidate{lo, lo + size, c})
		})
		// The noise calibration counts log2Ceil(n)+1 levels, but on a
		// non-power-of-two domain only floor(log2(n))+1 dyadic sizes exist:
		// the phantom level's slice is charged as a forfeit so the ledger
		// sums to eps1 exactly (the calibration over-noises by that slice —
		// kept as-is to preserve the published noise stream).
		if actual := bits.Len(uint(n)); actual < levels {
			m.Charge("part-forfeit", float64(levels-actual)*epsLevel)
		}
	}

	// DP over bucket endpoints: best[j] = min cost to cover [0, j).
	byEnd := make([][]candidate, n+1)
	for _, c := range cands {
		byEnd[c.hi] = append(byEnd[c.hi], c)
	}
	best := make([]float64, n+1)
	back := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		back[j] = j - 1
		for _, c := range byEnd[j] {
			total := best[c.lo] + c.cost + penalty
			if total < best[j] {
				best[j] = total
				back[j] = c.lo
			}
		}
	}
	var bounds []int
	for j := n; j > 0; j = back[j] {
		bounds = append(bounds, j)
	}
	bounds = append(bounds, 0)
	sort.Ints(bounds)
	return bounds
}

// bucketLevelWeights maps the cell-level workload onto the bucket domain and
// computes canonical level weights there, so stage two's budget allocation
// remains workload-aware. Returns nil (uniform) when no usable workload.
func bucketLevelWeights(n, k, b int, bounds []int, w *workload.Workload) []float64 {
	if w == nil || len(w.Dims) != 1 || w.Dims[0] != n || k < 2 {
		return nil
	}
	// cellToBucket[i] = index of bucket containing cell i.
	cellToBucket := make([]int, n)
	for bi := 0; bi+1 < len(bounds); bi++ {
		for c := bounds[bi]; c < bounds[bi+1]; c++ {
			cellToBucket[c] = bi
		}
	}
	mapped := &workload.Workload{Name: w.Name + "/buckets", Dims: []int{k}}
	mapped.Grow(w.Size())
	for qi := 0; qi < w.Size(); qi++ {
		lo, hi := w.Range(qi)
		mapped.AddRange(cellToBucket[lo], cellToBucket[hi])
	}
	return CanonicalLevelWeights(k, b, mapped)
}
