package algo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// GreedyH is the workload-aware hierarchical mechanism introduced as the
// second stage of DAWA (Li et al., PVLDB 2014) and evaluated stand-alone by
// the benchmark. It builds a binary hierarchy and tunes the per-level privacy
// budget to the workload: levels whose nodes appear more often in the
// canonical decompositions of workload queries receive more budget. With
// per-level usage weights w_l, minimizing the total workload variance
// sum_l w_l * 2/eps_l^2 subject to sum_l eps_l = eps gives the closed form
// eps_l proportional to w_l^(1/3), which this implementation uses as the
// greedy allocation.
//
// In 2D the domain is linearized along the Hilbert curve (as DAWA does) and
// level weights default to uniform, since rectangles do not map to intervals.
type GreedyH struct {
	// B is the hierarchy branching factor (the published algorithm uses 2).
	B int
}

func init() { Register("GREEDY-H", func() Algorithm { return &GreedyH{B: 2} }) }

// Name implements Algorithm.
func (g *GreedyH) Name() string { return "GREEDY-H" }

// Supports implements Algorithm; GreedyH handles 1D and (via Hilbert) 2D.
func (g *GreedyH) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (g *GreedyH) DataDependent() bool { return false }

// Run implements Algorithm.
func (g *GreedyH) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(g, x, w, eps, rng)
}

// RunMeter implements Metered: per-level parallel scopes whose weighted
// budgets sum to eps.
func (g *GreedyH) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(g, x, w, m)
}

// greedyHPlan holds the cached hierarchy, the workload-tuned budget, and (in
// 2D) the Hilbert linearization of the data — everything but the noise.
type greedyHPlan struct {
	flat   *tree.Flat
	data   []float64 // 1D data, or its Hilbert linearization in 2D
	budget []float64
	perm   []int     // 2D only: out[perm[d]] = est[d]
	bufs   sync.Pool // 2D only: *[]float64 linearized estimate buffers
}

// Plan implements Algorithm. The hierarchy, the canonical workload weights
// (one counting walk per sweep, cached), the cube-root budget allocation and
// the 2D linearization all happen here, once per cell.
func (g *GreedyH) Plan(x *vec.Vector, w *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	b := g.B
	if b < 2 {
		b = 2
	}
	switch x.K() {
	case 1:
		flat, err := tree.SharedInterval(x.N(), b)
		if err != nil {
			return nil, err
		}
		weights := canonicalLevelWeightsCached(x.N(), b, w)
		return &greedyHPlan{
			flat: flat, data: x.Data,
			budget: levelBudgetFromWeights(eps, flat.Height(), weights),
		}, nil
	case 2:
		ny, nx := x.Dims[0], x.Dims[1]
		if nx != ny {
			return nil, fmt.Errorf("greedyh: 2D requires a square grid, got %dx%d", nx, ny)
		}
		lin, perm, err := hilbertLinearizeCached(x.Data, nx)
		if err != nil {
			return nil, err
		}
		flat, err := tree.SharedInterval(len(lin), b)
		if err != nil {
			return nil, err
		}
		p := &greedyHPlan{
			flat: flat, data: lin, perm: perm,
			budget: levelBudgetFromWeights(eps, flat.Height(), nil),
		}
		p.bufs.New = func() any { b := make([]float64, len(lin)); return &b }
		return p, nil
	default:
		return nil, fmt.Errorf("greedyh: unsupported dimensionality %d", x.K())
	}
}

//dp:hotpath
func (p *greedyHPlan) Execute(m *noise.Meter, out []float64) error {
	if p.perm == nil {
		flatTreeEstimate(p.flat, p.data, p.budget, m, out)
		return m.Err()
	}
	buf := p.bufs.Get().(*[]float64)
	flatTreeEstimate(p.flat, p.data, p.budget, m, *buf)
	for d, src := range p.perm {
		out[src] = (*buf)[d]
	}
	p.bufs.Put(buf)
	return m.Err()
}

// CompositionPlan implements Planner.
func (g *GreedyH) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// greedyHEstimate builds a b-ary hierarchy over data, allocates the meter's
// whole budget across levels proportional to weights^(1/3) (uniform when
// weights is nil or degenerate), measures every node, and runs consistency
// inference.
func greedyHEstimate(data []float64, b int, weights []float64, m *noise.Meter) ([]float64, error) {
	n := len(data)
	root, err := tree.BuildInterval(n, b)
	if err != nil {
		return nil, err
	}
	h := root.Height()
	budget := levelBudgetFromWeights(m.Total(), h, weights)
	root.Measure(m, data, budget)
	return root.Infer(n), nil
}

// levelBudgetFromWeights converts per-level usage weights into a budget
// split with eps_l proportional to w_l^(1/3); levels with zero weight still
// receive a small floor so inference stays well conditioned.
func levelBudgetFromWeights(eps float64, h int, weights []float64) []float64 {
	if len(weights) < h {
		return tree.UniformLevelBudget(eps, h)
	}
	cube := make([]float64, h)
	var total float64
	for l := 0; l < h; l++ {
		w := weights[l]
		if w < 1 {
			w = 1 // floor: keep every level measurable
		}
		cube[l] = math.Cbrt(w)
		total += cube[l]
	}
	if total == 0 {
		return tree.UniformLevelBudget(eps, h)
	}
	out := make([]float64, h)
	for l := range out {
		out[l] = eps * cube[l] / total
	}
	return out
}

// CanonicalLevelWeights counts, per hierarchy level, how many canonical
// nodes the workload's queries use when answered through a b-ary interval
// tree over [0, n). Level 0 is the root. A nil result (for nil workloads or
// non-1D workloads) signals the caller to fall back to uniform allocation.
// The counting walk runs over the shared flattened tree, so no structure is
// built per call.
func CanonicalLevelWeights(n, b int, w *workload.Workload) []float64 {
	if w == nil || len(w.Dims) != 1 || w.Dims[0] != n {
		return nil
	}
	flat, err := tree.SharedInterval(n, b)
	if err != nil {
		return nil
	}
	weights := make([]float64, flat.Height())
	for k := 0; k < w.Size(); k++ {
		lo, hi := w.Range(k)
		flat.AddCanonicalCount(lo, hi, weights)
	}
	return weights
}
