// Package algo implements the 17 differentially private release mechanisms
// evaluated by DPBench (Table 1 and Appendix B of the paper) behind a common
// interface. Every mechanism consumes a data vector x, a workload W (used
// only by workload-aware mechanisms), a privacy budget epsilon, and a seeded
// RNG, and produces an estimated data vector x-hat from which any range
// query can be answered by summation.
package algo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Algorithm is a differentially private data-release mechanism.
type Algorithm interface {
	// Name returns the benchmark identifier, e.g. "DAWA" or "MWEM*".
	Name() string
	// Supports reports whether the mechanism handles k-dimensional data.
	Supports(k int) bool
	// DataDependent reports whether the mechanism's error distribution
	// depends on the input data (Section 3.1).
	DataDependent() bool
	// Run releases an estimate of x under epsilon-differential privacy.
	// The returned slice has one entry per cell of x. Run is exactly
	// Plan(x, w, eps) followed by one Execute.
	Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error)
	// Plan prepares an executable release plan for the cell (x, w, eps),
	// performing all deterministic structure building up front so repeated
	// trials pay only for noise and inference. Plans draw no randomness and
	// spend no budget; Execute may run concurrently on one plan.
	Plan(x *vec.Vector, w *workload.Workload, eps float64) (Plan, error)
}

// Metered is implemented by every mechanism in this package. RunMeter is Run
// with a caller-supplied noise meter: Run constructs an unmetered noise.Meter
// from its (eps, rng) arguments and delegates here, while the audit path
// supplies a ledger-backed meter and verifies the mechanism's budget
// arithmetic after the trial. The meter only wraps the noise stream — for a
// fixed rng the output is bit-identical whichever entry point is used.
type Metered interface {
	// RunMeter releases an estimate of x, drawing all noise through m and
	// spending exactly m.Total().
	RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error)
}

// Planner is implemented by mechanisms that declare their budget-composition
// plan: the complete set of ledger labels RunMeter may emit and how each
// composes. The audit rejects any spend outside the plan.
type Planner interface {
	CompositionPlan() noise.Plan
}

// RunAudited executes one trial through a ledger-backed meter and asserts
// afterwards that the mechanism spent exactly eps (within 1e-9; both over-
// and under-spend fail) and that the ledger matches the mechanism's declared
// composition plan. It is the enforcement point the paper's composition
// claims (Section 2.1, Table 1) rest on: core.Run and the trainer call it for
// every trial when audit mode is on.
func RunAudited(a Algorithm, x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	p, err := a.Plan(x, w, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.N())
	if err := ExecuteAudited(a, p, eps, rng, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SideInfoUser is implemented by mechanisms that consume the true scale as
// public side information (MWEM, SF, UGrid, AGrid — Principle 7). The
// benchmark's Rside repair wraps them so scale is estimated privately
// instead.
type SideInfoUser interface {
	// SetScaleEstimator switches the mechanism from using the true scale
	// to spending the fraction rho of its budget on a noisy estimate.
	SetScaleEstimator(rho float64)
}

// ErrUnknownAlgorithm marks a registry lookup for a name that is not
// registered. The public dpbench/release package re-exports it and the
// serving layer maps it to HTTP 404.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// registry maps names to constructors for the default configurations.
var registry = map[string]func() Algorithm{}

// Register adds a constructor to the global registry; it panics on duplicate
// names (a programming error).
func Register(name string, fn func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic("algo: duplicate registration of " + name)
	}
	registry[name] = fn
}

// New returns a fresh instance of the named algorithm in its default
// configuration.
func New(name string) (Algorithm, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("algo: %w: %q", ErrUnknownAlgorithm, name)
	}
	return fn(), nil
}

// Names returns the sorted list of registered algorithm names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns fresh default instances of every registered algorithm that
// supports k-dimensional data. A constructor error here means a corrupted
// registry — a programming error — so it panics with the offending name
// instead of silently dropping the mechanism from every benchmark roster.
func All(k int) []Algorithm {
	var out []Algorithm
	for _, n := range Names() {
		a, err := New(n)
		if err != nil {
			panic("algo: registry constructor for " + n + ": " + err.Error())
		}
		if a.Supports(k) {
			out = append(out, a)
		}
	}
	return out
}

// labelTable precomputes "<prefix><i>" ledger labels so metered draw sites
// perform no string formatting on the hot path.
func labelTable(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

var (
	partLevelLabels = labelTable("part-level", 64)
	splitLabels     = labelTable("split", 64)
	kdLabels        = labelTable("kd", 64)
)

// idxLabel indexes a label table, collapsing out-of-range depths (unreachable
// for any realistic domain) onto the last entry.
func idxLabel(table []string, i int) string {
	if i >= 0 && i < len(table) {
		return table[i]
	}
	return table[len(table)-1]
}

// validate checks the common preconditions shared by all mechanisms.
func validate(x *vec.Vector, eps float64) error {
	if x == nil || len(x.Data) == 0 {
		return fmt.Errorf("algo: empty data vector")
	}
	if eps <= 0 {
		return fmt.Errorf("algo: non-positive epsilon %v", eps)
	}
	return nil
}

// clampNonNegative zeroes negative estimates in place and returns the slice.
// Post-processing of differentially private output is privacy-free and all
// partition/count mechanisms in the suite apply it.
func clampNonNegative(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// uniformSpread writes total spread evenly over cells[lo:hi) of out.
func uniformSpread(out []float64, lo, hi int, total float64) {
	per := total / float64(hi-lo)
	for i := lo; i < hi; i++ {
		out[i] = per
	}
}
