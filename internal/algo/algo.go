// Package algo implements the 17 differentially private release mechanisms
// evaluated by DPBench (Table 1 and Appendix B of the paper) behind a common
// interface. Every mechanism consumes a data vector x, a workload W (used
// only by workload-aware mechanisms), a privacy budget epsilon, and a seeded
// RNG, and produces an estimated data vector x-hat from which any range
// query can be answered by summation.
package algo

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/vec"
	"repro/internal/workload"
)

// Algorithm is a differentially private data-release mechanism.
type Algorithm interface {
	// Name returns the benchmark identifier, e.g. "DAWA" or "MWEM*".
	Name() string
	// Supports reports whether the mechanism handles k-dimensional data.
	Supports(k int) bool
	// DataDependent reports whether the mechanism's error distribution
	// depends on the input data (Section 3.1).
	DataDependent() bool
	// Run releases an estimate of x under epsilon-differential privacy.
	// The returned slice has one entry per cell of x.
	Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error)
}

// SideInfoUser is implemented by mechanisms that consume the true scale as
// public side information (MWEM, SF, UGrid, AGrid — Principle 7). The
// benchmark's Rside repair wraps them so scale is estimated privately
// instead.
type SideInfoUser interface {
	// SetScaleEstimator switches the mechanism from using the true scale
	// to spending the fraction rho of its budget on a noisy estimate.
	SetScaleEstimator(rho float64)
}

// registry maps names to constructors for the default configurations.
var registry = map[string]func() Algorithm{}

// Register adds a constructor to the global registry; it panics on duplicate
// names (a programming error).
func Register(name string, fn func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic("algo: duplicate registration of " + name)
	}
	registry[name] = fn
}

// New returns a fresh instance of the named algorithm in its default
// configuration.
func New(name string) (Algorithm, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q", name)
	}
	return fn(), nil
}

// Names returns the sorted list of registered algorithm names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns fresh default instances of every registered algorithm that
// supports k-dimensional data.
func All(k int) []Algorithm {
	var out []Algorithm
	for _, n := range Names() {
		a, _ := New(n)
		if a.Supports(k) {
			out = append(out, a)
		}
	}
	return out
}

// validate checks the common preconditions shared by all mechanisms.
func validate(x *vec.Vector, eps float64) error {
	if x == nil || len(x.Data) == 0 {
		return fmt.Errorf("algo: empty data vector")
	}
	if eps <= 0 {
		return fmt.Errorf("algo: non-positive epsilon %v", eps)
	}
	return nil
}

// clampNonNegative zeroes negative estimates in place and returns the slice.
// Post-processing of differentially private output is privacy-free and all
// partition/count mechanisms in the suite apply it.
func clampNonNegative(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x
}

// uniformSpread writes total spread evenly over cells[lo:hi) of out.
func uniformSpread(out []float64, lo, hi int, total float64) {
	per := total / float64(hi-lo)
	for i := lo; i < hi; i++ {
		out[i] = per
	}
}
