package algo

import (
	"math"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// MWEM is the multiplicative-weights exponential-mechanism algorithm of
// Hardt, Ligett and McSherry (NIPS 2012). It maintains a synthetic
// distribution over the domain, initialized uniform at the (assumed public)
// dataset scale, and runs T rounds: each round privately selects the
// workload query with the largest error via the exponential mechanism,
// measures it with the Laplace mechanism, and applies multiplicative-weights
// updates. Following the published implementation, every round replays the
// full measurement history for several update sweeps.
//
// The number of rounds T is the free parameter the paper calls out
// (Section 6.4): the registry's "MWEM" uses the static T = 10 from the
// original paper, while "MWEM*" sets T from the trained data-independent
// profile as a function of the eps*scale product and estimates the scale
// privately instead of assuming it public.
type MWEM struct {
	// T is the number of rounds; 0 means derive it with TFromSignal.
	T int
	// TFromSignal maps the product eps*scale to a round count; used by
	// MWEM* (trained via core.TrainMWEM or the built-in DefaultTProfile).
	TFromSignal func(product float64) int
	// ScaleRho, when positive, is the budget fraction spent estimating the
	// scale privately instead of using it as side information.
	ScaleRho float64
	// UpdateSweeps is the number of history-replay sweeps per round.
	UpdateSweeps int

	starred bool
}

func init() {
	Register("MWEM", func() Algorithm { return &MWEM{T: 10, UpdateSweeps: 2} })
	Register("MWEM*", func() Algorithm {
		return &MWEM{TFromSignal: DefaultTProfile, ScaleRho: 0.05, UpdateSweeps: 2, starred: true}
	})
}

// DefaultTProfile is the shipped data-independent mapping from the signal
// strength eps*scale to the number of MWEM rounds, learned offline on
// synthetic power-law and normal shapes exactly as Section 6.4 prescribes
// (see core.TrainMWEM for the trainer). T grows from 2 at weak signal to 100
// at strong signal, mirroring the paper's reported range.
func DefaultTProfile(product float64) int {
	switch {
	case product < 50:
		return 2
	case product < 500:
		return 5
	case product < 5e3:
		return 10
	case product < 5e4:
		return 20
	case product < 5e5:
		return 40
	case product < 5e6:
		return 70
	default:
		return 100
	}
}

// Name implements Algorithm.
func (m *MWEM) Name() string {
	if m.starred {
		return "MWEM*"
	}
	return "MWEM"
}

// Supports implements Algorithm.
func (m *MWEM) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (m *MWEM) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (m *MWEM) SetScaleEstimator(rho float64) { m.ScaleRho = rho }

// measurement is one noisy answer in the MWEM history.
type measurement struct {
	query int
	value float64
}

// mwemState holds every buffer one MWEM run needs, allocated once up front
// so the per-round selection and the history-replay update sweeps are
// allocation-free. The estimate is kept in raw multiplicative-weights units
// with a deferred normalization scalar: true estimate = est[i] * norm. The
// per-entry renormalization of the published algorithm divides every cell by
// the current total; folding that division into norm turns each history
// replay from O(history * n) into O(history * range), with one O(n)
// materialization when the scalar is applied (once per sweep, and before
// each selection step). The folding is algebraically exact — it changes
// floating-point rounding only, at the ~1e-12 relative level (see the golden
// tests, which pin the optimized output to the reference implementation).
type mwemState struct {
	w      *workload.Workload
	ev     *workload.Evaluator
	est    []float64 // raw multiplicative weights; true estimate = est * norm
	norm   float64   // deferred renormalization scalar
	total  float64   // running raw total: sum(est), maintained incrementally
	scale  float64   // the (noisy or public) scale the estimate sums to
	estAns []float64 // per-query answers of the current estimate
	scores []float64 // exponential-mechanism scores
	expBuf []float64 // exponential-mechanism weight scratch
	chosen []bool    // queries already selected (reusable, replaces a map)
	hist   []measurement

	// seg holds the raw weights for 1D workloads, turning each history
	// replay step from O(range) into O(log n); est then only materializes
	// for the per-round selection. Nil for 2D (rectangles don't map to one
	// segment-tree range). See mulSegTree for the numerical contract.
	seg *mulSegTree

	// prefixW marks a workload whose query k covers exactly [0, k]: every
	// query answer is then one running sum over the leaves, so the fused
	// fast selection skips building the prefix table entirely.
	prefixW bool
}

func newMWEMState(w *workload.Workload, n, rounds int, scale float64) *mwemState {
	q := w.Size()
	st := &mwemState{
		w:      w,
		ev:     workload.NewEvaluator(w),
		est:    make([]float64, n),
		estAns: make([]float64, q),
		scores: make([]float64, q),
		expBuf: make([]float64, q),
		chosen: make([]bool, q),
		hist:   make([]measurement, 0, rounds),
	}
	if len(w.Dims) == 1 {
		st.seg = newMulSegTree(n)
		st.prefixW = q == n
		for k := 0; st.prefixW && k < n; k++ {
			if lo, hi := w.Range(k); lo != 0 || hi != k {
				st.prefixW = false
			}
		}
	}
	st.reset(scale)
	return st
}

// reset re-initializes a (possibly recycled) state for a fresh trial at the
// given scale: uniform estimate, no deferred scalar, empty history.
func (st *mwemState) reset(scale float64) {
	uniformSpread(st.est, 0, len(st.est), scale)
	if st.seg != nil {
		st.seg.fill(scale / float64(len(st.est)))
	}
	st.norm = 1
	st.scale = scale
	st.total = scale // uniform initialization sums to scale by construction
	for i := range st.chosen {
		st.chosen[i] = false
	}
	st.hist = st.hist[:0]
}

// materialize applies the deferred scalar to every cell and recomputes the
// raw total exactly, resetting the incremental drift of total. In 1D the
// weights live in the segment tree, so the scalar is folded in as one
// root-range multiply and the leaves are flattened into est.
func (st *mwemState) materialize() {
	if st.seg != nil {
		if st.norm != 1 {
			st.seg.MulRange(0, len(st.est), st.norm)
			st.norm = 1
			st.total = st.seg.Total()
		}
		st.seg.MaterializeInto(st.est)
		return
	}
	if st.norm != 1 {
		var total float64
		for i, v := range st.est {
			v *= st.norm
			st.est[i] = v
			total += v
		}
		st.total = total
		st.norm = 1
	}
}

// select picks the worst-approximated not-yet-chosen query with the
// exponential mechanism at budget epsSelect and marks it chosen. The
// estimate stays in raw units: the evaluator answers raw range sums, which
// the deferred scalar converts to true answers one multiply per query, so no
// O(n) materialization pass is needed. The prefix table's final entry is the
// exact raw total, which resets the incremental drift of total each round.
func (st *mwemState) selectQuery(trueAns []float64, epsSelect float64, m *noise.Meter) int {
	if st.seg != nil {
		// Stream the tree's leaves straight into the evaluator's prefix
		// table — the same accumulation Reset performs, minus one pass.
		st.seg.PrefixTableInto(st.ev.Table1D())
	} else {
		st.ev.Reset(st.est)
	}
	st.total = st.ev.Total()
	if st.total > 0 {
		st.norm = st.scale / st.total
	}
	st.ev.AnswerAll(st.estAns)
	for i := range st.scores {
		if st.chosen[i] {
			st.scores[i] = math.Inf(-1)
			continue
		}
		st.scores[i] = math.Abs(trueAns[i] - st.estAns[i]*st.norm)
	}
	q := m.ExpMechBuf("select", st.scores, 1, epsSelect, st.expBuf)
	st.chosen[q] = true
	return q
}

// selectQueryFast is selectQuery on the fast-sampler path for 1D workloads:
// the meter supplies a vector of standard Gumbel draws (charged exactly like
// the exponential-mechanism selection it implements), and one fused pass
// computes each query's score straight off the prefix table, perturbs it, and
// tracks the argmax — no estAns materialization, no score vector, no separate
// selection scan. Already-chosen queries are skipped outright instead of
// carrying a -Inf score; they could never win, so the selection distribution
// is identical. The draw stream differs from routing through ExpMechBuf,
// which is the fast-sampler contract (fast mode pins its own goldens).
func (st *mwemState) selectQueryFast(trueAns []float64, epsSelect float64, m *noise.Meter) int {
	leaves := st.seg.Leaves()
	st.total = st.seg.Total()
	if st.total > 0 {
		st.norm = st.scale / st.total
	}
	gum := st.expBuf[:len(st.scores)]
	if !m.ExpMechGumbels("select", gum, epsSelect) {
		return 0
	}
	lambda := epsSelect / 2 // sensitivity 1, as in the ExpMechBuf call
	norm := st.norm
	best, bi := math.Inf(-1), -1
	if st.prefixW {
		// Prefix workload: query i covers [0, i], so one running sum over
		// the leaves yields every raw answer in order — no prefix table.
		// The sum accumulates over all leaves (chosen queries included);
		// only the score/argmax step is skipped for chosen ones.
		ta, ch, g := trueAns[:len(leaves)], st.chosen[:len(leaves)], gum[:len(leaves)]
		var run float64
		for i, leaf := range leaves {
			run += leaf
			if ch[i] {
				continue
			}
			score := math.Abs(ta[i] - run*norm)
			if v := lambda*score + g[i]; v > best {
				best, bi = v, i
			}
		}
	} else {
		tbl := st.ev.Table1D()
		tbl[0] = 0
		for i, x := range leaves {
			tbl[i+1] = tbl[i] + x
		}
		for i := range gum {
			if st.chosen[i] {
				continue
			}
			lo, hi := st.w.Range(i)
			score := math.Abs(trueAns[i] - (tbl[hi+1]-tbl[lo])*norm)
			if v := lambda*score + gum[i]; v > best {
				best, bi = v, i
			}
		}
	}
	if bi < 0 {
		bi = 0 // unreachable: rounds are clamped to the workload size
	}
	st.chosen[bi] = true
	return bi
}

// replay applies one multiplicative-weights pass over the whole history,
// leaving the normalization scalar deferred. It allocates nothing.
func (st *mwemState) replay() {
	for _, h := range st.hist {
		st.update(h)
	}
}

// update applies one history entry: a multiplicative-weights step on the
// cells the query covers, followed by renormalization to the scale, which is
// folded into the deferred scalar instead of touching all n cells. In 1D the
// range sum and the multiplicative step run on the segment tree in O(log n).
func (st *mwemState) update(h measurement) {
	if st.seg != nil {
		lo, hi := st.w.Range(h.query)
		rs := st.seg.CollectRange(lo, hi+1)
		cur := rs * st.norm
		factor := (h.value - cur) / (2 * st.scale)
		if factor > 30 {
			factor = 30
		} else if factor < -30 {
			factor = -30
		}
		st.seg.ApplyCollected(math.Exp(factor))
		// Renormalize to the (noisy or public) scale via the deferred
		// scalar; the tree's root is the exact current raw total.
		st.total = st.seg.Total()
		if st.total > 0 {
			st.norm = st.scale / st.total
		}
		// Guard against raw-weight overflow/underflow when many large
		// multiplicative steps accumulate before the scalar is applied.
		if st.total > 1e280 || (st.total > 0 && st.total < 1e-280) {
			st.materialize()
		}
		return
	}
	est := st.est
	var rs float64 // raw sum of the query's range
	var lo0, hi0 int
	twoD := len(st.w.Dims) == 2
	var y0, x0, y1, x1, nx int
	if twoD {
		y0, x0, y1, x1 = st.w.Rect(h.query)
		nx = st.w.Dims[1]
		for y := y0; y <= y1; y++ {
			row := est[y*nx+x0 : y*nx+x1+1]
			for _, v := range row {
				rs += v
			}
		}
	} else {
		lo0, hi0 = st.w.Range(h.query)
		for _, v := range est[lo0 : hi0+1] {
			rs += v
		}
	}
	cur := rs * st.norm
	factor := (h.value - cur) / (2 * st.scale)
	if factor > 30 {
		factor = 30
	} else if factor < -30 {
		factor = -30
	}
	mult := math.Exp(factor)
	if twoD {
		for y := y0; y <= y1; y++ {
			row := est[y*nx+x0 : y*nx+x1+1]
			for i := range row {
				row[i] *= mult
			}
		}
	} else {
		row := est[lo0 : hi0+1]
		for i := range row {
			row[i] *= mult
		}
	}
	// Renormalize to the (noisy or public) scale: instead of scaling all n
	// cells by scale/newTotal, track the new raw total incrementally and
	// fold the scaling into the deferred scalar.
	st.total += rs * (mult - 1)
	if st.total > 0 {
		st.norm = st.scale / st.total
	}
	// Guard against raw-weight overflow/underflow when many large
	// multiplicative steps accumulate before the scalar is applied.
	if st.total > 1e280 || (st.total > 0 && st.total < 1e-280) {
		st.materialize()
	}
}

// Run implements Algorithm.
func (m *MWEM) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(m, x, w, eps, rng)
}

// RunMeter implements Metered. The budget is epsScale for the optional
// private scale estimate plus, per round, half the round budget on selection
// and half on measurement — all sequential spends summing to eps.
func (m *MWEM) RunMeter(x *vec.Vector, w *workload.Workload, mt *noise.Meter) ([]float64, error) {
	return runPlanMeter(m, x, w, mt)
}

// mwemPlan hoists the true workload answers (the only data summary every
// round reads) and recycles the whole multiplicative-weights state across
// trials; the rounds themselves are per-trial noise, as the mechanism
// demands.
type mwemPlan struct {
	m       *MWEM
	w       *workload.Workload
	trueAns []float64
	n       int
	eps     float64
	scale   float64
	rounds  int // resolved at plan time when the scale is public
	sweeps  int
	states  *sync.Pool // *mwemState, shared across plans (see mwemStatePool)
}

// mwemStatePool returns the process-wide state pool for (w, n). A state is
// ~dozens of n-sized buffers plus the segment tree; sharing the pool across
// plans lets repeated Plan/Execute cycles (each benchmark Run builds a fresh
// plan) recycle states instead of re-allocating and zeroing them every time.
// Keying by workload pointer pins the workload, which is fine for the
// benchmark's bounded workload set (same contract as levelWeightsCache); the
// query count rides along so a workload grown after first use misses.
var mwemStatePools sync.Map // mwemStateKey -> *sync.Pool

type mwemStateKey struct {
	w    *workload.Workload
	n, q int
}

func mwemStatePool(w *workload.Workload, n int) *sync.Pool {
	key := mwemStateKey{w: w, n: n, q: w.Size()}
	if v, ok := mwemStatePools.Load(key); ok {
		return v.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any { return newMWEMState(w, n, 8, 1) }}
	v, _ := mwemStatePools.LoadOrStore(key, p)
	return v.(*sync.Pool)
}

// Plan implements Algorithm.
func (m *MWEM) Plan(x *vec.Vector, w *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if w == nil || w.Size() == 0 {
		w = workload.Prefix(x.N())
	}
	sweeps := m.UpdateSweeps
	if sweeps < 1 {
		sweeps = 1
	}
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return nil, err
	}
	p := &mwemPlan{
		m: m, w: w, trueAns: trueAns, n: x.N(),
		eps: eps, sweeps: sweeps,
		// Pside: the dataset scale is declared public side information
		// (HayMMCZ16 Principle 7). Rside (ScaleRho > 0) ignores this value
		// as-is and re-estimates it with a metered draw in Execute.
		scale: x.Scale(), //dp:public Pside declared side information; Rside noises it per trial
	}
	if m.ScaleRho <= 0 {
		p.rounds = m.resolveRounds(eps, p.scale, w)
	}
	p.states = mwemStatePool(w, p.n)
	return p, nil
}

// resolveRounds applies the static T or the trained profile, clamped to the
// workload size.
func (m *MWEM) resolveRounds(eps, scale float64, w *workload.Workload) int {
	rounds := m.T
	if rounds <= 0 {
		prof := m.TFromSignal
		if prof == nil {
			prof = DefaultTProfile
		}
		rounds = prof(eps * scale)
	}
	if rounds < 1 {
		rounds = 1
	}
	if rounds > w.Size() {
		rounds = w.Size()
	}
	return rounds
}

func (p *mwemPlan) Execute(mt *noise.Meter, out []float64) error {
	epsLeft, scale, rounds := p.eps, p.scale, p.rounds
	if p.m.ScaleRho > 0 {
		// Rside: the scale estimate (and therefore the round count) is this
		// trial's first noise draw.
		epsScale := p.eps * p.m.ScaleRho
		scale += mt.Laplace("scale", 1/epsScale, epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
		rounds = p.m.resolveRounds(p.eps, scale, p.w)
	}

	st := p.states.Get().(*mwemState)
	defer p.states.Put(st)
	st.reset(scale)
	epsRound := epsLeft / float64(rounds)

	// The fused fast selection needs the segment tree (1D workloads only);
	// 2D and legacy trials take the materializing path.
	fastSelect := mt.Sampler() == noise.SamplerFast && st.seg != nil

	for t := 0; t < rounds; t++ {
		// Select the worst-approximated query with half the round budget.
		var q int
		if fastSelect {
			q = st.selectQueryFast(p.trueAns, epsRound/2, mt)
		} else {
			q = st.selectQuery(p.trueAns, epsRound/2, mt)
		}
		// Measure it with the other half (noise scale 2/epsRound is
		// sensitivity 1 over a spend of epsRound/2).
		meas := p.trueAns[q] + mt.Laplace("measure", 2/epsRound, epsRound/2)
		st.hist = append(st.hist, measurement{q, meas})

		// Multiplicative weights over the history.
		for s := 0; s < p.sweeps; s++ {
			st.replay()
		}
	}
	st.materialize()
	copy(out, st.est)
	return mt.Err()
}

// CompositionPlan implements Planner.
func (m *MWEM) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "select", Kind: noise.Sequential},
		{Label: "measure", Kind: noise.Sequential},
	}
}
