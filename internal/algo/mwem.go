package algo

import (
	"math"
	"math/rand"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// MWEM is the multiplicative-weights exponential-mechanism algorithm of
// Hardt, Ligett and McSherry (NIPS 2012). It maintains a synthetic
// distribution over the domain, initialized uniform at the (assumed public)
// dataset scale, and runs T rounds: each round privately selects the
// workload query with the largest error via the exponential mechanism,
// measures it with the Laplace mechanism, and applies multiplicative-weights
// updates. Following the published implementation, every round replays the
// full measurement history for several update sweeps.
//
// The number of rounds T is the free parameter the paper calls out
// (Section 6.4): the registry's "MWEM" uses the static T = 10 from the
// original paper, while "MWEM*" sets T from the trained data-independent
// profile as a function of the eps*scale product and estimates the scale
// privately instead of assuming it public.
type MWEM struct {
	// T is the number of rounds; 0 means derive it with TFromSignal.
	T int
	// TFromSignal maps the product eps*scale to a round count; used by
	// MWEM* (trained via core.TrainMWEM or the built-in DefaultTProfile).
	TFromSignal func(product float64) int
	// ScaleRho, when positive, is the budget fraction spent estimating the
	// scale privately instead of using it as side information.
	ScaleRho float64
	// UpdateSweeps is the number of history-replay sweeps per round.
	UpdateSweeps int

	starred bool
}

func init() {
	Register("MWEM", func() Algorithm { return &MWEM{T: 10, UpdateSweeps: 2} })
	Register("MWEM*", func() Algorithm {
		return &MWEM{TFromSignal: DefaultTProfile, ScaleRho: 0.05, UpdateSweeps: 2, starred: true}
	})
}

// DefaultTProfile is the shipped data-independent mapping from the signal
// strength eps*scale to the number of MWEM rounds, learned offline on
// synthetic power-law and normal shapes exactly as Section 6.4 prescribes
// (see core.TrainMWEM for the trainer). T grows from 2 at weak signal to 100
// at strong signal, mirroring the paper's reported range.
func DefaultTProfile(product float64) int {
	switch {
	case product < 50:
		return 2
	case product < 500:
		return 5
	case product < 5e3:
		return 10
	case product < 5e4:
		return 20
	case product < 5e5:
		return 40
	case product < 5e6:
		return 70
	default:
		return 100
	}
}

// Name implements Algorithm.
func (m *MWEM) Name() string {
	if m.starred {
		return "MWEM*"
	}
	return "MWEM"
}

// Supports implements Algorithm.
func (m *MWEM) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (m *MWEM) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (m *MWEM) SetScaleEstimator(rho float64) { m.ScaleRho = rho }

// Run implements Algorithm.
func (m *MWEM) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if w == nil || w.Size() == 0 {
		w = workload.Prefix(x.N())
	}
	epsLeft := eps
	scale := x.Scale()
	if m.ScaleRho > 0 {
		epsScale := eps * m.ScaleRho
		scale += noise.Laplace(rng, 1/epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
	}
	rounds := m.T
	if rounds <= 0 {
		prof := m.TFromSignal
		if prof == nil {
			prof = DefaultTProfile
		}
		rounds = prof(eps * scale)
	}
	if rounds < 1 {
		rounds = 1
	}
	if rounds > w.Size() {
		rounds = w.Size()
	}
	sweeps := m.UpdateSweeps
	if sweeps < 1 {
		sweeps = 1
	}

	n := x.N()
	est := make([]float64, n)
	uniformSpread(est, 0, n, scale)
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return nil, err
	}

	epsRound := epsLeft / float64(rounds)
	type measurement struct {
		query int
		value float64
	}
	var history []measurement
	chosen := make(map[int]bool)

	for t := 0; t < rounds; t++ {
		// Select the worst-approximated query with half the round budget.
		estAns := w.EvaluateFlat(est)
		scores := make([]float64, w.Size())
		for i := range scores {
			if chosen[i] {
				scores[i] = math.Inf(-1)
				continue
			}
			scores[i] = math.Abs(trueAns[i] - estAns[i])
		}
		q := noise.ExpMech(rng, scores, 1, epsRound/2)
		chosen[q] = true
		// Measure it with the other half.
		meas := trueAns[q] + noise.Laplace(rng, 2/epsRound)
		history = append(history, measurement{q, meas})

		// Multiplicative weights over the history.
		for s := 0; s < sweeps; s++ {
			for _, h := range history {
				cur := answerOne(w, h.query, est)
				factor := (h.value - cur) / (2 * scale)
				if factor > 30 {
					factor = 30
				} else if factor < -30 {
					factor = -30
				}
				mult := math.Exp(factor)
				var newTotal float64
				for cell := 0; cell < n; cell++ {
					if w.Covers(h.query, cell) {
						est[cell] *= mult
					}
					newTotal += est[cell]
				}
				// Renormalize to the (noisy or public) scale.
				if newTotal > 0 {
					adj := scale / newTotal
					for cell := range est {
						est[cell] *= adj
					}
				}
			}
		}
	}
	return est, nil
}

// answerOne evaluates one workload query against an estimate vector.
func answerOne(w *workload.Workload, k int, est []float64) float64 {
	var s float64
	q := w.Queries[k]
	switch len(w.Dims) {
	case 1:
		for i := q.Lo[0]; i <= q.Hi[0]; i++ {
			s += est[i]
		}
	case 2:
		nx := w.Dims[1]
		for y := q.Lo[0]; y <= q.Hi[0]; y++ {
			for xc := q.Lo[1]; xc <= q.Hi[1]; xc++ {
				s += est[y*nx+xc]
			}
		}
	}
	return s
}
