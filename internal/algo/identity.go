package algo

import (
	"math/rand"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Identity is the data-independent baseline: independent Laplace(1/eps) noise
// on every cell count (Section 3.1). It is the direct application of the
// Laplace mechanism to the histogram function, whose sensitivity is 1.
type Identity struct{}

func init() { Register("IDENTITY", func() Algorithm { return Identity{} }) }

// Name implements Algorithm.
func (Identity) Name() string { return "IDENTITY" }

// Supports implements Algorithm; Identity works in any dimensionality.
func (Identity) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (Identity) DataDependent() bool { return false }

// Run implements Algorithm.
func (Identity) Run(x *vec.Vector, _ *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	return noise.LaplaceMechanism(rng, x.Data, 1, eps), nil
}

// Uniform is the data-dependent baseline: it spends the whole budget
// estimating the scale and spreads it uniformly, equivalent to an equi-width
// histogram with a single domain-wide bucket (Section 3.1).
type Uniform struct{}

func init() { Register("UNIFORM", func() Algorithm { return Uniform{} }) }

// Name implements Algorithm.
func (Uniform) Name() string { return "UNIFORM" }

// Supports implements Algorithm.
func (Uniform) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm. Uniform learns (only) the scale from
// the data, which the paper marks as weakly data-dependent.
func (Uniform) DataDependent() bool { return true }

// Run implements Algorithm.
func (Uniform) Run(x *vec.Vector, _ *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	total := x.Scale() + noise.Laplace(rng, 1/eps)
	if total < 0 {
		total = 0
	}
	out := make([]float64, x.N())
	uniformSpread(out, 0, len(out), total)
	return out, nil
}
