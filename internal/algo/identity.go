package algo

import (
	"math/rand"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Identity is the data-independent baseline: independent Laplace(1/eps) noise
// on every cell count (Section 3.1). It is the direct application of the
// Laplace mechanism to the histogram function, whose sensitivity is 1.
type Identity struct{}

func init() { Register("IDENTITY", func() Algorithm { return Identity{} }) }

// Name implements Algorithm.
func (Identity) Name() string { return "IDENTITY" }

// Supports implements Algorithm; Identity works in any dimensionality.
func (Identity) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (Identity) DataDependent() bool { return false }

// Run implements Algorithm.
func (a Identity) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(a, x, w, eps, rng)
}

// RunMeter implements Metered. The histogram is one vector-valued query with
// L1 sensitivity 1, so the full budget is a single sequential spend.
func (a Identity) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(a, x, w, m)
}

// identityPlan needs nothing beyond the data reference: a trial is one
// vector-noise pass straight into the output buffer.
type identityPlan struct {
	data []float64
	eps  float64
}

// Plan implements Algorithm.
func (Identity) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	return &identityPlan{data: x.Data, eps: eps}, nil
}

//dp:hotpath
func (p *identityPlan) Execute(m *noise.Meter, out []float64) error {
	m.LaplaceMechanismInto("cells", out, p.data, 1, p.eps)
	return m.Err()
}

// CompositionPlan implements Planner.
func (Identity) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "cells", Kind: noise.Sequential}}
}

// Uniform is the data-dependent baseline: it spends the whole budget
// estimating the scale and spreads it uniformly, equivalent to an equi-width
// histogram with a single domain-wide bucket (Section 3.1).
type Uniform struct{}

func init() { Register("UNIFORM", func() Algorithm { return Uniform{} }) }

// Name implements Algorithm.
func (Uniform) Name() string { return "UNIFORM" }

// Supports implements Algorithm.
func (Uniform) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm. Uniform learns (only) the scale from
// the data, which the paper marks as weakly data-dependent.
func (Uniform) DataDependent() bool { return true }

// Run implements Algorithm.
func (a Uniform) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(a, x, w, eps, rng)
}

// RunMeter implements Metered: one scale query (sensitivity 1) at full
// budget.
func (a Uniform) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(a, x, w, m)
}

// uniformPlan amortizes the only data access Uniform performs — the exact
// scale — so a trial is one noise draw and a spread.
type uniformPlan struct {
	scale float64
	eps   float64
}

// Plan implements Algorithm.
func (Uniform) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	return &uniformPlan{scale: x.Scale(), eps: eps}, nil
}

//dp:hotpath
func (p *uniformPlan) Execute(m *noise.Meter, out []float64) error {
	total := p.scale + m.Laplace("total", 1/p.eps, p.eps)
	if total < 0 {
		total = 0
	}
	uniformSpread(out, 0, len(out), total)
	return m.Err()
}

// CompositionPlan implements Planner.
func (Uniform) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "total", Kind: noise.Sequential}}
}
