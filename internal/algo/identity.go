package algo

import (
	"math/rand"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Identity is the data-independent baseline: independent Laplace(1/eps) noise
// on every cell count (Section 3.1). It is the direct application of the
// Laplace mechanism to the histogram function, whose sensitivity is 1.
type Identity struct{}

func init() { Register("IDENTITY", func() Algorithm { return Identity{} }) }

// Name implements Algorithm.
func (Identity) Name() string { return "IDENTITY" }

// Supports implements Algorithm; Identity works in any dimensionality.
func (Identity) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (Identity) DataDependent() bool { return false }

// Run implements Algorithm.
func (a Identity) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return a.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered. The histogram is one vector-valued query with
// L1 sensitivity 1, so the full budget is a single sequential spend.
func (Identity) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	out := m.LaplaceMechanism("cells", x.Data, 1, eps)
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (Identity) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "cells", Kind: noise.Sequential}}
}

// Uniform is the data-dependent baseline: it spends the whole budget
// estimating the scale and spreads it uniformly, equivalent to an equi-width
// histogram with a single domain-wide bucket (Section 3.1).
type Uniform struct{}

func init() { Register("UNIFORM", func() Algorithm { return Uniform{} }) }

// Name implements Algorithm.
func (Uniform) Name() string { return "UNIFORM" }

// Supports implements Algorithm.
func (Uniform) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm. Uniform learns (only) the scale from
// the data, which the paper marks as weakly data-dependent.
func (Uniform) DataDependent() bool { return true }

// Run implements Algorithm.
func (a Uniform) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return a.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: one scale query (sensitivity 1) at full
// budget.
func (Uniform) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	total := x.Scale() + m.Laplace("total", 1/eps, eps)
	if total < 0 {
		total = 0
	}
	out := make([]float64, x.N())
	uniformSpread(out, 0, len(out), total)
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (Uniform) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "total", Kind: noise.Sequential}}
}
