package algo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dpbench/internal/noise"
	"dpbench/internal/workload"
)

// The fast sampler draws its own stream, so the legacy goldens cannot pin it.
// This file gives the fast path its own pins: a digest golden over the exact
// outputs of every mechanism the Gumbel-max selection rewired (MWEM, PHP,
// AHP, SF), a run-to-run reproducibility check (the pooled per-plan state
// must not leak across executions), and the legacy-vs-fast audit cross-check
// (budget charges are independent of the sampler, so a fast trial must pass
// the identical sum-to-eps and composition-plan audit a legacy trial does).

var samplerGoldenPath = filepath.Join("testdata", "sampler_fast_golden.json")

// fastGoldenCases are the mechanisms whose fast-sampler output stream is
// pinned. All four route selections through the Gumbel-max top-1 path; PHP
// and SF additionally exercise the batched vector Laplace and geometric fast
// paths.
var fastGoldenCases = []struct {
	name string
	seed int64
	eps  float64
}{
	{"MWEM", 3, 0.5},
	{"PHP", 5, 0.5},
	{"AHP", 7, 0.5},
	{"SF", 11, 0.5},
}

// outputDigest hashes the exact bit pattern of an output vector, so a single
// ulp of drift anywhere fails the golden.
func outputDigest(out []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range out {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func runFastGolden(t *testing.T, name string, seed int64, eps float64) []float64 {
	t.Helper()
	a, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	a = WithSamplerVersion(a, noise.SamplerFast)
	n := 64
	x := goldenVec(t, rand.New(rand.NewSource(seed)), n)
	w := workload.Prefix(n)
	out, err := a.Run(x, w, eps, rand.New(rand.NewSource(seed*1009+17)))
	if err != nil {
		t.Fatalf("%s fast run: %v", name, err)
	}
	return out
}

// TestFastSamplerGolden pins the fast-sampler output stream bit-for-bit.
// Regenerate with UPDATE_SAMPLER_GOLDEN=1 after an intentional change to the
// fast samplers (and say so in the commit: fast-stream changes invalidate
// recorded fast-mode experiment outputs the way legacy-stream changes would
// invalidate the repo's golden CSVs).
func TestFastSamplerGolden(t *testing.T) {
	got := map[string]string{}
	for _, c := range fastGoldenCases {
		got[c.name] = outputDigest(runFastGolden(t, c.name, c.seed, c.eps))
	}
	if os.Getenv("UPDATE_SAMPLER_GOLDEN") != "" {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(samplerGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(samplerGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", samplerGoldenPath)
		return
	}
	blob, err := os.ReadFile(samplerGoldenPath)
	if err != nil {
		t.Fatalf("reading fast-sampler golden (regenerate with UPDATE_SAMPLER_GOLDEN=1): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range fastGoldenCases {
		if got[c.name] != want[c.name] {
			t.Errorf("%s fast-sampler digest %s, golden %s — the fast noise stream changed", c.name, got[c.name], want[c.name])
		}
	}
}

// TestFastSamplerReproducible guards the pooled plan state (mwemStatePools,
// phpScratchPools) against cross-execution leakage: two fast executions of
// the same plan on the same seed must be bit-identical even though they reuse
// pooled scratch.
func TestFastSamplerReproducible(t *testing.T) {
	for _, c := range fastGoldenCases {
		a := runFastGolden(t, c.name, c.seed, c.eps)
		b := runFastGolden(t, c.name, c.seed, c.eps)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s cell %d: %v != %v — fast runs must be bit-reproducible for a fixed seed", c.name, i, a[i], b[i])
			}
		}
	}
}

// TestWithSamplerVersionWrapping pins the wrapper contract: the legacy pin is
// free (same instance back), and the fast pin delegates identity methods and
// unwraps to the concrete mechanism.
func TestWithSamplerVersionWrapping(t *testing.T) {
	a, err := New("MWEM")
	if err != nil {
		t.Fatal(err)
	}
	if WithSamplerVersion(a, noise.SamplerLegacy) != a {
		t.Fatal("legacy pin must return the mechanism unchanged")
	}
	f := WithSamplerVersion(a, noise.SamplerFast)
	if f == a {
		t.Fatal("fast pin must wrap")
	}
	if f.Name() != a.Name() || f.Supports(1) != a.Supports(1) || f.DataDependent() != a.DataDependent() {
		t.Fatal("wrapper must delegate identity methods")
	}
	u, ok := f.(interface{ Unwrap() Algorithm })
	if !ok || u.Unwrap() != a {
		t.Fatal("wrapper must unwrap to the concrete mechanism")
	}
}

// TestFastLegacyAuditParity is the audit cross-check: every mechanism with a
// fast selection path must pass the ledger audit (spends sum to exactly eps
// and match the declared composition plan) under BOTH sampler versions. A
// fast path that skipped a charge, or charged under an undeclared label,
// fails here.
func TestFastLegacyAuditParity(t *testing.T) {
	const n, eps = 64, 0.5
	for _, name := range []string{"MWEM", "PHP", "AHP", "SF", "DAWA", "GREEDY-H", "EFPA"} {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		x := goldenVec(t, rand.New(rand.NewSource(42)), n)
		w := workload.Prefix(n)
		p, err := a.Plan(x, w, eps)
		if err != nil {
			t.Fatalf("%s plan: %v", name, err)
		}
		out := make([]float64, n)
		for _, v := range []noise.SamplerVersion{noise.SamplerLegacy, noise.SamplerFast} {
			if err := ExecuteAuditedV(a, p, eps, rand.New(rand.NewSource(1234)), v, out); err != nil {
				t.Errorf("%s failed the audit under the %s sampler: %v", name, v, err)
			}
		}
	}
}
