package algo

import (
	"fmt"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Plan is a prepared release plan bound to one (x, w, eps) experiment cell,
// produced by Algorithm.Plan. Execute runs one independent trial: it draws
// every noise sample through m (whose Total must equal the planned eps) and
// writes the estimate into out (len x.N()).
//
// Plan construction is deterministic — no randomness, no privacy cost — so a
// plan amortizes all structure building (interval trees, wavelet transforms,
// grid layouts, workload weights, deviation tables) across the repeated
// trials of a benchmark cell. Execute is safe for concurrent use: per-trial
// state lives in internal pools, so one plan can serve every worker of a
// parallel trial loop. For a fixed meter/RNG the output is bit-identical to
// Run with the same arguments (Run is Plan + Execute).
//
// Data-independent mechanisms (Identity, H, Hb, GreedyH, Privelet, QuadTree,
// UGrid without Rside, EFPA's spectrum and score table) front-load all
// structural work at plan time; data-dependent mechanisms (DAWA, MWEM, AHP,
// SF, PHP, DPCube, AGrid, HybridTree) re-select their structure from fresh
// noise inside every Execute — as differential privacy demands — but still
// hoist their deterministic data summaries (prefix sums, deviation tables,
// true workload answers, Hilbert linearizations) into the plan and recycle
// their per-trial scratch.
type Plan interface {
	Execute(m *noise.Meter, out []float64) error
}

// runPlan implements Run for every mechanism: plan once, execute once.
func runPlan(a Algorithm, x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	p, err := a.Plan(x, w, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.N())
	if err := p.Execute(noise.NewMeter(eps, rng), out); err != nil {
		return nil, err
	}
	return out, nil
}

// runPlanMeter implements RunMeter for every mechanism: the caller supplies
// the (possibly audited) meter, whose budget is the planned eps.
func runPlanMeter(a Algorithm, x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	p, err := a.Plan(x, w, m.Total())
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.N())
	if err := p.Execute(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ExecuteAudited runs one trial of a prepared plan through a ledger-backed
// meter and asserts afterwards that the mechanism spent exactly eps (within
// 1e-9) and that the ledger matches a's declared composition plan. It is the
// plan-path counterpart of RunAudited, used by the experiment runner's trial
// loop so auditing keeps amortizing structure across trials.
func ExecuteAudited(a Algorithm, p Plan, eps float64, rng *rand.Rand, out []float64) error {
	return ExecuteAuditedV(a, p, eps, rng, noise.SamplerLegacy, out)
}

// ExecuteAuditedV is ExecuteAudited with an explicit sampler version. The
// ledger records budget charges, not noise values, so a fast-sampler trial
// must pass the identical sum-to-eps and composition-plan checks a legacy
// trial does (the audit cross-check test pins this).
func ExecuteAuditedV(a Algorithm, p Plan, eps float64, rng *rand.Rand, v noise.SamplerVersion, out []float64) error {
	m, err := noise.NewAuditedMeterV(eps, rng, v)
	if err != nil {
		return err
	}
	defer m.Release()
	if err := p.Execute(m, out); err != nil {
		return err
	}
	var plan noise.Plan
	if pl, ok := a.(Planner); ok {
		plan = pl.CompositionPlan()
	}
	if err := m.Audit(plan); err != nil {
		return fmt.Errorf("algo: %s failed the budget audit: %w", a.Name(), err)
	}
	return nil
}

// --- shared deterministic caches ---

// optimalBranchingCache memoizes Hb's variance-optimal branching factor,
// which is a pure function of (n, k) but costs an O(n log n) scan to find.
var optimalBranchingCache sync.Map // [2]int -> int

func optimalBranchingCached(n, k int) int {
	key := [2]int{n, k}
	if v, ok := optimalBranchingCache.Load(key); ok {
		return v.(int)
	}
	b := OptimalBranching(n, k)
	optimalBranchingCache.Store(key, b)
	return b
}

// levelWeightsCache memoizes GreedyH's canonical level weights per (workload,
// n, b). Workloads are shared across the cells of a sweep, so the O(q log n)
// counting walk runs once per sweep instead of once per trial. Keying by
// pointer pins the workload for the cache's lifetime, which is fine for the
// benchmark's bounded workload set; the query count rides along in the key
// so a workload grown after first use misses instead of returning weights
// for its old query set.
var levelWeightsCache sync.Map // levelWeightsKey -> []float64 (read-only)

type levelWeightsKey struct {
	w       *workload.Workload
	n, b, q int
}

func canonicalLevelWeightsCached(n, b int, w *workload.Workload) []float64 {
	if w == nil {
		return nil
	}
	key := levelWeightsKey{w: w, n: n, b: b, q: w.Size()}
	if v, ok := levelWeightsCache.Load(key); ok {
		return v.([]float64)
	}
	weights := CanonicalLevelWeights(n, b, w)
	if weights == nil {
		// Cache the miss too (non-1D or mismatched workloads), as a typed nil.
		levelWeightsCache.Store(key, []float64(nil))
		return nil
	}
	v, _ := levelWeightsCache.LoadOrStore(key, weights)
	return v.([]float64)
}

// hilbertCache memoizes the Hilbert-curve permutation per grid side; the
// per-plan linearized data still has to be gathered, but the curve walk
// (the expensive part) runs once per side.
var hilbertCache sync.Map // int -> []int (read-only)

// hilbertLinearizeCached is transform.HilbertLinearize with the permutation
// cached per side: out[d] = data[perm[d]], identical to the uncached values.
func hilbertLinearizeCached(data []float64, side int) ([]float64, []int, error) {
	if v, ok := hilbertCache.Load(side); ok {
		perm := v.([]int)
		out := make([]float64, len(data))
		if len(data) != len(perm) {
			return nil, nil, fmt.Errorf("algo: data length %d does not match %dx%d grid", len(data), side, side)
		}
		for d, src := range perm {
			out[d] = data[src]
		}
		return out, perm, nil
	}
	out, perm, err := transform.HilbertLinearize(data, side)
	if err != nil {
		return nil, nil, err
	}
	hilbertCache.Store(side, perm)
	return out, perm, nil
}

// flatTreeEstimator is the shared per-trial core of the hierarchical
// mechanisms: sums, measure, infer over a cached flat tree. out must have
// length flat.N().
// newTreePlan builds the shared fixed-structure plan, pre-warming the flat
// tree's scratch pool: without this the first Execute pays the tree-sized
// scratch allocation, which reads as a cold-iteration artifact in timed
// benchmark loops (and as first-request latency in serve).
func newTreePlan(flat *tree.Flat, data []float64, budget []float64) *treePlan {
	flat.Release(flat.Acquire())
	return &treePlan{flat: flat, data: data, budget: budget}
}

func flatTreeEstimate(f *tree.Flat, data []float64, budget []float64, m *noise.Meter, out []float64) {
	sc := f.Acquire()
	f.ComputeSums(data, sc)
	f.MeasureInto(m, sc, budget)
	f.InferInto(sc, out)
	f.Release(sc)
}
