package algo

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// AHP is the adaptive histogram publication algorithm of Zhang et al.
// (ICDM 2014). Stage one spends a rho fraction of the budget on noisy cell
// counts, zeroes counts below a threshold controlled by eta, sorts the
// remainder and greedily clusters near-equal counts. Stage two measures each
// cluster total with the remaining budget (clusters are disjoint so the
// sensitivity is 1) and spreads it uniformly within the cluster.
//
// Rho and eta are the free parameters the paper flags (Table 1): "AHP" uses
// the fixed setting from the original authors, while "AHP*" uses the values
// produced by the benchmark's free-parameter trainer as a function of the
// eps*scale signal (Section 6.4).
type AHP struct {
	// Rho is the budget fraction for stage one (cluster selection).
	Rho float64
	// Eta scales the zeroing threshold eta*log(n)/(rho*eps).
	Eta float64
	// Trained, when non-nil, overrides (Rho, Eta) per eps*scale signal.
	Trained func(product float64) (rho, eta float64)

	starred bool
}

func init() {
	Register("AHP", func() Algorithm { return &AHP{Rho: 0.5, Eta: 0.35} })
	Register("AHP*", func() Algorithm { return &AHP{Trained: DefaultAHPProfile, starred: true} })
}

// DefaultAHPProfile is the shipped trained parameter profile for AHP*: at
// weak signal clustering matters and stage one earns more budget; at strong
// signal the histogram is nearly exact and a light stage one with aggressive
// thresholding wins. Produced by the core.Trainer on synthetic power-law and
// normal shapes.
func DefaultAHPProfile(product float64) (rho, eta float64) {
	switch {
	case product < 1e3:
		return 0.6, 0.5
	case product < 1e5:
		return 0.5, 0.35
	case product < 1e7:
		return 0.3, 0.2
	default:
		return 0.15, 0.1
	}
}

// Name implements Algorithm.
func (a *AHP) Name() string {
	if a.starred {
		return "AHP*"
	}
	return "AHP"
}

// Supports implements Algorithm.
func (a *AHP) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (a *AHP) DataDependent() bool { return true }

// Run implements Algorithm.
func (a *AHP) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(a, x, w, eps, rng)
}

// RunMeter implements Metered: stage one is one vector query at rho*eps
// (the histogram has L1 sensitivity 1), stage two measures disjoint
// clusters in a parallel scope at the remaining (1-rho)*eps.
func (a *AHP) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(a, x, w, m)
}

// ahpPlan resolves the (possibly trained) parameters once; the clustering
// itself runs on fresh noise every trial, through pooled scratch.
type ahpPlan struct {
	data       []float64
	n          int
	eps1, eps2 float64
	threshold  float64
	bufs       sync.Pool // *ahpScratch
}

// ahpScratch is one trial's stage-one state: the noisy histogram, the sort
// permutation, and the cluster boundaries over it.
type ahpScratch struct {
	noisy  []float64
	order  []int
	bounds []int
}

// Plan implements Algorithm.
func (a *AHP) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	rho, eta := a.Rho, a.Eta
	if a.Trained != nil {
		// The trained profile is a function of the signal strength
		// eps*scale only — the scale enters as declared public side
		// information, never the cell counts.
		rho, eta = a.Trained(eps * x.Scale()) //dp:public Pside declared side information (HayMMCZ16 Principle 7)
	}
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	n := x.N()
	eps1 := rho * eps
	p := &ahpPlan{
		data: x.Data, n: n, eps1: eps1, eps2: (1 - rho) * eps,
		threshold: eta * math.Log(float64(n)) / eps1,
	}
	p.bufs.New = func() any {
		return &ahpScratch{noisy: make([]float64, n), order: make([]int, n), bounds: make([]int, 0, 64)}
	}
	return p, nil
}

//dp:hotpath
func (p *ahpPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*ahpScratch)
	defer p.bufs.Put(sc)

	// Stage one: noisy counts, threshold, sort, greedy cluster.
	noisy := m.LaplaceVecInto("counts", sc.noisy, p.data, 1/p.eps1, p.eps1)
	for i, v := range noisy {
		if v < p.threshold {
			noisy[i] = 0
		}
	}
	order := sc.order
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return noisy[order[a]] < noisy[order[b]] })

	// Greedy clustering over the sorted counts: extend the current cluster
	// while the approximation error of forcing uniformity stays below the
	// marginal Laplace error of opening a new cluster (expected absolute
	// noise 1/eps2 per cluster count). Clusters are consecutive runs of the
	// sort order, so boundaries over it represent them without allocating.
	bounds := greedyClusterBounds(noisy, order, 1/p.eps2, sc.bounds[:0])
	sc.bounds = bounds

	// Stage two: fresh noisy total per cluster, uniform within. Clusters are
	// disjoint, so the per-cluster spends compose in parallel to eps2.
	for b := 0; b+1 < len(bounds); b++ {
		cl := order[bounds[b]:bounds[b+1]]
		var trueTotal float64
		for _, cell := range cl {
			trueTotal += p.data[cell]
		}
		est := trueTotal + m.LaplacePar("clusters", 1/p.eps2, p.eps2)
		if est < 0 {
			est = 0
		}
		per := est / float64(len(cl))
		for _, cell := range cl {
			out[cell] = per
		}
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (a *AHP) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "counts", Kind: noise.Sequential},
		{Label: "clusters", Kind: noise.Parallel},
	}
}

// greedyClusterBounds walks cells in sorted order of their stage-one counts
// and groups them while the within-cluster spread stays below 2*noiseUnit,
// mirroring the greedy strategy the AHP authors use in their experiments.
// Clusters are returned as boundary offsets into order (first 0, last
// len(order)), appended to bounds.
func greedyClusterBounds(sortedVals []float64, order []int, noiseUnit float64, bounds []int) []int {
	if len(order) == 0 {
		return bounds
	}
	bounds = append(bounds, 0)
	curMin, curMax := sortedVals[order[0]], sortedVals[order[0]]
	for i, cell := range order[1:] {
		v := sortedVals[cell]
		lo, hi := curMin, curMax
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if hi-lo <= 2*noiseUnit {
			curMin, curMax = lo, hi
			continue
		}
		bounds = append(bounds, i+1)
		curMin, curMax = v, v
	}
	return append(bounds, len(order))
}
