package algo

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// AHP is the adaptive histogram publication algorithm of Zhang et al.
// (ICDM 2014). Stage one spends a rho fraction of the budget on noisy cell
// counts, zeroes counts below a threshold controlled by eta, sorts the
// remainder and greedily clusters near-equal counts. Stage two measures each
// cluster total with the remaining budget (clusters are disjoint so the
// sensitivity is 1) and spreads it uniformly within the cluster.
//
// Rho and eta are the free parameters the paper flags (Table 1): "AHP" uses
// the fixed setting from the original authors, while "AHP*" uses the values
// produced by the benchmark's free-parameter trainer as a function of the
// eps*scale signal (Section 6.4).
type AHP struct {
	// Rho is the budget fraction for stage one (cluster selection).
	Rho float64
	// Eta scales the zeroing threshold eta*log(n)/(rho*eps).
	Eta float64
	// Trained, when non-nil, overrides (Rho, Eta) per eps*scale signal.
	Trained func(product float64) (rho, eta float64)

	starred bool
}

func init() {
	Register("AHP", func() Algorithm { return &AHP{Rho: 0.5, Eta: 0.35} })
	Register("AHP*", func() Algorithm { return &AHP{Trained: DefaultAHPProfile, starred: true} })
}

// DefaultAHPProfile is the shipped trained parameter profile for AHP*: at
// weak signal clustering matters and stage one earns more budget; at strong
// signal the histogram is nearly exact and a light stage one with aggressive
// thresholding wins. Produced by the core.Trainer on synthetic power-law and
// normal shapes.
func DefaultAHPProfile(product float64) (rho, eta float64) {
	switch {
	case product < 1e3:
		return 0.6, 0.5
	case product < 1e5:
		return 0.5, 0.35
	case product < 1e7:
		return 0.3, 0.2
	default:
		return 0.15, 0.1
	}
}

// Name implements Algorithm.
func (a *AHP) Name() string {
	if a.starred {
		return "AHP*"
	}
	return "AHP"
}

// Supports implements Algorithm.
func (a *AHP) Supports(k int) bool { return k >= 1 }

// DataDependent implements Algorithm.
func (a *AHP) DataDependent() bool { return true }

// Run implements Algorithm.
func (a *AHP) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return a.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: stage one is one vector query at rho*eps
// (the histogram has L1 sensitivity 1), stage two measures disjoint
// clusters in a parallel scope at the remaining (1-rho)*eps.
func (a *AHP) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	rho, eta := a.Rho, a.Eta
	if a.Trained != nil {
		rho, eta = a.Trained(eps * x.Scale())
	}
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	n := x.N()
	eps1 := rho * eps
	eps2 := (1 - rho) * eps

	// Stage one: noisy counts, threshold, sort, greedy cluster.
	noisy := m.LaplaceVec("counts", x.Data, 1/eps1, eps1)
	threshold := eta * math.Log(float64(n)) / eps1
	for i, v := range noisy {
		if v < threshold {
			noisy[i] = 0
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(p, q int) bool { return noisy[order[p]] < noisy[order[q]] })

	// Greedy clustering over the sorted counts: extend the current cluster
	// while the approximation error of forcing uniformity stays below the
	// marginal Laplace error of opening a new cluster (expected absolute
	// noise 1/eps2 per cluster count).
	clusters := greedyCluster(noisy, order, 1/eps2)

	// Stage two: fresh noisy total per cluster, uniform within. Clusters are
	// disjoint, so the per-cluster spends compose in parallel to eps2.
	out := make([]float64, n)
	for _, cl := range clusters {
		var trueTotal float64
		for _, cell := range cl {
			trueTotal += x.Data[cell]
		}
		est := trueTotal + m.LaplacePar("clusters", 1/eps2, eps2)
		if est < 0 {
			est = 0
		}
		per := est / float64(len(cl))
		for _, cell := range cl {
			out[cell] = per
		}
	}
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (a *AHP) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "counts", Kind: noise.Sequential},
		{Label: "clusters", Kind: noise.Parallel},
	}
}

// greedyCluster walks cells in sorted order of their stage-one counts and
// groups them while the within-cluster spread stays below 2*noiseUnit,
// mirroring the greedy strategy the AHP authors use in their experiments.
func greedyCluster(sortedVals []float64, order []int, noiseUnit float64) [][]int {
	var clusters [][]int
	var cur []int
	var curMin, curMax float64
	for _, cell := range order {
		v := sortedVals[cell]
		if len(cur) == 0 {
			cur = []int{cell}
			curMin, curMax = v, v
			continue
		}
		lo, hi := curMin, curMax
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if hi-lo <= 2*noiseUnit {
			cur = append(cur, cell)
			curMin, curMax = lo, hi
			continue
		}
		clusters = append(clusters, cur)
		cur = []int{cell}
		curMin, curMax = v, v
	}
	if len(cur) > 0 {
		clusters = append(clusters, cur)
	}
	return clusters
}
