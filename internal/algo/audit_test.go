package algo

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// These are the enforcement tests for the budget-ledger subsystem: every
// registered mechanism, in every supported dimensionality (and again under
// the Rside side-information repair), must spend exactly its epsilon and
// stay inside its declared composition plan — and the audit itself must not
// perturb the noise stream.

func auditVec1D(t *testing.T, seed int64, n int) *vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		if rng.Intn(3) != 0 {
			data[i] = float64(rng.Intn(500))
		}
	}
	x, err := vec.FromData(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func auditVec2D(t *testing.T, seed int64, side int) *vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, side*side)
	for i := range data {
		data[i] = float64(rng.Intn(200))
	}
	x, err := vec.FromData(data, side, side)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// runLedgerAudit runs the mechanism through RunAudited and independently
// cross-checks the ledger: spends must sum to eps within 1e-9.
func runLedgerAudit(t *testing.T, a Algorithm, x *vec.Vector, w *workload.Workload, eps float64, seed int64) {
	t.Helper()
	ma, ok := a.(Metered)
	if !ok {
		t.Fatalf("%s does not implement Metered", a.Name())
	}
	if _, ok := a.(Planner); !ok {
		t.Fatalf("%s does not declare a composition plan", a.Name())
	}
	m, err := noise.NewAuditedMeter(eps, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if _, err := ma.RunMeter(x, w, m); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	if err := m.Audit(a.(Planner).CompositionPlan()); err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	if diff := math.Abs(m.Spent() - eps); diff > 1e-9 {
		t.Fatalf("%s: ledger sums to %v, want %v (diff %v)", a.Name(), m.Spent(), eps, diff)
	}
	if len(m.Ledger()) == 0 {
		t.Fatalf("%s: audited run recorded no spends", a.Name())
	}
}

// TestLedgerAuditAllMechanisms is the registry-driven property test of the
// composition claims in Section 2.1/Table 1: every registered mechanism, on
// 1D and (when supported) 2D domains, across seeds and budgets, passes the
// exact-spend ledger audit.
func TestLedgerAuditAllMechanisms(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, eps := range []float64{0.1, 1.0} {
				for seed := int64(1); seed <= 3; seed++ {
					a, err := New(name)
					if err != nil {
						t.Fatal(err)
					}
					if a.Supports(1) {
						// 64 is the plain power-of-two case; 100 exercises
						// the non-power-of-two budget paths (DAWA's phantom
						// dyadic level, uneven trees).
						for _, n := range []int{64, 100} {
							x := auditVec1D(t, seed, n)
							runLedgerAudit(t, a, x, workload.Prefix(n), eps, seed*31+int64(n))
						}
					}
					if a.Supports(2) {
						x := auditVec2D(t, seed, 16)
						w := workload.RandomRange2D(16, 16, 40, rand.New(rand.NewSource(seed)))
						runLedgerAudit(t, a, x, w, eps, seed*17+5)
					}
				}
			}
		})
	}
}

// TestLedgerAuditSideInfoVariants re-runs the audit with every SideInfoUser
// switched to the Rside private scale estimate (Section 5.2), which adds a
// "scale" spend that must still land the ledger exactly on eps.
func TestLedgerAuditSideInfoVariants(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := a.(SideInfoUser)
		if !ok {
			continue
		}
		s.SetScaleEstimator(0.05)
		t.Run(name+"/Rside", func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				if a.Supports(1) {
					x := auditVec1D(t, seed, 64)
					runLedgerAudit(t, a, x, workload.Prefix(64), 0.5, seed*7+1)
				}
				if a.Supports(2) {
					x := auditVec2D(t, seed, 16)
					w := workload.RandomRange2D(16, 16, 40, rand.New(rand.NewSource(seed)))
					runLedgerAudit(t, a, x, w, 0.5, seed*7+2)
				}
			}
		})
	}
}

// TestAuditedRunBitIdentical pins the core guarantee that lets audit mode
// exist at all: the meter wraps the noise stream without reordering it, so
// RunAudited and plain Run produce bit-identical output for the same seed.
func TestAuditedRunBitIdentical(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			var x *vec.Vector
			var w *workload.Workload
			if a.Supports(1) {
				x = auditVec1D(t, 3, 64)
				w = workload.Prefix(64)
			} else {
				x = auditVec2D(t, 3, 16)
				w = workload.RandomRange2D(16, 16, 40, rand.New(rand.NewSource(3)))
			}
			plain, err := a.Run(x, w, 0.5, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			audited, err := RunAudited(a, x, w, 0.5, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range plain {
				if plain[i] != audited[i] {
					t.Fatalf("cell %d: plain %v != audited %v", i, plain[i], audited[i])
				}
			}
		})
	}
}

// TestLedgerAuditDegenerateDomains covers the budget-math fixes on the
// degenerate branches: single-cell domains (DAWA's forfeited stage one,
// PHP's empty split rounds), and tiny domains where SF has a single bucket.
func TestLedgerAuditDegenerateDomains(t *testing.T) {
	w1 := workload.Prefix(1)
	x1, _ := vec.FromData([]float64{250}, 1)
	for _, name := range []string{"DAWA", "PHP", "SF", "IDENTITY", "UNIFORM", "H", "HB", "GREEDY-H", "EFPA", "MWEM", "AHP", "DPCUBE"} {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name+"/n=1", func(t *testing.T) {
			runLedgerAudit(t, a, x1, w1, 1.0, 9)
		})
	}
	// n=5 keeps SF at a single bucket (k = ceil(5/10) = 1): the fixed
	// budget math hands the whole structure allocation to measurement.
	x5 := auditVec1D(t, 4, 5)
	sf, _ := New("SF")
	t.Run("SF/n=5", func(t *testing.T) {
		runLedgerAudit(t, sf, x5, workload.Prefix(5), 1.0, 11)
	})
}

// TestEFPAReconstructionIsRealValued is the satellite regression test: for
// every k — including k > n/2, where the retained block overlaps its own
// conjugate mirror — the perturbed spectrum must stay Hermitian, so the
// inverse transform is real-valued (no imaginary mass silently discarded).
func TestEFPAReconstructionIsRealValued(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(n)))
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(rng.Intn(100))
		}
		F := transform.FFTReal(data)
		scale := 1 / math.Sqrt(float64(n))
		for i := range F {
			F[i] *= complex(scale, 0)
		}
		var norm float64
		for _, v := range data {
			norm += math.Abs(v)
		}
		for k := 1; k <= n; k++ {
			m := noise.NewMeter(1.0, rand.New(rand.NewSource(int64(7*n+k))))
			kept := efpaPerturb(F, n, k, 0.5, m)
			// Hermitian symmetry of the perturbed spectrum.
			for j := 1; j < n; j++ {
				if d := cmplx.Abs(kept[j] - cmplx.Conj(kept[n-j])); d > 1e-9 {
					t.Fatalf("n=%d k=%d: kept[%d]=%v is not conj of kept[%d]=%v", n, k, j, kept[j], n-j, kept[n-j])
				}
			}
			if imag(kept[0]) != 0 {
				t.Fatalf("n=%d k=%d: DC bin has imaginary part %v", n, k, imag(kept[0]))
			}
			inv := transform.IFFT(kept)
			for i, v := range inv {
				if math.Abs(imag(v)) > 1e-9*(1+norm) {
					t.Fatalf("n=%d k=%d: inverse transform cell %d has imaginary mass %v", n, k, i, imag(v))
				}
			}
		}
	}
}

// TestAllPanicsOnRegistryCorruption covers the algo.All error-propagation
// fix indirectly: New on a valid registry never errors, and All never drops
// a registered mechanism.
func TestAllCoversEveryRegisteredName(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All(1) {
		seen[a.Name()] = true
	}
	for _, a := range All(2) {
		seen[a.Name()] = true
	}
	for _, n := range Names() {
		if !seen[n] {
			t.Fatalf("All dropped registered mechanism %q", n)
		}
	}
}
