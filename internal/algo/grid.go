package algo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// UGrid is the uniform grid method of Qardaji, Yang and Li (ICDE 2013): it
// partitions the 2D domain into an m x m equi-width grid with
// m = sqrt(N*eps/c) (c = 10), obtains a Laplace count per grid cell with the
// full budget, and assumes uniformity within grid cells. The grid size
// depends on the dataset scale N, which the original algorithm treats as
// public side information; SetScaleEstimator switches to a private estimate.
type UGrid struct {
	// C is the constant in the grid-size rule (paper: 10).
	C float64
	// ScaleRho, when positive, spends this budget fraction estimating N.
	ScaleRho float64
}

func init() { Register("UGRID", func() Algorithm { return &UGrid{C: 10} }) }

// Name implements Algorithm.
func (u *UGrid) Name() string { return "UGRID" }

// Supports implements Algorithm; UGrid is 2D only (Table 1).
func (u *UGrid) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (u *UGrid) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (u *UGrid) SetScaleEstimator(rho float64) { u.ScaleRho = rho }

// Run implements Algorithm.
func (u *UGrid) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(u, x, w, eps, rng)
}

// RunMeter implements Metered: the optional scale estimate composes
// sequentially with one parallel scope over the disjoint grid cells at the
// remaining budget.
func (u *UGrid) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(u, x, w, m)
}

// ugridPlan: with the scale public (no Rside), the grid layout and every
// cell's exact total are trial-independent, so a trial is one noise draw and
// a uniform spread per grid cell. Under Rside the grid size depends on a
// per-trial noisy scale, so Execute falls back to the full per-trial path.
type ugridPlan struct {
	data     []float64
	nx, ny   int
	eps      float64 // full budget
	epsCells float64 // budget for the cell scope
	c        float64
	scaleRho float64
	scale    float64

	// Precomputed layout (scaleRho == 0 only).
	xb, yb []int
	totals []float64 // exact per-grid-cell totals in measureGrid's cell order
}

// Plan implements Algorithm.
func (u *UGrid) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("ugrid: 2D only, got %dD", x.K())
	}
	c := u.C
	if c <= 0 {
		c = 10
	}
	ny, nx := x.Dims[0], x.Dims[1]
	p := &ugridPlan{data: x.Data, nx: nx, ny: ny, eps: eps, c: c, scaleRho: u.ScaleRho}
	// The grid layout is sized from the dataset scale as declared public
	// side information (the original UGrid treats N as known); ScaleRho > 0
	// switches to a metered per-trial estimate in Execute.
	p.scale = x.Scale() //dp:public Pside declared side information (HayMMCZ16 Principle 7)
	if u.ScaleRho > 0 {
		return p, nil // layout depends on the per-trial noisy scale
	}
	g := gridSize(p.scale, eps, c, minInt(nx, ny))
	p.epsCells = eps
	p.xb = gridBounds(nx, g)
	p.yb = gridBounds(ny, g)
	p.totals = gridTotals(x.Data, nx, 0, 0, p.xb, p.yb)
	return p, nil
}

//dp:hotpath
func (p *ugridPlan) Execute(m *noise.Meter, out []float64) error {
	if p.totals != nil {
		spreadNoisyGrid(m, "cells", p.totals, p.xb, p.yb, p.nx, p.epsCells, out)
		return m.Err()
	}
	// Rside fallback: the grid size is a function of this trial's noisy
	// scale, so the whole layout is per-trial.
	epsLeft := p.eps
	epsScale := p.eps * p.scaleRho
	scale := p.scale + m.Laplace("scale", 1/epsScale, epsScale)
	if scale < 1 {
		scale = 1
	}
	epsLeft -= epsScale
	g := gridSize(scale, epsLeft, p.c, minInt(p.nx, p.ny))
	measureGrid(m, "cells", p.data, p.nx, p.ny, 0, 0, p.nx, p.ny, g, g, epsLeft, out)
	return m.Err()
}

// gridTotals computes the exact total of every grid cell defined by the
// bounds (offset by x0/y0 on the nx-wide grid), iterating cells and summing
// in exactly measureGrid's order so the values match it bit for bit.
func gridTotals(data []float64, nx, x0, y0 int, xb, yb []int) []float64 {
	totals := make([]float64, 0, (len(yb)-1)*(len(xb)-1))
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := x0+xb[xi], x0+xb[xi+1]
			gy0, gy1 := y0+yb[yi], y0+yb[yi+1]
			var total float64
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					total += data[y*nx+x]
				}
			}
			totals = append(totals, total)
		}
	}
	return totals
}

// spreadNoisyGrid draws one Laplace count per precomputed grid-cell total (in
// the same order measureGrid draws) and spreads each clamped estimate
// uniformly over its cells of out.
func spreadNoisyGrid(m *noise.Meter, label string, totals []float64, xb, yb []int, nx int, eps float64, out []float64) {
	idx := 0
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := xb[xi], xb[xi+1]
			gy0, gy1 := yb[yi], yb[yi+1]
			est := totals[idx] + m.LaplacePar(label, 1/eps, eps)
			idx++
			if est < 0 {
				est = 0
			}
			per := est / float64((gx1-gx0)*(gy1-gy0))
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					out[y*nx+x] = per
				}
			}
		}
	}
}

// CompositionPlan implements Planner.
func (u *UGrid) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "cells", Kind: noise.Parallel},
	}
}

// AGrid is the adaptive grid of the same paper: a coarse first-level grid
// (m1 x m1 with m1 = max(10, sqrt(N*eps/c)/2)), then within each coarse cell
// a second-level grid sized from the cell's noisy count
// (m2 = sqrt(n'*eps2/c2), c2 = 5), with the budget split by Rho. Level-two
// counts are reconciled with the level-one count of their parent cell by
// scaling, a lightweight form of the paper's consistency step.
type AGrid struct {
	// C and C2 are the grid-size constants (paper: 10 and 5).
	C, C2 float64
	// Rho is the budget fraction for the first level (paper: 0.5).
	Rho float64
	// ScaleRho, when positive, spends this budget fraction estimating N.
	ScaleRho float64
}

func init() { Register("AGRID", func() Algorithm { return &AGrid{C: 10, C2: 5, Rho: 0.5} }) }

// Name implements Algorithm.
func (a *AGrid) Name() string { return "AGRID" }

// Supports implements Algorithm.
func (a *AGrid) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (a *AGrid) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (a *AGrid) SetScaleEstimator(rho float64) { a.ScaleRho = rho }

// Run implements Algorithm.
func (a *AGrid) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(a, x, w, eps, rng)
}

// RunMeter implements Metered: the optional scale estimate composes
// sequentially; the coarse cells are disjoint (one "level1" scope at
// rho*epsLeft) and all second-level sub-cells across all coarse cells are
// likewise disjoint (one "level2" scope at the rest).
func (a *AGrid) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(a, x, w, m)
}

// agridPlan caches the coarse layout and its exact cell totals (with public
// scale); the second-level grids are sized from each trial's noisy level-one
// counts, so that stage is inherently per-trial and only its buffers are
// recycled. Under Rside even the coarse layout is per-trial.
type agridPlan struct {
	data          []float64
	nx, ny        int
	eps           float64
	c, c2         float64
	rho, scaleRho float64
	scale         float64

	// Precomputed coarse layout (scaleRho == 0 only).
	eps1, eps2 float64
	xb, yb     []int
	totals     []float64
	bufs       sync.Pool // *agridScratch per-trial working buffers
}

// agridScratch recycles one trial's working buffers: the second-level
// region counts and, under Rside, the per-trial coarse grid boundaries.
type agridScratch struct {
	sub    []float64
	xb, yb []int
}

// Plan implements Algorithm.
func (a *AGrid) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("agrid: 2D only, got %dD", x.K())
	}
	c, c2 := a.C, a.C2
	if c <= 0 {
		c = 10
	}
	if c2 <= 0 {
		c2 = 5
	}
	rho := a.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	ny, nx := x.Dims[0], x.Dims[1]
	p := &agridPlan{
		data: x.Data, nx: nx, ny: ny, eps: eps,
		c: c, c2: c2, rho: rho, scaleRho: a.ScaleRho,
	}
	// The coarse grid is sized from the dataset scale as declared public
	// side information (AGrid's m1 formula); ScaleRho > 0 switches to a
	// metered per-trial estimate in Execute.
	p.scale = x.Scale() //dp:public Pside declared side information (HayMMCZ16 Principle 7)
	if a.ScaleRho > 0 {
		// Rside: the layout is re-derived per trial, so the scratch must
		// cover the worst case — one coarse cell spanning the whole domain
		// and boundary slices at the maximum grid side.
		p.bufs.New = func() any {
			side := minInt(nx, ny) + 1
			return &agridScratch{
				sub: make([]float64, nx*ny),
				xb:  make([]int, side),
				yb:  make([]int, side),
			}
		}
		return p, nil
	}
	p.eps1 = rho * eps
	p.eps2 = (1 - rho) * eps
	m1 := int(math.Max(10, math.Sqrt(p.scale*eps/c)/2))
	m1 = clampInt(m1, 1, minInt(nx, ny))
	p.xb = gridBounds(nx, m1)
	p.yb = gridBounds(ny, m1)
	p.totals = gridTotals(x.Data, nx, 0, 0, p.xb, p.yb)
	maxArea := 0
	for yi := 0; yi+1 < len(p.yb); yi++ {
		for xi := 0; xi+1 < len(p.xb); xi++ {
			if area := (p.xb[xi+1] - p.xb[xi]) * (p.yb[yi+1] - p.yb[yi]); area > maxArea {
				maxArea = area
			}
		}
	}
	p.bufs.New = func() any { return &agridScratch{sub: make([]float64, maxArea)} }
	return p, nil
}

//dp:hotpath
func (p *agridPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*agridScratch)
	defer p.bufs.Put(sc)
	epsLeft, scale := p.eps, p.scale
	eps1, eps2 := p.eps1, p.eps2
	xb, yb, totals := p.xb, p.yb, p.totals
	if p.scaleRho > 0 {
		// Rside fallback: the coarse layout follows this trial's noisy scale.
		epsScale := p.eps * p.scaleRho
		scale += m.Laplace("scale", 1/epsScale, epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
		eps1 = p.rho * epsLeft
		eps2 = (1 - p.rho) * epsLeft
		m1 := int(math.Max(10, math.Sqrt(scale*epsLeft/p.c)/2))
		m1 = clampInt(m1, 1, minInt(p.nx, p.ny))
		xb = gridBoundsInto(sc.xb, p.nx, m1)
		yb = gridBoundsInto(sc.yb, p.ny, m1)
		totals = nil
	}
	sub := sc.sub
	idx := 0
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			x0, x1 := xb[xi], xb[xi+1]
			y0, y1 := yb[yi], yb[yi+1]
			var trueTotal float64
			if totals != nil {
				trueTotal = totals[idx]
				idx++
			} else {
				for y := y0; y < y1; y++ {
					for xc := x0; xc < x1; xc++ {
						trueTotal += p.data[y*p.nx+xc]
					}
				}
			}
			level1 := trueTotal + m.LaplacePar("level1", 1/eps1, eps1)
			if level1 < 0 {
				level1 = 0
			}
			// Second-level grid sized from the noisy count.
			m2 := int(math.Sqrt(level1 * eps2 / p.c2))
			m2 = clampInt(m2, 1, minInt(x1-x0, y1-y0))
			area := (x1 - x0) * (y1 - y0)
			region := sub[:area]
			measureRegion(m, "level2", p.data, p.nx, x0, y0, x1, y1, m2, m2, eps2, region)
			// Consistency: rescale the level-2 cells to match level 1.
			var subTotal float64
			for _, v := range region {
				subTotal += v
			}
			if subTotal > 0 && level1 > 0 {
				adj := level1 / subTotal
				for i := range region {
					region[i] *= adj
				}
			} else if subTotal == 0 && level1 > 0 {
				per := level1 / float64(len(region))
				for i := range region {
					region[i] = per
				}
			}
			for y := y0; y < y1; y++ {
				copy(out[y*p.nx+x0:y*p.nx+x1], region[(y-y0)*(x1-x0):(y-y0+1)*(x1-x0)])
			}
		}
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (a *AGrid) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "level1", Kind: noise.Parallel},
		{Label: "level2", Kind: noise.Parallel},
	}
}

// gridSize computes the UGrid rule m = sqrt(N*eps/c) clamped to [1, side].
func gridSize(scale, eps, c float64, side int) int {
	m := int(math.Sqrt(scale * eps / c))
	return clampInt(m, 1, side)
}

// gridBounds splits [0, n) into m nearly equal segments, returning the m+1
// boundaries.
func gridBounds(n, m int) []int {
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	return gridBoundsInto(make([]int, m+1), n, m)
}

// gridBoundsInto is gridBounds writing into dst's backing array, whose
// capacity must be at least m+1: the Rside hot path re-derives the coarse
// layout per trial and must not allocate.
func gridBoundsInto(dst []int, n, m int) []int {
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	dst = dst[:m+1]
	for i := 0; i <= m; i++ {
		dst[i] = n * i / m
	}
	return dst
}

// measureGrid measures an mx x my equi-width grid over the whole region with
// Laplace noise and spreads each count uniformly into out (row-major nx
// grid). Grid cells are disjoint, so the per-cell spends form one parallel
// scope under label.
func measureGrid(m *noise.Meter, label string, data []float64, nx, ny, x0, y0, x1, y1, mx, my int, eps float64, out []float64) {
	xb := gridBounds(x1-x0, mx)
	yb := gridBounds(y1-y0, my)
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := x0+xb[xi], x0+xb[xi+1]
			gy0, gy1 := y0+yb[yi], y0+yb[yi+1]
			var total float64
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					total += data[y*nx+x]
				}
			}
			est := total + m.LaplacePar(label, 1/eps, eps)
			if est < 0 {
				est = 0
			}
			per := est / float64((gx1-gx0)*(gy1-gy0))
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					out[y*nx+x] = per
				}
			}
		}
	}
}

// measureRegion is measureGrid writing into a region-local buffer sub of
// width x1-x0.
func measureRegion(m *noise.Meter, label string, data []float64, nx, x0, y0, x1, y1, mx, my int, eps float64, sub []float64) {
	w := x1 - x0
	xb := gridBounds(w, mx)
	yb := gridBounds(y1-y0, my)
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := xb[xi], xb[xi+1]
			gy0, gy1 := yb[yi], yb[yi+1]
			var total float64
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					total += data[(y0+y)*nx+x0+x]
				}
			}
			est := total + m.LaplacePar(label, 1/eps, eps)
			if est < 0 {
				est = 0
			}
			per := est / float64((gx1-gx0)*(gy1-gy0))
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					sub[y*w+x] = per
				}
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
