package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// UGrid is the uniform grid method of Qardaji, Yang and Li (ICDE 2013): it
// partitions the 2D domain into an m x m equi-width grid with
// m = sqrt(N*eps/c) (c = 10), obtains a Laplace count per grid cell with the
// full budget, and assumes uniformity within grid cells. The grid size
// depends on the dataset scale N, which the original algorithm treats as
// public side information; SetScaleEstimator switches to a private estimate.
type UGrid struct {
	// C is the constant in the grid-size rule (paper: 10).
	C float64
	// ScaleRho, when positive, spends this budget fraction estimating N.
	ScaleRho float64
}

func init() { Register("UGRID", func() Algorithm { return &UGrid{C: 10} }) }

// Name implements Algorithm.
func (u *UGrid) Name() string { return "UGRID" }

// Supports implements Algorithm; UGrid is 2D only (Table 1).
func (u *UGrid) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (u *UGrid) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (u *UGrid) SetScaleEstimator(rho float64) { u.ScaleRho = rho }

// Run implements Algorithm.
func (u *UGrid) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return u.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: the optional scale estimate composes
// sequentially with one parallel scope over the disjoint grid cells at the
// remaining budget.
func (u *UGrid) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("ugrid: 2D only, got %dD", x.K())
	}
	c := u.C
	if c <= 0 {
		c = 10
	}
	epsLeft := eps
	scale := x.Scale()
	if u.ScaleRho > 0 {
		epsScale := eps * u.ScaleRho
		scale += m.Laplace("scale", 1/epsScale, epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
	}
	ny, nx := x.Dims[0], x.Dims[1]
	g := gridSize(scale, epsLeft, c, minInt(nx, ny))
	out := make([]float64, x.N())
	measureGrid(m, "cells", x.Data, nx, ny, 0, 0, nx, ny, g, g, epsLeft, out)
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (u *UGrid) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "cells", Kind: noise.Parallel},
	}
}

// AGrid is the adaptive grid of the same paper: a coarse first-level grid
// (m1 x m1 with m1 = max(10, sqrt(N*eps/c)/2)), then within each coarse cell
// a second-level grid sized from the cell's noisy count
// (m2 = sqrt(n'*eps2/c2), c2 = 5), with the budget split by Rho. Level-two
// counts are reconciled with the level-one count of their parent cell by
// scaling, a lightweight form of the paper's consistency step.
type AGrid struct {
	// C and C2 are the grid-size constants (paper: 10 and 5).
	C, C2 float64
	// Rho is the budget fraction for the first level (paper: 0.5).
	Rho float64
	// ScaleRho, when positive, spends this budget fraction estimating N.
	ScaleRho float64
}

func init() { Register("AGRID", func() Algorithm { return &AGrid{C: 10, C2: 5, Rho: 0.5} }) }

// Name implements Algorithm.
func (a *AGrid) Name() string { return "AGRID" }

// Supports implements Algorithm.
func (a *AGrid) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (a *AGrid) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (a *AGrid) SetScaleEstimator(rho float64) { a.ScaleRho = rho }

// Run implements Algorithm.
func (a *AGrid) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return a.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: the optional scale estimate composes
// sequentially; the coarse cells are disjoint (one "level1" scope at
// rho*epsLeft) and all second-level sub-cells across all coarse cells are
// likewise disjoint (one "level2" scope at the rest).
func (a *AGrid) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("agrid: 2D only, got %dD", x.K())
	}
	c, c2 := a.C, a.C2
	if c <= 0 {
		c = 10
	}
	if c2 <= 0 {
		c2 = 5
	}
	rho := a.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	epsLeft := eps
	scale := x.Scale()
	if a.ScaleRho > 0 {
		epsScale := eps * a.ScaleRho
		scale += m.Laplace("scale", 1/epsScale, epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
	}
	eps1 := rho * epsLeft
	eps2 := (1 - rho) * epsLeft
	ny, nx := x.Dims[0], x.Dims[1]

	m1 := int(math.Max(10, math.Sqrt(scale*epsLeft/c)/2))
	m1 = clampInt(m1, 1, minInt(nx, ny))

	out := make([]float64, x.N())
	xBounds := gridBounds(nx, m1)
	yBounds := gridBounds(ny, m1)
	for yi := 0; yi+1 < len(yBounds); yi++ {
		for xi := 0; xi+1 < len(xBounds); xi++ {
			x0, x1 := xBounds[xi], xBounds[xi+1]
			y0, y1 := yBounds[yi], yBounds[yi+1]
			var trueTotal float64
			for y := y0; y < y1; y++ {
				for xc := x0; xc < x1; xc++ {
					trueTotal += x.Data[y*nx+xc]
				}
			}
			level1 := trueTotal + m.LaplacePar("level1", 1/eps1, eps1)
			if level1 < 0 {
				level1 = 0
			}
			// Second-level grid sized from the noisy count.
			m2 := int(math.Sqrt(level1 * eps2 / c2))
			m2 = clampInt(m2, 1, minInt(x1-x0, y1-y0))
			sub := make([]float64, (x1-x0)*(y1-y0))
			measureRegion(m, "level2", x.Data, nx, x0, y0, x1, y1, m2, m2, eps2, sub)
			// Consistency: rescale the level-2 cells to match level 1.
			var subTotal float64
			for _, v := range sub {
				subTotal += v
			}
			if subTotal > 0 && level1 > 0 {
				adj := level1 / subTotal
				for i := range sub {
					sub[i] *= adj
				}
			} else if subTotal == 0 && level1 > 0 {
				per := level1 / float64(len(sub))
				for i := range sub {
					sub[i] = per
				}
			}
			for y := y0; y < y1; y++ {
				copy(out[y*nx+x0:y*nx+x1], sub[(y-y0)*(x1-x0):(y-y0+1)*(x1-x0)])
			}
		}
	}
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (a *AGrid) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "level1", Kind: noise.Parallel},
		{Label: "level2", Kind: noise.Parallel},
	}
}

// gridSize computes the UGrid rule m = sqrt(N*eps/c) clamped to [1, side].
func gridSize(scale, eps, c float64, side int) int {
	m := int(math.Sqrt(scale * eps / c))
	return clampInt(m, 1, side)
}

// gridBounds splits [0, n) into m nearly equal segments, returning the m+1
// boundaries.
func gridBounds(n, m int) []int {
	if m > n {
		m = n
	}
	if m < 1 {
		m = 1
	}
	out := make([]int, m+1)
	for i := 0; i <= m; i++ {
		out[i] = n * i / m
	}
	return out
}

// measureGrid measures an mx x my equi-width grid over the whole region with
// Laplace noise and spreads each count uniformly into out (row-major nx
// grid). Grid cells are disjoint, so the per-cell spends form one parallel
// scope under label.
func measureGrid(m *noise.Meter, label string, data []float64, nx, ny, x0, y0, x1, y1, mx, my int, eps float64, out []float64) {
	xb := gridBounds(x1-x0, mx)
	yb := gridBounds(y1-y0, my)
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := x0+xb[xi], x0+xb[xi+1]
			gy0, gy1 := y0+yb[yi], y0+yb[yi+1]
			var total float64
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					total += data[y*nx+x]
				}
			}
			est := total + m.LaplacePar(label, 1/eps, eps)
			if est < 0 {
				est = 0
			}
			per := est / float64((gx1-gx0)*(gy1-gy0))
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					out[y*nx+x] = per
				}
			}
		}
	}
}

// measureRegion is measureGrid writing into a region-local buffer sub of
// width x1-x0.
func measureRegion(m *noise.Meter, label string, data []float64, nx, x0, y0, x1, y1, mx, my int, eps float64, sub []float64) {
	w := x1 - x0
	xb := gridBounds(w, mx)
	yb := gridBounds(y1-y0, my)
	for yi := 0; yi+1 < len(yb); yi++ {
		for xi := 0; xi+1 < len(xb); xi++ {
			gx0, gx1 := xb[xi], xb[xi+1]
			gy0, gy1 := yb[yi], yb[yi+1]
			var total float64
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					total += data[(y0+y)*nx+x0+x]
				}
			}
			est := total + m.LaplacePar(label, 1/eps, eps)
			if est < 0 {
				est = 0
			}
			per := est / float64((gx1-gx0)*(gy1-gy0))
			for y := gy0; y < gy1; y++ {
				for x := gx0; x < gx1; x++ {
					sub[y*w+x] = per
				}
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
