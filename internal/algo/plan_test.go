package algo

import (
	"math/rand"
	"sync"
	"testing"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// These are the enforcement tests for the Plan/Execute split: for EVERY
// registered mechanism, a plan built once and executed many times must
// reproduce Run bit for bit — same noise-draw order, same arithmetic — on
// power-of-two and non-power-of-two domains, in 1D and 2D, audited and not,
// and with the Rside side-information repair applied. Bit-identity is what
// lets the experiment runner amortize structure building across trials
// without changing a single published number.

func planVec1D(t *testing.T, seed int64, n int) *vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		if rng.Intn(3) != 0 {
			data[i] = float64(rng.Intn(400))
		}
	}
	x, err := vec.FromData(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func planVec2D(t *testing.T, seed int64, side int) *vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, side*side)
	for i := range data {
		data[i] = float64(rng.Intn(150))
	}
	x, err := vec.FromData(data, side, side)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// assertPlanMatchesRun builds ONE plan and executes it for several seeds,
// comparing each trial bitwise against a fresh Run with the same seed —
// proving both the equivalence of the two entry points and that per-trial
// state never leaks between executions of a reused plan.
func assertPlanMatchesRun(t *testing.T, a Algorithm, x *vec.Vector, w *workload.Workload, eps float64, audit bool) {
	t.Helper()
	p, err := a.Plan(x, w, eps)
	if err != nil {
		t.Fatalf("%s: Plan: %v", a.Name(), err)
	}
	out := make([]float64, x.N())
	for seed := int64(1); seed <= 3; seed++ {
		want, err := a.Run(x, w, eps, rand.New(rand.NewSource(seed*977+11)))
		if err != nil {
			t.Fatalf("%s: Run: %v", a.Name(), err)
		}
		rng := rand.New(rand.NewSource(seed*977 + 11))
		if audit {
			err = ExecuteAudited(a, p, eps, rng, out)
		} else {
			err = p.Execute(noise.NewMeter(eps, rng), out)
		}
		if err != nil {
			t.Fatalf("%s: Execute (audit=%v): %v", a.Name(), audit, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("%s (audit=%v, seed %d) cell %d: Execute %v != Run %v (must be bit-identical)",
					a.Name(), audit, seed, i, out[i], want[i])
			}
		}
	}
}

// TestPlanExecuteMatchesRunAllMechanisms is the registry-wide equivalence
// property: Plan(...).Execute(...) == Run(...) bitwise for every mechanism,
// 1D and 2D, power-of-two and not, audit on and off.
func TestPlanExecuteMatchesRunAllMechanisms(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, audit := range []bool{false, true} {
				for seed := int64(1); seed <= 2; seed++ {
					a, err := New(name)
					if err != nil {
						t.Fatal(err)
					}
					if a.Supports(1) {
						// 64 is the plain power-of-two case; 37 exercises the
						// non-power-of-two paths (padding, phantom dyadic
						// levels, uneven trees).
						for _, n := range []int{64, 37} {
							x := planVec1D(t, seed, n)
							assertPlanMatchesRun(t, a, x, workload.Prefix(n), 0.5, audit)
						}
					}
					if a.Supports(2) {
						x := planVec2D(t, seed, 16)
						w := workload.RandomRange2D(16, 16, 40, rand.New(rand.NewSource(seed)))
						assertPlanMatchesRun(t, a, x, w, 0.5, audit)
					}
				}
			}
		})
	}
}

// TestPlanExecuteMatchesRunRsideVariants repeats the equivalence with every
// SideInfoUser switched to the Rside private scale estimate, which moves the
// scale draw (and any layout derived from it) inside Execute.
func TestPlanExecuteMatchesRunRsideVariants(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := a.(SideInfoUser)
		if !ok {
			continue
		}
		s.SetScaleEstimator(0.05)
		t.Run(name+"/Rside", func(t *testing.T) {
			if a.Supports(1) {
				x := planVec1D(t, 5, 64)
				assertPlanMatchesRun(t, a, x, workload.Prefix(64), 0.5, false)
				assertPlanMatchesRun(t, a, x, workload.Prefix(64), 0.5, true)
			}
			if a.Supports(2) {
				x := planVec2D(t, 5, 16)
				w := workload.RandomRange2D(16, 16, 40, rand.New(rand.NewSource(5)))
				assertPlanMatchesRun(t, a, x, w, 0.5, false)
			}
		})
	}
}

// TestPlanExecuteDegenerateDomains covers the single-cell and tiny domains
// whose budget-math special cases (forfeits, single buckets) must survive
// the plan split.
func TestPlanExecuteDegenerateDomains(t *testing.T) {
	x1, _ := vec.FromData([]float64{250}, 1)
	w1 := workload.Prefix(1)
	x5 := planVec1D(t, 4, 5)
	w5 := workload.Prefix(5)
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Supports(1) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			assertPlanMatchesRun(t, a, x1, w1, 1.0, true)
			assertPlanMatchesRun(t, a, x5, w5, 1.0, true)
		})
	}
}

// TestSharedPlanConcurrentExecute shares one data-independent plan across 8
// goroutines executing simultaneously (run under -race in CI): per-trial
// state must live entirely in pooled scratch, and each goroutine's output
// must still match a serial Run with its seed.
func TestSharedPlanConcurrentExecute(t *testing.T) {
	for _, name := range []string{"H", "HB", "PRIVELET", "GREEDY-H", "EFPA", "IDENTITY", "DAWA", "MWEM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			n := 128
			x := planVec1D(t, 9, n)
			w := workload.Prefix(n)
			p, err := a.Plan(x, w, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			outs := make([][]float64, goroutines)
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					out := make([]float64, n)
					for rep := 0; rep < 4; rep++ {
						rng := rand.New(rand.NewSource(int64(g)*71 + 3))
						if err := p.Execute(noise.NewMeter(0.5, rng), out); err != nil {
							errs[g] = err
							return
						}
					}
					outs[g] = out
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				want, err := a.Run(x, w, 0.5, rand.New(rand.NewSource(int64(g)*71+3)))
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if outs[g][i] != want[i] {
						t.Fatalf("goroutine %d cell %d: %v != %v", g, i, outs[g][i], want[i])
					}
				}
			}
		})
	}
}
