package algo

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// PHP is the private histogram-publication algorithm of Acs, Castelluccia
// and Chen (ICDM 2012). It builds a partition by recursively bisecting
// intervals: each bisection point is chosen by the exponential mechanism
// with a score equal to the reduction in expected absolute error, and the
// recursion depth is capped at log2(n) rounds (which is what makes PHP
// inconsistent — Theorem 6 of the benchmark paper). Bucket counts are then
// measured with the remaining budget and spread uniformly.
type PHP struct {
	// Rho is the budget fraction for partition selection (paper: 0.5).
	Rho float64
}

func init() { Register("PHP", func() Algorithm { return &PHP{Rho: 0.5} }) }

// Name implements Algorithm.
func (p *PHP) Name() string { return "PHP" }

// Supports implements Algorithm; PHP is 1D only (Table 1).
func (p *PHP) Supports(k int) bool { return k == 1 }

// DataDependent implements Algorithm.
func (p *PHP) DataDependent() bool { return true }

// Run implements Algorithm.
func (p *PHP) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(p, x, w, eps, rng)
}

// RunMeter implements Metered. Each bisection round touches disjoint
// intervals, so its selections form one parallel scope of eps1/maxIter;
// the final bucket counts are likewise disjoint and share eps2.
func (p *PHP) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(p, x, w, m)
}

// phpInterval is one partition interval [lo, hi).
type phpInterval struct{ lo, hi int }

// phpScratch recycles one trial's interval worklists, split scores and
// exponential-mechanism weights.
type phpScratch struct {
	parts, next    []phpInterval
	scores, expBuf []float64
}

// phpPlan hoists the prefix sums (the only data summary the bisection
// scores need); the partition itself is re-selected from fresh noise every
// trial.
type phpPlan struct {
	prefix     []float64
	n          int
	eps1, eps2 float64
	maxIter    int
	epsPerIter float64
	// recip[k] = 1/k: the fast-sampler score loop trades its two divisions
	// per candidate for table multiplies. The products round differently
	// than the divisions, so the legacy path keeps dividing and stays
	// bit-identical; fast mode owns its stream (and goldens) anyway.
	recip []float64
	bufs  *sync.Pool // *phpScratch, shared across plans (see phpScratchPool)
}

// recipCache memoizes the 1/k table per n — a pure function of n, read-only
// once built, shared by every PHP plan of the same domain size.
var recipCache sync.Map // int -> []float64

func recipTable(n int) []float64 {
	if v, ok := recipCache.Load(n); ok {
		return v.([]float64)
	}
	r := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		r[k] = 1 / float64(k)
	}
	v, _ := recipCache.LoadOrStore(n, r)
	return v.([]float64)
}

// phpScratchPools shares trial scratch across plans per domain size, so the
// repeated Plan/Execute cycles of a benchmark cell recycle the score and
// weight buffers instead of re-allocating them each Run.
var phpScratchPools sync.Map // int -> *sync.Pool

func phpScratchPool(n int) *sync.Pool {
	if v, ok := phpScratchPools.Load(n); ok {
		return v.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		return &phpScratch{scores: make([]float64, n), expBuf: make([]float64, n)}
	}}
	v, _ := phpScratchPools.LoadOrStore(n, p)
	return v.(*sync.Pool)
}

// Plan implements Algorithm.
func (p *PHP) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 1 {
		return nil, fmt.Errorf("php: 1D only, got %dD", x.K())
	}
	rho := p.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	n := x.N()
	eps1 := rho * eps
	maxIter := log2Ceil(n)
	if maxIter < 1 {
		maxIter = 1
	}
	pl := &phpPlan{
		prefix: prefixSums(x.Data), n: n,
		eps1: eps1, eps2: (1 - rho) * eps,
		maxIter: maxIter, epsPerIter: eps1 / float64(maxIter),
		recip: recipTable(n),
		bufs:  phpScratchPool(n),
	}
	return pl, nil
}

//dp:hotpath
func (p *phpPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*phpScratch)
	defer p.bufs.Put(sc)
	sum := func(lo, hi int) float64 { return p.prefix[hi] - p.prefix[lo] } // [lo,hi)

	// Each iteration bisects every interval still worth splitting. The
	// score of split point m for interval [lo,hi) is the drop in uniformity
	// cost: cost(lo,hi) - cost(lo,m) - cost(m,hi), where the cost proxy is
	// |total - width*avg_outside|; following Acs et al. we use the absolute
	// difference between the two halves' totals normalized by width, whose
	// per-record sensitivity is at most 1.
	parts := append(sc.parts[:0], phpInterval{0, p.n})
	next := sc.next[:0]
	fast := m.Sampler() == noise.SamplerFast
	for iter := 0; iter < p.maxIter; iter++ {
		next = next[:0]
		label := idxLabel(splitLabels, iter)
		split := false
		for _, iv := range parts {
			if iv.hi-iv.lo <= 1 {
				next = append(next, iv)
				continue
			}
			var scores []float64
			if fast {
				// Single pass over the interval's prefix entries: endpoints
				// hoisted, one prefix load per candidate, branchless-ish
				// abs/min inline, indexed stores into the right-sized slice.
				w := iv.hi - iv.lo
				scores = sc.scores[:w-1]
				pl, pr := p.prefix[iv.lo], p.prefix[iv.hi]
				rec := p.recip
				for j, pm := range p.prefix[iv.lo+1 : iv.hi] {
					k := j + 1 // split point iv.lo + k
					// math.Abs compiles to a branchless intrinsic, keeping the
					// scoring loop free of data-dependent control flow.
					d := math.Abs((pm-pl)*rec[k] - (pr-pm)*rec[w-k])
					mw := float64(k)
					if w-k < k {
						mw = float64(w - k)
					}
					scores[j] = d * mw
				}
			} else {
				scores = sc.scores[:0]
				for mid := iv.lo + 1; mid < iv.hi; mid++ {
					left := sum(iv.lo, mid)
					right := sum(mid, iv.hi)
					wl, wr := float64(mid-iv.lo), float64(iv.hi-mid)
					// Balance of per-cell averages; rewards splits that separate
					// regions of different density. math.Abs is a branchless
					// intrinsic and bit-identical to the old helper here (the
					// only divergence, -0 vs +0, is erased by exp in the
					// mechanism), so the legacy stream is unchanged.
					scores = append(scores, math.Abs(left/wl-right/wr)*minf(wl, wr))
				}
			}
			pick := m.ExpMechBufPar(label, scores, 1, p.epsPerIter, sc.expBuf[:len(scores)])
			split = true
			mid := iv.lo + 1 + pick
			next = append(next, phpInterval{iv.lo, mid}, phpInterval{mid, iv.hi})
		}
		if !split {
			// Every interval was already a singleton (only possible on a
			// fully refined partition): the round's allocation buys nothing,
			// so charge it explicitly to keep the ledger at eps.
			m.ChargePar(label, p.epsPerIter)
		}
		parts, next = next, parts
	}
	sc.parts, sc.next = parts, next

	if fast {
		// Batch the bucket measurements into one vector draw: same parallel
		// "counts" charge, one sampler call instead of one per interval.
		cnt := sc.expBuf[:len(parts)]
		for i, iv := range parts {
			cnt[i] = sum(iv.lo, iv.hi)
		}
		m.LaplaceVecParInto("counts", cnt, cnt, 1/p.eps2, p.eps2)
		for i, iv := range parts {
			est := cnt[i]
			if est < 0 {
				est = 0
			}
			uniformSpread(out, iv.lo, iv.hi, est)
		}
	} else {
		for _, iv := range parts {
			est := sum(iv.lo, iv.hi) + m.LaplacePar("counts", 1/p.eps2, p.eps2)
			if est < 0 {
				est = 0
			}
			uniformSpread(out, iv.lo, iv.hi, est)
		}
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (p *PHP) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "split*", Kind: noise.Parallel},
		{Label: "counts", Kind: noise.Parallel},
	}
}

func log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
