package algo

import (
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// DPCube is the multidimensional partitioning algorithm of Xiao et al.
// (Transactions on Data Privacy 2014). It first obtains noisy counts for
// every cell with a rho fraction of the budget, builds a kd-tree over the
// noisy counts (splitting along the wider dimension at the noisy-mass
// median until partitions are nearly uniform or smaller than MinCells),
// obtains fresh noisy counts for the partitions with the remaining budget,
// and combines the two estimates per cell by precision weighting.
type DPCube struct {
	// Rho is the budget fraction for the initial cell counts (paper: 0.5).
	Rho float64
	// MinCells stops kd-tree splits below this partition size (paper's
	// n_p = 10).
	MinCells int
}

func init() { Register("DPCUBE", func() Algorithm { return &DPCube{Rho: 0.5, MinCells: 10} }) }

// Name implements Algorithm.
func (d *DPCube) Name() string { return "DPCUBE" }

// Supports implements Algorithm.
func (d *DPCube) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (d *DPCube) DataDependent() bool { return true }

// Run implements Algorithm.
func (d *DPCube) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(d, x, w, eps, rng)
}

// RunMeter implements Metered: the initial per-cell histogram is one vector
// query at rho*eps; the kd-tree is post-processing; the fresh partition
// counts are disjoint and compose in parallel to the remaining (1-rho)*eps.
func (d *DPCube) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(d, x, w, m)
}

// dpcubePlan resolves the parameters once; the kd-tree is re-derived from
// each trial's fresh noisy histogram (that is the mechanism), with the
// histogram and partition buffers recycled across trials.
type dpcubePlan struct {
	data       []float64
	dims       []int
	n          int
	minCells   int
	eps1, eps2 float64
	bufs       sync.Pool // *dpcubeScratch
}

// dpcubeScratch is one trial's noisy histogram plus, in 1D, the partition
// boundaries (1D kd partitions are contiguous intervals, so boundaries
// replace the per-partition cell lists without changing content or order).
type dpcubeScratch struct {
	noisy  []float64
	bounds []int
}

// Plan implements Algorithm.
func (d *DPCube) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	rho := d.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	minCells := d.MinCells
	if minCells < 1 {
		minCells = 10
	}
	p := &dpcubePlan{
		data: x.Data, dims: x.Dims, n: x.N(), minCells: minCells,
		eps1: rho * eps, eps2: (1 - rho) * eps,
	}
	p.bufs.New = func() any {
		return &dpcubeScratch{noisy: make([]float64, p.n), bounds: make([]int, 0, 64)}
	}
	return p, nil
}

//dp:hotpath
func (p *dpcubePlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*dpcubeScratch)
	defer p.bufs.Put(sc)
	noisy := m.LaplaceVecInto("counts", sc.noisy, p.data, 1/p.eps1, p.eps1)
	cellVar := 2 / (p.eps1 * p.eps1)

	// kd-tree over the noisy counts (pure post-processing of DP output),
	// then fresh counts for the partitions and a precision-weighted merge
	// with the per-cell noisy estimates. Partition estimates spread
	// uniformly carry variance 2/(eps2^2 * |p|^2) per cell (ignoring
	// uniformity bias); per-cell estimates carry 2/eps1^2.
	if len(p.dims) == 1 {
		bounds := append(sc.bounds[:0], 0)
		bounds = kdSplit1DBounds(noisy, 0, p.n, p.minCells, 1/p.eps1, bounds)
		sc.bounds = bounds
		for b := 0; b+1 < len(bounds); b++ {
			lo, hi := bounds[b], bounds[b+1]
			var trueTotal float64
			for cell := lo; cell < hi; cell++ {
				trueTotal += p.data[cell]
			}
			est := trueTotal + m.LaplacePar("parts", 1/p.eps2, p.eps2)
			size := float64(hi - lo)
			partPerCell := est / size
			partVar := 2 / (p.eps2 * p.eps2 * size * size)
			wPart := cellVar / (cellVar + partVar)
			for cell := lo; cell < hi; cell++ {
				out[cell] = wPart*partPerCell + (1-wPart)*noisy[cell]
			}
		}
		return m.Err()
	}

	parts := kdSplit2D(noisy, p.dims[1], kdRect{0, 0, p.dims[1], p.dims[0]}, p.minCells, 1/p.eps1)
	for _, part := range parts {
		var trueTotal float64
		for _, cell := range part {
			trueTotal += p.data[cell]
		}
		est := trueTotal + m.LaplacePar("parts", 1/p.eps2, p.eps2)
		size := float64(len(part))
		partPerCell := est / size
		partVar := 2 / (p.eps2 * p.eps2 * size * size)
		wPart := cellVar / (cellVar + partVar)
		for _, cell := range part {
			out[cell] = wPart*partPerCell + (1-wPart)*noisy[cell]
		}
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (d *DPCube) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "counts", Kind: noise.Sequential},
		{Label: "parts", Kind: noise.Parallel},
	}
}

// kdSplit1DBounds recursively partitions [lo, hi) of the noisy histogram,
// splitting at the mass median while the interval looks non-uniform relative
// to the noise level. Partitions are contiguous, so they are returned as
// ascending boundary offsets appended to bounds (the caller seeds it with
// lo); the leaf order matches the left-to-right recursion.
func kdSplit1DBounds(noisy []float64, lo, hi, minCells int, noiseUnit float64, bounds []int) []int {
	if hi-lo <= 1 || stopSplitting(noisy[lo:hi], minCells, noiseUnit) {
		return append(bounds, hi)
	}
	mid := massMedian(noisy, lo, hi)
	if mid <= lo || mid >= hi {
		mid = (lo + hi) / 2
	}
	bounds = kdSplit1DBounds(noisy, lo, mid, minCells, noiseUnit, bounds)
	return kdSplit1DBounds(noisy, mid, hi, minCells, noiseUnit, bounds)
}

type kdRect struct{ x0, y0, x1, y1 int }

func (r kdRect) cells(nx int) []int {
	out := make([]int, 0, (r.x1-r.x0)*(r.y1-r.y0))
	for y := r.y0; y < r.y1; y++ {
		for x := r.x0; x < r.x1; x++ {
			out = append(out, y*nx+x)
		}
	}
	return out
}

func kdSplit2D(noisy []float64, nx int, r kdRect, minCells int, noiseUnit float64) [][]int {
	cells := r.cells(nx)
	if len(cells) <= 1 {
		return [][]int{cells}
	}
	vals := make([]float64, len(cells))
	for i, c := range cells {
		vals[i] = noisy[c]
	}
	if stopSplitting(vals, minCells, noiseUnit) {
		return [][]int{cells}
	}
	// Split the wider dimension at its marginal-mass median.
	w, h := r.x1-r.x0, r.y1-r.y0
	if w >= h && w > 1 {
		marg := make([]float64, w)
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				marg[x-r.x0] += noisy[y*nx+x]
			}
		}
		cut := r.x0 + marginalMedian(marg)
		if cut <= r.x0 || cut >= r.x1 {
			cut = (r.x0 + r.x1) / 2
		}
		return append(kdSplit2D(noisy, nx, kdRect{r.x0, r.y0, cut, r.y1}, minCells, noiseUnit),
			kdSplit2D(noisy, nx, kdRect{cut, r.y0, r.x1, r.y1}, minCells, noiseUnit)...)
	}
	if h > 1 {
		marg := make([]float64, h)
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				marg[y-r.y0] += noisy[y*nx+x]
			}
		}
		cut := r.y0 + marginalMedian(marg)
		if cut <= r.y0 || cut >= r.y1 {
			cut = (r.y0 + r.y1) / 2
		}
		return append(kdSplit2D(noisy, nx, kdRect{r.x0, r.y0, r.x1, cut}, minCells, noiseUnit),
			kdSplit2D(noisy, nx, kdRect{r.x0, cut, r.x1, r.y1}, minCells, noiseUnit)...)
	}
	return [][]int{cells}
}

// stopSplitting reports whether a partition should become a leaf: its value
// spread is small relative to the Laplace noise (so splitting cannot pay
// off), with a stricter bar below the MinCells size so small partitions only
// keep splitting when the non-uniformity clearly exceeds the noise floor. As
// the budget grows the noise unit vanishes and any real non-uniformity keeps
// splitting, which is what makes DPCube consistent (Theorem 3).
func stopSplitting(vals []float64, minCells int, noiseUnit float64) bool {
	if len(vals) <= 1 {
		return true
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	threshold := 4 * noiseUnit
	if len(vals) <= minCells {
		threshold = 8 * noiseUnit
	}
	return hi-lo <= threshold
}

// massMedian returns the index m in (lo, hi) splitting the positive mass of
// noisy[lo:hi] roughly in half.
func massMedian(noisy []float64, lo, hi int) int {
	var total float64
	for i := lo; i < hi; i++ {
		if noisy[i] > 0 {
			total += noisy[i]
		}
	}
	if total <= 0 {
		return (lo + hi) / 2
	}
	var run float64
	for i := lo; i < hi; i++ {
		if noisy[i] > 0 {
			run += noisy[i]
		}
		if run >= total/2 {
			return i + 1
		}
	}
	return (lo + hi) / 2
}

// marginalMedian returns the split offset (1..len-1) halving the positive
// mass of a marginal.
func marginalMedian(marg []float64) int {
	var total float64
	for _, v := range marg {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return len(marg) / 2
	}
	var run float64
	for i, v := range marg {
		if v > 0 {
			run += v
		}
		if run >= total/2 {
			if i+1 >= len(marg) {
				return len(marg) - 1
			}
			return i + 1
		}
	}
	return len(marg) / 2
}
