package algo

import (
	"math/rand"

	"repro/internal/noise"
	"repro/internal/vec"
	"repro/internal/workload"
)

// DPCube is the multidimensional partitioning algorithm of Xiao et al.
// (Transactions on Data Privacy 2014). It first obtains noisy counts for
// every cell with a rho fraction of the budget, builds a kd-tree over the
// noisy counts (splitting along the wider dimension at the noisy-mass
// median until partitions are nearly uniform or smaller than MinCells),
// obtains fresh noisy counts for the partitions with the remaining budget,
// and combines the two estimates per cell by precision weighting.
type DPCube struct {
	// Rho is the budget fraction for the initial cell counts (paper: 0.5).
	Rho float64
	// MinCells stops kd-tree splits below this partition size (paper's
	// n_p = 10).
	MinCells int
}

func init() { Register("DPCUBE", func() Algorithm { return &DPCube{Rho: 0.5, MinCells: 10} }) }

// Name implements Algorithm.
func (d *DPCube) Name() string { return "DPCUBE" }

// Supports implements Algorithm.
func (d *DPCube) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (d *DPCube) DataDependent() bool { return true }

// Run implements Algorithm.
func (d *DPCube) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return d.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered: the initial per-cell histogram is one vector
// query at rho*eps; the kd-tree is post-processing; the fresh partition
// counts are disjoint and compose in parallel to the remaining (1-rho)*eps.
func (d *DPCube) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	rho := d.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	minCells := d.MinCells
	if minCells < 1 {
		minCells = 10
	}
	eps1 := rho * eps
	eps2 := (1 - rho) * eps
	n := x.N()

	noisy := m.LaplaceVec("counts", x.Data, 1/eps1, eps1)

	// kd-tree over the noisy counts (pure post-processing of DP output).
	var parts [][]int
	switch x.K() {
	case 1:
		parts = kdSplit1D(noisy, 0, n, minCells, 1/eps1)
	case 2:
		parts = kdSplit2D(noisy, x.Dims[1], kdRect{0, 0, x.Dims[1], x.Dims[0]}, minCells, 1/eps1)
	}

	// Fresh counts for partitions; precision-weighted merge with the
	// per-cell noisy estimates. Partition estimates spread uniformly carry
	// variance 2/(eps2^2 * |p|^2) per cell (ignoring uniformity bias);
	// per-cell estimates carry 2/eps1^2.
	out := make([]float64, n)
	cellVar := 2 / (eps1 * eps1)
	for _, p := range parts {
		var trueTotal float64
		for _, cell := range p {
			trueTotal += x.Data[cell]
		}
		est := trueTotal + m.LaplacePar("parts", 1/eps2, eps2)
		size := float64(len(p))
		partPerCell := est / size
		partVar := 2 / (eps2 * eps2 * size * size)
		wPart := cellVar / (cellVar + partVar)
		for _, cell := range p {
			out[cell] = wPart*partPerCell + (1-wPart)*noisy[cell]
		}
	}
	return out, m.Err()
}

// CompositionPlan implements Planner.
func (d *DPCube) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "counts", Kind: noise.Sequential},
		{Label: "parts", Kind: noise.Parallel},
	}
}

// kdSplit1D recursively partitions [lo, hi) of the noisy histogram, splitting
// at the mass median while the interval looks non-uniform relative to the
// noise level.
func kdSplit1D(noisy []float64, lo, hi, minCells int, noiseUnit float64) [][]int {
	if hi-lo <= 1 || stopSplitting(noisy[lo:hi], minCells, noiseUnit) {
		cells := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			cells = append(cells, i)
		}
		return [][]int{cells}
	}
	mid := massMedian(noisy, lo, hi)
	if mid <= lo || mid >= hi {
		mid = (lo + hi) / 2
	}
	return append(kdSplit1D(noisy, lo, mid, minCells, noiseUnit),
		kdSplit1D(noisy, mid, hi, minCells, noiseUnit)...)
}

type kdRect struct{ x0, y0, x1, y1 int }

func (r kdRect) cells(nx int) []int {
	out := make([]int, 0, (r.x1-r.x0)*(r.y1-r.y0))
	for y := r.y0; y < r.y1; y++ {
		for x := r.x0; x < r.x1; x++ {
			out = append(out, y*nx+x)
		}
	}
	return out
}

func kdSplit2D(noisy []float64, nx int, r kdRect, minCells int, noiseUnit float64) [][]int {
	cells := r.cells(nx)
	if len(cells) <= 1 {
		return [][]int{cells}
	}
	vals := make([]float64, len(cells))
	for i, c := range cells {
		vals[i] = noisy[c]
	}
	if stopSplitting(vals, minCells, noiseUnit) {
		return [][]int{cells}
	}
	// Split the wider dimension at its marginal-mass median.
	w, h := r.x1-r.x0, r.y1-r.y0
	if w >= h && w > 1 {
		marg := make([]float64, w)
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				marg[x-r.x0] += noisy[y*nx+x]
			}
		}
		cut := r.x0 + marginalMedian(marg)
		if cut <= r.x0 || cut >= r.x1 {
			cut = (r.x0 + r.x1) / 2
		}
		return append(kdSplit2D(noisy, nx, kdRect{r.x0, r.y0, cut, r.y1}, minCells, noiseUnit),
			kdSplit2D(noisy, nx, kdRect{cut, r.y0, r.x1, r.y1}, minCells, noiseUnit)...)
	}
	if h > 1 {
		marg := make([]float64, h)
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				marg[y-r.y0] += noisy[y*nx+x]
			}
		}
		cut := r.y0 + marginalMedian(marg)
		if cut <= r.y0 || cut >= r.y1 {
			cut = (r.y0 + r.y1) / 2
		}
		return append(kdSplit2D(noisy, nx, kdRect{r.x0, r.y0, r.x1, cut}, minCells, noiseUnit),
			kdSplit2D(noisy, nx, kdRect{r.x0, cut, r.x1, r.y1}, minCells, noiseUnit)...)
	}
	return [][]int{cells}
}

// stopSplitting reports whether a partition should become a leaf: its value
// spread is small relative to the Laplace noise (so splitting cannot pay
// off), with a stricter bar below the MinCells size so small partitions only
// keep splitting when the non-uniformity clearly exceeds the noise floor. As
// the budget grows the noise unit vanishes and any real non-uniformity keeps
// splitting, which is what makes DPCube consistent (Theorem 3).
func stopSplitting(vals []float64, minCells int, noiseUnit float64) bool {
	if len(vals) <= 1 {
		return true
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	threshold := 4 * noiseUnit
	if len(vals) <= minCells {
		threshold = 8 * noiseUnit
	}
	return hi-lo <= threshold
}

// massMedian returns the index m in (lo, hi) splitting the positive mass of
// noisy[lo:hi] roughly in half.
func massMedian(noisy []float64, lo, hi int) int {
	var total float64
	for i := lo; i < hi; i++ {
		if noisy[i] > 0 {
			total += noisy[i]
		}
	}
	if total <= 0 {
		return (lo + hi) / 2
	}
	var run float64
	for i := lo; i < hi; i++ {
		if noisy[i] > 0 {
			run += noisy[i]
		}
		if run >= total/2 {
			return i + 1
		}
	}
	return (lo + hi) / 2
}

// marginalMedian returns the split offset (1..len-1) halving the positive
// mass of a marginal.
func marginalMedian(marg []float64) int {
	var total float64
	for _, v := range marg {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return len(marg) / 2
	}
	var run float64
	for i, v := range marg {
		if v > 0 {
			run += v
		}
		if run >= total/2 {
			if i+1 >= len(marg) {
				return len(marg) - 1
			}
			return i + 1
		}
	}
	return len(marg) / 2
}
