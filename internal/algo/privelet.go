package algo

import (
	"fmt"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Privelet is the wavelet mechanism of Xiao, Wang and Gehrke (ICDE 2010): it
// measures the discrete Haar wavelet coefficients of x under Laplace noise
// and reconstructs by the inverse transform. Any range query touches only
// O(log n) coefficients, so range-query variance grows polylogarithmically in
// the domain size instead of linearly.
//
// This implementation uses the average-normalized Haar basis (coefficient of
// a node with block size s is (sumLeft - sumRight)/s), under which the L1
// sensitivity of the full coefficient vector is exactly 1 per record: a
// record contributes 1/n to the average coefficient and 1/s to one
// coefficient per level, and 1/n + sum_{s=2,4,...,n} 1/s = 1. Each
// coefficient therefore receives Laplace(1/eps) noise. For 2D the transform
// is applied separably (rows then columns), and the per-record sensitivity is
// the product of the axis sensitivities, again 1.
type Privelet struct{}

func init() { Register("PRIVELET", func() Algorithm { return Privelet{} }) }

// Name implements Algorithm.
func (Privelet) Name() string { return "PRIVELET" }

// Supports implements Algorithm.
func (Privelet) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (Privelet) DataDependent() bool { return false }

// Run implements Algorithm.
func (p Privelet) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(p, x, w, eps, rng)
}

// RunMeter implements Metered. The full wavelet coefficient vector is one
// vector-valued query with per-record L1 sensitivity 1 (see the type
// comment), so its per-coefficient draws jointly cost eps: the 1D path
// charges it once for the whole vector, the 2D path charges its interleaved
// per-cell draws under one "coeffs" scope.
func (p Privelet) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(p, x, w, m)
}

// CompositionPlan implements Planner. "coeffs" appears under both kinds
// because the 1D path charges the vector query once (sequential) while the
// 2D path charges its per-cell draws as one scope (parallel aggregation to
// the same eps total).
func (Privelet) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "coeffs", Kind: noise.Sequential},
		{Label: "coeffs", Kind: noise.Parallel},
	}
}

// Plan implements Algorithm: the forward wavelet transform of the data is
// trial-independent, so it runs once here; a trial is noise on the cached
// coefficients plus the inverse transform through pooled buffers.
func (Privelet) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	switch x.K() {
	case 1:
		c, err := transform.HaarForward(padPow2(x.Data))
		if err != nil {
			return nil, err
		}
		p := &priveletPlan1D{coeffs: c, n: x.N(), eps: eps}
		p.bufs.New = func() any {
			return &haarScratch{a: make([]float64, len(c)), b: make([]float64, len(c)), noisy: make([]float64, len(c))}
		}
		return p, nil
	case 2:
		grid, err := priveletForward2D(x.Data, x.Dims[1], x.Dims[0])
		if err != nil {
			return nil, err
		}
		px := len(grid[0])
		py := len(grid)
		p := &priveletPlan2D{coeffs: grid, nx: x.Dims[1], ny: x.Dims[0], px: px, py: py, eps: eps}
		p.bufs.New = func() any {
			return &haar2DScratch{
				grid: make([]float64, px*py),
				col:  make([]float64, py), colOut: make([]float64, py), colTmp: make([]float64, py),
				row: make([]float64, px), rowTmp: make([]float64, px),
			}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("privelet: unsupported dimensionality %d", x.K())
	}
}

// haarScratch is one 1D trial's buffers: the noisy coefficients and the
// inverse transform's ping-pong pair.
type haarScratch struct{ a, b, noisy []float64 }

type priveletPlan1D struct {
	coeffs []float64 // forward transform of the (padded) data
	n      int
	eps    float64
	bufs   sync.Pool // *haarScratch
}

//dp:hotpath
func (p *priveletPlan1D) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*haarScratch)
	defer p.bufs.Put(sc)
	noisy := m.LaplaceVecInto("coeffs", sc.noisy, p.coeffs, 1/p.eps, p.eps)
	if err := transform.HaarInverseInto(sc.a, sc.b, noisy); err != nil {
		return err
	}
	copy(out, sc.a[:p.n])
	return m.Err()
}

// priveletForward2D applies the separable forward transform (rows then
// columns) to the zero-padded grid, returning the fully transformed
// coefficient grid. It is exactly the deterministic prefix of the seed
// implementation's per-trial work.
func priveletForward2D(data []float64, nx, ny int) ([][]float64, error) {
	px, py := nextPow2(nx), nextPow2(ny)
	grid := make([][]float64, py)
	for y := 0; y < py; y++ {
		row := make([]float64, px)
		if y < ny {
			copy(row, data[y*nx:(y+1)*nx])
		}
		c, err := transform.HaarForward(row)
		if err != nil {
			return nil, err
		}
		grid[y] = c
	}
	for xcol := 0; xcol < px; xcol++ {
		col := make([]float64, py)
		for y := 0; y < py; y++ {
			col[y] = grid[y][xcol]
		}
		c, err := transform.HaarForward(col)
		if err != nil {
			return nil, err
		}
		for y := 0; y < py; y++ {
			grid[y][xcol] = c[y]
		}
	}
	return grid, nil
}

// haar2DScratch is one 2D trial's buffers: the noisy coefficient grid and
// the per-column/per-row inverse transform scratch.
type haar2DScratch struct {
	grid                []float64 // px*py noisy coefficients, row-major
	col, colOut, colTmp []float64
	row, rowTmp         []float64
}

type priveletPlan2D struct {
	coeffs         [][]float64
	nx, ny, px, py int
	eps            float64
	bufs           sync.Pool // *haar2DScratch
}

//dp:hotpath
func (p *priveletPlan2D) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*haar2DScratch)
	defer p.bufs.Put(sc)
	// Noise draws walk the grid column-major, matching the seed
	// implementation's interleaved draw order exactly.
	for xcol := 0; xcol < p.px; xcol++ {
		for y := 0; y < p.py; y++ {
			sc.grid[y*p.px+xcol] = p.coeffs[y][xcol] + m.LaplacePar("coeffs", 1/p.eps, p.eps)
		}
	}
	// Invert columns then rows.
	for xcol := 0; xcol < p.px; xcol++ {
		for y := 0; y < p.py; y++ {
			sc.col[y] = sc.grid[y*p.px+xcol]
		}
		if err := transform.HaarInverseInto(sc.colOut, sc.colTmp, sc.col); err != nil {
			return err
		}
		for y := 0; y < p.py; y++ {
			sc.grid[y*p.px+xcol] = sc.colOut[y]
		}
	}
	for y := 0; y < p.ny; y++ {
		if err := transform.HaarInverseInto(sc.row, sc.rowTmp, sc.grid[y*p.px:(y+1)*p.px]); err != nil {
			return err
		}
		copy(out[y*p.nx:(y+1)*p.nx], sc.row[:p.nx])
	}
	return m.Err()
}

// padPow2 zero-pads a slice to the next power-of-two length (no copy when
// already a power of two).
func padPow2(x []float64) []float64 {
	n := len(x)
	p := nextPow2(n)
	if p == n {
		return x
	}
	out := make([]float64, p)
	copy(out, x)
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
