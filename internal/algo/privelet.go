package algo

import (
	"fmt"
	"math/rand"

	"repro/internal/noise"
	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/workload"
)

// Privelet is the wavelet mechanism of Xiao, Wang and Gehrke (ICDE 2010): it
// measures the discrete Haar wavelet coefficients of x under Laplace noise
// and reconstructs by the inverse transform. Any range query touches only
// O(log n) coefficients, so range-query variance grows polylogarithmically in
// the domain size instead of linearly.
//
// This implementation uses the average-normalized Haar basis (coefficient of
// a node with block size s is (sumLeft - sumRight)/s), under which the L1
// sensitivity of the full coefficient vector is exactly 1 per record: a
// record contributes 1/n to the average coefficient and 1/s to one
// coefficient per level, and 1/n + sum_{s=2,4,...,n} 1/s = 1. Each
// coefficient therefore receives Laplace(1/eps) noise. For 2D the transform
// is applied separably (rows then columns), and the per-record sensitivity is
// the product of the axis sensitivities, again 1.
type Privelet struct{}

func init() { Register("PRIVELET", func() Algorithm { return Privelet{} }) }

// Name implements Algorithm.
func (Privelet) Name() string { return "PRIVELET" }

// Supports implements Algorithm.
func (Privelet) Supports(k int) bool { return k == 1 || k == 2 }

// DataDependent implements Algorithm.
func (Privelet) DataDependent() bool { return false }

// Run implements Algorithm.
func (p Privelet) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return p.RunMeter(x, w, noise.NewMeter(eps, rng))
}

// RunMeter implements Metered. The full wavelet coefficient vector is one
// vector-valued query with per-record L1 sensitivity 1 (see the type
// comment), so its per-coefficient draws jointly cost eps: the 1D path
// charges it once for the whole vector, the 2D path charges its interleaved
// per-cell draws under one "coeffs" scope.
func (Privelet) RunMeter(x *vec.Vector, _ *workload.Workload, m *noise.Meter) ([]float64, error) {
	eps := m.Total()
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	var out []float64
	var err error
	switch x.K() {
	case 1:
		out, err = priveletRun1D(x.Data, eps, m)
	case 2:
		out, err = priveletRun2D(x.Data, x.Dims[1], x.Dims[0], eps, m)
	default:
		return nil, fmt.Errorf("privelet: unsupported dimensionality %d", x.K())
	}
	if err != nil {
		return nil, err
	}
	return out, m.Err()
}

// CompositionPlan implements Planner. "coeffs" appears under both kinds
// because the 1D path charges the vector query once (sequential) while the
// 2D path charges its per-cell draws as one scope (parallel aggregation to
// the same eps total).
func (Privelet) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "coeffs", Kind: noise.Sequential},
		{Label: "coeffs", Kind: noise.Parallel},
	}
}

func priveletRun1D(data []float64, eps float64, m *noise.Meter) ([]float64, error) {
	c, err := transform.HaarForward(padPow2(data))
	if err != nil {
		return nil, err
	}
	noisy := m.LaplaceVec("coeffs", c, 1/eps, eps)
	rec, err := transform.HaarInverse(noisy)
	if err != nil {
		return nil, err
	}
	return rec[:len(data)], nil
}

func priveletRun2D(data []float64, nx, ny int, eps float64, m *noise.Meter) ([]float64, error) {
	px, py := nextPow2(nx), nextPow2(ny)
	// Forward transform rows then columns on the padded grid.
	grid := make([][]float64, py)
	for y := 0; y < py; y++ {
		row := make([]float64, px)
		if y < ny {
			copy(row, data[y*nx:(y+1)*nx])
		}
		c, err := transform.HaarForward(row)
		if err != nil {
			return nil, err
		}
		grid[y] = c
	}
	for xcol := 0; xcol < px; xcol++ {
		col := make([]float64, py)
		for y := 0; y < py; y++ {
			col[y] = grid[y][xcol]
		}
		c, err := transform.HaarForward(col)
		if err != nil {
			return nil, err
		}
		for y := 0; y < py; y++ {
			grid[y][xcol] = c[y] + m.LaplacePar("coeffs", 1/eps, eps)
		}
	}
	// Invert columns then rows.
	for xcol := 0; xcol < px; xcol++ {
		col := make([]float64, py)
		for y := 0; y < py; y++ {
			col[y] = grid[y][xcol]
		}
		r, err := transform.HaarInverse(col)
		if err != nil {
			return nil, err
		}
		for y := 0; y < py; y++ {
			grid[y][xcol] = r[y]
		}
	}
	out := make([]float64, nx*ny)
	for y := 0; y < ny; y++ {
		r, err := transform.HaarInverse(grid[y])
		if err != nil {
			return nil, err
		}
		copy(out[y*nx:(y+1)*nx], r[:nx])
	}
	return out, nil
}

// padPow2 zero-pads a slice to the next power-of-two length (no copy when
// already a power of two).
func padPow2(x []float64) []float64 {
	n := len(x)
	p := nextPow2(n)
	if p == n {
		return x
	}
	out := make([]float64, p)
	copy(out, x)
	return out
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
