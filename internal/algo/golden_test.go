package algo

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// This file pins the optimized MWEM and DAWA hot paths to the seed
// implementations, which are retained below verbatim (modulo the
// struct-of-arrays workload accessors). DAWA's rewrite only changes how
// interval deviation costs are computed — at most a few ulps per cost under
// Laplace noise of scale >> 1 — so its output must stay bit-identical.
// MWEM's rewrite folds the per-entry renormalization division into a
// deferred scalar, an algebraically exact transformation that reassociates
// floating-point multiplies; its output is pinned to the reference within a
// tight relative tolerance and must stay exactly reproducible run to run.

// --- reference (seed) MWEM ---

func refMWEMRun(m *MWEM, x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if w == nil || w.Size() == 0 {
		w = workload.Prefix(x.N())
	}
	epsLeft := eps
	scale := x.Scale()
	if m.ScaleRho > 0 {
		epsScale := eps * m.ScaleRho
		scale += noise.Laplace(rng, 1/epsScale)
		if scale < 1 {
			scale = 1
		}
		epsLeft -= epsScale
	}
	rounds := m.T
	if rounds <= 0 {
		prof := m.TFromSignal
		if prof == nil {
			prof = DefaultTProfile
		}
		rounds = prof(eps * scale)
	}
	if rounds < 1 {
		rounds = 1
	}
	if rounds > w.Size() {
		rounds = w.Size()
	}
	sweeps := m.UpdateSweeps
	if sweeps < 1 {
		sweeps = 1
	}

	n := x.N()
	est := make([]float64, n)
	uniformSpread(est, 0, n, scale)
	trueAns, err := w.Evaluate(x)
	if err != nil {
		return nil, err
	}

	epsRound := epsLeft / float64(rounds)
	type meas struct {
		query int
		value float64
	}
	var history []meas
	chosen := make(map[int]bool)

	for t := 0; t < rounds; t++ {
		estAns := w.EvaluateFlat(est)
		scores := make([]float64, w.Size())
		for i := range scores {
			if chosen[i] {
				scores[i] = math.Inf(-1)
				continue
			}
			scores[i] = math.Abs(trueAns[i] - estAns[i])
		}
		q, err := noise.ExpMech(rng, scores, 1, epsRound/2)
		if err != nil {
			return nil, err
		}
		chosen[q] = true
		value := trueAns[q] + noise.Laplace(rng, 2/epsRound)
		history = append(history, meas{q, value})

		for s := 0; s < sweeps; s++ {
			for _, h := range history {
				cur := refAnswerOne(w, h.query, est)
				factor := (h.value - cur) / (2 * scale)
				if factor > 30 {
					factor = 30
				} else if factor < -30 {
					factor = -30
				}
				mult := math.Exp(factor)
				var newTotal float64
				for cell := 0; cell < n; cell++ {
					if w.Covers(h.query, cell) {
						est[cell] *= mult
					}
					newTotal += est[cell]
				}
				if newTotal > 0 {
					adj := scale / newTotal
					for cell := range est {
						est[cell] *= adj
					}
				}
			}
		}
	}
	return est, nil
}

func refAnswerOne(w *workload.Workload, k int, est []float64) float64 {
	var s float64
	switch len(w.Dims) {
	case 1:
		lo, hi := w.Range(k)
		for i := lo; i <= hi; i++ {
			s += est[i]
		}
	case 2:
		y0, x0, y1, x1 := w.Rect(k)
		nx := w.Dims[1]
		for y := y0; y <= y1; y++ {
			for xc := x0; xc <= x1; xc++ {
				s += est[y*nx+xc]
			}
		}
	}
	return s
}

// --- reference (seed) DAWA stage one ---

func refDAWAPartition(d *DAWA, data []float64, eps1, eps2 float64, rng *rand.Rand) []int {
	n := len(data)
	if n == 1 {
		return []int{0, 1}
	}
	levels := log2Ceil(n) + 1
	costNoise := 2 * float64(levels) / eps1
	penalty := 1 / eps2

	type candidate struct {
		lo, hi int
		cost   float64
	}
	var cands []candidate
	if d.NoDyadicRestriction {
		allNoise := 2 * float64(n) / eps1
		for lo := 0; lo < n; lo++ {
			for hi := lo + 1; hi <= n; hi++ {
				c := l1Deviation(data[lo:hi]) + noise.Laplace(rng, allNoise)
				cands = append(cands, candidate{lo, hi, c})
			}
		}
	} else {
		for size := 1; size <= n; size <<= 1 {
			for lo := 0; lo+size <= n; lo += size {
				c := l1Deviation(data[lo:lo+size]) + noise.Laplace(rng, costNoise)
				if c < 0 {
					c = 0
				}
				cands = append(cands, candidate{lo, lo + size, c})
			}
		}
	}

	byEnd := make([][]candidate, n+1)
	for _, c := range cands {
		byEnd[c.hi] = append(byEnd[c.hi], c)
	}
	best := make([]float64, n+1)
	back := make([]int, n+1)
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		back[j] = j - 1
		for _, c := range byEnd[j] {
			total := best[c.lo] + c.cost + penalty
			if total < best[j] {
				best[j] = total
				back[j] = c.lo
			}
		}
	}
	var bounds []int
	for j := n; j > 0; j = back[j] {
		bounds = append(bounds, j)
	}
	bounds = append(bounds, 0)
	sort.Ints(bounds)
	return bounds
}

func refDAWARun1D(d *DAWA, data []float64, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	rho := d.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.25
	}
	b := d.B
	if b < 2 {
		b = 2
	}
	n := len(data)
	eps1 := rho * eps
	eps2 := (1 - rho) * eps

	bounds := refDAWAPartition(d, data, eps1, eps2, rng)
	k := len(bounds) - 1
	bucketData := make([]float64, k)
	for i := 0; i < k; i++ {
		for c := bounds[i]; c < bounds[i+1]; c++ {
			bucketData[i] += data[c]
		}
	}
	weights := bucketLevelWeights(n, k, b, bounds, w)
	bucketEst, err := greedyHEstimate(bucketData, b, weights, noise.NewMeter(eps2, rng))
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < k; i++ {
		uniformSpread(out, bounds[i], bounds[i+1], bucketEst[i])
	}
	return out, nil
}

// --- golden data helpers ---

func goldenData(rng *rand.Rand, n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		// Clustered integer counts with zero stretches, the regime DAWA's
		// partition cost structure is sensitive to.
		if rng.Intn(3) == 0 {
			data[i] = float64(rng.Intn(200))
		}
	}
	return data
}

func goldenVec(t *testing.T, rng *rand.Rand, dims ...int) *vec.Vector {
	t.Helper()
	n := 1
	for _, d := range dims {
		n *= d
	}
	v, err := vec.FromData(goldenData(rng, n), dims...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// --- golden tests ---

func TestDAWAGoldenBitIdentical1D(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, n := range []int{1, 2, 7, 64, 200, 256} {
			rng := rand.New(rand.NewSource(seed))
			data := goldenData(rng, n)
			x, _ := vec.FromData(append([]float64(nil), data...), n)
			w := workload.Prefix(n)
			d := &DAWA{Rho: 0.25, B: 2}
			got, err := d.Run(x, w, 0.1, rand.New(rand.NewSource(seed*31+7)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := refDAWARun1D(d, data, w, 0.1, rand.New(rand.NewSource(seed*31+7)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n=%d cell %d: %v != %v (bitwise)", seed, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDAWAGoldenBitIdentical2D(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := goldenVec(t, rng, 16, 16)
		d := &DAWA{Rho: 0.25, B: 2}
		got, err := d.Run(x, nil, 0.5, rand.New(rand.NewSource(seed*17+3)))
		if err != nil {
			t.Fatal(err)
		}
		// The 2D path linearizes along the Hilbert curve and runs the 1D
		// pipeline; replicate it against the reference stage one.
		lin, perm, err := transform.HilbertLinearize(x.Data, 16)
		if err != nil {
			t.Fatal(err)
		}
		est, err := refDAWARun1D(d, lin, nil, 0.5, rand.New(rand.NewSource(seed*17+3)))
		if err != nil {
			t.Fatal(err)
		}
		want := transform.HilbertDelinearize(est, perm)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d cell %d: %v != %v (bitwise)", seed, i, got[i], want[i])
			}
		}
	}
}

func TestDAWAAblationGoldenBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, n := range []int{2, 5, 33, 64} {
			rng := rand.New(rand.NewSource(seed))
			data := goldenData(rng, n)
			x, _ := vec.FromData(append([]float64(nil), data...), n)
			w := workload.Prefix(n)
			d := &DAWA{Rho: 0.25, B: 2, NoDyadicRestriction: true}
			got, err := d.Run(x, w, 0.1, rand.New(rand.NewSource(seed*13+1)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := refDAWARun1D(d, data, w, 0.1, rand.New(rand.NewSource(seed*13+1)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n=%d cell %d: %v != %v (bitwise)", seed, n, i, got[i], want[i])
				}
			}
		}
	}
}

// mwemTolerance is the per-cell relative tolerance pinning the optimized
// MWEM to the reference: the deferred-normalization scalar reassociates one
// multiply per renormalization, so agreement is at the accumulated-ulp
// level, far tighter than any statistical property of the mechanism.
const mwemTolerance = 1e-9

func TestMWEMGoldenMatchesReference1D(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, n := range []int{16, 64, 128} {
			rng := rand.New(rand.NewSource(seed))
			x := goldenVec(t, rng, n)
			w := workload.Prefix(n)
			m := &MWEM{T: 6, UpdateSweeps: 2}
			got, err := m.Run(x, w, 0.5, rand.New(rand.NewSource(seed*101+9)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := refMWEMRun(m, x, w, 0.5, rand.New(rand.NewSource(seed*101+9)))
			if err != nil {
				t.Fatal(err)
			}
			compareWithinTolerance(t, got, want, seed, n)
		}
	}
}

func TestMWEMStarGoldenMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := goldenVec(t, rng, 64)
		w := workload.Prefix(64)
		m := &MWEM{TFromSignal: DefaultTProfile, ScaleRho: 0.05, UpdateSweeps: 2, starred: true}
		got, err := m.Run(x, w, 0.5, rand.New(rand.NewSource(seed*7+5)))
		if err != nil {
			t.Fatal(err)
		}
		ref := &MWEM{TFromSignal: DefaultTProfile, ScaleRho: 0.05, UpdateSweeps: 2, starred: true}
		want, err := refMWEMRun(ref, x, w, 0.5, rand.New(rand.NewSource(seed*7+5)))
		if err != nil {
			t.Fatal(err)
		}
		compareWithinTolerance(t, got, want, seed, 64)
	}
}

func TestMWEMGoldenMatchesReference2D(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := goldenVec(t, rng, 8, 8)
		w := workload.RandomRange2D(8, 8, 60, rand.New(rand.NewSource(seed+99)))
		m := &MWEM{T: 5, UpdateSweeps: 2}
		got, err := m.Run(x, w, 0.5, rand.New(rand.NewSource(seed*19+2)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := refMWEMRun(m, x, w, 0.5, rand.New(rand.NewSource(seed*19+2)))
		if err != nil {
			t.Fatal(err)
		}
		compareWithinTolerance(t, got, want, seed, 64)
	}
}

func compareWithinTolerance(t *testing.T, got, want []float64, seed int64, n int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seed %d n=%d: length %d != %d", seed, n, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		denom := math.Abs(want[i])
		if denom < 1 {
			denom = 1
		}
		if diff/denom > mwemTolerance {
			t.Fatalf("seed %d n=%d cell %d: %v vs %v (rel diff %v)", seed, n, i, got[i], want[i], diff/denom)
		}
	}
}

func TestMWEMExactlyReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := goldenVec(t, rng, 256)
	w := workload.Prefix(256)
	m := &MWEM{T: 10, UpdateSweeps: 2}
	a, err := m.Run(x, w, 0.1, rand.New(rand.NewSource(123)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(x, w, 0.1, rand.New(rand.NewSource(123)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d: %v != %v — MWEM must be bit-reproducible for a fixed seed", i, a[i], b[i])
		}
	}
}

// --- deviation-kernel goldens ---

func TestDyadicDeviationsMatchNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, n := range []int{1, 2, 3, 13, 64, 100} {
			rng := rand.New(rand.NewSource(seed))
			data := goldenData(rng, n)
			type iv struct{ lo, size int }
			want := map[iv]float64{}
			var order []iv
			for size := 1; size <= n; size <<= 1 {
				for lo := 0; lo+size <= n; lo += size {
					want[iv{lo, size}] = l1Deviation(data[lo : lo+size])
					order = append(order, iv{lo, size})
				}
			}
			var gotOrder []iv
			dyadicDeviations(data, func(lo, size int, dev float64) {
				gotOrder = append(gotOrder, iv{lo, size})
				naive := want[iv{lo, size}]
				tol := 1e-9 * (1 + math.Abs(naive))
				if math.Abs(dev-naive) > tol {
					t.Fatalf("seed %d n=%d [%d,%d): dev %v, naive %v", seed, n, lo, lo+size, dev, naive)
				}
			})
			if len(gotOrder) != len(order) {
				t.Fatalf("seed %d n=%d: visited %d intervals, want %d", seed, n, len(gotOrder), len(order))
			}
			for i := range order {
				if gotOrder[i] != order[i] {
					t.Fatalf("seed %d n=%d: visit order diverges at %d: %+v vs %+v — the noise stream depends on this order", seed, n, i, gotOrder[i], order[i])
				}
			}
		}
	}
}

func TestL1DevScannerMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, n := range []int{1, 2, 9, 50} {
			rng := rand.New(rand.NewSource(seed))
			data := goldenData(rng, n)
			scan := newL1DevScanner(data)
			for lo := 0; lo < n; lo++ {
				scan.Restart()
				for hi := lo + 1; hi <= n; hi++ {
					scan.Push(hi - 1)
					got := scan.Deviation()
					naive := l1Deviation(data[lo:hi])
					tol := 1e-9 * (1 + math.Abs(naive))
					if math.Abs(got-naive) > tol {
						t.Fatalf("seed %d n=%d [%d,%d): got %v, naive %v", seed, n, lo, hi, got, naive)
					}
				}
			}
		}
	}
}

// --- allocation regressions ---

func TestMWEMUpdatePathZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 1024
	w := workload.Prefix(n)
	x := goldenVec(t, rng, n)
	trueAns, err := w.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	st := newMWEMState(w, n, 8, x.Scale())
	// Seed a history the replay sweeps over.
	for i := 0; i < 8; i++ {
		st.hist = append(st.hist, measurement{query: (i * 97) % n, value: trueAns[(i*97)%n] + float64(i)})
	}
	if allocs := testing.AllocsPerRun(50, func() { st.replay() }); allocs != 0 {
		t.Fatalf("MWEM replay allocates %v per sweep, want 0", allocs)
	}
	selMeter := noise.NewMeter(1, rand.New(rand.NewSource(9)))
	if allocs := testing.AllocsPerRun(50, func() {
		q := st.selectQuery(trueAns, 0.05, selMeter)
		st.chosen[q] = false // keep the candidate set non-empty across runs
	}); allocs != 0 {
		t.Fatalf("MWEM selection allocates %v per round, want 0", allocs)
	}
}
