package algo

import (
	"fmt"
	"math/rand"

	"dpbench/internal/noise"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// QuadTree is the fixed-structure spatial decomposition of Cormode et al.
// (ICDE 2012): a quadtree of at most MaxHeight levels over the 2D grid,
// Laplace measurements on every node with geometric budget allocation, and
// consistency post-processing. Because the structure is fixed, no budget is
// spent selecting it (rho = 0). When the height cap truncates leaves above
// single cells, the uniformity assumption introduces bias, which is what
// makes QuadTree inconsistent on large domains (Theorem 5).
type QuadTree struct {
	// MaxHeight caps the number of tree levels (paper's c = 10).
	MaxHeight int
}

func init() { Register("QUADTREE", func() Algorithm { return &QuadTree{MaxHeight: 10} }) }

// Name implements Algorithm.
func (q *QuadTree) Name() string { return "QUADTREE" }

// Supports implements Algorithm; QuadTree is 2D only (Table 1).
func (q *QuadTree) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (q *QuadTree) DataDependent() bool { return true }

// Run implements Algorithm.
func (q *QuadTree) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(q, x, w, eps, rng)
}

// RunMeter implements Metered: geometric per-level budgets summing to eps,
// each level a parallel scope over its disjoint nodes.
func (q *QuadTree) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(q, x, w, m)
}

// Plan implements Algorithm: the quadtree layout is fixed per (grid, height),
// so the plan is a cached flat tree with the geometric budget.
func (q *QuadTree) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("quadtree: 2D only, got %dD", x.K())
	}
	h := q.MaxHeight
	if h < 1 {
		h = 10
	}
	flat, err := tree.SharedQuad(x.Dims[1], x.Dims[0], h)
	if err != nil {
		return nil, err
	}
	return newTreePlan(flat, x.Data, tree.GeometricLevelBudget(eps, flat.Height())), nil
}

// CompositionPlan implements Planner.
func (q *QuadTree) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "level*", Kind: noise.Parallel}}
}

// HybridTree is the kd-hybrid decomposition of Cormode et al. (ICDE 2012):
// the top KDLevels of the tree are chosen data-dependently by splitting at
// noisy medians (spending a small fraction of the budget), and a fixed
// quadtree fills in below until MaxHeight levels; node counts are then
// measured geometrically and made consistent, as with QuadTree.
type HybridTree struct {
	// KDLevels is the number of data-dependent top levels.
	KDLevels int
	// MaxHeight caps the total number of levels.
	MaxHeight int
	// StructRho is the budget fraction spent choosing the kd splits.
	StructRho float64
}

func init() {
	Register("HYBRIDTREE", func() Algorithm {
		return &HybridTree{KDLevels: 3, MaxHeight: 10, StructRho: 0.1}
	})
}

// Name implements Algorithm.
func (t *HybridTree) Name() string { return "HYBRIDTREE" }

// Supports implements Algorithm.
func (t *HybridTree) Supports(k int) bool { return k == 2 }

// DataDependent implements Algorithm.
func (t *HybridTree) DataDependent() bool { return true }

// Run implements Algorithm.
func (t *HybridTree) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(t, x, w, eps, rng)
}

// RunMeter implements Metered: each kd level's marginals run over disjoint
// regions (one parallel scope of epsStruct/kd per level, labels "kd<d>"),
// then the fixed-structure counts follow QuadTree's geometric per-level
// scopes at the remaining budget.
func (t *HybridTree) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(t, x, w, m)
}

// hybridPlan carries the resolved parameters; the kd structure itself is
// selected from fresh noise inside every Execute, as the mechanism requires.
type hybridPlan struct {
	t                  *HybridTree
	data               []float64
	nx, ny             int
	kd, h              int
	perLevel, epsCount float64
}

// Plan implements Algorithm. HybridTree's upper levels are data-dependent
// (noisy-median splits), so only the parameter resolution and budget split
// are hoisted; each trial builds and measures its own tree.
func (t *HybridTree) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 2 {
		return nil, fmt.Errorf("hybridtree: 2D only, got %dD", x.K())
	}
	kd := t.KDLevels
	if kd < 0 {
		kd = 3
	}
	h := t.MaxHeight
	if h < kd+1 {
		h = kd + 1
	}
	rho := t.StructRho
	if rho <= 0 || rho >= 1 {
		rho = 0.1
	}
	epsStruct := rho * eps
	epsCount := (1 - rho) * eps
	if kd == 0 {
		// Budget fix: with no data-dependent levels there is no structure to
		// select, so the struct allocation would be silently wasted — give
		// the whole budget to the counts instead.
		epsStruct, epsCount = 0, eps
	}
	return &hybridPlan{
		t: t, data: x.Data, nx: x.Dims[1], ny: x.Dims[0], kd: kd, h: h,
		perLevel: epsStruct / float64(maxInt(kd, 1)), epsCount: epsCount,
	}, nil
}

//dp:hotpath
func (p *hybridPlan) Execute(m *noise.Meter, out []float64) error {
	// Noisy marginals drive the kd splits; each level of splits touches
	// disjoint regions so the levels share epsStruct evenly.
	root := p.t.buildKD(p.data, p.nx, tree.Rect{X0: 0, Y0: 0, X1: p.nx, Y1: p.ny}, p.kd, p.kd, p.h, p.perLevel, m)
	if err := root.Finalize(); err != nil {
		return err
	}
	root.Measure(m, p.data, tree.GeometricLevelBudget(p.epsCount, root.Height()))
	root.InferInto(out)
	return m.Err()
}

// CompositionPlan implements Planner.
func (t *HybridTree) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "kd*", Kind: noise.Parallel},
		{Label: "level*", Kind: noise.Parallel},
	}
}

// buildKD builds kdLeft data-dependent levels splitting the longer dimension
// at a noisy mass median, then hands the region to a fixed quadtree of the
// remaining height. kdTotal is the configured number of kd levels, so the
// current kd depth is kdTotal-kdLeft. When a branch bottoms out early its
// remaining per-level allocations are charged as forfeits, keeping every kd
// scope at exactly epsLevel even if no region at that depth draws.
//
// Sibling subtrees split disjoint regions, so their equal charges share the
// per-level parallel scopes rather than summing.
//
//dp:spends par float64(kdLeft) * epsLevel
func (t *HybridTree) buildKD(data []float64, nx int, r tree.Rect, kdLeft, kdTotal, heightLeft int, epsLevel float64, m *noise.Meter) *tree.Node {
	w, h := r.X1-r.X0, r.Y1-r.Y0
	if kdLeft == 0 || heightLeft <= 1 || (w == 1 && h == 1) {
		for i := 0; i < kdLeft; i++ {
			m.ChargePar(idxLabel(kdLabels, kdTotal-kdLeft+i), epsLevel)
		}
		return tree.BuildQuadRegion(nx, r, heightLeft)
	}
	label := idxLabel(kdLabels, kdTotal-kdLeft)
	nd := &tree.Node{}
	var cut int
	if w >= h {
		marg := noisyMarginal(data, nx, r, true, epsLevel, label, m)
		cut = r.X0 + marginalMedian(marg)
		if cut <= r.X0 || cut >= r.X1 {
			cut = (r.X0 + r.X1) / 2
		}
		left := tree.Rect{X0: r.X0, Y0: r.Y0, X1: cut, Y1: r.Y1}
		right := tree.Rect{X0: cut, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
		nd.Children = []*tree.Node{
			t.buildKD(data, nx, left, kdLeft-1, kdTotal, heightLeft-1, epsLevel, m),
			t.buildKD(data, nx, right, kdLeft-1, kdTotal, heightLeft-1, epsLevel, m),
		}
		return nd
	}
	marg := noisyMarginal(data, nx, r, false, epsLevel, label, m)
	cut = r.Y0 + marginalMedian(marg)
	if cut <= r.Y0 || cut >= r.Y1 {
		cut = (r.Y0 + r.Y1) / 2
	}
	top := tree.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: cut}
	bottom := tree.Rect{X0: r.X0, Y0: cut, X1: r.X1, Y1: r.Y1}
	nd.Children = []*tree.Node{
		t.buildKD(data, nx, top, kdLeft-1, kdTotal, heightLeft-1, epsLevel, m),
		t.buildKD(data, nx, bottom, kdLeft-1, kdTotal, heightLeft-1, epsLevel, m),
	}
	return nd
}

// noisyMarginal returns the Laplace-noised marginal of the region along x
// (overX true) or y. One marginal is a vector query of sensitivity 1 over
// the region, and the regions sharing a kd level are disjoint, so all of a
// level's per-bin draws form one parallel scope of eps.
func noisyMarginal(data []float64, nx int, r tree.Rect, overX bool, eps float64, label string, m *noise.Meter) []float64 {
	var marg []float64
	if overX {
		marg = make([]float64, r.X1-r.X0)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				marg[x-r.X0] += data[y*nx+x]
			}
		}
	} else {
		marg = make([]float64, r.Y1-r.Y0)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				marg[y-r.Y0] += data[y*nx+x]
			}
		}
	}
	// One parallel scope for the whole marginal: the bins partition the
	// region, so the vectorized parallel draw charges eps once instead of
	// recording a ledger spend per bin.
	return m.LaplaceVecParInto(label, marg, marg, 1/eps, eps)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
