package algo

import (
	"math"
	"sort"
)

// This file holds the interval-uniformity cost kernels of DAWA's stage one.
// The cost of a candidate bucket [lo, hi) is its L1 deviation from
// uniformity, sum_i |x_i - mean|. The naive kernel (l1Deviation) recomputes
// each interval from scratch; the two types below amortize the work across
// the structured candidate sets the partition DP actually uses:
//
//   - dyadicDeviations visits every aligned dyadic interval bottom-up,
//     merging each interval's sorted half-intervals (mergesort-style) so the
//     deviation falls out of an ordered scan. Total work is O(n log n)
//     merging plus O(n log n) scanning across all O(n) intervals — against
//     O(n log n) per-level naive passes that touch cold data, and well under
//     the O(n log^2 n) budget of sorting each interval independently.
//
//   - l1DevScanner serves the NoDyadicRestriction ablation's O(n^2)
//     candidate set incrementally over hi: a Fenwick (binary indexed) tree
//     over global value ranks maintains the count and sum of the window's
//     elements below any threshold, so each of the n^2 intervals costs
//     O(log n) instead of O(n), taking the ablation from O(n^3) to
//     O(n^2 log n).
//
// Both kernels reduce |x - mean| with the ordered-split identity
//   sum|x - mean| = mean*c - sumBelow + (sumAll - sumBelow) - mean*(m - c)
// where c counts elements below the mean. The scanner accumulates the mean's
// numerator in the same left-to-right order as l1Deviation; the dyadic
// kernel sums halves pairwise. Both reassociate floating-point reductions
// relative to l1Deviation, perturbing each cost by at most a few ulps —
// harmless because Laplace noise of scale >> 1 is added to every cost before
// the DP ever compares them, and the golden tests pin the end-to-end DAWA
// output bit for bit to the reference implementation.

// l1Deviation returns sum_i |x_i - mean(x)|, the uniformity cost of a bucket.
// It is the reference kernel; the DP paths below use the amortized variants.
func l1Deviation(xs []float64) float64 {
	if len(xs) <= 1 {
		return 0
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var s float64
	for _, v := range xs {
		s += math.Abs(v - mean)
	}
	return s
}

// orderedDeviation computes sum|x - mean| for an ascending-sorted slice with
// known total, by splitting at the mean.
func orderedDeviation(sorted []float64, total float64) float64 {
	m := len(sorted)
	if m <= 1 {
		return 0
	}
	mean := total / float64(m)
	var c int
	var sumBelow float64
	for _, v := range sorted {
		if v >= mean {
			break
		}
		sumBelow += v
		c++
	}
	return mean*float64(c) - sumBelow + (total - sumBelow) - mean*float64(m-c)
}

// dyadicDeviations visits every aligned dyadic interval [lo, lo+size) with
// size a power of two and lo a multiple of size, in ascending (size, lo)
// order — the exact enumeration order of DAWA's candidate generation, so
// callers can draw per-candidate noise in a reproducible stream. Each
// interval's sorted contents are built by merging its two sorted halves from
// the level below.
func dyadicDeviations(data []float64, visit func(lo, size int, dev float64)) {
	n := len(data)
	if n == 0 {
		return
	}
	// Level size=1: single cells have zero deviation and are trivially
	// sorted. sums[k] is the running total of interval k at the current
	// level, accumulated bottom-up.
	sorted := append([]float64(nil), data...)
	sums := append([]float64(nil), data...)
	for lo := 0; lo < n; lo++ {
		visit(lo, 1, 0)
	}
	buf := make([]float64, n)
	nextSums := make([]float64, n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		count := n / size
		for k := 0; k < count; k++ {
			lo := k * size
			mergeSorted(buf[lo:lo+size], sorted[lo:lo+half], sorted[lo+half:lo+size])
			total := sums[2*k] + sums[2*k+1]
			nextSums[k] = total
			visit(lo, size, orderedDeviation(buf[lo:lo+size], total))
		}
		sorted, buf = buf, sorted
		sums, nextSums = nextSums, sums
	}
}

// mergeSorted merges two ascending runs into dst (len(dst) = len(a)+len(b)).
func mergeSorted(dst, a, b []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	for ; i < len(a); i++ {
		dst[k] = a[i]
		k++
	}
	for ; j < len(b); j++ {
		dst[k] = b[j]
		k++
	}
}

// l1DevScanner computes l1Deviation(data[lo:hi]) for a fixed lo and
// incrementally growing hi. A Fenwick tree over the ranks of all values
// maintains the count and sum of the window's elements, so Deviation costs
// O(log n) after each O(log n) Push.
type l1DevScanner struct {
	data   []float64
	rank   []int     // rank[i]: position of data[i] in the global sort order
	sorted []float64 // globally sorted values, indexed by rank
	cnt    []int     // Fenwick tree: element counts per rank
	sum    []float64 // Fenwick tree: element sums per rank
	seqSum float64   // left-to-right running sum (same order as l1Deviation)
	m      int       // window size
}

func newL1DevScanner(data []float64) *l1DevScanner {
	n := len(data)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return data[idx[a]] < data[idx[b]] })
	s := &l1DevScanner{
		data:   data,
		rank:   make([]int, n),
		sorted: make([]float64, n),
		cnt:    make([]int, n+1),
		sum:    make([]float64, n+1),
	}
	for r, i := range idx {
		s.rank[i] = r
		s.sorted[r] = data[i]
	}
	return s
}

// Restart empties the window (the caller moves lo and re-pushes).
func (s *l1DevScanner) Restart() {
	for i := range s.cnt {
		s.cnt[i] = 0
		s.sum[i] = 0
	}
	s.seqSum = 0
	s.m = 0
}

// Push appends data[i] to the window.
func (s *l1DevScanner) Push(i int) {
	v := s.data[i]
	s.seqSum += v
	s.m++
	for r := s.rank[i] + 1; r < len(s.cnt); r += r & -r {
		s.cnt[r]++
		s.sum[r] += v
	}
}

// Deviation returns the L1 deviation from uniformity of the current window.
func (s *l1DevScanner) Deviation() float64 {
	if s.m <= 1 {
		return 0
	}
	mean := s.seqSum / float64(s.m)
	// Elements strictly below the mean: ranks [0, r) where r is the first
	// global rank whose value is >= mean (equal-to-mean elements contribute
	// zero either way).
	r := sort.SearchFloat64s(s.sorted, mean)
	var c int
	var sumBelow float64
	for ; r > 0; r -= r & -r {
		c += s.cnt[r]
		sumBelow += s.sum[r]
	}
	return mean*float64(c) - sumBelow + (s.seqSum - sumBelow) - mean*float64(s.m-c)
}
