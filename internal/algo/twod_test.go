package algo

import (
	"math"
	"math/rand"
	"testing"

	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// Tests for the 2D code paths of the multi-dimensional mechanisms, which the
// generic contract tests only exercise at one setting.

func TestPrivelet2DNonSquare(t *testing.T) {
	x := vec.New(8, 16) // 8 rows, 16 cols
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = float64(rng.Intn(20))
	}
	a := Privelet{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestPrivelet2DNonPow2(t *testing.T) {
	x := vec.New(6, 10)
	for i := range x.Data {
		x.Data[i] = float64(i % 5)
	}
	a := Privelet{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 60 {
		t.Fatalf("len = %d", len(est))
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestHb2DExactAtHugeBudget(t *testing.T) {
	x := test2DVector(12, 3000) // non-power-of-two side
	a := Hb{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestGreedyH2DExactAtHugeBudget(t *testing.T) {
	x := test2DVector(16, 3000)
	a := &GreedyH{B: 2}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestGreedyH2DRequiresSquare(t *testing.T) {
	x := vec.New(8, 16)
	a := &GreedyH{B: 2}
	if _, err := a.Run(x, nil, 1, rand.New(rand.NewSource(6))); err == nil {
		t.Fatal("expected error for non-square 2D grid")
	}
}

func TestDAWA2DExactAtHugeBudget(t *testing.T) {
	x := test2DVector(16, 3000)
	a, _ := New("DAWA")
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 0.01 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestMWEM2D(t *testing.T) {
	x := test2DVector(8, 10_000)
	w := workload.RandomRange2D(8, 8, 40, rand.New(rand.NewSource(8)))
	a := &MWEM{T: 10, UpdateSweeps: 2}
	est, err := a.Run(x, w, 1.0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		if v < 0 {
			t.Fatal("negative mass")
		}
		total += v
	}
	if math.Abs(total-10_000) > 1 {
		t.Fatalf("total %v, want 10000", total)
	}
}

func TestAHP2D(t *testing.T) {
	x := test2DVector(16, 50_000)
	a := &AHP{Rho: 0.5, Eta: 0.35}
	est, err := a.Run(x, nil, 1.0, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	if math.Abs(total-50_000) > 25_000 {
		t.Fatalf("total %v far from 50000", total)
	}
}

func TestDPCube2DPartitionsFollowStructure(t *testing.T) {
	// A quadrant structure should be recovered at high budget.
	side := 16
	x := vec.New(side, side)
	for y := 0; y < side; y++ {
		for xx := 0; xx < side; xx++ {
			if y < side/2 && xx < side/2 {
				x.Data[y*side+xx] = 100
			}
		}
	}
	a := &DPCube{Rho: 0.5, MinCells: 10}
	est, err := a.Run(x, nil, 1e6, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestQuadTreeGeometricBudgetTotal(t *testing.T) {
	// The quadtree's per-level budgets must sum to eps (sequential
	// composition across levels: each record is in one node per level).
	x := test2DVector(16, 1000)
	a := &QuadTree{MaxHeight: 5}
	// Indirectly verified by running at eps so small that any budget
	// inflation would be glaring; mostly a smoke check for the 16x16 tree.
	est, err := a.Run(x, nil, 0.01, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 256 {
		t.Fatalf("len = %d", len(est))
	}
}

func TestUGridScaleEstimatorPath(t *testing.T) {
	x := test2DVector(16, 50_000)
	a := &UGrid{C: 10}
	a.SetScaleEstimator(0.05)
	est, err := a.Run(x, nil, 0.5, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	if math.Abs(total-50_000) > 25_000 {
		t.Fatalf("total %v far from 50000", total)
	}
}

func TestAGridScaleEstimatorPath(t *testing.T) {
	x := test2DVector(16, 50_000)
	a := &AGrid{C: 10, C2: 5, Rho: 0.5}
	a.SetScaleEstimator(0.05)
	if _, err := a.Run(x, nil, 0.5, rand.New(rand.NewSource(14))); err != nil {
		t.Fatal(err)
	}
}

func TestHybridTreeKDLevelsZeroFallsBackToQuadtree(t *testing.T) {
	x := test2DVector(8, 2000)
	a := &HybridTree{KDLevels: 0, MaxHeight: 8, StructRho: 0.1}
	est, err := a.Run(x, nil, 1e8, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 0.1 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestIdentity3D(t *testing.T) {
	// IDENTITY and UNIFORM are Multi-D per Table 1: verify a 3D vector works.
	x := vec.New(4, 4, 4)
	for i := range x.Data {
		x.Data[i] = 5
	}
	for _, a := range []Algorithm{Identity{}, Uniform{}} {
		est, err := a.Run(x, nil, 1e8, rand.New(rand.NewSource(16)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range est {
			if math.Abs(est[i]-5) > 0.01 {
				t.Fatalf("%s: cell %d = %v", a.Name(), i, est[i])
			}
		}
	}
}
