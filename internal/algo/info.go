// Mechanism descriptions for listings. This lives with the registry rather
// than in the release facade so that internal consumers (the serve layer's
// /v1/mechanisms endpoint, dpbench -list) can describe mechanisms without
// importing the facade: the facade wraps the internals, never the reverse.
package algo

import "dpbench/internal/noise"

// Composition kinds reported by Info.
const (
	// CompositionSequential marks mechanisms whose declared budget spends
	// all compose sequentially (they add up).
	CompositionSequential = "sequential"
	// CompositionParallel marks mechanisms whose declared spends all apply
	// to disjoint data partitions (they compose by maximum).
	CompositionParallel = "parallel"
	// CompositionMixed marks mechanisms that declare both kinds.
	CompositionMixed = "mixed"
	// CompositionUndeclared marks mechanisms without a declared plan.
	CompositionUndeclared = "undeclared"
)

// Info describes one registered mechanism for listings.
type Info struct {
	// Name is the benchmark identifier, e.g. "DAWA" or "MWEM*".
	Name string `json:"name"`
	// Dims lists the supported dimensionalities (subset of {1, 2}).
	Dims []int `json:"dims"`
	// DataDependent reports whether the mechanism's error distribution
	// depends on the input data (Section 3.1 of the paper).
	DataDependent bool `json:"data_dependent"`
	// Composition summarizes the mechanism's declared budget-composition
	// plan: "sequential", "parallel", or "mixed".
	Composition string `json:"composition"`
}

// Describe returns an Info for every registered mechanism, sorted by name.
func Describe() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		a, err := New(n)
		if err != nil {
			continue // unreachable: New resolves every name Names returns
		}
		var dims []int
		for _, k := range []int{1, 2} {
			if a.Supports(k) {
				dims = append(dims, k)
			}
		}
		out = append(out, Info{
			Name:          n,
			Dims:          dims,
			DataDependent: a.DataDependent(),
			Composition:   compositionKind(a),
		})
	}
	return out
}

// compositionKind summarizes a mechanism's declared composition plan.
func compositionKind(a Algorithm) string {
	pl, ok := a.(Planner)
	if !ok {
		return CompositionUndeclared
	}
	var seq, par bool
	for _, e := range pl.CompositionPlan() {
		if e.Kind == noise.Parallel {
			par = true
		} else {
			seq = true
		}
	}
	switch {
	case seq && par:
		return CompositionMixed
	case par:
		return CompositionParallel
	case seq:
		return CompositionSequential
	default:
		return CompositionUndeclared
	}
}
