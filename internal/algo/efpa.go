package algo

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/transform"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// EFPA is the enhanced Fourier perturbation algorithm of Acs, Castelluccia
// and Chen (ICDM 2012). It computes the orthonormal DFT of the 1D data
// vector, chooses how many leading coefficients k to retain via the
// exponential mechanism (scoring the total of expected perturbation error
// and truncation error), perturbs the retained coefficients with the Laplace
// mechanism, and reconstructs by the inverse transform. Half the budget
// selects k, half measures the coefficients.
//
// Under the orthonormal DFT (scaled by 1/sqrt(n)), adding one record changes
// each coefficient by 1/sqrt(n) in magnitude, so the L1 sensitivity of the
// 2k real components of the retained coefficients is at most 2k/sqrt(n), and
// by Parseval the truncation-error score has per-record sensitivity at most
// 1 — which is how the mechanism's noise is calibrated.
type EFPA struct{}

func init() { Register("EFPA", func() Algorithm { return EFPA{} }) }

// Name implements Algorithm.
func (EFPA) Name() string { return "EFPA" }

// Supports implements Algorithm; EFPA is 1D only (Table 1).
func (EFPA) Supports(k int) bool { return k == 1 }

// DataDependent implements Algorithm.
func (EFPA) DataDependent() bool { return true }

// Run implements Algorithm.
func (e EFPA) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(e, x, w, eps, rng)
}

// RunMeter implements Metered: half the budget selects k via the exponential
// mechanism, half perturbs the retained coefficients (one vector query of L1
// sensitivity 2k/sqrt(n), charged as a single scope).
func (e EFPA) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(e, x, w, m)
}

// efpaPlan caches the deterministic per-cell work — the orthonormal spectrum
// of the data and the full score table of the k-selection — so a trial is
// one exponential-mechanism draw plus 2k Laplace draws and an inverse FFT.
type efpaPlan struct {
	F          []complex128 // orthonormal DFT of the data (read-only)
	scores     []float64    // score table for the k selection (read-only)
	n          int
	epsK, epsC float64
	bufs       sync.Pool // *efpaScratch
}

// efpaScratch holds one trial's exponential-mechanism weights, retained
// coefficient buffer, and inverse-transform output.
type efpaScratch struct {
	weights []float64
	kept    []complex128
	inv     []complex128
}

// Plan implements Algorithm.
func (EFPA) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 1 {
		return nil, fmt.Errorf("efpa: 1D only, got %dD", x.K())
	}
	n := x.N()
	epsK := eps / 2
	epsC := eps / 2

	// Orthonormal DFT.
	F := transform.FFTReal(x.Data)
	scale := 1 / math.Sqrt(float64(n))
	for i := range F {
		F[i] *= complex(scale, 0)
	}

	// Tail energy (L2^2 of dropped coefficients) for every k, computed as a
	// suffix sum of squared magnitudes.
	energy := make([]float64, n+1) // energy[k] = sum_{j>=k} |F_j|^2
	for k := n - 1; k >= 0; k-- {
		m := cmplx.Abs(F[k])
		energy[k] = energy[k+1] + m*m
	}

	// Score(k) = -(truncation RMS + expected Laplace noise RMS); per-record
	// sensitivity of the truncation term is 1 by Parseval.
	scores := make([]float64, n)
	for k := 1; k <= n; k++ {
		trunc := math.Sqrt(energy[k])
		lapScale := 2 * float64(k) / (math.Sqrt(float64(n)) * epsC)
		// RMS of 2k Laplace components with common scale b is b*sqrt(2*2k).
		noiseErr := lapScale * math.Sqrt(4*float64(k))
		scores[k-1] = -(trunc + noiseErr)
	}
	p := &efpaPlan{F: F, scores: scores, n: n, epsK: epsK, epsC: epsC}
	p.bufs.New = func() any {
		return &efpaScratch{
			weights: make([]float64, n),
			kept:    make([]complex128, n),
			inv:     make([]complex128, n),
		}
	}
	return p, nil
}

//dp:hotpath
func (p *efpaPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*efpaScratch)
	defer p.bufs.Put(sc)
	k := 1 + m.ExpMechBuf("k", p.scores, 1, p.epsK, sc.weights)
	kept := efpaPerturbInto(sc.kept, p.F, p.n, k, p.epsC, m)
	inv := transform.IFFTInto(sc.inv, kept)
	invScale := math.Sqrt(float64(p.n))
	for i := 0; i < p.n; i++ {
		out[i] = real(inv[i]) * invScale
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (EFPA) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "k", Kind: noise.Sequential},
		{Label: "coeffs", Kind: noise.Parallel},
	}
}

// efpaPerturb perturbs the k retained orthonormal-DFT coefficients of a
// real-valued input and restores Hermitian symmetry, so the inverse
// transform is real-valued for EVERY k:
//
//   - the DC bin (and, for even n, the Nyquist bin) of a real signal is
//     real, so only the real part keeps its noise;
//   - for every retained pair (j, n-j) the mirror slot is conj(kept[j]),
//     even when k > n/2 and the mirror slot drew its own noise (that draw is
//     discarded — post-processing — so the noise stream is unchanged).
//
// Without the overwrite, a k past n/2 left kept[j] and kept[n-j]
// independently perturbed and the reconstruction picked up spurious
// imaginary mass that taking real() silently folded away.
func efpaPerturb(F []complex128, n, k int, epsC float64, m *noise.Meter) []complex128 {
	return efpaPerturbInto(make([]complex128, n), F, n, k, epsC, m)
}

// efpaPerturbInto is efpaPerturb writing into a caller-provided (possibly
// dirty) buffer of length n, which is zeroed first so truncated slots stay
// truncated across pooled reuses.
func efpaPerturbInto(kept []complex128, F []complex128, n, k int, epsC float64, m *noise.Meter) []complex128 {
	for i := range kept {
		kept[i] = 0
	}
	lapScale := 2 * float64(k) / (math.Sqrt(float64(n)) * epsC)
	for j := 0; j < k; j++ {
		kept[j] = F[j] + complex(m.LaplacePar("coeffs", lapScale, epsC), m.LaplacePar("coeffs", lapScale, epsC))
	}
	kept[0] = complex(real(kept[0]), 0)
	if n%2 == 0 && n/2 < k {
		kept[n/2] = complex(real(kept[n/2]), 0)
	}
	for j := 1; 2*j < n; j++ {
		if j < k {
			kept[n-j] = cmplx.Conj(kept[j])
		}
	}
	return kept
}
