package algo

import (
	"fmt"
	"math/rand"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/tree"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// SF is the StructureFirst algorithm of Xu et al. (VLDBJ 2013). It fixes the
// number of histogram buckets at k = ceil(n/10) (the authors' guideline,
// which the benchmark adopts as a trained default — Section 6.4), selects
// the k-1 bucket boundaries privately with the exponential mechanism using a
// squared-error cost, and measures bucket counts with the remaining budget.
//
// This implementation includes the modification from Section 6.2 of Xu et
// al. that the benchmark's experiments use: a small hierarchy is built
// inside each bucket (rather than assuming uniformity), which restores
// consistency (Theorem 7 of the benchmark paper).
//
// The boundary-selection score is a function of squared counts, so its
// sensitivity depends on the count upper bound F — scale-derived side
// information, which is why SF is the one algorithm that is not
// scale-epsilon exchangeable (Theorem 10).
type SF struct {
	// Rho is the budget fraction for structure selection.
	Rho float64
	// BucketDivisor sets k = ceil(n/BucketDivisor); the authors recommend 10.
	BucketDivisor int
	// Hierarchical enables the consistency modification (in-bucket trees).
	Hierarchical bool
	// ScaleRho, when positive, estimates F = scale privately with this
	// budget fraction instead of using true scale as side information.
	ScaleRho float64
}

func init() {
	Register("SF", func() Algorithm { return &SF{Rho: 0.5, BucketDivisor: 10, Hierarchical: true} })
}

// Name implements Algorithm.
func (s *SF) Name() string { return "SF" }

// Supports implements Algorithm; SF is 1D only (Table 1).
func (s *SF) Supports(k int) bool { return k == 1 }

// DataDependent implements Algorithm.
func (s *SF) DataDependent() bool { return true }

// SetScaleEstimator implements SideInfoUser.
func (s *SF) SetScaleEstimator(rho float64) { s.ScaleRho = rho }

// Run implements Algorithm.
func (s *SF) Run(x *vec.Vector, w *workload.Workload, eps float64, rng *rand.Rand) ([]float64, error) {
	return runPlan(s, x, w, eps, rng)
}

// RunMeter implements Metered: the optional scale estimate and the k-1
// boundary selections compose sequentially; the per-bucket measurements run
// over disjoint buckets, so each bucket (a flat count, or a whole in-bucket
// hierarchy under the consistency modification) gets the full eps2 and the
// buckets compose in parallel.
func (s *SF) RunMeter(x *vec.Vector, w *workload.Workload, m *noise.Meter) ([]float64, error) {
	return runPlanMeter(s, x, w, m)
}

// sfPlan hoists the prefix and squared-prefix tables the boundary scores are
// built from, plus the resolved parameters. Boundary selection and the
// in-bucket hierarchies draw fresh noise per trial; bucket widths are
// near-uniform random (tiny per-boundary selection budgets), so the widths
// never repeat enough to cache — each trial instead rebuilds its in-bucket
// hierarchies into a reusable flat-tree arena, which is allocation-free at
// steady state.
type sfPlan struct {
	s          *SF
	data       []float64
	prefix, sq []float64
	n, k       int
	eps        float64
	scale      float64
	eps1, eps2 float64   // resolved at plan time when the scale is public
	bufs       sync.Pool // *sfScratch
}

// sfScratch is one trial's selection and measurement state, including the
// rebuildable flat tree the in-bucket hierarchies are constructed into.
type sfScratch struct {
	bounds []int
	scores []float64
	expBuf []float64
	budget []float64
	sub    noise.Meter
	ftree  tree.Flat
	fsc    *tree.Scratch
}

// Plan implements Algorithm.
func (s *SF) Plan(x *vec.Vector, _ *workload.Workload, eps float64) (Plan, error) {
	if err := validate(x, eps); err != nil {
		return nil, err
	}
	if x.K() != 1 {
		return nil, fmt.Errorf("sf: 1D only, got %dD", x.K())
	}
	rho := s.Rho
	if rho <= 0 || rho >= 1 {
		rho = 0.5
	}
	div := s.BucketDivisor
	if div < 1 {
		div = 10
	}
	n := x.N()
	k := (n + div - 1) / div
	if k < 1 {
		k = 1
	}
	data := x.Data
	sq := make([]float64, n+1)
	for i, v := range data {
		sq[i+1] = sq[i] + v*v
	}
	p := &sfPlan{
		s: s, data: data, prefix: prefixSums(data), sq: sq,
		n: n, k: k, eps: eps,
		// F (the bucket-count bound) defaults to the dataset scale as
		// declared public side information; ScaleRho > 0 replaces it with
		// a metered per-trial estimate in Execute.
		scale: x.Scale(), //dp:public Pside declared side information (HayMMCZ16 Principle 7)
	}
	if s.ScaleRho <= 0 {
		p.eps1, p.eps2 = sfBudgetSplit(rho, eps, k)
	}
	p.bufs.New = func() any {
		return &sfScratch{
			bounds: make([]int, 0, k+1),
			scores: make([]float64, n),
			expBuf: make([]float64, n),
			budget: make([]float64, 0, 64),
			fsc:    tree.NewScratch(),
		}
	}
	return p, nil
}

// sfBudgetSplit applies the single-bucket budget fix: with no boundaries to
// select, the whole (remaining) budget goes to measurement.
func sfBudgetSplit(rho, epsLeft float64, k int) (eps1, eps2 float64) {
	if k <= 1 {
		return 0, epsLeft
	}
	return rho * epsLeft, (1 - rho) * epsLeft
}

//dp:hotpath
func (p *sfPlan) Execute(m *noise.Meter, out []float64) error {
	sc := p.bufs.Get().(*sfScratch)
	defer p.bufs.Put(sc)

	eps1, eps2 := p.eps1, p.eps2
	// F bounds any bucket count; scale is the trivial bound. Side info
	// unless ScaleRho directs a private estimate (then F and the stage
	// budgets depend on this trial's draw).
	F := p.scale
	if p.s.ScaleRho > 0 {
		epsF := p.eps * p.s.ScaleRho
		F += m.Laplace("scale", 1/epsF, epsF)
		if F < 1 {
			F = 1
		}
		rho := p.s.Rho
		if rho <= 0 || rho >= 1 {
			rho = 0.5
		}
		eps1, eps2 = sfBudgetSplit(rho, p.eps-epsF, p.k)
	}
	if F <= 0 {
		F = 1
	}

	bounds := p.selectBoundaries(sc, eps1, F, m)

	if !p.s.Hierarchical {
		for b := 0; b+1 < len(bounds); b++ {
			lo, hi := bounds[b], bounds[b+1]
			est := p.prefix[hi] - p.prefix[lo] + m.LaplacePar("counts", 1/eps2, eps2)
			if est < 0 {
				est = 0
			}
			uniformSpread(out, lo, hi, est)
		}
		return m.Err()
	}
	// Consistency modification: binary hierarchy within every bucket
	// (disjoint buckets compose in parallel, so each gets the full eps2).
	// Every bucket's tree runs in its own parallel sub-meter: the per-level
	// spends within a bucket compose sequentially to eps2, and the buckets'
	// totals compose by maximum.
	for b := 0; b+1 < len(bounds); b++ {
		lo, hi := bounds[b], bounds[b+1]
		width := hi - lo
		if err := sc.ftree.RebuildInterval(width, 2); err != nil {
			return err
		}
		h := sc.ftree.Height()
		budget := sc.budget[:0]
		for l := 0; l < h; l++ {
			budget = append(budget, eps2/float64(h))
		}
		sc.budget = budget
		// Pin the pooled tree scratch to a local for the whole
		// compute→measure→infer sequence: the raw in-bucket sums leave it
		// only through MeasureInto's metered draws.
		fsc := sc.fsc
		m.ResetSub(&sc.sub, "bucket", eps2, true)
		sc.ftree.ComputeSums(p.data[lo:hi], fsc)
		sc.ftree.MeasureInto(&sc.sub, fsc, budget)
		sc.ftree.InferInto(fsc, out[lo:hi])
		sc.sub.Close()
	}
	return m.Err()
}

// CompositionPlan implements Planner.
func (s *SF) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "boundary", Kind: noise.Sequential},
		{Label: "counts", Kind: noise.Parallel},
		{Label: "bucket", Kind: noise.Parallel},
	}
}

// selectBoundaries picks k-1 interior boundaries left to right with the
// exponential mechanism. The score of placing the next boundary at position
// m is the negated sum of squared deviations of the bucket it closes,
// normalized by F so the per-record sensitivity is bounded by a constant.
// The prefix tables were built at plan time; the score and weight buffers
// come from the trial scratch.
func (p *sfPlan) selectBoundaries(sc *sfScratch, eps1, F float64, m *noise.Meter) []int {
	n, k := p.n, p.k
	bounds := append(sc.bounds[:0], 0)
	defer func() { sc.bounds = bounds }()
	if k <= 1 {
		bounds = append(bounds, n)
		return bounds
	}
	epsPer := eps1 / float64(k-1)
	sse := func(lo, hi int) float64 {
		if hi <= lo {
			return 0
		}
		w := float64(hi - lo)
		total := p.prefix[hi] - p.prefix[lo]
		return (p.sq[hi] - p.sq[lo]) - total*total/w
	}
	lo := 0
	for b := 1; b < k; b++ {
		remaining := k - b // buckets still to be closed after this one
		hiLimit := n - remaining
		if hiLimit <= lo+1 {
			// Forced placement: there is only one legal position, the choice
			// reveals nothing, and no draw happens. Charge the boundary's
			// allocation anyway so the ledger matches the declared plan.
			m.Charge("boundary", epsPer)
			bounds = append(bounds, lo+1)
			lo++
			continue
		}
		scores := sc.scores[:hiLimit-lo]
		for mid := lo + 1; mid <= hiLimit; mid++ {
			// Cost of closing the bucket at mid plus the remaining SSE
			// amortized over the buckets still to come (the lookahead term
			// keeps the greedy choice from always closing tiny buckets).
			// Normalizing by F bounds the per-record sensitivity by a
			// constant, since one record changes sse by at most ~4F.
			cost := sse(lo, mid) + sse(mid, n)/float64(remaining)
			scores[mid-lo-1] = -cost / (4 * F)
		}
		pick := m.ExpMechBuf("boundary", scores, 1, epsPer, sc.expBuf[:len(scores)])
		mid := lo + 1 + pick
		bounds = append(bounds, mid)
		lo = mid
	}
	bounds = append(bounds, n)
	return bounds
}

func prefixSums(data []float64) []float64 {
	prefix := make([]float64, len(data)+1)
	for i, v := range data {
		prefix[i+1] = prefix[i] + v
	}
	return prefix
}
