package algo

import (
	"math"
	"math/rand"
	"testing"

	"dpbench/internal/noise"
	"dpbench/internal/stats"
	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

func TestIdentityIsUnbiased(t *testing.T) {
	// Principle 9 / Finding 9: the Laplace mechanism is unbiased, so the
	// mean of many runs converges to the true counts.
	x, _ := vec.FromData([]float64{10, 20, 30, 40}, 4)
	a := Identity{}
	const trials = 5000
	sums := make([]float64, 4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < trials; trial++ {
		est, err := a.Run(x, nil, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range est {
			sums[i] += v
		}
	}
	for i := range sums {
		mean := sums[i] / trials
		if math.Abs(mean-x.Data[i]) > 0.2 {
			t.Fatalf("cell %d mean %v, want %v", i, mean, x.Data[i])
		}
	}
}

func TestIdentityNoiseVariance(t *testing.T) {
	// Var(Laplace(1/eps)) = 2/eps^2.
	x := vec.New(1)
	a := Identity{}
	eps := 0.5
	const trials = 50_000
	var sumSq float64
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < trials; trial++ {
		est, _ := a.Run(x, nil, eps, rng)
		sumSq += est[0] * est[0]
	}
	got := sumSq / trials
	want := 2 / (eps * eps)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("noise variance %v, want %v", got, want)
	}
}

func TestUniformOutputIsFlat(t *testing.T) {
	x, _ := vec.FromData([]float64{100, 0, 0, 0}, 4)
	a := Uniform{}
	est, err := a.Run(x, nil, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(est); i++ {
		if est[i] != est[0] {
			t.Fatal("UNIFORM output is not flat")
		}
	}
	if est[0] < 0 {
		t.Fatal("UNIFORM output negative after clamping")
	}
}

func TestUniformNearExactOnUniformData(t *testing.T) {
	// On truly uniform data UNIFORM at high eps should be nearly exact —
	// the one regime where the baseline is unbeatable (Section 5.4).
	n := 128
	x := vec.New(n)
	for i := range x.Data {
		x.Data[i] = 50
	}
	a := Uniform{}
	est, _ := a.Run(x, nil, 1e6, rand.New(rand.NewSource(4)))
	for i := range est {
		if math.Abs(est[i]-50) > 0.01 {
			t.Fatalf("cell %d = %v, want ~50", i, est[i])
		}
	}
}

func TestPriveletExactAtHugeBudget(t *testing.T) {
	x := test1DVector(128, 4000)
	a := Privelet{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestPriveletNonPow2Domain(t *testing.T) {
	x := test1DVector(100, 1000) // padded internally to 128
	a := Privelet{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 100 {
		t.Fatalf("len = %d, want 100", len(est))
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestPrivelet2DExactAtHugeBudget(t *testing.T) {
	x := test2DVector(16, 2000)
	a := Privelet{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-3 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestHierarchyBeatsIdentityOnPrefix(t *testing.T) {
	// The core motivation for hierarchical aggregation (Section 3.1): on a
	// large domain, H/Hb answer long range queries with far less error.
	const (
		n      = 1024
		eps    = 0.1
		trials = 10
	)
	x := test1DVector(n, 100_000)
	w := workload.Prefix(n)
	errOf := func(a Algorithm) float64 {
		var total float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			est, err := a.Run(x, w, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += scaledPrefixError(t, est, x, w)
		}
		return total / trials
	}
	idErr := errOf(Identity{})
	hErr := errOf(&H{B: 2})
	hbErr := errOf(Hb{})
	if hErr >= idErr {
		t.Fatalf("H error %v not below IDENTITY %v on Prefix(1024)", hErr, idErr)
	}
	if hbErr >= idErr {
		t.Fatalf("HB error %v not below IDENTITY %v on Prefix(1024)", hbErr, idErr)
	}
}

func TestOptimalBranching(t *testing.T) {
	if b := OptimalBranching(2, 1); b != 2 {
		t.Fatalf("n=2: b=%d", b)
	}
	// Larger domains favor branching factors well above 2 (Qardaji et al.).
	if b := OptimalBranching(4096, 1); b <= 2 {
		t.Fatalf("n=4096: b=%d, want > 2", b)
	}
	// The returned b never exceeds the domain.
	if b := OptimalBranching(10, 1); b > 10 {
		t.Fatalf("b=%d > n", b)
	}
}

func TestGreedyHWeightsFavorUsedLevels(t *testing.T) {
	// For the Prefix workload every level is exercised; the root level is in
	// nearly every decomposition of long prefixes.
	w := workload.Prefix(64)
	weights := CanonicalLevelWeights(64, 2, w)
	if weights == nil {
		t.Fatal("nil weights for a valid 1D workload")
	}
	var total float64
	for _, v := range weights {
		total += v
	}
	if total == 0 {
		t.Fatal("all-zero canonical weights")
	}
	// Sanity: decomposing all 64 prefixes uses at most 2*log(n) nodes each.
	if total > float64(64*2*7) {
		t.Fatalf("total canonical nodes %v too large", total)
	}
}

func TestCanonicalLevelWeightsNilCases(t *testing.T) {
	if w := CanonicalLevelWeights(64, 2, nil); w != nil {
		t.Fatal("want nil for nil workload")
	}
	w2 := workload.Prefix(32) // wrong domain
	if w := CanonicalLevelWeights(64, 2, w2); w != nil {
		t.Fatal("want nil for mismatched domain")
	}
}

func TestMWEMRespectsRoundBudget(t *testing.T) {
	// More rounds at high signal should (weakly) improve accuracy; at the
	// least, both settings must produce valid estimates with total ~ scale.
	x := test1DVector(64, 50_000)
	w := workload.Prefix(64)
	for _, T := range []int{2, 10, 30} {
		a := &MWEM{T: T, UpdateSweeps: 2}
		est, err := a.Run(x, w, 1.0, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, v := range est {
			if v < 0 {
				t.Fatalf("T=%d: negative mass %v", T, v)
			}
			total += v
		}
		if math.Abs(total-50_000) > 1 {
			t.Fatalf("T=%d: total %v, want 50000 (MW renormalizes to scale)", T, total)
		}
	}
}

func TestMWEMStarUsesNoisyScale(t *testing.T) {
	// MWEM* spends 5% of budget estimating scale, so its total deviates
	// slightly from the truth but stays positive.
	x := test1DVector(64, 10_000)
	w := workload.Prefix(64)
	a, _ := New("MWEM*")
	est, err := a.Run(x, w, 0.1, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
	if math.Abs(total-10_000) > 5_000 {
		t.Fatalf("noisy-scale total %v implausibly far from 10000", total)
	}
}

func TestDefaultTProfileMonotone(t *testing.T) {
	prev := 0
	for _, p := range []float64{10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		cur := DefaultTProfile(p)
		if cur < prev {
			t.Fatalf("T profile not monotone at product %v: %d < %d", p, cur, prev)
		}
		prev = cur
	}
	if DefaultTProfile(10) < 1 || DefaultTProfile(1e9) > 200 {
		t.Fatal("T outside the paper's [1,200] range")
	}
}

func TestAHPClustersUniformRegions(t *testing.T) {
	// A two-level step function should be recovered well by AHP at decent
	// budget: cluster + fresh counts has far less noise than per-cell.
	n := 128
	x := vec.New(n)
	for i := 0; i < n/2; i++ {
		x.Data[i] = 1000
	}
	a := &AHP{Rho: 0.5, Eta: 0.35}
	est, err := a.Run(x, nil, 1.0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// Mean over the two halves should be clearly separated.
	var left, right float64
	for i := 0; i < n/2; i++ {
		left += est[i]
		right += est[i+n/2]
	}
	if left <= right*5 {
		t.Fatalf("AHP failed to separate the step: left=%v right=%v", left, right)
	}
}

func TestGreedyClusterGrouping(t *testing.T) {
	vals := []float64{0, 0.1, 0.2, 10, 10.1, 20}
	order := []int{0, 1, 2, 3, 4, 5}
	bounds := greedyClusterBounds(vals, order, 0.5, nil) // spread tolerance 1.0
	if len(bounds) != 4 {
		t.Fatalf("got %d clusters, want 3: bounds %v", len(bounds)-1, bounds)
	}
	if want := []int{0, 3, 5, 6}; !equalInts(bounds, want) {
		t.Fatalf("got cluster bounds %v, want %v", bounds, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDAWARecoversPiecewiseConstant(t *testing.T) {
	// DAWA's partition should find the two constant pieces and beat
	// IDENTITY comfortably on this shape.
	n := 256
	x := vec.New(n)
	for i := 0; i < n/2; i++ {
		x.Data[i] = 400
	}
	for i := n / 2; i < n; i++ {
		x.Data[i] = 4
	}
	w := workload.Prefix(n)
	var dawaErr, idErr float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 40)))
		d, _ := New("DAWA")
		est, err := d.Run(x, w, 0.05, rng)
		if err != nil {
			t.Fatal(err)
		}
		dawaErr += scaledPrefixError(t, est, x, w)
		rng2 := rand.New(rand.NewSource(int64(trial + 40)))
		est2, _ := Identity{}.Run(x, w, 0.05, rng2)
		idErr += scaledPrefixError(t, est2, x, w)
	}
	if dawaErr >= idErr {
		t.Fatalf("DAWA %v not below IDENTITY %v on piecewise-constant data", dawaErr/trials, idErr/trials)
	}
}

func TestDAWAPartitionCoversDomain(t *testing.T) {
	d := &DAWA{Rho: 0.5, B: 2} // eps1 = eps2 = 0.5 at eps = 1
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i % 8)
	}
	x, err := vec.FromData(data, 64)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := d.Plan(x, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dp := pl.(*dawaPlan)
	sc := dp.bufs.Get().(*dawaScratch)
	bounds := dp.partition(sc, noise.NewMeter(1, rand.New(rand.NewSource(12))))
	if bounds[0] != 0 || bounds[len(bounds)-1] != 64 {
		t.Fatalf("bounds do not span domain: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
	}
}

func TestDAWA2DRequiresSquare(t *testing.T) {
	x := vec.New(8, 16)
	d, _ := New("DAWA")
	if _, err := d.Run(x, nil, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for non-square 2D domain")
	}
}

func TestQuadTreeTruncationBias(t *testing.T) {
	// With a tight height cap, leaves aggregate many cells; on highly
	// non-uniform data the uniformity spread leaves visible bias even at
	// huge budget (Theorem 5).
	x := test2DVector(16, 10_000)
	a := &QuadTree{MaxHeight: 2}
	est, err := a.Run(x, nil, 1e8, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range est {
		d := est[i] - x.Data[i]
		mse += d * d
	}
	if mse < 1 {
		t.Fatalf("truncated quadtree suspiciously exact (mse=%v); bias expected", mse)
	}
	// Full-height quadtree is consistent: near exact at huge budget.
	b := &QuadTree{MaxHeight: 10}
	est2, err := b.Run(x, nil, 1e8, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est2 {
		if math.Abs(est2[i]-x.Data[i]) > 0.01 {
			t.Fatalf("full quadtree cell %d: %v want %v", i, est2[i], x.Data[i])
		}
	}
}

func TestHybridTreeRuns(t *testing.T) {
	x := test2DVector(16, 5000)
	a, _ := New("HYBRIDTREE")
	est, err := a.Run(x, nil, 0.5, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	// Root-level measurement keeps the total in the right ballpark.
	if math.Abs(total-5000) > 2500 {
		t.Fatalf("total %v far from 5000", total)
	}
}

func TestUGridSizeRule(t *testing.T) {
	if m := gridSize(1e6, 1.0, 10, 1000); m != 316 {
		t.Fatalf("gridSize = %d, want 316 (sqrt(1e6*1/10))", m)
	}
	if m := gridSize(100, 0.01, 10, 64); m != 1 {
		t.Fatalf("tiny signal grid = %d, want 1", m)
	}
	if m := gridSize(1e12, 1, 10, 64); m != 64 {
		t.Fatalf("grid clamped = %d, want 64", m)
	}
}

func TestGridBounds(t *testing.T) {
	b := gridBounds(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if got := gridBounds(4, 10); len(got) != 5 {
		t.Fatalf("m>n bounds = %v", got)
	}
}

func TestUGridUniformWithinCells(t *testing.T) {
	x := test2DVector(16, 100_000)
	a := &UGrid{C: 10}
	est, err := a.Run(x, nil, 0.001, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny eps*scale the grid is coarse; output must be blocky
	// (few distinct values).
	distinct := map[float64]bool{}
	for _, v := range est {
		distinct[v] = true
	}
	if len(distinct) > 64 {
		t.Fatalf("%d distinct values; expected coarse blocks", len(distinct))
	}
}

func TestAGridTotalsTracksLevel1(t *testing.T) {
	x := test2DVector(32, 200_000)
	a := &AGrid{C: 10, C2: 5, Rho: 0.5}
	est, err := a.Run(x, nil, 0.5, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	if math.Abs(total-200_000) > 20_000 {
		t.Fatalf("total %v far from 200000", total)
	}
}

func TestPHPBudgetSplit(t *testing.T) {
	x := test1DVector(64, 10_000)
	a := &PHP{Rho: 0.5}
	est, err := a.Run(x, nil, 1.0, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		if v < 0 {
			t.Fatal("negative bucket estimate after clamping")
		}
		total += v
	}
	if math.Abs(total-10_000) > 2000 {
		t.Fatalf("total %v far from 10000", total)
	}
}

func TestEFPAKeepsAllCoefficientsAtHugeBudget(t *testing.T) {
	// Theorem 2: as eps grows EFPA retains every coefficient (k = n) and
	// the reconstruction becomes exact.
	x := test1DVector(64, 5000)
	a := EFPA{}
	est, err := a.Run(x, nil, 1e9, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 1e-2 {
			t.Fatalf("cell %d: %v want %v", i, est[i], x.Data[i])
		}
	}
}

func TestEFPACompressesSmoothData(t *testing.T) {
	// A slowly varying signal is compressible: retaining a few Fourier
	// coefficients reconstructs the cells far better than per-cell Laplace
	// noise. (On the Prefix workload the advantage narrows because EFPA's
	// residual error is coherent across cells, so the comparison here is
	// cell-level L2, i.e. the Identity workload.)
	n := 256
	x := vec.New(n)
	for i := range x.Data {
		x.Data[i] = 500 * (1 + math.Sin(2*math.Pi*float64(i)/float64(n)))
	}
	cellRMSE := func(est []float64) float64 {
		var mse float64
		for i := range est {
			d := est[i] - x.Data[i]
			mse += d * d
		}
		return math.Sqrt(mse / float64(n))
	}
	var efpaErr, idErr []float64
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 60)))
		est, err := EFPA{}.Run(x, nil, 0.01, rng)
		if err != nil {
			t.Fatal(err)
		}
		efpaErr = append(efpaErr, cellRMSE(est))
		rng2 := rand.New(rand.NewSource(int64(trial + 60)))
		est2, _ := Identity{}.Run(x, nil, 0.01, rng2)
		idErr = append(idErr, cellRMSE(est2))
	}
	if stats.Mean(efpaErr) >= stats.Mean(idErr)/2 {
		t.Fatalf("EFPA cell RMSE %v not clearly below IDENTITY %v on smooth data", stats.Mean(efpaErr), stats.Mean(idErr))
	}
}

func TestSFBucketCount(t *testing.T) {
	s := &SF{Rho: 0.5, BucketDivisor: 10}
	data := make([]float64, 100)
	x, err := vec.FromData(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := s.Plan(x, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	sp := pl.(*sfPlan)
	sc := sp.bufs.Get().(*sfScratch)
	bounds := sp.selectBoundaries(sc, 1.0, 100, noise.NewMeter(2, rand.New(rand.NewSource(19))))
	if len(bounds) != 11 {
		t.Fatalf("%d boundaries, want 11 (k=10 buckets)", len(bounds))
	}
	if bounds[0] != 0 || bounds[10] != 100 {
		t.Fatalf("bounds endpoints wrong: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", bounds)
		}
	}
}

func TestSFConsistentWithHierarchicalModification(t *testing.T) {
	x := test1DVector(64, 10_000)
	a := &SF{Rho: 0.5, BucketDivisor: 10, Hierarchical: true}
	est, err := a.Run(x, nil, 1e8, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-x.Data[i]) > 0.01 {
			t.Fatalf("cell %d: %v want %v (SF with modification is consistent)", i, est[i], x.Data[i])
		}
	}
}

func TestSFInconsistentWithoutModification(t *testing.T) {
	// Without the in-bucket hierarchy, buckets spread uniformly and a
	// strictly increasing dataset keeps bias at any budget (Theorem 7).
	n := 64
	x := vec.New(n)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	a := &SF{Rho: 0.5, BucketDivisor: 10, Hierarchical: false}
	est, err := a.Run(x, nil, 1e8, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := range est {
		d := est[i] - x.Data[i]
		mse += d * d
	}
	if mse < 1 {
		t.Fatalf("unmodified SF suspiciously exact (mse=%v); bias expected", mse)
	}
}

func TestDPCubeTwoPhaseEstimate(t *testing.T) {
	x := test1DVector(128, 50_000)
	a := &DPCube{Rho: 0.5, MinCells: 10}
	est, err := a.Run(x, nil, 1.0, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range est {
		total += v
	}
	if math.Abs(total-50_000) > 10_000 {
		t.Fatalf("total %v far from 50000", total)
	}
}
