package algo

// mulSegTree maintains MWEM's raw multiplicative-weight vector under
// O(log n) range-multiply and range-sum, with lazy multiplier propagation.
// The history replay applies one multiplicative step per measurement per
// sweep; on the flat vector that costs O(range) per step, which makes the
// replay the single hottest loop of the whole benchmark sweep at large round
// counts. The tree drops it to O(log n) per step, with one O(n)
// materialization per selection round (the exponential mechanism needs the
// whole vector).
//
// Lazy propagation reassociates the per-cell multiplier products (a cell's
// pending factors are combined before they reach it), so values agree with
// the sequential in-place loop only to ~1e-12 relative — the same class of
// exact-algebra rewrite as the deferred renormalization scalar, covered by
// the MWEM golden tests' 1e-9 pin against the seed implementation. All
// operations are deterministic and allocation-free after construction.
type mulSegTree struct {
	n, m int       // n cells, m = power-of-two leaf count (>= 2)
	sum  []float64 // 1-indexed segment sums, fully updated at each node
	lazy []float64 // pending multiplier for the node's children (internal nodes)

	// dirt[v] marks internal nodes whose subtree may hold a pending
	// multiplier (lazy != 1 at the node or any descendant). Materialization
	// walks only dirty subtrees: between selection rounds MWEM's updates
	// touch O(history * log n) nodes, so the full-tree push loop — formerly
	// the dominant cost of PrefixTableInto — shrinks to the touched paths.
	// Every write that makes a lazy non-trivial marks the node and (via the
	// descent paths) its ancestors, so a clean bit proves the subtree's
	// leaves are final. Skipped pushes are all f == 1 no-ops, so the
	// materialized values are bit-identical to the full loop's.
	dirt []bool

	// Scratch for the fused sum-then-multiply descent: the canonical cover
	// nodes of the queried range and the partially-covered ancestors.
	cover []int32
	path  []int32
}

func newMulSegTree(n int) *mulSegTree {
	m := 2
	for m < n {
		m <<= 1
	}
	depth := 1
	for s := m; s > 1; s >>= 1 {
		depth++
	}
	t := &mulSegTree{
		n: n, m: m,
		sum: make([]float64, 2*m), lazy: make([]float64, 2*m),
		dirt:  make([]bool, m),
		cover: make([]int32, 0, 2*depth), path: make([]int32, 0, 2*depth),
	}
	// Establish the clean-tree invariant (all lazy 1, all dirt false) that
	// fill relies on to skip its clearing passes.
	for i := range t.lazy {
		t.lazy[i] = 1
	}
	return t
}

// fill initializes every cell of [0, n) to v and clears all pending lazies.
func (t *mulSegTree) fill(v float64) {
	for i := 0; i < t.n; i++ {
		t.sum[t.m+i] = v
	}
	for i := t.n; i < t.m; i++ {
		t.sum[t.m+i] = 0
	}
	for i := t.m - 1; i >= 1; i-- {
		t.sum[i] = t.sum[2*i] + t.sum[2*i+1]
	}
	// dirt[1] clear proves every internal lazy is already 1 (the invariant
	// pushDirtyTree restores), so the steady-state trial reset — fill after
	// a full materialization — skips both clearing passes.
	if t.dirt[1] {
		for i := range t.lazy {
			t.lazy[i] = 1
		}
		for i := range t.dirt {
			t.dirt[i] = false
		}
	}
}

// Total returns the current sum over all cells.
func (t *mulSegTree) Total() float64 { return t.sum[1] }

// push applies a node's pending multiplier to its children.
func (t *mulSegTree) push(v int) {
	f := t.lazy[v]
	if f == 1 {
		return
	}
	l, r := 2*v, 2*v+1
	t.sum[l] *= f
	t.sum[r] *= f
	if l < t.m {
		t.lazy[l] *= f
		t.lazy[r] *= f
		t.dirt[l], t.dirt[r] = true, true
	}
	t.lazy[v] = 1
}

// MulRange multiplies cells [lo, hi) by f.
func (t *mulSegTree) MulRange(lo, hi int, f float64) { t.mul(1, 0, t.m, lo, hi, f) }

func (t *mulSegTree) mul(v, l, r, lo, hi int, f float64) {
	if hi <= l || r <= lo {
		return
	}
	if lo <= l && r <= hi {
		t.sum[v] *= f
		if v < t.m {
			t.lazy[v] *= f
			t.dirt[v] = true
		}
		return
	}
	t.push(v)
	t.dirt[v] = true
	mid := (l + r) / 2
	t.mul(2*v, l, mid, lo, hi, f)
	t.mul(2*v+1, mid, r, lo, hi, f)
	t.sum[v] = t.sum[2*v] + t.sum[2*v+1]
}

// CollectRange returns the sum of cells [lo, hi) while recording the range's
// canonical cover nodes and their partially-covered ancestors, so
// ApplyCollected can multiply the same range without a second descent.
// MWEM's update step is exactly this pair: read the range sum, derive the
// multiplicative factor, apply it.
func (t *mulSegTree) CollectRange(lo, hi int) float64 {
	t.cover = t.cover[:0]
	t.path = t.path[:0]
	return t.collect(1, 0, t.m, lo, hi)
}

func (t *mulSegTree) collect(v, l, r, lo, hi int) float64 {
	if lo == 0 {
		return t.collectPrefix(hi)
	}
	return t.collectAny(v, l, r, lo, hi)
}

// collectPrefix is the loop form of collect for [0, hi) — the only range
// shape the Prefix workload produces, and therefore the replay hot path of
// the 1D sweep. Walking the root-to-boundary path directly (covering whole
// left children along it) visits the same nodes in the same order as the
// recursion; the cover sums are then added innermost-first, reproducing the
// recursion's right-nested addition order bit for bit.
func (t *mulSegTree) collectPrefix(hi int) float64 {
	if hi >= t.m {
		t.cover = append(t.cover, 1)
		return t.sum[1]
	}
	v, l, r := 1, 0, t.m
	for {
		t.push(v)
		t.path = append(t.path, int32(v))
		mid := (l + r) / 2
		if hi < mid {
			v, r = 2*v, mid
			continue
		}
		t.cover = append(t.cover, int32(2*v))
		if hi == mid {
			break
		}
		v, l = 2*v+1, mid
	}
	var s float64
	for i := len(t.cover) - 1; i >= 0; i-- {
		s = t.sum[t.cover[i]] + s
	}
	return s
}

func (t *mulSegTree) collectAny(v, l, r, lo, hi int) float64 {
	if hi <= l || r <= lo {
		return 0
	}
	if lo <= l && r <= hi {
		t.cover = append(t.cover, int32(v))
		return t.sum[v]
	}
	t.push(v)
	t.path = append(t.path, int32(v))
	mid := (l + r) / 2
	return t.collectAny(2*v, l, mid, lo, hi) + t.collectAny(2*v+1, mid, r, lo, hi)
}

// ApplyCollected multiplies the range of the last CollectRange by f: each
// cover node's sum (and pending child multiplier) absorbs f, and ancestor
// sums are pulled up in reverse pre-order — the identical arithmetic MulRange
// performs, minus the repeated traversal.
func (t *mulSegTree) ApplyCollected(f float64) {
	for _, v := range t.cover {
		t.sum[v] *= f
		if int(v) < t.m {
			t.lazy[v] *= f
			t.dirt[v] = true
		}
	}
	for i := len(t.path) - 1; i >= 0; i-- {
		v := t.path[i]
		t.sum[v] = t.sum[2*v] + t.sum[2*v+1]
		t.dirt[v] = true
	}
}

// pushDirtyTree pushes every pending multiplier in v's subtree down to the
// leaves, descending only through dirty nodes; clean subtrees are proven
// lazy-free, so skipping them changes nothing. Each dirty node performs the
// identical parent-before-child arithmetic as the full-tree push loop.
func (t *mulSegTree) pushDirtyTree(v int) {
	if !t.dirt[v] {
		return
	}
	t.dirt[v] = false
	if f := t.lazy[v]; f != 1 {
		l, r := 2*v, 2*v+1
		t.sum[l] *= f
		t.sum[r] *= f
		if l < t.m {
			t.lazy[l] *= f
			t.lazy[r] *= f
			t.dirt[l], t.dirt[r] = true, true
		}
		t.lazy[v] = 1
	}
	if 2*v < t.m {
		t.pushDirtyTree(2 * v)
		t.pushDirtyTree(2*v + 1)
	}
}

// MaterializeInto pushes every pending multiplier down and copies the leaf
// values of [0, n) into out. The tree remains valid and unchanged in value.
func (t *mulSegTree) MaterializeInto(out []float64) {
	t.pushDirtyTree(1)
	copy(out, t.sum[t.m:t.m+t.n])
}

// Leaves pushes every pending multiplier down and returns the live leaf
// slice [0, n) — MaterializeInto minus the copy, for callers that only read
// (MWEM's fused fast selection streams the leaves directly). The slice
// aliases the tree and is invalidated by the next mutating call.
func (t *mulSegTree) Leaves() []float64 {
	t.pushDirtyTree(1)
	return t.sum[t.m : t.m+t.n]
}

// PrefixTableInto materializes the leaves directly into prefix-sum form
// (table[0] = 0, table[i+1] = table[i] + leaf[i], len n+1) — the exact
// accumulation workload.Evaluator.Reset performs — skipping the intermediate
// estimate vector on MWEM's per-round selection path.
func (t *mulSegTree) PrefixTableInto(table []float64) {
	t.pushDirtyTree(1)
	table[0] = 0
	leaves := t.sum[t.m : t.m+t.n]
	for i, x := range leaves {
		table[i+1] = table[i] + x
	}
}
