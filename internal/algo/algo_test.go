package algo

import (
	"math"
	"math/rand"
	"testing"

	"dpbench/internal/vec"
	"dpbench/internal/workload"
)

// table1Names is the full algorithm roster from Table 1 of the paper (plus
// HYBRIDTREE from Appendix B).
var table1Names = []string{
	"IDENTITY", "PRIVELET", "H", "HB", "GREEDY-H",
	"UNIFORM", "MWEM", "MWEM*", "AHP", "AHP*", "DPCUBE",
	"DAWA", "QUADTREE", "UGRID", "AGRID", "PHP", "EFPA", "SF",
	"HYBRIDTREE",
}

func TestRegistryCoversTable1(t *testing.T) {
	for _, name := range table1Names {
		if _, err := New(name); err != nil {
			t.Errorf("missing algorithm %s: %v", name, err)
		}
	}
	if got := len(Names()); got != len(table1Names) {
		t.Errorf("registry has %d algorithms, want %d: %v", got, len(table1Names), Names())
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("NOT-AN-ALGO"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("IDENTITY", func() Algorithm { return Identity{} })
}

// test1DVector builds a deterministic, moderately skewed 1D histogram.
func test1DVector(n, scale int) *vec.Vector {
	v := vec.New(n)
	rng := rand.New(rand.NewSource(12345))
	remaining := scale
	for i := 0; i < n && remaining > 0; i++ {
		c := rng.Intn(2*scale/n + 1)
		if c > remaining {
			c = remaining
		}
		v.Data[i] = float64(c)
		remaining -= c
	}
	v.Data[0] += float64(remaining)
	return v
}

// test2DVector builds a deterministic 2D histogram with clustered mass.
func test2DVector(side, scale int) *vec.Vector {
	v := vec.New(side, side)
	rng := rand.New(rand.NewSource(777))
	for k := 0; k < scale; k++ {
		x := rng.Intn(side / 2) // mass in the left half: decidedly non-uniform
		y := rng.Intn(side)
		v.Data[y*side+x]++
	}
	return v
}

func TestAllAlgorithmsRun1D(t *testing.T) {
	x := test1DVector(64, 5000)
	w := workload.Prefix(64)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			est, err := a.Run(x, w, 0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(est) != x.N() {
				t.Fatalf("estimate has %d cells, want %d", len(est), x.N())
			}
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d is %v", i, v)
				}
			}
		})
	}
}

func TestAllAlgorithmsRun2D(t *testing.T) {
	x := test2DVector(16, 4000)
	rng0 := rand.New(rand.NewSource(2))
	w := workload.RandomRange2D(16, 16, 50, rng0)
	for _, a := range All(2) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			est, err := a.Run(x, w, 0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(est) != x.N() {
				t.Fatalf("estimate has %d cells, want %d", len(est), x.N())
			}
			for i, v := range est {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("cell %d is %v", i, v)
				}
			}
		})
	}
}

func TestAlgorithmsDeterministicGivenSeed(t *testing.T) {
	x := test1DVector(32, 1000)
	w := workload.Prefix(32)
	for _, a := range All(1) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			e1, err := a.Run(x, w, 0.3, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			e2, err := a.Run(x, w, 0.3, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range e1 {
				if e1[i] != e2[i] {
					t.Fatalf("outputs differ at cell %d: %v vs %v", i, e1[i], e2[i])
				}
			}
		})
	}
}

func TestAlgorithmsRejectBadEps(t *testing.T) {
	x := test1DVector(16, 100)
	w := workload.Prefix(16)
	for _, a := range All(1) {
		if _, err := a.Run(x, w, 0, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted eps=0", a.Name())
		}
		if _, err := a.Run(x, w, -1, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted eps<0", a.Name())
		}
	}
}

func TestAlgorithmsRejectEmptyVector(t *testing.T) {
	for _, a := range All(1) {
		if _, err := a.Run(&vec.Vector{}, nil, 1, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted empty vector", a.Name())
		}
	}
}

func TestDimensionalitySupportMatchesTable1(t *testing.T) {
	oneDOnly := []string{"H", "PHP", "EFPA", "SF"}
	twoDOnly := []string{"QUADTREE", "HYBRIDTREE", "UGRID", "AGRID"}
	for _, name := range oneDOnly {
		a, _ := New(name)
		if !a.Supports(1) || a.Supports(2) {
			t.Errorf("%s: want 1D only", name)
		}
	}
	for _, name := range twoDOnly {
		a, _ := New(name)
		if a.Supports(1) || !a.Supports(2) {
			t.Errorf("%s: want 2D only", name)
		}
	}
	for _, name := range []string{"IDENTITY", "UNIFORM", "PRIVELET", "HB", "MWEM", "AHP", "DPCUBE", "DAWA", "GREEDY-H"} {
		a, _ := New(name)
		if !a.Supports(1) || !a.Supports(2) {
			t.Errorf("%s: want 1D and 2D support", name)
		}
	}
}

func TestDataDependenceFlagsMatchTable1(t *testing.T) {
	independent := []string{"IDENTITY", "PRIVELET", "H", "HB", "GREEDY-H"}
	for _, name := range independent {
		a, _ := New(name)
		if a.DataDependent() {
			t.Errorf("%s should be data-independent", name)
		}
	}
	dependent := []string{"UNIFORM", "MWEM", "MWEM*", "AHP", "AHP*", "DPCUBE", "DAWA", "QUADTREE", "UGRID", "AGRID", "PHP", "EFPA", "SF", "HYBRIDTREE"}
	for _, name := range dependent {
		a, _ := New(name)
		if !a.DataDependent() {
			t.Errorf("%s should be data-dependent", name)
		}
	}
}

func TestSideInfoUsersImplementInterface(t *testing.T) {
	// Section 6.4: SF, MWEM, UGRID, AGRID assume the true scale is known.
	for _, name := range []string{"SF", "MWEM", "UGRID", "AGRID"} {
		a, _ := New(name)
		if _, ok := a.(SideInfoUser); !ok {
			t.Errorf("%s should implement SideInfoUser", name)
		}
	}
}

// scaledPrefixError is a test helper computing Definition 3's error.
func scaledPrefixError(t *testing.T, est []float64, x *vec.Vector, w *workload.Workload) float64 {
	t.Helper()
	trueAns, err := w.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	estAns := w.EvaluateFlat(est)
	return vec.L2Distance(estAns, trueAns) / (x.Scale() * float64(w.Size()))
}

func TestHighBudgetDrivesConsistentAlgorithmsToZeroError(t *testing.T) {
	// Definition 5: consistent algorithms' error vanishes as eps grows.
	// Table 1 marks these as consistent (SF with the Sec-6.2 modification).
	consistent := []string{"IDENTITY", "PRIVELET", "H", "HB", "GREEDY-H", "DAWA", "AHP", "DPCUBE", "EFPA", "SF"}
	x := test1DVector(64, 10_000)
	w := workload.Prefix(64)
	for _, name := range consistent {
		a, _ := New(name)
		rng := rand.New(rand.NewSource(7))
		est, err := a.Run(x, w, 1e7, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := scaledPrefixError(t, est, x, w); e > 1e-4 {
			t.Errorf("%s: scaled error %v at eps=1e7, want ~0 (consistency)", name, e)
		}
	}
}

func TestInconsistentAlgorithmsKeepBias(t *testing.T) {
	// UNIFORM and MWEM (fixed T) are provably inconsistent: error persists
	// even at enormous eps on a non-uniform dataset.
	x := test1DVector(64, 10_000)
	// Make it decidedly non-uniform.
	for i := range x.Data {
		x.Data[i] = 0
	}
	x.Data[0] = 10_000
	w := workload.Prefix(64)
	for _, name := range []string{"UNIFORM"} {
		a, _ := New(name)
		rng := rand.New(rand.NewSource(8))
		est, err := a.Run(x, w, 1e7, rng)
		if err != nil {
			t.Fatal(err)
		}
		if e := scaledPrefixError(t, est, x, w); e < 1e-4 {
			t.Errorf("%s: scaled error %v at eps=1e7; expected persistent bias", name, e)
		}
	}
}
