package noise

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeterUnauditedChargesNothing(t *testing.T) {
	m := NewMeter(1.0, rand.New(rand.NewSource(1)))
	if m.Audited() {
		t.Fatal("NewMeter must not attach an accountant")
	}
	m.Laplace("a", 1, 0.5)
	m.LaplacePar("b", 1, 0.5)
	m.Charge("c", 0.25)
	if m.Spent() != 0 || m.Ledger() != nil {
		t.Fatalf("unaudited meter recorded spends: %v / %v", m.Spent(), m.Ledger())
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMeterWrapsNoiseStreamExactly(t *testing.T) {
	// The metered draws must consume the rng identically to the raw
	// primitives, audited or not.
	raw := rand.New(rand.NewSource(7))
	plain := rand.New(rand.NewSource(7))
	audited := rand.New(rand.NewSource(7))
	mp := NewMeter(1.0, plain)
	ma, err := NewAuditedMeter(1.0, audited)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Release()
	for i := 0; i < 20; i++ {
		want := Laplace(raw, 2.5)
		if got := mp.Laplace("a", 2.5, 0.02); got != want {
			t.Fatalf("draw %d: unaudited %v != raw %v", i, got, want)
		}
		if got := ma.LaplacePar("a", 2.5, 0.02); got != want {
			t.Fatalf("draw %d: audited %v != raw %v", i, got, want)
		}
	}
}

func TestMeterAuditExactSpend(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("seq", 10, 0.4)
	for i := 0; i < 5; i++ {
		m.LaplacePar("par", 10, 0.6) // one scope: max = 0.6
	}
	if err := m.Audit(Plan{{Label: "seq", Kind: Sequential}, {Label: "par", Kind: Parallel}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent %v, want 1.0", got)
	}
}

func TestMeterAuditRejectsUnderspend(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("a", 10, 0.5)
	if err := m.Audit(nil); err == nil {
		t.Fatal("audit must fail when only half the budget is spent")
	}
}

func TestMeterAuditRejectsOverspend(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("a", 10, 0.8)
	m.Laplace("a", 10, 0.8) // accountant rejects, meter records the error
	if err := m.Audit(nil); err == nil {
		t.Fatal("audit must surface the overspend")
	}
}

func TestMeterAuditRejectsUndeclaredLabel(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("declared", 10, 0.5)
	m.Laplace("rogue", 10, 0.5)
	err = m.Audit(Plan{{Label: "declared", Kind: Sequential}})
	if err == nil {
		t.Fatal("audit must reject a ledger label outside the plan")
	}
}

func TestMeterAuditRejectsKindMismatch(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.LaplacePar("a", 10, 1.0)
	if err := m.Audit(Plan{{Label: "a", Kind: Sequential}}); err == nil {
		t.Fatal("audit must reject a parallel spend declared sequential")
	}
}

func TestPlanWildcard(t *testing.T) {
	p := Plan{{Label: "level*", Kind: Parallel}}
	if !p.allows("level0", true) || !p.allows("level13", true) {
		t.Fatal("wildcard must match prefixed labels")
	}
	if p.allows("lev", true) || p.allows("level0", false) {
		t.Fatal("wildcard matched too broadly")
	}
}

func TestMeterSubNestedSplit(t *testing.T) {
	m, err := NewAuditedMeter(2.0, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("stage1", 10, 0.5)
	sub := m.Sub("stage2", 0.75) // 1.5 of the 2.0 total
	if got := sub.Total(); got != 1.5 {
		t.Fatalf("sub total %v, want 1.5", got)
	}
	sub.Laplace("inner-a", 10, 1.0)
	sub.Laplace("inner-b", 10, 0.5)
	sub.Close()
	if err := m.Audit(Plan{{Label: "stage1", Kind: Sequential}, {Label: "stage2", Kind: Sequential}}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterSubOverspendSurfaces(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	sub := m.SubEps("s", 0.5)
	sub.Laplace("a", 10, 0.4)
	sub.Laplace("a", 10, 0.4) // exceeds the child's 0.5 cap
	sub.Close()
	if err := m.Audit(nil); err == nil {
		t.Fatal("child overspend must propagate to the parent audit")
	}
}

func TestMeterSubParallelBuckets(t *testing.T) {
	// Three disjoint buckets each spend the full 0.6 internally; the scope
	// totals compose by maximum, so with a 0.4 sequential stage the whole
	// run sums to exactly 1.0.
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Laplace("head", 10, 0.4)
	for i := 0; i < 3; i++ {
		b := m.SubParEps("bucket", 0.6)
		b.LaplacePar("level0", 10, 0.2)
		b.LaplacePar("level1", 10, 0.4)
		b.Close()
	}
	if err := m.Audit(Plan{{Label: "head", Kind: Sequential}, {Label: "bucket", Kind: Parallel}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent %v, want 1.0", got)
	}
}

func TestMeterSubUnevenParallelBucketsChargeMax(t *testing.T) {
	// Buckets of different internal structure (3 vs 5 levels) still compose
	// by the maximum of their totals — the case a flat per-level ledger
	// cannot express.
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	labels := []string{"lvl0", "lvl1", "lvl2", "lvl3", "lvl4"}
	for _, levels := range []int{3, 5} {
		b := m.SubParEps("bucket", 1.0)
		for l := 0; l < levels; l++ {
			b.LaplacePar(labels[l], 10, 1.0/float64(levels))
		}
		b.Close()
	}
	if err := m.Audit(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterErrOnBadExpMech(t *testing.T) {
	m := NewMeter(1.0, rand.New(rand.NewSource(12)))
	if got := m.ExpMech("sel", nil, 1, 0.5); got != 0 {
		t.Fatalf("ExpMech on empty scores returned %d", got)
	}
	if m.Err() == nil {
		t.Fatal("empty scores must record a meter error")
	}
}

func TestMeterGeometricRejectsBadCalibration(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if got := m.Geometric("g", 0, 0.5); got != 0 {
		t.Fatalf("zero-sensitivity geometric returned %d", got)
	}
	if m.Err() == nil {
		t.Fatal("zero sensitivity must record a meter error, not certify a noise-free release")
	}
	if m.Spent() != 0 {
		t.Fatalf("rejected draw must not charge; spent %v", m.Spent())
	}
}

func TestMeterNonPositiveBudget(t *testing.T) {
	if _, err := NewAuditedMeter(0, rand.New(rand.NewSource(13))); err == nil {
		t.Fatal("NewAuditedMeter must reject eps <= 0")
	}
	m := NewMeter(-1, rand.New(rand.NewSource(13)))
	if m.Err() == nil {
		t.Fatal("NewMeter must record eps <= 0 as a deferred error")
	}
}

func TestMeterChargeMatchesDraws(t *testing.T) {
	m, err := NewAuditedMeter(1.0, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	m.Charge("forfeit", 0.25)
	out := m.LaplaceVec("vec", []float64{1, 2, 3}, 2, 0.5)
	if len(out) != 3 {
		t.Fatalf("LaplaceVec len %d", len(out))
	}
	if g := m.Geometric("geo", 1, 0.25); g == math.MaxInt64 {
		t.Fatal("geometric overflow")
	}
	if err := m.Audit(Plan{
		{Label: "forfeit", Kind: Sequential},
		{Label: "vec", Kind: Sequential},
		{Label: "geo", Kind: Sequential},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricDistribution(t *testing.T) {
	// Mean 0, variance 2*alpha/(1-alpha)^2 with alpha = exp(-1/scale).
	rng := rand.New(rand.NewSource(99))
	const scale = 2.0
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(Geometric(rng, scale))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	alpha := math.Exp(-1 / scale)
	wantVar := 2 * alpha / ((1 - alpha) * (1 - alpha))
	gotVar := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean %v, want ~0", mean)
	}
	if math.Abs(gotVar-wantVar)/wantVar > 0.05 {
		t.Fatalf("variance %v, want ~%v", gotVar, wantVar)
	}
	if Geometric(rng, 0) != 0 {
		t.Fatal("non-positive scale must return 0")
	}
}

func TestMeterUnauditedDrawsAllocateNothing(t *testing.T) {
	m := NewMeter(1.0, rand.New(rand.NewSource(15)))
	scores := []float64{1, 2, 3}
	buf := make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		m.Laplace("a", 1, 0.1)
		m.LaplacePar("b", 1, 0.1)
		m.ExpMechBuf("c", scores, 1, 0.1, buf)
		m.Charge("d", 0.1)
	}); allocs != 0 {
		t.Fatalf("unaudited meter draws allocate %v per run, want 0", allocs)
	}
}
