package noise

import (
	"fmt"
	"sync"
)

// Accountant tracks a privacy budget under sequential composition (Section
// 2.1 of the paper: k subroutines satisfying eps_i-DP compose to
// sum(eps_i)-DP). Mechanisms built from multiple subroutines use it to prove,
// in tests, that their internal spends never exceed the caller's epsilon.
// The zero value is unusable; construct with NewAccountant.
type Accountant struct {
	mu     sync.Mutex
	total  float64
	spent  float64
	spends []Spend
}

// Spend is one recorded budget expenditure.
type Spend struct {
	// Label identifies the subroutine, e.g. "partition" or "counts".
	Label string
	// Eps is the budget consumed.
	Eps float64
	// Parallel marks spends that apply to disjoint data partitions; a
	// maximal run of parallel spends with the same label counts once
	// (parallel composition).
	Parallel bool
}

// NewAccountant returns an accountant for the given total budget.
func NewAccountant(total float64) (*Accountant, error) {
	if total <= 0 {
		return nil, fmt.Errorf("noise: non-positive total budget %v", total)
	}
	return &Accountant{total: total}, nil
}

// Spend consumes eps from the budget for a sequentially composed subroutine.
// It returns an error (without recording) if the budget would be exceeded
// beyond floating-point tolerance.
func (a *Accountant) Spend(label string, eps float64) error {
	return a.spend(label, eps, false)
}

// SpendParallel consumes eps for a parallel-composed family of subroutines
// operating on disjoint partitions: repeated SpendParallel calls with the
// same label only count the maximum once.
func (a *Accountant) SpendParallel(label string, eps float64) error {
	return a.spend(label, eps, true)
}

const budgetTolerance = 1e-9

func (a *Accountant) spend(label string, eps float64, parallel bool) error {
	if eps < 0 {
		return fmt.Errorf("noise: negative spend %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	charge := eps
	if parallel {
		// Only the excess over the prior maximum for this label is charged.
		var prevMax float64
		for _, s := range a.spends {
			if s.Parallel && s.Label == label && s.Eps > prevMax {
				prevMax = s.Eps
			}
		}
		if eps <= prevMax {
			charge = 0
		} else {
			charge = eps - prevMax
		}
	}
	if a.spent+charge > a.total+budgetTolerance {
		return fmt.Errorf("noise: budget exceeded: spent %v + %v > total %v", a.spent, charge, a.total)
	}
	a.spent += charge
	a.spends = append(a.spends, Spend{Label: label, Eps: eps, Parallel: parallel})
	return nil
}

// Spent returns the budget consumed so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unconsumed budget.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spent
}

// Ledger returns a copy of all recorded spends in order.
func (a *Accountant) Ledger() []Spend {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Spend(nil), a.spends...)
}
