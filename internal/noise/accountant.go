package noise

import (
	"errors"
	"fmt"
	"sync"
)

// Sentinel errors for programmatic handling. The public dpbench/privacy
// package re-exports them, so callers outside the module can write
// errors.Is(err, privacy.ErrBudgetExhausted) against any error produced by
// the accountant, the meter, the audit, or a mechanism run — the whole chain
// wraps with %w.
var (
	// ErrBudgetExhausted marks a spend that would exceed the accountant's
	// total budget. The serving layer maps it to HTTP 429.
	ErrBudgetExhausted = errors.New("privacy budget exhausted")
	// ErrCompositionViolation marks a ledger that breaks the mechanism's
	// declared composition: an undeclared label, or spends that do not sum
	// to the trial's epsilon.
	ErrCompositionViolation = errors.New("composition plan violated")
	// ErrCommitFailed marks a spend whose durable commit hook failed: the
	// charge is recorded in memory (over-reporting is always privacy-safe)
	// but nothing may be released against it, because a crash would lose the
	// only evidence the budget was spent. The serving layer maps it to HTTP
	// 503 and reports a degraded /healthz.
	ErrCommitFailed = errors.New("durable spend commit failed")
)

// Accountant tracks a privacy budget under sequential composition (Section
// 2.1 of the paper: k subroutines satisfying eps_i-DP compose to
// sum(eps_i)-DP). The Meter charges one on every noise draw when auditing is
// enabled, so mechanisms prove — in tests, after every trial — that their
// internal spends compose to exactly the caller's epsilon.
// The zero value is unusable; construct with NewAccountant or Reset.
type Accountant struct {
	mu     sync.Mutex
	total  float64
	spent  float64
	spends []Spend
	// parMax caches, per label, the running maximum of the label's open
	// parallel scope, so SpendParallel charges in O(1) instead of rescanning
	// the whole ledger (previously O(n) per spend, O(n^2) per run).
	parMax map[string]float64
	// retain controls whether every spend is appended to the ledger history.
	// Audit needs the full history; a long-lived serving accountant does not
	// — its history would grow by one Spend per request forever — so the
	// serving layer keeps only the O(1) running totals unless audit is on.
	retain bool
	// commitFn, when set, durably records each sequential spend before
	// SpendDurable returns (see SetCommitFunc).
	commitFn CommitFunc
}

// CommitFunc durably commits one spend, returning the 1-based sequence
// number the durable ledger assigned to it. It is called by SpendDurable
// after the in-memory charge is recorded, outside the accountant's lock, so
// a slow commit (a group-commit fsync) blocks only the calling request — a
// concurrent spend on the same accountant proceeds to its own commit.
type CommitFunc func(s Spend) (seq uint64, err error)

// Spend is one recorded budget expenditure.
type Spend struct {
	// Label identifies the subroutine, e.g. "partition" or "counts".
	Label string
	// Eps is the budget consumed.
	Eps float64
	// Parallel marks spends that apply to disjoint data partitions; the
	// spends of a label's open parallel scope count their maximum once
	// (parallel composition). A sequential spend with the same label closes
	// the scope, so a later parallel spend starts a fresh one.
	Parallel bool
}

// NewAccountant returns an accountant for the given total budget.
func NewAccountant(total float64) (*Accountant, error) {
	if total <= 0 {
		return nil, fmt.Errorf("noise: non-positive total budget %v", total)
	}
	a := &Accountant{}
	a.Reset(total)
	return a, nil
}

// Reset clears all recorded spends and re-arms the accountant for a new total
// budget, retaining the ledger's capacity so pooled reuse appends without
// allocating. History retention is re-enabled and any commit hook dropped:
// pooled accountants serve the audit path, which needs the full ledger and
// no durability.
func (a *Accountant) Reset(total float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total = total
	a.spent = 0
	a.spends = a.spends[:0]
	a.retain = true
	a.commitFn = nil
	if a.parMax == nil {
		a.parMax = make(map[string]float64)
	} else {
		clear(a.parMax)
	}
}

// SetRetainHistory controls whether spends are appended to the ledger
// history (the default). With retention off the accountant keeps only its
// O(1) running totals — Ledger returns nil — which is what a long-lived
// serving accountant wants: its history would otherwise grow by one Spend
// per request for the life of the process. Audit paths require retention.
func (a *Accountant) SetRetainHistory(v bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.retain = v
	if !v {
		a.spends = nil
	}
}

// SetCommitFunc installs the durable commit hook consumed by SpendDurable.
// It must be called before the accountant is shared across goroutines (the
// serving layer installs it when the accountant is minted); the hook itself
// must be safe for concurrent calls.
func (a *Accountant) SetCommitFunc(fn CommitFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.commitFn = fn
}

// SpendDurable is Spend followed by the accountant's durable commit hook:
// when a commit hook is installed, the spend is handed to it after the
// in-memory charge succeeds, and the hook's assigned sequence number is
// returned once the spend is durably recorded. A hook failure returns an
// error wrapping ErrCommitFailed; the in-memory charge stays recorded —
// over-reporting a spend is always privacy-safe, and the caller must fail
// closed (refuse the release) because after a restart only durably committed
// charges are recovered. Without a hook it behaves exactly like Spend and
// returns sequence 0.
func (a *Accountant) SpendDurable(label string, eps float64) (uint64, error) {
	if err := a.spend(label, eps, false); err != nil {
		return 0, err
	}
	a.mu.Lock()
	fn := a.commitFn
	a.mu.Unlock()
	if fn == nil {
		return 0, nil
	}
	seq, err := fn(Spend{Label: label, Eps: eps})
	if err != nil {
		return 0, fmt.Errorf("noise: %w: %w", ErrCommitFailed, err)
	}
	return seq, nil
}

// Restore force-applies a recovered spend: no budget check and no commit
// hook, because the spend already passed both when it was first committed —
// recovery's job is to reproduce the recorded history exactly, even if a
// configuration change (a lowered total budget) means the history now
// exceeds the total. Subsequent regular spends still enforce the current
// total, so an over-budget recovered ledger simply refuses further charges.
func (a *Accountant) Restore(label string, eps float64) error {
	if eps < 0 {
		return fmt.Errorf("noise: negative restored spend %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spent += eps
	delete(a.parMax, label)
	if a.retain {
		a.spends = append(a.spends, Spend{Label: label, Eps: eps})
	}
	return nil
}

// Spend consumes eps from the budget for a sequentially composed subroutine.
// It returns an error (without recording) if the budget would be exceeded
// beyond floating-point tolerance. A sequential spend also closes the label's
// open parallel scope, if any.
func (a *Accountant) Spend(label string, eps float64) error {
	return a.spend(label, eps, false)
}

// SpendParallel consumes eps for a parallel-composed family of subroutines
// operating on disjoint partitions: within one scope, repeated SpendParallel
// calls with the same label charge only the running maximum. A scope stays
// open until a sequential spend with the same label (or CloseParallel) ends
// it; parallel spends under other labels may interleave freely, which is what
// level-ordered tree walks and nested grids produce.
func (a *Accountant) SpendParallel(label string, eps float64) error {
	return a.spend(label, eps, true)
}

// CloseParallel explicitly ends the label's open parallel scope, so a
// subsequent SpendParallel with the same label is charged in full again.
func (a *Accountant) CloseParallel(label string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.parMax, label)
}

const budgetTolerance = 1e-9

func (a *Accountant) spend(label string, eps float64, parallel bool) error {
	if eps < 0 {
		return fmt.Errorf("noise: negative spend %v", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	charge := eps
	if parallel {
		// Only the excess over the scope's prior maximum is charged.
		prevMax, open := a.parMax[label]
		if open && eps <= prevMax {
			charge = 0
		} else {
			charge = eps - prevMax
		}
	}
	if a.spent+charge > a.total+budgetTolerance {
		return fmt.Errorf("noise: %w: spent %v + %v > total %v", ErrBudgetExhausted, a.spent, charge, a.total)
	}
	a.spent += charge
	if parallel {
		if cur, open := a.parMax[label]; !open || eps > cur {
			a.parMax[label] = eps
		}
	} else {
		// A sequential spend with the same label ends the parallel scope.
		delete(a.parMax, label)
	}
	if a.retain {
		a.spends = append(a.spends, Spend{Label: label, Eps: eps, Parallel: parallel})
	}
	return nil
}

// Spent returns the budget consumed so far.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unconsumed budget.
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total - a.spent
}

// Ledger returns a copy of all recorded spends in order, or nil when
// history retention is off (SetRetainHistory).
func (a *Accountant) Ledger() []Spend {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Spend(nil), a.spends...)
}
