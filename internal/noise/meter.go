package noise

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
)

// Meter is a privacy-metered noise source: a *rand.Rand paired with a total
// privacy budget and (optionally) an Accountant that is charged on every
// draw. Mechanisms construct one inside Run from their (eps, rng) arguments
// and route every random draw through it, so the budget arithmetic that the
// paper's composition claims rest on (Section 2.1) is machine-checkable: in
// audit mode the runner asserts after every trial that the ledger sums to
// exactly the trial's epsilon and matches the mechanism's declared
// composition plan.
//
// A meter built with NewMeter has no accountant attached — every charge is a
// no-op and nothing is appended to any ledger, so the serving/benchmark hot
// path pays only a nil check per draw. NewAuditedMeter attaches a pooled
// accountant that records every spend.
//
// The meter wraps the noise stream, never reorders it: each draw method
// performs exactly the underlying package-level draw with the caller's scale,
// so outputs are bit-identical with and without auditing.
type Meter struct {
	rng     *rand.Rand
	total   float64
	sampler SamplerVersion
	acct    *Accountant // nil = metering off (the fast path)

	// Sub-meter bookkeeping: a child charges its parent once, at Close.
	parent   *Meter
	label    string
	parallel bool
	closed   bool

	err error // first budget/config error; surfaced by Err
}

// NewMeter returns an unaudited meter: draws are passed through to the
// underlying primitives and charges are no-ops. A non-positive eps is
// recorded as a deferred error (callers validate budgets before drawing).
func NewMeter(eps float64, rng *rand.Rand) *Meter {
	m := &Meter{rng: rng, total: eps}
	if eps <= 0 {
		m.err = fmt.Errorf("noise: non-positive meter budget %v", eps)
	}
	return m
}

// NewMeterV is NewMeter with an explicit sampler version: SamplerLegacy
// reproduces NewMeter exactly, SamplerFast routes every draw through the
// table-accelerated samplers. The version is part of the meter (and inherited
// by sub-meters) so one plan execution uses one sampler family throughout.
func NewMeterV(eps float64, rng *rand.Rand, v SamplerVersion) *Meter {
	m := NewMeter(eps, rng)
	m.sampler = v
	return m
}

// NewAuditedMeter returns a meter whose every charge is recorded by a pooled
// Accountant with the given total budget. Call Release when done with the
// meter to return the accountant to the pool.
func NewAuditedMeter(eps float64, rng *rand.Rand) (*Meter, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("noise: non-positive meter budget %v", eps)
	}
	return &Meter{rng: rng, total: eps, acct: newPooledAccountant(eps)}, nil
}

// NewAuditedMeterV is NewAuditedMeter with an explicit sampler version.
// Budget charges are independent of the sampler, so a fast audited run
// produces the same ledger totals as a legacy one.
func NewAuditedMeterV(eps float64, rng *rand.Rand, v SamplerVersion) (*Meter, error) {
	m, err := NewAuditedMeter(eps, rng)
	if err != nil {
		return nil, err
	}
	m.sampler = v
	return m, nil
}

// Sampler returns the meter's sampler version.
func (m *Meter) Sampler() SamplerVersion { return m.sampler }

// SetSampler switches the meter's sampler version. Plans that carry a pinned
// version (release.WithSampler) set it on entry to Execute; it must not be
// changed while sub-meters are open, since children copy the version when
// created.
func (m *Meter) SetSampler(v SamplerVersion) { m.sampler = v }

// acctPool recycles accountants (and their ledger slices) across audited
// trials, so audit mode's per-trial cost is appends into retained capacity.
var acctPool = sync.Pool{New: func() any { return &Accountant{} }}

func newPooledAccountant(total float64) *Accountant {
	a := acctPool.Get().(*Accountant)
	a.Reset(total)
	return a
}

// Rand exposes the underlying RNG for draws that carry no privacy cost
// (e.g. tie-breaking); privacy-relevant draws must use the metered methods.
func (m *Meter) Rand() *rand.Rand { return m.rng }

// Total returns the meter's privacy budget.
func (m *Meter) Total() float64 { return m.total }

// Audited reports whether charges are being recorded.
func (m *Meter) Audited() bool { return m.acct != nil }

// Spent returns the budget consumed so far (0 when unaudited).
func (m *Meter) Spent() float64 {
	if m.acct == nil {
		return 0
	}
	return m.acct.Spent()
}

// Ledger returns a copy of the recorded spends (nil when unaudited).
func (m *Meter) Ledger() []Spend {
	if m.acct == nil {
		return nil
	}
	return m.acct.Ledger()
}

// Err returns the first budget or configuration error observed by this meter
// (overspend, non-positive epsilon, invalid exponential-mechanism input).
// Mechanisms return it at the end of RunMeter so a bad trial fails the run
// instead of crashing a worker.
func (m *Meter) Err() error { return m.err }

func (m *Meter) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Charge records a sequentially composed spend without drawing noise. It
// exists for degenerate branches where an allocated budget slice buys no
// measurement (a forced boundary, a single-cell domain): charging keeps the
// ledger equal to the declared plan, and over-reporting a spend is always
// privacy-safe.
func (m *Meter) Charge(label string, eps float64) { m.charge(label, eps, false) }

// ChargePar is Charge under parallel composition.
func (m *Meter) ChargePar(label string, eps float64) { m.charge(label, eps, true) }

func (m *Meter) charge(label string, eps float64, parallel bool) {
	if m.acct == nil {
		return
	}
	var err error
	if parallel {
		err = m.acct.SpendParallel(label, eps)
	} else {
		err = m.acct.Spend(label, eps)
	}
	if err != nil {
		m.fail(err)
	}
}

// Laplace draws one Laplace(scale) sample and charges eps as a sequential
// spend under label. The caller supplies the scale directly (rather than a
// sensitivity/eps pair) so existing mechanisms keep their exact
// floating-point scale expressions and the noise stream stays bit-identical.
//
//dp:hotpath
func (m *Meter) Laplace(label string, scale, eps float64) float64 {
	m.charge(label, eps, false)
	return m.laplace(scale)
}

// laplace dispatches one scalar Laplace draw to the meter's sampler family.
//
//dp:hotpath
func (m *Meter) laplace(scale float64) float64 {
	if m.sampler == SamplerFast {
		return FastLaplace(m.rng, scale)
	}
	return Laplace(m.rng, scale)
}

// laplaceVecInto dispatches one vector Laplace draw to the sampler family.
//
//dp:hotpath
func (m *Meter) laplaceVecInto(dst, x []float64, scale float64) []float64 {
	if m.sampler == SamplerFast {
		return FastLaplaceVecInto(m.rng, dst, x, scale)
	}
	return LaplaceVecInto(m.rng, dst, x, scale)
}

// LaplacePar is Laplace charged under parallel composition: repeated draws
// with the same label within one scope count the maximum once. Partition
// mechanisms use it for draws over disjoint data (AHP clusters, grid cells,
// tree levels), and vector-valued queries use it for their per-component
// draws (each component charge is the whole vector's spend, so the scope
// total is exactly that spend).
//
//dp:hotpath
func (m *Meter) LaplacePar(label string, scale, eps float64) float64 {
	m.charge(label, eps, true)
	return m.laplace(scale)
}

// LaplaceVec adds independent Laplace(scale) noise to each element of x,
// charging eps once for the whole vector-valued query (the components of one
// vector query compose by its total L1 sensitivity, not per component).
func (m *Meter) LaplaceVec(label string, x []float64, scale, eps float64) []float64 {
	m.charge(label, eps, false)
	return m.laplaceVecInto(make([]float64, len(x)), x, scale)
}

// LaplaceVecInto is LaplaceVec writing into a caller-provided destination, so
// plan-execute hot paths add vector noise without allocating. The noise
// stream is identical to LaplaceVec's.
//
//dp:hotpath
func (m *Meter) LaplaceVecInto(label string, dst, x []float64, scale, eps float64) []float64 {
	m.charge(label, eps, false)
	return m.laplaceVecInto(dst, x, scale)
}

// LaplaceVecParInto is LaplaceVecInto charged under parallel composition:
// the components perturb disjoint data (one count per partition bucket), so
// a single charge covers the scope exactly as repeated LaplacePar calls with
// the same label would — the ledger records the identical spend either way.
//
//dp:hotpath
func (m *Meter) LaplaceVecParInto(label string, dst, x []float64, scale, eps float64) []float64 {
	m.charge(label, eps, true)
	return m.laplaceVecInto(dst, x, scale)
}

// LaplaceMechanism perturbs f with noise calibrated to the given L1
// sensitivity and budget (Definition 2), charging eps sequentially. A
// non-positive epsilon is recorded as a meter error and nil returned —
// never the unperturbed input, so a caller that forgets to check Err
// cannot release noise-free data.
func (m *Meter) LaplaceMechanism(label string, f []float64, sensitivity, eps float64) []float64 {
	if eps <= 0 {
		m.fail(fmt.Errorf("noise: non-positive epsilon %v in Laplace mechanism", eps))
		return nil
	}
	m.charge(label, eps, false)
	return m.laplaceVecInto(make([]float64, len(f)), f, sensitivity/eps)
}

// LaplaceMechanismInto is LaplaceMechanism writing into a caller-provided
// destination (len(f)). On a non-positive epsilon the error is recorded and
// dst is left untouched — never filled with unperturbed input.
//
//dp:hotpath
func (m *Meter) LaplaceMechanismInto(label string, dst, f []float64, sensitivity, eps float64) []float64 {
	if eps <= 0 {
		m.fail(fmt.Errorf("noise: non-positive epsilon %v in Laplace mechanism", eps))
		return nil
	}
	m.charge(label, eps, false)
	return m.laplaceVecInto(dst, f, sensitivity/eps)
}

// Geometric draws from the two-sided geometric (discrete Laplace)
// distribution with scale sensitivity/eps and charges eps sequentially. It is
// the integer-valued counterpart of Laplace, used when released counts must
// stay integral. A non-positive epsilon OR sensitivity is recorded as a
// meter error without charging: a zero sensitivity would yield a zero noise
// scale, and silently releasing an unperturbed count while the ledger
// certifies an eps spend is exactly the bug class the meter exists to stop.
//
//dp:hotpath
func (m *Meter) Geometric(label string, sensitivity, eps float64) int64 {
	if eps <= 0 || sensitivity <= 0 {
		m.fail(fmt.Errorf("noise: non-positive epsilon %v or sensitivity %v in geometric mechanism", eps, sensitivity))
		return 0
	}
	m.charge(label, eps, false)
	if m.sampler == SamplerFast {
		return FastGeometric(m.rng, sensitivity/eps)
	}
	return Geometric(m.rng, sensitivity/eps)
}

// ExpMech selects an index from scores with the exponential mechanism,
// charging eps sequentially. Invalid input (empty scores, non-positive
// epsilon) is recorded as a meter error and index 0 returned.
func (m *Meter) ExpMech(label string, scores []float64, sensitivity, eps float64) int {
	return m.expMech(label, scores, sensitivity, eps, nil, false)
}

// ExpMechPar is ExpMech charged under parallel composition, for selections
// whose scores depend only on disjoint data partitions (e.g. PHP's per-
// interval bisections within one round).
func (m *Meter) ExpMechPar(label string, scores []float64, sensitivity, eps float64) int {
	return m.expMech(label, scores, sensitivity, eps, nil, true)
}

// ExpMechBuf is ExpMech with a caller-provided weight buffer, so repeated
// selections allocate nothing.
//
//dp:hotpath
func (m *Meter) ExpMechBuf(label string, scores []float64, sensitivity, eps float64, weights []float64) int {
	return m.expMech(label, scores, sensitivity, eps, weights, false)
}

// ExpMechBufPar is ExpMechPar with a caller-provided weight buffer.
//
//dp:hotpath
func (m *Meter) ExpMechBufPar(label string, scores []float64, sensitivity, eps float64, weights []float64) int {
	return m.expMech(label, scores, sensitivity, eps, weights, true)
}

//dp:hotpath
func (m *Meter) expMech(label string, scores []float64, sensitivity, eps float64, weights []float64, parallel bool) int {
	var idx int
	var err error
	if m.sampler == SamplerFast {
		// Gumbel-max top-1: same selection distribution, no per-score exp,
		// and the weights buffer is never touched.
		idx, err = FastExpMechTop1(m.rng, scores, sensitivity, eps)
	} else {
		idx, err = ExpMechBuf(m.rng, scores, sensitivity, eps, weights)
	}
	if err != nil {
		m.fail(err)
		return 0
	}
	m.charge(label, eps, parallel)
	return idx
}

// ExpMechGumbels charges eps sequentially under label and fills dst with iid
// standard Gumbel draws from the fast sampler — the raw material of a fused
// Gumbel-max selection: argmax_i of eps*score_i/(2*sens) + dst[i] samples the
// exponential mechanism's distribution exactly, so a caller that computes
// scores on the fly can fuse scoring, perturbation and the max-reduction into
// one pass instead of materializing a score vector for ExpMechBuf. It is a
// fast-sampler Meter entry point (the only sanctioned route to the fast
// Gumbel stream from mechanism code; noisegate enforces this): callers gate
// on Sampler() == SamplerFast and take the ExpMech* path otherwise. Invalid
// input (empty dst, non-positive eps) is recorded as a meter error and false
// returned with dst untouched — a caller falling through would select index 0,
// matching the ExpMech error path.
//
//dp:hotpath
func (m *Meter) ExpMechGumbels(label string, dst []float64, eps float64) bool {
	if len(dst) == 0 {
		m.fail(fmt.Errorf("noise: empty score list in exponential mechanism"))
		return false
	}
	if eps <= 0 {
		m.fail(fmt.Errorf("noise: non-positive epsilon %v in exponential mechanism", eps))
		return false
	}
	m.charge(label, eps, false)
	FastGumbelVecInto(m.rng, dst)
	return true
}

// Sub opens a sequentially composed sub-meter holding the fraction frac of
// this meter's total budget, for nested budget splits (DAWA handing stage two
// to GreedyH). The child's spends accumulate in its own ledger; Close charges
// the parent once, under label, with the child's actual total.
func (m *Meter) Sub(label string, frac float64) *Meter {
	return m.sub(label, frac*m.total, false)
}

// SubEps is Sub with an absolute child budget, for splits that are not a
// plain fraction of the parent's total (e.g. fractions of an eps that already
// excludes a scale-estimation spend).
func (m *Meter) SubEps(label string, eps float64) *Meter {
	return m.sub(label, eps, false)
}

// SubParEps opens a parallel-composed sub-meter: siblings created with the
// same label operate on disjoint data partitions, so their closed totals
// compose by maximum, not sum (SF's per-bucket hierarchies). Each child may
// spend up to the full eps.
func (m *Meter) SubParEps(label string, eps float64) *Meter {
	return m.sub(label, eps, true)
}

func (m *Meter) sub(label string, eps float64, parallel bool) *Meter {
	c := &Meter{}
	m.initSub(c, label, eps, parallel)
	return c
}

func (m *Meter) initSub(c *Meter, label string, eps float64, parallel bool) {
	*c = Meter{rng: m.rng, total: eps, sampler: m.sampler, parent: m, label: label, parallel: parallel}
	if eps <= 0 {
		c.fail(fmt.Errorf("noise: non-positive sub-meter budget %v for %q", eps, label))
		return
	}
	if m.acct != nil {
		c.acct = newPooledAccountant(eps)
	}
}

// ResetSub re-initializes sub — a caller-retained Meter — as a sub-meter of m
// with an absolute budget, avoiding the per-call allocation of SubEps /
// SubParEps on hot paths that open many short-lived scopes (SF opens one per
// bucket per trial). The previous contents of sub are discarded; it must have
// been Closed (or never used) before reuse. Semantics otherwise match SubEps
// (parallel=false) and SubParEps (parallel=true).
func (m *Meter) ResetSub(sub *Meter, label string, eps float64, parallel bool) {
	m.initSub(sub, label, eps, parallel)
}

// Close finishes a sub-meter: the parent is charged the child's spent total
// under the child's label (sequentially or in parallel, as opened), the
// child's sticky error propagates, and the child's pooled accountant is
// released. Closing a top-level meter or closing twice is a no-op.
func (m *Meter) Close() {
	if m.parent == nil || m.closed {
		return
	}
	m.closed = true
	if m.err != nil {
		m.parent.fail(m.err)
	}
	if m.acct == nil {
		return
	}
	m.parent.charge(m.label, m.acct.Spent(), m.parallel)
	releaseAccountant(m.acct)
	m.acct = nil
}

// Release returns a top-level audited meter's accountant to the pool. The
// meter must not be used afterwards.
func (m *Meter) Release() {
	if m.acct != nil {
		releaseAccountant(m.acct)
		m.acct = nil
	}
}

func releaseAccountant(a *Accountant) { acctPool.Put(a) }

// SpendKind classifies how spends under one ledger label compose.
type SpendKind uint8

const (
	// Sequential spends add up (sequential composition).
	Sequential SpendKind = iota
	// Parallel spends on disjoint partitions count their maximum once.
	Parallel
)

// PlanEntry declares one ledger label a mechanism may emit. A Label ending in
// '*' matches every label with that prefix (per-level labels like "level3").
type PlanEntry struct {
	Label string
	Kind  SpendKind
}

// Plan is a mechanism's declared composition plan: the complete set of ledger
// labels its RunMeter may emit and how each composes. The audit rejects any
// ledger entry not covered by the plan, so an undeclared spend — the classic
// silent budget bug — is a test failure. A label may appear under both kinds
// when different code paths compose it differently.
type Plan []PlanEntry

func (p Plan) allows(label string, parallel bool) bool {
	for _, e := range p {
		if (e.Kind == Parallel) != parallel {
			continue
		}
		if strings.HasSuffix(e.Label, "*") {
			if strings.HasPrefix(label, e.Label[:len(e.Label)-1]) {
				return true
			}
		} else if e.Label == label {
			return true
		}
	}
	return false
}

// VerifyPlan checks every ledger entry against the declared plan.
func VerifyPlan(ledger []Spend, plan Plan) error {
	for _, s := range ledger {
		if !plan.allows(s.Label, s.Parallel) {
			kind := "sequential"
			if s.Parallel {
				kind = "parallel"
			}
			return fmt.Errorf("noise: %w: ledger entry %q (%s, eps=%v) not declared", ErrCompositionViolation, s.Label, kind, s.Eps)
		}
	}
	return nil
}

// Audit verifies that the meter's recorded spends total exactly its budget
// (within the accountant's 1e-9 tolerance — both over- AND under-spend fail,
// since an under-spend means the mechanism adds more noise than its budget
// justifies, invalidating utility comparisons) and, when a plan is given,
// that the ledger matches it. Any sticky draw/charge error fails the audit.
func (m *Meter) Audit(plan Plan) error {
	if m.err != nil {
		return m.err
	}
	if m.acct == nil {
		return fmt.Errorf("noise: meter was not built with NewAuditedMeter")
	}
	spent := m.acct.Spent()
	if math.Abs(spent-m.total) > budgetTolerance {
		return fmt.Errorf("noise: %w: ledger sums to %v, budget is %v (diff %v)", ErrCompositionViolation, spent, m.total, spent-m.total)
	}
	if plan != nil {
		if err := VerifyPlan(m.acct.Ledger(), plan); err != nil {
			return err
		}
	}
	return nil
}
