package noise

import "math/rand"

// SplitMix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA 2014):
// a full-avalanche 64-bit mixer, so inputs differing in a single bit map to
// statistically independent outputs. It is the standard way to derive
// independent RNG streams from (seed, coordinate) pairs — core's deriveSeed
// folds experiment coordinates through it — and the generator behind
// NewRand. It is NOT cryptographic: the mixer is invertible, so anything
// secret must not be recoverable from its outputs (the serving layer uses
// crypto-seeded ChaCha8 streams for that reason).
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// splitMix64Source is a rand.Source64 running the SplitMix64 generator:
// state advances by the golden-ratio gamma and each output is the finalizer
// mix of the new state. It exists because the stdlib rngSource.Seed reduces
// seeds mod 2^31-1, which collapses any 64-bit stream-identity scheme into
// birthday-collision (and brute-force) range: the experiment runners need
// distinct streams per (seed, sample, trial, algorithm) cell, and the
// serving layer needs noise streams an observer cannot enumerate. Here the
// full 64-bit state is the stream identity.
type splitMix64Source struct{ state uint64 }

func (s *splitMix64Source) Uint64() uint64 {
	z := SplitMix64(s.state)
	s.state += 0x9E3779B97F4A7C15
	return z
}

func (s *splitMix64Source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMix64Source) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns a *rand.Rand whose stream identity is the full 64-bit
// seed (a SplitMix64 source, not the stdlib rngSource with its mod-2^31-1
// seed reduction). Two distinct seeds always give distinct streams.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(&splitMix64Source{state: seed})
}
