package noise

import (
	"fmt"
	"math"
	"math/rand"

	"dpbench/internal/vec"
)

// SamplerVersion selects which noise-sampling implementation family a meter
// routes draws through. The legacy samplers (version 0) call math.Log /
// math.Exp per draw and are pinned bit-for-bit by the repository's golden
// tests; the fast samplers replace the per-draw transcendentals with
// table-accelerated inverse-CDF evaluation and a Gumbel-max top-1 selection,
// trading the exact legacy stream for roughly half the sampling cost. The
// two versions draw different streams by construction, so the version is
// carried explicitly on the plan (core.Config, release.WithSampler, the
// -sampler CLI flag, the serve roster) and never changes silently.
type SamplerVersion uint8

const (
	// SamplerLegacy is the default: the original per-draw math.Log/math.Exp
	// samplers, bit-identical with every golden and CLI diff in the repo.
	SamplerLegacy SamplerVersion = iota
	// SamplerFast routes draws through the table-accelerated samplers
	// (FastLaplace, FastLaplaceVecInto, FastGeometric, FastExpMechTop1).
	// Outputs are drawn from the same distributions (pinned by the KS,
	// chi-square and pairwise-probability tests in sampler_test.go) but the
	// stream differs from legacy, so fast runs have their own goldens.
	SamplerFast
)

// String returns the CLI spelling of the version ("legacy" or "fast").
func (v SamplerVersion) String() string {
	switch v {
	case SamplerLegacy:
		return "legacy"
	case SamplerFast:
		return "fast"
	}
	return fmt.Sprintf("SamplerVersion(%d)", uint8(v))
}

// ParseSamplerVersion parses the CLI spelling of a sampler version. The
// empty string means the legacy default, so an unset flag keeps the
// golden/repro path.
func ParseSamplerVersion(s string) (SamplerVersion, error) {
	switch s {
	case "", "legacy":
		return SamplerLegacy, nil
	case "fast":
		return SamplerFast, nil
	}
	return SamplerLegacy, fmt.Errorf("noise: unknown sampler version %q (want legacy or fast)", s)
}

// The fast samplers evaluate inverse CDFs by linear interpolation in the
// quantile tables below instead of calling math.Log per draw. A draw maps a
// 64-bit uniform x to the quantile u = x * 2^-64: the top tabBits bits are
// the table index and the remaining bits the interpolation fraction, so each
// draw consumes exactly one uniform. Within tailSlots of the table ends the
// quantile functions curve too hard for the linear segments (and the
// exponential tail is unbounded), so those draws fall back to the exact
// math.Log form at full precision. With 1024 segments and 16 tail slots the
// piecewise-linear CDF error is below 5e-4 in the worst slot and orders of
// magnitude smaller elsewhere — invisible to the KS tests at n = 2e5
// (critical distance ~3e-3) and far below the noise scales the mechanisms
// add. Uniform bits are expanded from one rng.Uint64 key per fastWindow
// draws through the SplitMix64 mixer: deterministic given the meter's RNG,
// and when the backing RNG is the serving layer's crypto-seeded stream an
// observer who inverts some outputs learns at most the remainder of one
// fastWindow-draw window, because every window is re-keyed from the parent
// stream.
const (
	fastTabBits = 10
	fastTabK    = 1 << fastTabBits
	fastTail    = 16
	fastWindow  = 32

	splitMixGamma = 0x9E3779B97F4A7C15

	// fastFracMask extracts the interpolation fraction below the table index.
	fastFracMask = 1<<(64-fastTabBits) - 1
)

var (
	// expQTab[i] = -ln(i/K): the Exp(1) quantile at 1 - i/K (equivalently,
	// -ln of the uniform), tabulated on the uniform grid.
	expQTab [fastTabK + 1]float64
	// gumQTab[i] = -ln(-ln(i/K)): the standard Gumbel quantile function.
	gumQTab [fastTabK + 1]float64

	// Second-level tail tables, refining the first fastTail/K of the uniform
	// range (and, for the Gumbel, the last) at 64x resolution: index i covers
	// u = i/(64K). They turn all but a 2^-12 sliver of the tails into the same
	// lerp as the main table; without them the math.Log fallback runs on ~3%
	// of draws and costs more than the other 97% combined.
	expLoQTab [fastTabK + 1]float64 // -ln(i/(64K))
	gumLoQTab [fastTabK + 1]float64 // -ln(-ln(i/(64K)))
	gumHiQTab [fastTabK + 1]float64 // -ln(-ln(1 - i/(64K)))
)

func init() {
	for i := 1; i < fastTabK; i++ {
		u := float64(i) / fastTabK
		expQTab[i] = -math.Log(u)
		gumQTab[i] = -math.Log(-math.Log(u))
	}
	// The 0 and K knots are never read by the interpolated region (the tail
	// slots fall back to exact evaluation) but are kept finite so an
	// out-of-contract read cannot produce an infinity.
	expQTab[0] = -math.Log(0x1p-54)
	expQTab[fastTabK] = 0
	gumQTab[0] = -math.Log(-math.Log(0x1p-54))
	gumQTab[fastTabK] = -math.Log(-math.Log(1 - 0x1p-53))

	for i := 1; i <= fastTabK; i++ {
		u := float64(i) / (64 * fastTabK)
		expLoQTab[i] = -math.Log(u)
		gumLoQTab[i] = -math.Log(-math.Log(u))
		gumHiQTab[i] = -math.Log(-math.Log(1 - u))
	}
	// Knot 0 of each tail table sits inside the deep-tail fallback region and
	// is never interpolated over; keep it finite.
	expLoQTab[0] = expLoQTab[1]
	gumLoQTab[0] = gumLoQTab[1]
	gumHiQTab[0] = gumHiQTab[1]
}

// gumbelFromBits maps one 64-bit uniform to a standard Gumbel sample via the
// quantile table, falling back to the exact form in the tails.
// The hot vector loops below repeat this body manually: at cost 104 it is
// over the compiler's inlining budget, and a per-draw call erases most of the
// table win.
//
//dp:hotpath
func gumbelFromBits(x uint64) float64 {
	idx := x >> (64 - fastTabBits)
	if idx-fastTail < fastTabK-2*fastTail {
		frac := float64(int64(x&fastFracMask)) * 0x1p-54
		lo := gumQTab[idx]
		return lo + (gumQTab[idx+1]-lo)*frac
	}
	return gumbelExact(x)
}

// gumbelExact resolves a tail draw: both tails are re-indexed into the
// second-level tables at 64x resolution, and only the outermost 2^-12 of the
// uniform range pays for math.Log.
//
//go:noinline
//dp:hotpath
func gumbelExact(x uint64) float64 {
	if x>>(64-fastTabBits) >= fastTabK-fastTail {
		// High tail: index on 1-u = (2^64-x) * 2^-64.
		if y := (-x) << 6; y>>54 >= fastTail {
			idx := y >> 54
			frac := float64(int64(y&(1<<54-1))) * 0x1p-54
			lo := gumHiQTab[idx]
			return lo + (gumHiQTab[idx+1]-lo)*frac
		}
	} else {
		if y := x << 6; y>>54 >= fastTail {
			idx := y >> 54
			frac := float64(int64(y&(1<<54-1))) * 0x1p-54
			lo := gumLoQTab[idx]
			return lo + (gumLoQTab[idx+1]-lo)*frac
		}
	}
	u := float64(x>>11) * 0x1p-53
	if u < 0x1p-53 {
		u = 0x1p-53
	}
	if u > 1-0x1p-53 {
		u = 1 - 0x1p-53
	}
	return -math.Log(-math.Log(u))
}

// expFromBits maps one 64-bit uniform to an Exp(1) sample (-ln U) via the
// quantile table; only the low tail (U -> 0, where the magnitude diverges)
// needs the exact form.
//
//dp:hotpath
func expFromBits(x uint64) float64 {
	idx := x >> (64 - fastTabBits)
	if idx >= fastTail {
		frac := float64(int64(x&fastFracMask)) * 0x1p-54
		lo := expQTab[idx]
		return lo + (expQTab[idx+1]-lo)*frac
	}
	return expExact(x)
}

// expExact resolves a low-tail draw (the only tail expFromBits falls back
// for) through the second-level table; only u < 2^-12 pays for math.Log.
//
//go:noinline
//dp:hotpath
func expExact(x uint64) float64 {
	if y := x << 6; y>>54 >= fastTail {
		idx := y >> 54
		frac := float64(int64(y&(1<<54-1))) * 0x1p-54
		lo := expLoQTab[idx]
		return lo + (expLoQTab[idx+1]-lo)*frac
	}
	u := float64(x>>11) * 0x1p-53
	if u < 0x1p-53 {
		u = 0x1p-53
	}
	return -math.Log(u)
}

// FastLaplace draws one sample from the Laplace distribution with mean 0 and
// the given scale using the table-accelerated sampler: bit 63 of one uniform
// picks the sign and the remaining bits drive the Exp(1) magnitude. It is the
// SamplerFast counterpart of Laplace — same distribution, different stream.
// Mechanism code must reach it through a Meter (noisegate enforces this).
//
//dp:hotpath
func FastLaplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	x := rng.Uint64()
	e := expFromBits(x << 1)
	if x>>63 == 1 {
		return -scale * e
	}
	return scale * e
}

// FastLaplaceVecInto adds independent Laplace(scale) noise to each element of
// x, writing into dst (len(x)). It is the batched fast path: uniforms are
// expanded in fastWindow-sized blocks from one RNG key each, the noise block
// is synthesized into a stack buffer with pure table arithmetic, and the
// addition runs through vec.AddInto — so neither math.Log calls nor RNG
// method calls appear in the per-element work. dst must not alias x unless
// the caller no longer needs x.
//
//dp:hotpath
func FastLaplaceVecInto(rng *rand.Rand, dst, x []float64, scale float64) []float64 {
	if len(dst) != len(x) {
		panic("noise: LaplaceVecInto length mismatch")
	}
	if scale <= 0 {
		copy(dst, x)
		return dst
	}
	var buf [fastWindow]float64
	n := len(x)
	for i := 0; i < n; {
		blk := n - i
		if blk > fastWindow {
			blk = fastWindow
		}
		s := rng.Uint64()
		for j := 0; j < blk; j++ {
			s += splitMixGamma
			z := s
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			z ^= z >> 31
			// expFromBits(z << 1), inlined by hand (see gumbelFromBits).
			u := z << 1
			var e float64
			if idx := u >> (64 - fastTabBits); idx >= fastTail {
				frac := float64(int64(u&fastFracMask)) * 0x1p-54
				lo := expQTab[idx]
				e = lo + (expQTab[idx+1]-lo)*frac
			} else {
				e = expExact(u)
			}
			if z>>63 == 1 {
				e = -e
			}
			buf[j] = scale * e
		}
		vec.AddInto(dst[i:i+blk], x[i:i+blk], buf[:blk])
		i += blk
	}
	return dst
}

// FastGeometric draws from the two-sided geometric (discrete Laplace)
// distribution with P(k) proportional to alpha^|k|, alpha = exp(-1/scale) —
// the same distribution as Geometric — as the difference of two one-sided
// geometrics, each obtained by flooring a table-accelerated Exp(1) magnitude:
// floor(scale * E) is geometric with parameter alpha exactly as
// floor(ln U / ln alpha) is.
//
//dp:hotpath
func FastGeometric(rng *rand.Rand, scale float64) int64 {
	if scale <= 0 {
		return 0
	}
	g1 := int64(scale * expFromBits(rng.Uint64()))
	g2 := int64(scale * expFromBits(rng.Uint64()))
	return g1 - g2
}

// FastExpMechTop1 selects an index from scores with the exponential mechanism
// via the Gumbel-max trick: index i maximizes epsilon*scores[i]/(2*sens) + G_i
// with G_i iid standard Gumbel, which selects i with probability proportional
// to exp(epsilon*scores[i]/(2*sens)) — the identical distribution ExpMechBuf
// samples — without computing a single exponential or materializing a weight
// vector. The per-score work is one table-interpolated Gumbel draw and a
// running argmax, fused in one pass. Scores of -Inf (already-chosen MWEM
// queries) can never win unless every score is -Inf. Input validation and the
// +Inf-epsilon argmax limit match ExpMechBuf.
//
//dp:hotpath
func FastExpMechTop1(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) (int, error) {
	if len(scores) == 0 {
		return 0, fmt.Errorf("noise: empty score list in exponential mechanism")
	}
	if math.IsInf(epsilon, 1) {
		return argmaxUniform(rng, scores), nil
	}
	if epsilon <= 0 {
		return 0, fmt.Errorf("noise: non-positive epsilon %v in exponential mechanism", epsilon)
	}
	if len(scores) == 1 {
		// A one-candidate selection is deterministic; skip the draw. (PHP's
		// late bisection rounds are dominated by width-2 intervals.)
		return 0, nil
	}
	lambda := epsilon / (2 * sensitivity)
	best := math.Inf(-1)
	bi := 0
	n := len(scores)
	for i := 0; i < n; i += fastWindow {
		blk := scores[i:]
		if len(blk) > fastWindow {
			blk = blk[:fastWindow]
		}
		s := rng.Uint64()
		for j, sc := range blk {
			s += splitMixGamma
			z := s
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			z ^= z >> 31
			// gumbelFromBits(z), inlined by hand (see its comment).
			var g float64
			if idx := z >> (64 - fastTabBits); idx-fastTail < fastTabK-2*fastTail {
				frac := float64(int64(z&fastFracMask)) * 0x1p-54
				lo := gumQTab[idx]
				g = lo + (gumQTab[idx+1]-lo)*frac
			} else {
				g = gumbelExact(z)
			}
			if v := lambda*sc + g; v > best {
				best, bi = v, i+j
			}
		}
	}
	return bi, nil
}

// FastGumbelVecInto fills dst with iid standard Gumbel samples from the
// table-accelerated sampler. It exists for the distributional tests (KS
// against the Gumbel CDF) and benchmarks; mechanisms select with
// FastExpMechTop1 instead of drawing raw Gumbels.
//
//dp:hotpath
func FastGumbelVecInto(rng *rand.Rand, dst []float64) {
	n := len(dst)
	for i := 0; i < n; {
		blk := n - i
		if blk > fastWindow {
			blk = fastWindow
		}
		s := rng.Uint64()
		for j := 0; j < blk; j++ {
			s += splitMixGamma
			z := s
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			z ^= z >> 31
			// gumbelFromBits(z), inlined by hand (see its comment).
			var g float64
			if idx := z >> (64 - fastTabBits); idx-fastTail < fastTabK-2*fastTail {
				frac := float64(int64(z&fastFracMask)) * 0x1p-54
				lo := gumQTab[idx]
				g = lo + (gumQTab[idx+1]-lo)*frac
			} else {
				g = gumbelExact(z)
			}
			dst[i] = g
			i++
		}
	}
}
