// Package noise implements the randomized primitives every differentially
// private mechanism in this repository is built from: the Laplace mechanism,
// the exponential mechanism, and the samplers the data generator needs
// (binomial and multinomial). All randomness flows through an explicit
// *rand.Rand so experiments are reproducible given a seed.
package noise

import (
	"fmt"
	"math"
	"math/rand"
)

// Laplace draws one sample from the Laplace distribution with mean 0 and the
// given scale (the mechanism adds Laplace(sensitivity/epsilon) noise).
func Laplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	// Inverse CDF: u uniform on (-1/2, 1/2). Float64 returns [0, 1), so the
	// raw uniform can be exactly 0, which would make 1+2u exactly 0 and the
	// draw -Inf — an infinite release. Clamp that single value to the
	// smallest positive double the stream produces (the same (0, 1] guard
	// Geometric applies); every other draw is untouched, so the legacy
	// stream stays bit-identical.
	f := rng.Float64()
	if f == 0 {
		f = 0x1p-53
	}
	u := f - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// LaplaceVec adds independent Laplace(scale) noise to each element of x and
// returns a new slice; x is not modified.
func LaplaceVec(rng *rand.Rand, x []float64, scale float64) []float64 {
	return LaplaceVecInto(rng, make([]float64, len(x)), x, scale)
}

// LaplaceVecInto is LaplaceVec writing into a caller-provided destination
// (len(x)), so per-trial hot paths draw the identical noise stream without
// allocating. dst must not alias x unless the caller no longer needs x.
func LaplaceVecInto(rng *rand.Rand, dst, x []float64, scale float64) []float64 {
	if len(dst) != len(x) {
		panic("noise: LaplaceVecInto length mismatch")
	}
	for i, v := range x {
		dst[i] = v + Laplace(rng, scale)
	}
	return dst
}

// LaplaceMechanism perturbs the vector-valued query answer f with noise
// calibrated to the given L1 sensitivity and privacy budget epsilon,
// implementing Definition 2 of the paper. A non-positive epsilon means an
// unbounded noise scale is required; it is returned as an error so a bad
// trial configuration fails that run instead of crashing a worker pool.
func LaplaceMechanism(rng *rand.Rand, f []float64, sensitivity, epsilon float64) ([]float64, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("noise: non-positive epsilon %v in Laplace mechanism", epsilon)
	}
	return LaplaceVec(rng, f, sensitivity/epsilon), nil
}

// Geometric draws from the two-sided geometric ("discrete Laplace")
// distribution with P(k) proportional to alpha^|k|, alpha = exp(-1/scale).
// It is the integer-valued analogue of Laplace(scale) (Ghosh, Roughgarden
// and Sundararajan's universally optimal mechanism): adding it to a count
// query with sensitivity s and scale s/eps yields eps-DP integral releases.
// A non-positive scale returns 0, mirroring Laplace.
func Geometric(rng *rand.Rand, scale float64) int64 {
	if scale <= 0 {
		return 0
	}
	lnAlpha := -1 / scale
	// Difference of two iid one-sided geometrics on {0,1,...}, each sampled
	// by inversion: floor(ln(U)/ln(alpha)) with U uniform on (0,1].
	g := func() int64 {
		u := 1 - rng.Float64() // (0, 1]: avoids ln(0)
		return int64(math.Log(u) / lnAlpha)
	}
	return g() - g()
}

// ExpMech selects an index from scores using the exponential mechanism: index
// i is chosen with probability proportional to exp(epsilon*scores[i]/(2*sens)).
// Scores are shifted by their maximum before exponentiation for numerical
// stability, which does not change the distribution. If epsilon is +Inf the
// argmax is returned (ties broken uniformly), matching the limiting behaviour
// proved in Lemma 2 of the paper. Empty scores or a non-positive finite
// epsilon are configuration errors, returned rather than panicking.
func ExpMech(rng *rand.Rand, scores []float64, sensitivity, epsilon float64) (int, error) {
	return ExpMechBuf(rng, scores, sensitivity, epsilon, nil)
}

// ExpMechBuf is ExpMech with a caller-provided weight buffer (len(scores) or
// nil), so repeated selections — e.g. MWEM's per-round query choice — do not
// allocate. The sampled distribution is identical to ExpMech's.
func ExpMechBuf(rng *rand.Rand, scores []float64, sensitivity, epsilon float64, weights []float64) (int, error) {
	if len(scores) == 0 {
		return 0, fmt.Errorf("noise: empty score list in exponential mechanism")
	}
	if math.IsInf(epsilon, 1) {
		return argmaxUniform(rng, scores), nil
	}
	if epsilon <= 0 {
		return 0, fmt.Errorf("noise: non-positive epsilon %v in exponential mechanism", epsilon)
	}
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	if len(weights) != len(scores) {
		weights = make([]float64, len(scores))
	}
	var total float64
	for i, s := range scores {
		w := math.Exp(epsilon * (s - maxScore) / (2 * sensitivity))
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i, nil
		}
	}
	return len(scores) - 1, nil
}

func argmaxUniform(rng *rand.Rand, scores []float64) int {
	best := scores[0]
	var ties []int
	for i, s := range scores {
		switch {
		case s > best:
			best = s
			ties = ties[:0]
			ties = append(ties, i)
		case s == best:
			ties = append(ties, i)
		}
	}
	return ties[rng.Intn(len(ties))]
}

// Binomial draws an exact sample from Binomial(n, p). For small n it uses
// direct inversion; for large n*p it falls back to a normal-approximation
// rejection step (BTRS-style shortcut: sample a rounded normal and accept if
// in range, retrying with inversion on the residual tail). Exactness matters
// for the data generator's integral-count guarantee, so the large-n path uses
// the exact inverted-CDF walk started near the mode, which is O(sqrt(n*p*q))
// expected steps.
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Work with p <= 1/2 for stability; mirror at the end.
	if p > 0.5 {
		return n - Binomial(rng, n, 1-p)
	}
	np := float64(n) * p
	if np < 30 {
		return binomialInversion(rng, n, p)
	}
	return binomialModeWalk(rng, n, p)
}

// binomialInversion samples by walking the CDF from zero.
func binomialInversion(rng *rand.Rand, n int, p float64) int {
	q := 1 - p
	// P(X=0) = q^n computed in log space to avoid underflow.
	logPMF := float64(n) * math.Log(q)
	pmf := math.Exp(logPMF)
	u := rng.Float64()
	k := 0
	cdf := pmf
	for u > cdf && k < n {
		k++
		pmf *= p / q * float64(n-k+1) / float64(k)
		cdf += pmf
	}
	return k
}

// binomialModeWalk samples exactly by starting the inverted-CDF walk at the
// distribution mode and expanding outward, which keeps the expected number of
// PMF evaluations proportional to the standard deviation.
func binomialModeWalk(rng *rand.Rand, n int, p float64) int {
	q := 1 - p
	mode := int(math.Floor(float64(n+1) * p))
	logPMFMode := logBinomialPMF(n, p, mode)
	u := rng.Float64()
	// Accumulate probability outward from the mode: mode, mode+1, mode-1, ...
	pmfUp := math.Exp(logPMFMode)
	pmfDown := pmfUp
	cum := pmfUp
	if u <= cum {
		return mode
	}
	up, down := mode, mode
	for up < n || down > 0 {
		if up < n {
			up++
			pmfUp *= p / q * float64(n-up+1) / float64(up)
			cum += pmfUp
			if u <= cum {
				return up
			}
		}
		if down > 0 {
			pmfDown *= q / p * float64(down) / float64(n-down+1)
			down--
			cum += pmfDown
			if u <= cum {
				return down
			}
		}
	}
	return mode
}

func logBinomialPMF(n int, p float64, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// Multinomial draws counts for m trials over the categorical distribution p
// (which must be non-negative; it is normalized internally). It uses the
// conditional-binomial decomposition, so the result is an exact multinomial
// sample with sum exactly m. This is the sampling core of the DPBench data
// generator G (Section 5.1).
func Multinomial(rng *rand.Rand, m int, p []float64) []int {
	counts := make([]int, len(p))
	var total float64
	for _, pi := range p {
		if pi < 0 {
			panic("noise: negative probability in multinomial")
		}
		total += pi
	}
	if total == 0 || m <= 0 {
		return counts
	}
	lastPositive := -1
	for i, pi := range p {
		if pi > 0 {
			lastPositive = i
		}
	}
	remainingMass := total
	remaining := m
	for i, pi := range p {
		if remaining == 0 {
			break
		}
		if pi <= 0 {
			continue
		}
		if i == lastPositive {
			// All residual trials land in the final positive cell; this
			// also absorbs any floating-point drift in remainingMass.
			counts[i] = remaining
			break
		}
		frac := pi / remainingMass
		if frac >= 1 {
			counts[i] = remaining
			break
		}
		c := Binomial(rng, remaining, frac)
		counts[i] = c
		remaining -= c
		remainingMass -= pi
	}
	return counts
}
