package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaplaceZeroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Laplace(rng, 0); got != 0 {
		t.Fatalf("Laplace(0) = %v, want 0", got)
	}
	if got := Laplace(rng, -1); got != 0 {
		t.Fatalf("Laplace(-1) = %v, want 0", got)
	}
}

func TestLaplaceMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200_000
	const scale = 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := Laplace(rng, scale)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	// Var(Laplace(b)) = 2 b^2 = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Fatalf("variance = %v, want ~8", variance)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	neg := 0
	for i := 0; i < n; i++ {
		if Laplace(rng, 1) < 0 {
			neg++
		}
	}
	frac := float64(neg) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("negative fraction = %v, want ~0.5", frac)
	}
}

func TestLaplaceVecDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := []float64{1, 2, 3}
	out := LaplaceVec(rng, x, 1)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatal("input mutated")
	}
}

func TestLaplaceMechanismRejectsBadEps(t *testing.T) {
	if _, err := LaplaceMechanism(rand.New(rand.NewSource(1)), []float64{1}, 1, 0); err == nil {
		t.Fatal("expected an error for eps = 0")
	}
	if _, err := LaplaceMechanism(rand.New(rand.NewSource(1)), []float64{1}, 1, -1); err == nil {
		t.Fatal("expected an error for eps < 0")
	}
}

// mustExpMech unwraps ExpMech in tests exercising valid configurations.
func mustExpMech(t *testing.T, rng *rand.Rand, scores []float64, sens, eps float64) int {
	t.Helper()
	i, err := ExpMech(rng, scores, sens, eps)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestExpMechInfinityPicksArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := []float64{1, 5, 3, 5, 2}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[mustExpMech(t, rng, scores, 1, math.Inf(1))]++
	}
	if counts[0]+counts[2]+counts[4] != 0 {
		t.Fatalf("picked non-max items: %v", counts)
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Fatalf("ties not broken uniformly: %v", counts)
	}
}

func TestExpMechPrefersHighScores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scores := []float64{0, 10}
	hi := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if mustExpMech(t, rng, scores, 1, 2) == 1 {
			hi++
		}
	}
	// P(pick 1) = e^10 / (e^0 + e^10), essentially 1.
	if float64(hi)/n < 0.99 {
		t.Fatalf("high score picked only %d/%d times", hi, n)
	}
}

func TestExpMechDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	scores := []float64{0, 1}
	eps, sens := 2.0, 1.0
	const n = 200_000
	hi := 0
	for i := 0; i < n; i++ {
		if mustExpMech(t, rng, scores, sens, eps) == 1 {
			hi++
		}
	}
	want := math.Exp(1) / (1 + math.Exp(1)) // eps*score/(2*sens) = 1 vs 0
	got := float64(hi) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(hi) = %v, want %v", got, want)
	}
}

func TestExpMechRejectsBadInput(t *testing.T) {
	if _, err := ExpMech(rand.New(rand.NewSource(1)), nil, 1, 1); err == nil {
		t.Fatal("expected an error for empty scores")
	}
	if _, err := ExpMech(rand.New(rand.NewSource(1)), []float64{1, 2}, 1, 0); err == nil {
		t.Fatal("expected an error for eps = 0")
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Binomial(rng, 0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := Binomial(rng, 10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := Binomial(rng, 10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
}

func TestBinomialRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10_000)
		p := rng.Float64()
		k := Binomial(rng, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinomialMeanSmallNP(t *testing.T) {
	testBinomialMean(t, 50, 0.1) // inversion path
}

func TestBinomialMeanLargeNP(t *testing.T) {
	testBinomialMean(t, 10_000, 0.3) // mode-walk path
}

func TestBinomialMeanMirroredP(t *testing.T) {
	testBinomialMean(t, 500, 0.9) // p > 1/2 mirror path
}

func testBinomialMean(t *testing.T, n int, p float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const trials = 20_000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := float64(Binomial(rng, n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	wantMean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(trials)+1e-9 {
		t.Fatalf("mean = %v, want %v (n=%d p=%v)", mean, wantMean, n, p)
	}
	variance := sumSq/trials - mean*mean
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.1*wantVar+1 {
		t.Fatalf("variance = %v, want %v", variance, wantVar)
	}
}

func TestMultinomialSumsExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		m := rng.Intn(100_000)
		counts := Multinomial(rng, m, p)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultinomialZeroCellsStayZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := []float64{0.5, 0, 0.5, 0}
	for trial := 0; trial < 100; trial++ {
		counts := Multinomial(rng, 1000, p)
		if counts[1] != 0 || counts[3] != 0 {
			t.Fatalf("zero-probability cell got mass: %v", counts)
		}
	}
}

func TestMultinomialProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := []float64{0.1, 0.2, 0.3, 0.4}
	const m = 1_000_000
	counts := Multinomial(rng, m, p)
	for i, pi := range p {
		got := float64(counts[i]) / m
		if math.Abs(got-pi) > 0.005 {
			t.Fatalf("cell %d proportion %v, want %v", i, got, pi)
		}
	}
}

func TestMultinomialEmptyAndZeroMass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if counts := Multinomial(rng, 0, []float64{1, 2}); counts[0] != 0 || counts[1] != 0 {
		t.Fatal("m=0 should give all zeros")
	}
	counts := Multinomial(rng, 10, []float64{0, 0})
	if counts[0] != 0 || counts[1] != 0 {
		t.Fatal("zero-mass distribution should give all zeros")
	}
}

func TestMultinomialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Multinomial(rand.New(rand.NewSource(1)), 10, []float64{0.5, -0.1})
}

func TestMultinomialUnnormalizedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Weights summing to 10 should behave like the normalized version.
	counts := Multinomial(rng, 100_000, []float64{5, 5})
	frac := float64(counts[0]) / 100_000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("unnormalized weights mishandled: frac = %v", frac)
	}
}
