package noise

import (
	"math"
	"sync"
	"testing"
)

func TestAccountantSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("partition", 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("counts", 0.75); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("spent = %v", got)
	}
	if err := a.Spend("extra", 0.01); err == nil {
		t.Fatal("expected budget-exceeded error")
	}
	if got := a.Remaining(); math.Abs(got) > 1e-12 {
		t.Fatalf("remaining = %v", got)
	}
}

func TestAccountantRejectsBadInputs(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Fatal("expected error for zero budget")
	}
	a, _ := NewAccountant(1)
	if err := a.Spend("x", -0.1); err == nil {
		t.Fatal("expected error for negative spend")
	}
}

func TestAccountantParallelComposition(t *testing.T) {
	// Disjoint buckets each measured at 0.5 cost only 0.5 total.
	a, _ := NewAccountant(1.0)
	for i := 0; i < 10; i++ {
		if err := a.SpendParallel("buckets", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Spent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("parallel spends cost %v, want 0.5", got)
	}
	// A later larger parallel spend charges only the excess.
	if err := a.SpendParallel("buckets", 0.7); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("after larger spend: %v, want 0.7", got)
	}
}

func TestAccountantLedger(t *testing.T) {
	a, _ := NewAccountant(1)
	a.Spend("one", 0.1)
	a.SpendParallel("two", 0.2)
	l := a.Ledger()
	if len(l) != 2 || l[0].Label != "one" || !l[1].Parallel {
		t.Fatalf("ledger = %+v", l)
	}
}

func TestAccountantConcurrentSpends(t *testing.T) {
	a, _ := NewAccountant(1.0)
	var wg sync.WaitGroup
	errs := make([]error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Spend("p", 0.02)
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
		}
	}
	// Exactly 50 spends of 0.02 fit in 1.0.
	if ok != 50 {
		t.Fatalf("%d spends succeeded, want 50", ok)
	}
	if a.Spent() > 1.0+1e-9 {
		t.Fatalf("overspent: %v", a.Spent())
	}
}

func TestAccountantFloatTolerance(t *testing.T) {
	// Ten spends of 0.1 must fill a budget of 1.0 without a spurious
	// floating-point rejection.
	a, _ := NewAccountant(1.0)
	for i := 0; i < 10; i++ {
		if err := a.Spend("step", 0.1); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
}

func TestAccountantSequentialSpendEndsParallelScope(t *testing.T) {
	// The documented contract: a scope of parallel spends with one label
	// composes by max, and a sequential spend with the SAME label ends the
	// scope — a later parallel spend is charged in full again. (The previous
	// implementation took the global max over the whole ledger, silently
	// under-counting re-opened scopes.)
	a, _ := NewAccountant(1.0)
	if err := a.SpendParallel("part", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("part", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := a.SpendParallel("part", 0.3); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("spent %v, want 0.8 (0.3 + 0.2 + re-opened 0.3)", got)
	}
}

func TestAccountantParallelScopesInterleave(t *testing.T) {
	// Parallel spends under other labels must NOT break a label's scope:
	// pre-order tree walks and nested grids interleave levels freely.
	a, _ := NewAccountant(1.0)
	for i := 0; i < 4; i++ {
		if err := a.SpendParallel("level0", 0.25); err != nil {
			t.Fatal(err)
		}
		if err := a.SpendParallel("level1", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Spent(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("spent %v, want 0.75", got)
	}
}

func TestAccountantCloseParallel(t *testing.T) {
	a, _ := NewAccountant(1.0)
	a.SpendParallel("s", 0.4)
	a.CloseParallel("s")
	a.SpendParallel("s", 0.4)
	if got := a.Spent(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("spent %v, want 0.8 after explicit scope close", got)
	}
}

func TestAccountantResetRetainsCapacity(t *testing.T) {
	a, _ := NewAccountant(1.0)
	for i := 0; i < 100; i++ {
		if err := a.SpendParallel("x", 0.5); err != nil {
			t.Fatal(err)
		}
	}
	a.Reset(2.0)
	if a.Spent() != 0 || len(a.Ledger()) != 0 {
		t.Fatal("reset must clear spends")
	}
	if err := a.Spend("y", 1.5); err != nil {
		t.Fatalf("reset total not applied: %v", err)
	}
	// The parallel cache must also be cleared: a fresh scope charges fully.
	if err := a.SpendParallel("x", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("spent %v, want 2.0", got)
	}
}
