package noise

import (
	"math"
	"strings"
	"testing"

	"dpbench/internal/stats"
)

// The fast samplers draw a different stream than the legacy exp/log samplers
// by construction, so they cannot be pinned by the legacy goldens. Instead
// this file pins them distributionally at fixed seeds: Kolmogorov-Smirnov
// against the exact continuous CDFs (Laplace, Gumbel), Pearson chi-square
// against the exact discrete pmf (two-sided geometric), and chi-square over
// selection frequencies against the exact softmax (exponential mechanism).
// Fixed seeds make every test deterministic, so a table or interpolation
// regression fails CI outright rather than flaking.

func laplaceCDF(scale float64) func(float64) float64 {
	return func(x float64) float64 {
		if x < 0 {
			return 0.5 * math.Exp(x/scale)
		}
		return 1 - 0.5*math.Exp(-x/scale)
	}
}

func gumbelCDF(x float64) float64 { return math.Exp(-math.Exp(-x)) }

func TestSamplerVersionStringParse(t *testing.T) {
	for _, v := range []SamplerVersion{SamplerLegacy, SamplerFast} {
		got, err := ParseSamplerVersion(v.String())
		if err != nil || got != v {
			t.Fatalf("round-trip of %v: got %v, err %v", v, got, err)
		}
	}
	if v, err := ParseSamplerVersion(""); err != nil || v != SamplerLegacy {
		t.Fatalf("empty string must parse as legacy, got %v, err %v", v, err)
	}
	if _, err := ParseSamplerVersion("turbo"); err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("unknown version must fail naming the input, got %v", err)
	}
	if s := SamplerVersion(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

func TestFastLaplaceKS(t *testing.T) {
	const n, scale = 200_000, 2.5
	rng := NewRand(20260808)
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = FastLaplace(rng, scale)
	}
	d := stats.KSStatistic(sample, laplaceCDF(scale))
	if crit := stats.KSCriticalValue(n, 1e-3); d > crit {
		t.Fatalf("FastLaplace KS distance %v exceeds critical %v", d, crit)
	}
	if FastLaplace(rng, 0) != 0 || FastLaplace(rng, -1) != 0 {
		t.Fatal("non-positive scale must yield 0")
	}
}

func TestFastLaplaceVecKS(t *testing.T) {
	const n, scale = 200_000, 0.75
	rng := NewRand(31)
	x := make([]float64, n)
	dst := make([]float64, n)
	FastLaplaceVecInto(rng, dst, x, scale)
	d := stats.KSStatistic(dst, laplaceCDF(scale))
	if crit := stats.KSCriticalValue(n, 1e-3); d > crit {
		t.Fatalf("FastLaplaceVecInto KS distance %v exceeds critical %v", d, crit)
	}
	// A non-positive scale passes the input through unchanged.
	x[0], x[1] = 3, -7
	FastLaplaceVecInto(rng, dst, x, 0)
	if dst[0] != 3 || dst[1] != -7 {
		t.Fatal("zero scale must copy the input")
	}
}

func TestFastGumbelKS(t *testing.T) {
	const n = 200_000
	rng := NewRand(77)
	sample := make([]float64, n)
	FastGumbelVecInto(rng, sample)
	d := stats.KSStatistic(sample, gumbelCDF)
	if crit := stats.KSCriticalValue(n, 1e-3); d > crit {
		t.Fatalf("FastGumbelVecInto KS distance %v exceeds critical %v", d, crit)
	}
}

func TestFastGeometricChiSquare(t *testing.T) {
	const (
		n     = 200_000
		scale = 2.0
		lim   = 7 // bins -lim..lim individually, two merged tails
	)
	rng := NewRand(5)
	counts := make(map[int64]float64)
	for i := 0; i < n; i++ {
		counts[FastGeometric(rng, scale)]++
	}
	alpha := math.Exp(-1 / scale)
	p0 := (1 - alpha) / (1 + alpha)
	var observed, expected []float64
	var loTailObs, hiTailObs float64
	for k, c := range counts {
		if k <= -lim {
			loTailObs += c
		} else if k >= lim {
			hiTailObs += c
		}
	}
	tailMass := p0 * math.Pow(alpha, lim) / (1 - alpha)
	observed = append(observed, loTailObs)
	expected = append(expected, n*tailMass)
	for k := int64(-lim + 1); k < lim; k++ {
		observed = append(observed, counts[k])
		expected = append(expected, n*p0*math.Pow(alpha, math.Abs(float64(k))))
	}
	observed = append(observed, hiTailObs)
	expected = append(expected, n*tailMass)
	x2 := stats.ChiSquareStatistic(observed, expected)
	if crit := stats.ChiSquareCriticalValue(len(observed)-1, 1e-3); !(x2 < crit) {
		t.Fatalf("FastGeometric chi-square %v exceeds critical %v", x2, crit)
	}
	if FastGeometric(rng, 0) != 0 || FastGeometric(rng, -2) != 0 {
		t.Fatal("non-positive scale must yield 0")
	}
}

// TestFastExpMechTop1Distribution checks that the Gumbel-max selection hits
// each index with its exact softmax probability: with sensitivity 1 and
// epsilon 2 the weight of score s is exp(s), so the selection frequencies
// over many independent draws must pass a chi-square test against softmax.
func TestFastExpMechTop1Distribution(t *testing.T) {
	const n = 200_000
	scores := []float64{0, 0.5, 1.0, 1.5, 2.0}
	want := make([]float64, len(scores))
	var z float64
	for i, s := range scores {
		want[i] = math.Exp(s)
		z += want[i]
	}
	rng := NewRand(123)
	observed := make([]float64, len(scores))
	for i := 0; i < n; i++ {
		idx, err := FastExpMechTop1(rng, scores, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		observed[idx]++
	}
	expected := make([]float64, len(scores))
	for i := range want {
		expected[i] = n * want[i] / z
	}
	x2 := stats.ChiSquareStatistic(observed, expected)
	if crit := stats.ChiSquareCriticalValue(len(scores)-1, 1e-3); !(x2 < crit) {
		t.Fatalf("FastExpMechTop1 chi-square %v exceeds critical %v (observed %v, expected %v)",
			x2, crit, observed, expected)
	}
}

func TestFastExpMechTop1Validation(t *testing.T) {
	rng := NewRand(9)
	if _, err := FastExpMechTop1(rng, nil, 1, 1); err == nil {
		t.Fatal("empty scores must fail")
	}
	if _, err := FastExpMechTop1(rng, []float64{1, 2}, 1, 0); err == nil {
		t.Fatal("non-positive epsilon must fail")
	}
	if idx, err := FastExpMechTop1(rng, []float64{4}, 1, 1); err != nil || idx != 0 {
		t.Fatalf("single candidate must select 0 without error, got %d, %v", idx, err)
	}
	// Infinite epsilon degrades to a uniform argmax over the maximal scores.
	for i := 0; i < 100; i++ {
		idx, err := FastExpMechTop1(rng, []float64{1, 3, 3, 0}, 1, math.Inf(1))
		if err != nil || (idx != 1 && idx != 2) {
			t.Fatalf("infinite epsilon must pick a maximal score, got %d, %v", idx, err)
		}
	}
	// -Inf scores (MWEM's already-chosen queries) can never win while a
	// finite score exists.
	scores := []float64{math.Inf(-1), 0, math.Inf(-1)}
	for i := 0; i < 200; i++ {
		idx, err := FastExpMechTop1(rng, scores, 1, 0.01)
		if err != nil || idx != 1 {
			t.Fatalf("-Inf score won the selection: got %d, %v", idx, err)
		}
	}
}

// TestMeterFastRouting pins the dispatch: a SamplerFast meter draws exactly
// the stream the package-level fast samplers draw on the same seed, just as
// TestMeterWrapsNoiseStreamExactly pins the legacy dispatch.
func TestMeterFastRouting(t *testing.T) {
	m := NewMeterV(1, NewRand(404), SamplerFast)
	direct := NewRand(404)
	if m.Sampler() != SamplerFast {
		t.Fatal("meter did not retain its sampler version")
	}
	if got, want := m.Laplace("a", 2.5, 0.1), FastLaplace(direct, 2.5); got != want {
		t.Fatalf("Laplace routed wrong: %v != %v", got, want)
	}
	x := []float64{1, 2, 3, 4, 5}
	got := m.LaplaceVecInto("b", make([]float64, len(x)), x, 0.5, 0.1)
	want := FastLaplaceVecInto(direct, make([]float64, len(x)), x, 0.5)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("LaplaceVecInto routed wrong at %d: %v != %v", i, got[i], want[i])
		}
	}
	if g, w := m.Geometric("c", 1, 0.1), FastGeometric(direct, 10); g != w {
		t.Fatalf("Geometric routed wrong: %d != %d", g, w)
	}
	scores := []float64{0.3, 1.7, 0.2, 2.4}
	gi := m.ExpMechBuf("d", scores, 1, 0.1, make([]float64, len(scores)))
	wi, err := FastExpMechTop1(direct, scores, 1, 0.1)
	if err != nil || gi != wi {
		t.Fatalf("ExpMech routed wrong: %d != %d (%v)", gi, wi, err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	// Sub-meters inherit the version.
	sub := m.SubEps("sub", 0.2)
	if sub.Sampler() != SamplerFast {
		t.Fatal("sub-meter did not inherit the sampler version")
	}
	sub.Close()
}

func TestExpMechGumbels(t *testing.T) {
	m := NewMeterV(1, NewRand(55), SamplerFast)
	direct := NewRand(55)
	dst := make([]float64, 64)
	if !m.ExpMechGumbels("sel", dst, 0.25) {
		t.Fatal("valid ExpMechGumbels returned false")
	}
	want := make([]float64, 64)
	FastGumbelVecInto(direct, want)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Gumbel stream diverged at %d: %v != %v", i, dst[i], want[i])
		}
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	// Invalid input is a sticky meter error with dst untouched, matching the
	// ExpMech error path.
	bad := NewMeterV(1, NewRand(1), SamplerFast)
	if bad.ExpMechGumbels("sel", nil, 0.25) || bad.Err() == nil {
		t.Fatal("empty dst must fail and stick")
	}
	bad2 := NewMeterV(1, NewRand(1), SamplerFast)
	if bad2.ExpMechGumbels("sel", dst, 0) || bad2.Err() == nil {
		t.Fatal("non-positive epsilon must fail and stick")
	}
}

// TestLaplaceVecParIntoLedger pins the budget arithmetic of the batched
// parallel vector draw: one call charges its label once under parallel
// composition, so repeated calls with the same label cost the maximum —
// exactly the ledger a loop of per-element LaplacePar calls would produce.
func TestLaplaceVecParIntoLedger(t *testing.T) {
	m, err := NewAuditedMeterV(1, NewRand(7), SamplerFast)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	x := []float64{10, 20, 30}
	dst := make([]float64, len(x))
	m.LaplaceVecParInto("counts", dst, x, 2, 0.4)
	m.LaplaceVecParInto("counts", dst, x, 2, 0.4)
	if got := m.Spent(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("two parallel charges of 0.4 under one label must cost 0.4, ledger says %v", got)
	}
	for _, s := range m.Ledger() {
		if !s.Parallel {
			t.Fatalf("spend %+v not recorded as parallel", s)
		}
	}
	// The draw stream matches the sequential variant exactly: composition
	// kind affects only the ledger, never the noise.
	seq := NewMeterV(1, NewRand(7), SamplerFast)
	want := seq.LaplaceVecInto("counts", make([]float64, len(x)), x, 2, 0.4)
	par := NewMeterV(1, NewRand(7), SamplerFast)
	got := par.LaplaceVecParInto("counts", make([]float64, len(x)), x, 2, 0.4)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("parallel vec draw diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}
