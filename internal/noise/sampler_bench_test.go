package noise

import (
	"testing"
)

// Sampler microbenchmarks: legacy vs fast for the three draw shapes the
// mechanisms are built from. These record the per-draw sampler floor in the
// BENCH_*.json trajectory directly (scripts/bench.sh picks them up).

var (
	sinkF float64
	sinkI int
)

func BenchmarkLaplaceDraw(b *testing.B) {
	rng := NewRand(7)
	b.Run("legacy", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t += Laplace(rng, 10)
		}
		sinkF = t
	})
	b.Run("fast", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t += FastLaplace(rng, 10)
		}
		sinkF = t
	})
}

func BenchmarkLaplaceVecBatch(b *testing.B) {
	const n = 4096
	rng := NewRand(7)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LaplaceVecInto(rng, dst, x, 10)
		}
		sinkF = dst[0]
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FastLaplaceVecInto(rng, dst, x, 10)
		}
		sinkF = dst[0]
	})
}

func BenchmarkExpMechTop1(b *testing.B) {
	const n = 4096
	rng := NewRand(7)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i%31) / 31
	}
	weights := make([]float64, n)
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := ExpMechBuf(rng, scores, 1, 0.05, weights)
			if err != nil {
				b.Fatal(err)
			}
			sinkI = idx
		}
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx, err := FastExpMechTop1(rng, scores, 1, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			sinkI = idx
		}
	})
}

func BenchmarkGeometricDraw(b *testing.B) {
	rng := NewRand(7)
	b.Run("legacy", func(b *testing.B) {
		var t int64
		for i := 0; i < b.N; i++ {
			t += Geometric(rng, 10)
		}
		sinkI = int(t)
	})
	b.Run("fast", func(b *testing.B) {
		var t int64
		for i := 0; i < b.N; i++ {
			t += FastGeometric(rng, 10)
		}
		sinkI = int(t)
	})
}
