package noise

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestAccountantRetentionOff(t *testing.T) {
	a, _ := NewAccountant(1.0)
	a.SetRetainHistory(false)
	for i := 0; i < 5; i++ {
		if err := a.Spend("q", 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Spent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("spent %v, want 0.5: running totals must survive retention off", got)
	}
	if got := a.Ledger(); got != nil {
		t.Fatalf("Ledger() = %d spends with retention off, want nil", len(got))
	}
	// Budget enforcement is unchanged: totals, not history, enforce it.
	if err := a.Spend("q", 0.6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend with retention off: %v, want ErrBudgetExhausted", err)
	}
	// Parallel-scope accounting also survives without history.
	a.Reset(1.0)
	a.SetRetainHistory(false)
	a.SpendParallel("p", 0.3)
	a.SpendParallel("p", 0.5)
	if got := a.Spent(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("parallel max with retention off: spent %v, want 0.5", got)
	}
	// Reset re-enables retention: pooled audit accountants need the history.
	a.Reset(1.0)
	if err := a.Spend("q", 0.1); err != nil {
		t.Fatal(err)
	}
	if got := a.Ledger(); len(got) != 1 {
		t.Fatalf("Ledger() after Reset = %d spends, want 1 (retention re-enabled)", len(got))
	}
}

func TestAccountantRestoreBypassesBudgetCheck(t *testing.T) {
	a, _ := NewAccountant(1.0)
	// Recovery must reproduce committed history even past the current total
	// (e.g. the budget was lowered between restarts).
	if err := a.Restore("query ADULT/DAWA", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := a.Restore("query ADULT/DAWA", 0.8); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("restored spent %v, want 1.6 (no budget check on recovery)", got)
	}
	// Fresh spends still enforce the live total against the restored state.
	if err := a.Spend("query ADULT/DAWA", 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("spend on over-restored accountant: %v, want ErrBudgetExhausted", err)
	}
	if err := a.Restore("q", -0.1); err == nil {
		t.Fatal("negative restored spend accepted")
	}
}

func TestSpendDurableCommitHook(t *testing.T) {
	a, _ := NewAccountant(1.0)
	// Without a hook, SpendDurable is Spend with sequence 0.
	seq, err := a.SpendDurable("q", 0.1)
	if err != nil || seq != 0 {
		t.Fatalf("hookless SpendDurable: seq=%d err=%v, want 0/nil", seq, err)
	}

	var committed []Spend
	a.SetCommitFunc(func(s Spend) (uint64, error) {
		committed = append(committed, s)
		return uint64(len(committed)) + 10, nil
	})
	seq, err = a.SpendDurable("q", 0.2)
	if err != nil || seq != 11 {
		t.Fatalf("hooked SpendDurable: seq=%d err=%v, want 11/nil", seq, err)
	}
	if len(committed) != 1 || committed[0] != (Spend{Label: "q", Eps: 0.2}) {
		t.Fatalf("hook saw %+v", committed)
	}

	// A refused spend never reaches the hook: nothing durable happens for a
	// charge that was not recorded.
	if _, err := a.SpendDurable("q", 5.0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend: %v, want ErrBudgetExhausted", err)
	}
	if len(committed) != 1 {
		t.Fatalf("refused spend reached the commit hook (%d commits)", len(committed))
	}
}

func TestSpendDurableCommitFailureKeepsCharge(t *testing.T) {
	a, _ := NewAccountant(1.0)
	boom := fmt.Errorf("disk on fire")
	a.SetCommitFunc(func(Spend) (uint64, error) { return 0, boom })
	seq, err := a.SpendDurable("q", 0.3)
	if seq != 0 || !errors.Is(err, ErrCommitFailed) || !errors.Is(err, boom) {
		t.Fatalf("failed commit: seq=%d err=%v, want ErrCommitFailed wrapping the cause", seq, err)
	}
	// The in-memory charge stays: over-reporting is privacy-safe, and the
	// caller must fail closed rather than refund a maybe-durable spend.
	if got := a.Spent(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("spent %v after failed commit, want 0.3 (charge must stay)", got)
	}
}
