// Package vec provides the multi-dimensional count-vector representation of
// a private database used throughout DPBench (Section 2.2 of the paper).
//
// A database instance over target attributes B = {B1, ..., Bk} is summarized
// as an array x of cell counts with one cell per element of the cross product
// of the attribute domains. The three key properties DPBench varies are
// domain size n (number of cells), scale ||x||1 (number of tuples), and
// shape p = x/||x||1 (the empirical distribution over the domain).
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a k-dimensional array of cell counts stored flat in row-major
// order. Counts are float64 so noisy estimates can share the representation,
// but vectors produced by the data generator always hold integral counts.
type Vector struct {
	// Dims holds the domain size of each attribute, e.g. [4096] for a 1D
	// histogram or [128, 128] for a 2D one.
	Dims []int
	// Data holds the cell counts flat in row-major order; len(Data) is the
	// product of Dims.
	Data []float64
}

// New returns a zero vector with the given dimensions.
// It panics if any dimension is non-positive.
func New(dims ...int) *Vector {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("vec: non-positive dimension %d", d))
		}
		n *= d
	}
	return &Vector{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// FromData wraps existing data in a Vector, validating the sizes agree.
func FromData(data []float64, dims ...int) (*Vector, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("vec: non-positive dimension %d", d)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("vec: data length %d does not match dims %v (want %d)", len(data), dims, n)
	}
	return &Vector{Dims: append([]int(nil), dims...), Data: data}, nil
}

// N returns the domain size: the total number of cells.
func (v *Vector) N() int { return len(v.Data) }

// K returns the dimensionality (number of attributes).
func (v *Vector) K() int { return len(v.Dims) }

// Scale returns ||x||1, the total count (number of tuples) in the vector.
func (v *Vector) Scale() float64 {
	var s float64
	for _, c := range v.Data {
		s += c
	}
	return s
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := New(v.Dims...)
	copy(c.Data, v.Data)
	return c
}

// At returns the count at the given multi-dimensional index.
func (v *Vector) At(idx ...int) float64 {
	return v.Data[v.Offset(idx...)]
}

// Set stores a count at the given multi-dimensional index.
func (v *Vector) Set(val float64, idx ...int) {
	v.Data[v.Offset(idx...)] = val
}

// Offset converts a multi-dimensional index into a flat row-major offset.
// It panics if the index has the wrong arity or is out of range.
func (v *Vector) Offset(idx ...int) int {
	if len(idx) != len(v.Dims) {
		panic(fmt.Sprintf("vec: index arity %d does not match dims %v", len(idx), v.Dims))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= v.Dims[i] {
			panic(fmt.Sprintf("vec: index %v out of range for dims %v", idx, v.Dims))
		}
		off = off*v.Dims[i] + x
	}
	return off
}

// Shape returns the normalized distribution p = x/||x||1. If the vector is
// empty (scale zero) the uniform distribution is returned, matching the
// convention that an empty database carries no shape information.
func (v *Vector) Shape() []float64 {
	p := make([]float64, len(v.Data))
	s := v.Scale()
	if s == 0 {
		u := 1 / float64(len(v.Data))
		for i := range p {
			p[i] = u
		}
		return p
	}
	for i, c := range v.Data {
		p[i] = c / s
	}
	return p
}

// ZeroFraction returns the fraction of cells with a zero count. Table 2 of
// the paper reports this statistic for every dataset.
func (v *Vector) ZeroFraction() float64 {
	z := 0
	for _, c := range v.Data {
		if c == 0 {
			z++
		}
	}
	return float64(z) / float64(len(v.Data))
}

// ErrBadCoarsen is returned when a requested coarsening does not evenly
// divide the current domain.
var ErrBadCoarsen = errors.New("vec: target dims must evenly divide current dims")

// Coarsen aggregates adjacent cells to produce a vector over a smaller
// domain, as DPBench does to derive versions of each dataset with smaller
// domain sizes (Section 6.1). Each target dimension must evenly divide the
// corresponding current dimension.
func (v *Vector) Coarsen(dims ...int) (*Vector, error) {
	if len(dims) != len(v.Dims) {
		return nil, fmt.Errorf("vec: coarsen arity %d does not match dims %v", len(dims), v.Dims)
	}
	factors := make([]int, len(dims))
	for i, d := range dims {
		if d <= 0 || v.Dims[i]%d != 0 {
			return nil, fmt.Errorf("%w: %v -> %v", ErrBadCoarsen, v.Dims, dims)
		}
		factors[i] = v.Dims[i] / d
	}
	out := New(dims...)
	idx := make([]int, len(v.Dims))
	coarse := make([]int, len(v.Dims))
	for off := range v.Data {
		// Decode the row-major offset into idx.
		rem := off
		for i := len(v.Dims) - 1; i >= 0; i-- {
			idx[i] = rem % v.Dims[i]
			rem /= v.Dims[i]
		}
		for i := range idx {
			coarse[i] = idx[i] / factors[i]
		}
		out.Data[out.Offset(coarse...)] += v.Data[off]
	}
	return out, nil
}

// L1Distance returns the L1 distance between two vectors of equal length.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vec: length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// L2Distance returns the Euclidean distance between two vectors of equal
// length.
func L2Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vec: length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of s.
func Sum(s []float64) float64 {
	var t float64
	for _, x := range s {
		t += x
	}
	return t
}

// AddInto writes a[i] + b[i] into dst elementwise. It is the batch kernel
// under the fast samplers' vectorized noise paths: noise blocks are
// synthesized into a scratch buffer and folded onto the data in one
// streaming pass, keeping RNG work and memory traffic in separate loops.
// dst may alias a (in-place accumulation) but must match both lengths.
func AddInto(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("vec: length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Argmax returns the index of the first maximum element of s (-1 for an
// empty slice). Shared by selection paths that resolve a winner after a
// vectorized scoring pass.
func Argmax(s []float64) int {
	if len(s) == 0 {
		return -1
	}
	best := 0
	for i, x := range s[1:] {
		if x > s[best] {
			best = i + 1
		}
	}
	return best
}
