package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	v := New(4, 3)
	if v.N() != 12 {
		t.Fatalf("N() = %d, want 12", v.N())
	}
	if v.K() != 2 {
		t.Fatalf("K() = %d, want 2", v.K())
	}
	for i, c := range v.Data {
		if c != 0 {
			t.Fatalf("cell %d = %v, want 0", i, c)
		}
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(4, 0)
}

func TestFromData(t *testing.T) {
	v, err := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if got := v.At(0, 1); got != 2 {
		t.Fatalf("At(0,1) = %v, want 2", got)
	}
}

func TestFromDataSizeMismatch(t *testing.T) {
	if _, err := FromData([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected error for mismatched data length")
	}
}

func TestFromDataBadDim(t *testing.T) {
	if _, err := FromData([]float64{}, -1); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}

func TestScale(t *testing.T) {
	v, _ := FromData([]float64{1, 2, 3, 4}, 4)
	if got := v.Scale(); got != 10 {
		t.Fatalf("Scale() = %v, want 10", got)
	}
}

func TestSetAndAt(t *testing.T) {
	v := New(3, 3)
	v.Set(7, 2, 1)
	if got := v.At(2, 1); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := v.Data[2*3+1]; got != 7 {
		t.Fatalf("flat offset = %v, want 7", got)
	}
}

func TestOffsetPanics(t *testing.T) {
	v := New(3, 3)
	for _, idx := range [][]int{{3, 0}, {0, -1}, {1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", idx)
				}
			}()
			v.Offset(idx...)
		}()
	}
}

func TestClone(t *testing.T) {
	v, _ := FromData([]float64{1, 2, 3, 4}, 4)
	c := v.Clone()
	c.Data[0] = 99
	if v.Data[0] != 1 {
		t.Fatal("clone aliases original data")
	}
}

func TestShapeSumsToOne(t *testing.T) {
	v, _ := FromData([]float64{2, 3, 5}, 3)
	p := v.Shape()
	if !almostEqual(Sum(p), 1, 1e-12) {
		t.Fatalf("shape sums to %v, want 1", Sum(p))
	}
	if !almostEqual(p[2], 0.5, 1e-12) {
		t.Fatalf("p[2] = %v, want 0.5", p[2])
	}
}

func TestShapeOfEmptyVectorIsUniform(t *testing.T) {
	v := New(4)
	p := v.Shape()
	for i, pi := range p {
		if !almostEqual(pi, 0.25, 1e-12) {
			t.Fatalf("p[%d] = %v, want 0.25", i, pi)
		}
	}
}

func TestZeroFraction(t *testing.T) {
	v, _ := FromData([]float64{0, 1, 0, 2}, 4)
	if got := v.ZeroFraction(); got != 0.5 {
		t.Fatalf("ZeroFraction = %v, want 0.5", got)
	}
}

func TestCoarsen1D(t *testing.T) {
	v, _ := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	c, err := v.Coarsen(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 11, 15}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("coarse[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestCoarsen2D(t *testing.T) {
	v, _ := FromData([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4)
	c, err := v.Coarsen(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{14, 22, 46, 54} // 2x2 block sums
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("coarse[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestCoarsenPreservesScale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New(16, 8)
		for i := range v.Data {
			v.Data[i] = float64(rng.Intn(100))
		}
		c, err := v.Coarsen(4, 2)
		if err != nil {
			return false
		}
		return almostEqual(c.Scale(), v.Scale(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoarsenRejectsUneven(t *testing.T) {
	v := New(10)
	if _, err := v.Coarsen(3); err == nil {
		t.Fatal("expected error for non-dividing coarsening")
	}
	if _, err := v.Coarsen(4, 4); err == nil {
		t.Fatal("expected error for arity mismatch")
	}
	if _, err := v.Coarsen(0); err == nil {
		t.Fatal("expected error for zero target dim")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0, 3}
	b := []float64{0, 4, 0}
	if got := L1Distance(a, b); got != 7 {
		t.Fatalf("L1 = %v, want 7", got)
	}
	if got := L2Distance(a, b); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2Distance([]float64{1}, []float64{1, 2})
}

func TestL2AtMostL1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		return L2Distance(a, b) <= L1Distance(a, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
