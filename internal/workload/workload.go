// Package workload defines the query workloads W of the benchmark (Section
// 6.2 of the paper): the 1D Prefix workload, random range-query workloads for
// 1D and 2D, the identity workload, and the machinery to evaluate a workload
// against a data vector. Queries are represented as axis-aligned ranges, the
// (hyper-)rectangles of Section 2.2, rather than dense matrix rows, so
// evaluation via prefix sums is O(q) after an O(n) precomputation.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/vec"
)

// Query is an inclusive multi-dimensional range query: it counts the cells
// with Lo[j] <= index_j <= Hi[j] for every dimension j.
type Query struct {
	Lo, Hi []int
}

// Workload is a set of range queries over a fixed domain.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Dims is the domain the queries are defined over.
	Dims []int
	// Queries holds the range queries.
	Queries []Query
}

// Size returns the number of queries q.
func (w *Workload) Size() int { return len(w.Queries) }

// Prefix returns the 1D Prefix workload over domain size n: queries [0, i]
// for every i in [0, n). Any 1D range query is the difference of two prefix
// queries, which is why the paper uses it as the canonical 1D workload.
func Prefix(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("Prefix(%d)", n), Dims: []int{n}}
	for i := 0; i < n; i++ {
		w.Queries = append(w.Queries, Query{Lo: []int{0}, Hi: []int{i}})
	}
	return w
}

// Identity returns the workload of n point queries over a 1D domain.
func Identity(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("Identity(%d)", n), Dims: []int{n}}
	for i := 0; i < n; i++ {
		w.Queries = append(w.Queries, Query{Lo: []int{i}, Hi: []int{i}})
	}
	return w
}

// AllRange returns all n*(n+1)/2 range queries over a 1D domain. Intended for
// small n (tests and exact-variance computations).
func AllRange(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("AllRange(%d)", n), Dims: []int{n}}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			w.Queries = append(w.Queries, Query{Lo: []int{i}, Hi: []int{j}})
		}
	}
	return w
}

// RandomRange returns q uniformly random 1D range queries drawn with the
// given rng.
func RandomRange(n, q int, rng *rand.Rand) *Workload {
	w := &Workload{Name: fmt.Sprintf("RandomRange(%d,%d)", n, q), Dims: []int{n}}
	for k := 0; k < q; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		w.Queries = append(w.Queries, Query{Lo: []int{a}, Hi: []int{b}})
	}
	return w
}

// RandomRange2D returns q uniformly random rectangle queries over an
// nx x ny domain, the paper's 2D workload (2000 random range queries).
func RandomRange2D(nx, ny, q int, rng *rand.Rand) *Workload {
	w := &Workload{Name: fmt.Sprintf("RandomRange2D(%dx%d,%d)", nx, ny, q), Dims: []int{ny, nx}}
	for k := 0; k < q; k++ {
		x0, x1 := rng.Intn(nx), rng.Intn(nx)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := rng.Intn(ny), rng.Intn(ny)
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		w.Queries = append(w.Queries, Query{Lo: []int{y0, x0}, Hi: []int{y1, x1}})
	}
	return w
}

// Evaluate computes the exact workload answers y = Wx. The vector's
// dimensions must match the workload's.
func (w *Workload) Evaluate(v *vec.Vector) ([]float64, error) {
	if len(v.Dims) != len(w.Dims) {
		return nil, fmt.Errorf("workload: dimensionality mismatch %v vs %v", v.Dims, w.Dims)
	}
	for i := range v.Dims {
		if v.Dims[i] != w.Dims[i] {
			return nil, fmt.Errorf("workload: domain mismatch %v vs %v", v.Dims, w.Dims)
		}
	}
	switch len(w.Dims) {
	case 1:
		return w.evaluate1D(v.Data), nil
	case 2:
		return w.evaluate2D(v.Data, w.Dims[1], w.Dims[0]), nil
	default:
		return nil, fmt.Errorf("workload: unsupported dimensionality %d", len(w.Dims))
	}
}

// EvaluateFlat is Evaluate for a raw estimate slice already known to match
// the workload's domain (the common case for algorithm outputs).
func (w *Workload) EvaluateFlat(data []float64) []float64 {
	switch len(w.Dims) {
	case 1:
		return w.evaluate1D(data)
	case 2:
		return w.evaluate2D(data, w.Dims[1], w.Dims[0])
	default:
		panic(fmt.Sprintf("workload: unsupported dimensionality %d", len(w.Dims)))
	}
}

func (w *Workload) evaluate1D(data []float64) []float64 {
	n := w.Dims[0]
	prefix := make([]float64, n+1)
	for i, x := range data {
		prefix[i+1] = prefix[i] + x
	}
	out := make([]float64, len(w.Queries))
	for k, q := range w.Queries {
		out[k] = prefix[q.Hi[0]+1] - prefix[q.Lo[0]]
	}
	return out
}

func (w *Workload) evaluate2D(data []float64, nx, ny int) []float64 {
	// 2D summed-area table: sat[y][x] = sum of cells with row < y, col < x.
	sat := make([]float64, (nx+1)*(ny+1))
	at := func(y, x int) float64 { return sat[y*(nx+1)+x] }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			sat[(y+1)*(nx+1)+x+1] = data[y*nx+x] + at(y, x+1) + at(y+1, x) - at(y, x)
		}
	}
	out := make([]float64, len(w.Queries))
	for k, q := range w.Queries {
		y0, x0, y1, x1 := q.Lo[0], q.Lo[1], q.Hi[0], q.Hi[1]
		out[k] = at(y1+1, x1+1) - at(y0, x1+1) - at(y1+1, x0) + at(y0, x0)
	}
	return out
}

// CellWeights returns, for each cell of the domain, the number of workload
// queries covering it. GreedyH uses this to weight hierarchy levels, and
// MWEM's update step needs per-query membership tests, served by Covers.
func (w *Workload) CellWeights() []float64 {
	n := 1
	for _, d := range w.Dims {
		n *= d
	}
	out := make([]float64, n)
	switch len(w.Dims) {
	case 1:
		// Difference array over inclusive ranges.
		diff := make([]float64, n+1)
		for _, q := range w.Queries {
			diff[q.Lo[0]]++
			diff[q.Hi[0]+1]--
		}
		var run float64
		for i := 0; i < n; i++ {
			run += diff[i]
			out[i] = run
		}
	case 2:
		ny, nx := w.Dims[0], w.Dims[1]
		diff := make([]float64, (ny+1)*(nx+1))
		for _, q := range w.Queries {
			y0, x0, y1, x1 := q.Lo[0], q.Lo[1], q.Hi[0], q.Hi[1]
			diff[y0*(nx+1)+x0]++
			diff[y0*(nx+1)+x1+1]--
			diff[(y1+1)*(nx+1)+x0]--
			diff[(y1+1)*(nx+1)+x1+1]++
		}
		for y := 0; y < ny; y++ {
			var run float64
			for x := 0; x < nx; x++ {
				run += diff[y*(nx+1)+x]
				if y > 0 {
					out[y*nx+x] = out[(y-1)*nx+x] + run
				} else {
					out[y*nx+x] = run
				}
			}
		}
	}
	return out
}

// Covers reports whether query k covers the flat cell index.
func (w *Workload) Covers(k, cell int) bool {
	q := w.Queries[k]
	switch len(w.Dims) {
	case 1:
		return cell >= q.Lo[0] && cell <= q.Hi[0]
	case 2:
		nx := w.Dims[1]
		y, x := cell/nx, cell%nx
		return y >= q.Lo[0] && y <= q.Hi[0] && x >= q.Lo[1] && x <= q.Hi[1]
	default:
		panic("workload: unsupported dimensionality")
	}
}

// Sensitivity returns the L1 sensitivity of the workload when answered
// directly: the maximum number of queries any single cell participates in.
func (w *Workload) Sensitivity() float64 {
	weights := w.CellWeights()
	var m float64
	for _, v := range weights {
		if v > m {
			m = v
		}
	}
	return m
}
