// Package workload defines the query workloads W of the benchmark (Section
// 6.2 of the paper): the 1D Prefix workload, random range-query workloads for
// 1D and 2D, the identity workload, and the machinery to evaluate a workload
// against a data vector. Queries are represented as axis-aligned ranges, the
// (hyper-)rectangles of Section 2.2, rather than dense matrix rows, so
// evaluation via prefix sums is O(q) after an O(n) precomputation.
//
// Query bounds are stored flat in struct-of-arrays form (one int32 slice per
// bound) rather than as a slice of per-query structs: evaluating q queries
// walks four contiguous arrays instead of chasing two slice headers per
// query, and the Evaluator type answers a whole workload into a
// caller-provided buffer without allocating. See evaluator.go.
package workload

import (
	"fmt"
	"math/rand"

	"dpbench/internal/vec"
)

// Workload is a set of inclusive axis-aligned range queries over a fixed
// domain. Query k counts the cells with lo_j <= index_j <= hi_j in every
// dimension j; bounds live in the flat lo0/hi0 (dimension 0) and lo1/hi1
// (dimension 1, 2D only) arrays. The zero value with Name and Dims set is a
// valid empty workload; grow it with AddRange or AddRect.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Dims is the domain the queries are defined over.
	Dims []int

	// Struct-of-arrays query bounds, one entry per query.
	lo0, hi0 []int32
	lo1, hi1 []int32
}

// Size returns the number of queries q.
func (w *Workload) Size() int { return len(w.lo0) }

// AddRange appends the inclusive 1D range query [lo, hi]. The workload must
// be one-dimensional.
func (w *Workload) AddRange(lo, hi int) {
	if len(w.Dims) != 1 {
		panic("workload: AddRange on a non-1D workload")
	}
	w.lo0 = append(w.lo0, int32(lo))
	w.hi0 = append(w.hi0, int32(hi))
}

// AddRect appends the inclusive rectangle query [y0,y1] x [x0,x1] (rows, then
// columns). The workload must be two-dimensional.
func (w *Workload) AddRect(y0, x0, y1, x1 int) {
	if len(w.Dims) != 2 {
		panic("workload: AddRect on a non-2D workload")
	}
	w.lo0 = append(w.lo0, int32(y0))
	w.hi0 = append(w.hi0, int32(y1))
	w.lo1 = append(w.lo1, int32(x0))
	w.hi1 = append(w.hi1, int32(x1))
}

// Grow pre-allocates capacity for q additional queries.
func (w *Workload) Grow(q int) {
	grow := func(s []int32) []int32 {
		out := make([]int32, len(s), len(s)+q)
		copy(out, s)
		return out
	}
	w.lo0, w.hi0 = grow(w.lo0), grow(w.hi0)
	if len(w.Dims) == 2 {
		w.lo1, w.hi1 = grow(w.lo1), grow(w.hi1)
	}
}

// Range returns the inclusive [lo, hi] bounds of 1D query k.
func (w *Workload) Range(k int) (lo, hi int) {
	return int(w.lo0[k]), int(w.hi0[k])
}

// Rect returns the inclusive bounds (rows [y0,y1], columns [x0,x1]) of 2D
// query k.
func (w *Workload) Rect(k int) (y0, x0, y1, x1 int) {
	return int(w.lo0[k]), int(w.lo1[k]), int(w.hi0[k]), int(w.hi1[k])
}

// Prefix returns the 1D Prefix workload over domain size n: queries [0, i]
// for every i in [0, n). Any 1D range query is the difference of two prefix
// queries, which is why the paper uses it as the canonical 1D workload.
func Prefix(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("Prefix(%d)", n), Dims: []int{n}}
	w.Grow(n)
	for i := 0; i < n; i++ {
		w.AddRange(0, i)
	}
	return w
}

// Identity returns the workload of n point queries over a 1D domain.
func Identity(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("Identity(%d)", n), Dims: []int{n}}
	w.Grow(n)
	for i := 0; i < n; i++ {
		w.AddRange(i, i)
	}
	return w
}

// AllRange returns all n*(n+1)/2 range queries over a 1D domain. Intended for
// small n (tests and exact-variance computations).
func AllRange(n int) *Workload {
	w := &Workload{Name: fmt.Sprintf("AllRange(%d)", n), Dims: []int{n}}
	w.Grow(n * (n + 1) / 2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			w.AddRange(i, j)
		}
	}
	return w
}

// RandomRange returns q uniformly random 1D range queries drawn with the
// given rng.
func RandomRange(n, q int, rng *rand.Rand) *Workload {
	w := &Workload{Name: fmt.Sprintf("RandomRange(%d,%d)", n, q), Dims: []int{n}}
	w.Grow(q)
	for k := 0; k < q; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		w.AddRange(a, b)
	}
	return w
}

// RandomRange2D returns q uniformly random rectangle queries over an
// nx x ny domain, the paper's 2D workload (2000 random range queries).
func RandomRange2D(nx, ny, q int, rng *rand.Rand) *Workload {
	w := &Workload{Name: fmt.Sprintf("RandomRange2D(%dx%d,%d)", nx, ny, q), Dims: []int{ny, nx}}
	w.Grow(q)
	for k := 0; k < q; k++ {
		x0, x1 := rng.Intn(nx), rng.Intn(nx)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		y0, y1 := rng.Intn(ny), rng.Intn(ny)
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		w.AddRect(y0, x0, y1, x1)
	}
	return w
}

// Evaluate computes the exact workload answers y = Wx. The vector's
// dimensions must match the workload's.
func (w *Workload) Evaluate(v *vec.Vector) ([]float64, error) {
	if len(v.Dims) != len(w.Dims) {
		return nil, fmt.Errorf("workload: dimensionality mismatch %v vs %v", v.Dims, w.Dims)
	}
	for i := range v.Dims {
		if v.Dims[i] != w.Dims[i] {
			return nil, fmt.Errorf("workload: domain mismatch %v vs %v", v.Dims, w.Dims)
		}
	}
	if len(w.Dims) > 2 {
		return nil, fmt.Errorf("workload: unsupported dimensionality %d", len(w.Dims))
	}
	return w.EvaluateFlat(v.Data), nil
}

// EvaluateFlat is Evaluate for a raw estimate slice already known to match
// the workload's domain (the common case for algorithm outputs). It allocates
// fresh buffers on every call; hot paths should hold an Evaluator instead.
func (w *Workload) EvaluateFlat(data []float64) []float64 {
	ev := NewEvaluator(w)
	ev.Reset(data)
	return ev.AnswerAll(nil)
}

// CellWeights returns, for each cell of the domain, the number of workload
// queries covering it. GreedyH uses this to weight hierarchy levels, and
// MWEM's update step needs per-query membership tests, served by Covers.
func (w *Workload) CellWeights() []float64 {
	n := 1
	for _, d := range w.Dims {
		n *= d
	}
	out := make([]float64, n)
	switch len(w.Dims) {
	case 1:
		// Difference array over inclusive ranges.
		diff := make([]float64, n+1)
		for k := range w.lo0 {
			diff[w.lo0[k]]++
			diff[w.hi0[k]+1]--
		}
		var run float64
		for i := 0; i < n; i++ {
			run += diff[i]
			out[i] = run
		}
	case 2:
		ny, nx := w.Dims[0], w.Dims[1]
		diff := make([]float64, (ny+1)*(nx+1))
		for k := range w.lo0 {
			y0, x0, y1, x1 := int(w.lo0[k]), int(w.lo1[k]), int(w.hi0[k]), int(w.hi1[k])
			diff[y0*(nx+1)+x0]++
			diff[y0*(nx+1)+x1+1]--
			diff[(y1+1)*(nx+1)+x0]--
			diff[(y1+1)*(nx+1)+x1+1]++
		}
		for y := 0; y < ny; y++ {
			var run float64
			for x := 0; x < nx; x++ {
				run += diff[y*(nx+1)+x]
				if y > 0 {
					out[y*nx+x] = out[(y-1)*nx+x] + run
				} else {
					out[y*nx+x] = run
				}
			}
		}
	}
	return out
}

// Covers reports whether query k covers the flat cell index.
func (w *Workload) Covers(k, cell int) bool {
	switch len(w.Dims) {
	case 1:
		return cell >= int(w.lo0[k]) && cell <= int(w.hi0[k])
	case 2:
		nx := w.Dims[1]
		y, x := cell/nx, cell%nx
		return y >= int(w.lo0[k]) && y <= int(w.hi0[k]) && x >= int(w.lo1[k]) && x <= int(w.hi1[k])
	default:
		panic("workload: unsupported dimensionality")
	}
}

// Sensitivity returns the L1 sensitivity of the workload when answered
// directly: the maximum number of queries any single cell participates in.
func (w *Workload) Sensitivity() float64 {
	weights := w.CellWeights()
	var m float64
	for _, v := range weights {
		if v > m {
			m = v
		}
	}
	return m
}
