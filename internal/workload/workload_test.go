package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpbench/internal/vec"
)

func TestPrefixStructure(t *testing.T) {
	w := Prefix(4)
	if w.Size() != 4 {
		t.Fatalf("size = %d, want 4", w.Size())
	}
	for i := 0; i < w.Size(); i++ {
		lo, hi := w.Range(i)
		if lo != 0 || hi != i {
			t.Fatalf("query %d = [%d,%d], want [0,%d]", i, lo, hi, i)
		}
	}
}

func TestPrefixEvaluate(t *testing.T) {
	w := Prefix(4)
	v, _ := vec.FromData([]float64{1, 2, 3, 4}, 4)
	y, err := w.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestIdentityWorkload(t *testing.T) {
	w := Identity(3)
	v, _ := vec.FromData([]float64{7, 8, 9}, 3)
	y, _ := w.Evaluate(v)
	for i, want := range []float64{7, 8, 9} {
		if y[i] != want {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestAllRangeCount(t *testing.T) {
	w := AllRange(5)
	if w.Size() != 15 {
		t.Fatalf("size = %d, want 15", w.Size())
	}
}

func TestRandomRangeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := RandomRange(100, 50, rng)
	if w.Size() != 50 {
		t.Fatalf("size = %d", w.Size())
	}
	for k := 0; k < w.Size(); k++ {
		lo, hi := w.Range(k)
		if lo > hi || lo < 0 || hi >= 100 {
			t.Fatalf("invalid query %d: [%d,%d]", k, lo, hi)
		}
	}
}

func TestRandomRange2DValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := RandomRange2D(16, 8, 40, rng)
	if w.Size() != 40 {
		t.Fatalf("size = %d", w.Size())
	}
	for k := 0; k < w.Size(); k++ {
		y0, x0, y1, x1 := w.Rect(k)
		if y0 > y1 || y1 >= 8 {
			t.Fatalf("invalid y range %d: [%d,%d]", k, y0, y1)
		}
		if x0 > x1 || x1 >= 16 {
			t.Fatalf("invalid x range %d: [%d,%d]", k, x0, x1)
		}
	}
}

func TestEvaluate2DAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nx, ny = 7, 5
	v := vec.New(ny, nx)
	for i := range v.Data {
		v.Data[i] = float64(rng.Intn(10))
	}
	w := RandomRange2D(nx, ny, 30, rng)
	y, err := w.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < w.Size(); k++ {
		y0, x0, y1, x1 := w.Rect(k)
		var want float64
		for yy := y0; yy <= y1; yy++ {
			for xx := x0; xx <= x1; xx++ {
				want += v.Data[yy*nx+xx]
			}
		}
		if math.Abs(y[k]-want) > 1e-9 {
			t.Fatalf("query %d: got %v, want %v", k, y[k], want)
		}
	}
}

func TestEvaluate1DAgainstBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		v := vec.New(n)
		for i := range v.Data {
			v.Data[i] = float64(rng.Intn(20))
		}
		w := RandomRange(n, 20, rng)
		y, err := w.Evaluate(v)
		if err != nil {
			return false
		}
		for k := 0; k < w.Size(); k++ {
			lo, hi := w.Range(k)
			var want float64
			for i := lo; i <= hi; i++ {
				want += v.Data[i]
			}
			if math.Abs(y[k]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateDimensionMismatch(t *testing.T) {
	w := Prefix(4)
	v := vec.New(4, 4)
	if _, err := w.Evaluate(v); err == nil {
		t.Fatal("expected dimensionality mismatch error")
	}
	v2 := vec.New(8)
	if _, err := w.Evaluate(v2); err == nil {
		t.Fatal("expected domain mismatch error")
	}
}

func TestCellWeights1D(t *testing.T) {
	w := Prefix(4)
	// Cell i is covered by queries [0,i]..[0,3], i.e. 4-i of them.
	weights := w.CellWeights()
	want := []float64{4, 3, 2, 1}
	for i := range want {
		if weights[i] != want[i] {
			t.Fatalf("weights[%d] = %v, want %v", i, weights[i], want[i])
		}
	}
	if got := w.Sensitivity(); got != 4 {
		t.Fatalf("sensitivity = %v, want 4", got)
	}
}

func TestCellWeights2DMatchesCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := RandomRange2D(6, 6, 25, rng)
	weights := w.CellWeights()
	for cell := 0; cell < 36; cell++ {
		var want float64
		for k := 0; k < w.Size(); k++ {
			if w.Covers(k, cell) {
				want++
			}
		}
		if weights[cell] != want {
			t.Fatalf("cell %d: weights %v, covers-count %v", cell, weights[cell], want)
		}
	}
}

func TestCovers1D(t *testing.T) {
	w := &Workload{Dims: []int{10}}
	w.AddRange(2, 5)
	cases := map[int]bool{1: false, 2: true, 5: true, 6: false}
	for cell, want := range cases {
		if got := w.Covers(0, cell); got != want {
			t.Fatalf("Covers(0,%d) = %v, want %v", cell, got, want)
		}
	}
}

func TestEvaluateFlatMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := vec.New(32)
	for i := range v.Data {
		v.Data[i] = float64(rng.Intn(5))
	}
	w := Prefix(32)
	y1, _ := w.Evaluate(v)
	y2 := w.EvaluateFlat(v.Data)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPrefixDifferencesGiveRangeQueries(t *testing.T) {
	// The paper's motivation for Prefix: any range [a,b] = P(b) - P(a-1).
	rng := rand.New(rand.NewSource(6))
	n := 50
	v := vec.New(n)
	for i := range v.Data {
		v.Data[i] = float64(rng.Intn(100))
	}
	p, _ := Prefix(n).Evaluate(v)
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		var want float64
		for i := a; i <= b; i++ {
			want += v.Data[i]
		}
		got := p[b]
		if a > 0 {
			got -= p[a-1]
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("range [%d,%d]: %v want %v", a, b, got, want)
		}
	}
}
