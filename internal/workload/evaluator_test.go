package workload

import (
	"math"
	"math/rand"
	"testing"

	"dpbench/internal/vec"
)

// referenceEvaluate1D is the pre-Evaluator per-call implementation, kept as
// the golden oracle: the Evaluator must reproduce its output bit for bit.
func referenceEvaluate1D(w *Workload, data []float64) []float64 {
	n := w.Dims[0]
	prefix := make([]float64, n+1)
	for i, x := range data {
		prefix[i+1] = prefix[i] + x
	}
	out := make([]float64, w.Size())
	for k := range out {
		lo, hi := w.Range(k)
		out[k] = prefix[hi+1] - prefix[lo]
	}
	return out
}

// referenceEvaluate2D is the pre-Evaluator summed-area implementation.
func referenceEvaluate2D(w *Workload, data []float64) []float64 {
	ny, nx := w.Dims[0], w.Dims[1]
	sat := make([]float64, (nx+1)*(ny+1))
	at := func(y, x int) float64 { return sat[y*(nx+1)+x] }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			sat[(y+1)*(nx+1)+x+1] = data[y*nx+x] + at(y, x+1) + at(y+1, x) - at(y, x)
		}
	}
	out := make([]float64, w.Size())
	for k := range out {
		y0, x0, y1, x1 := w.Rect(k)
		out[k] = at(y1+1, x1+1) - at(y0, x1+1) - at(y1+1, x0) + at(y0, x0)
	}
	return out
}

func randomData(rng *rand.Rand, n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	return data
}

func TestEvaluatorMatchesReference1DBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 33, 256} {
		for _, w := range []*Workload{Prefix(n), Identity(n), RandomRange(n, 3*n, rng)} {
			data := randomData(rng, n)
			want := referenceEvaluate1D(w, data)
			ev := NewEvaluator(w)
			ev.Reset(data)
			got := ev.AnswerAll(make([]float64, w.Size()))
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s n=%d query %d: got %v, want %v (bitwise)", w.Name, n, k, got[k], want[k])
				}
				if a := ev.Answer(k); a != want[k] {
					t.Fatalf("%s n=%d Answer(%d): got %v, want %v", w.Name, n, k, a, want[k])
				}
			}
		}
	}
}

func TestEvaluatorMatchesReference2DBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][2]int{{4, 4}, {5, 9}, {16, 16}} {
		ny, nx := dims[0], dims[1]
		w := RandomRange2D(nx, ny, 200, rng)
		data := randomData(rng, nx*ny)
		want := referenceEvaluate2D(w, data)
		ev := NewEvaluator(w)
		ev.Reset(data)
		got := ev.AnswerAll(make([]float64, w.Size()))
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s query %d: got %v, want %v (bitwise)", w.Name, k, got[k], want[k])
			}
			if a := ev.Answer(k); a != want[k] {
				t.Fatalf("%s Answer(%d): got %v, want %v", w.Name, k, a, want[k])
			}
		}
	}
}

func TestEvaluatorReuseAcrossEstimates(t *testing.T) {
	// A reused Evaluator must give the same answers as a fresh one for every
	// new estimate (stale table state must be fully overwritten), in 1D and
	// 2D, including after a shrinking-then-growing sequence of values.
	rng := rand.New(rand.NewSource(43))
	w1 := RandomRange(64, 128, rng)
	w2 := RandomRange2D(8, 8, 100, rng)
	ev1, ev2 := NewEvaluator(w1), NewEvaluator(w2)
	buf1 := make([]float64, w1.Size())
	buf2 := make([]float64, w2.Size())
	for trial := 0; trial < 20; trial++ {
		d1, d2 := randomData(rng, 64), randomData(rng, 64)
		ev1.Reset(d1)
		ev1.AnswerAll(buf1)
		want1 := referenceEvaluate1D(w1, d1)
		for k := range buf1 {
			if buf1[k] != want1[k] {
				t.Fatalf("trial %d 1D query %d: got %v want %v", trial, k, buf1[k], want1[k])
			}
		}
		ev2.Reset(d2)
		ev2.AnswerAll(buf2)
		want2 := referenceEvaluate2D(w2, d2)
		for k := range buf2 {
			if buf2[k] != want2[k] {
				t.Fatalf("trial %d 2D query %d: got %v want %v", trial, k, buf2[k], want2[k])
			}
		}
	}
}

func TestEvaluatorTotal(t *testing.T) {
	w := Prefix(8)
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ev := NewEvaluator(w)
	ev.Reset(data)
	if got := ev.Total(); got != 36 {
		t.Fatalf("Total = %v, want 36", got)
	}
}

func TestEvaluatorZeroAllocs(t *testing.T) {
	// The tentpole guarantee: after construction, Reset + AnswerAll allocate
	// nothing, in both dimensionalities.
	rng := rand.New(rand.NewSource(44))
	w1 := Prefix(512)
	ev1 := NewEvaluator(w1)
	d1 := randomData(rng, 512)
	buf1 := make([]float64, w1.Size())
	if allocs := testing.AllocsPerRun(100, func() {
		ev1.Reset(d1)
		ev1.AnswerAll(buf1)
	}); allocs != 0 {
		t.Fatalf("1D Evaluator fast path allocates %v per run, want 0", allocs)
	}

	w2 := RandomRange2D(32, 32, 500, rng)
	ev2 := NewEvaluator(w2)
	d2 := randomData(rng, 32*32)
	buf2 := make([]float64, w2.Size())
	if allocs := testing.AllocsPerRun(100, func() {
		ev2.Reset(d2)
		ev2.AnswerAll(buf2)
	}); allocs != 0 {
		t.Fatalf("2D Evaluator fast path allocates %v per run, want 0", allocs)
	}
}

func TestEvaluatorPanicsOnMismatch(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	w := Prefix(4)
	ev := NewEvaluator(w)
	mustPanic("short data", func() { ev.Reset([]float64{1, 2}) })
	ev.Reset([]float64{1, 2, 3, 4})
	mustPanic("short buffer", func() { ev.AnswerAll(make([]float64, 1)) })
	mustPanic("3D workload", func() { NewEvaluator(&Workload{Dims: []int{2, 2, 2}}) })
}

func TestEvaluateFlatStillMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	v := vec.New(40)
	for i := range v.Data {
		v.Data[i] = float64(rng.Intn(9))
	}
	w := RandomRange(40, 60, rng)
	y1, err := w.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	y2 := w.EvaluateFlat(v.Data)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
	if math.IsNaN(y1[0]) {
		t.Fatal("unexpected NaN")
	}
}

func TestEvaluateRejectsUnsupportedDimensionality(t *testing.T) {
	w := &Workload{Dims: []int{2, 2, 2}}
	v := vec.New(2, 2, 2)
	if _, err := w.Evaluate(v); err == nil {
		t.Fatal("expected unsupported-dimensionality error, not a panic or nil")
	}
}
