package workload

import "fmt"

// Evaluator answers a workload repeatedly against changing estimate vectors
// without allocating: it owns the prefix-sum (1D) or summed-area (2D) table
// and writes query answers into caller-provided buffers. The pattern is
//
//	ev := workload.NewEvaluator(w)
//	for each trial {
//	    ev.Reset(est)          // O(n): rebuild the table for this estimate
//	    ev.AnswerAll(buf)      // O(q): answer every query into buf
//	}
//
// Reset and AnswerAll are allocation-free after construction, which is what
// keeps the per-trial hot path of the experiment runner and of MWEM's
// selection step off the garbage collector. An Evaluator is not safe for
// concurrent use; pool one per worker.
type Evaluator struct {
	w     *Workload
	table []float64 // len n+1 (1D) or (nx+1)*(ny+1) (2D); index 0 row/col stay 0
}

// NewEvaluator returns an Evaluator for w. It panics on workloads over
// unsupported dimensionalities (only 1D and 2D exist in the benchmark).
func NewEvaluator(w *Workload) *Evaluator {
	switch len(w.Dims) {
	case 1:
		return &Evaluator{w: w, table: make([]float64, w.Dims[0]+1)}
	case 2:
		ny, nx := w.Dims[0], w.Dims[1]
		return &Evaluator{w: w, table: make([]float64, (ny+1)*(nx+1))}
	default:
		panic(fmt.Sprintf("workload: unsupported dimensionality %d", len(w.Dims)))
	}
}

// Workload returns the workload this evaluator answers.
func (e *Evaluator) Workload() *Workload { return e.w }

// Reset rebuilds the internal table from the given flat estimate vector,
// which must match the workload's domain. It does not retain data.
func (e *Evaluator) Reset(data []float64) {
	switch len(e.w.Dims) {
	case 1:
		n := e.w.Dims[0]
		if len(data) != n {
			panic(fmt.Sprintf("workload: estimate length %d does not match domain %d", len(data), n))
		}
		table := e.table
		for i, x := range data {
			table[i+1] = table[i] + x
		}
	case 2:
		ny, nx := e.w.Dims[0], e.w.Dims[1]
		if len(data) != nx*ny {
			panic(fmt.Sprintf("workload: estimate length %d does not match domain %dx%d", len(data), ny, nx))
		}
		// Summed-area table: table[y*(nx+1)+x] = sum of cells with row < y,
		// col < x. Row 0 and column 0 stay zero from construction.
		sat := e.table
		stride := nx + 1
		for y := 0; y < ny; y++ {
			row := sat[(y+1)*stride:]
			prev := sat[y*stride:]
			for x := 0; x < nx; x++ {
				row[x+1] = data[y*nx+x] + prev[x+1] + row[x] - prev[x]
			}
		}
	}
}

// Total returns the sum of the estimate vector passed to the last Reset (the
// full-domain prefix entry), at no extra cost.
func (e *Evaluator) Total() float64 { return e.table[len(e.table)-1] }

// Table1D exposes the evaluator's internal prefix table (len n+1) so an
// advanced caller can fill it directly — table[0] = 0, table[i+1] =
// table[i] + est[i] — instead of materializing an estimate vector and paying
// Reset's extra pass (MWEM streams its segment-tree leaves straight into
// prefix form this way). After filling, the evaluator answers exactly as if
// Reset(est) had run. It panics on 2D evaluators, whose table is a
// summed-area layout.
func (e *Evaluator) Table1D() []float64 {
	if len(e.w.Dims) != 1 {
		panic("workload: Table1D on a non-1D evaluator")
	}
	return e.table
}

// AnswerAll writes the answer of every query into dst and returns it. dst
// must have length w.Size(); a nil dst allocates a fresh slice. With a
// non-nil dst the call performs no allocations.
func (e *Evaluator) AnswerAll(dst []float64) []float64 {
	q := e.w.Size()
	if dst == nil {
		dst = make([]float64, q)
	}
	if len(dst) != q {
		panic(fmt.Sprintf("workload: answer buffer length %d does not match %d queries", len(dst), q))
	}
	switch len(e.w.Dims) {
	case 1:
		table, lo0, hi0 := e.table, e.w.lo0, e.w.hi0
		for k := range dst {
			dst[k] = table[hi0[k]+1] - table[lo0[k]]
		}
	case 2:
		sat := e.table
		stride := e.w.Dims[1] + 1
		lo0, hi0, lo1, hi1 := e.w.lo0, e.w.hi0, e.w.lo1, e.w.hi1
		for k := range dst {
			y0, x0 := int(lo0[k]), int(lo1[k])
			y1, x1 := int(hi0[k])+1, int(hi1[k])+1
			dst[k] = sat[y1*stride+x1] - sat[y0*stride+x1] - sat[y1*stride+x0] + sat[y0*stride+x0]
		}
	}
	return dst
}

// Answer returns the answer of query k against the last Reset estimate.
func (e *Evaluator) Answer(k int) float64 {
	switch len(e.w.Dims) {
	case 1:
		return e.table[e.w.hi0[k]+1] - e.table[e.w.lo0[k]]
	default:
		stride := e.w.Dims[1] + 1
		y0, x0 := int(e.w.lo0[k]), int(e.w.lo1[k])
		y1, x1 := int(e.w.hi0[k])+1, int(e.w.hi1[k])+1
		return e.table[y1*stride+x1] - e.table[y0*stride+x1] - e.table[y1*stride+x0] + e.table[y0*stride+x0]
	}
}
