// Package dataset provides the benchmark's data inputs: a registry of 27
// datasets mirroring Table 2 of the paper, and the DPBench data generator G
// (Section 5.1) that resamples a source shape at any requested scale and
// domain size.
//
// Substitution note (see DESIGN.md): the paper's datasets derive from real
// sources (US Census, Kaggle auctions, Maryland salaries, Lending Club,
// taxi traces, Gowalla check-ins, the International Stroke Trial). Those raw
// files are not redistributable, and DPBench itself only consumes each
// dataset through its shape vector p. This package therefore synthesizes,
// deterministically per dataset, a shape with the published characteristics:
// matching fraction of zero cells at the maximum domain size (Table 2) and a
// qualitatively faithful distribution family (heavy-tailed counts, salary
// spikes, dense bid streams, sparse spatial scatter). Every downstream code
// path — generation, coarsening, algorithms, measurement — is identical to
// operating on the real data.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
)

// MaxDomain1D is the largest 1D domain size used by the benchmark.
const MaxDomain1D = 4096

// MaxDomain2D is the side of the largest 2D domain (256 x 256).
const MaxDomain2D = 256

// Domains1D lists the 1D domain sizes of Section 6.1.
var Domains1D = []int{256, 512, 1024, 2048, 4096}

// Domains2D lists the 2D grid sides of Section 6.1 (32x32 ... 256x256).
var Domains2D = []int{32, 64, 128, 256}

// Scales lists the dataset scales of Section 6.1.
var Scales = []int{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// Dataset describes one source dataset from Table 2.
type Dataset struct {
	// Name is the paper's dataset identifier, e.g. "ADULT" or "BJ-CABS-S".
	Name string
	// Dim is 1 or 2.
	Dim int
	// OriginalScale is the source dataset's tuple count from Table 2.
	OriginalScale float64
	// ZeroFrac is the fraction of zero cells at the maximum domain size.
	ZeroFrac float64
	// New marks datasets introduced by the DPBench paper.
	New bool

	family shapeFamily
}

type shapeFamily struct {
	kind   string  // "powerlaw", "gaussmix", "spikes", "dense", "geo", "grid2d"
	param  float64 // family-specific skew parameter
	param2 float64
}

// registry1D mirrors the 1D half of Table 2.
var registry1D = []Dataset{
	{Name: "ADULT", Dim: 1, OriginalScale: 32558, ZeroFrac: 0.9780, family: shapeFamily{"powerlaw", 2.2, 0}},
	{Name: "HEPPH", Dim: 1, OriginalScale: 347414, ZeroFrac: 0.2117, family: shapeFamily{"gaussmix", 4, 0.25}},
	{Name: "INCOME", Dim: 1, OriginalScale: 20787122, ZeroFrac: 0.4497, family: shapeFamily{"powerlaw", 1.4, 0}},
	{Name: "MEDCOST", Dim: 1, OriginalScale: 9415, ZeroFrac: 0.7480, family: shapeFamily{"powerlaw", 1.8, 0}},
	{Name: "TRACE", Dim: 1, OriginalScale: 25714, ZeroFrac: 0.9661, family: shapeFamily{"spikes", 12, 3.0}},
	{Name: "PATENT", Dim: 1, OriginalScale: 27948226, ZeroFrac: 0.0620, family: shapeFamily{"gaussmix", 6, 0.45}},
	{Name: "SEARCH", Dim: 1, OriginalScale: 335889, ZeroFrac: 0.5103, family: shapeFamily{"powerlaw", 1.6, 0}},
	{Name: "BIDS-FJ", Dim: 1, OriginalScale: 1901799, ZeroFrac: 0, New: true, family: shapeFamily{"dense", 1.0, 0}},
	{Name: "BIDS-FM", Dim: 1, OriginalScale: 2126344, ZeroFrac: 0, New: true, family: shapeFamily{"dense", 1.4, 0}},
	{Name: "BIDS-ALL", Dim: 1, OriginalScale: 7655502, ZeroFrac: 0, New: true, family: shapeFamily{"dense", 0.7, 0}},
	{Name: "MD-SAL", Dim: 1, OriginalScale: 135727, ZeroFrac: 0.8312, New: true, family: shapeFamily{"spikes", 40, 1.6}},
	{Name: "MD-SAL-FA", Dim: 1, OriginalScale: 100534, ZeroFrac: 0.8317, New: true, family: shapeFamily{"spikes", 30, 1.8}},
	{Name: "LC-REQ-F1", Dim: 1, OriginalScale: 3737472, ZeroFrac: 0.6157, New: true, family: shapeFamily{"spikes", 80, 1.2}},
	{Name: "LC-REQ-F2", Dim: 1, OriginalScale: 198045, ZeroFrac: 0.6769, New: true, family: shapeFamily{"spikes", 60, 1.4}},
	{Name: "LC-REQ-ALL", Dim: 1, OriginalScale: 3999425, ZeroFrac: 0.6015, New: true, family: shapeFamily{"spikes", 90, 1.1}},
	{Name: "LC-DTIR-F1", Dim: 1, OriginalScale: 3336740, ZeroFrac: 0, New: true, family: shapeFamily{"dense", 1.8, 0}},
	{Name: "LC-DTIR-F2", Dim: 1, OriginalScale: 189827, ZeroFrac: 0.1191, New: true, family: shapeFamily{"gaussmix", 3, 0.3}},
	{Name: "LC-DTIR-ALL", Dim: 1, OriginalScale: 3589119, ZeroFrac: 0, New: true, family: shapeFamily{"dense", 1.6, 0}},
}

// registry2D mirrors the 2D half of Table 2.
var registry2D = []Dataset{
	{Name: "BJ-CABS-S", Dim: 2, OriginalScale: 4268780, ZeroFrac: 0.7817, family: shapeFamily{"geo", 8, 10}},
	{Name: "BJ-CABS-E", Dim: 2, OriginalScale: 4268780, ZeroFrac: 0.7683, family: shapeFamily{"geo", 9, 11}},
	{Name: "GOWALLA", Dim: 2, OriginalScale: 6442863, ZeroFrac: 0.8892, family: shapeFamily{"geo", 20, 5}},
	{Name: "ADULT-2D", Dim: 2, OriginalScale: 32561, ZeroFrac: 0.9930, family: shapeFamily{"grid2d", 2.5, 0}},
	{Name: "SF-CABS-S", Dim: 2, OriginalScale: 464040, ZeroFrac: 0.9504, family: shapeFamily{"geo", 6, 4}},
	{Name: "SF-CABS-E", Dim: 2, OriginalScale: 464040, ZeroFrac: 0.9731, family: shapeFamily{"geo", 5, 3.5}},
	{Name: "MD-SAL-2D", Dim: 2, OriginalScale: 70526, ZeroFrac: 0.9789, New: true, family: shapeFamily{"grid2d", 2.0, 0}},
	{Name: "LC-2D", Dim: 2, OriginalScale: 550559, ZeroFrac: 0.9266, New: true, family: shapeFamily{"grid2d", 1.5, 0}},
	{Name: "STROKE", Dim: 2, OriginalScale: 19435, ZeroFrac: 0.7902, New: true, family: shapeFamily{"geo", 3, 25}},
}

// Registry1D returns the 18 one-dimensional datasets of Table 2.
func Registry1D() []Dataset { return append([]Dataset(nil), registry1D...) }

// Registry2D returns the 9 two-dimensional datasets of Table 2.
func Registry2D() []Dataset { return append([]Dataset(nil), registry2D...) }

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range registry1D {
		if d.Name == name {
			return d, nil
		}
	}
	for _, d := range registry2D {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

var (
	shapeMu    sync.Mutex
	shapeCache = map[string]*vec.Vector{}
)

// SourceShape returns the dataset's shape vector at the maximum domain size
// (4096 cells for 1D, 256x256 for 2D). The result is deterministic per
// dataset name and cached; callers must not modify it.
func (d Dataset) SourceShape() *vec.Vector {
	shapeMu.Lock()
	defer shapeMu.Unlock()
	if v, ok := shapeCache[d.Name]; ok {
		return v
	}
	v := d.synthesize()
	shapeCache[d.Name] = v
	return v
}

// synthesize builds the mass distribution at the maximum domain, applies the
// Table 2 zero-fraction, and normalizes to a shape (sums to 1).
func (d Dataset) synthesize() *vec.Vector {
	rng := rand.New(rand.NewSource(int64(nameSeed(d.Name))))
	var v *vec.Vector
	if d.Dim == 1 {
		v = vec.New(MaxDomain1D)
		d.fill1D(rng, v.Data)
	} else {
		v = vec.New(MaxDomain2D, MaxDomain2D)
		d.fill2D(rng, v.Data, MaxDomain2D)
	}
	applyZeroFraction(rng, v.Data, d.ZeroFrac)
	normalize(v.Data)
	return v
}

func nameSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

func (d Dataset) fill1D(rng *rand.Rand, mass []float64) {
	n := len(mass)
	switch d.family.kind {
	case "powerlaw":
		// Heavy-tailed counts concentrated at a random anchor, mimicking
		// quantity histograms (capital gain, search frequencies, costs).
		anchor := rng.Intn(n / 8)
		alpha := d.family.param
		for i := range mass {
			dist := math.Abs(float64(i - anchor))
			mass[i] = math.Pow(dist+1, -alpha) * (0.5 + rng.Float64())
		}
	case "gaussmix":
		// A few broad modes covering most of the domain (publication years,
		// patent dates, debt-to-income ratios).
		modes := int(d.family.param)
		width := d.family.param2 * float64(n)
		for m := 0; m < modes; m++ {
			mu := rng.Float64() * float64(n)
			sigma := width * (0.3 + rng.Float64())
			weight := 0.3 + rng.Float64()
			for i := range mass {
				z := (float64(i) - mu) / sigma
				mass[i] += weight * math.Exp(-z*z/2)
			}
		}
	case "spikes":
		// Salary/loan data: most mass in sharp spikes at "round" values on
		// top of a faint power-law background.
		spikes := int(d.family.param)
		sharp := d.family.param2
		for s := 0; s < spikes; s++ {
			pos := rng.Intn(n)
			weight := math.Pow(rng.Float64(), sharp) * 100
			mass[pos] += weight
			// A little leakage to the immediate neighbours.
			if pos > 0 {
				mass[pos-1] += weight * 0.05
			}
			if pos < n-1 {
				mass[pos+1] += weight * 0.05
			}
		}
		for i := range mass {
			mass[i] += 0.01 * math.Pow(float64(i+1), -1.2)
		}
	case "dense":
		// Bid streams / ratio data: every cell positive, moderate skew.
		alpha := d.family.param
		for i := range mass {
			u := rng.Float64()
			mass[i] = math.Pow(u, alpha) + 0.05
		}
	default:
		panic("dataset: unknown 1D family " + d.family.kind)
	}
}

func (d Dataset) fill2D(rng *rand.Rand, mass []float64, side int) {
	switch d.family.kind {
	case "geo":
		// Spatial point data: a handful of dense urban clusters plus roads
		// (line segments) on an empty background.
		clusters := int(d.family.param)
		spread := d.family.param2
		for c := 0; c < clusters; c++ {
			cx := rng.Float64() * float64(side)
			cy := rng.Float64() * float64(side)
			sigma := spread * (0.3 + rng.Float64())
			weight := 0.2 + rng.Float64()
			// Rasterize the cluster within 3 sigma.
			r := int(3*sigma) + 1
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					x, y := int(cx)+dx, int(cy)+dy
					if x < 0 || x >= side || y < 0 || y >= side {
						continue
					}
					zx := (float64(x) - cx) / sigma
					zy := (float64(y) - cy) / sigma
					mass[y*side+x] += weight * math.Exp(-(zx*zx+zy*zy)/2)
				}
			}
		}
		// Roads: straight segments connecting random cluster-ish points.
		for s := 0; s < clusters/2+1; s++ {
			x0, y0 := rng.Float64()*float64(side), rng.Float64()*float64(side)
			x1, y1 := rng.Float64()*float64(side), rng.Float64()*float64(side)
			steps := 2 * side
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				x, y := int(x0+(x1-x0)*f), int(y0+(y1-y0)*f)
				if x >= 0 && x < side && y >= 0 && y < side {
					mass[y*side+x] += 0.02
				}
			}
		}
	case "grid2d":
		// Product-like attribute pairs (salary x overtime, amount x income):
		// heavy mass near the origin decaying as a product of power laws,
		// with correlated diagonal structure.
		alpha := d.family.param
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				base := math.Pow(float64(x+1), -alpha) * math.Pow(float64(y+1), -alpha)
				diag := math.Exp(-math.Abs(float64(x-y)) / (0.15 * float64(side)))
				mass[y*side+x] = base*(0.5+rng.Float64()) + 0.001*base*diag
			}
		}
	default:
		panic("dataset: unknown 2D family " + d.family.kind)
	}
}

// applyZeroFraction zeroes the smallest cells until the requested fraction of
// cells is exactly zero, matching Table 2's sparsity statistics.
func applyZeroFraction(rng *rand.Rand, mass []float64, frac float64) {
	if frac <= 0 {
		// Ensure strictly positive everywhere for the 0%-zeros datasets.
		for i, v := range mass {
			if v <= 0 {
				mass[i] = 1e-6 * (1 + rng.Float64())
			}
		}
		return
	}
	n := len(mass)
	target := int(math.Round(frac * float64(n)))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return mass[idx[a]] < mass[idx[b]] })
	for i := 0; i < target && i < n; i++ {
		mass[idx[i]] = 0
	}
	// Make sure the remaining cells are positive.
	for i := target; i < n; i++ {
		if mass[idx[i]] <= 0 {
			mass[idx[i]] = 1e-9
		}
	}
}

func normalize(mass []float64) {
	var s float64
	for _, v := range mass {
		s += v
	}
	if s == 0 {
		u := 1 / float64(len(mass))
		for i := range mass {
			mass[i] = u
		}
		return
	}
	for i := range mass {
		mass[i] /= s
	}
}

// Shape returns the dataset's shape vector coarsened to the requested domain
// (dims must evenly divide the maximum domain). For 1D pass one dim; for 2D
// pass (rows, cols).
func (d Dataset) Shape(dims ...int) (*vec.Vector, error) {
	src := d.SourceShape()
	if len(dims) != len(src.Dims) {
		return nil, fmt.Errorf("dataset: %s is %dD, got dims %v", d.Name, d.Dim, dims)
	}
	coarse, err := src.Coarsen(dims...)
	if err != nil {
		return nil, err
	}
	normalize(coarse.Data)
	return coarse, nil
}

// Generate is the DPBench data generator G (Section 5.1): it isolates the
// dataset's shape on the requested domain and samples scale tuples with
// replacement, returning a data vector with integral counts summing exactly
// to scale.
func (d Dataset) Generate(rng *rand.Rand, scale int, dims ...int) (*vec.Vector, error) {
	p, err := d.Shape(dims...)
	if err != nil {
		return nil, err
	}
	counts := noise.Multinomial(rng, scale, p.Data)
	out := vec.New(dims...)
	for i, c := range counts {
		out.Data[i] = float64(c)
	}
	return out, nil
}
