package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegistrySizes(t *testing.T) {
	if got := len(Registry1D()); got != 18 {
		t.Fatalf("1D registry has %d datasets, want 18 (Table 2)", got)
	}
	if got := len(Registry2D()); got != 9 {
		t.Fatalf("2D registry has %d datasets, want 9 (Table 2)", got)
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range append(Registry1D(), Registry2D()...) {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset name %s", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("ADULT")
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim != 1 || d.OriginalScale != 32558 {
		t.Fatalf("ADULT metadata wrong: %+v", d)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestSourceShapeNormalized(t *testing.T) {
	for _, d := range append(Registry1D(), Registry2D()...) {
		p := d.SourceShape()
		var sum float64
		for _, v := range p.Data {
			if v < 0 {
				t.Fatalf("%s: negative shape entry", d.Name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: shape sums to %v", d.Name, sum)
		}
	}
}

func TestSourceShapeDeterministicAndCached(t *testing.T) {
	d, _ := ByName("TRACE")
	p1 := d.SourceShape()
	p2 := d.SourceShape()
	if p1 != p2 {
		t.Fatal("SourceShape not cached (pointer differs)")
	}
}

func TestZeroFractionMatchesTable2(t *testing.T) {
	for _, d := range append(Registry1D(), Registry2D()...) {
		p := d.SourceShape()
		got := p.ZeroFraction()
		if math.Abs(got-d.ZeroFrac) > 0.01 {
			t.Fatalf("%s: zero fraction %v, want %v (Table 2)", d.Name, got, d.ZeroFrac)
		}
	}
}

func TestShapeCoarsening(t *testing.T) {
	d, _ := ByName("SEARCH")
	for _, n := range Domains1D {
		p, err := d.Shape(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != n {
			t.Fatalf("domain %d: got %d cells", n, p.N())
		}
		var sum float64
		for _, v := range p.Data {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("domain %d: shape sums to %v", n, sum)
		}
	}
}

func TestShape2DCoarsening(t *testing.T) {
	d, _ := ByName("GOWALLA")
	for _, side := range Domains2D {
		p, err := d.Shape(side, side)
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != side*side {
			t.Fatalf("side %d: got %d cells", side, p.N())
		}
	}
}

func TestShapeArityErrors(t *testing.T) {
	d1, _ := ByName("ADULT")
	if _, err := d1.Shape(64, 64); err == nil {
		t.Fatal("expected arity error for 2D shape of 1D dataset")
	}
	d2, _ := ByName("STROKE")
	if _, err := d2.Shape(64); err == nil {
		t.Fatal("expected arity error for 1D shape of 2D dataset")
	}
}

func TestGenerateExactScale(t *testing.T) {
	d, _ := ByName("MEDCOST")
	rng := rand.New(rand.NewSource(1))
	for _, scale := range []int{1000, 10_000, 100_000} {
		x, err := d.Generate(rng, scale, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if got := x.Scale(); got != float64(scale) {
			t.Fatalf("scale %d: generated %v tuples", scale, got)
		}
	}
}

func TestGenerateIntegralCounts(t *testing.T) {
	d, _ := ByName("PATENT")
	rng := rand.New(rand.NewSource(2))
	x, err := d.Generate(rng, 5000, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x.Data {
		if v != math.Trunc(v) || v < 0 {
			t.Fatalf("cell %d = %v, want non-negative integer", i, v)
		}
	}
}

func TestGenerateApproximatesShape(t *testing.T) {
	// At large scale, the sampled empirical shape converges to the source
	// shape (the paper: "approximately the same as the original").
	d, _ := ByName("BIDS-ALL")
	rng := rand.New(rand.NewSource(3))
	const n, scale = 256, 2_000_000
	p, _ := d.Shape(n)
	x, err := d.Generate(rng, scale, n)
	if err != nil {
		t.Fatal(err)
	}
	var l1 float64
	for i := range p.Data {
		l1 += math.Abs(x.Data[i]/scale - p.Data[i])
	}
	if l1 > 0.05 {
		t.Fatalf("L1 distance between sampled and source shape = %v", l1)
	}
}

func TestGenerate2D(t *testing.T) {
	d, _ := ByName("SF-CABS-S")
	rng := rand.New(rand.NewSource(4))
	x, err := d.Generate(rng, 10_000, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if x.Scale() != 10_000 {
		t.Fatalf("scale = %v", x.Scale())
	}
	if x.K() != 2 || x.Dims[0] != 64 {
		t.Fatalf("dims = %v", x.Dims)
	}
}

func TestGenerateScalePropertyAcrossDatasets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := Registry1D()
		d := reg[rng.Intn(len(reg))]
		scale := 1 + rng.Intn(50_000)
		x, err := d.Generate(rng, scale, 256)
		if err != nil {
			return false
		}
		return x.Scale() == float64(scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenerateZeroCellsNeverReceiveMass(t *testing.T) {
	d, _ := ByName("ADULT") // 97.8% zeros
	p := d.SourceShape()
	rng := rand.New(rand.NewSource(5))
	x, err := d.Generate(rng, 100_000, MaxDomain1D)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		if p.Data[i] == 0 && x.Data[i] != 0 {
			t.Fatalf("cell %d has zero shape but %v sampled mass", i, x.Data[i])
		}
	}
}

func TestScalesAndDomainsMatchPaper(t *testing.T) {
	if len(Scales) != 6 || Scales[0] != 1e3 || Scales[5] != 1e8 {
		t.Fatalf("scales grid %v does not match Section 6.1", Scales)
	}
	if Domains1D[len(Domains1D)-1] != 4096 {
		t.Fatalf("max 1D domain %v, want 4096", Domains1D)
	}
	if Domains2D[len(Domains2D)-1] != 256 {
		t.Fatalf("max 2D side %v, want 256", Domains2D)
	}
}

func TestDenseDatasetsHaveNoZeros(t *testing.T) {
	for _, name := range []string{"BIDS-FJ", "BIDS-FM", "BIDS-ALL", "LC-DTIR-F1", "LC-DTIR-ALL"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if zf := d.SourceShape().ZeroFraction(); zf != 0 {
			t.Fatalf("%s: zero fraction %v, want 0", name, zf)
		}
	}
}
