package tree

import (
	"fmt"
	"math"
	"sync"

	"dpbench/internal/noise"
)

// Flat is an immutable, flattened aggregation tree: pure structure (topology,
// depths, spans, leaf cell lists) with no per-trial state, so one Flat built
// once per experiment cell can be shared read-only across every sample, trial
// and worker that needs the same hierarchy. Per-trial values (measurements
// and the inference passes' intermediates) live in a Scratch drawn from the
// Flat's internal pool, which is what turns the tree mechanisms' per-trial
// cost from "rebuild the whole structure" into "draw the noise".
//
// Nodes are stored in pre-order, the exact order Node.Walk visits them, so
// MeasureInto draws the identical noise stream as Node.Measure; children of a
// node are recorded in their original order, so every floating-point
// reduction (true-count sums, the inference passes) reproduces the recursive
// implementation's association bit for bit.
type Flat struct {
	n      int // number of cells covered (leaves partition [0, n) for builders)
	height int

	depth  []int32
	kidOff []int32 // children of node i: kids[kidOff[i]:kidOff[i+1]]
	kids   []int32
	celOff []int32 // leaf cells of node i: cells[celOff[i]:celOff[i+1]]
	cells  []int32
	spanLo []int32 // inclusive covered cell span, from Node.Span
	spanHi []int32

	pool sync.Pool // *Scratch
}

// Scratch holds one trial's per-node values for a Flat: the noisy
// measurements y and the working arrays of the two inference passes. Obtain
// one with Acquire and return it with Release; a Scratch is not safe for
// concurrent use, but distinct Scratches over the same Flat are.
type Scratch struct {
	sums []float64 // exact per-node totals of the trial's data vector
	y    []float64 // noisy measurements
	z    []float64 // combined estimate (upward), then target (downward)
	zvar []float64
	kSum []float64 // sum of children's z, in child order
	kVar []float64 // sum of children's zvar, in child order
	vars []float64 // per-level measurement variance (len height)
}

// Flatten converts a finalized Node tree into its immutable flat form.
func Flatten(root *Node) *Flat {
	f := &Flat{n: root.Size(), height: root.Height()}
	nodes := root.CountNodes()
	f.depth = make([]int32, nodes)
	f.kidOff = make([]int32, nodes+1)
	f.celOff = make([]int32, nodes+1)
	f.spanLo = make([]int32, nodes)
	f.spanHi = make([]int32, nodes)
	// Pre-order index assignment: a node's children get consecutive DFS
	// visits, and the kids list records their indices in child order.
	idx := 0
	var rec func(nd *Node, depth int) int32
	rec = func(nd *Node, depth int) int32 {
		i := int32(idx)
		idx++
		f.depth[i] = int32(depth)
		f.spanLo[i], f.spanHi[i] = int32(nd.lo), int32(nd.hi)
		f.kidOff[i] = int32(len(f.kids))
		// Reserve the kid slots now so they stay in child order even though
		// each child's subtree is flattened before the next child's index is
		// known; pre-order makes child c's index computable only after c-1's
		// subtree is done, so fill the reserved slots as we go.
		base := len(f.kids)
		for range nd.Children {
			f.kids = append(f.kids, 0)
		}
		f.celOff[i] = int32(len(f.cells))
		for _, c := range nd.Cells {
			f.cells = append(f.cells, int32(c))
		}
		for ci, c := range nd.Children {
			f.kids[base+ci] = rec(c, depth+1)
		}
		return i
	}
	rec(root, 0)
	// kidOff/celOff are per-node starts; close them into prefix form.
	f.kidOff[nodes] = int32(len(f.kids))
	f.celOff[nodes] = int32(len(f.cells))
	f.pool.New = func() any {
		return &Scratch{
			sums: make([]float64, nodes),
			y:    make([]float64, nodes),
			z:    make([]float64, nodes),
			zvar: make([]float64, nodes),
			kSum: make([]float64, nodes),
			kVar: make([]float64, nodes),
			vars: make([]float64, f.height),
		}
	}
	return f
}

// NewScratch returns an empty standalone Scratch that grows on demand. It is
// the companion of RebuildInterval: rebuildable trees change node counts per
// rebuild, so their callers hold one auto-sizing scratch instead of drawing
// from a fixed-size pool.
func NewScratch() *Scratch { return &Scratch{} }

// ensure grows the scratch to cover nodes and height.
func (sc *Scratch) ensure(nodes, height int) {
	if cap(sc.sums) < nodes {
		sc.sums = make([]float64, nodes)
		sc.y = make([]float64, nodes)
		sc.z = make([]float64, nodes)
		sc.zvar = make([]float64, nodes)
		sc.kSum = make([]float64, nodes)
		sc.kVar = make([]float64, nodes)
	} else {
		sc.sums = sc.sums[:nodes]
		sc.y = sc.y[:nodes]
		sc.z = sc.z[:nodes]
		sc.zvar = sc.zvar[:nodes]
		sc.kSum = sc.kSum[:nodes]
		sc.kVar = sc.kVar[:nodes]
	}
	if cap(sc.vars) < height {
		sc.vars = make([]float64, height)
	} else {
		sc.vars = sc.vars[:height]
	}
}

// RebuildInterval rebuilds f in place as the flat form of BuildInterval(n, b)
// — identical pre-order layout, spans and child order — reusing its arrays,
// so per-trial throwaway hierarchies (SF's noisy bucket widths never repeat
// enough to cache) cost zero steady-state allocations to construct. A
// rebuildable Flat is single-owner: do not share it across goroutines or mix
// it with the Acquire/Release pool (use NewScratch).
func (f *Flat) RebuildInterval(n, b int) error {
	if n <= 0 {
		return fmt.Errorf("tree: non-positive domain size %d", n)
	}
	if b < 2 {
		return fmt.Errorf("tree: branching factor %d < 2", b)
	}
	f.n = n
	f.height = 0
	f.depth = f.depth[:0]
	f.kids = f.kids[:0]
	f.cells = f.cells[:0]
	f.spanLo = f.spanLo[:0]
	f.spanHi = f.spanHi[:0]
	// kidOff/celOff are rebuilt as starts and closed into prefix form below.
	f.kidOff = f.kidOff[:0]
	f.celOff = f.celOff[:0]
	f.rebuildRec(0, n, 0, b)
	f.kidOff = append(f.kidOff, int32(len(f.kids)))
	f.celOff = append(f.celOff, int32(len(f.cells)))
	return nil
}

// rebuildRec is RebuildInterval's recursion (a method, not a closure, so the
// per-call environment never escapes to the heap).
func (f *Flat) rebuildRec(lo, hi, depth, b int) int32 {
	i := int32(len(f.depth))
	f.depth = append(f.depth, int32(depth))
	f.spanLo = append(f.spanLo, int32(lo))
	f.spanHi = append(f.spanHi, int32(hi-1))
	f.kidOff = append(f.kidOff, int32(len(f.kids)))
	f.celOff = append(f.celOff, int32(len(f.cells)))
	if depth+1 > f.height {
		f.height = depth + 1
	}
	span := hi - lo
	if span == 1 {
		f.cells = append(f.cells, int32(lo))
		return i
	}
	// Split into at most b nearly equal chunks, as buildInterval does.
	chunks := b
	if span < b {
		chunks = span
	}
	base := len(f.kids)
	start := lo
	for c := 0; c < chunks; c++ {
		end := lo + (span*(c+1))/chunks
		if end > start {
			f.kids = append(f.kids, 0)
			start = end
		}
	}
	// f.kids grows while children are flattened; index via base.
	start = lo
	ci := 0
	for c := 0; c < chunks; c++ {
		end := lo + (span*(c+1))/chunks
		if end > start {
			f.kids[base+ci] = f.rebuildRec(start, end, depth+1, b)
			ci++
			start = end
		}
	}
	return i
}

// N returns the number of cells the tree covers.
func (f *Flat) N() int { return f.n }

// Height returns the number of levels (a single leaf has height 1).
func (f *Flat) Height() int { return f.height }

// NumNodes returns the node count.
func (f *Flat) NumNodes() int { return len(f.depth) }

// Acquire returns a Scratch for one trial over this tree.
func (f *Flat) Acquire() *Scratch { return f.pool.Get().(*Scratch) }

// Release returns a Scratch to the pool.
func (f *Flat) Release(sc *Scratch) { f.pool.Put(sc) }

func (f *Flat) isLeaf(i int) bool { return f.kidOff[i] == f.kidOff[i+1] }

// ComputeSums fills sc's per-node totals of data bottom-up. Leaf sums add
// cells in list order and internal sums add children in child order — the
// same association as Node.TrueCount's recursion, so the values are bitwise
// identical while the total work drops from O(nodes * depth) pointer chasing
// to one linear pass.
func (f *Flat) ComputeSums(data []float64, sc *Scratch) {
	sc.ensure(len(f.depth), f.height)
	for i := len(f.depth) - 1; i >= 0; i-- {
		var s float64
		if f.isLeaf(i) {
			for _, c := range f.cells[f.celOff[i]:f.celOff[i+1]] {
				s += data[c]
			}
		} else {
			for _, k := range f.kids[f.kidOff[i]:f.kidOff[i+1]] {
				s += sc.sums[k]
			}
		}
		sc.sums[i] = s
	}
}

// MeasureInto draws one Laplace measurement per node at the per-level budget
// epsByLevel, in pre-order — the exact draw order (and ledger charges) of
// Node.Measure — writing noisy totals into the scratch. ComputeSums must run
// first. A zero (or missing) level budget leaves the level unmeasured.
func (f *Flat) MeasureInto(m *noise.Meter, sc *Scratch, epsByLevel []float64) {
	sc.ensure(len(f.depth), f.height)
	for d := 0; d < f.height; d++ {
		if d < len(epsByLevel) && epsByLevel[d] > 0 {
			eps := epsByLevel[d]
			sc.vars[d] = 2 / (eps * eps)
		} else {
			sc.vars[d] = math.Inf(1)
		}
	}
	for i := range f.depth {
		d := int(f.depth[i])
		if d >= len(epsByLevel) || epsByLevel[d] <= 0 {
			sc.y[i] = 0
			continue
		}
		eps := epsByLevel[d]
		sc.y[i] = sc.sums[i] + m.LaplacePar(LevelLabel(d), 1/eps, eps)
	}
}

// InferInto runs the two-pass weighted least-squares consistency inference
// over the scratch's measurements and writes per-cell estimates into out
// (which is zeroed first). The passes visit children in child order, so every
// sum and correction reproduces Node.Infer's floating-point result exactly.
func (f *Flat) InferInto(sc *Scratch, out []float64) {
	nodes := len(f.depth)
	// Upward pass in reverse pre-order: every node's children are processed
	// before the node itself.
	for i := nodes - 1; i >= 0; i-- {
		yvar := sc.vars[f.depth[i]]
		if f.isLeaf(i) {
			if math.IsInf(yvar, 1) {
				sc.z[i], sc.zvar[i] = 0, unmeasuredVar
			} else {
				sc.z[i], sc.zvar[i] = sc.y[i], yvar
			}
			continue
		}
		var childSum, childVar float64
		for _, k := range f.kids[f.kidOff[i]:f.kidOff[i+1]] {
			childSum += sc.z[k]
			childVar += sc.zvar[k]
		}
		sc.kSum[i], sc.kVar[i] = childSum, childVar
		precY := 0.0
		if !math.IsInf(yvar, 1) && yvar > 0 {
			precY = 1 / yvar
		}
		precC := 0.0
		if childVar > 0 {
			precC = 1 / childVar
		}
		switch {
		case precY == 0 && precC == 0:
			sc.z[i], sc.zvar[i] = childSum, unmeasuredVar
		case precY == 0:
			sc.z[i], sc.zvar[i] = childSum, childVar
		case precC == 0:
			sc.z[i], sc.zvar[i] = sc.y[i], yvar
		default:
			sc.z[i] = (precY*sc.y[i] + precC*childSum) / (precY + precC)
			sc.zvar[i] = 1 / (precY + precC)
		}
	}
	// Downward pass in pre-order: z[i] is promoted in place from combined
	// estimate to final target (parents are fully resolved before children
	// are visited, exactly as the recursion resolves them).
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < nodes; i++ {
		if f.isLeaf(i) {
			cells := f.cells[f.celOff[i]:f.celOff[i+1]]
			per := sc.z[i] / float64(len(cells))
			for _, c := range cells {
				out[c] += per
			}
			continue
		}
		resid := sc.z[i] - sc.kSum[i]
		kids := f.kids[f.kidOff[i]:f.kidOff[i+1]]
		varSum := sc.kVar[i]
		for _, k := range kids {
			share := 1.0 / float64(len(kids))
			if varSum > 0 {
				share = sc.zvar[k] / varSum
			}
			sc.z[k] += resid * share
		}
	}
}

// AddCanonicalCount adds, per tree level, the number of maximal nodes fully
// contained in the inclusive cell range [lo, hi] — the canonical range
// decomposition GreedyH weights hierarchy levels by. Node spans are the
// cached Node.Span values, so the walk prunes exactly as the recursive
// countCanonical does.
func (f *Flat) AddCanonicalCount(lo, hi int, weights []float64) {
	f.addCanonical(0, int32(lo), int32(hi), weights)
}

func (f *Flat) addCanonical(i int, lo, hi int32, weights []float64) {
	if f.spanHi[i] < lo || f.spanLo[i] > hi {
		return
	}
	if lo <= f.spanLo[i] && f.spanHi[i] <= hi {
		weights[f.depth[i]]++
		return
	}
	for _, k := range f.kids[f.kidOff[i]:f.kidOff[i+1]] {
		f.addCanonical(int(k), lo, hi, weights)
	}
}

// --- shared structure cache ---
//
// Data-independent structures depend only on their shape parameters, so one
// global cache serves every mechanism instance, cell, and worker. Entries are
// never evicted: the benchmark touches a bounded set of (domain, branching)
// shapes, and DAWA/SF's per-trial sub-domains are bounded by the domain size.

var flatCache sync.Map // flatKey -> *Flat

type flatKey struct {
	kind       uint8 // 0 interval, 1 grid, 2 quad
	nx, ny, bh int   // branching factor or height cap, per kind
}

// SharedInterval returns the cached flattened b-ary interval tree over [0, n).
func SharedInterval(n, b int) (*Flat, error) {
	key := flatKey{kind: 0, nx: n, bh: b}
	if v, ok := flatCache.Load(key); ok {
		return v.(*Flat), nil
	}
	root, err := BuildInterval(n, b)
	if err != nil {
		return nil, err
	}
	v, _ := flatCache.LoadOrStore(key, Flatten(root))
	return v.(*Flat), nil
}

// SharedGrid returns the cached flattened b-ary grid hierarchy over nx x ny.
func SharedGrid(nx, ny, b int) (*Flat, error) {
	key := flatKey{kind: 1, nx: nx, ny: ny, bh: b}
	if v, ok := flatCache.Load(key); ok {
		return v.(*Flat), nil
	}
	root, err := BuildGrid(nx, ny, b)
	if err != nil {
		return nil, err
	}
	v, _ := flatCache.LoadOrStore(key, Flatten(root))
	return v.(*Flat), nil
}

// SharedQuad returns the cached flattened height-capped quadtree over nx x ny.
func SharedQuad(nx, ny, maxHeight int) (*Flat, error) {
	key := flatKey{kind: 2, nx: nx, ny: ny, bh: maxHeight}
	if v, ok := flatCache.Load(key); ok {
		return v.(*Flat), nil
	}
	root, err := BuildQuad(nx, ny, maxHeight)
	if err != nil {
		return nil, err
	}
	v, _ := flatCache.LoadOrStore(key, Flatten(root))
	return v.(*Flat), nil
}
