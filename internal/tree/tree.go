// Package tree provides the hierarchical-aggregation machinery shared by the
// tree-structured mechanisms in the benchmark (H, Hb, GreedyH, QuadTree,
// HybridTree, DPCube's inference step). A tree covers the cells of a data
// vector; each node may receive a noisy measurement of its total count, and
// the weighted least-squares "consistency" inference of Hay et al. (PVLDB
// 2010) combines all measurements into minimum-variance cell estimates using
// two linear passes.
package tree

import (
	"fmt"
	"math"

	"dpbench/internal/noise"
)

// Node is one node of an aggregation tree. A leaf covers an explicit set of
// flat cell indices; an internal node covers the union of its children.
type Node struct {
	// Children is nil for leaves.
	Children []*Node
	// Cells lists the flat cell indices covered; populated only on leaves.
	Cells []int

	// Y is the noisy measurement of the node total and Var its variance.
	// Var == +Inf marks an unmeasured node, which contributes no
	// information of its own during inference.
	Y   float64
	Var float64

	size   int     // number of cells covered (cached)
	lo, hi int     // inclusive min/max covered cell index (cached)
	z      float64 // combined estimate from the upward inference pass
	zvar   float64 // variance of z
}

// Size returns the number of cells the node covers.
func (nd *Node) Size() int { return nd.size }

// Span returns the inclusive [lo, hi] range of cell indices the node covers,
// cached at Finalize time. For interval trees the node covers exactly this
// contiguous range; for spatial trees it is the min/max flat index.
func (nd *Node) Span() (lo, hi int) { return nd.lo, nd.hi }

// IsLeaf reports whether the node has no children.
func (nd *Node) IsLeaf() bool { return len(nd.Children) == 0 }

// Height returns the number of levels in the subtree rooted at nd (a single
// leaf has height 1).
func (nd *Node) Height() int {
	h := 0
	for _, c := range nd.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// CountNodes returns the number of nodes in the subtree.
func (nd *Node) CountNodes() int {
	n := 1
	for _, c := range nd.Children {
		n += c.CountNodes()
	}
	return n
}

// Walk visits every node of the subtree in pre-order.
func (nd *Node) Walk(fn func(*Node, int)) {
	nd.walk(fn, 0)
}

func (nd *Node) walk(fn func(*Node, int), depth int) {
	fn(nd, depth)
	for _, c := range nd.Children {
		c.walk(fn, depth+1)
	}
}

// Finalize computes cached sizes bottom-up and validates that every leaf
// covers at least one cell. Builders in this package call it automatically;
// callers assembling trees by hand (e.g. HybridTree's kd stage) must call it
// before Measure/Infer.
func (nd *Node) Finalize() error { return nd.finalize() }

// finalize computes cached sizes bottom-up and validates leaf coverage.
func (nd *Node) finalize() error {
	if nd.IsLeaf() {
		if len(nd.Cells) == 0 {
			return fmt.Errorf("tree: leaf covering no cells")
		}
		nd.size = len(nd.Cells)
		nd.lo, nd.hi = nd.Cells[0], nd.Cells[0]
		for _, c := range nd.Cells[1:] {
			if c < nd.lo {
				nd.lo = c
			}
			if c > nd.hi {
				nd.hi = c
			}
		}
		return nil
	}
	nd.size = 0
	for i, c := range nd.Children {
		if err := c.finalize(); err != nil {
			return err
		}
		nd.size += c.size
		if i == 0 {
			nd.lo, nd.hi = c.lo, c.hi
			continue
		}
		if c.lo < nd.lo {
			nd.lo = c.lo
		}
		if c.hi > nd.hi {
			nd.hi = c.hi
		}
	}
	return nil
}

// BuildInterval builds a b-ary tree over the cell interval [0, n). Each level
// splits a node's range into at most b nearly equal contiguous pieces; the
// recursion stops at single-cell leaves. It returns the root.
func BuildInterval(n, b int) (*Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tree: non-positive domain size %d", n)
	}
	if b < 2 {
		return nil, fmt.Errorf("tree: branching factor %d < 2", b)
	}
	root := buildInterval(0, n, b)
	if err := root.finalize(); err != nil {
		return nil, err
	}
	return root, nil
}

func buildInterval(lo, hi, b int) *Node {
	n := hi - lo
	if n == 1 {
		return &Node{Cells: []int{lo}, Var: math.Inf(1)}
	}
	nd := &Node{Var: math.Inf(1)}
	// Split into at most b nearly equal chunks.
	chunks := b
	if n < b {
		chunks = n
	}
	start := lo
	for i := 0; i < chunks; i++ {
		end := lo + (n*(i+1))/chunks
		if end > start {
			nd.Children = append(nd.Children, buildInterval(start, end, b))
			start = end
		}
	}
	return nd
}

// Rect is an axis-aligned cell rectangle [X0,X1) x [Y0,Y1) on an nx x ny
// grid stored row-major (flat index = y*nx + x).
type Rect struct{ X0, Y0, X1, Y1 int }

// BuildQuad builds a quadtree over an nx x ny grid. Splitting stops when a
// node is a single cell or when maxHeight levels have been created; truncated
// leaves cover their whole rectangle (this is what makes a height-limited
// QuadTree data-dependent and, on large domains, inconsistent — Theorem 5).
func BuildQuad(nx, ny, maxHeight int) (*Node, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("tree: non-positive grid %dx%d", nx, ny)
	}
	if maxHeight < 1 {
		return nil, fmt.Errorf("tree: non-positive height %d", maxHeight)
	}
	root := buildQuad(Rect{0, 0, nx, ny}, nx, maxHeight)
	if err := root.finalize(); err != nil {
		return nil, err
	}
	return root, nil
}

func buildQuad(r Rect, nx, remaining int) *Node {
	w, h := r.X1-r.X0, r.Y1-r.Y0
	if remaining == 1 || (w == 1 && h == 1) {
		cells := make([]int, 0, w*h)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				cells = append(cells, y*nx+x)
			}
		}
		return &Node{Cells: cells, Var: math.Inf(1)}
	}
	nd := &Node{Var: math.Inf(1)}
	mx := r.X0 + (w+1)/2
	my := r.Y0 + (h+1)/2
	quads := []Rect{
		{r.X0, r.Y0, mx, my},
		{mx, r.Y0, r.X1, my},
		{r.X0, my, mx, r.Y1},
		{mx, my, r.X1, r.Y1},
	}
	for _, q := range quads {
		if q.X1 > q.X0 && q.Y1 > q.Y0 {
			nd.Children = append(nd.Children, buildQuad(q, nx, remaining-1))
		}
	}
	if len(nd.Children) == 0 {
		// Degenerate 1xN strips collapse to a leaf.
		return buildQuad(r, nx, 1)
	}
	return nd
}

// BuildQuadRegion builds an unfinalized quadtree over the sub-rectangle r of
// an nx-wide grid with at most maxHeight levels. It exists for callers that
// graft quadtrees under hand-built upper levels (HybridTree); they must call
// Finalize on the assembled root.
func BuildQuadRegion(nx int, r Rect, maxHeight int) *Node {
	if maxHeight < 1 {
		maxHeight = 1
	}
	return buildQuad(r, nx, maxHeight)
}

// BuildGrid builds a hierarchy over an nx x ny grid where every level splits
// each dimension into at most b nearly equal parts (so a node has up to b*b
// children), recursing to single-cell leaves. BuildQuad is the b=2 special
// case with a height limit; Hb's multi-dimensional variant uses this with its
// variance-optimal b.
func BuildGrid(nx, ny, b int) (*Node, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("tree: non-positive grid %dx%d", nx, ny)
	}
	if b < 2 {
		return nil, fmt.Errorf("tree: branching factor %d < 2", b)
	}
	root := buildGrid(Rect{0, 0, nx, ny}, nx, b)
	if err := root.finalize(); err != nil {
		return nil, err
	}
	return root, nil
}

func buildGrid(r Rect, nx, b int) *Node {
	w, h := r.X1-r.X0, r.Y1-r.Y0
	if w == 1 && h == 1 {
		return &Node{Cells: []int{r.Y0*nx + r.X0}, Var: math.Inf(1)}
	}
	nd := &Node{Var: math.Inf(1)}
	xs := splitPoints(r.X0, r.X1, b)
	ys := splitPoints(r.Y0, r.Y1, b)
	for yi := 0; yi < len(ys)-1; yi++ {
		for xi := 0; xi < len(xs)-1; xi++ {
			q := Rect{xs[xi], ys[yi], xs[xi+1], ys[yi+1]}
			if q.X1 > q.X0 && q.Y1 > q.Y0 {
				nd.Children = append(nd.Children, buildGrid(q, nx, b))
			}
		}
	}
	return nd
}

// splitPoints divides [lo, hi) into at most b nearly equal segments and
// returns the boundaries including both endpoints.
func splitPoints(lo, hi, b int) []int {
	n := hi - lo
	chunks := b
	if n < b {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	pts := []int{lo}
	for i := 1; i <= chunks; i++ {
		p := lo + n*i/chunks
		if p > pts[len(pts)-1] {
			pts = append(pts, p)
		}
	}
	return pts
}

// TrueCount returns the exact total of the node over data.
func (nd *Node) TrueCount(data []float64) float64 {
	if nd.IsLeaf() {
		var s float64
		for _, c := range nd.Cells {
			s += data[c]
		}
		return s
	}
	var s float64
	for _, c := range nd.Children {
		s += c.TrueCount(data)
	}
	return s
}

// levelLabels precomputes the ledger labels Measure charges under, one per
// tree depth, so the metered hot path performs no string formatting.
var levelLabels = func() (out [64]string) {
	for i := range out {
		out[i] = fmt.Sprintf("level%d", i)
	}
	return
}()

// LevelLabel returns the ledger label for measurements at tree depth d.
// Composition plans cover all depths with the wildcard entry "level*".
func LevelLabel(d int) string {
	if d >= 0 && d < len(levelLabels) {
		return levelLabels[d]
	}
	return "level-deep"
}

// Measure assigns each node at depth d (root depth 0) a Laplace-noised
// measurement with per-level budget epsByLevel[d]; a zero budget leaves the
// level unmeasured. The per-level budgets must sum to at most the meter's
// total budget, since each record contributes to one node per level: the
// nodes of one level partition the domain, so each level is charged as a
// parallel scope under LevelLabel(depth) and the whole tree costs
// sum(epsByLevel).
func (nd *Node) Measure(m *noise.Meter, data []float64, epsByLevel []float64) {
	nd.Walk(func(v *Node, depth int) {
		if depth >= len(epsByLevel) || epsByLevel[depth] <= 0 {
			v.Y, v.Var = 0, math.Inf(1)
			return
		}
		eps := epsByLevel[depth]
		v.Y = v.TrueCount(data) + m.LaplacePar(LevelLabel(depth), 1/eps, eps)
		v.Var = 2 / (eps * eps)
	})
}

// UniformLevelBudget splits eps evenly over h levels.
func UniformLevelBudget(eps float64, h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = eps / float64(h)
	}
	return out
}

// GeometricLevelBudget allocates budget proportional to 2^(depth/3), the
// allocation Cormode et al. recommend for spatial decompositions: deeper
// levels (smaller counts) receive more budget.
func GeometricLevelBudget(eps float64, h int) []float64 {
	weights := make([]float64, h)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(2, float64(i)/3)
		total += weights[i]
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = eps * weights[i] / total
	}
	return out
}

// Infer runs the two-pass weighted least-squares consistency inference and
// writes per-cell estimates into a fresh slice of length n. Truncated leaves
// spread their estimate uniformly over their cells (the uniformity
// assumption of Section 3.1).
func (nd *Node) Infer(n int) []float64 {
	out := make([]float64, n)
	nd.InferInto(out)
	return out
}

// InferInto is Infer writing into a caller-provided slice, which is zeroed
// first; hot paths reuse one buffer across trials.
func (nd *Node) InferInto(out []float64) {
	nd.upward()
	for i := range out {
		out[i] = 0
	}
	nd.downward(nd.z, out)
}

// upward computes, for every node, the minimum-variance unbiased combination
// z of its own measurement and the sum of its children's combined estimates.
func (nd *Node) upward() {
	if nd.IsLeaf() {
		nd.z, nd.zvar = nd.Y, nd.Var
		if math.IsInf(nd.Var, 1) {
			// An unmeasured leaf carries no information; estimate 0 with
			// huge (but finite) variance so corrections can flow to it.
			nd.z, nd.zvar = 0, unmeasuredVar
		}
		return
	}
	var childSum, childVar float64
	for _, c := range nd.Children {
		c.upward()
		childSum += c.z
		childVar += c.zvar
	}
	precY := 0.0
	if !math.IsInf(nd.Var, 1) && nd.Var > 0 {
		precY = 1 / nd.Var
	}
	precC := 0.0
	if childVar > 0 {
		precC = 1 / childVar
	}
	switch {
	case precY == 0 && precC == 0:
		nd.z, nd.zvar = childSum, unmeasuredVar
	case precY == 0:
		nd.z, nd.zvar = childSum, childVar
	case precC == 0:
		nd.z, nd.zvar = nd.Y, nd.Var
	default:
		nd.z = (precY*nd.Y + precC*childSum) / (precY + precC)
		nd.zvar = 1 / (precY + precC)
	}
}

// unmeasuredVar stands in for infinite variance so precision arithmetic stays
// finite; it dwarfs any realistic measurement variance.
const unmeasuredVar = 1e30

// downward propagates the root-consistent totals to the leaves: each node's
// final estimate is its combined estimate plus a share of the parent's
// residual, apportioned by variance (higher-variance children absorb more of
// the correction).
func (nd *Node) downward(target float64, out []float64) {
	if nd.IsLeaf() {
		per := target / float64(len(nd.Cells))
		for _, c := range nd.Cells {
			out[c] += per
		}
		return
	}
	var childSum, varSum float64
	for _, c := range nd.Children {
		childSum += c.z
		varSum += c.zvar
	}
	resid := target - childSum
	for _, c := range nd.Children {
		share := 1.0 / float64(len(nd.Children))
		if varSum > 0 {
			share = c.zvar / varSum
		}
		c.downward(c.z+resid*share, out)
	}
}
