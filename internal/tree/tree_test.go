package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpbench/internal/noise"
)

func TestBuildIntervalStructure(t *testing.T) {
	root, err := BuildInterval(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 8 {
		t.Fatalf("root size = %d, want 8", root.Size())
	}
	if h := root.Height(); h != 4 {
		t.Fatalf("height = %d, want 4", h)
	}
	if n := root.CountNodes(); n != 15 {
		t.Fatalf("nodes = %d, want 15", n)
	}
}

func TestBuildIntervalNonPow2(t *testing.T) {
	root, err := BuildInterval(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 10 {
		t.Fatalf("size = %d, want 10", root.Size())
	}
	// Leaves must partition [0,10) exactly.
	seen := make([]bool, 10)
	root.Walk(func(nd *Node, _ int) {
		if nd.IsLeaf() {
			for _, c := range nd.Cells {
				if seen[c] {
					t.Fatalf("cell %d covered twice", c)
				}
				seen[c] = true
			}
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d not covered", i)
		}
	}
}

func TestBuildIntervalErrors(t *testing.T) {
	if _, err := BuildInterval(0, 2); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := BuildInterval(4, 1); err == nil {
		t.Fatal("expected error for b=1")
	}
}

func TestBuildQuadCoversGrid(t *testing.T) {
	root, err := BuildQuad(8, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 64 {
		t.Fatalf("size = %d, want 64", root.Size())
	}
	seen := make([]bool, 64)
	root.Walk(func(nd *Node, _ int) {
		if nd.IsLeaf() {
			for _, c := range nd.Cells {
				if seen[c] {
					t.Fatalf("cell %d covered twice", c)
				}
				seen[c] = true
			}
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d not covered", i)
		}
	}
}

func TestBuildQuadHeightCap(t *testing.T) {
	root, err := BuildQuad(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h := root.Height(); h > 3 {
		t.Fatalf("height = %d, want <= 3", h)
	}
	// Truncated leaves cover 4x4 blocks.
	root.Walk(func(nd *Node, _ int) {
		if nd.IsLeaf() && len(nd.Cells) != 16 {
			t.Fatalf("leaf covers %d cells, want 16", len(nd.Cells))
		}
	})
}

func TestBuildQuadErrors(t *testing.T) {
	if _, err := BuildQuad(0, 4, 3); err == nil {
		t.Fatal("expected error for nx=0")
	}
	if _, err := BuildQuad(4, 4, 0); err == nil {
		t.Fatal("expected error for height=0")
	}
}

func TestBuildGridBranching(t *testing.T) {
	root, err := BuildGrid(9, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 81 {
		t.Fatalf("size = %d, want 81", root.Size())
	}
	if got := len(root.Children); got != 9 {
		t.Fatalf("root children = %d, want 9", got)
	}
}

func TestTrueCount(t *testing.T) {
	root, _ := BuildInterval(4, 2)
	data := []float64{1, 2, 3, 4}
	if got := root.TrueCount(data); got != 10 {
		t.Fatalf("TrueCount = %v, want 10", got)
	}
}

func TestMeasureSetsVariances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	root, _ := BuildInterval(8, 2)
	data := make([]float64, 8)
	eps := tree8Budget(1.0)
	root.Measure(noise.NewMeter(1, rng), data, eps)
	root.Walk(func(nd *Node, depth int) {
		want := 2 / (eps[depth] * eps[depth])
		if math.Abs(nd.Var-want) > 1e-12 {
			t.Fatalf("depth %d var = %v, want %v", depth, nd.Var, want)
		}
	})
}

func tree8Budget(eps float64) []float64 { return UniformLevelBudget(eps, 4) }

func TestMeasureUnmeasuredLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	root, _ := BuildInterval(4, 2)
	data := []float64{5, 5, 5, 5}
	// Only leaves measured.
	budget := []float64{0, 0, 1}
	root.Measure(noise.NewMeter(1, rng), data, budget)
	if !math.IsInf(root.Var, 1) {
		t.Fatalf("unmeasured root should have infinite variance, got %v", root.Var)
	}
	est := root.Infer(4)
	var total float64
	for _, v := range est {
		total += v
	}
	if math.Abs(total-20) > 20 {
		t.Fatalf("estimate total %v wildly off 20", total)
	}
}

func TestInferExactWhenNoiseFree(t *testing.T) {
	// With essentially infinite budget, inference must reproduce the data.
	rng := rand.New(rand.NewSource(3))
	root, _ := BuildInterval(16, 2)
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i * i)
	}
	root.Measure(noise.NewMeter(1, rng), data, UniformLevelBudget(1e9, root.Height()))
	est := root.Infer(16)
	for i := range data {
		if math.Abs(est[i]-data[i]) > 1e-3 {
			t.Fatalf("cell %d: est %v, want %v", i, est[i], data[i])
		}
	}
}

func TestInferConsistency(t *testing.T) {
	// After inference, each parent estimate equals the sum of its children
	// at the cell level: total of cells equals root-consistent estimate.
	rng := rand.New(rand.NewSource(4))
	root, _ := BuildInterval(32, 2)
	data := make([]float64, 32)
	for i := range data {
		data[i] = float64(i % 7)
	}
	root.Measure(noise.NewMeter(1, rng), data, UniformLevelBudget(0.5, root.Height()))
	est := root.Infer(32)
	// Walk each node: its leaf-spread estimate must be internally consistent,
	// i.e. cell sums within each node's span should match the hierarchical
	// estimate the downward pass assigned. We verify the weaker, exact
	// property that the whole estimate is finite and deterministic given rng.
	var total float64
	for _, v := range est {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite estimate")
		}
		total += v
	}
	if math.IsNaN(total) {
		t.Fatal("NaN total")
	}
}

func TestInferVarianceReduction(t *testing.T) {
	// The hierarchical estimator should answer large range queries with
	// lower error than the per-leaf (identity) estimator at the same total
	// budget. Compare mean squared error of the total-sum query.
	const (
		n      = 256
		eps    = 0.1
		trials = 300
	)
	data := make([]float64, n)
	for i := range data {
		data[i] = 10
	}
	trueTotal := float64(n * 10)
	var hierSE, flatSE float64
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < trials; trial++ {
		root, _ := BuildInterval(n, 2)
		root.Measure(noise.NewMeter(1, rng), data, UniformLevelBudget(eps, root.Height()))
		est := root.Infer(n)
		var ht float64
		for _, v := range est {
			ht += v
		}
		hierSE += (ht - trueTotal) * (ht - trueTotal)

		var ft float64
		for range data {
			ft += 10 + laplaceSample(rng, 1/eps)
		}
		flatSE += (ft - trueTotal) * (ft - trueTotal)
	}
	if hierSE >= flatSE {
		t.Fatalf("hierarchy MSE %v not below identity MSE %v on total query", hierSE/trials, flatSE/trials)
	}
}

func laplaceSample(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

func TestUniformLevelBudgetSums(t *testing.T) {
	b := UniformLevelBudget(1.0, 5)
	var s float64
	for _, v := range b {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("budget sums to %v, want 1", s)
	}
}

func TestGeometricLevelBudgetSumsAndGrows(t *testing.T) {
	b := GeometricLevelBudget(2.0, 6)
	var s float64
	for i, v := range b {
		s += v
		if i > 0 && v <= b[i-1] {
			t.Fatalf("geometric budget not increasing at level %d", i)
		}
	}
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("budget sums to %v, want 2", s)
	}
}

func TestBuildQuadRegionAndFinalize(t *testing.T) {
	nd := BuildQuadRegion(8, Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}, 2)
	if err := nd.Finalize(); err != nil {
		t.Fatal(err)
	}
	if nd.Size() != 16 {
		t.Fatalf("region size = %d, want 16", nd.Size())
	}
}

func TestIntervalLeafCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		b := 2 + rng.Intn(6)
		root, err := BuildInterval(n, b)
		if err != nil {
			return false
		}
		covered := 0
		ok := true
		root.Walk(func(nd *Node, _ int) {
			if nd.IsLeaf() {
				covered += len(nd.Cells)
				if len(nd.Cells) != 1 {
					ok = false // interval trees recurse to single cells
				}
			}
		})
		return ok && covered == n && root.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInferPreservesTotalProperty(t *testing.T) {
	// The inferred cell totals must equal the root's combined estimate,
	// which with a high-budget root measurement is close to the true total.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		root, err := BuildInterval(n, 2)
		if err != nil {
			return false
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(rng.Intn(50))
		}
		root.Measure(noise.NewMeter(1, rng), data, UniformLevelBudget(100, root.Height()))
		est := root.Infer(n)
		var total, want float64
		for i := range data {
			total += est[i]
			want += data[i]
		}
		// Generous tolerance: high budget keeps noise tiny.
		return math.Abs(total-want) < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
