package tree

import (
	"math/rand"
	"testing"

	"dpbench/internal/noise"
)

// TestFlatMatchesNodeBitwise pins the flattened tree's whole trial pipeline
// (sums, measurement draw order, two-pass inference) to the recursive Node
// implementation bit for bit, across interval, grid and truncated quad
// shapes. This is the foundation the plan layer's bit-identity rests on.
func TestFlatMatchesNodeBitwise(t *testing.T) {
	type build struct {
		name string
		mk   func() (*Node, error)
		n    int
	}
	builds := []build{
		{"interval-64-b2", func() (*Node, error) { return BuildInterval(64, 2) }, 64},
		{"interval-100-b2", func() (*Node, error) { return BuildInterval(100, 2) }, 100},
		{"interval-37-b5", func() (*Node, error) { return BuildInterval(37, 5) }, 37},
		{"grid-8x8-b2", func() (*Node, error) { return BuildGrid(8, 8, 2) }, 64},
		{"grid-6x9-b3", func() (*Node, error) { return BuildGrid(6, 9, 3) }, 54},
		{"quad-16x16-h3", func() (*Node, error) { return BuildQuad(16, 16, 3) }, 256},
		{"quad-7x5-h10", func() (*Node, error) { return BuildQuad(7, 5, 10) }, 35},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			root, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			flat := Flatten(root)
			if flat.N() != b.n {
				t.Fatalf("flat covers %d cells, want %d", flat.N(), b.n)
			}
			if flat.Height() != root.Height() {
				t.Fatalf("flat height %d, node height %d", flat.Height(), root.Height())
			}
			if flat.NumNodes() != root.CountNodes() {
				t.Fatalf("flat has %d nodes, tree has %d", flat.NumNodes(), root.CountNodes())
			}
			data := make([]float64, b.n)
			rng := rand.New(rand.NewSource(7))
			for i := range data {
				data[i] = float64(rng.Intn(300))
			}
			for seed := int64(1); seed <= 4; seed++ {
				for _, budget := range [][]float64{
					UniformLevelBudget(0.8, root.Height()),
					GeometricLevelBudget(0.8, root.Height()),
					// A zero root-level budget exercises the unmeasured-node
					// inference branches.
					append([]float64{0}, UniformLevelBudget(0.8, root.Height())[1:]...),
				} {
					root.Measure(noise.NewMeter(0.8, rand.New(rand.NewSource(seed))), data, budget)
					want := root.Infer(b.n)

					sc := flat.Acquire()
					flat.ComputeSums(data, sc)
					flat.MeasureInto(noise.NewMeter(0.8, rand.New(rand.NewSource(seed))), sc, budget)
					got := make([]float64, b.n)
					flat.InferInto(sc, got)
					flat.Release(sc)

					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d cell %d: flat %v != node %v (bitwise)", seed, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestRebuildIntervalMatchesFlatten checks that the in-place rebuildable
// builder produces exactly the layout of Flatten(BuildInterval(n, b)) — same
// node order, topology, spans and cells — and therefore the same trial
// pipeline output, across sizes, branching factors and reuses of one arena.
func TestRebuildIntervalMatchesFlatten(t *testing.T) {
	var f Flat
	sc := NewScratch()
	rng := rand.New(rand.NewSource(11))
	// Deliberately revisit sizes out of order to exercise arena reuse.
	sizes := []int{1, 5, 64, 3, 100, 2, 37, 64, 1, 17}
	for _, b := range []int{2, 3, 7} {
		for _, n := range sizes {
			root, err := BuildInterval(n, b)
			if err != nil {
				t.Fatal(err)
			}
			want := Flatten(root)
			if err := f.RebuildInterval(n, b); err != nil {
				t.Fatal(err)
			}
			if f.N() != want.N() || f.Height() != want.Height() || f.NumNodes() != want.NumNodes() {
				t.Fatalf("n=%d b=%d: shape mismatch (N %d/%d, height %d/%d, nodes %d/%d)",
					n, b, f.N(), want.N(), f.Height(), want.Height(), f.NumNodes(), want.NumNodes())
			}
			for i := 0; i < f.NumNodes(); i++ {
				if f.depth[i] != want.depth[i] || f.spanLo[i] != want.spanLo[i] || f.spanHi[i] != want.spanHi[i] ||
					f.kidOff[i] != want.kidOff[i] || f.celOff[i] != want.celOff[i] {
					t.Fatalf("n=%d b=%d node %d: layout mismatch", n, b, i)
				}
			}
			for i, k := range want.kids {
				if f.kids[i] != k {
					t.Fatalf("n=%d b=%d kid %d: %d != %d", n, b, i, f.kids[i], k)
				}
			}
			for i, c := range want.cells {
				if f.cells[i] != c {
					t.Fatalf("n=%d b=%d cell %d: %d != %d", n, b, i, f.cells[i], c)
				}
			}
			// End-to-end: one measured trial must match bitwise.
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(rng.Intn(100))
			}
			budget := UniformLevelBudget(0.7, want.Height())
			wsc := want.Acquire()
			want.ComputeSums(data, wsc)
			want.MeasureInto(noise.NewMeter(0.7, rand.New(rand.NewSource(5))), wsc, budget)
			wout := make([]float64, n)
			want.InferInto(wsc, wout)

			f.ComputeSums(data, sc)
			f.MeasureInto(noise.NewMeter(0.7, rand.New(rand.NewSource(5))), sc, budget)
			gout := make([]float64, n)
			f.InferInto(sc, gout)
			for i := range wout {
				if gout[i] != wout[i] {
					t.Fatalf("n=%d b=%d cell %d: rebuilt %v != flattened %v", n, b, i, gout[i], wout[i])
				}
			}
		}
	}
}

// TestSharedStructureCaching checks that the global caches return the same
// immutable structure for repeated shape parameters and reject invalid ones.
func TestSharedStructureCaching(t *testing.T) {
	a, err := SharedInterval(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedInterval(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SharedInterval did not cache")
	}
	if _, err := SharedInterval(0, 2); err == nil {
		t.Fatal("expected error for n=0")
	}
	q1, err := SharedQuad(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := SharedQuad(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("SharedQuad did not cache")
	}
	g1, err := SharedGrid(8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A grid and a quad over the same domain are distinct cache entries.
	if any(g1) == any(q1) {
		t.Fatal("grid and quad cache entries collide")
	}
}

// TestFlatCanonicalCountMatchesRecursive checks the canonical range
// decomposition counts against a direct recursive walk over the Node tree.
func TestFlatCanonicalCountMatchesRecursive(t *testing.T) {
	root, err := BuildInterval(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	flat := Flatten(root)
	var rec func(nd *Node, depth, lo, hi int, w []float64)
	rec = func(nd *Node, depth, lo, hi int, w []float64) {
		nlo, nhi := nd.Span()
		if nhi < lo || nlo > hi {
			return
		}
		if lo <= nlo && nhi <= hi {
			w[depth]++
			return
		}
		for _, c := range nd.Children {
			rec(c, depth+1, lo, hi, w)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 200; q++ {
		lo, hi := rng.Intn(100), rng.Intn(100)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := make([]float64, root.Height())
		rec(root, 0, lo, hi, want)
		got := make([]float64, flat.Height())
		flat.AddCanonicalCount(lo, hi, got)
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("query [%d,%d] level %d: %v != %v", lo, hi, d, got[d], want[d])
			}
		}
	}
}
