// Package privtaint proves the release invariant the whole benchmark
// rests on: every value derived from the private histogram that reaches a
// mechanism's output must first cross an accountant-metered noise draw.
//
// It runs the interprocedural engine in internal/analysis/dataflow over
// dpbench/internal/algo and dpbench/internal/serve. Taint sources are
// values of the private-histogram type (vec.Vector) and anything
// arithmetically derived; sanitizers are the noise.Meter draw methods
// (a value that combined with a fresh metered draw is, by definition,
// released) and callees that receive the meter; sinks are the out buffer
// of Plan.Execute, error construction (fmt.Errorf / errors.New — an error
// string is client-visible), HTTP response paths in serve, the durable
// budget ledger's commit surface in dpbench/internal/ledger (AppendRecord,
// EncodeRecord, Tree.Append, Batcher.Submit, Store.Append — ledger records
// and Merkle leaves must carry already-charged request metadata only, since
// /v1/root and /v1/proof republish them to any caller), and — because
// data-dependent control flow is a side channel the mechanisms must charge
// for — branch conditions in Execute-phase code.
//
// Plan-time branching on the raw data is deliberately NOT flagged in algo:
// under the repo's Plan/Execute contract, plans hoist data summaries but
// the structure they choose is only released through Execute's metered
// output, so branch-taint is scoped to functions reachable from an Execute
// method. In serve every function is request-path, so all branches are
// checked there.
//
// The audited escape hatch is `//dp:public <justification>` on the line of
// (or above) an assignment, struct field declaration, or function
// declaration: it pins the value public. It exists for the paper's
// declared public side information — the dataset scale used by MWEM, SF
// and the grid mechanisms for layout (Principle 7: scale as side
// information), and the serve metadata endpoint that reports it.
//
// Out of scope by design: internal/core and the experiment harness consume
// the raw histogram to measure error against the truth — that is the
// benchmark's job, not a privacy leak — and internal/vec/tree/noise are
// the substrate the model describes rather than analyzes.
package privtaint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/dataflow"
	"dpbench/internal/analysis/meterapi"
)

// Analyzer is the privtaint pass.
var Analyzer = &analysis.Analyzer{
	Name: "privtaint",
	Doc:  "private-histogram taint must cross an accountant-metered noise draw before reaching an output, error, response, or execute-phase branch",
	Run:  run,
}

const (
	algoPkg   = "dpbench/internal/algo"
	servePkg  = "dpbench/internal/serve"
	vecPkg    = "dpbench/internal/vec"
	ledgerPkg = "dpbench/internal/ledger"
)

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	path := pass.Pkg.Path()
	inServe := strings.HasPrefix(path, servePkg)
	if !strings.HasPrefix(path, algoPkg) && !inServe {
		return nil
	}
	eng := dataflow.New(pass, &model{info: pass.TypesInfo})
	eng.Run()
	r := &reporter{pass: pass, eng: eng}

	// Branch-taint scope: in algo, only the Execute phase; in serve,
	// every function is on the request path.
	var roots []*dataflow.Func
	for _, f := range eng.Funcs() {
		if isExecuteMethod(f) {
			roots = append(roots, f)
		}
	}
	branchScope := eng.CallGraphReachable(roots)

	for _, f := range eng.Funcs() {
		r.checkFunc(f, inServe || branchScope[f])
	}
	return nil
}

// isExecuteMethod reports whether f is a Plan.Execute implementation: a
// method named Execute with a []float64 output parameter.
func isExecuteMethod(f *dataflow.Func) bool {
	if f.Decl.Recv == nil || f.Decl.Name.Name != "Execute" {
		return false
	}
	return len(outParams(f)) > 0
}

// outParams returns the identifiers of f's []float64 parameters — the
// released-output buffers of an Execute method.
func outParams(f *dataflow.Func) []*ast.Ident {
	var out []*ast.Ident
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	i := 0
	for _, field := range f.Decl.Type.Params.List {
		for _, name := range field.Names {
			if i < sig.Params().Len() {
				if s, ok := sig.Params().At(i).Type().(*types.Slice); ok {
					if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Float64 {
						out = append(out, name)
					}
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// reporter walks converged function bodies and reports source→sink paths.
type reporter struct {
	pass *analysis.Pass
	eng  *dataflow.Engine
}

// checkFunc reports taint reaching sinks inside one function.
func (r *reporter) checkFunc(f *dataflow.Func, branchScoped bool) {
	// Sink variables: the out params of an Execute method, plus locals
	// aliasing them through slicing.
	sinks := map[types.Object]bool{}
	if isExecuteMethod(f) {
		for _, id := range outParams(f) {
			if obj := r.pass.TypesInfo.Defs[id]; obj != nil {
				sinks[obj] = true
			}
		}
		r.collectAliases(f, sinks)
	}

	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			r.checkAssign(f, n, sinks)
		case *ast.CallExpr:
			r.checkCall(f, n, sinks, branchScoped)
		case *ast.IfStmt:
			r.checkBranch(f, n.Cond, branchScoped)
		case *ast.ForStmt:
			r.checkBranch(f, n.Cond, branchScoped)
		case *ast.SwitchStmt:
			r.checkBranch(f, n.Tag, branchScoped)
		}
		return true
	})
}

// collectAliases adds locals assigned from a sink buffer (slices of out)
// to the sink set, iterating to closure.
func (r *reporter) collectAliases(f *dataflow.Func, sinks map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := r.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = r.pass.TypesInfo.Uses[id]
				}
				if obj == nil || sinks[obj] {
					continue
				}
				if root := r.rootObj(as.Rhs[i]); root != nil && sinks[root] {
					sinks[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// rootObj peels slices/parens/indexes to the root identifier's object.
func (r *reporter) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := r.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return r.pass.TypesInfo.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkAssign flags direct writes of private values into a sink buffer.
func (r *reporter) checkAssign(f *dataflow.Func, as *ast.AssignStmt, sinks map[types.Object]bool) {
	if len(sinks) == 0 || r.eng.PublicAt(as.Pos()) {
		return
	}
	n := len(as.Lhs)
	for i, lhs := range as.Lhs {
		root := r.rootObj(lhs)
		if root == nil || !sinks[root] {
			continue
		}
		// Only element/alias writes into the buffer are releases; plain
		// rebinding (out = ...) is checked through the new value itself.
		if _, isIdent := lhs.(*ast.Ident); isIdent && as.Tok.String() == "=" {
			continue
		}
		var v dataflow.Val
		if len(as.Rhs) == n {
			v = r.eng.Eval(f, as.Rhs[i])
		} else if len(as.Rhs) == 1 {
			v = r.eng.Eval(f, as.Rhs[0])
		}
		if v.K == dataflow.Priv {
			r.pass.Reportf(as.Pos(), "unsanitized private value written into Execute's output buffer %s: every released value must cross an accountant-metered noise draw (or carry an audited //dp:public justification)", root.Name())
		}
	}
}

// checkCall inspects one call site for sink writes, error/response sinks,
// and branch taint crossing into the callee.
func (r *reporter) checkCall(f *dataflow.Func, call *ast.CallExpr, sinks map[types.Object]bool, branchScoped bool) {
	if r.eng.PublicAt(call.Pos()) {
		return
	}
	facts := r.eng.Facts(f, call)
	calleeName := callName(call)
	for idx, wv := range facts.Effect.ArgWrites {
		if wv.K != dataflow.Priv || idx >= len(facts.ArgExprs) {
			continue
		}
		root := r.rootObj(facts.ArgExprs[idx])
		if root != nil && sinks[root] {
			r.pass.Reportf(call.Pos(), "call to %s writes an unsanitized private value into Execute's output buffer %s: route it through an accountant-metered noise draw first", calleeName, root.Name())
		}
	}
	for _, idx := range facts.Effect.ErrSinkArgs {
		if idx < len(facts.Args) && facts.Args[idx].K == dataflow.Priv {
			r.pass.Reportf(call.Pos(), "private value reaches an error constructed by %s: error strings are client-visible output and must not carry unreleased data", calleeName)
			break
		}
	}
	for _, idx := range facts.Effect.RespSinkArgs {
		if idx < len(facts.Args) && facts.Args[idx].K == dataflow.Priv {
			r.pass.Reportf(call.Pos(), "private value reaches the HTTP response via %s: responses may carry only released (metered) or audited //dp:public values", calleeName)
			break
		}
	}
	for _, idx := range facts.Effect.LedgerSinkArgs {
		if idx < len(facts.Args) && facts.Args[idx].K == dataflow.Priv {
			r.pass.Reportf(call.Pos(), "private value reaches the durable budget ledger via %s: ledger records and Merkle leaves carry already-charged request metadata only, and /v1/proof republishes them to any caller", calleeName)
			break
		}
	}
	if branchScoped && facts.BranchArgs != 0 {
		for i, av := range facts.Args {
			if facts.BranchArgs&(1<<uint(i)) != 0 && av.K == dataflow.Priv {
				r.pass.Reportf(call.Pos(), "private value passed to %s feeds a branch condition inside it: data-dependent control flow in the execute phase is an uncharged side channel", calleeName)
				break
			}
		}
	}
}

// checkBranch flags branch conditions on unsanitized private values.
func (r *reporter) checkBranch(f *dataflow.Func, cond ast.Expr, branchScoped bool) {
	if !branchScoped || cond == nil || r.eng.PublicAt(cond.Pos()) {
		return
	}
	if v := r.eng.Eval(f, cond); v.K == dataflow.Priv {
		r.pass.Reportf(cond.Pos(), "branch condition depends on an unsanitized private value: data-dependent control flow in the execute phase is an uncharged side channel — branch on a metered (noisy) value instead")
	}
}

// callName renders a call's function expression for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}

// model supplies the dpbench domain knowledge to the dataflow engine.
type model struct {
	info *types.Info
}

// Intrinsic marks private-histogram values as sources and the public shape
// surface as public.
func (m *model) Intrinsic(info *types.Info, e ast.Expr) (dataflow.Val, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return dataflow.Val{}, false
	}
	if tv.Value != nil || tv.IsNil() {
		return dataflow.Val{}, true // constants and nil are public
	}
	// The domain-shape field vec.Vector.Dims is public metadata.
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Dims" {
		if isVecType(info.Types[sel.X].Type) {
			return dataflow.Val{}, true
		}
	}
	// Any expression of the private-histogram type is a source.
	if isVecType(tv.Type) {
		return dataflow.Val{K: dataflow.Priv}, true
	}
	return dataflow.Val{}, false
}

// vecShapeMethods are the Vector accessors that expose only the public
// domain shape, never cell contents.
var vecShapeMethods = map[string]bool{"N": true, "K": true, "Offset": true}

// meterDrawMethods return a fresh metered draw.
var meterDrawMethods = map[string]bool{"Laplace": true, "LaplacePar": true, "Geometric": true}

// meterDstArg maps the Into-style meter methods to the effect index of
// their destination buffer (receiver is 0, label 1, dst 2) and the kind
// the buffer holds afterwards.
var meterDstArg = map[string]struct {
	idx  int
	kind dataflow.Kind
}{
	"LaplaceVecInto":       {2, dataflow.Pub},
	"LaplaceVecParInto":    {2, dataflow.Pub},
	"LaplaceMechanismInto": {2, dataflow.Pub},
	"ExpMechGumbels":       {2, dataflow.Draw},
}

// Call classifies meter methods, the vec shape surface, error and response
// sinks, and meter-carrying callees.
func (m *model) Call(info *types.Info, call *ast.CallExpr, args []dataflow.Val) (dataflow.Effect, bool) {
	if name, ok := meterapi.MeterMethod(info, call); ok {
		return meterEffect(name, args), true
	}
	if eff, ok := ledgerSinkEffect(info, call, args); ok {
		return eff, true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			sig, sigOK := fn.Type().(*types.Signature)
			if sigOK && sig.Recv() != nil {
				if isVecType(sig.Recv().Type()) && vecShapeMethods[fn.Name()] {
					return dataflow.Effect{}, true
				}
				if fn.Name() == "Encode" && isJSONEncoder(sig.Recv().Type()) {
					// json.NewEncoder(w).Encode(v): the response sink.
					return dataflow.Effect{RespSinkArgs: argIdxRange(1, len(args))}, true
				}
			}
			if pkg := fn.Pkg(); pkg != nil && sigOK && sig.Recv() == nil {
				if (pkg.Path() == "fmt" && fn.Name() == "Errorf") ||
					(pkg.Path() == "errors" && fn.Name() == "New") {
					return dataflow.Effect{ErrSinkArgs: argIdxRange(0, len(args))}, true
				}
			}
		}
	}
	// A call handed an http.ResponseWriter consumes its other arguments
	// into the response.
	if idx := responseWriterArg(info, call, args); idx >= 0 {
		eff := dataflow.Effect{}
		for i := range args {
			if i != idx {
				eff.RespSinkArgs = append(eff.RespSinkArgs, i)
			}
		}
		return eff, true
	}
	// A callee that receives the accountant's meter is a sanctioned
	// noising path: its result is released and so are the mutable
	// buffers it fills (the tree MeasureInto idiom).
	if meterIdx := meterArg(info, call); meterIdx >= 0 {
		eff := dataflow.Effect{Sanitize: map[int]dataflow.Kind{}, ArgWrites: map[int]dataflow.Val{}}
		exprs := effectArgExprs(info, call)
		for i, ae := range exprs {
			if i == meterIdx || ae == nil {
				continue
			}
			if mutableExpr(info, ae) && !isMeterExpr(info, ae) {
				eff.Sanitize[i] = dataflow.Pub
				eff.ArgWrites[i] = dataflow.Val{}
			}
		}
		return eff, true
	}
	return dataflow.Effect{}, false
}

// meterEffect classifies one noise.Meter method call.
func meterEffect(name string, args []dataflow.Val) dataflow.Effect {
	if meterDrawMethods[name] {
		return dataflow.Effect{Result: dataflow.Val{K: dataflow.Draw}}
	}
	if dst, ok := meterDstArg[name]; ok {
		eff := dataflow.Effect{
			ArgWrites: map[int]dataflow.Val{dst.idx: {K: dst.kind}},
			Sanitize:  map[int]dataflow.Kind{dst.idx: dst.kind},
		}
		return eff
	}
	if name == "ExpMechBuf" || name == "ExpMechBufPar" {
		// (recv, label, scores, sens, eps, weights): the weights buffer is
		// filled with exp(scores) — an unmetered transform of the scores.
		eff := dataflow.Effect{}
		if len(args) > 5 {
			eff.ArgWrites = map[int]dataflow.Val{5: args[2]}
		}
		return eff
	}
	// Everything else (LaplaceVec, LaplaceMechanism, ExpMech*, Sub*,
	// Charge*, Rand, accessors) returns released or structural values.
	return dataflow.Effect{}
}

// ledgerSinkCommits are the internal/ledger entry points whose arguments
// become durable, tamper-evident state: WAL frames, Merkle leaves, or the
// records behind them — all of which /v1/root and /v1/proof republish.
var ledgerSinkCommits = map[string]bool{
	"AppendRecord": true, // record → canonical leaf encoding
	"EncodeRecord": true,
	"Append":       true, // Tree.Append / Store.Append
	"Submit":       true, // Batcher.Submit
}

// ledgerSinkEffect classifies calls into internal/ledger's commit surface:
// every data argument (the receiver — a tree or batcher — is structural) is
// a ledger sink.
func ledgerSinkEffect(info *types.Info, call *ast.CallExpr, args []dataflow.Val) (dataflow.Effect, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != ledgerPkg || !ledgerSinkCommits[fn.Name()] {
		return dataflow.Effect{}, false
	}
	from := 0
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		from = 1
	}
	// The result (an encoded leaf, a sequence number) inherits the argument
	// taint so a tainted encoding flagged here stays tainted downstream.
	var res dataflow.Val
	for _, a := range args[from:] {
		res = dataflow.Combine(res, a)
	}
	return dataflow.Effect{Result: res, LedgerSinkArgs: argIdxRange(from, len(args))}, true
}

// calleeFunc resolves a call's static callee function object, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isVecType reports whether t is vec.Vector or *vec.Vector.
func isVecType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == vecPkg && obj.Name() == "Vector"
}

// isJSONEncoder reports whether t is *encoding/json.Encoder.
func isJSONEncoder(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "encoding/json" && obj.Name() == "Encoder"
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// isMeterType reports whether t is *noise.Meter.
func isMeterType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == meterapi.PkgPath && obj.Name() == "Meter"
}

// effectArgExprs mirrors the engine's effect index space: receiver first
// for method calls, then arguments.
func effectArgExprs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var exprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				exprs = append(exprs, sel.X)
			}
		}
	}
	return append(exprs, call.Args...)
}

// meterArg returns the effect index of a *noise.Meter argument (or
// receiver), or -1.
func meterArg(info *types.Info, call *ast.CallExpr) int {
	for i, ae := range effectArgExprs(info, call) {
		if isMeterExpr(info, ae) {
			return i
		}
	}
	return -1
}

// isMeterExpr reports whether an expression has type *noise.Meter.
func isMeterExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isMeterType(tv.Type)
}

// responseWriterArg returns the effect index of an http.ResponseWriter
// argument, or -1.
func responseWriterArg(info *types.Info, call *ast.CallExpr, args []dataflow.Val) int {
	exprs := effectArgExprs(info, call)
	for i, ae := range exprs {
		if i >= len(args) || ae == nil {
			continue
		}
		if tv, ok := info.Types[ae]; ok && isResponseWriter(tv.Type) {
			return i
		}
	}
	return -1
}

// mutableExpr reports whether e's type a callee could write through.
func mutableExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// argIdxRange returns [from, n).
func argIdxRange(from, n int) []int {
	var out []int
	for i := from; i < n; i++ {
		out = append(out, i)
	}
	return out
}

var _ = fmt.Sprintf // keep fmt for debug builds
