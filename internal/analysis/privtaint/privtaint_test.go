package privtaint

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestPrivtaintAlgo(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}

func TestPrivtaintServe(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "serve"), "dpbench/internal/serve")
}

func TestPrivtaintLedgerSink(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "ledgersink"), "dpbench/internal/serve")
}
