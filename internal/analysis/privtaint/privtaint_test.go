package privtaint

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestPrivtaintAlgo(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}

func TestPrivtaintServe(t *testing.T) {
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "serve"), "dpbench/internal/serve")
}
