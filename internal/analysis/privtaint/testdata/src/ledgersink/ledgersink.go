// Fixture for privtaint's ledger-sink rules: everything committed to the
// durable budget ledger — records submitted to the batcher, canonical leaf
// encodings, Merkle tree appends — is republished by /v1/root and /v1/proof
// to any caller, so no vec.Vector-derived value may ever reach it.
package serve

import (
	"dpbench/internal/ledger"
	"dpbench/internal/vec"
)

type accountant struct {
	x       *vec.Vector
	batcher *ledger.Batcher
	tree    *ledger.Tree
}

// A record whose Eps field is read out of the private histogram leaks one
// cell of the data into the durable (and publicly provable) spend history.
func (a *accountant) recordCell(key string) {
	_, _ = a.batcher.Submit(ledger.Record{Key: key, Eps: a.x.Data[0]}) // want `private value reaches the durable budget ledger via Submit`
}

// Encoding a private-tainted record builds the canonical leaf bytes that
// Merkle proofs republish verbatim.
func (a *accountant) encodeCell(buf []byte) []byte {
	rec := ledger.Record{Key: "q", Eps: a.x.Data[0]}
	return ledger.AppendRecord(buf, rec) // want `private value reaches the durable budget ledger via ledger\.AppendRecord`
}

// Appending a leaf derived from the raw data bakes it into the tree root.
func (a *accountant) appendCell() {
	leaf := ledger.EncodeRecord(ledger.Record{Eps: a.x.Data[1]}) // want `private value reaches the durable budget ledger via ledger\.EncodeRecord`
	a.tree.Append(leaf)                                          // want `private value reaches the durable budget ledger via Append`
}

// Already-charged request metadata — the key, dataset name, mechanism name,
// and the epsilon the caller was charged — is exactly what the ledger is
// for: no finding.
func (a *accountant) recordCharge(key, dataset, mech string, eps float64) uint64 {
	seq, _ := a.batcher.Submit(ledger.Record{Key: key, Dataset: dataset, Mechanism: mech, Eps: eps})
	a.tree.Append(ledger.EncodeRecord(ledger.Record{Seq: seq, Key: key, Eps: eps}))
	return seq
}
