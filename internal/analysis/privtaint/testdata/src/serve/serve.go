// Fixture for privtaint's serve-side rules: every function is on the
// request path, so HTTP response sinks and branch taint apply everywhere.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
)

type server struct {
	x *vec.Vector
}

// The raw histogram must never reach a response body.
func (s *server) handleRaw(w http.ResponseWriter, r *http.Request) {
	_ = json.NewEncoder(w).Encode(s.x.Data) // want `private value reaches the HTTP response via Encode`
}

// A metered release of the same data is fine.
func (s *server) handleReleased(w http.ResponseWriter, r *http.Request, m *noise.Meter) {
	est := make([]float64, s.x.N())
	m.LaplaceVecInto("cells", est, s.x.Data, 1, 1)
	_ = json.NewEncoder(w).Encode(est)
}

// Shape metadata (dims, domain size) is public by the model.
func (s *server) handleShape(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "dims=%v n=%d", s.x.Dims, s.x.N())
}

// In serve, branch taint applies to every function, not just Execute.
func (s *server) handleConditional(w http.ResponseWriter, r *http.Request) {
	if s.x.Data[0] > 0 { // want `branch condition depends on an unsanitized private value`
		http.Error(w, "hot cell", http.StatusTeapot)
	}
}
