// Fixture for the privtaint analyzer, loaded under the real algo import
// path so the Execute-phase scoping applies. Each plan type exercises one
// source→sink shape; the clean variants are load-bearing too (a false
// positive here fails the suite).
package algo

import (
	"fmt"

	"dpbench/internal/noise"
	"dpbench/internal/vec"
)

// --- source reaches sink: the raw histogram copied straight into out ---

type truthPlan struct{ trueAnswers []float64 }

func newTruth(x *vec.Vector) *truthPlan {
	return &truthPlan{trueAnswers: x.Data}
}

func (p *truthPlan) Execute(m *noise.Meter, out []float64) error {
	copy(out, p.trueAnswers) // want `call to copy writes an unsanitized private value into Execute's output buffer out`
	return m.Err()
}

// --- source reaches sink: element writes, including through an alias ---

type elemPlan struct{ raw []float64 }

func newElem(x *vec.Vector) *elemPlan { return &elemPlan{raw: x.Data} }

func (p *elemPlan) Execute(m *noise.Meter, out []float64) error {
	out[0] = p.raw[0] // want `unsanitized private value written into Execute's output buffer out`
	half := out[:len(out)/2]
	for i := range half {
		half[i] = p.raw[i] // want `unsanitized private value written into Execute's output buffer half`
	}
	return m.Err()
}

// --- sanitized paths: metered draws release the value ---

type cleanPlan struct{ raw []float64 }

func newClean(x *vec.Vector) *cleanPlan { return &cleanPlan{raw: x.Data} }

func (p *cleanPlan) Execute(m *noise.Meter, out []float64) error {
	// Vector draw into the sink buffer: the sanctioned release idiom.
	m.LaplaceVecInto("cells", out, p.raw, 1, 1)
	// Scalar draw combined with the private value: released by definition.
	for i := range out {
		est := p.raw[i] + m.Laplace("refine", 1, 1)
		if est < 0 { // post-noise clamp: branching on a released value is fine
			est = 0
		}
		out[i] = est
	}
	return m.Err()
}

// --- branch taint: data-dependent control flow in the Execute phase ---

type branchPlan struct{ raw []float64 }

func newBranch(x *vec.Vector) *branchPlan { return &branchPlan{raw: x.Data} }

func (p *branchPlan) Execute(m *noise.Meter, out []float64) error {
	if p.raw[0] > 0 { // want `branch condition depends on an unsanitized private value`
		out[0] = m.Laplace("hot", 1, 1)
	}
	for i := range out {
		out[i] = clampPos(p.raw[i]) + m.Laplace("cells", 1, 1) // want `private value passed to clampPos feeds a branch condition inside it`
	}
	return m.Err()
}

// clampPos branches on its argument; passing a private value into it from
// the Execute phase is flagged at the call site.
func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Plan-time data inspection is deliberately out of branch-taint scope: this
// helper is never reachable from an Execute method, and under the repo's
// Plan/Execute contract the structure it selects only leaves through
// Execute's metered output.
func planSplit(x *vec.Vector) int {
	cut := 0
	for i, v := range x.Data {
		if v > 0 { // not flagged: plan-phase structure selection
			cut = i
		}
	}
	return cut
}

// --- error sink: error strings are client-visible output ---

type errPlan struct{ raw []float64 }

func newErr(x *vec.Vector) *errPlan { return &errPlan{raw: x.Data} }

func (p *errPlan) Execute(m *noise.Meter, out []float64) error {
	if len(out) != len(p.raw) { // len is public shape, not contents
		return fmt.Errorf("domain mismatch: first cell %v", p.raw[0]) // want `private value reaches an error constructed by fmt.Errorf`
	}
	m.LaplaceVecInto("cells", out, p.raw, 1, 1)
	return m.Err()
}

// --- //dp:public: the audited side-information escape hatch ---

type leakyScalePlan struct{ scale float64 }

func newLeakyScale(x *vec.Vector) *leakyScalePlan {
	p := &leakyScalePlan{}
	p.scale = x.Scale() // no annotation: the scale stays private
	return p
}

func (p *leakyScalePlan) Execute(m *noise.Meter, out []float64) error {
	out[0] = p.scale // want `unsanitized private value written into Execute's output buffer out`
	return m.Err()
}

type sidePlan struct{ scale float64 }

func newSide(x *vec.Vector) *sidePlan {
	p := &sidePlan{}
	p.scale = x.Scale() //dp:public dataset scale is declared side information
	return p
}

func (p *sidePlan) Execute(m *noise.Meter, out []float64) error {
	out[0] = p.scale // not flagged: audited as public side information
	return m.Err()
}

var (
	_ = newTruth
	_ = newElem
	_ = newClean
	_ = newBranch
	_ = newErr
	_ = newLeakyScale
	_ = newSide
	_ = planSplit
)
