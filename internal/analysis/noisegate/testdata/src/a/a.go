// Fixture for the noisegate analyzer, type-checked under the import path
// dpbench/internal/algo so the scope rule applies.
package algo

import (
	"math"
	"math/rand"

	"dpbench/internal/noise"
)

// Signatures may mention the type: threading an rng to the meter is the
// sanctioned pattern.
func clean(eps float64, rng *rand.Rand) float64 {
	m := noise.NewMeter(eps, rng)
	return m.Laplace("x", 1/eps, eps)
}

// Tie-breaking on the meter's declared zero-cost source is allowed.
func cleanTieBreak(m *noise.Meter) int {
	return m.Rand().Intn(3)
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `direct use of math/rand\.New` `direct use of math/rand\.NewSource`
}

func packageDraw() float64 {
	return rand.Float64() // want `direct use of math/rand\.Float64`
}

func rawDraw(rng *rand.Rand) float64 {
	return rng.ExpFloat64() // want `draw on a raw \*rand\.Rand \(ExpFloat64\)`
}

func rawDrawVar(m *noise.Meter) float64 {
	rng := m.Rand()
	// Even an rng that came from the meter must be drawn at the call site
	// of Rand() so the zero-cost path stays greppable.
	return rng.Float64() // want `draw on a raw \*rand\.Rand \(Float64\)`
}

func handRolled(m *noise.Meter, scale float64) float64 {
	u := 0.5
	_ = u
	return -scale * math.Log(m.Rand().Float64()) // want `hand-rolled noise synthesis: math\.Log`
}

func handRolledExp(rng *rand.Rand) float64 {
	return math.Exp(rng.NormFloat64()) // want `hand-rolled noise synthesis: math\.Exp` `draw on a raw \*rand\.Rand \(NormFloat64\)`
}

// Plain transcendentals over non-random data are fine.
func cleanMath(x float64) float64 {
	return math.Exp(-math.Log(x))
}

func allowedLegacy(rng *rand.Rand) float64 {
	//lint:allow noisegate legacy-sampler fixture: keeps the historical draw sequence
	return rng.Float64()
}

// The raw fast-sampler surface is gated the same way: Meter methods are the
// only sanctioned route, so the version gate and the ledger both see the draw.
func fastBypass(rng *rand.Rand, dst []float64) float64 {
	noise.FastGumbelVecInto(rng, dst) // want `raw fast-sampler call noise\.FastGumbelVecInto`
	return noise.FastLaplace(rng, 1)  // want `raw fast-sampler call noise\.FastLaplace`
}

func fastBypassValue() func(*rand.Rand, float64) int64 {
	return noise.FastGeometric // want `raw fast-sampler call noise\.FastGeometric`
}

// Drawing the same primitives through the meter is the sanctioned pattern.
func cleanFast(m *noise.Meter, dst []float64) bool {
	_ = m.Laplace("x", 1, 0.1)
	return m.ExpMechGumbels("sel", dst, 0.1)
}
