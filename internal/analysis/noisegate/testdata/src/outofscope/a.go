// The same draws that noisegate flags under internal/algo are permitted in
// other packages (no want comments: the analyzer must stay silent here).
package experiments

import (
	"math/rand"

	"dpbench/internal/noise"
)

func seeded() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}

// The fast-sampler gate is also scoped to internal/algo: the noise package's
// own tests and benchmarks call the raw samplers freely.
func fastElsewhere(rng *rand.Rand) float64 {
	return noise.FastLaplace(rng, 2)
}
