// The same draws that noisegate flags under internal/algo are permitted in
// other packages (no want comments: the analyzer must stay silent here).
package experiments

import "math/rand"

func seeded() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}
