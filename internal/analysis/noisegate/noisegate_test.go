package noisegate

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestNoisegate(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}

// TestOutOfScope pins that the gate applies only under internal/algo: the
// same violations under another import path produce no findings (the noise
// package itself must keep its raw draws).
func TestOutOfScope(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "outofscope"), "dpbench/internal/experiments")
}
