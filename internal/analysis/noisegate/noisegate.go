// Package noisegate enforces the metered-randomness invariant inside
// dpbench/internal/algo: every privacy-relevant random draw must flow
// through an accountant-backed noise.Meter, because a draw the accountant
// never sees is a spend the budget audit can never prove. See PR 3's ledger
// design in internal/noise.
//
// Flagged, in non-test files of internal/algo/...:
//
//   - any use of a math/rand or math/rand/v2 package member that is not a
//     type name — rand.New, rand.NewSource, package-level draws;
//   - method calls on a raw *rand.Rand, unless the receiver is literally a
//     noise.Meter.Rand() call, the declared zero-cost tie-breaking path;
//   - math.Log / math.Exp (and Log1p / Expm1) applied to an expression that
//     contains a raw draw: hand-rolled inverse-CDF noise synthesis bypasses
//     both the accountant and the noise package's numerical contracts;
//   - any call of the noise package's raw fast-sampler functions (noise.Fast*):
//     the sanctioned entry points are the Meter methods, which both charge the
//     ledger and dispatch on the meter's SamplerVersion — a direct FastLaplace
//     or FastGumbelVecInto call would draw unmetered AND ignore the version
//     gate that keeps legacy runs bit-identical.
//
// Mentioning the *rand.Rand type in a signature is fine — the Algorithm
// interface threads an rng to the meter constructor — only draws and
// generator construction are gated.
package noisegate

import (
	"go/ast"
	"go/types"
	"strings"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/meterapi"
)

// Analyzer is the noisegate pass.
var Analyzer = &analysis.Analyzer{
	Name: "noisegate",
	Doc:  "privacy-relevant randomness in internal/algo must flow through an accountant-backed noise.Meter",
	Run:  run,
}

const scope = "dpbench/internal/algo"

// noisePkg is the noise package itself, whose raw fast-sampler surface is
// gated behind Meter methods.
const noisePkg = "dpbench/internal/noise"

func randPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
				checkFastSampler(pass, n)
			case *ast.CallExpr:
				checkSynthesis(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector flags non-type references into math/rand, including method
// values and calls on *rand.Rand receivers.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || !randPkg(obj.Pkg().Path()) {
		return
	}
	if _, isType := obj.(*types.TypeName); isType {
		return
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			// A method on *rand.Rand. The one sanctioned receiver is a
			// direct noise.Meter.Rand() call: the meter's declared
			// zero-privacy-cost source for tie-breaking draws.
			if isMeterRandCall(pass.TypesInfo, sel.X) {
				return
			}
			pass.Reportf(sel.Pos(), "draw on a raw *rand.Rand (%s): privacy-relevant randomness must flow through an accountant-backed noise.Meter; for a provably zero-cost draw call it directly on noise.Meter.Rand()", fn.Name())
			return
		}
	}
	pass.Reportf(sel.Pos(), "direct use of %s.%s: privacy-relevant randomness in internal/algo must flow through an accountant-backed noise.Meter", obj.Pkg().Path(), obj.Name())
}

// checkFastSampler flags direct references to the noise package's raw
// fast-sampler functions (noise.Fast*). Mechanism code must draw through the
// Meter methods, which charge the ledger and dispatch on the meter's
// SamplerVersion; Meter methods named Fast-nothing (ExpMechGumbels and
// friends) are the sanctioned fused entry points and are not package
// functions, so they pass.
func checkFastSampler(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != noisePkg {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || !strings.HasPrefix(fn.Name(), "Fast") {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	pass.Reportf(sel.Pos(), "raw fast-sampler call noise.%s: draw through a noise.Meter instead, so the spend is charged and the meter's SamplerVersion (not the call site) decides the stream", fn.Name())
}

// isMeterRandCall reports whether e is a call of noise.Meter.Rand.
func isMeterRandCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := meterapi.MeterMethod(info, call)
	return ok && name == "Rand"
}

// mathSynth is the set of math functions whose combination with a raw draw
// is the classic hand-rolled Laplace/exponential inversion.
var mathSynth = map[string]bool{"Log": true, "Log1p": true, "Exp": true, "Expm1": true}

// checkSynthesis flags math.Log/Exp whose argument contains a randomness
// draw — even one obtained through the otherwise-allowed Meter.Rand() path,
// since feeding it into a transcendental is noise synthesis, not
// tie-breaking.
func checkSynthesis(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math" || !mathSynth[obj.Name()] {
		return
	}
	for _, arg := range call.Args {
		if containsRawDraw(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "hand-rolled noise synthesis: math.%s applied to an expression containing a randomness draw; use the noise package's metered primitives so the accountant sees the spend", obj.Name())
			return
		}
	}
}

// containsRawDraw reports whether the expression tree contains a call of a
// math/rand function or method.
func containsRawDraw(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && randPkg(obj.Pkg().Path()) {
			if _, isType := obj.(*types.TypeName); !isType {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
