// Package meterapi centralizes the analyzers' knowledge of the
// dpbench/internal/noise surface: which methods belong to noise.Meter,
// which of them record ledger spends and where their label argument sits,
// and which open sub-meter scopes.
package meterapi

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// PkgPath is the import path of the metered-noise package.
const PkgPath = "dpbench/internal/noise"

// SpendLabelArg maps every Meter method that takes a ledger label to the
// index of the label argument. Keep in sync with internal/noise/meter.go;
// budgetlabel's analysistest fixtures exercise each class.
var SpendLabelArg = map[string]int{
	"Laplace":              0,
	"LaplacePar":           0,
	"LaplaceVec":           0,
	"LaplaceVecInto":       0,
	"LaplaceMechanism":     0,
	"LaplaceMechanismInto": 0,
	"Geometric":            0,
	"ExpMech":              0,
	"ExpMechPar":           0,
	"ExpMechBuf":           0,
	"ExpMechBufPar":        0,
	"Charge":               0,
	"ChargePar":            0,
	"Sub":                  0,
	"SubEps":               0,
	"SubParEps":            0,
	"ResetSub":             1,
}

// SubMethods are the Meter methods that open a child scope whose result must
// be closed back into the parent.
var SubMethods = map[string]bool{"Sub": true, "SubEps": true, "SubParEps": true}

// MeterMethod reports whether call invokes a method on noise.Meter and, if
// so, the method name.
func MeterMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !isMeter(sig.Recv().Type()) {
		return "", false
	}
	return fn.Name(), true
}

// isMeter reports whether t is noise.Meter or *noise.Meter.
func isMeter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == PkgPath && obj.Name() == "Meter"
}

// ConstString resolves e to a compile-time string constant.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
