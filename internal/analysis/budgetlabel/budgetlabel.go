// Package budgetlabel enforces the declared-spend invariant inside
// dpbench/internal/algo: every ledger label a mechanism passes to a
// noise.Meter spend method must be a compile-time string constant declared
// by that mechanism's CompositionPlan() (wildcard entries like "level*"
// included). The runtime audit (RunAudited, -audit) rejects undeclared
// labels too, but only on the code paths a given trial happens to execute;
// this pass catches label/plan drift on every path, at build time.
//
// Attribution: spends rarely happen inside methods of the mechanism type
// itself — PR 4 moved them into per-mechanism plan and scratch types. The
// pass therefore propagates ownership: a type constructed inside a
// mechanism's methods (or inside a function those methods call, to a
// fixpoint) belongs to that mechanism, and spends in its methods are
// checked against that mechanism's plan. A spend that cannot be attributed
// is checked against the union of every plan in the package, so shared
// helpers stay checkable without false positives.
//
// Two package idioms are resolved instead of rejected:
//
//   - labelTable families: a label built as idxLabel(tbl, i), where tbl is a
//     package-level `labelTable("prefix", n)`, is checked as the family
//     "prefix*" against the plan's wildcard entries (depth-indexed labels
//     like "kd3" are data-dependent, which is exactly what wildcards are
//     for). Resolution follows single-assignment locals, so
//     `label := idxLabel(...)` works too.
//   - label forwarding: a spend whose label is a parameter of the enclosing
//     function is checked at every same-package call site instead, against
//     the caller's plans — shared measurement helpers keep taking `label
//     string` while each constant still gets validated where it is chosen.
package budgetlabel

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"dpbench/internal/analysis"
	"dpbench/internal/analysis/meterapi"
)

// Analyzer is the budgetlabel pass.
var Analyzer = &analysis.Analyzer{
	Name: "budgetlabel",
	Doc:  "ledger labels must be string constants declared in the owning mechanism's CompositionPlan()",
	Run:  run,
}

const scope = "dpbench/internal/algo"

// plan is the statically-extracted label surface of one CompositionPlan.
type plan struct {
	labels    map[string]bool
	wildcards []string // prefixes from entries ending in '*'
	open      bool     // plan built dynamically: allow anything
}

func (p *plan) allows(label string) bool {
	if p.open || p.labels[label] {
		return true
	}
	for _, w := range p.wildcards {
		if strings.HasPrefix(label, w) {
			return true
		}
	}
	return false
}

// allowsFamily reports whether every member of a labelTable family with the
// given prefix is covered: some declared wildcard must prefix the family's
// own prefix (members are prefix+index, so they inherit the match).
func (p *plan) allowsFamily(prefix string) bool {
	if p.open {
		return true
	}
	for _, w := range p.wildcards {
		if strings.HasPrefix(prefix, w) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !strings.HasPrefix(pass.Pkg.Path(), scope) {
		return nil
	}
	plans := collectPlans(pass)
	if len(plans) == 0 {
		return nil
	}
	c := &checker{
		pass:   pass,
		plans:  plans,
		owners: attribute(pass, plans),
		tables: collectTables(pass),
	}
	c.indexCalls()
	for _, fd := range c.funcs {
		c.checkFunc(fd)
	}
	c.checkForwards()
	return nil
}

// checker carries the per-package state shared by the direct and forwarded
// label checks.
type checker struct {
	pass   *analysis.Pass
	plans  map[string]*plan
	owners map[*ast.FuncDecl]map[string]bool
	tables map[types.Object]string // labelTable var -> family prefix

	funcs     []*ast.FuncDecl
	callSites map[*types.Func][]callSite
	forwards  []fwdKey
	forwarded map[fwdKey]bool
}

// callSite is one call expression and the function it appears in.
type callSite struct {
	fn   *ast.FuncDecl
	call *ast.CallExpr
}

// fwdKey identifies one label-forwarding parameter.
type fwdKey struct {
	fn  *types.Func
	idx int
}

// collectTables finds package-level `x = labelTable("prefix", n)` variables
// and records their family prefixes.
func collectTables(pass *analysis.Pass) map[types.Object]string {
	tables := map[types.Object]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						continue
					}
					fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok || fun.Name != "labelTable" {
						continue
					}
					prefix, ok := meterapi.ConstString(pass.TypesInfo, call.Args[0])
					if !ok {
						continue
					}
					if obj := pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
						tables[obj] = prefix
					}
				}
			}
		}
	}
	return tables
}

// indexCalls records every function declaration and, for each package
// function object, the sites that call it.
func (c *checker) indexCalls() {
	c.callSites = map[*types.Func][]callSite{}
	c.forwarded = map[fwdKey]bool{}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.funcs = append(c.funcs, fd)
			}
		}
	}
	for _, fd := range c.funcs {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee = fun
			case *ast.SelectorExpr:
				callee = fun.Sel
			default:
				return true
			}
			if fn, ok := c.pass.TypesInfo.Uses[callee].(*types.Func); ok {
				c.callSites[fn] = append(c.callSites[fn], callSite{fd, call})
			}
			return true
		})
	}
}

// labelRes is the static resolution of one label expression.
type labelRes struct {
	kind  int        // one of the l* constants
	value string     // constant label (lConst) or family prefix (lFamily)
	param *types.Var // the forwarding parameter (lParam)
}

const (
	lDynamic = iota
	lConst
	lFamily
	lParam
)

// resolveLabel statically resolves a label expression inside fd: a string
// constant, a labelTable family, a parameter of fd, or dynamic.
func (c *checker) resolveLabel(fd *ast.FuncDecl, expr ast.Expr, depth int) labelRes {
	if s, ok := meterapi.ConstString(c.pass.TypesInfo, expr); ok {
		return labelRes{kind: lConst, value: s}
	}
	if depth <= 0 {
		return labelRes{}
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		fun, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || fun.Name != "idxLabel" || len(e.Args) == 0 {
			return labelRes{}
		}
		tbl, ok := ast.Unparen(e.Args[0]).(*ast.Ident)
		if !ok {
			return labelRes{}
		}
		if prefix, ok := c.tables[c.pass.TypesInfo.Uses[tbl]]; ok {
			return labelRes{kind: lFamily, value: prefix}
		}
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return labelRes{}
		}
		if _, ok := paramIndex(c.pass.TypesInfo, fd, obj); ok {
			return labelRes{kind: lParam, param: obj}
		}
		if rhs, ok := soleAssignment(c.pass.TypesInfo, fd, obj); ok {
			return c.resolveLabel(fd, rhs, depth-1)
		}
	}
	return labelRes{}
}

// paramIndex returns obj's position in fd's (flattened) parameter list.
func paramIndex(info *types.Info, fd *ast.FuncDecl, obj types.Object) (int, bool) {
	if fd.Type.Params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return idx, true
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return 0, false
}

// soleAssignment returns the unique expression assigned to obj inside fd, or
// false when obj is assigned zero or multiple times (then its value is not
// statically known).
func soleAssignment(info *types.Info, fd *ast.FuncDecl, obj types.Object) (ast.Expr, bool) {
	var rhs ast.Expr
	count := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				ident, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[ident] == obj || info.Uses[ident] == obj {
					count++
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == obj {
					count++
					if i < len(n.Values) {
						rhs = n.Values[i]
					}
				}
			}
		case *ast.UnaryExpr:
			// &obj: the variable may be written through the pointer.
			if n.Op == token.AND {
				if ident, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.Uses[ident] == obj {
					count += 2
				}
			}
		}
		return true
	})
	return rhs, count == 1 && rhs != nil
}

// collectPlans extracts, per mechanism type, the labels its
// CompositionPlan() declares. A plan whose labels cannot be fully resolved
// statically (delegation, computed entries) is marked open.
func collectPlans(pass *analysis.Pass) map[string]*plan {
	plans := map[string]*plan{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "CompositionPlan" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			mech := recvTypeName(fd)
			if mech == "" {
				continue
			}
			p := &plan{labels: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if _, isLit := ast.Unparen(res).(*ast.CompositeLit); !isLit {
							if ident, ok := ast.Unparen(res).(*ast.Ident); !ok || ident.Name != "nil" {
								p.open = true
							}
						}
					}
				case *ast.CompositeLit:
					if isPlanEntry(pass.TypesInfo, n) {
						label, ok := entryLabel(pass.TypesInfo, n)
						if !ok {
							p.open = true
						} else if strings.HasSuffix(label, "*") {
							p.wildcards = append(p.wildcards, strings.TrimSuffix(label, "*"))
						} else {
							p.labels[label] = true
						}
					}
				}
				return true
			})
			plans[mech] = p
		}
	}
	return plans
}

// isPlanEntry reports whether cl is a composite literal of noise.PlanEntry.
func isPlanEntry(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == meterapi.PkgPath && obj.Name() == "PlanEntry"
}

// entryLabel resolves the Label field of a PlanEntry literal.
func entryLabel(info *types.Info, cl *ast.CompositeLit) (string, bool) {
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Label" {
				return meterapi.ConstString(info, kv.Value)
			}
			continue
		}
		// Positional form: Label is the first field.
		if i == 0 {
			return meterapi.ConstString(info, elt)
		}
	}
	return "", false
}

// recvTypeName returns the name of a method's receiver base type.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// attribute computes, for every function declaration, the set of mechanisms
// it works for: methods of a mechanism type belong to it, package-local
// types constructed inside owned code belong to the same mechanisms, owned
// code's same-package callees become owned too, to a fixpoint.
func attribute(pass *analysis.Pass, plans map[string]*plan) map[*ast.FuncDecl]map[string]bool {
	// Index declarations.
	var funcs []*ast.FuncDecl
	byName := map[string]*ast.FuncDecl{} // package-level functions
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
				if fd.Recv == nil {
					byName[fd.Name.Name] = fd
				}
			}
		}
	}
	typeOwners := map[string]map[string]bool{}
	for mech := range plans {
		typeOwners[mech] = map[string]bool{mech: true}
	}
	funcOwners := map[*ast.FuncDecl]map[string]bool{}
	ownersOf := func(fd *ast.FuncDecl) map[string]bool {
		set := map[string]bool{}
		if fd.Recv != nil {
			for m := range typeOwners[recvTypeName(fd)] {
				set[m] = true
			}
		}
		for m := range funcOwners[fd] {
			set[m] = true
		}
		return set
	}
	for changed := true; changed; {
		changed = false
		add := func(dst map[string]bool, src map[string]bool) {
			for m := range src {
				if !dst[m] {
					dst[m] = true
					changed = true
				}
			}
		}
		for _, fd := range funcs {
			owners := ownersOf(fd)
			if len(owners) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					if name, ok := localTypeName(pass, n.Type); ok {
						if typeOwners[name] == nil {
							typeOwners[name] = map[string]bool{}
						}
						add(typeOwners[name], owners)
					}
				case *ast.CallExpr:
					if ident, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if callee, ok := byName[ident.Name]; ok {
							if funcOwners[callee] == nil {
								funcOwners[callee] = map[string]bool{}
							}
							add(funcOwners[callee], owners)
						}
					}
				}
				return true
			})
		}
	}
	out := map[*ast.FuncDecl]map[string]bool{}
	for _, fd := range funcs {
		out[fd] = ownersOf(fd)
	}
	return out
}

// localTypeName resolves a composite literal's type expression to a
// package-local named type.
func localTypeName(pass *analysis.Pass, t ast.Expr) (string, bool) {
	if t == nil {
		return "", false
	}
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	ident, ok := ast.Unparen(t).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[ident]
	if obj == nil || obj.Pkg() == nil || obj.Pkg() != pass.Pkg {
		return "", false
	}
	_, isType := obj.(*types.TypeName)
	return ident.Name, isType
}

// checkFunc validates every spend call in one function body. Constant and
// family labels are checked in place; a label that is a parameter of fd is
// queued for call-site checking instead.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := meterapi.MeterMethod(c.pass.TypesInfo, call)
		if !ok {
			return true
		}
		idx, ok := meterapi.SpendLabelArg[name]
		if !ok || idx >= len(call.Args) {
			return true
		}
		labelArg := call.Args[idx]
		switch res := c.resolveLabel(fd, labelArg, 4); res.kind {
		case lConst:
			c.checkLabel(labelArg.Pos(), res.value, false, c.owners[fd])
		case lFamily:
			c.checkLabel(labelArg.Pos(), res.value, true, c.owners[fd])
		case lParam:
			// Forward only through unexported helpers: an exported
			// function can be called from outside the package, where no
			// call-site check runs.
			if fd.Name.IsExported() {
				c.pass.Reportf(labelArg.Pos(), "ledger label passed to Meter.%s must be a string constant so the spend can be checked against the CompositionPlan at build time (%s is exported, so its call sites cannot all be checked)", name, fd.Name.Name)
			} else {
				c.queueForward(fd, res.param)
			}
		default:
			c.pass.Reportf(labelArg.Pos(), "ledger label passed to Meter.%s must be a string constant so the spend can be checked against the CompositionPlan at build time", name)
		}
		return true
	})
}

// queueForward marks one parameter of fd as label-forwarding, scheduling its
// call sites for checking.
func (c *checker) queueForward(fd *ast.FuncDecl, param *types.Var) {
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	idx, ok := paramIndex(c.pass.TypesInfo, fd, param)
	if !ok {
		return
	}
	key := fwdKey{fn, idx}
	if !c.forwarded[key] {
		c.forwarded[key] = true
		c.forwards = append(c.forwards, key)
	}
}

// checkForwards drains the forwarding worklist: for every label-forwarding
// parameter, each call site's argument is resolved in the caller's context
// and checked against the caller's plans. A caller that forwards its own
// parameter joins the worklist, so chains of helpers resolve transitively.
func (c *checker) checkForwards() {
	for i := 0; i < len(c.forwards); i++ {
		key := c.forwards[i]
		for _, site := range c.callSites[key.fn] {
			if key.idx >= len(site.call.Args) {
				continue
			}
			arg := site.call.Args[key.idx]
			switch res := c.resolveLabel(site.fn, arg, 4); res.kind {
			case lConst:
				c.checkLabel(arg.Pos(), res.value, false, c.owners[site.fn])
			case lFamily:
				c.checkLabel(arg.Pos(), res.value, true, c.owners[site.fn])
			case lParam:
				if site.fn.Name.IsExported() {
					c.pass.Reportf(arg.Pos(), "ledger label forwarded to a Meter spend inside %s must be a string constant so the spend can be checked against the CompositionPlan at build time", key.fn.Name())
				} else {
					c.queueForward(site.fn, res.param)
				}
			default:
				c.pass.Reportf(arg.Pos(), "ledger label forwarded to a Meter spend inside %s must be a string constant so the spend can be checked against the CompositionPlan at build time", key.fn.Name())
			}
		}
	}
}

// checkLabel validates one resolved label (or labelTable family) against the
// owning mechanisms' plans, falling back to the package union when unowned.
func (c *checker) checkLabel(pos token.Pos, label string, family bool, owners map[string]bool) {
	candidates := owners
	if len(candidates) == 0 {
		candidates = map[string]bool{}
		for mech := range c.plans {
			candidates[mech] = true
		}
	}
	for mech := range candidates {
		p, ok := c.plans[mech]
		if !ok {
			continue
		}
		if family && p.allowsFamily(label) {
			return
		}
		if !family && p.allows(label) {
			return
		}
	}
	names := make([]string, 0, len(candidates))
	for mech := range candidates {
		if _, ok := c.plans[mech]; ok {
			names = append(names, mech)
		}
	}
	sort.Strings(names)
	what := "label " + strconv.Quote(label)
	if family {
		what = "label family " + strconv.Quote(label+"*") + " (from labelTable)"
	}
	switch {
	case len(owners) == 0 || len(names) == 0:
		c.pass.Reportf(pos, "%s is not declared in any CompositionPlan in this package: every ledger spend must be covered by its mechanism's declared composition plan", what)
	case len(names) == 1:
		c.pass.Reportf(pos, "%s is not declared in %s's CompositionPlan: every ledger spend must be covered by its mechanism's declared composition plan", what, names[0])
	default:
		c.pass.Reportf(pos, "%s is not declared in the CompositionPlan of any owning mechanism (%s): every ledger spend must be covered by its mechanism's declared composition plan", what, strings.Join(names, ", "))
	}
}
