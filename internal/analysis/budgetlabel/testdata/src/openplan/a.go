// A dynamically-built CompositionPlan opts its mechanism out of the static
// label check (the runtime audit still covers it); no want comments here.
package algo

import "dpbench/internal/noise"

// DynMech builds its plan through a helper, so budgetlabel marks it open.
type DynMech struct{}

// CompositionPlan delegates, which the static pass cannot see through.
func (d *DynMech) CompositionPlan() noise.Plan { return d.buildPlan() }

func (d *DynMech) buildPlan() noise.Plan {
	return noise.Plan{{Label: "computed", Kind: noise.Sequential}}
}

// RunMeter spends under a label only the dynamic plan declares.
func (d *DynMech) RunMeter(m *noise.Meter) {
	m.Laplace("computed", 1, 1)
	m.Laplace("anything-goes", 1, 1)
}
