// Fixture for the budgetlabel analyzer, type-checked under the import path
// dpbench/internal/algo so the scope rule applies.
package algo

import "dpbench/internal/noise"

// GoodMech declares a plain label and a wildcard level family.
type GoodMech struct{}

// CompositionPlan declares the labels GoodMech may spend under.
func (g *GoodMech) CompositionPlan() noise.Plan {
	return noise.Plan{
		{Label: "scale", Kind: noise.Sequential},
		{Label: "level*", Kind: noise.Parallel},
	}
}

// Plan hands a trial off to a helper type; constructing it here makes
// goodPlan (and everything it constructs or calls) belong to GoodMech.
func (g *GoodMech) Plan() any { return &goodPlan{} }

// RunMeter spends directly from a mechanism method.
func (g *GoodMech) RunMeter(m *noise.Meter) {
	m.Laplace("scale", 1, 0.5)     // declared: clean
	m.LaplacePar("level3", 1, 0.5) // wildcard match: clean
	m.Charge("rogue", 0.5)         // want `label "rogue" is not declared in GoodMech's CompositionPlan`
}

// OtherMech exists so a label declared in a *different* mechanism's plan is
// still a finding for code owned by GoodMech.
type OtherMech struct{}

// CompositionPlan declares OtherMech's only label.
func (o *OtherMech) CompositionPlan() noise.Plan {
	return noise.Plan{{Label: "other-only", Kind: noise.Sequential}}
}

type goodPlan struct{}

// Execute spends from the plan type one attribution hop away from GoodMech.
func (p *goodPlan) Execute(m *noise.Meter) {
	m.Laplace("scale", 1, 0.25) // owned by GoodMech via Plan(): clean
	sub := m.SubEps("level1", 0.25)
	sub.Close()
	m.Laplace("other-only", 1, 0.5) // want `label "other-only" is not declared in GoodMech's CompositionPlan`
}

// scratch is constructed inside newScratch, which goodPlan calls: two hops,
// still owned by GoodMech.
type scratch struct{}

func newScratch() *scratch { return &scratch{} }

// Prepare links goodPlan to newScratch for the attribution fixpoint.
func (p *goodPlan) Prepare() *scratch { return newScratch() }

// Spend exercises the transitive ownership chain.
func (s *scratch) Spend(m *noise.Meter) {
	m.Laplace("scale", 1, 1) // owned transitively: clean
	m.Laplace("stray", 1, 1) // want `label "stray" is not declared in GoodMech's CompositionPlan`
}

// helper is never called from owned code, so it is checked against the
// union of plans: "other-only" passes here, an unknown label does not.
func helper(m *noise.Meter) {
	m.Laplace("other-only", 1, 1) // union fallback: clean
	m.Charge("nowhere", 1)        // want `label "nowhere" is not declared in any CompositionPlan in this package`
}

// dynamicLabel must be rejected outright: the plan check cannot be static
// if the label is not.
func dynamicLabel(m *noise.Meter, labels []string, i int) {
	m.Laplace(labels[i], 1, 1) // want `must be a string constant`
}

// allowedDynamic shows the audited escape hatch. The computed label below
// defeats both constant and forwarding resolution.
func allowedDynamic(m *noise.Meter, prefix string) {
	//lint:allow budgetlabel label set is validated by the runtime audit in this test-only path
	m.Laplace(prefix+"x", 1, 1)
}

// Label tables: the depth-indexed wildcard idiom from internal/algo.
var (
	lvlLabels = labelTable("level", 8)
	badLabels = labelTable("bad", 4)
)

func labelTable(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + string(rune('0'+i))
	}
	return out
}

func idxLabel(table []string, i int) string {
	if i >= 0 && i < len(table) {
		return table[i]
	}
	return table[len(table)-1]
}

// Families resolve through idxLabel, including via a single-assignment
// local, and check against the plan's wildcards.
func (g *GoodMech) PerLevel(m *noise.Meter, depth int) {
	m.LaplacePar(idxLabel(lvlLabels, depth), 1, 0.5) // covered by "level*": clean
	lab := idxLabel(lvlLabels, depth+1)
	m.LaplacePar(lab, 1, 0.5)                 // same, via a local: clean
	m.Charge(idxLabel(badLabels, depth), 0.5) // want `label family "bad\*" \(from labelTable\) is not declared in GoodMech's CompositionPlan`
}

// spendVia forwards its label parameter to a spend: the check moves to the
// call sites, in each caller's own plan context.
func spendVia(m *noise.Meter, label string) {
	m.Laplace(label, 1, 0.5)
}

func (g *GoodMech) Forwarding(m *noise.Meter, dyn string) {
	spendVia(m, "scale")  // declared at the call site: clean
	spendVia(m, "rogue2") // want `label "rogue2" is not declared in GoodMech's CompositionPlan`
	spendVia(m, dyn)      // want `ledger label forwarded to a Meter spend inside spendVia must be a string constant`
}

// relayVia forwards through two hops; the constant is still checked where
// it is chosen.
func relayVia(m *noise.Meter, label string) {
	spendVia(m, label)
}

func (g *GoodMech) DoubleForward(m *noise.Meter) {
	relayVia(m, "scale")  // clean through two hops
	relayVia(m, "rogue3") // want `label "rogue3" is not declared in GoodMech's CompositionPlan`
}
