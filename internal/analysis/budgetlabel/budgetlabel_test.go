package budgetlabel

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestBudgetLabel(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}

// TestOpenPlan pins the conservative path: a mechanism whose plan is built
// dynamically cannot be checked statically, so its spends are not flagged.
func TestOpenPlan(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "openplan"), "dpbench/internal/algo")
}
