// Package epsflow verifies each mechanism's epsilon budget symbolically at
// compile time. For every Plan/Execute pair it runs a symbolic abstract
// interpreter over the bodies, tracking every meter charge as a linear
// expression in the declared budget eps, joining over branches, scaling
// loop footprints by symbolic trip counts, and deduplicating parallel
// composition the way the runtime accountant does. The invariant proved is
// the one `-audit` checks per run, promoted to every path at once:
//
//	on every non-exempt path through Execute, the total charged into the
//	meter is exactly eps — the budget Plan was handed.
//
// Exempt paths are the ones the runtime audit also skips: a poisoned meter
// (a draw already failed) or a provably non-nil returned error. Anything
// else that deviates is a finding: over-spend, under-spend (paths that
// silently waste budget), or branch-dependent spend.
//
// Structure-dependent loops and recursion that no abstract trip count can
// close are handled by checked `//dp:spends [par] <expr>` annotations —
// declared, never trusted (see spends.go for the grammar and the
// verification rules).
//
// The analyzer complements `-audit`: the audit proves the one path a run
// took; epsflow proves all the paths a run could take, including the error
// and early-exit paths no benchmark exercises.
package epsflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"dpbench/internal/analysis"
)

// Analyzer is the epsflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "epsflow",
	Doc:  "every path through a mechanism's Plan/Execute must charge exactly the declared epsilon (symbolic budget verification)",
	Run:  run,
}

// pathBudget bounds the symbolic fork count per verification. Exhausting it
// is a "cannot verify" finding, not silence.
const pathBudget = 8192

// maxMechFindings caps the reports from one mechanism: past a handful, the
// root cause is almost always a single modeling gap repeated per path.
const maxMechFindings = 8

func run(pass *analysis.Pass) error {
	vr := &verifier{
		pass:     pass,
		at:       newAtoms(),
		decls:    map[types.Object]*ast.FuncDecl{},
		touches:  map[types.Object]bool{},
		families: map[types.Object]value{},
		spendFn:  map[types.Object]*spendAnno{},
		spendFor: map[ast.Stmt]*spendAnno{},
		epsID:    -1,
		reported: map[string]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					vr.decls[obj] = fd
				}
			}
		}
	}
	vr.collectSpends()
	vr.buildFamilies()
	vr.buildTouches()

	// File order keeps findings deterministic.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if anno := vr.spendFn[obj]; anno != nil {
				vr.epsID = -1
				vr.verifyAnnotatedFn(obj, fd, anno)
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if name, ok := mechanismPlan(pass.TypesInfo, fd); ok {
					vr.verifyMechanism(name, fd)
				}
			}
		}
	}
	return nil
}

// buildFamilies evaluates the package-var label-table idiom
// (`var splitLabels = labelTable("split", 64)`) so family values resolve
// outside any frame.
func (vr *verifier) buildFamilies() {
	for _, f := range vr.pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					call, ok := unparen(vs.Values[i]).(*ast.CallExpr)
					if !ok || len(call.Args) != 2 {
						continue
					}
					callee := vr.calleeObj(call)
					if callee == nil || !vr.isLocalIntrinsic(callee, "labelTable") {
						continue
					}
					prefix, ok1 := constString(vr.pass.TypesInfo, call.Args[0])
					n, ok2 := constInt(vr.pass.TypesInfo, call.Args[1])
					def := vr.pass.TypesInfo.Defs[name]
					if ok1 && ok2 && def != nil {
						vr.families[def] = labelsVal(prefix, n)
					}
				}
			}
		}
	}
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

func constInt(info *types.Info, e ast.Expr) (int, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if n, ok := constant.Int64Val(tv.Value); ok {
			return int(n), true
		}
	}
	return 0, false
}

// buildTouches closes the "charges a meter" property over the local call
// graph, so loop bodies that charge only through helpers are recognized.
func (vr *verifier) buildTouches() {
	for changed := true; changed; {
		changed = false
		for obj, decl := range vr.decls {
			if vr.touches[obj] {
				continue
			}
			if vr.touchesNode(decl.Body) {
				vr.touches[obj] = true
				changed = true
			}
		}
	}
}

// mechanismPlan recognizes the mechanism entry-point shape: a method named
// Plan with exactly one float64 parameter (the budget; the data and workload
// ride along untyped for the symbolic run) returning (plan, error).
func mechanismPlan(info *types.Info, fd *ast.FuncDecl) (string, bool) {
	if fd.Name.Name != "Plan" || fd.Recv == nil || fd.Body == nil {
		return "", false
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 2 || !isErrorType(sig.Results().At(1).Type()) {
		return "", false
	}
	floats := 0
	for i := 0; i < sig.Params().Len(); i++ {
		if isFloatType(sig.Params().At(i).Type()) {
			floats++
		}
	}
	if floats != 1 {
		return "", false
	}
	tn := namedStruct(sig.Recv().Type())
	if tn == nil {
		return "", false
	}
	return tn.Name(), true
}

// verifyMechanism symbolically executes one Plan and, for each feasible plan
// it can produce, the paired Execute, checking every non-exempt path's total
// charge against the declared eps.
func (vr *verifier) verifyMechanism(name string, planDecl *ast.FuncDecl) {
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(abortError)
			if !ok {
				panic(r)
			}
			pos := ae.pos
			if pos == token.NoPos {
				pos = planDecl.Pos()
			}
			vr.pass.Reportf(pos, "cannot verify %s: %s", name, ae.msg)
		}
	}()
	vr.budget = pathBudget
	vr.depth = 0
	vr.inlining = map[*ast.FuncDecl]bool{}
	vr.mech = name
	vr.epsID = vr.at.fresh("eps", false)

	st := &state{cons: newConstraints(), meters: map[string]*meterState{}, memo: map[string]value{}}
	st.cons.addLower(vr.epsID, 0, true, false)
	fr := vr.newFrame(planDecl, func(obj types.Object) (value, bool) {
		if isFloatType(obj.Type()) {
			return numVal(ratAtom(vr.epsID)), true
		}
		return value{}, false
	}, st)
	st.frames = []*frame{fr}

	findings := 0
	for _, o := range vr.block(planDecl.Body.List, st) {
		if o.ctl != ctlReturn || vr.exemptOutcome(o) {
			continue
		}
		if len(o.results) == 0 || o.results[0].kind != vStruct || o.results[0].typ == nil {
			vr.report(o.retPos, "%s.Plan returns a plan epsflow cannot pair with its Execute", name)
			continue
		}
		exDecl := vr.methodDecl(o.results[0].typ, "Execute")
		if exDecl == nil || exDecl.Body == nil {
			vr.report(o.retPos, "%s.Plan returns %s, which has no Execute method to verify", name, o.results[0].typ.Name())
			continue
		}
		vr.runExecute(name, exDecl, o.results[0], o.st, &findings)
		if findings >= maxMechFindings {
			return
		}
	}
}

// runExecute interprets one Execute body against a concrete symbolic plan
// value, with a fresh root meter funded by the declared eps.
func (vr *verifier) runExecute(name string, exDecl *ast.FuncDecl, plan value, st *state, findings *int) {
	es := st.clone()
	es.frames = nil
	rootKey := ""
	fr := vr.newFrame(exDecl, func(obj types.Object) (value, bool) {
		if isMeterType(obj.Type()) && rootKey == "" {
			rootKey = vr.freshStem("meter:" + name)
			es.setMeter(rootKey, newMeterState(ratAtom(vr.epsID), true))
			return value{kind: vMeter, meter: rootKey, bAtom: -1}, true
		}
		return value{}, false
	}, es)
	if exDecl.Recv != nil && len(exDecl.Recv.List) == 1 && len(exDecl.Recv.List[0].Names) == 1 {
		if obj := vr.pass.TypesInfo.Defs[exDecl.Recv.List[0].Names[0]]; obj != nil {
			fr.vars[obj] = plan
		}
	}
	if rootKey == "" {
		vr.report(exDecl, "%s's Execute takes no meter; its spend cannot be verified", name)
		*findings++
		return
	}
	es.frames = []*frame{fr}

	eps := ratAtom(vr.epsID)
	for _, o := range vr.block(exDecl.Body.List, es) {
		if vr.exemptOutcome(o) {
			continue
		}
		at := o.retPos
		if at == nil {
			at = ast.Node(exDecl)
		}
		for _, key := range o.st.mOrder {
			ms := o.st.meters[key]
			if !ms.isRoot && !ms.closed && !ms.total().isZero() {
				vr.report(at, "%s: sub-meter %q is never closed on this path; its spend never reaches the parent or the audit", name, ms.label)
				*findings++
			}
		}
		root, ok := o.st.meters[rootKey]
		if !ok {
			continue
		}
		total := ratAdd(root.total(), vr.consumeAnnEvents(o.st, rootKey))
		cs := o.st.cons
		diff := cs.substPoints(ratSub(total, eps), vr.at)
		if diff.isZero() {
			continue
		}
		*findings++
		tr := cs.substPoints(total, vr.at).render(vr.at)
		switch {
		case cs.cmpZero(diff, vr.at, ">") == triTrue:
			vr.report(at, "%s over-spends: this path charges %s of a declared budget eps", name, tr)
		case cs.cmpZero(diff, vr.at, "<") == triTrue:
			vr.report(at, "%s under-spends: this path charges only %s of a declared budget eps", name, tr)
		default:
			vr.report(at, "%s: this path charges %s, which epsflow cannot prove equal to the declared budget eps", name, tr)
		}
		if *findings >= maxMechFindings {
			return
		}
	}
}

// newFrame binds a function's receiver-less parameters and named results:
// special gives selected parameters their values (the budget, the meter);
// everything else is a fresh typed unknown, with integer parameters seeded
// nonnegative (every count in budget code is).
func (vr *verifier) newFrame(decl *ast.FuncDecl, special func(types.Object) (value, bool), st *state) *frame {
	fr := &frame{fn: decl, vars: map[types.Object]value{}}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := vr.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if v, ok := special(obj); ok {
				fr.vars[obj] = v
				continue
			}
			v := vr.freshTyped(obj.Type(), obj.Name())
			if isIntType(obj.Type()) && v.kind == vNum {
				if id, _, _, ok := v.r.linearAtom(); ok {
					st.cons.addLower(id, 0, false, true)
				}
			}
			fr.vars[obj] = v
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := vr.pass.TypesInfo.Defs[name]; obj != nil {
					fr.results = append(fr.results, obj)
					fr.vars[obj] = vr.zeroValue(obj.Type())
				}
			}
		}
	}
	return fr
}
