package epsflow

// //dp:spends annotations close the two gaps a loop-free abstract
// interpretation cannot: structure-dependent loops whose trip count depends
// on the data (DAWA's dyadic candidate walk) and recursive builders
// (HybridTree's kd split). The annotation is never trusted: an annotated
// loop's declared total is cross-checked against the loop's own symbolic
// per-iteration footprint, and an annotated function is verified inductively
// — its body, with recursive calls replaced by their declared spends, must
// charge exactly the declared amount on every non-exempt path.
//
// Grammar:
//
//	//dp:spends [par] <expr>
//
// where <expr> is a Go expression over the function's parameters and
// receiver fields (loop annotations instead see the variables in scope at
// the loop): identifiers, single-level selectors (p.eps1), int/float
// literals, float64()/int() conversions, unary minus, and + - * / with
// parentheses. "par" declares that the function's charges form parallel
// scopes: two calls with the same declared amount count once (sibling
// recursive calls over disjoint regions), mirroring parallel composition.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"math/big"
	"strconv"
	"strings"
)

// spendAnno is one parsed //dp:spends annotation.
type spendAnno struct {
	expr ast.Expr // nil when malformed (reported at collection)
	par  bool
	raw  string
	pos  token.Pos
}

// parseSpend recognizes a //dp:spends comment. The second result reports
// whether the comment is a spend annotation at all; a nil anno with true
// means it is malformed.
func parseSpend(c *ast.Comment) (*spendAnno, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(strings.TrimSpace(text), "dp:spends") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "dp:spends"))
	par := false
	if rest == "par" || strings.HasPrefix(rest, "par ") {
		par = true
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "par"))
	}
	if rest == "" {
		return nil, true
	}
	expr, err := parser.ParseExpr(rest)
	if err != nil {
		return nil, true
	}
	return &spendAnno{expr: expr, par: par, raw: rest, pos: c.Pos()}, true
}

// collectSpends scans the package's comments, attaching each //dp:spends to
// its function declaration or to the loop on the following line. Any other
// placement (or a malformed expression) is a finding: an annotation that
// silently binds to nothing would be a verification hole.
func (vr *verifier) collectSpends() {
	fset := vr.pass.Fset
	for _, f := range vr.pass.Files {
		loopAt := map[int]ast.Stmt{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loopAt[fset.Position(n.Pos()).Line] = n
			case *ast.RangeStmt:
				loopAt[fset.Position(n.Pos()).Line] = n
			}
			return true
		})
		funcDoc := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDoc[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				anno, isSpend := parseSpend(c)
				if !isSpend {
					continue
				}
				if anno == nil {
					vr.report(c, "malformed //dp:spends annotation: want //dp:spends [par] <expr>")
					continue
				}
				if fd := funcDoc[cg]; fd != nil {
					if obj := vr.pass.TypesInfo.Defs[fd.Name]; obj != nil {
						vr.spendFn[obj] = anno
						continue
					}
				}
				if s, ok := loopAt[fset.Position(cg.End()).Line+1]; ok {
					vr.spendFor[s] = anno
					continue
				}
				vr.report(c, "//dp:spends must annotate a function declaration or the loop on the next line")
			}
		}
	}
}

// evalSpendExpr evaluates an annotation expression in a name environment.
// The expression tree comes from parser.ParseExpr, so it carries no type
// information; resolution is purely by name.
func (vr *verifier) evalSpendExpr(e ast.Expr, env map[string]value, st *state) (rat, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return vr.evalSpendExpr(e.X, env, st)
	case *ast.BasicLit:
		if e.Kind != token.INT && e.Kind != token.FLOAT {
			return ratZero(), false
		}
		r := new(big.Rat)
		if _, ok := r.SetString(e.Value); !ok {
			return ratZero(), false
		}
		return ratFromPoly(polyConst(r)), true
	case *ast.Ident:
		if v, ok := env[e.Name]; ok && v.kind == vNum {
			return v.r, true
		}
		return ratZero(), false
	case *ast.SelectorExpr:
		id, ok := e.X.(*ast.Ident)
		if !ok {
			return ratZero(), false
		}
		base, ok := env[id.Name]
		if !ok || base.kind != vStruct {
			return ratZero(), false
		}
		if v, ok := base.fields[e.Sel.Name]; ok {
			if v.kind != vNum {
				return ratZero(), false
			}
			return v.r, true
		}
		if base.typ == nil {
			return ratZero(), false
		}
		stru, ok := base.typ.Type().Underlying().(*types.Struct)
		if !ok {
			return ratZero(), false
		}
		for i := 0; i < stru.NumFields(); i++ {
			if f := stru.Field(i); f.Name() == e.Sel.Name {
				var v value
				if base.lazyStem != "" {
					v = vr.lazyField(base.lazyStem, f.Name(), f.Type())
				} else {
					// Composite-built struct with the field unset: in Go an
					// omitted composite field is the zero value, same as
					// readField's fallback.
					v = vr.zeroValue(f.Type())
				}
				if v.kind != vNum {
					return ratZero(), false
				}
				return v.r, true
			}
		}
		return ratZero(), false
	case *ast.UnaryExpr:
		if e.Op != token.SUB {
			return ratZero(), false
		}
		r, ok := vr.evalSpendExpr(e.X, env, st)
		return ratNeg(r), ok
	case *ast.BinaryExpr:
		x, ok1 := vr.evalSpendExpr(e.X, env, st)
		y, ok2 := vr.evalSpendExpr(e.Y, env, st)
		if !ok1 || !ok2 {
			return ratZero(), false
		}
		switch e.Op {
		case token.ADD:
			return ratAdd(x, y), true
		case token.SUB:
			return ratSub(x, y), true
		case token.MUL:
			return ratMul(x, y), true
		case token.QUO:
			return ratDiv(x, y)
		}
		return ratZero(), false
	case *ast.CallExpr:
		// Numeric conversions are transparent in annotation expressions.
		if id, ok := e.Fun.(*ast.Ident); ok && (id.Name == "float64" || id.Name == "int") && len(e.Args) == 1 {
			return vr.evalSpendExpr(e.Args[0], env, st)
		}
	}
	return ratZero(), false
}

// spendEnvAt builds the annotation environment for a loop site: everything
// visible in the innermost frame, by name.
func spendEnvAt(st *state) map[string]value {
	env := map[string]value{}
	for obj, v := range st.top().vars {
		env[obj.Name()] = v
	}
	return env
}

// chargeGuard recognizes `if x > 0 { m.Charge(label, x) }` (any spend
// method, amount syntactically equal to the guard's subject). See the
// comment at the call site in stmt for why the guard is dropped.
func (vr *verifier) chargeGuard(s *ast.IfStmt) bool {
	if s.Else != nil || s.Init != nil || len(s.Body.List) != 1 {
		return false
	}
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var amt ast.Expr
	switch {
	case cmp.Op == token.GTR && isZeroLit(cmp.Y):
		amt = cmp.X
	case cmp.Op == token.LSS && isZeroLit(cmp.X):
		amt = cmp.Y
	default:
		return false
	}
	es, ok := s.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := meterMethodName(vr.pass.TypesInfo, call)
	if !ok {
		return false
	}
	sig, ok := spendOps[name]
	if !ok || sig.epsArg >= len(call.Args) {
		return false
	}
	return types.ExprString(call.Args[sig.epsArg]) == types.ExprString(amt)
}

// collapseClamp recognizes and applies the charge-free clamp idiom
//
//	if <cond> { v = <expr>; ... }
//
// no else, no init, the body nothing but plain assignments (or ++/--) to
// local numeric variables whose current values are epsilon-free. Neither
// arm charges, and the arms differ only in values the budget never sees,
// so instead of forking the path the assigned variables are forgotten
// (fresh unknowns) and a single state falls through. Grid-style code
// clamps per cell; without this rule those forks multiply into a path
// explosion. The eps-free check is on the variable's current value: a
// clamp that overwrites part of the tracked budget arithmetic still forks
// so no eps-linearity is lost.
//
// For an integer variable the forgotten value is re-seeded with a lower
// bound when one is provable across both arms — from the negated
// condition on the skip arm (`if v < 0 { ... }` leaves v >= 0) and from
// the assigned value on the taken arm — because integer lower bounds are
// what trip counts and point collapses (kd >= 0, kd <= 1, kd != 0 means
// kd == 1) are built from.
func (vr *verifier) collapseClamp(s *ast.IfStmt, st *state) bool {
	if s.Init != nil || s.Else != nil || vr.touchesNode(s) {
		return false
	}
	type clamp struct {
		obj types.Object
		rhs ast.Expr // nil for ++/--/op-assign: arm value unknown
	}
	var clamps []clamp
	for _, bs := range s.Body.List {
		switch bs := bs.(type) {
		case *ast.AssignStmt:
			if bs.Tok == token.DEFINE || len(bs.Lhs) != len(bs.Rhs) {
				return false
			}
			for i, lhs := range bs.Lhs {
				obj, ok := vr.clampTarget(lhs, st)
				if !ok {
					return false
				}
				rhs := bs.Rhs[i]
				if bs.Tok != token.ASSIGN {
					rhs = nil
				}
				clamps = append(clamps, clamp{obj: obj, rhs: rhs})
			}
		case *ast.IncDecStmt:
			obj, ok := vr.clampTarget(bs.X, st)
			if !ok {
				return false
			}
			clamps = append(clamps, clamp{obj: obj})
		default:
			return false
		}
	}
	if len(clamps) == 0 {
		return false
	}
	for _, c := range clamps {
		fresh := vr.freshTyped(c.obj.Type(), c.obj.Name())
		if isIntType(c.obj.Type()) && fresh.kind == vNum {
			if lo, ok := vr.clampLower(s, c.obj, c.rhs, st); ok && lo >= 0 {
				if id, _, _, ok2 := fresh.r.linearAtom(); ok2 {
					st.cons.addLower(id, float64(lo), false, true)
				}
			}
		}
		st.assign(c.obj, fresh)
	}
	return true
}

// clampTarget resolves a clamp body lvalue: a named local whose current
// value is a budget-free number.
func (vr *verifier) clampTarget(e ast.Expr, st *state) (types.Object, bool) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	obj := vr.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = vr.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil, false
	}
	v, ok := st.lookup(obj)
	if !ok || v.kind != vNum || v.r.hasAtom(vr.epsID) {
		return nil, false
	}
	return obj, true
}

// clampLower derives a lower bound holding on both arms of a collapsed
// integer clamp: the skip arm's bound comes from the negated condition
// (v < C false means v >= C) or from the variable's provable current
// bound; the taken arm's from the assigned expression.
func (vr *verifier) clampLower(s *ast.IfStmt, obj types.Object, rhs ast.Expr, st *state) (int, bool) {
	skip, ok := vr.clampCondLower(s.Cond, obj)
	if !ok {
		if v, found := st.lookup(obj); found && v.kind == vNum {
			skip, ok = vr.provedLower(v.r, st)
		}
		if !ok {
			return 0, false
		}
	}
	if rhs == nil {
		return 0, false
	}
	taken, ok := vr.clampArmLower(rhs, st)
	if !ok {
		return 0, false
	}
	if taken < skip {
		return taken, true
	}
	return skip, true
}

// clampCondLower reads the skip-arm bound off a `v < C` / `v <= C` guard.
func (vr *verifier) clampCondLower(cond ast.Expr, obj types.Object) (int, bool) {
	cmp, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	id, ok := unparen(cmp.X).(*ast.Ident)
	if !ok || vr.pass.TypesInfo.Uses[id] != obj {
		return 0, false
	}
	c, ok := litInt(cmp.Y)
	if !ok {
		return 0, false
	}
	switch cmp.Op {
	case token.LSS:
		return c, true
	case token.LEQ:
		return c + 1, true
	}
	return 0, false
}

// clampArmLower bounds the value a clamp arm assigns: an int literal is
// itself, a variable contributes its provable bound.
func (vr *verifier) clampArmLower(rhs ast.Expr, st *state) (int, bool) {
	if c, ok := litInt(rhs); ok {
		return c, true
	}
	if sizeQuery(unparen(rhs)) {
		// A dimension getter memoizes without forking, so it is safe to
		// evaluate while deciding whether to collapse.
		v := vr.memoValue(unparen(rhs), st)
		if v.kind == vNum {
			return vr.provedLower(v.r, st)
		}
		return 0, false
	}
	id, ok := unparen(rhs).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := vr.pass.TypesInfo.Uses[id]
	if obj == nil {
		return 0, false
	}
	v, ok := st.lookup(obj)
	if !ok || v.kind != vNum {
		return 0, false
	}
	return vr.provedLower(v.r, st)
}

// provedLower returns the strongest of {1, 0} provable as a lower bound.
func (vr *verifier) provedLower(r rat, st *state) (int, bool) {
	rs := st.cons.substPoints(r, vr.at)
	if st.cons.cmpZero(ratSub(rs, ratFloat(1)), vr.at, ">=") == triTrue {
		return 1, true
	}
	if st.cons.cmpZero(rs, vr.at, ">=") == triTrue {
		return 0, true
	}
	return 0, false
}

func litInt(e ast.Expr) (int, bool) {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return n, true
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok {
		return false
	}
	switch lit.Value {
	case "0", "0.0", "0.":
		return true
	}
	return false
}

// annotatedLoop verifies a //dp:spends-annotated loop. When the trip count
// is derivable the annotation is a pure cross-check against the loop's exact
// scaled footprint. When it is not (a range over structure-dependent data),
// the loop must reduce to a single per-iteration charge stream of fixed
// amount u, the declared total A must be an epsilon-free multiple of u
// (A = q*u: the annotation may override the iteration count, never the
// rate), and A is then applied as the loop's contribution.
func (vr *verifier) annotatedLoop(info loopInfo, anno *spendAnno, st *state) []outcome {
	if anno.expr == nil {
		vr.abort(info.node, "malformed //dp:spends on this loop")
	}
	if !vr.touchesNode(info.body) {
		vr.report(info.node, "//dp:spends annotates a loop with no budget charges")
		return vr.chargeFreeLoop(info, st)
	}
	amt, ok := vr.evalSpendExpr(anno.expr, spendEnvAt(st), st)
	if !ok {
		vr.abort(info.node, "cannot evaluate //dp:spends expression %q at this loop", anno.raw)
	}

	var outs []outcome
	runs := triUnknown
	if info.tripOK {
		runs = st.cons.cmpZero(st.cons.substPoints(info.trip, vr.at), vr.at, ">")
		if runs == triFalse {
			return fallOut(st)
		}
		if runs == triUnknown {
			zs := st.clone()
			if vr.assume(zs, info.trip, "<=") {
				outs = append(outs, outcome{st: zs, ctl: ctlFall})
			}
			vr.tick(info.node)
			if !vr.assume(st, info.trip, ">") {
				return outs
			}
		}
	}

	vr.havocAssigned(info.body, st)
	iota := vr.bindLoopVars(info, st)
	mark := len(vr.at.names)
	snap := make(map[string]*meterState, len(st.meters))
	for k, ms := range st.meters {
		snap[k] = ms.clone()
	}

	seen := map[string]bool{}
	for _, o := range vr.block(info.body.List, st) {
		switch o.ctl {
		case ctlReturn:
			if vr.exemptOutcome(o) {
				outs = append(outs, o)
				continue
			}
			vr.report(o.retPos, "return from inside a budget-charging loop leaves the loop's spend unverifiable")
			o.st.poisoned = true
			outs = append(outs, o)
		case ctlBreak:
			vr.report(info.node, "break out of a //dp:spends-annotated loop leaves its declared spend unverifiable")
			o.st.poisoned = true
			outs = append(outs, outcome{st: o.st, ctl: ctlFall})
		default:
			deltas, ok := vr.loopDeltas(o, snap, iota, mark, info, true)
			if !ok {
				o.st.poisoned = true
				outs = append(outs, outcome{st: o.st, ctl: ctlFall})
				continue
			}
			sig := vr.deltaSignature(deltas)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			if info.tripOK {
				outs = append(outs, vr.annotatedClosable(o, snap, deltas, amt, info)...)
			} else {
				outs = append(outs, vr.annotatedOpen(o, snap, deltas, amt, anno, info)...)
			}
		}
	}
	return outs
}

// annotatedClosable cross-checks the annotation against the exact scaled
// footprint, which remains the truth applied to the continuation.
func (vr *verifier) annotatedClosable(o outcome, snap map[string]*meterState, deltas []meterDelta, amt rat, info loopInfo) []outcome {
	contrib := ratZero()
	for _, d := range deltas {
		contrib = ratAdd(contrib, ratMul(info.trip, ratAdd(ratAdd(d.seq, d.fam), d.famPer)))
		for _, k := range d.parNew {
			contrib = ratAdd(contrib, d.parEnt[k].amount)
		}
	}
	cs := o.st.cons
	if !ratEqual(cs.substPoints(contrib, vr.at), cs.substPoints(amt, vr.at)) {
		vr.report(info.node, "loop charges %s but //dp:spends declares %s",
			contrib.render(vr.at), amt.render(vr.at))
	}
	if vr.applyScaled(o, snap, deltas, info.trip, info.tripOK, info) {
		return []outcome{o}
	}
	return nil
}

// annotatedOpen applies the declared total to a loop whose trip count is
// not derivable, after the rate check described on annotatedLoop.
func (vr *verifier) annotatedOpen(o outcome, snap map[string]*meterState, deltas []meterDelta, amt rat, anno *spendAnno, info loopInfo) []outcome {
	if len(deltas) != 1 {
		vr.report(info.node, "cannot verify //dp:spends: the loop charges %d meters (want exactly one)", len(deltas))
		o.st.poisoned = true
		return []outcome{{st: o.st, ctl: ctlFall}}
	}
	d := deltas[0]
	var u rat
	streams, par := 0, false
	if !d.seq.isZero() {
		streams, u = streams+1, d.seq
	}
	if !d.fam.isZero() {
		streams, u = streams+1, d.fam
	}
	if !d.famPer.isZero() {
		streams, u, par = streams+1, d.famPer, true
	}
	if streams != 1 || len(d.parNew) > 0 {
		vr.report(info.node, "cannot verify //dp:spends: the loop body must reduce to a single per-iteration charge stream")
		o.st.poisoned = true
		return []outcome{{st: o.st, ctl: ctlFall}}
	}
	q, ok := ratDiv(o.st.cons.substPoints(amt, vr.at), o.st.cons.substPoints(u, vr.at))
	if !ok || q.hasAtom(vr.epsID) {
		vr.report(info.node, "//dp:spends declares %s, which is not an epsilon-free multiple of the per-iteration charge %s",
			amt.render(vr.at), u.render(vr.at))
		o.st.poisoned = true
		return []outcome{{st: o.st, ctl: ctlFall}}
	}
	old := snap[d.key].clone()
	ms := o.st.meters[d.key]
	ms.seq = old.seq
	ms.famSum = old.famSum
	if par {
		ms.famSum = ratAdd(ms.famSum, amt)
	} else {
		ms.seq = ratAdd(ms.seq, amt)
	}
	ms.par = make(map[chargeKey]parEntry, len(old.par))
	ms.parIdx = append([]chargeKey{}, old.parIdx...)
	for k, e := range old.par {
		ms.par[k] = e
	}
	return []outcome{o}
}

// verifyAnnotatedFn checks a //dp:spends-annotated function inductively:
// with fresh symbolic parameters (integer parameters seeded nonnegative,
// as every count in budget code is), and with recursive calls contributing
// their declared spends, every non-exempt path must charge exactly the
// declared amount into the meter parameter.
func (vr *verifier) verifyAnnotatedFn(obj types.Object, decl *ast.FuncDecl, anno *spendAnno) {
	if anno.expr == nil || decl.Body == nil {
		return // malformed or bodyless: reported at collection / call sites
	}
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(abortError)
			if !ok {
				panic(r)
			}
			pos := ae.pos
			if pos == token.NoPos {
				pos = decl.Pos()
			}
			vr.pass.Reportf(pos, "cannot verify //dp:spends on %s: %s", obj.Name(), ae.msg)
		}
	}()
	vr.budget = pathBudget
	vr.depth = 0
	vr.inlining = map[*ast.FuncDecl]bool{}
	vr.mech = obj.Name()

	st := &state{cons: newConstraints(), meters: map[string]*meterState{}, memo: map[string]value{}}
	fr := &frame{fn: decl, vars: map[types.Object]value{}}
	env := map[string]value{}
	meterKey := ""

	bind := func(name *ast.Ident) {
		o := vr.pass.TypesInfo.Defs[name]
		if o == nil {
			return
		}
		var v value
		if isMeterType(o.Type()) {
			key := vr.freshStem("meter:" + obj.Name())
			ms := newMeterState(ratAtom(vr.at.fresh("budget", false)), true)
			st.setMeter(key, ms)
			v = value{kind: vMeter, meter: key, bAtom: -1}
			meterKey = key
		} else {
			v = vr.freshTyped(o.Type(), o.Name())
			if isIntType(o.Type()) && v.kind == vNum {
				if id, c1, c0, ok := v.r.linearAtom(); ok && c1.Cmp(big.NewRat(1, 1)) == 0 && c0.Sign() == 0 {
					st.cons.addLower(id, 0, false, true)
				}
			}
		}
		fr.vars[o] = v
		env[name.Name] = v
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		bind(decl.Recv.List[0].Names[0])
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			bind(name)
		}
	}
	if meterKey == "" {
		vr.report(decl, "//dp:spends function %s has no meter parameter", obj.Name())
		return
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if o := vr.pass.TypesInfo.Defs[name]; o != nil {
					fr.results = append(fr.results, o)
					fr.vars[o] = vr.zeroValue(o.Type())
				}
			}
		}
	}
	amt, ok := vr.evalSpendExpr(anno.expr, env, st)
	if !ok {
		vr.report(decl, "cannot evaluate the //dp:spends expression %q over %s's parameters", anno.raw, obj.Name())
		return
	}
	st.frames = []*frame{fr}
	for _, o := range vr.block(decl.Body.List, st) {
		if vr.exemptOutcome(o) {
			continue
		}
		ms, ok := o.st.meters[meterKey]
		if !ok {
			continue
		}
		total := ratAdd(ms.total(), vr.consumeAnnEvents(o.st, meterKey))
		cs := o.st.cons
		if !ratEqual(cs.substPoints(total, vr.at), cs.substPoints(amt, vr.at)) {
			at := o.retPos
			if at == nil {
				at = ast.Node(decl)
			}
			vr.report(at, "%s charges %s on this path but //dp:spends declares %s",
				obj.Name(), total.render(vr.at), amt.render(vr.at))
		}
	}
}
