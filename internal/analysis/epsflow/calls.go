package epsflow

import (
	"go/ast"
	"go/types"

	"dpbench/internal/analysis/meterapi"
)

func meterMethodName(info *types.Info, call *ast.CallExpr) (string, bool) {
	return meterapi.MeterMethod(info, call)
}

func (vr *verifier) calleeObj(call *ast.CallExpr) types.Object {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return vr.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return vr.pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

// touchesNode reports whether the subtree can charge a meter: a direct meter
// method call, a tree measurement, or a call into a charging local function.
func (vr *verifier) touchesNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := meterMethodName(vr.pass.TypesInfo, call); ok {
			found = true
			return false
		}
		if vr.isTreeMeasure(call) {
			found = true
			return false
		}
		if obj := vr.calleeObj(call); obj != nil {
			if vr.touches[obj] || vr.spendFn[obj] != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

const treePkgPath = "dpbench/internal/tree"

func (vr *verifier) isTreeMeasure(call *ast.CallExpr) bool {
	obj := vr.calleeObj(call)
	if objPkgPath(obj) != treePkgPath {
		return false
	}
	return obj.Name() == "Measure" || obj.Name() == "MeasureInto"
}

func (vr *verifier) evalCall(call *ast.CallExpr, st *state) []ev {
	// Conversions T(x).
	if tv, ok := vr.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return vr.evalConversion(call, tv.Type, st)
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := vr.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return vr.evalBuiltin(b.Name(), call, st)
		}
	}
	// Meter methods.
	if name, ok := meterMethodName(vr.pass.TypesInfo, call); ok {
		return vr.meterOp(name, call, st)
	}
	callee := vr.calleeObj(call)
	if callee != nil {
		if anno := vr.spendFn[callee]; anno != nil {
			return vr.annCall(call, callee, anno, st)
		}
		if vr.isLocalIntrinsic(callee, "idxLabel") {
			return vr.idxLabelCall(call, st)
		}
		if vr.isLocalIntrinsic(callee, "labelTable") {
			return vr.labelTableCall(call, st)
		}
		if decl := vr.decls[callee]; decl != nil {
			return vr.inlineCall(call, decl, st)
		}
		if evs, ok := vr.intrinsicCall(call, callee, st); ok {
			return evs
		}
	}
	// Interface-dispatched method on a tracked struct (a stored sub-plan):
	// resolve the concrete method declaration by the receiver's type.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if evs, ok := vr.dynamicCall(call, sel, st); ok {
			return evs
		}
	}
	// Opaque call: refuse if a meter escapes into it, otherwise memoize.
	for _, a := range call.Args {
		if t, ok := vr.pass.TypesInfo.Types[a]; ok && t.Type != nil && isMeterType(t.Type) {
			if evs, handled := vr.delegatedExecute(call, st); handled {
				return evs
			}
			vr.abort(call, "meter passed to unmodeled call %s", types.ExprString(call.Fun))
		}
	}
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		v := vr.memoValue(call, le.st)
		if eps, ok := vr.delegatedPlanEps(call, le.vals); ok {
			v = tagPlanEps(v, eps)
		}
		out = append(out, ev{v: v, st: le.st})
	}
	return out
}

// delegatedPlanEps recognizes an unmodeled `recv.Plan(...)` call carrying
// exactly one float64 argument — the mechanism entry-point shape dispatched
// through an interface (a wrapper like the sampler's s.inner.Plan). The
// budget that call received is the delegated-plan contract attached to its
// opaque result.
func (vr *verifier) delegatedPlanEps(call *ast.CallExpr, vals []value) (rat, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Plan" {
		return ratZero(), false
	}
	tv, ok := vr.pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return ratZero(), false
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || tup.Len() != 2 || !isErrorType(tup.At(1).Type()) {
		return ratZero(), false
	}
	eps, floats := ratZero(), 0
	for i, a := range call.Args {
		at, ok := vr.pass.TypesInfo.Types[a]
		if !ok || at.Type == nil || !isFloatType(at.Type) {
			continue
		}
		floats++
		if i < len(vals) && vals[i].kind == vNum {
			eps = vals[i].r
		} else {
			return ratZero(), false
		}
	}
	return eps, floats == 1
}

// tagPlanEps attaches the contract to the plan slot of the memoized
// (plan, error) result.
func tagPlanEps(v value, eps rat) value {
	if v.kind != vTuple || len(v.tuple) == 0 {
		return v
	}
	tp := append([]value{}, v.tuple...)
	tp[0].planEps = eps
	tp[0].planEpsSet = true
	v.tuple = tp
	return v
}

// delegatedExecute models `plan.Execute(m, ...)` on a contract-tagged plan:
// the whole call charges the plan's eps sequentially into the meter. This is
// the compositional half of the contract — every concrete Execute in the
// package is separately verified to charge exactly its declared budget.
func (vr *verifier) delegatedExecute(call *ast.CallExpr, st *state) ([]ev, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Execute" {
		return nil, false
	}
	probe := vr.eval(sel.X, st)
	for _, re := range probe {
		if !re.v.planEpsSet {
			return nil, false
		}
	}
	var out []ev
	for _, re := range probe {
		eps := re.v.planEps
		for _, le := range vr.evalList(call.Args, re.st) {
			charged := false
			for _, av := range le.vals {
				if av.kind == vMeter {
					le.st.meterAt(av.meter).addSeq(eps)
					charged = true
					break
				}
			}
			if !charged {
				vr.abort(call, "cannot resolve the meter passed to a delegated Execute")
			}
			out = append(out, ev{v: errVal(triUnknown), st: le.st})
		}
	}
	return out, true
}

func (vr *verifier) isLocalIntrinsic(obj types.Object, name string) bool {
	return obj.Name() == name && obj.Pkg() == vr.pass.Pkg && vr.decls[obj] != nil
}

// idxLabel(table, i) is treated as an intrinsic family index rather than
// inlined: inlining its clamp would fork a fixed last-index path whose
// per-iteration charge shape differs from the symbolic-index path.
func (vr *verifier) idxLabelCall(call *ast.CallExpr, st *state) []ev {
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		if len(le.vals) == 2 && le.vals[0].kind == vLabels && le.vals[1].kind == vNum {
			out = append(out, ev{v: value{kind: vStr, family: le.vals[0].family, famIdx: le.vals[1].r, famIdxOK: true}, st: le.st})
		} else {
			out = append(out, ev{v: value{kind: vStr, bAtom: -1}, st: le.st})
		}
	}
	return out
}

func (vr *verifier) labelTableCall(call *ast.CallExpr, st *state) []ev {
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		v := value{kind: vSlice, nonNil: triTrue, bAtom: -1}
		if len(le.vals) == 2 && le.vals[0].kind == vStr && le.vals[0].sConst {
			if n, ok := le.vals[1].r.isConst(); ok && le.vals[1].kind == vNum && n.IsInt() {
				f, _ := n.Float64()
				v = labelsVal(le.vals[0].s, int(f))
			}
		}
		out = append(out, ev{v: v, st: le.st})
	}
	return out
}

func (vr *verifier) evalConversion(call *ast.CallExpr, t types.Type, st *state) []ev {
	var out []ev
	for _, x := range vr.eval(call.Args[0], st) {
		v := x.v
		switch {
		case isFloatType(t):
			if v.kind != vNum {
				v = vr.memoValue(call, x.st)
			}
		case isIntType(t):
			srcInt := false
			if tv, ok := vr.pass.TypesInfo.Types[call.Args[0]]; ok && tv.Type != nil {
				srcInt = isIntType(tv.Type)
			}
			if v.kind == vNum && srcInt {
				// integer-to-integer: exact
			} else if v.kind == vNum {
				if c, ok := v.r.isConst(); ok && c.IsInt() {
					// an exact integer constant survives truncation
				} else {
					v = vr.memoValue(call, x.st) // float->int truncation
				}
			} else {
				v = vr.memoValue(call, x.st)
			}
		}
		out = append(out, ev{v: v, st: x.st})
	}
	return out
}

func (vr *verifier) evalBuiltin(name string, call *ast.CallExpr, st *state) []ev {
	switch name {
	case "len", "cap":
		var out []ev
		for _, x := range vr.eval(call.Args[0], st) {
			switch x.v.kind {
			case vLabels:
				out = append(out, ev{v: numVal(x.v.sum), st: x.st})
			case vStr:
				if x.v.sConst {
					out = append(out, ev{v: numVal(ratFloat(float64(len(x.v.s)))), st: x.st})
					continue
				}
				out = append(out, ev{v: vr.lenValue(call, x.st), st: x.st})
			default:
				out = append(out, ev{v: vr.lenValue(call, x.st), st: x.st})
			}
		}
		return out
	case "make":
		if t, ok := vr.pass.TypesInfo.Types[call.Args[0]]; ok && t.Type != nil {
			if _, isSlice := t.Type.Underlying().(*types.Slice); isSlice {
				// zero-filled: the tracked sum starts at 0
				var out []ev
				for _, le := range vr.evalList(call.Args[1:], st) {
					out = append(out, ev{v: sliceVal(ratZero()), st: le.st})
				}
				return out
			}
		}
		return one(opaqueVal(), st)
	case "append":
		return vr.appendBuiltin(call, st)
	case "new":
		if t, ok := vr.pass.TypesInfo.Types[call.Args[0]]; ok && t.Type != nil {
			return one(vr.zeroValue(t.Type), st)
		}
		return one(opaqueVal(), st)
	case "min", "max":
		return vr.minMaxBuiltin(name, call, st)
	case "panic":
		vr.abort(call, "panic in expression position")
	}
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		out = append(out, ev{v: vr.memoValue(call, le.st), st: le.st})
	}
	return out
}

// lenValue memoizes len(x) as a positive integer unknown. Positive, not
// just nonnegative: every mechanism validates its data non-empty at Plan
// entry, and the sizes flowing into budget arithmetic (domain cells, grid
// dims, candidate sets) all derive from it. Without this, every counted
// loop over a data dimension grows an unreachable zero-size path whose
// charge total is a spurious under-spend finding.
func (vr *verifier) lenValue(call *ast.CallExpr, st *state) value {
	key := "len:" + types.ExprString(call.Args[0])
	if v, ok := st.memo[key]; ok {
		return v
	}
	id := vr.at.fresh("len", true)
	st.cons.addLower(id, 1, false, true)
	v := numVal(ratAtom(id))
	st.memo[key] = v
	return v
}

func (vr *verifier) appendBuiltin(call *ast.CallExpr, st *state) []ev {
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		base := le.vals[0]
		if base.kind != vSlice {
			out = append(out, ev{v: opaqueSlice(triTrue), st: le.st})
			continue
		}
		v := base
		v.nonNil = triTrue
		if v.sumKnown {
			for i, a := range le.vals[1:] {
				if call.Ellipsis.IsValid() && i == len(le.vals)-2 {
					if a.kind == vSlice && a.sumKnown {
						v.sum = ratAdd(v.sum, a.sum)
					} else {
						v.sumKnown = false
					}
					continue
				}
				if a.kind == vNum {
					v.sum = ratAdd(v.sum, a.r)
				} else {
					v.sumKnown = false
				}
			}
		}
		out = append(out, ev{v: v, st: le.st})
	}
	return out
}

func (vr *verifier) minMaxBuiltin(name string, call *ast.CallExpr, st *state) []ev {
	evs := vr.evalList(call.Args, st)
	var out []ev
	for _, le := range evs {
		out = append(out, vr.foldMinMax(name, le.vals, le.st, call)...)
	}
	return out
}

func (vr *verifier) foldMinMax(name string, vals []value, st *state, at ast.Node) []ev {
	if len(vals) == 1 {
		return one(vals[0], st)
	}
	x, y := vals[0], vals[1]
	rest := vals[2:]
	if x.kind != vNum || y.kind != vNum {
		return one(vr.freshTyped(nil, name), st)
	}
	d := st.cons.substPoints(ratSub(x.r, y.r), vr.at)
	pick := func(v value, s *state) []ev {
		return vr.foldMinMax(name, append([]value{v}, rest...), s, at)
	}
	bigger, smaller := x, y
	switch st.cons.cmpZero(d, vr.at, ">=") {
	case triTrue:
		if name == "max" {
			return pick(bigger, st)
		}
		return pick(smaller, st)
	case triFalse:
		if name == "max" {
			return pick(y, st)
		}
		return pick(x, st)
	}
	vr.tick(at)
	ge, lt := st, st.clone()
	var out []ev
	if vr.assume(ge, d, ">=") {
		if name == "max" {
			out = append(out, pick(x, ge)...)
		} else {
			out = append(out, pick(y, ge)...)
		}
	}
	if vr.assume(lt, d, "<") {
		if name == "max" {
			out = append(out, pick(y, lt)...)
		} else {
			out = append(out, pick(x, lt)...)
		}
	}
	return out
}

// --- cross-package intrinsics ---

func (vr *verifier) intrinsicCall(call *ast.CallExpr, callee types.Object, st *state) ([]ev, bool) {
	pkg := objPkgPath(callee)
	switch pkg {
	case treePkgPath:
		switch callee.Name() {
		case "UniformLevelBudget", "GeometricLevelBudget":
			// Both split eps exactly over the levels: the slice sums to eps.
			var out []ev
			for _, le := range vr.evalList(call.Args, st) {
				if len(le.vals) >= 1 && le.vals[0].kind == vNum {
					out = append(out, ev{v: sliceVal(le.vals[0].r), st: le.st})
				} else {
					vr.abort(call, "cannot track the budget passed to %s", callee.Name())
				}
			}
			return out, true
		case "Measure", "MeasureInto":
			return vr.treeMeasureCall(call, st), true
		}
	case "fmt":
		if callee.Name() == "Errorf" {
			return vr.errorResult(call, st), true
		}
	case "errors":
		if callee.Name() == "New" {
			return vr.errorResult(call, st), true
		}
	}
	return nil, false
}

func (vr *verifier) errorResult(call *ast.CallExpr, st *state) []ev {
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		out = append(out, ev{v: errVal(triTrue), st: le.st})
	}
	return out
}

// treeMeasureCall models Flat.MeasureInto / Node.Measure: each tree level is
// one parallel scope under its level label charged epsByLevel[d], so the
// whole call costs sum(epsByLevel) sequentially.
func (vr *verifier) treeMeasureCall(call *ast.CallExpr, st *state) []ev {
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		var meterKey string
		var budget value
		budgetSet := false
		for i, a := range call.Args {
			t, ok := vr.pass.TypesInfo.Types[a]
			if !ok || t.Type == nil {
				continue
			}
			if isMeterType(t.Type) {
				if le.vals[i].kind != vMeter {
					vr.abort(call, "cannot resolve the meter passed to a tree measurement")
				}
				meterKey = le.vals[i].meter
			}
			if s, isSlice := t.Type.Underlying().(*types.Slice); isSlice && isFloatType(s.Elem()) {
				budget = le.vals[i] // last []float64 arg is epsByLevel
				budgetSet = true
			}
		}
		if meterKey == "" {
			vr.abort(call, "tree measurement without a resolvable meter")
		}
		if !budgetSet || budget.kind != vSlice || !budget.sumKnown {
			vr.abort(call, "cannot bound the level budget of a tree measurement")
		}
		le.st.meterAt(meterKey).addSeq(budget.sum)
		out = append(out, ev{v: opaqueVal(), st: le.st})
	}
	return out
}

// --- inlining ---

func (vr *verifier) inlineCall(call *ast.CallExpr, decl *ast.FuncDecl, st *state) []ev {
	if vr.inlining[decl] {
		return vr.recursiveCall(call, decl, st)
	}
	vr.inlining[decl] = true
	defer delete(vr.inlining, decl)
	vr.depth++
	if vr.depth > 12 {
		vr.abort(call, "inline depth exceeded at %s", decl.Name.Name)
	}
	defer func() { vr.depth-- }()
	recvEvs := []ev{{st: st}}
	if decl.Recv != nil {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			vr.abort(call, "method expression calls are not supported")
		}
		recvEvs = vr.eval(sel.X, st)
	}
	var out []ev
	for _, re := range recvEvs {
		for _, le := range vr.evalList(call.Args, re.st) {
			out = append(out, vr.runInline(call, decl, re.v, le.vals, le.st)...)
		}
	}
	return out
}

func (vr *verifier) dynamicCall(call *ast.CallExpr, sel *ast.SelectorExpr, st *state) ([]ev, bool) {
	// Only meaningful for selector calls whose receiver we track as a struct.
	probe := vr.eval(sel.X, st)
	if len(probe) == 0 || probe[0].v.kind != vStruct || probe[0].v.typ == nil {
		return nil, false
	}
	var out []ev
	matched := false
	for _, re := range probe {
		if re.v.kind != vStruct || re.v.typ == nil {
			continue
		}
		decl := vr.methodDecl(re.v.typ, sel.Sel.Name)
		if decl == nil {
			continue
		}
		matched = true
		if vr.inlining[decl] {
			out = append(out, vr.recursiveCall(call, decl, re.st)...)
			continue
		}
		vr.inlining[decl] = true
		vr.depth++
		if vr.depth > 12 {
			vr.abort(call, "inline depth exceeded at %s", decl.Name.Name)
		}
		for _, le := range vr.evalList(call.Args, re.st) {
			out = append(out, vr.runInline(call, decl, re.v, le.vals, le.st)...)
		}
		vr.depth--
		delete(vr.inlining, decl)
	}
	return out, matched
}

// recursiveCall handles a call back into a function already being inlined.
// Charge-free recursion is sound to treat as an opaque value (no meter can
// change); charging recursion must carry a //dp:spends annotation, which is
// consumed as an event before ever reaching here.
func (vr *verifier) recursiveCall(call *ast.CallExpr, decl *ast.FuncDecl, st *state) []ev {
	if obj := vr.pass.TypesInfo.Defs[decl.Name]; obj != nil && vr.touches[obj] {
		vr.abort(call, "recursive charging function %s needs a //dp:spends annotation", decl.Name.Name)
	}
	for _, a := range call.Args {
		if t, ok := vr.pass.TypesInfo.Types[a]; ok && t.Type != nil && isMeterType(t.Type) {
			vr.abort(call, "meter passed to recursive call of %s", decl.Name.Name)
		}
	}
	var out []ev
	for _, le := range vr.evalList(call.Args, st) {
		out = append(out, ev{v: vr.memoValue(call, le.st), st: le.st})
	}
	return out
}

func (vr *verifier) methodDecl(tn *types.TypeName, name string) *ast.FuncDecl {
	for obj, decl := range vr.decls {
		if decl.Recv == nil || obj.Name() != name {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		if rn := namedStruct(sig.Recv().Type()); rn == tn {
			return decl
		}
	}
	return nil
}

func (vr *verifier) runInline(call *ast.CallExpr, decl *ast.FuncDecl, recv value, args []value, st *state) []ev {
	fr := &frame{fn: decl, vars: map[types.Object]value{}}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		if obj := vr.pass.TypesInfo.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
			fr.vars[obj] = recv
		}
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			obj := vr.pass.TypesInfo.Defs[name]
			if obj == nil {
				i++
				continue
			}
			if i < len(args) {
				fr.vars[obj] = args[i]
			} else {
				fr.vars[obj] = vr.freshTyped(obj.Type(), obj.Name())
			}
			i++
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := vr.pass.TypesInfo.Defs[name]; obj != nil {
					fr.results = append(fr.results, obj)
					fr.vars[obj] = vr.zeroValue(obj.Type())
				}
			}
		}
	}
	st.frames = append(st.frames, fr)
	outs := vr.block(decl.Body.List, st)
	var out []ev
	for _, o := range outs {
		inner := o.st.top()
		vr.applyDefers(inner, o.st, call)
		o.st.frames = o.st.frames[:len(o.st.frames)-1]
		var v value
		switch {
		case o.ctl == ctlReturn && len(o.results) == 1:
			v = o.results[0]
		case o.ctl == ctlReturn && len(o.results) > 1:
			v = tupleVal(o.results...)
		default:
			if tv, ok := vr.pass.TypesInfo.Types[call]; ok && tv.Type != nil {
				v = vr.freshTyped(tv.Type, decl.Name.Name)
			} else {
				v = opaqueVal()
			}
		}
		out = append(out, ev{v: v, st: o.st})
	}
	return out
}

// --- meter operations ---

type spendSig struct {
	epsArg int
	par    bool
	ret    byte // f float, i int, b bool(poison-on-false), v void, s slice
}

var spendOps = map[string]spendSig{
	"Laplace":              {2, false, 'f'},
	"LaplacePar":           {2, true, 'f'},
	"LaplaceVec":           {3, false, 's'},
	"LaplaceVecInto":       {4, false, 's'},
	"LaplaceVecParInto":    {4, true, 's'},
	"LaplaceMechanism":     {3, false, 's'},
	"LaplaceMechanismInto": {4, false, 's'},
	"Geometric":            {2, false, 'i'},
	"ExpMech":              {3, false, 'i'},
	"ExpMechPar":           {3, true, 'i'},
	"ExpMechBuf":           {3, false, 'i'},
	"ExpMechBufPar":        {3, true, 'i'},
	"ExpMechGumbels":       {2, false, 'b'},
	"Charge":               {1, false, 'v'},
	"ChargePar":            {1, true, 'v'},
}

func (vr *verifier) meterOp(name string, call *ast.CallExpr, st *state) []ev {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		vr.abort(call, "meter method expression is not supported")
	}
	var out []ev
	for _, re := range vr.eval(sel.X, st) {
		if re.v.kind != vMeter {
			vr.abort(call, "cannot resolve the meter receiver of %s", name)
		}
		for _, le := range vr.evalList(call.Args, re.st) {
			out = append(out, vr.applyMeterOp(name, call, re.v.meter, le.vals, le.st))
		}
	}
	return out
}

func (vr *verifier) applyMeterOp(name string, call *ast.CallExpr, key string, vals []value, st *state) ev {
	ms := st.meterAt(key)
	if sig, ok := spendOps[name]; ok {
		if sig.epsArg >= len(vals) || vals[sig.epsArg].kind != vNum {
			vr.abort(call, "cannot track the epsilon passed to %s", name)
		}
		amount := vals[sig.epsArg].r
		if sig.par {
			ck, pe, ok := parKeyOf(vals[0], amount, vr.at)
			if !ok {
				vr.abort(call, "non-constant label passed to parallel spend %s", name)
			}
			if ms.addPar(ck, pe) {
				vr.report(call, "parallel scope %s is charged twice with different amounts on one path", fmtChargeKey(ck))
			}
		} else {
			ms.addSeq(amount)
		}
		return ev{v: vr.spendResult(sig.ret, call, st), st: st}
	}
	switch name {
	case "Sub", "SubEps", "SubParEps":
		label := vals[0]
		if label.kind != vStr || !label.sConst {
			vr.abort(call, "non-constant label passed to %s", name)
		}
		budget := ratZero()
		if vals[1].kind == vNum {
			budget = vals[1].r
		} else {
			vr.abort(call, "cannot track the budget passed to %s", name)
		}
		if name == "Sub" {
			budget = ratMul(budget, ms.budget)
		}
		sub := newMeterState(budget, false)
		sub.label = label.s
		sub.parent = key
		sub.parallel = name == "SubParEps"
		subKey := vr.freshStem("sub:" + label.s)
		st.setMeter(subKey, sub)
		return ev{v: value{kind: vMeter, meter: subKey, bAtom: -1}, st: st}
	case "ResetSub":
		if vals[0].kind != vMeter {
			vr.abort(call, "cannot resolve the sub-meter passed to ResetSub")
		}
		subKey := vals[0].meter
		if old, ok := st.meters[subKey]; ok && !old.closed && !old.total().isZero() {
			vr.report(call, "ResetSub reuses sub-meter %q while it still holds unclosed spend %s", old.label, old.total().render(vr.at))
		}
		if vals[1].kind != vStr || !vals[1].sConst {
			vr.abort(call, "non-constant label passed to ResetSub")
		}
		if vals[2].kind != vNum {
			vr.abort(call, "cannot track the budget passed to ResetSub")
		}
		par, ok := boolConstOf(vals[3])
		if !ok {
			vr.abort(call, "cannot resolve the parallel flag passed to ResetSub")
		}
		sub := newMeterState(vals[2].r, false)
		sub.label = vals[1].s
		sub.parent = key
		sub.parallel = par
		st.setMeter(subKey, sub)
		return ev{v: opaqueVal(), st: st}
	case "Close":
		vr.closeMeter(key, st, call)
		return ev{v: opaqueVal(), st: st}
	case "Err":
		if st.poisoned {
			return ev{v: errVal(triTrue), st: st}
		}
		return ev{v: errVal(triFalse), st: st}
	case "Total":
		return ev{v: numVal(ms.budget), st: st}
	case "Spent":
		return ev{v: numVal(ms.total()), st: st}
	case "Release", "SetSampler":
		return ev{v: opaqueVal(), st: st}
	case "Sampler", "Rand", "Ledger", "Audited":
		return ev{v: vr.memoValue(call, st), st: st}
	}
	vr.abort(call, "unmodeled meter method %s", name)
	return ev{}
}

func boolConstOf(v value) (bool, bool) {
	if v.kind == vBool && v.bSet {
		return v.b, true
	}
	return false, false
}

func parKeyOf(label value, amount rat, at *atoms) (chargeKey, parEntry, bool) {
	if label.kind != vStr {
		return chargeKey{}, parEntry{}, false
	}
	if label.sConst {
		return chargeKey{label: label.s}, parEntry{amount: amount}, true
	}
	if label.family != "" && label.famIdxOK {
		return chargeKey{family: label.family, idx: label.famIdx.render(at)},
			parEntry{amount: amount, fam: true, idx: label.famIdx}, true
	}
	return chargeKey{}, parEntry{}, false
}

func (vr *verifier) spendResult(ret byte, call *ast.CallExpr, st *state) value {
	switch ret {
	case 'f':
		return numVal(ratAtom(vr.at.fresh("noise", false)))
	case 'i':
		id := vr.at.fresh("draw", true)
		st.cons.addLower(id, 0, false, true)
		return numVal(ratAtom(id))
	case 'b':
		return value{kind: vBool, bAtom: vr.at.fresh("b:gumbel", false), poisonOnFalse: true}
	case 's':
		return opaqueSlice(triTrue)
	}
	return opaqueVal()
}

// closeMeter charges a sub-meter's spent total (plus its pending annotated
// charges) into its parent, sequentially or as one parallel scope.
func (vr *verifier) closeMeter(key string, st *state, at ast.Node) {
	ms, ok := st.meters[key]
	if !ok || ms.closed || ms.isRoot {
		return
	}
	ms.closed = true
	parent, ok := st.meters[ms.parent]
	if !ok {
		return
	}
	spent := ratAdd(ms.total(), vr.consumeAnnEvents(st, key))
	if ms.parallel {
		if parent.addPar(chargeKey{label: ms.label}, parEntry{amount: spent}) {
			vr.report(at, "parallel sub-meter %q closes with different totals on one path", ms.label)
		}
	} else {
		parent.addSeq(spent)
	}
}

// consumeAnnEvents folds and removes the pending //dp:spends call events
// charged against one meter: parallel-annotated calls with identical
// annotation arguments count once; sequential ones sum.
func (vr *verifier) consumeAnnEvents(st *state, meterKey string) rat {
	total := ratZero()
	seen := map[string]bool{}
	var rest []annEvent
	for _, e := range st.annEvents {
		if e.meterKey != meterKey {
			rest = append(rest, e)
			continue
		}
		if e.par {
			k := e.fn.Name() + "|" + e.argsKey
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		total = ratAdd(total, e.amount)
	}
	st.annEvents = rest
	return total
}

// annCall records a call to a //dp:spends-annotated function instead of
// inlining it: the annotation's symbolic value is charged at scope end.
func (vr *verifier) annCall(call *ast.CallExpr, callee types.Object, anno *spendAnno, st *state) []ev {
	decl := vr.decls[callee]
	if decl == nil {
		vr.abort(call, "//dp:spends on a function without a body")
	}
	recvEvs := []ev{{st: st}}
	if decl.Recv != nil {
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			vr.abort(call, "method expression calls are not supported")
		}
		recvEvs = vr.eval(sel.X, st)
	}
	var out []ev
	for _, re := range recvEvs {
		for _, le := range vr.evalList(call.Args, re.st) {
			env := vr.spendEnv(decl, re.v, le.vals)
			amount, ok := vr.evalSpendExpr(anno.expr, env, le.st)
			if !ok {
				vr.abort(call, "cannot evaluate //dp:spends expression %q at this call", anno.raw)
			}
			meterKey := ""
			for i, a := range call.Args {
				if t, ok := vr.pass.TypesInfo.Types[a]; ok && t.Type != nil && isMeterType(t.Type) {
					if le.vals[i].kind != vMeter {
						vr.abort(call, "cannot resolve the meter passed to %s", callee.Name())
					}
					meterKey = le.vals[i].meter
				}
			}
			if meterKey == "" {
				vr.abort(call, "//dp:spends function %s takes no meter argument", callee.Name())
			}
			le.st.annEvents = append(le.st.annEvents, annEvent{
				fn: callee, meterKey: meterKey, par: anno.par,
				amount: amount, argsKey: amount.render(vr.at), pos: call,
			})
			var v value
			if tv, ok := vr.pass.TypesInfo.Types[call]; ok && tv.Type != nil {
				v = vr.freshTyped(tv.Type, callee.Name())
			} else {
				v = opaqueVal()
			}
			out = append(out, ev{v: v, st: le.st})
		}
	}
	return out
}

// spendEnv builds the name environment for evaluating a function-level
// //dp:spends expression at a call site: parameters and the receiver.
func (vr *verifier) spendEnv(decl *ast.FuncDecl, recv value, args []value) map[string]value {
	env := map[string]value{}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		env[decl.Recv.List[0].Names[0].Name] = recv
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if i < len(args) {
				env[name.Name] = args[i]
			}
			i++
		}
	}
	return env
}
