// Fixture for the epsflow analyzer: six mechanism shapes covering the
// exact-sum pass, over-spend, under-spend on an early-return path,
// branch-asymmetric spend, an open loop closed by a //dp:spends annotation,
// and a wrong annotation being rejected. Each mechanism is a Plan/Execute
// pair in the shape epsflow pairs up: Plan takes exactly one float64 (the
// budget) and returns (plan, error); the plan's Execute charges a meter.
package algo

import "dpbench/internal/noise"

// ExactMech charges its budget in two pieces that sum back to eps on every
// path: the clean baseline no finding may fire on.
type ExactMech struct{}

type exactPlan struct {
	eps, half float64
}

// Plan splits the budget in half.
func (g *ExactMech) Plan(n int, eps float64) (*exactPlan, error) {
	return &exactPlan{eps: eps, half: eps / 2}, nil
}

// Execute spends the first half drawing and charges the remainder.
func (p *exactPlan) Execute(m *noise.Meter, out []float64) error {
	m.Laplace("scale", 1, p.half)
	m.Charge("rest", p.eps-p.half)
	return m.Err()
}

// OverMech charges half the budget twice on top of the full budget.
type OverMech struct{}

type overPlan struct {
	eps float64
}

// Plan keeps the whole budget.
func (g *OverMech) Plan(n int, eps float64) (*overPlan, error) {
	return &overPlan{eps: eps}, nil
}

// Execute spends eps and then another eps/2: a classic double charge.
func (p *overPlan) Execute(m *noise.Meter, out []float64) error {
	m.Laplace("scale", 1, p.eps)
	m.Charge("extra", p.eps/2)
	return m.Err() // want `OverMech over-spends: this path charges .* of a declared budget eps`
}

// UnderMech silently wastes half the budget on an early-return path: the
// bailout returns a nil error after only half the budget is spent, so the
// path is not exempt and the audit would never see the missing half.
type UnderMech struct{}

type underPlan struct {
	eps  float64
	bail bool
}

// Plan records a data-dependent bailout flag.
func (g *UnderMech) Plan(n int, eps float64) (*underPlan, error) {
	return &underPlan{eps: eps, bail: n > 1}, nil
}

// Execute spends half, then may give up without charging the rest.
func (p *underPlan) Execute(m *noise.Meter, out []float64) error {
	m.Laplace("scale", 1, p.eps/2)
	if p.bail {
		return nil // want `UnderMech under-spends: this path charges only .* of a declared budget eps`
	}
	m.Charge("rest", p.eps/2)
	return m.Err()
}

// BranchMech charges different totals on the two arms of a branch: the wide
// arm spends exactly eps, the narrow arm only half of it.
type BranchMech struct{}

type branchPlan struct {
	eps  float64
	wide bool
}

// Plan records the branch selector.
func (g *BranchMech) Plan(n int, eps float64) (*branchPlan, error) {
	return &branchPlan{eps: eps, wide: n > 1}, nil
}

// Execute is exact on one arm and short on the other.
func (p *branchPlan) Execute(m *noise.Meter, out []float64) error {
	if p.wide {
		m.Charge("mass", p.eps)
	} else {
		m.Charge("mass", p.eps/2)
	}
	return m.Err() // want `BranchMech under-spends: this path charges only .* of a declared budget eps`
}

// AnnotMech runs a structure-dependent halving loop no abstract trip count
// can close; the checked //dp:spends annotation declares the loop's total,
// and epsflow verifies the declared total is an epsilon-free multiple of the
// per-iteration rate before applying it. Everything sums to eps: clean.
type AnnotMech struct{}

type annotPlan struct {
	eps, per float64
	n        int
}

// Plan reserves an eighth of the budget per dyadic level.
func (g *AnnotMech) Plan(n int, eps float64) (*annotPlan, error) {
	return &annotPlan{eps: eps, per: eps / 8, n: n}, nil
}

// Execute charges half up front and half across the levels.
func (p *annotPlan) Execute(m *noise.Meter, out []float64) error {
	m.Charge("head", p.eps/2)
	// Four dyadic levels, an eighth each.
	//dp:spends p.eps / 2
	for n := p.n; n > 1; n /= 2 {
		m.Laplace("level", 1, p.per)
	}
	return m.Err()
}

// WrongMech carries a //dp:spends annotation that disagrees with the loop's
// actual (closable) footprint: the cross-check must reject it even though
// the mechanism's total happens to come out exact.
type WrongMech struct{}

type wrongPlan struct {
	eps float64
}

// Plan keeps the whole budget.
func (g *WrongMech) Plan(n int, eps float64) (*wrongPlan, error) {
	return &wrongPlan{eps: eps}, nil
}

// Execute declares the loop spends eps when it provably spends eps/2.
func (p *wrongPlan) Execute(m *noise.Meter, out []float64) error {
	m.Charge("head", p.eps/2)
	//dp:spends p.eps
	for i := 0; i < 4; i++ { // want `loop charges .* but //dp:spends declares .*`
		m.Laplace("level", 1, p.eps/8)
	}
	return m.Err()
}
