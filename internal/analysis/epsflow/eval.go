package epsflow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/big"

	"dpbench/internal/analysis/meterapi"
)

// ev is one forked result of evaluating an expression: inlined same-package
// calls (clamps, budget splits) branch in expression position, so every
// evaluation returns a list of (value, specialized state) pairs.
type ev struct {
	v  value
	st *state
}

// listEv is one forked result of evaluating an expression list.
type listEv struct {
	vals []value
	st   *state
}

func (vr *verifier) evalList(exprs []ast.Expr, st *state) []listEv {
	acc := []listEv{{st: st}}
	for _, e := range exprs {
		var next []listEv
		for _, le := range acc {
			for _, x := range vr.eval(e, le.st) {
				vals := append(append([]value{}, le.vals...), x.v)
				next = append(next, listEv{vals: vals, st: x.st})
			}
		}
		acc = next
	}
	return acc
}

func one(v value, st *state) []ev { return []ev{{v: v, st: st}} }

func (vr *verifier) eval(e ast.Expr, st *state) []ev {
	if tv, ok := vr.pass.TypesInfo.Types[e]; ok {
		if tv.IsNil() {
			return one(nilVal(), st)
		}
		if tv.Value != nil {
			if v, ok := constValue(tv.Value); ok {
				return one(v, st)
			}
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return vr.eval(e.X, st)
	case *ast.StarExpr:
		return vr.eval(e.X, st)
	case *ast.Ident:
		return vr.evalIdent(e, st)
	case *ast.SelectorExpr:
		return vr.evalSelector(e, st)
	case *ast.CallExpr:
		return vr.evalCall(e, st)
	case *ast.UnaryExpr:
		return vr.evalUnary(e, st)
	case *ast.BinaryExpr:
		return vr.evalBinary(e, st)
	case *ast.IndexExpr:
		return vr.evalIndex(e, st)
	case *ast.SliceExpr:
		return vr.evalSlice(e, st)
	case *ast.TypeAssertExpr:
		return vr.evalAssert(e, st)
	case *ast.CompositeLit:
		return vr.evalComposite(e, st)
	case *ast.FuncLit:
		if vr.touchesNode(e.Body) {
			vr.abort(e, "function literal with budget charges is not supported")
		}
		return one(value{kind: vFunc, bAtom: -1}, st)
	}
	return one(vr.memoValue(e, st), st)
}

// constValue converts a go/constant value to an abstract value exactly.
func constValue(cv constant.Value) (value, bool) {
	switch cv.Kind() {
	case constant.Bool:
		return boolConst(constant.BoolVal(cv)), true
	case constant.String:
		return strVal(constant.StringVal(cv)), true
	case constant.Int, constant.Float:
		switch x := constant.Val(cv).(type) {
		case int64:
			return numVal(rat{num: polyConst(big.NewRat(x, 1))}), true
		case *big.Int:
			return numVal(rat{num: polyConst(new(big.Rat).SetInt(x))}), true
		case *big.Rat:
			return numVal(rat{num: polyConst(x)}), true
		case *big.Float:
			if r, _ := x.Rat(nil); r != nil {
				return numVal(rat{num: polyConst(r)}), true
			}
		}
	}
	return value{}, false
}

func (vr *verifier) evalIdent(id *ast.Ident, st *state) []ev {
	obj := vr.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = vr.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return one(opaqueVal(), st)
	}
	if v, ok := st.lookup(obj); ok {
		return one(v, st)
	}
	if fam, ok := vr.families[obj]; ok {
		return one(fam, st)
	}
	// A package-level variable: memoized unknown (stable within a path).
	key := "pkgvar:" + obj.Name()
	if v, ok := st.memo[key]; ok {
		return one(v, st)
	}
	v := vr.freshTyped(obj.Type(), obj.Name())
	st.memo[key] = v
	return one(v, st)
}

func (vr *verifier) evalSelector(sel *ast.SelectorExpr, st *state) []ev {
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := vr.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return one(vr.memoValue(sel, st), st)
		}
	}
	if _, isFn := vr.pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn {
		return one(value{kind: vFunc, bAtom: -1}, st) // method value
	}
	var out []ev
	for _, b := range vr.eval(sel.X, st) {
		out = append(out, ev{v: vr.readField(b.v, sel, b.st), st: b.st})
	}
	return out
}

func (vr *verifier) readField(base value, sel *ast.SelectorExpr, st *state) value {
	name := sel.Sel.Name
	if base.kind == vStruct {
		if v, ok := base.fields[name]; ok {
			return v
		}
		obj := vr.pass.TypesInfo.Uses[sel.Sel]
		var t types.Type
		if obj != nil {
			t = obj.Type()
		}
		if base.lazyStem != "" && t != nil {
			fv := vr.lazyField(base.lazyStem, name, t)
			vr.setField(sel, fv, st)
			return fv
		}
		if t != nil {
			return vr.zeroValue(t)
		}
		return opaqueVal()
	}
	return vr.memoValue(sel, st)
}

// lazyField materializes an unknown struct instance's field as a named atom.
// Keys are interned by "stem.field", which is what makes Plan and Execute
// agree on the receiver fields they share.
func (vr *verifier) lazyField(stem, name string, t types.Type) value {
	key := stem + "." + name
	switch {
	case isFloatType(t):
		return numVal(ratAtom(vr.at.intern(key, false)))
	case isIntType(t):
		return numVal(ratAtom(vr.at.intern(key, true)))
	case isBoolType(t):
		return value{kind: vBool, bAtom: vr.at.intern("b:"+key, false)}
	case isMeterType(t):
		return value{kind: vMeter, meter: key, bAtom: -1}
	case isErrorType(t):
		return errVal(triUnknown)
	}
	if tn := namedStruct(t); tn != nil {
		return structVal(tn, key)
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return opaqueSlice(triUnknown)
	case *types.Basic:
		return value{kind: vStr, bAtom: -1}
	}
	return opaqueVal()
}

// memoValue models an opaque pure expression: the same expression text reads
// the same unknown within one path.
func (vr *verifier) memoValue(e ast.Expr, st *state) value {
	key := types.ExprString(e)
	if v, ok := st.memo[key]; ok {
		return v
	}
	var t types.Type
	if tv, ok := vr.pass.TypesInfo.Types[e]; ok {
		t = tv.Type
	}
	v := vr.freshTyped(t, stemOf(key))
	if v.kind == vNum && sizeQuery(e) {
		// Same rationale as lenValue: dimension getters (workload query
		// counts, domain sizes, tree heights) are validated positive at Plan
		// entry, and they feed trip counts and budget divisions. An
		// unconstrained atom here manufactures an unreachable zero-size path
		// that under-spends by construction.
		if id, c1, c0, ok := v.r.linearAtom(); ok && id >= 0 && c0.Sign() == 0 && c1.Sign() > 0 {
			st.cons.addLower(id, 1, false, true)
		}
	}
	st.memo[key] = v
	return v
}

// sizeQuery reports whether e is a no-argument dimension-getter method call.
func sizeQuery(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "N", "K", "Size", "Len", "Count", "Height":
		return true
	}
	return false
}

func stemOf(key string) string {
	if len(key) > 24 {
		key = key[:24]
	}
	return key
}

func (vr *verifier) freshStem(stem string) string {
	vr.stems++
	return fmt.Sprintf("%s#s%d", stem, vr.stems)
}

func (vr *verifier) freshTyped(t types.Type, stem string) value {
	if t == nil {
		return opaqueVal()
	}
	if tup, ok := t.(*types.Tuple); ok {
		vs := make([]value, tup.Len())
		for i := range vs {
			vs[i] = vr.freshTyped(tup.At(i).Type(), fmt.Sprintf("%s.%d", stem, i))
		}
		return tupleVal(vs...)
	}
	switch {
	case isFloatType(t):
		return numVal(ratAtom(vr.at.fresh(stem, false)))
	case isIntType(t):
		return numVal(ratAtom(vr.at.fresh(stem, true)))
	case isBoolType(t):
		return value{kind: vBool, bAtom: vr.at.fresh("b:"+stem, false)}
	case isMeterType(t):
		return value{kind: vMeter, meter: vr.freshStem("meter:" + stem), bAtom: -1}
	case isErrorType(t):
		return errVal(triUnknown)
	}
	if tn := namedStruct(t); tn != nil {
		return structVal(tn, vr.freshStem(stem))
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return opaqueSlice(triUnknown)
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return value{kind: vStr, bAtom: -1}
		}
	}
	return opaqueVal()
}

func (vr *verifier) zeroValue(t types.Type) value {
	if t == nil {
		return opaqueVal()
	}
	switch {
	case isFloatType(t) || isIntType(t):
		return numVal(ratZero())
	case isBoolType(t):
		return boolConst(false)
	case isErrorType(t):
		return errVal(triFalse)
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nilVal()
	}
	if tn := namedStruct(t); tn != nil {
		return structVal(tn, "")
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return value{kind: vSlice, sum: ratZero(), sumKnown: true, nonNil: triFalse, bAtom: -1}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return strVal("")
		}
	case *types.Interface:
		return nilVal()
	}
	return opaqueVal()
}

// --- type predicates ---

func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUnsigned) != 0
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func isMeterType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Meter" && obj.Pkg() != nil && obj.Pkg().Path() == meterapi.PkgPath
}

// namedStruct returns the type name when t is a (pointer to a) named struct.
func namedStruct(t types.Type) *types.TypeName {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n.Obj()
}

// --- operators ---

func (vr *verifier) evalUnary(e *ast.UnaryExpr, st *state) []ev {
	switch e.Op {
	case token.AND, token.ADD:
		return vr.eval(e.X, st)
	case token.SUB:
		var out []ev
		for _, x := range vr.eval(e.X, st) {
			if x.v.kind == vNum {
				out = append(out, ev{v: numVal(ratNeg(x.v.r)), st: x.st})
			} else {
				out = append(out, ev{v: vr.memoValue(e, x.st), st: x.st})
			}
		}
		return out
	case token.NOT:
		var out []ev
		for _, x := range vr.eval(e.X, st) {
			if x.v.kind == vBool && x.v.bSet {
				out = append(out, ev{v: boolConst(!x.v.b), st: x.st})
			} else {
				out = append(out, ev{v: value{kind: vBool, bAtom: -1}, st: x.st})
			}
		}
		return out
	}
	var out []ev
	for _, x := range vr.eval(e.X, st) {
		out = append(out, ev{v: vr.memoValue(e, x.st), st: x.st})
	}
	return out
}

func (vr *verifier) evalBinary(e *ast.BinaryExpr, st *state) []ev {
	switch e.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		var out []ev
		for _, x := range vr.eval(e.X, st) {
			for _, y := range vr.eval(e.Y, x.st) {
				out = append(out, ev{v: vr.binNum(e.Op, x.v, y.v, e, y.st), st: y.st})
			}
		}
		return out
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR:
		// Comparison or logical op in value position: resolve via the
		// condition machinery, yielding a constant per specialized state.
		ts, fs := vr.cond(e, st)
		var out []ev
		for _, t := range ts {
			out = append(out, ev{v: boolConst(true), st: t})
		}
		for _, f := range fs {
			out = append(out, ev{v: boolConst(false), st: f})
		}
		return out
	}
	var out []ev
	for _, le := range vr.evalList([]ast.Expr{e.X, e.Y}, st) {
		out = append(out, ev{v: vr.memoValue(e, le.st), st: le.st})
	}
	return out
}

func (vr *verifier) binNum(op token.Token, x, y value, e ast.Node, st *state) value {
	if x.kind == vStr && y.kind == vStr && op == token.ADD {
		if x.sConst && y.sConst {
			return strVal(x.s + y.s)
		}
		return value{kind: vStr, bAtom: -1}
	}
	if x.kind != vNum || y.kind != vNum {
		var t types.Type
		if ex, ok := e.(ast.Expr); ok {
			if tv, ok := vr.pass.TypesInfo.Types[ex]; ok {
				t = tv.Type
			}
		}
		return vr.freshTyped(t, "bin")
	}
	intExpr := false
	if ex, ok := e.(ast.Expr); ok {
		if tv, ok := vr.pass.TypesInfo.Types[ex]; ok && tv.Type != nil {
			intExpr = isIntType(tv.Type)
		}
	}
	switch op {
	case token.ADD:
		return numVal(ratAdd(x.r, y.r))
	case token.SUB:
		return numVal(ratSub(x.r, y.r))
	case token.MUL:
		return numVal(ratMul(x.r, y.r))
	case token.QUO:
		if intExpr {
			return vr.intQuo(x.r, y.r, st)
		}
		if q, ok := ratDiv(x.r, y.r); ok {
			return q2num(q)
		}
		return numVal(ratAtom(vr.at.fresh("div0", false)))
	case token.REM:
		id := vr.at.fresh("rem", true)
		st.cons.addLower(id, 0, false, true)
		return numVal(ratAtom(id))
	}
	return opaqueVal()
}

func q2num(r rat) value { return numVal(r) }

// intQuo models integer division x/y as a fresh count, proving the bounds
// the budget math needs: >= 1 when x >= y > 0, else >= 0 when x >= 0.
func (vr *verifier) intQuo(x, y rat, st *state) value {
	// Exact case first: when y divides x symbolically, keep the quotient.
	if q, ok := ratDiv(x, y); ok {
		if c, isConst := q.isConst(); isConst && c.IsInt() {
			return numVal(q)
		}
	}
	id := vr.at.fresh("quot", true)
	xs := st.cons.substPoints(x, vr.at)
	ys := st.cons.substPoints(y, vr.at)
	if st.cons.cmpZero(ys, vr.at, ">") == triTrue &&
		st.cons.cmpZero(ratSub(xs, ys), vr.at, ">=") == triTrue {
		st.cons.addLower(id, 1, false, true)
	} else if st.cons.cmpZero(xs, vr.at, ">=") == triTrue {
		st.cons.addLower(id, 0, false, true)
	}
	return numVal(ratAtom(id))
}

func (vr *verifier) evalIndex(e *ast.IndexExpr, st *state) []ev {
	var out []ev
	for _, b := range vr.eval(e.X, st) {
		if b.v.kind == vLabels {
			for _, ix := range vr.eval(e.Index, b.st) {
				if ix.v.kind == vNum {
					out = append(out, ev{v: value{kind: vStr, family: b.v.family, famIdx: ix.v.r, famIdxOK: true}, st: ix.st})
				} else {
					out = append(out, ev{v: value{kind: vStr, bAtom: -1}, st: ix.st})
				}
			}
			continue
		}
		out = append(out, ev{v: vr.memoValue(e, b.st), st: b.st})
	}
	return out
}

func (vr *verifier) evalSlice(e *ast.SliceExpr, st *state) []ev {
	emptyHigh := false
	if e.High != nil {
		if tv, ok := vr.pass.TypesInfo.Types[e.High]; ok && tv.Value != nil {
			if c, ok := constant.Int64Val(tv.Value); ok && c == 0 {
				emptyHigh = e.Low == nil
			}
		}
	}
	var out []ev
	for _, b := range vr.eval(e.X, st) {
		v := b.v
		if emptyHigh {
			out = append(out, ev{v: sliceVal(ratZero()), st: b.st})
			continue
		}
		if v.kind == vSlice {
			v.sumKnown = false
		}
		out = append(out, ev{v: v, st: b.st})
	}
	return out
}

func (vr *verifier) evalAssert(e *ast.TypeAssertExpr, st *state) []ev {
	var out []ev
	for _, b := range vr.eval(e.X, st) {
		if b.v.kind == vStruct {
			out = append(out, ev{v: b.v, st: b.st})
			continue
		}
		key := "assert:" + types.ExprString(e)
		if v, ok := b.st.memo[key]; ok {
			out = append(out, ev{v: v, st: b.st})
			continue
		}
		var t types.Type
		if tv, ok := vr.pass.TypesInfo.Types[e]; ok {
			t = tv.Type
		}
		var v value
		if tn := namedStruct(t); tn != nil {
			v = structVal(tn, vr.freshStem(tn.Name()))
		} else {
			v = vr.freshTyped(t, "assert")
		}
		b.st.memo[key] = v
		out = append(out, ev{v: v, st: b.st})
	}
	return out
}

func (vr *verifier) evalComposite(e *ast.CompositeLit, st *state) []ev {
	var t types.Type
	if tv, ok := vr.pass.TypesInfo.Types[e]; ok {
		t = tv.Type
	}
	if tn := namedStruct(t); tn != nil {
		acc := []ev{{v: structVal(tn, ""), st: st}}
		for _, elt := range e.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return vr.positionalComposite(e, tn, st)
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			var next []ev
			for _, a := range acc {
				for _, x := range vr.eval(kv.Value, a.st) {
					next = append(next, ev{v: a.v.withField(key.Name, x.v), st: x.st})
				}
			}
			acc = next
		}
		return acc
	}
	if t != nil {
		if _, ok := t.Underlying().(*types.Slice); ok {
			sum := ratZero()
			known := true
			cur := []ev{{v: opaqueVal(), st: st}}
			for _, elt := range e.Elts {
				var next []ev
				for _, a := range cur {
					for _, x := range vr.eval(elt, a.st) {
						if x.v.kind == vNum {
							sum = ratAdd(sum, x.v.r)
						} else {
							known = false
						}
						next = append(next, ev{v: a.v, st: x.st})
					}
				}
				cur = next
			}
			var out []ev
			for _, a := range cur {
				if known {
					out = append(out, ev{v: sliceVal(sum), st: a.st})
				} else {
					out = append(out, ev{v: opaqueSlice(triTrue), st: a.st})
				}
			}
			return out
		}
	}
	return one(opaqueVal(), st)
}

func (vr *verifier) positionalComposite(e *ast.CompositeLit, tn *types.TypeName, st *state) []ev {
	str, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return one(structVal(tn, ""), st)
	}
	acc := []ev{{v: structVal(tn, ""), st: st}}
	for i, elt := range e.Elts {
		if i >= str.NumFields() {
			break
		}
		name := str.Field(i).Name()
		var next []ev
		for _, a := range acc {
			for _, x := range vr.eval(elt, a.st) {
				next = append(next, ev{v: a.v.withField(name, x.v), st: x.st})
			}
		}
		acc = next
	}
	return acc
}
