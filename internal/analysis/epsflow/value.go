package epsflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"math"
	"math/big"
	"sort"
)

// valueKind discriminates the abstract values the interpreter tracks.
type valueKind uint8

const (
	vOpaque valueKind = iota // unknown non-numeric value
	vNum                     // exact symbolic rational (rat)
	vSlice                   // []float64 budget slice: tracked symbolic sum
	vBool                    // boolean: known constant or symbolic atom
	vStr                     // string: constant label or label-table entry
	vNil                     // the untyped nil literal
	vErr                     // an error value with tracked nil-ness
	vMeter                   // a *noise.Meter: key into the path's meter table
	vStruct                  // a struct instance with tracked fields
	vFunc                    // a func value (ignored unless called)
	vTuple                   // a multi-value (call result / multi-return)
	vLabels                  // a precomputed label-table slice (labelTable)
)

// tri is three-valued truth.
type tri int8

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func triOf(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

// value is one abstract value. Exactly the fields for its kind are set.
type value struct {
	kind valueKind

	r rat // vNum

	// vSlice: symbolic sum of the elements; sumKnown=false means the sum is
	// unconstrained (an opaque data slice). nonNil tracks nil-ness for
	// Plan/Execute branch correlation.
	sum      rat
	sumKnown bool
	nonNil   tri

	// vBool
	b     bool
	bSet  bool // b is a known constant
	bAtom int  // symbolic bool atom when !bSet (-1 if absent)

	// vStr
	s        string
	sConst   bool
	family   string // label-table family ("split", "kd", ...)
	famIdx   rat    // symbolic index into the family
	famIdxOK bool

	// vErr
	errNonNil tri

	// vMeter
	meter string

	// vStruct
	typ      *types.TypeName
	fields   map[string]value
	lazyStem string // non-empty: unset fields materialize as named atoms

	// vTuple
	tuple []value

	// Delegated-plan contract: set on the opaque result of an unmodeled
	// `recv.Plan(..., eps)` call. Calling Execute with a meter on such a
	// value charges planEps sequentially — sound because epsflow verifies
	// every concrete Execute in the package charges exactly its plan's eps.
	planEps    rat
	planEpsSet bool

	poisonOnFalse bool // ExpMechGumbels result: branching false poisons
}

func tupleVal(vs ...value) value { return value{kind: vTuple, tuple: vs} }

func labelsVal(family string, n int) value {
	return value{kind: vLabels, family: family, nonNil: triTrue, sum: ratFloat(float64(n)), sumKnown: true}
}

func numVal(r rat) value     { return value{kind: vNum, r: r} }
func opaqueVal() value       { return value{kind: vOpaque, bAtom: -1} }
func nilVal() value          { return value{kind: vNil, nonNil: triFalse, errNonNil: triFalse} }
func boolConst(b bool) value { return value{kind: vBool, b: b, bSet: true, bAtom: -1} }
func strVal(s string) value  { return value{kind: vStr, s: s, sConst: true} }

func errVal(nonNil tri) value { return value{kind: vErr, errNonNil: nonNil} }

func sliceVal(sum rat) value {
	return value{kind: vSlice, sum: sum, sumKnown: true, nonNil: triTrue}
}

func opaqueSlice(nonNil tri) value {
	return value{kind: vSlice, nonNil: nonNil}
}

// structVal creates a struct instance. With lazyStem == "", absent fields
// read as their zero value (a composite literal); with a stem, absent fields
// materialize as named atoms "stem.field" (an unknown instance, e.g. the
// mechanism receiver — the interning makes Plan and Execute share them).
func structVal(tn *types.TypeName, lazyStem string) value {
	return value{kind: vStruct, typ: tn, fields: map[string]value{}, lazyStem: lazyStem, nonNil: triTrue}
}

// withField returns a copy of a struct value with one field replaced
// (values are treated immutably: paths own their variable maps, struct
// instances are shared until written).
func (v value) withField(name string, fv value) value {
	nf := make(map[string]value, len(v.fields)+1)
	for k, val := range v.fields {
		nf[k] = val
	}
	nf[name] = fv
	out := v
	out.fields = nf
	return out
}

// bound is one side of an interval constraint.
type bound struct {
	val    float64
	strict bool
	set    bool
}

// interval is the constraint on one numeric atom.
type interval struct {
	lo, hi bound
}

// point returns the single value the interval pins, if any (integral atoms
// tighten strict bounds first).
func (iv interval) point(integer bool) (*big.Rat, bool) {
	lo, hi := iv.lo, iv.hi
	if integer {
		if lo.set && lo.strict {
			lo.val = math.Floor(lo.val) + 1
			lo.strict = false
		} else if lo.set {
			lo.val = math.Ceil(lo.val)
		}
		if hi.set && hi.strict {
			hi.val = math.Ceil(hi.val) - 1
			hi.strict = false
		} else if hi.set {
			hi.val = math.Floor(hi.val)
		}
	}
	if lo.set && hi.set && !lo.strict && !hi.strict && lo.val == hi.val {
		r := new(big.Rat)
		r.SetFloat64(lo.val)
		return r, true
	}
	return nil, false
}

// empty reports an infeasible interval (contradictory path: prune).
func (iv interval) empty(integer bool) bool {
	lo, hi := iv.lo, iv.hi
	if !lo.set || !hi.set {
		return false
	}
	l, h := lo.val, hi.val
	if integer {
		if lo.strict {
			l = math.Floor(l) + 1
		} else {
			l = math.Ceil(l)
		}
		if hi.strict {
			h = math.Ceil(h) - 1
		} else {
			h = math.Floor(h)
		}
		return l > h
	}
	if l > h {
		return true
	}
	return l == h && (lo.strict || hi.strict)
}

// constraints is one path's knowledge: numeric atom intervals and boolean
// atom assignments. Copied on path forks.
type constraints struct {
	num  map[int]interval
	bool map[int]bool
}

func newConstraints() *constraints {
	return &constraints{num: map[int]interval{}, bool: map[int]bool{}}
}

func (c *constraints) clone() *constraints {
	out := newConstraints()
	for k, v := range c.num {
		out.num[k] = v
	}
	for k, v := range c.bool {
		out.bool[k] = v
	}
	return out
}

// addLower/addUpper tighten an atom's interval; they report false when the
// interval becomes empty (the path is contradictory).
func (c *constraints) addLower(id int, v float64, strict, integer bool) bool {
	iv := c.num[id]
	if !iv.lo.set || v > iv.lo.val || (v == iv.lo.val && strict && !iv.lo.strict) {
		iv.lo = bound{val: v, strict: strict, set: true}
	}
	c.num[id] = iv
	return !iv.empty(integer)
}

func (c *constraints) addUpper(id int, v float64, strict, integer bool) bool {
	iv := c.num[id]
	if !iv.hi.set || v < iv.hi.val || (v == iv.hi.val && strict && !iv.hi.strict) {
		iv.hi = bound{val: v, strict: strict, set: true}
	}
	c.num[id] = iv
	return !iv.empty(integer)
}

// substPoints substitutes every point-valued atom into r.
func (c *constraints) substPoints(r rat, at *atoms) rat {
	ids := make([]int, 0, len(c.num))
	for id := range c.num {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !r.hasAtom(id) {
			continue
		}
		if p, ok := c.num[id].point(at.isInt[id]); ok {
			r = r.substPoint(id, p)
		}
	}
	return r
}

// intervalOf evaluates the interval of a rat under the constraints. Only
// polynomials linear in constrained atoms produce useful bounds; anything
// else widens to (-inf, +inf).
func (c *constraints) intervalOf(r rat, at *atoms) (lo, hi float64, loS, hiS bool) {
	r = c.substPoints(r.normalize(), at)
	nlo, nhi, nls, nhs := c.polyInterval(r.num, at)
	if len(r.den) == 0 {
		return nlo, nhi, nls, nhs
	}
	for _, d := range r.den {
		dlo, dhi, _, _ := c.polyInterval(d, at)
		if dlo > 0 {
			continue // positive factor: sign preserved; magnitude unknown
		}
		if dhi < 0 { // negative factor flips the sign
			nlo, nhi = -nhi, -nlo
			nls, nhs = nhs, nls
			continue
		}
		return math.Inf(-1), math.Inf(1), true, true
	}
	// Division by positives keeps the sign but loses magnitude bounds.
	if nlo > 0 {
		return 0, math.Inf(1), true, true
	}
	if nhi < 0 {
		return math.Inf(-1), 0, true, true
	}
	if nlo >= 0 {
		return 0, math.Inf(1), nls && nlo == 0, true
	}
	if nhi <= 0 {
		return math.Inf(-1), 0, true, nhs && nhi == 0
	}
	return math.Inf(-1), math.Inf(1), true, true
}

func (c *constraints) polyInterval(p poly, at *atoms) (lo, hi float64, loS, hiS bool) {
	lo, hi = 0, 0
	for m, coef := range p {
		cf, _ := coef.Float64()
		mlo, mhi, mls, mhs := c.monoInterval(m, at)
		tlo, thi, tls, ths := mulInterval(cf, mlo, mhi, mls, mhs)
		lo, hi = lo+tlo, hi+thi
		loS, hiS = loS || tls, hiS || ths
	}
	return lo, hi, loS, hiS
}

func (c *constraints) monoInterval(m mono, at *atoms) (lo, hi float64, loS, hiS bool) {
	lo, hi = 1, 1
	for id, e := range decodeMono(m) {
		iv := c.num[id]
		alo, ahi := math.Inf(-1), math.Inf(1)
		als, ahs := true, true
		if iv.lo.set {
			alo, als = iv.lo.val, iv.lo.strict
		}
		if iv.hi.set {
			ahi, ahs = iv.hi.val, iv.hi.strict
		}
		if at.isInt[id] {
			if als && !math.IsInf(alo, 0) {
				alo, als = math.Floor(alo)+1, false
			}
			if ahs && !math.IsInf(ahi, 0) {
				ahi, ahs = math.Ceil(ahi)-1, false
			}
		}
		for i := 0; i < e; i++ {
			lo, hi, loS, hiS = intervalTimes(lo, hi, loS, hiS, alo, ahi, als, ahs)
		}
	}
	return lo, hi, loS, hiS
}

func mulInterval(c, lo, hi float64, loS, hiS bool) (float64, float64, bool, bool) {
	if c >= 0 {
		return c * lo, c * hi, loS, hiS
	}
	return c * hi, c * lo, hiS, loS
}

func intervalTimes(alo, ahi float64, als, ahs bool, blo, bhi float64, bls, bhs bool) (float64, float64, bool, bool) {
	type cand struct {
		v float64
		s bool
	}
	cands := []cand{
		{alo * blo, als || bls}, {alo * bhi, als || bhs},
		{ahi * blo, ahs || bls}, {ahi * bhi, ahs || bhs},
	}
	lo, hi := cands[0], cands[0]
	for _, cd := range cands[1:] {
		if cd.v < lo.v || (cd.v == lo.v && !cd.s) {
			lo = cd
		}
		if cd.v > hi.v || (cd.v == hi.v && !cd.s) {
			hi = cd
		}
	}
	return lo.v, hi.v, lo.s, hi.s
}

// cmpZero decides sign(r) op 0 under the constraints, or triUnknown.
func (c *constraints) cmpZero(r rat, at *atoms, op string) tri {
	lo, hi, loS, hiS := c.intervalOf(r, at)
	switch op {
	case ">":
		if lo > 0 || (lo == 0 && loS) {
			return triTrue
		}
		if hi < 0 || (hi == 0 && !hiS) {
			return triFalse
		}
	case ">=":
		if lo >= 0 {
			return triTrue
		}
		if hi < 0 || (hi == 0 && hiS) {
			return triFalse
		}
	case "<":
		if hi < 0 || (hi == 0 && hiS) {
			return triTrue
		}
		if lo > 0 || (lo == 0 && !loS) {
			return triFalse
		}
	case "<=":
		if hi <= 0 {
			return triTrue
		}
		if lo > 0 || (lo == 0 && loS) {
			return triFalse
		}
	case "==":
		if lo == 0 && hi == 0 && !loS && !hiS {
			return triTrue
		}
		if lo > 0 || hi < 0 || (lo == 0 && loS) || (hi == 0 && hiS) {
			return triFalse
		}
	case "!=":
		switch c.cmpZero(r, at, "==") {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
	}
	return triUnknown
}

// linearAtom decomposes r as c1*atom + c0 with constant coefficients and no
// denominator, enabling interval constraint extraction from comparisons.
func (r rat) linearAtom() (id int, c1, c0 *big.Rat, ok bool) {
	n := r.normalize()
	if len(n.den) != 0 {
		return 0, nil, nil, false
	}
	c0 = new(big.Rat)
	c1 = new(big.Rat)
	id = -1
	for m, c := range n.num {
		if m == monoOne {
			c0.Set(c)
			continue
		}
		exps := decodeMono(m)
		if len(exps) != 1 {
			return 0, nil, nil, false
		}
		for aid, e := range exps {
			if e != 1 || id != -1 {
				return 0, nil, nil, false
			}
			id = aid
			c1.Set(c)
		}
	}
	if id == -1 {
		return 0, nil, nil, false
	}
	return id, c1, c0, true
}

// chargeKey identifies one parallel-composition scope: a constant label, or
// a (family, symbolic index) entry of a precomputed label table.
type chargeKey struct {
	label  string
	family string
	idx    string // rendered famIdx, for map identity
}

// parEntry is one parallel scope's recorded charge.
type parEntry struct {
	amount rat
	fam    bool
	idx    rat // symbolic family index (fam only)
}

// meterState tracks the charges recorded against one meter (the root meter
// of an Execute call, or a sub-meter opened inside it).
type meterState struct {
	budget   rat  // the meter's total (eps for the root; Sub* argument)
	parallel bool // sub-meter composition kind at Close
	label    string
	parent   string // key of the meter Close charges into
	closed   bool
	isRoot   bool

	seq rat // sequential spends, summed

	// par maps each parallel scope to its per-scope amount (runtime
	// semantics: same-label parallel spends count once). famSum accumulates
	// index-ranged families (labels indexed by a loop variable: each index
	// is its own scope, so the scopes sum).
	par    map[chargeKey]parEntry
	parIdx []chargeKey // deterministic iteration order
	famSum rat
}

func newMeterState(budget rat, isRoot bool) *meterState {
	return &meterState{budget: budget, isRoot: isRoot, seq: ratZero(), famSum: ratZero(), par: map[chargeKey]parEntry{}}
}

func (ms *meterState) clone() *meterState {
	out := *ms
	out.par = make(map[chargeKey]parEntry, len(ms.par))
	for k, v := range ms.par {
		out.par[k] = v
	}
	out.parIdx = append([]chargeKey{}, ms.parIdx...)
	return &out
}

// total is the meter's recorded spend: sequential + each parallel scope once
// + the ranged families.
func (ms *meterState) total() rat {
	t := ratAdd(ms.seq, ms.famSum)
	for _, k := range ms.parIdx {
		t = ratAdd(t, ms.par[k].amount)
	}
	return t
}

// addSeq/addPar record charges. addPar reports a conflict when one scope
// sees two symbolically different amounts (branch-dependent parallel spend).
func (ms *meterState) addSeq(amount rat) { ms.seq = ratAdd(ms.seq, amount) }

func (ms *meterState) addPar(key chargeKey, e parEntry) (conflict bool) {
	if cur, ok := ms.par[key]; ok {
		return !ratEqual(cur.amount, e.amount)
	}
	ms.par[key] = e
	ms.parIdx = append(ms.parIdx, key)
	return false
}

func (ms *meterState) addFam(amount rat) { ms.famSum = ratAdd(ms.famSum, amount) }

// deferredOp is a deferred meter operation (only sub.Close is supported).
type deferredOp struct {
	meterKey string
}

// frame is one function activation during inlining: parameter/local values
// by object, plus the declared result objects (for bare returns) and the
// deferred closes to apply at function exit.
type frame struct {
	fn      *ast.FuncDecl
	vars    map[types.Object]value
	results []types.Object
	defers  []deferredOp
}

func (f *frame) clone() *frame {
	out := &frame{fn: f.fn, results: f.results}
	out.vars = make(map[types.Object]value, len(f.vars))
	for k, v := range f.vars {
		out.vars[k] = v
	}
	out.defers = append([]deferredOp{}, f.defers...)
	return out
}

// annEvent records a call to a //dp:spends-annotated function: instead of
// inlining, the annotation's value is charged at path end (parallel-annotated
// calls with identical annotation-relevant arguments fold to one charge,
// mirroring the runtime's parallel-composition dedup).
type annEvent struct {
	fn       types.Object
	meterKey string
	par      bool
	amount   rat
	argsKey  string
	pos      ast.Node
}

// state is one execution path: constraints, the frame stack, meters, and
// bookkeeping for exemption.
type state struct {
	cons   *constraints
	frames []*frame // innermost last
	meters map[string]*meterState
	mOrder []string

	poisoned bool // a meter op's failure branch was taken: audit-exempt

	annEvents []annEvent

	memo map[string]value // expression-string memo for opaque pure calls
}

func (s *state) clone() *state {
	out := &state{
		cons:      s.cons.clone(),
		meters:    make(map[string]*meterState, len(s.meters)),
		mOrder:    append([]string{}, s.mOrder...),
		poisoned:  s.poisoned,
		annEvents: append([]annEvent{}, s.annEvents...),
		memo:      make(map[string]value, len(s.memo)),
	}
	for _, f := range s.frames {
		out.frames = append(out.frames, f.clone())
	}
	for k, v := range s.meters {
		out.meters[k] = v.clone()
	}
	for k, v := range s.memo {
		out.memo[k] = v
	}
	return out
}

func (s *state) top() *frame { return s.frames[len(s.frames)-1] }

func (s *state) meterAt(key string) *meterState {
	if ms, ok := s.meters[key]; ok {
		return ms
	}
	ms := newMeterState(ratZero(), false)
	s.meters[key] = ms
	s.mOrder = append(s.mOrder, key)
	return ms
}

func (s *state) setMeter(key string, ms *meterState) {
	if _, ok := s.meters[key]; !ok {
		s.mOrder = append(s.mOrder, key)
	}
	s.meters[key] = ms
}

// lookup finds a variable in the innermost frame.
func (s *state) lookup(obj types.Object) (value, bool) {
	v, ok := s.top().vars[obj]
	return v, ok
}

func (s *state) assign(obj types.Object, v value) {
	if obj == nil {
		return
	}
	s.top().vars[obj] = v
	s.invalidateMemo(obj.Name())
}

// invalidateMemo drops memoized opaque-call results whose expression text
// mentions name as an identifier. Memo keys are expression strings, so after
// `w = ...` a cached `w.Size()` would replay the old receiver's value.
func (s *state) invalidateMemo(name string) {
	if name == "" || name == "_" {
		return
	}
	isIdent := func(b byte) bool {
		return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
	}
	for k := range s.memo {
		for i := 0; i+len(name) <= len(k); i++ {
			if k[i:i+len(name)] != name {
				continue
			}
			if i > 0 && isIdent(k[i-1]) {
				continue
			}
			if j := i + len(name); j < len(k) && isIdent(k[j]) {
				continue
			}
			delete(s.memo, k)
			break
		}
	}
}

// control says how a statement sequence ended on one path.
type control uint8

const (
	ctlFall control = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

// outcome is one resulting path of interpreting a statement sequence.
type outcome struct {
	st      *state
	ctl     control
	results []value  // ctlReturn: the returned values
	retPos  ast.Node // the return statement (diagnostic anchor)
}

func fmtChargeKey(k chargeKey) string {
	if k.family != "" {
		return fmt.Sprintf("%s[%s]", k.family, k.idx)
	}
	return fmt.Sprintf("%q", k.label)
}
