package epsflow

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

// TestEpsflow drives the analyzer over the fixture mechanisms: an exact-sum
// pass, an over-spend, an under-spend on an early-return path, a
// branch-asymmetric spend, an open loop closed by //dp:spends, and a wrong
// //dp:spends annotation being rejected.
func TestEpsflow(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"), "dpbench/internal/algo")
}
