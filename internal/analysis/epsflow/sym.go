package epsflow

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"
)

// The symbolic core: epsilon budgets are exact rational functions over a
// small set of interned atoms (the eps parameter, mechanism configuration
// fields, structure-derived counts). Polynomials keep exact *big.Rat
// coefficients so eps/2 + eps/2 closes to eps and rho*eps + (1-rho)*eps
// closes to eps with no floating-point slack; ratios keep their denominators
// as an unexpanded factor list so (k-1) * (eps1/(k-1)) cancels exactly by
// polynomial division even when k is opaque.

// atoms interns symbolic unknowns for one mechanism verification.
type atoms struct {
	names  []string
	isInt  []bool
	byName map[string]int
}

func newAtoms() *atoms { return &atoms{byName: map[string]int{}} }

// intern returns the id for name, creating the atom on first use.
func (a *atoms) intern(name string, integer bool) int {
	if id, ok := a.byName[name]; ok {
		return id
	}
	id := len(a.names)
	a.names = append(a.names, name)
	a.isInt = append(a.isInt, integer)
	a.byName[name] = id
	return id
}

// fresh interns a uniquely-numbered atom with the given stem.
func (a *atoms) fresh(stem string, integer bool) int {
	return a.intern(fmt.Sprintf("%s#%d", stem, len(a.names)), integer)
}

// mono is one monomial: atom id -> positive exponent, encoded canonically.
type mono string

const monoOne mono = ""

func encodeMono(exps map[int]int) mono {
	ids := make([]int, 0, len(exps))
	for id, e := range exps {
		if e != 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d^%d", id, exps[id])
	}
	return mono(b.String())
}

func decodeMono(m mono) map[int]int {
	exps := map[int]int{}
	if m == "" {
		return exps
	}
	for _, part := range strings.Split(string(m), ",") {
		var id, e int
		fmt.Sscanf(part, "%d^%d", &id, &e)
		exps[id] = e
	}
	return exps
}

func monoMul(a, b mono) mono {
	if a == monoOne {
		return b
	}
	if b == monoOne {
		return a
	}
	ea, eb := decodeMono(a), decodeMono(b)
	for id, e := range eb {
		ea[id] += e
	}
	return encodeMono(ea)
}

// monoDiv returns a/b when every exponent of b is covered by a.
func monoDiv(a, b mono) (mono, bool) {
	ea, eb := decodeMono(a), decodeMono(b)
	for id, e := range eb {
		ea[id] -= e
		if ea[id] < 0 {
			return monoOne, false
		}
	}
	return encodeMono(ea), true
}

// poly is a multivariate polynomial with exact rational coefficients.
type poly map[mono]*big.Rat

func polyConst(r *big.Rat) poly {
	if r.Sign() == 0 {
		return poly{}
	}
	return poly{monoOne: new(big.Rat).Set(r)}
}

func polyFloat(f float64) poly {
	r := new(big.Rat)
	r.SetFloat64(f)
	return polyConst(r)
}

func polyAtom(id int) poly {
	return poly{encodeMono(map[int]int{id: 1}): big.NewRat(1, 1)}
}

func (p poly) clone() poly {
	out := make(poly, len(p))
	for m, c := range p {
		out[m] = new(big.Rat).Set(c)
	}
	return out
}

func (p poly) isZero() bool { return len(p) == 0 }

// isConst reports whether p is a constant, returning it.
func (p poly) isConst() (*big.Rat, bool) {
	switch len(p) {
	case 0:
		return new(big.Rat), true
	case 1:
		if c, ok := p[monoOne]; ok {
			return c, true
		}
	}
	return nil, false
}

func polyAdd(a, b poly) poly {
	out := a.clone()
	for m, c := range b {
		if cur, ok := out[m]; ok {
			cur.Add(cur, c)
			if cur.Sign() == 0 {
				delete(out, m)
			}
		} else {
			out[m] = new(big.Rat).Set(c)
		}
	}
	return out
}

func polyNeg(a poly) poly {
	out := make(poly, len(a))
	for m, c := range a {
		out[m] = new(big.Rat).Neg(c)
	}
	return out
}

func polySub(a, b poly) poly { return polyAdd(a, polyNeg(b)) }

func polyMul(a, b poly) poly {
	out := poly{}
	for ma, ca := range a {
		for mb, cb := range b {
			m := monoMul(ma, mb)
			c := new(big.Rat).Mul(ca, cb)
			if cur, ok := out[m]; ok {
				cur.Add(cur, c)
				if cur.Sign() == 0 {
					delete(out, m)
				}
			} else if c.Sign() != 0 {
				out[m] = c
			}
		}
	}
	return out
}

func polyScale(a poly, c *big.Rat) poly {
	if c.Sign() == 0 {
		return poly{}
	}
	out := make(poly, len(a))
	for m, co := range a {
		out[m] = new(big.Rat).Mul(co, c)
	}
	return out
}

func polyEqual(a, b poly) bool { return polySub(a, b).isZero() }

// monos returns the monomials in canonical (lexicographic key) order.
func (p poly) monos() []mono {
	out := make([]mono, 0, len(p))
	for m := range p {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return monoLess(out[i], out[j]) })
	return out
}

// monoLess orders by total degree then key, giving a deterministic leading
// term for division and rendering.
func monoLess(a, b mono) bool {
	da, db := monoDeg(a), monoDeg(b)
	if da != db {
		return da > db
	}
	return a < b
}

func monoDeg(m mono) int {
	d := 0
	for _, e := range decodeMono(m) {
		d += e
	}
	return d
}

// polyExactDiv divides a by b exactly, or reports failure. Standard
// leading-term long division under the graded ordering; every divisor the
// analyzer meets is small (a trip count or budget split), so no care about
// performance is needed.
func polyExactDiv(a, b poly) (poly, bool) {
	if b.isZero() {
		return nil, false
	}
	rem := a.clone()
	quot := poly{}
	bm := b.monos()
	lead := bm[0]
	leadC := b[lead]
	for guard := 0; !rem.isZero(); guard++ {
		if guard > 256 {
			return nil, false
		}
		rm := rem.monos()
		q, ok := monoDiv(rm[0], lead)
		if !ok {
			return nil, false
		}
		c := new(big.Rat).Quo(rem[rm[0]], leadC)
		term := poly{q: c}
		quot = polyAdd(quot, term)
		rem = polySub(rem, polyMul(term, b))
	}
	return quot, true
}

// hasAtom reports whether atom id occurs in p.
func (p poly) hasAtom(id int) bool {
	for m := range p {
		if _, ok := decodeMono(m)[id]; ok {
			return true
		}
	}
	return false
}

// substPoint replaces atom id with a constant.
func (p poly) substPoint(id int, v *big.Rat) poly {
	out := poly{}
	for m, c := range p {
		exps := decodeMono(m)
		e, ok := exps[id]
		nc := new(big.Rat).Set(c)
		if ok {
			delete(exps, id)
			for i := 0; i < e; i++ {
				nc.Mul(nc, v)
			}
		}
		nm := encodeMono(exps)
		if cur, has := out[nm]; has {
			cur.Add(cur, nc)
			if cur.Sign() == 0 {
				delete(out, nm)
			}
		} else if nc.Sign() != 0 {
			out[nm] = nc
		}
	}
	return out
}

// rat is an exact rational function: num / product(den factors). Denominator
// factors are kept unexpanded and monic-normalized so symbolic trip counts
// cancel against symbolic budget splits.
type rat struct {
	num poly
	den []poly
}

func ratZero() rat               { return rat{num: poly{}} }
func ratFromPoly(p poly) rat     { return rat{num: p} }
func ratFloat(f float64) rat     { return rat{num: polyFloat(f)} }
func ratAtom(id int) rat         { return rat{num: polyAtom(id)} }
func (r rat) isZero() bool       { return r.num.isZero() }
func (r rat) isPolynomial() bool { return len(r.den) == 0 }

func (r rat) clone() rat {
	out := rat{num: r.num.clone()}
	for _, d := range r.den {
		out.den = append(out.den, d.clone())
	}
	return out
}

// normalize makes each denominator factor monic (leading coefficient 1 under
// the graded order), folding the content into the numerator, then cancels
// factors that divide the numerator exactly.
func (r rat) normalize() rat {
	num := r.num.clone()
	var den []poly
	for _, d := range r.den {
		if c, ok := d.isConst(); ok {
			if c.Sign() == 0 {
				// Division by an identically-zero factor: keep it so the
				// result never silently pretends to be finite; callers treat
				// any zero den factor as an evaluation failure.
				den = append(den, d.clone())
				continue
			}
			num = polyScale(num, new(big.Rat).Inv(c))
			continue
		}
		lead := d.monos()[0]
		lc := new(big.Rat).Set(d[lead])
		monic := polyScale(d, new(big.Rat).Inv(lc))
		num = polyScale(num, new(big.Rat).Inv(lc))
		den = append(den, monic)
	}
	// Cancel factors dividing the numerator.
	var kept []poly
	for _, d := range den {
		if q, ok := polyExactDiv(num, d); ok {
			num = q
			continue
		}
		kept = append(kept, d)
	}
	if num.isZero() {
		kept = nil
	}
	return rat{num: num, den: kept}
}

func (r rat) denProduct() poly {
	out := polyFloat(1)
	for _, d := range r.den {
		out = polyMul(out, d)
	}
	return out
}

func ratAdd(a, b rat) rat {
	num := polyAdd(polyMul(a.num, b.denProduct()), polyMul(b.num, a.denProduct()))
	den := append(append([]poly{}, a.den...), b.den...)
	return rat{num: num, den: den}.normalize()
}

func ratNeg(a rat) rat { return rat{num: polyNeg(a.num), den: a.den} }

func ratSub(a, b rat) rat { return ratAdd(a, ratNeg(b)) }

func ratMul(a, b rat) rat {
	return rat{num: polyMul(a.num, b.num), den: append(append([]poly{}, a.den...), b.den...)}.normalize()
}

// ratDiv divides; dividing by a symbolically-zero value fails.
func ratDiv(a, b rat) (rat, bool) {
	if b.num.isZero() {
		return ratZero(), false
	}
	num := polyMul(a.num, b.denProduct())
	den := append(append([]poly{}, a.den...), b.num)
	return rat{num: num, den: den}.normalize(), true
}

// ratEqual tests exact symbolic equality by cross-multiplication.
func ratEqual(a, b rat) bool {
	return polyEqual(polyMul(a.num, b.denProduct()), polyMul(b.num, a.denProduct()))
}

func (r rat) hasAtom(id int) bool {
	if r.num.hasAtom(id) {
		return true
	}
	for _, d := range r.den {
		if d.hasAtom(id) {
			return true
		}
	}
	return false
}

// isConst reports whether r is a constant.
func (r rat) isConst() (*big.Rat, bool) {
	rn := r.normalize()
	if len(rn.den) != 0 {
		return nil, false
	}
	return rn.num.isConst()
}

// substPoint replaces a point-valued atom throughout.
func (r rat) substPoint(id int, v *big.Rat) rat {
	out := rat{num: r.num.substPoint(id, v)}
	for _, d := range r.den {
		out.den = append(out.den, d.substPoint(id, v))
	}
	return out.normalize()
}

// render gives a deterministic human-readable form for diagnostics.
func (r rat) render(at *atoms) string {
	n := r.normalize()
	num := n.num.render(at)
	if len(n.den) == 0 {
		return num
	}
	parts := make([]string, 0, len(n.den))
	for _, d := range n.den {
		parts = append(parts, "("+d.render(at)+")")
	}
	return "(" + num + ")/" + strings.Join(parts, "")
}

func (p poly) render(at *atoms) string {
	if p.isZero() {
		return "0"
	}
	var b strings.Builder
	for i, m := range p.monos() {
		c := p[m]
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		switch {
		case i == 0 && neg:
			b.WriteString("-")
		case i > 0 && neg:
			b.WriteString(" - ")
		case i > 0:
			b.WriteString(" + ")
		}
		coefOne := abs.Cmp(big.NewRat(1, 1)) == 0
		if m == monoOne {
			b.WriteString(ratString(abs))
			continue
		}
		if !coefOne {
			b.WriteString(ratString(abs))
			b.WriteString("*")
		}
		exps := decodeMono(m)
		ids := make([]int, 0, len(exps))
		for id := range exps {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for j, id := range ids {
			if j > 0 {
				b.WriteString("*")
			}
			b.WriteString(at.names[id])
			if exps[id] > 1 {
				b.WriteString("^" + strconv.Itoa(exps[id]))
			}
		}
	}
	return b.String()
}

// ratString renders a big.Rat compactly (integers without denominator).
func ratString(r *big.Rat) string {
	if r.IsInt() {
		return r.Num().String()
	}
	return r.String()
}
