package epsflow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/big"
	"sort"
	"strings"

	"dpbench/internal/analysis"
)

// verifier holds the per-package machinery shared by every mechanism
// verification: the atom table, declaration/annotation indexes, and the path
// budget bounding the symbolic exploration.
type verifier struct {
	pass     *analysis.Pass
	at       *atoms
	decls    map[types.Object]*ast.FuncDecl
	touches  map[types.Object]bool // funcs that (transitively) charge a meter
	families map[types.Object]value
	spendFn  map[types.Object]*spendAnno
	spendFor map[ast.Stmt]*spendAnno

	epsID  int // atom id of the mechanism's declared budget parameter
	budget int // fork budget for the current verification
	depth  int // inline depth
	stems  int // unique lazy-struct stem counter

	// inlining marks declarations on the inline stack, so recursion is
	// detected (and handled) rather than burning the depth budget.
	inlining map[*ast.FuncDecl]bool

	// induct is non-nil while inductively checking that annotated function:
	// recursive calls to it are evented, not inlined.
	induct types.Object

	reported map[string]bool
	mech     string // current mechanism name, for messages
}

// abortError unwinds one mechanism verification that cannot proceed.
type abortError struct {
	pos token.Pos
	msg string
}

func (vr *verifier) abort(n ast.Node, format string, args ...any) {
	pos := token.NoPos
	if n != nil {
		pos = n.Pos()
	}
	panic(abortError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (vr *verifier) tick(n ast.Node) {
	vr.budget--
	if vr.budget <= 0 {
		vr.abort(n, "path budget exhausted exploring %s (symbolic path explosion)", vr.mech)
	}
}

// report emits a finding once per (position, message).
func (vr *verifier) report(n ast.Node, format string, args ...any) {
	pos := token.NoPos
	if n != nil {
		pos = n.Pos()
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d|%s", pos, msg)
	if vr.reported[key] {
		return
	}
	vr.reported[key] = true
	vr.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

func falls(outs []outcome) []*state {
	var sts []*state
	for _, o := range outs {
		if o.ctl == ctlFall {
			sts = append(sts, o.st)
		}
	}
	return sts
}

// block interprets a statement list, threading every live path through each
// statement in turn.
func (vr *verifier) block(list []ast.Stmt, st *state) []outcome {
	var outs []outcome
	frontier := []*state{st}
	for _, s := range list {
		var next []*state
		for _, f := range frontier {
			for _, o := range vr.stmt(s, f) {
				if o.ctl == ctlFall {
					next = append(next, o.st)
				} else {
					outs = append(outs, o)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return outs
		}
	}
	for _, f := range frontier {
		outs = append(outs, outcome{st: f, ctl: ctlFall})
	}
	return outs
}

func fallOut(st *state) []outcome { return []outcome{{st: st, ctl: ctlFall}} }

func (vr *verifier) stmt(s ast.Stmt, st *state) []outcome {
	switch s := s.(type) {
	case nil:
		return fallOut(st)
	case *ast.EmptyStmt:
		return fallOut(st)
	case *ast.BlockStmt:
		return vr.block(s.List, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				// A panicking path never reaches the audit: mark it exempt.
				st.poisoned = true
				return []outcome{{st: st, ctl: ctlReturn, retPos: s}}
			}
		}
		var outs []outcome
		for _, e := range vr.eval(s.X, st) {
			outs = append(outs, outcome{st: e.st, ctl: ctlFall})
		}
		return outs
	case *ast.AssignStmt:
		return vr.assignStmt(s, st)
	case *ast.IncDecStmt:
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		var outs []outcome
		for _, e := range vr.eval(s.X, st) {
			nv := vr.binNum(op, e.v, numVal(ratFloat(1)), s, e.st)
			vr.assignTo(s.X, nv, e.st)
			outs = append(outs, outcome{st: e.st, ctl: ctlFall})
		}
		return outs
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return fallOut(st)
		}
		sts := []*state{st}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var next []*state
			for _, s0 := range sts {
				next = append(next, vr.declVars(vs, s0)...)
			}
			sts = next
		}
		var outs []outcome
		for _, s0 := range sts {
			outs = append(outs, outcome{st: s0, ctl: ctlFall})
		}
		return outs
	case *ast.IfStmt:
		if vr.chargeGuard(s) {
			// The charge-if-positive idiom `if x > 0 { m.Charge(label, x) }`:
			// charge x unconditionally instead of forking. When x == 0 the
			// runtime charge is a no-op and the model's +0 agrees; a negative
			// x fails the meter at runtime, so that path never reaches the
			// audit and its mislabeled total is unobservable.
			return vr.block(s.Body.List, st)
		}
		if vr.collapseClamp(s, st) {
			// Charge-free clamp on eps-free locals: forget the clamped
			// variables instead of forking. Grid-style code clamps per cell;
			// forking each clamp multiplies paths without ever touching the
			// budget.
			return fallOut(st)
		}
		sts := []*state{st}
		if s.Init != nil {
			sts = falls(vr.stmt(s.Init, st))
		}
		var outs []outcome
		for _, s0 := range sts {
			ts, fs := vr.cond(s.Cond, s0)
			if len(ts)+len(fs) > 1 {
				vr.tick(s)
			}
			for _, t := range ts {
				outs = append(outs, vr.block(s.Body.List, t)...)
			}
			for _, f := range fs {
				if s.Else != nil {
					outs = append(outs, vr.stmt(s.Else, f)...)
				} else {
					outs = append(outs, outcome{st: f, ctl: ctlFall})
				}
			}
		}
		return outs
	case *ast.ReturnStmt:
		return vr.returnStmt(s, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				vr.abort(s, "labeled break is not supported")
			}
			return []outcome{{st: st, ctl: ctlBreak}}
		case token.CONTINUE:
			if s.Label != nil {
				vr.abort(s, "labeled continue is not supported")
			}
			return []outcome{{st: st, ctl: ctlContinue}}
		default:
			vr.abort(s, "%s is not supported", s.Tok)
		}
	case *ast.ForStmt:
		return vr.forStmt(s, st)
	case *ast.RangeStmt:
		return vr.rangeStmt(s, st)
	case *ast.DeferStmt:
		return vr.deferStmt(s, st)
	case *ast.SwitchStmt:
		return vr.switchStmt(s, st)
	case *ast.TypeSwitchStmt, *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt, *ast.LabeledStmt:
		if vr.touchesNode(s) {
			vr.abort(s, "unsupported statement with budget charges")
		}
		vr.havocAssigned(s, st)
		return fallOut(st)
	}
	if vr.touchesNode(s) {
		vr.abort(s, "unsupported statement with budget charges")
	}
	return fallOut(st)
}

func (vr *verifier) declVars(vs *ast.ValueSpec, st *state) []*state {
	if len(vs.Values) == 0 {
		for _, name := range vs.Names {
			obj := vr.pass.TypesInfo.Defs[name]
			if obj != nil {
				st.assign(obj, vr.zeroValue(obj.Type()))
			}
		}
		return []*state{st}
	}
	var sts []*state
	for _, le := range vr.evalList(vs.Values, st) {
		vals := le.vals
		if len(vs.Names) > 1 && len(vals) == 1 && vals[0].kind == vTuple {
			vals = vals[0].tuple
		}
		for i, name := range vs.Names {
			obj := vr.pass.TypesInfo.Defs[name]
			if obj == nil || i >= len(vals) {
				continue
			}
			le.st.assign(obj, vals[i])
		}
		sts = append(sts, le.st)
	}
	return sts
}

func (vr *verifier) assignStmt(a *ast.AssignStmt, st *state) []outcome {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		// x op= e
		op := assignOpToken(a.Tok)
		var outs []outcome
		for _, l := range vr.eval(a.Lhs[0], st) {
			for _, r := range vr.eval(a.Rhs[0], l.st) {
				nv := vr.binNum(op, l.v, r.v, a, r.st)
				vr.assignTo(a.Lhs[0], nv, r.st)
				outs = append(outs, outcome{st: r.st, ctl: ctlFall})
			}
		}
		return outs
	}
	var outs []outcome
	if len(a.Rhs) == 1 {
		for _, e := range vr.eval(a.Rhs[0], st) {
			vals := []value{e.v}
			if len(a.Lhs) > 1 {
				if e.v.kind == vTuple {
					vals = e.v.tuple
				} else {
					vals = nil
					for range a.Lhs {
						vals = append(vals, opaqueVal())
					}
				}
			}
			for i, lhs := range a.Lhs {
				if i < len(vals) {
					vr.assignTo(lhs, vals[i], e.st)
				}
			}
			outs = append(outs, outcome{st: e.st, ctl: ctlFall})
		}
		return outs
	}
	for _, le := range vr.evalList(a.Rhs, st) {
		for i, lhs := range a.Lhs {
			if i < len(le.vals) {
				vr.assignTo(lhs, le.vals[i], le.st)
			}
		}
		outs = append(outs, outcome{st: le.st, ctl: ctlFall})
	}
	return outs
}

func assignOpToken(t token.Token) token.Token {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	}
	return token.ADD
}

// assignTo writes v into an lvalue expression.
func (vr *verifier) assignTo(lhs ast.Expr, v value, st *state) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := vr.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = vr.pass.TypesInfo.Uses[lhs]
		}
		st.assign(obj, v)
	case *ast.ParenExpr:
		vr.assignTo(lhs.X, v, st)
	case *ast.StarExpr:
		vr.assignTo(lhs.X, v, st)
	case *ast.SelectorExpr:
		vr.setField(lhs, v, st)
	case *ast.IndexExpr:
		// Writing one element loses the tracked sum of the base slice.
		evs := vr.eval(lhs.X, st)
		if len(evs) == 1 && evs[0].v.kind == vSlice {
			nv := evs[0].v
			nv.sumKnown = false
			vr.assignTo(lhs.X, nv, st)
		}
	}
}

func (vr *verifier) setField(sel *ast.SelectorExpr, v value, st *state) {
	evs := vr.eval(sel.X, st)
	if len(evs) != 1 {
		return
	}
	b := evs[0].v
	if b.kind != vStruct {
		return
	}
	vr.assignTo(sel.X, b.withField(sel.Sel.Name, v), st)
}

func (vr *verifier) returnStmt(s *ast.ReturnStmt, st *state) []outcome {
	fr := st.top()
	if len(s.Results) == 0 {
		vals := make([]value, len(fr.results))
		for i, o := range fr.results {
			if v, ok := st.lookup(o); ok {
				vals[i] = v
			} else {
				vals[i] = vr.zeroValue(o.Type())
			}
		}
		return []outcome{{st: st, ctl: ctlReturn, results: vals, retPos: s}}
	}
	var outs []outcome
	for _, le := range vr.evalList(s.Results, st) {
		vals := le.vals
		if len(vals) == 1 && vals[0].kind == vTuple && len(fr.results) != 1 {
			vals = vals[0].tuple
		}
		outs = append(outs, outcome{st: le.st, ctl: ctlReturn, results: vals, retPos: s})
	}
	return outs
}

func (vr *verifier) deferStmt(s *ast.DeferStmt, st *state) []outcome {
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		if name, ok := meterMethodName(vr.pass.TypesInfo, s.Call); ok {
			switch name {
			case "SetSampler", "Release":
				// Void and charge-free: budget-irrelevant whenever they run.
				return fallOut(st)
			case "Close":
			default:
				vr.abort(s, "deferred meter operation %s is not supported (only Close)", name)
			}
			evs := vr.eval(sel.X, st)
			if len(evs) != 1 || evs[0].v.kind != vMeter {
				vr.abort(s, "cannot resolve deferred Close receiver")
			}
			st.top().defers = append(st.top().defers, deferredOp{meterKey: evs[0].v.meter})
			return fallOut(st)
		}
	}
	if vr.touchesNode(s.Call) {
		vr.abort(s, "deferred call with budget charges is not supported")
	}
	return fallOut(st)
}

// applyDefers runs the frame's deferred sub-meter closes at function exit.
func (vr *verifier) applyDefers(fr *frame, st *state, at ast.Node) {
	for i := len(fr.defers) - 1; i >= 0; i-- {
		vr.closeMeter(fr.defers[i].meterKey, st, at)
	}
}

func (vr *verifier) switchStmt(s *ast.SwitchStmt, st *state) []outcome {
	sts := []*state{st}
	if s.Init != nil {
		sts = falls(vr.stmt(s.Init, st))
	}
	var outs []outcome
	for _, s0 := range sts {
		outs = append(outs, vr.switchCases(s, s0)...)
	}
	// break inside a switch terminates the switch, not a loop
	for i, o := range outs {
		if o.ctl == ctlBreak {
			outs[i] = outcome{st: o.st, ctl: ctlFall}
		}
	}
	return outs
}

func (vr *verifier) switchCases(s *ast.SwitchStmt, st *state) []outcome {
	var outs []outcome
	rest := []*state{st}
	var deflt *ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		var next []*state
		for _, s0 := range rest {
			// A state that fails every expression of this clause continues to
			// the next clause; any matching expression runs the body.
			cur := []*state{s0}
			for _, ce := range cc.List {
				var rem []*state
				for _, c0 := range cur {
					var ts, fs []*state
					if s.Tag != nil {
						ts, fs = vr.condEq(s.Tag, ce, c0, true)
					} else {
						ts, fs = vr.cond(ce, c0)
					}
					for _, t := range ts {
						outs = append(outs, vr.block(cc.Body, t)...)
					}
					rem = append(rem, fs...)
				}
				cur = rem
			}
			next = append(next, cur...)
		}
		rest = next
	}
	for _, s0 := range rest {
		if deflt != nil {
			outs = append(outs, vr.block(deflt.Body, s0)...)
		} else {
			outs = append(outs, outcome{st: s0, ctl: ctlFall})
		}
	}
	return outs
}

// --- conditions ---

// cond evaluates a branch condition, returning the specialized true-branch
// and false-branch states (each list possibly empty when decided or pruned).
func (vr *verifier) cond(e ast.Expr, st *state) (ts, fs []*state) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return vr.cond(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			fs, ts = vr.cond(e.X, st)
			return ts, fs
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			ts1, fs1 := vr.cond(e.X, st)
			fs = append(fs, fs1...)
			for _, t := range ts1 {
				ts2, fs2 := vr.cond(e.Y, t)
				ts = append(ts, ts2...)
				fs = append(fs, fs2...)
			}
			return ts, fs
		case token.LOR:
			ts1, fs1 := vr.cond(e.X, st)
			ts = append(ts, ts1...)
			for _, f := range fs1 {
				ts2, fs2 := vr.cond(e.Y, f)
				ts = append(ts, ts2...)
				fs = append(fs, fs2...)
			}
			return ts, fs
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return vr.condCmp(e, st)
		}
	}
	// A bare boolean expression (variable, call, field).
	for _, ev := range vr.eval(e, st) {
		t2, f2 := vr.boolBranch(ev.v, ev.st)
		ts = append(ts, t2...)
		fs = append(fs, f2...)
	}
	return ts, fs
}

func (vr *verifier) boolBranch(v value, st *state) (ts, fs []*state) {
	if v.kind == vBool && v.bSet {
		if v.b {
			return []*state{st}, nil
		}
		return nil, []*state{st}
	}
	if v.kind == vBool && v.bAtom >= 0 {
		if val, ok := st.cons.bool[v.bAtom]; ok {
			if val {
				return []*state{st}, nil
			}
			return nil, []*state{st}
		}
		fSt := st.clone()
		st.cons.bool[v.bAtom] = true
		fSt.cons.bool[v.bAtom] = false
		if v.poisonOnFalse {
			fSt.poisoned = true
		}
		return []*state{st}, []*state{fSt}
	}
	fSt := st.clone()
	if v.poisonOnFalse {
		fSt.poisoned = true
	}
	return []*state{st}, []*state{fSt}
}

func (vr *verifier) condCmp(e *ast.BinaryExpr, st *state) (ts, fs []*state) {
	for _, xe := range vr.eval(e.X, st) {
		for _, ye := range vr.eval(e.Y, xe.st) {
			t2, f2 := vr.decide(e.Op, e.X, xe.v, e.Y, ye.v, ye.st)
			ts = append(ts, t2...)
			fs = append(fs, f2...)
		}
	}
	return ts, fs
}

// condEq handles a synthesized tag == caseExpr comparison for switches.
func (vr *verifier) condEq(x, y ast.Expr, st *state, eq bool) (ts, fs []*state) {
	for _, xe := range vr.eval(x, st) {
		for _, ye := range vr.eval(y, xe.st) {
			op := token.EQL
			if !eq {
				op = token.NEQ
			}
			t2, f2 := vr.decide(op, x, xe.v, y, ye.v, ye.st)
			ts = append(ts, t2...)
			fs = append(fs, f2...)
		}
	}
	return ts, fs
}

func nonNilOf(v value) tri {
	switch v.kind {
	case vNil:
		return triFalse
	case vErr:
		return v.errNonNil
	case vSlice, vStruct, vLabels:
		return v.nonNil
	case vMeter:
		return triTrue
	}
	return triUnknown
}

func (vr *verifier) decide(op token.Token, xe ast.Expr, x value, ye ast.Expr, y value, st *state) (ts, fs []*state) {
	one := func(truth bool) ([]*state, []*state) {
		if truth {
			return []*state{st}, nil
		}
		return nil, []*state{st}
	}
	// nil comparisons
	if x.kind == vNil || y.kind == vNil {
		other, otherExpr := x, xe
		if x.kind == vNil {
			other, otherExpr = y, ye
		}
		nn := nonNilOf(other)
		// x == nil is true iff the value is nil (nonNil false)
		if nn != triUnknown {
			isNil := nn == triFalse
			if op == token.EQL {
				return one(isNil)
			}
			return one(!isNil)
		}
		nilSt, nonNilSt := st, st.clone()
		vr.rebindNilness(otherExpr, other, false, nilSt)
		vr.rebindNilness(otherExpr, other, true, nonNilSt)
		if op == token.EQL {
			return []*state{nilSt}, []*state{nonNilSt}
		}
		return []*state{nonNilSt}, []*state{nilSt}
	}
	// numeric comparisons
	if x.kind == vNum && y.kind == vNum {
		d := st.cons.substPoints(ratSub(x.r, y.r), vr.at)
		sym := cmpOpString(op)
		switch st.cons.cmpZero(d, vr.at, sym) {
		case triTrue:
			return one(true)
		case triFalse:
			return one(false)
		}
		fSt := st.clone()
		ts, fs = nil, nil
		if vr.assume(st, d, sym) {
			ts = append(ts, st)
		}
		if vr.assume(fSt, d, negCmp(sym)) {
			fs = append(fs, fSt)
		}
		return ts, fs
	}
	// string equality
	if x.kind == vStr && y.kind == vStr && x.sConst && y.sConst && (op == token.EQL || op == token.NEQ) {
		return one((x.s == y.s) == (op == token.EQL))
	}
	// booleans compared to constants
	if x.kind == vBool && y.kind == vBool && x.bSet && y.bSet && (op == token.EQL || op == token.NEQ) {
		return one((x.b == y.b) == (op == token.EQL))
	}
	// undecidable: fork without constraints
	return []*state{st}, []*state{st.clone()}
}

// rebindNilness strengthens an lvalue's nil-ness after a nil comparison.
func (vr *verifier) rebindNilness(e ast.Expr, v value, nonNil bool, st *state) {
	nv := v
	switch v.kind {
	case vErr:
		nv.errNonNil = triOf(nonNil)
	case vSlice, vLabels:
		nv.nonNil = triOf(nonNil)
		if !nonNil {
			nv.sum = ratZero()
			nv.sumKnown = true
		}
	case vStruct:
		if !nonNil {
			nv = nilVal()
		} else {
			nv.nonNil = triTrue
		}
	case vOpaque:
		if !nonNil {
			nv = nilVal()
		}
	default:
		return
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		vr.assignTo(e, nv, st)
	}
}

func cmpOpString(op token.Token) string {
	switch op {
	case token.LSS:
		return "<"
	case token.LEQ:
		return "<="
	case token.GTR:
		return ">"
	case token.GEQ:
		return ">="
	case token.EQL:
		return "=="
	}
	return "!="
}

func negCmp(op string) string {
	switch op {
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	case "==":
		return "!="
	}
	return "=="
}

// assume records "d op 0" into the state's constraints when d is linear in a
// single atom; it reports false when the constraint is infeasible.
func (vr *verifier) assume(st *state, d rat, op string) bool {
	id, c1, c0, ok := d.linearAtom()
	if !ok {
		return true // unconstrainable, keep the path
	}
	// c1*a + c0 op 0  ==>  a op' b  with b = -c0/c1
	b := new(big.Rat).Neg(c0)
	b.Quo(b, c1)
	bf, _ := b.Float64()
	flip := c1.Sign() < 0
	integer := vr.at.isInt[id]
	apply := func(o string) bool {
		switch o {
		case "<":
			return st.cons.addUpper(id, bf, true, integer)
		case "<=":
			return st.cons.addUpper(id, bf, false, integer)
		case ">":
			return st.cons.addLower(id, bf, true, integer)
		case ">=":
			return st.cons.addLower(id, bf, false, integer)
		case "==":
			return st.cons.addLower(id, bf, false, integer) && st.cons.addUpper(id, bf, false, integer)
		case "!=":
			// For integers, excluding an endpoint tightens the interval:
			// k >= 0 && k != 0 gives k >= 1.
			if !integer {
				return true
			}
			iv := st.cons.num[id]
			if iv.lo.set && !iv.lo.strict && iv.lo.val == bf {
				return st.cons.addLower(id, bf, true, integer)
			}
			if iv.hi.set && !iv.hi.strict && iv.hi.val == bf {
				return st.cons.addUpper(id, bf, true, integer)
			}
		}
		return true
	}
	if flip {
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	return apply(op)
}

// --- loops ---

// loopInfo is the digested shape of a for/range statement.
type loopInfo struct {
	node    ast.Node
	body    *ast.BlockStmt
	loopVar types.Object // counted loop variable or range key (may be nil)
	valVar  types.Object // range value variable (may be nil)
	rangeX  ast.Expr     // ranged expression (range loops)
	trip    rat
	tripOK  bool
}

func (vr *verifier) forStmt(n *ast.ForStmt, st *state) []outcome {
	sts := []*state{st}
	if n.Init != nil {
		sts = falls(vr.stmt(n.Init, st))
	}
	var outs []outcome
	for _, s0 := range sts {
		info := vr.forShape(n, s0)
		if anno := vr.spendFor[ast.Stmt(n)]; anno != nil {
			outs = append(outs, vr.annotatedLoop(info, anno, s0)...)
		} else {
			outs = append(outs, vr.loopCore(info, s0)...)
		}
	}
	return outs
}

// forShape recognizes `for i := A; i < B; i++` (run after Init executed, so
// the loop variable already holds A) and derives the symbolic trip count.
func (vr *verifier) forShape(n *ast.ForStmt, st *state) loopInfo {
	info := loopInfo{node: n, body: n.Body}
	asn, ok := n.Init.(*ast.AssignStmt)
	if !ok || asn.Tok != token.DEFINE || len(asn.Lhs) != 1 {
		return info
	}
	id, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return info
	}
	obj := vr.pass.TypesInfo.Defs[id]
	cond, ok := n.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return info
	}
	cid, ok := cond.X.(*ast.Ident)
	if !ok || vr.pass.TypesInfo.Uses[cid] != obj {
		return info
	}
	inc, ok := n.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC {
		return info
	}
	iid, ok := inc.X.(*ast.Ident)
	if !ok || vr.pass.TypesInfo.Uses[iid] != obj {
		return info
	}
	info.loopVar = obj
	start, ok := st.lookup(obj)
	if !ok || start.kind != vNum {
		return info
	}
	evs := vr.eval(cond.Y, st)
	if len(evs) != 1 || evs[0].v.kind != vNum {
		return info
	}
	trip := ratSub(evs[0].v.r, start.r)
	if cond.Op == token.LEQ {
		trip = ratAdd(trip, ratFloat(1))
	}
	info.trip = st.cons.substPoints(trip, vr.at)
	info.tripOK = true
	return info
}

func (vr *verifier) rangeStmt(n *ast.RangeStmt, st *state) []outcome {
	info := loopInfo{node: n, body: n.Body, rangeX: n.X}
	if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
		info.loopVar = vr.pass.TypesInfo.Defs[id]
		if info.loopVar == nil {
			info.loopVar = vr.pass.TypesInfo.Uses[id]
		}
	}
	if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
		info.valVar = vr.pass.TypesInfo.Defs[id]
		if info.valVar == nil {
			info.valVar = vr.pass.TypesInfo.Uses[id]
		}
	}
	// `for i := range n` over an integer is a counted loop.
	if t, ok := vr.pass.TypesInfo.Types[n.X]; ok {
		if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			evs := vr.eval(n.X, st)
			if len(evs) == 1 && evs[0].v.kind == vNum {
				info.trip = evs[0].v.r
				info.tripOK = true
			}
		}
	}
	if anno := vr.spendFor[ast.Stmt(n)]; anno != nil {
		return vr.annotatedLoop(info, anno, st)
	}
	return vr.loopCore(info, st)
}

// bindLoopVars gives the loop variable(s) fresh symbolic values for the
// body-once interpretation and returns the loop-variable atom (or -1).
func (vr *verifier) bindLoopVars(info loopInfo, st *state) int {
	iota := -1
	if info.loopVar != nil {
		iota = vr.at.fresh(info.loopVar.Name(), true)
		st.cons.addLower(iota, 0, false, true)
		st.assign(info.loopVar, numVal(ratAtom(iota)))
	}
	if info.valVar != nil {
		bound := false
		if info.rangeX != nil {
			evs := vr.eval(info.rangeX, st)
			if len(evs) == 1 && evs[0].v.kind == vLabels && iota >= 0 {
				st.assign(info.valVar, value{kind: vStr, family: evs[0].v.family, famIdx: ratAtom(iota), famIdxOK: true})
				bound = true
			}
		}
		if !bound {
			st.assign(info.valVar, vr.freshTyped(info.valVar.Type(), info.valVar.Name()))
		}
	}
	return iota
}

// iterDep reports whether r depends on the current iteration: it mentions
// the loop-variable atom or any atom minted during the body interpretation.
func (vr *verifier) iterDep(r rat, iota, mark int) bool {
	if iota >= 0 && r.hasAtom(iota) {
		return true
	}
	return hasAtomGE(r, mark)
}

func hasAtomGE(r rat, mark int) bool {
	if polyHasAtomGE(r.num, mark) {
		return true
	}
	for _, d := range r.den {
		if polyHasAtomGE(d, mark) {
			return true
		}
	}
	return false
}

func polyHasAtomGE(p poly, mark int) bool {
	for m := range p {
		for id := range decodeMono(m) {
			if id >= mark {
				return true
			}
		}
	}
	return false
}

// meterDelta is the per-iteration charge footprint of one meter in a loop
// body, split into the parts that scale with the trip count (seq, famPer)
// and the parts parallel composition dedups (parNew).
type meterDelta struct {
	key    string
	seq    rat
	fam    rat // famSum delta (from nested loops)
	famPer rat // ranged-family per-iteration amount
	parNew []chargeKey
	parEnt map[chargeKey]parEntry
}

func (vr *verifier) loopDeltas(o outcome, snap map[string]*meterState, iota, mark int, info loopInfo, annotated bool) ([]meterDelta, bool) {
	varying := "; annotate the loop with //dp:spends"
	if annotated {
		varying = "; //dp:spends cannot verify a varying per-iteration amount"
	}
	var deltas []meterDelta
	ok := true
	for _, key := range o.st.mOrder {
		ms := o.st.meters[key]
		old, had := snap[key]
		if !had {
			// A sub-meter created inside the body: it must have been closed
			// (its spend then shows up in its parent's delta).
			if !ms.closed && !ms.total().isZero() {
				vr.report(info.node, "sub-meter %q opened in loop body is not closed before the iteration ends", ms.label)
				ok = false
			}
			continue
		}
		d := meterDelta{key: key, parEnt: map[chargeKey]parEntry{}}
		d.seq = ratSub(ms.seq, old.seq)
		d.fam = ratSub(ms.famSum, old.famSum)
		for _, k := range ms.parIdx {
			if _, dup := old.par[k]; dup {
				continue
			}
			e := ms.par[k]
			if vr.iterDep(e.amount, iota, mark) {
				vr.report(info.node, "parallel charge %s has an iteration-dependent amount %s", fmtChargeKey(k), e.amount.render(vr.at))
				ok = false
				continue
			}
			if e.fam && vr.iterDep(e.idx, iota, mark) {
				d.famPer = ratAdd(d.famPer, e.amount)
				continue
			}
			d.parNew = append(d.parNew, k)
			d.parEnt[k] = e
		}
		if vr.iterDep(d.seq, iota, mark) {
			vr.report(info.node, "sequential loop spend %s depends on the iteration%s", d.seq.render(vr.at), varying)
			ok = false
		}
		if vr.iterDep(d.fam, iota, mark) {
			vr.report(info.node, "nested family spend %s depends on the iteration%s", d.fam.render(vr.at), varying)
			ok = false
		}
		if !d.seq.isZero() || !d.fam.isZero() || !d.famPer.isZero() || len(d.parNew) > 0 {
			deltas = append(deltas, d)
		}
	}
	return deltas, ok
}

func (vr *verifier) deltaSignature(deltas []meterDelta) string {
	var b strings.Builder
	for _, d := range deltas {
		fmt.Fprintf(&b, "%s|seq=%s|fam=%s|famPer=%s|", d.key, d.seq.render(vr.at), d.fam.render(vr.at), d.famPer.render(vr.at))
		keys := append([]chargeKey{}, d.parNew...)
		sort.Slice(keys, func(i, j int) bool { return fmtChargeKey(keys[i]) < fmtChargeKey(keys[j]) })
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s,", fmtChargeKey(k), d.parEnt[k].amount.render(vr.at))
		}
		b.WriteString(";")
	}
	return b.String()
}

// scalableSignature is the trip-scaled part only — the part that must agree
// across body branches for the loop total to be path-independent.
func (vr *verifier) scalableSignature(deltas []meterDelta) string {
	var b strings.Builder
	for _, d := range deltas {
		if d.seq.isZero() && d.fam.isZero() && d.famPer.isZero() {
			continue
		}
		fmt.Fprintf(&b, "%s|%s|%s|%s;", d.key, d.seq.render(vr.at), d.fam.render(vr.at), d.famPer.render(vr.at))
	}
	return b.String()
}

// applyScaled rebuilds the continuation meters: pre-loop charges plus
// trip-scaled per-iteration deltas plus the dedup'd parallel entries.
func (vr *verifier) applyScaled(o outcome, snap map[string]*meterState, deltas []meterDelta, trip rat, tripOK bool, info loopInfo) bool {
	for _, d := range deltas {
		scaled := !d.seq.isZero() || !d.fam.isZero() || !d.famPer.isZero()
		if scaled && !tripOK {
			vr.report(info.node, "cannot derive the trip count of a loop with per-iteration spend %s; annotate it with //dp:spends",
				ratAdd(ratAdd(d.seq, d.fam), d.famPer).render(vr.at))
			return false
		}
		old := snap[d.key].clone()
		ms := o.st.meters[d.key]
		ms.seq = ratAdd(old.seq, ratMul(trip, d.seq))
		ms.famSum = ratAdd(old.famSum, ratMul(trip, ratAdd(d.fam, d.famPer)))
		ms.par = make(map[chargeKey]parEntry, len(old.par)+len(d.parNew))
		ms.parIdx = append([]chargeKey{}, old.parIdx...)
		for k, e := range old.par {
			ms.par[k] = e
		}
		for _, k := range d.parNew {
			ms.addPar(k, d.parEnt[k])
		}
	}
	return true
}

// loopCore interprets one loop: charge-free loops are havocked (with
// accumulator-pattern recognition), charging loops are interpreted once and
// their per-iteration footprint is scaled by the symbolic trip count.
func (vr *verifier) loopCore(info loopInfo, st *state) []outcome {
	if !vr.touchesNode(info.body) {
		return vr.chargeFreeLoop(info, st)
	}
	var outs []outcome

	// Zero-trip path: counted loops that may run zero times skip all
	// charges. Range loops over data are assumed non-empty (documented).
	runs := triUnknown
	if info.tripOK {
		runs = st.cons.cmpZero(st.cons.substPoints(info.trip, vr.at), vr.at, ">")
	}
	if info.tripOK && runs == triFalse {
		return fallOut(st) // provably zero iterations
	}
	if info.tripOK && runs == triUnknown {
		zs := st.clone()
		if vr.assume(zs, info.trip, "<=") {
			outs = append(outs, outcome{st: zs, ctl: ctlFall})
		}
		vr.tick(info.node)
	}

	bs := st // the zero-trip path was cloned above; st continues as the run path
	if info.tripOK && runs == triUnknown {
		if !vr.assume(bs, info.trip, ">") {
			return outs // running the loop is infeasible
		}
	}
	flags := vr.monotoneFlags(info.body, bs)
	vr.havocAssigned(info.body, bs)
	flagAtoms := map[types.Object]int{}
	for _, obj := range flags {
		if v, ok := bs.lookup(obj); ok && v.kind == vBool && !v.bSet && v.bAtom >= 0 {
			flagAtoms[obj] = v.bAtom
		}
	}
	iota := vr.bindLoopVars(info, bs)
	mark := len(vr.at.names)
	snap := make(map[string]*meterState, len(bs.meters))
	for k, ms := range bs.meters {
		snap[k] = ms.clone()
	}

	body := vr.block(info.body.List, bs)
	var normal []outcome
	for _, o := range body {
		switch o.ctl {
		case ctlReturn:
			if vr.exemptOutcome(o) {
				outs = append(outs, o)
				continue
			}
			vr.report(o.retPos, "return from inside a budget-charging loop leaves the loop's spend unverifiable")
			o.st.poisoned = true // avoid a cascading total-mismatch report
			outs = append(outs, o)
		case ctlBreak:
			d, _ := vr.loopDeltas(o, snap, iota, mark, info, false)
			for _, dd := range d {
				if !dd.seq.isZero() || !dd.fam.isZero() || !dd.famPer.isZero() {
					vr.report(info.node, "break out of a loop with per-iteration spend leaves the loop total unverifiable")
				}
			}
			outs = append(outs, outcome{st: o.st, ctl: ctlFall})
		default:
			normal = append(normal, outcome{st: o.st, ctl: ctlFall})
		}
	}

	seen := map[string]bool{}
	scalable := map[string]bool{}
	for _, o := range normal {
		deltas, ok := vr.loopDeltas(o, snap, iota, mark, info, false)
		if !ok {
			continue
		}
		ssig := vr.scalableSignature(deltas)
		scalable[ssig] = true
		if len(scalable) > 1 {
			vr.report(info.node, "branch-dependent loop spend: different body paths charge different per-iteration amounts")
			continue
		}
		sig := vr.deltaSignature(deltas)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		if vr.applyScaled(o, snap, deltas, info.trip, info.tripOK, info) {
			vr.settleFlags(flagAtoms, o.st)
			outs = append(outs, o)
		}
	}
	return outs
}

// monotoneFlags finds loop-external bool locals that enter the loop holding
// the constant false and are only ever assigned the literal true inside the
// body — the `found`/`split` idiom. Because such a flag can only go one way,
// an outcome where it still holds its havoc unknown after the body is an
// outcome on which no iteration set it; settleFlags pins the unknown to
// false there. Without this the havoc loses the correlation between "no
// iteration charged" and "the flag is still false", and a compensating
// charge guarded by the flag (PHP's `if !split { m.ChargePar(...) }`) looks
// branch-dependent.
func (vr *verifier) monotoneFlags(body *ast.BlockStmt, st *state) []types.Object {
	eligible := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := vr.pass.TypesInfo.Uses[id]
				if obj == nil {
					// A definition inside the body is iteration-local, not a
					// flag carried across iterations.
					if def := vr.pass.TypesInfo.Defs[id]; def != nil {
						eligible[def] = false
					}
					continue
				}
				if !isBoolType(obj.Type()) {
					continue
				}
				constTrue := false
				if n.Tok == token.ASSIGN && i < len(n.Rhs) {
					if tv, ok := vr.pass.TypesInfo.Types[n.Rhs[i]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
						constTrue = constant.BoolVal(tv.Value)
					}
				}
				if was, seen := eligible[obj]; seen && !was {
					continue
				}
				eligible[obj] = constTrue
			}
		}
		return true
	})
	var flags []types.Object
	for obj, ok := range eligible {
		if !ok {
			continue
		}
		if v, found := st.lookup(obj); found && v.kind == vBool && v.bSet && !v.b {
			flags = append(flags, obj)
		}
	}
	return flags
}

// settleFlags pins monotone flags the selected body shape never set: under
// the one-shape-per-run abstraction no iteration set them, so their
// post-loop value is their pre-loop false.
func (vr *verifier) settleFlags(flagAtoms map[types.Object]int, st *state) {
	for obj, atom := range flagAtoms {
		v, ok := st.lookup(obj)
		if !ok || v.kind != vBool || v.bSet || v.bAtom != atom {
			continue
		}
		if _, bound := st.cons.bool[atom]; !bound {
			st.cons.bool[atom] = false
		}
	}
}

// chargeFreeLoop handles loops without meter operations: recognize the
// budget-building accumulator idioms exactly, otherwise havoc.
func (vr *verifier) chargeFreeLoop(info loopInfo, st *state) []outcome {
	if vr.recognizeAccum(info, st) {
		return fallOut(st)
	}
	hasReturn := false
	ast.Inspect(info.body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			hasReturn = true
		case *ast.FuncLit:
			return false
		}
		return true
	})
	var outs []outcome
	if hasReturn {
		bs := st.clone()
		vr.havocAssigned(info.body, bs)
		vr.bindLoopVars(info, bs)
		for _, o := range vr.block(info.body.List, bs) {
			if o.ctl == ctlReturn {
				outs = append(outs, o)
			}
		}
		vr.tick(info.node)
	}
	vr.havocAssigned(info.body, st)
	if info.loopVar != nil {
		st.assign(info.loopVar, vr.freshTyped(info.loopVar.Type(), info.loopVar.Name()))
	}
	outs = append(outs, outcome{st: st, ctl: ctlFall})
	return outs
}

// havocAssigned replaces everything the statement assigns with fresh
// unknowns (called before and after body-once loop interpretation).
func (vr *verifier) havocAssigned(n ast.Node, st *state) {
	havocLhs := func(lhs ast.Expr) {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return
			}
			obj := vr.pass.TypesInfo.Defs[lhs]
			if obj == nil {
				obj = vr.pass.TypesInfo.Uses[lhs]
			}
			if obj == nil {
				return
			}
			if _, local := st.top().vars[obj]; local || vr.pass.TypesInfo.Defs[lhs] != nil {
				st.assign(obj, vr.freshTyped(obj.Type(), obj.Name()))
			}
		case *ast.IndexExpr:
			if base, ok := lhs.X.(*ast.Ident); ok {
				obj := vr.pass.TypesInfo.Uses[base]
				if obj == nil {
					return
				}
				if v, ok := st.lookup(obj); ok && v.kind == vSlice {
					v.sumKnown = false
					st.assign(obj, v)
				}
			}
		case *ast.SelectorExpr:
			vr.setFieldHavoc(lhs, st)
		case *ast.StarExpr:
			havocLhsInner(lhs.X, st, vr)
		}
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				havocLhs(lhs)
			}
		case *ast.IncDecStmt:
			havocLhs(nn.X)
		case *ast.RangeStmt:
			if nn.Key != nil {
				havocLhs(nn.Key)
			}
			if nn.Value != nil {
				havocLhs(nn.Value)
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

func havocLhsInner(e ast.Expr, st *state, vr *verifier) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		obj := vr.pass.TypesInfo.Uses[id]
		if obj != nil {
			if _, local := st.top().vars[obj]; local {
				st.assign(obj, vr.freshTyped(obj.Type(), obj.Name()))
			}
		}
	}
}

func (vr *verifier) setFieldHavoc(sel *ast.SelectorExpr, st *state) {
	obj := vr.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	evs := vr.eval(sel.X, st)
	if len(evs) != 1 || evs[0].v.kind != vStruct {
		return
	}
	vr.assignTo(sel.X, evs[0].v.withField(sel.Sel.Name, vr.freshTyped(obj.Type(), sel.Sel.Name)), st)
}

// recognizeAccum interprets charge-free loops consisting purely of the
// budget-building idioms:
//
//	acc += S[i]          -> acc += sum(S)
//	acc += e             -> acc += trip*e       (e iteration-independent)
//	out[i] = C * S[i]    -> sum(out) = C * sum(S)
//	out[i] = e           -> sum(out) = trip*e   (e iteration-independent)
//	s = append(s, e)     -> sum(s) += trip*e    (e iteration-independent)
//
// This is what closes GreedyH's weight-normalization (out[i] =
// eps*w[i]/total where total = sum(w) gives sum(out) = eps) and the
// append-per-level budget builders exactly.
func (vr *verifier) recognizeAccum(info loopInfo, st *state) bool {
	// Every statement must be one of the recognized forms. Scalar defines and
	// guard-ifs over body locals (`w := weights[l]; if w < 1 { w = 1 }`) are
	// tolerated: the guarded local simply degrades to a per-iteration unknown.
	for _, s := range info.body.List {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.ASSIGN, token.DEFINE:
			default:
				return false
			}
		case *ast.IfStmt:
			// Validated during processing below.
		default:
			return false
		}
	}
	// Evaluate on a scratch clone with slice reads replaced by placeholders.
	type sliceRead struct {
		obj  types.Object
		beta int
	}
	var reads []sliceRead
	scratch := st.clone()
	placeholderFor := func(obj types.Object) int {
		for _, r := range reads {
			if r.obj == obj {
				return r.beta
			}
		}
		beta := vr.at.fresh("elem:"+obj.Name(), false)
		reads = append(reads, sliceRead{obj: obj, beta: beta})
		return beta
	}
	// Bind loop var and range value var to placeholders in the scratch.
	if info.loopVar != nil {
		iota := vr.at.fresh(info.loopVar.Name(), true)
		scratch.assign(info.loopVar, numVal(ratAtom(iota)))
	}
	var rangeObj types.Object
	if info.valVar != nil && info.rangeX != nil {
		if id, ok := unparen(info.rangeX).(*ast.Ident); ok {
			rangeObj = vr.pass.TypesInfo.Uses[id]
		}
		if rangeObj == nil {
			return false
		}
		scratch.assign(info.valVar, numVal(ratAtom(placeholderFor(rangeObj))))
	}
	// Substitute S[i] reads: pre-scan index expressions; if any indexed read
	// uses a non-loop-var index, bail.
	loopIdent := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && info.loopVar != nil && (vr.pass.TypesInfo.Uses[id] == info.loopVar || vr.pass.TypesInfo.Defs[id] == info.loopVar)
	}
	// Pre-bind every S (read via S[i]) so eval sees the placeholder: we
	// rewrite by assigning a marker value is not possible, so instead we
	// evaluate RHS manually below via evalAccum.
	evalAccum := func(e ast.Expr) (rat, bool) {
		var evalE func(e ast.Expr) (rat, bool)
		evalE = func(e ast.Expr) (rat, bool) {
			switch e := e.(type) {
			case *ast.ParenExpr:
				return evalE(e.X)
			case *ast.IndexExpr:
				if !loopIdent(e.Index) {
					return ratZero(), false
				}
				base, ok := unparen(e.X).(*ast.Ident)
				if !ok {
					return ratZero(), false
				}
				obj := vr.pass.TypesInfo.Uses[base]
				if obj == nil {
					return ratZero(), false
				}
				return ratAtom(placeholderFor(obj)), true
			case *ast.BinaryExpr:
				x, ok1 := evalE(e.X)
				y, ok2 := evalE(e.Y)
				if !ok1 || !ok2 {
					return ratZero(), false
				}
				switch e.Op {
				case token.ADD:
					return ratAdd(x, y), true
				case token.SUB:
					return ratSub(x, y), true
				case token.MUL:
					return ratMul(x, y), true
				case token.QUO:
					q, ok := ratDiv(x, y)
					return q, ok
				}
				return ratZero(), false
			default:
				evs := vr.eval(e, scratch)
				if len(evs) != 1 || evs[0].v.kind != vNum {
					return ratZero(), false
				}
				return evs[0].v.r, true
			}
		}
		return evalE(e)
	}
	sliceSum := func(obj types.Object) (rat, bool) {
		v, ok := st.lookup(obj)
		if !ok {
			return ratZero(), false
		}
		if v.kind != vSlice {
			return ratZero(), false
		}
		if !v.sumKnown {
			// Materialize an unknown total once so correlated loops share it.
			sig := vr.at.fresh("sum:"+obj.Name(), false)
			v.sum = ratAtom(sig)
			v.sumKnown = true
			st.assign(obj, v)
		}
		return v.sum, true
	}
	// Updates apply sequentially: a slice written earlier in the body reads
	// back its updated sum (cube[l] = f(w); total += cube[l]).
	apply := func(obj types.Object, v value) {
		st.assign(obj, v)
		scratch.assign(obj, v)
	}
	locals := map[types.Object]bool{}
	dirty := func(obj types.Object) {
		d := vr.at.fresh("iter:"+obj.Name(), false)
		reads = append(reads, sliceRead{obj: nil, beta: d})
		scratch.assign(obj, numVal(ratAtom(d)))
	}
	for _, s := range info.body.List {
		if ifs, ok := s.(*ast.IfStmt); ok {
			// A guard over body locals: both branches conflate, the guarded
			// locals become per-iteration unknowns.
			if ifs.Else != nil || ifs.Init != nil {
				return false
			}
			for _, bs := range ifs.Body.List {
				a, ok := bs.(*ast.AssignStmt)
				if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
					return false
				}
				id, ok := unparen(a.Lhs[0]).(*ast.Ident)
				if !ok {
					return false
				}
				obj := vr.pass.TypesInfo.Uses[id]
				if obj == nil || !locals[obj] {
					return false
				}
				dirty(obj)
			}
			continue
		}
		a := s.(*ast.AssignStmt)
		lhs, rhs := a.Lhs[0], a.Rhs[0]
		if a.Tok == token.DEFINE {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				return false
			}
			obj := vr.pass.TypesInfo.Defs[id]
			if obj == nil || (!isFloatType(obj.Type()) && !isIntType(obj.Type())) {
				return false
			}
			r, ok := evalAccum(rhs)
			if !ok {
				return false
			}
			locals[obj] = true
			scratch.assign(obj, numVal(r))
			continue
		}
		if a.Tok == token.ASSIGN {
			if id, call, ok := appendSelf(lhs, rhs); ok {
				// s = append(s, e): the call itself is not a numeric
				// expression, so dispatch on shape before evalAccum sees it.
				obj := vr.pass.TypesInfo.Uses[id]
				if obj == nil {
					return false
				}
				cur, ok := st.lookup(obj)
				if !ok || cur.kind != vSlice || !cur.sumKnown {
					return false
				}
				r2, ok := evalAccum(call.Args[1])
				if !ok {
					return false
				}
				for _, rd := range reads {
					if r2.hasAtom(rd.beta) {
						return false
					}
				}
				if info.loopVar != nil {
					if v, ok := scratch.lookup(info.loopVar); ok && v.kind == vNum {
						for m := range v.r.num {
							for id := range decodeMono(m) {
								if r2.hasAtom(id) {
									return false
								}
							}
						}
					}
				}
				if !info.tripOK {
					return false
				}
				cur.sum = ratAdd(cur.sum, ratMul(info.trip, r2))
				cur.nonNil = triTrue
				apply(obj, cur)
				continue
			}
		}
		r, ok := evalAccum(rhs)
		if !ok {
			return false
		}
		iterIndep := true
		var usedBeta []sliceRead
		for _, rd := range reads {
			if r.hasAtom(rd.beta) {
				usedBeta = append(usedBeta, rd)
				iterIndep = false
			}
		}
		if info.loopVar != nil {
			if v, ok := scratch.lookup(info.loopVar); ok && v.kind == vNum {
				for m := range v.r.num {
					for id := range decodeMono(m) {
						if r.hasAtom(id) {
							iterIndep = false
						}
					}
				}
			}
		}
		switch a.Tok {
		case token.ADD_ASSIGN:
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				return false
			}
			obj := vr.pass.TypesInfo.Uses[id]
			if obj == nil {
				return false
			}
			cur, ok := st.lookup(obj)
			if !ok || cur.kind != vNum {
				return false
			}
			switch {
			case len(usedBeta) == 1 && ratEqual(r, ratAtom(usedBeta[0].beta)):
				sum, ok := sliceSum(usedBeta[0].obj)
				if !ok {
					return false
				}
				apply(obj, numVal(ratAdd(cur.r, sum)))
			case iterIndep && info.tripOK:
				apply(obj, numVal(ratAdd(cur.r, ratMul(info.trip, r))))
			default:
				return false
			}
		case token.ASSIGN:
			// out[i] = e or s = append(s, e)
			if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
				if !loopIdent(ix.Index) {
					return false
				}
				base, ok := unparen(ix.X).(*ast.Ident)
				if !ok {
					return false
				}
				obj := vr.pass.TypesInfo.Uses[base]
				if obj == nil {
					return false
				}
				cur, ok := st.lookup(obj)
				if !ok || cur.kind != vSlice {
					return false
				}
				switch {
				case len(usedBeta) == 1:
					beta := usedBeta[0]
					c, ok := ratDiv(r, ratAtom(beta.beta))
					if !ok || c.hasAtom(beta.beta) {
						return false
					}
					sum, ok := sliceSum(beta.obj)
					if !ok {
						return false
					}
					cur.sum = ratMul(c, sum)
					cur.sumKnown = true
					apply(obj, cur)
				case iterIndep && info.tripOK:
					cur.sum = ratMul(info.trip, r)
					cur.sumKnown = true
					apply(obj, cur)
				default:
					return false
				}
				continue
			}
			// Plain scalar reassignment: appendSelf handled the append shape
			// before evalAccum; anything else is not an accumulator.
			return false
		}
	}
	if info.loopVar != nil {
		st.assign(info.loopVar, vr.freshTyped(info.loopVar.Type(), info.loopVar.Name()))
	}
	if info.valVar != nil {
		st.assign(info.valVar, vr.freshTyped(info.valVar.Type(), info.valVar.Name()))
	}
	return true
}

// appendSelf matches the `s = append(s, e)` accumulator shape.
func appendSelf(lhs, rhs ast.Expr) (*ast.Ident, *ast.CallExpr, bool) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil, nil, false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return nil, nil, false
	}
	src, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok || src.Name != id.Name {
		return nil, nil, false
	}
	return id, call, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exemptOutcome reports whether a return outcome is audit-exempt: the meter
// is poisoned (Audit reports the failure, not the totals) or the function
// provably returns a non-nil error (ExecuteAudited skips the audit).
func (vr *verifier) exemptOutcome(o outcome) bool {
	if o.st.poisoned {
		return true
	}
	if len(o.results) == 0 {
		return false
	}
	last := o.results[len(o.results)-1]
	return (last.kind == vErr || last.kind == vOpaque) && last.errNonNil == triTrue
}
