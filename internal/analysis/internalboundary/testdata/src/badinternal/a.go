// An internal package importing its own wrapper: the reverse-direction
// violation the grep step could never see.
package badinternal

import _ "dpbench/privacy" // want `internal package dpbench/internal/badinternal imports facade dpbench/privacy`
