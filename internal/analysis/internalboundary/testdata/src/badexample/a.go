// An example reaching past the facade: the exact pattern the old grep-based
// CI step existed to catch.
package main

import "dpbench/internal/noise" // want `imports dpbench/internal/noise: dpbench/internal is reachable only through the facade packages`

var _ noise.Plan

func main() {}
