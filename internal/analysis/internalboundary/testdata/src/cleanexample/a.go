// An example using only the facade: no findings.
package main

import (
	_ "dpbench/privacy"
	_ "dpbench/release"
)

func main() {}
