// Package internalboundary enforces the facade architecture from PR 5: the
// only sanctioned doors into dpbench/internal are the facade packages
// (dpbench, dpbench/release, dpbench/privacy) and the binaries under cmd/.
// Examples — the code users copy — must demonstrate the supported surface,
// not the internals, so the API lock in api_lock_test.go keeps meaning
// something. The rule also runs in reverse: internal packages must not
// import a facade, both to keep the dependency graph acyclic and to stop
// the internals from growing load-bearing knowledge of their own wrapper.
//
// This analyzer replaces the old grep-based CI step
// (`! grep -rn "dpbench/internal" examples/`), which could not distinguish
// an import from a comment and knew nothing about the reverse direction.
package internalboundary

import (
	"strconv"
	"strings"

	"dpbench/internal/analysis"
)

// Analyzer is the internalboundary pass.
var Analyzer = &analysis.Analyzer{
	Name: "internalboundary",
	Doc:  "dpbench/internal may only be imported via the facade packages and cmd/; internal must not import the facade",
	Run:  run,
}

// facades are the public packages allowed to wrap dpbench/internal.
var facades = map[string]bool{
	"dpbench":         true,
	"dpbench/release": true,
	"dpbench/privacy": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	path := pass.Pkg.Path()
	isInternal := path == "dpbench/internal" || strings.HasPrefix(path, "dpbench/internal/")
	mayImportInternal := isInternal || facades[path] || strings.HasPrefix(path, "dpbench/cmd/")
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			target, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case !mayImportInternal && (target == "dpbench/internal" || strings.HasPrefix(target, "dpbench/internal/")):
				pass.Reportf(spec.Pos(), "%s imports %s: dpbench/internal is reachable only through the facade packages (dpbench, dpbench/release, dpbench/privacy) and cmd/; use the facade instead", path, target)
			case isInternal && facades[target]:
				pass.Reportf(spec.Pos(), "internal package %s imports facade %s: the facade wraps the internals, never the other way around; move the shared code under dpbench/internal", path, target)
			}
		}
	}
	return nil
}
