package internalboundary

import (
	"path/filepath"
	"testing"

	"dpbench/internal/analysis/analysistest"
)

func TestBadExample(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "badexample"), "dpbench/examples/bad")
}

func TestCleanExample(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "cleanexample"), "dpbench/examples/clean")
}

func TestBadInternal(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, Analyzer, filepath.Join("testdata", "src", "badinternal"), "dpbench/internal/badinternal")
}
