package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallFacts is what the report phase learns about one call site: the
// resolved effect (argument indices include the receiver at 0 for method
// calls), the callee's declaration if it is in this package, and the
// abstract argument values.
type CallFacts struct {
	Effect Effect
	Callee *Func
	Args   []Val
	// ArgExprs aligns with Args: receiver expression first for methods.
	ArgExprs []ast.Expr
	// BranchArgs marks arguments that feed a branch condition inside the
	// callee (transitively).
	BranchArgs uint64
}

// Facts recomputes the resolved call facts for a call site after the
// fixpoint has converged; report phases use it to check sink writes,
// branch taint, and error/response sinks at each site.
func (e *Engine) Facts(f *Func, call *ast.CallExpr) CallFacts {
	return e.callFacts(f, call)
}

// evalCall applies a call's effect to the store and returns its result.
func (e *Engine) evalCall(f *Func, call *ast.CallExpr) Val {
	// Conversions: T(x) propagates x.
	if tv, ok := e.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.eval(f, call.Args[0])
		}
		return Val{}
	}
	facts := e.callFacts(f, call)
	// Apply argument writes and sanitization to the caller's store.
	for idx, wv := range facts.Effect.ArgWrites {
		if idx < len(facts.ArgExprs) && facts.ArgExprs[idx] != nil {
			e.writeElem(f, facts.ArgExprs[idx], wv)
		}
	}
	for idx, k := range facts.Effect.Sanitize {
		if idx < len(facts.ArgExprs) && facts.ArgExprs[idx] != nil {
			e.sanitizeArg(f, facts.ArgExprs[idx], k)
		}
	}
	// Record symbolic sink flows for the summary.
	for _, idx := range facts.Effect.ErrSinkArgs {
		if idx < len(facts.Args) {
			e.raiseBits(&f.sum.ErrSink, facts.Args[idx].Deps)
		}
	}
	for _, idx := range facts.Effect.RespSinkArgs {
		if idx < len(facts.Args) {
			e.raiseBits(&f.sum.RespSink, facts.Args[idx].Deps)
		}
	}
	for _, idx := range facts.Effect.LedgerSinkArgs {
		if idx < len(facts.Args) {
			e.raiseBits(&f.sum.LedgerSink, facts.Args[idx].Deps)
		}
	}
	// Branch taint crossing the call: symbolic part into our summary.
	for i, av := range facts.Args {
		if facts.BranchArgs&(1<<uint(i)) != 0 {
			e.raiseBits(&f.sum.Branch, av.Deps)
		}
	}
	return facts.Effect.Result
}

// callFacts computes a call's effect: builtin, same-package summary, model
// hook, or the default conservative rule, in that order of specificity.
func (e *Engine) callFacts(f *Func, call *ast.CallExpr) CallFacts {
	argExprs, args := e.callArgs(f, call)
	facts := CallFacts{Args: args, ArgExprs: argExprs}

	// Builtins first: they have no object summaries.
	if eff, ok := e.builtinEffect(f, call, args); ok {
		facts.Effect = eff
		return facts
	}

	callee := e.calleeObj(call)
	if callee != nil {
		if cf, ok := e.byObj[callee]; ok {
			facts.Callee = cf
			facts.Effect = e.resolveSummary(cf, args)
			facts.BranchArgs = cf.sum.Branch
			return facts
		}
	}

	// Model hook for calls with no visible body.
	if eff, ok := e.model.Call(e.pass.TypesInfo, call, args); ok {
		facts.Effect = eff
		return facts
	}

	// Calls through a variable bound to a func literal: the literal's body
	// was interpreted inline (shared store), so its recorded result is
	// exact up to the closure's own parameters.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := e.pass.TypesInfo.Uses[id]; obj != nil {
			if lit, bound := f.closureVars[obj]; bound {
				facts.Effect = Effect{Result: f.closureResult[lit]}
				return facts
			}
		}
	}

	// Default rule: combine every argument; the combination is the result
	// and is written through each mutable argument. Error results are the
	// exception: taint entering an error is checked at the construction
	// sink, so the opaque value is public.
	combined := CombineAll(args)
	eff := Effect{Result: combined}
	if tv, ok := e.pass.TypesInfo.Types[call]; ok && isErrorType(tv.Type) {
		eff.Result = Val{}
	}
	for i, ae := range argExprs {
		if ae != nil && i < len(args) && e.mutableArg(ae) {
			if eff.ArgWrites == nil {
				eff.ArgWrites = map[int]Val{}
			}
			eff.ArgWrites[i] = combined
		}
	}
	facts.Effect = eff
	return facts
}

// callArgs flattens a call's receiver (for methods) and arguments into the
// effect index space, evaluating each.
func (e *Engine) callArgs(f *Func, call *ast.CallExpr) ([]ast.Expr, []Val) {
	var exprs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj, isFn := e.pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn && obj != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				exprs = append(exprs, sel.X)
			}
		}
	}
	exprs = append(exprs, call.Args...)
	vals := make([]Val, len(exprs))
	for i, ae := range exprs {
		vals[i] = e.eval(f, ae)
	}
	return exprs, vals
}

// calleeObj resolves a call to its static callee, if any.
func (e *Engine) calleeObj(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := e.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := e.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveSummary instantiates a callee's symbolic summary against concrete
// argument values. Substitution uses Combine, so a helper that returns
// a+b sanitizes when one argument is a pure draw — same rule as inlining
// the body would give.
func (e *Engine) resolveSummary(cf *Func, args []Val) Effect {
	eff := Effect{Result: resolveVal(cf.sum.Result, args)}
	for idx, wv := range cf.sum.Writes {
		if eff.ArgWrites == nil {
			eff.ArgWrites = map[int]Val{}
		}
		eff.ArgWrites[idx] = Join(eff.ArgWrites[idx], resolveVal(wv, args))
	}
	for idx, k := range cf.sum.Sanitizes {
		if eff.Sanitize == nil {
			eff.Sanitize = map[int]Kind{}
		}
		eff.Sanitize[idx] = k
	}
	// Symbolic field writes resolve here: the caller's concrete argument
	// taints the field globally.
	for key, wv := range cf.sum.FieldWrites {
		rv := resolveVal(wv, args)
		e.raiseField(key, rv.K)
	}
	// Sink flows: a concrete Priv argument reaching a sink inside the
	// callee is reported by the report phase via Facts; here only the
	// symbolic part is threaded (done by evalCall through ErrSinkArgs).
	eff.ErrSinkArgs = bitsToIdx(cf.sum.ErrSink, len(args))
	eff.RespSinkArgs = bitsToIdx(cf.sum.RespSink, len(args))
	eff.LedgerSinkArgs = bitsToIdx(cf.sum.LedgerSink, len(args))
	return eff
}

// resolveVal substitutes concrete argument values for a summary value's
// parameter dependencies, combining (not joining) so draws sanitize.
func resolveVal(v Val, args []Val) Val {
	out := Val{K: v.K}
	for i := 0; i < len(args) && i < 64; i++ {
		if v.Deps&(1<<uint(i)) != 0 {
			out = Combine(out, args[i])
		}
	}
	// Dependencies beyond the supplied argument list (variadic quirk):
	// keep them symbolic only if they could still bind; they cannot, so
	// drop them — the concrete part already includes the callee's own
	// contribution.
	return out
}

// bitsToIdx expands a parameter bitset into indices bounded by n.
func bitsToIdx(bits uint64, n int) []int {
	if bits == 0 {
		return nil
	}
	var out []int
	for i := 0; i < n && i < 64; i++ {
		if bits&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// sanitizeArg strong-cleanses the local variable (or records the parameter
// sanitize) behind an argument expression, peeling slices.
func (e *Engine) sanitizeArg(f *Func, arg ast.Expr, k Kind) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj := e.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = e.pass.TypesInfo.Defs[x]
		}
		e.sanitizeVar(f, obj, k)
	case *ast.SliceExpr:
		e.sanitizeArg(f, x.X, k)
	case *ast.SelectorExpr:
		// Sanitizing a field write: the field now holds released values,
		// but other writers may still taint it; record as a field write of
		// the sanitize class rather than a lock.
		if key, ok := e.fieldKeyOf(x); ok {
			e.raiseField(key, k)
		}
	}
}

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// mutableArg reports whether an argument expression has a type a callee
// could write through.
func (e *Engine) mutableArg(arg ast.Expr) bool {
	t := e.pass.TypesInfo.Types[arg].Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan:
		return true
	}
	return false
}

// builtinEffect models the builtins the taint analysis cares about.
func (e *Engine) builtinEffect(f *Func, call *ast.CallExpr, args []Val) (Effect, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return Effect{}, false
	}
	if _, isBuiltin := e.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return Effect{}, false
	}
	switch id.Name {
	case "copy":
		// copy(dst, src): dst receives src's taint.
		eff := Effect{}
		if len(args) == 2 {
			eff.ArgWrites = map[int]Val{0: args[1]}
		}
		return eff, true
	case "append":
		// The result (and backing array) holds the join of everything.
		var out Val
		for _, a := range args {
			out = Join(out, a)
		}
		return Effect{Result: out, ArgWrites: map[int]Val{0: out}}, true
	case "len", "cap":
		// Container length is shape, kept public by the engine's design:
		// mechanisms size buffers by domain, not by data. A data-dependent
		// length would be built from tainted writes the analysis flags at
		// the write site instead.
		return Effect{}, true
	case "make", "new", "min", "max", "real", "imag", "complex":
		var out Val
		if id.Name == "min" || id.Name == "max" {
			for _, a := range args {
				out = Join(out, a)
			}
		}
		return Effect{Result: out}, true
	case "clear", "delete", "close", "panic", "print", "println", "recover":
		return Effect{}, true
	}
	return Effect{}, false
}

// CallGraphReachable computes the same-package functions reachable from the
// given roots through static calls (closures count as their enclosing
// function). Analyzers use it to scope branch-taint checks to the
// execution phase of the Plan/Execute split.
func (e *Engine) CallGraphReachable(roots []*Func) map[*Func]bool {
	reach := map[*Func]bool{}
	var visit func(f *Func)
	visit = func(f *Func) {
		if f == nil || reach[f] {
			return
		}
		reach[f] = true
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := e.calleeObj(call); obj != nil {
				if cf, ok := e.byObj[obj]; ok {
					visit(cf)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}
	return reach
}

// PublicAt exposes the //dp:public line check to analyzers (for
// exempting annotated report sites).
func (e *Engine) PublicAt(pos token.Pos) bool { return e.pubAt(pos) }

// ParamIndexOf returns the parameter index of an identifier in f, if it is
// one of f's parameters (receiver is 0 for methods).
func (e *Engine) ParamIndexOf(f *Func, id *ast.Ident) (int, bool) {
	obj := e.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = e.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return 0, false
	}
	idx, ok := f.params[obj]
	return idx, ok
}
