package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walkStmt interprets one statement flow-insensitively: assignments join
// into the store, calls apply their effects, control-flow statements record
// branch dependencies, returns join into the summary result.
func (e *Engine) walkStmt(f *Func, s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			e.walkStmt(f, inner)
		}
	case *ast.AssignStmt:
		e.walkAssign(f, st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				forcePub := e.pubAt(vs.Pos())
				for i, name := range vs.Names {
					var v Val
					if i < len(vs.Values) {
						v = e.eval(f, vs.Values[i])
					} else if len(vs.Values) == 1 {
						v = e.eval(f, vs.Values[0])
					}
					if forcePub {
						v = Val{}
					}
					e.setVar(f, e.pass.TypesInfo.Defs[name], v)
				}
				// Evaluate a multi-name single-call spec once for effects.
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					e.eval(f, vs.Values[0])
				}
			}
		}
	case *ast.ExprStmt:
		e.eval(f, st.X)
	case *ast.IncDecStmt:
		e.writeLValue(f, st.X, e.eval(f, st.X))
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			e.raiseResult(f, e.eval(f, res))
		}
	case *ast.IfStmt:
		e.walkStmt(f, st.Init)
		e.branchCond(f, st.Cond)
		e.walkStmt(f, st.Body)
		e.walkStmt(f, st.Else)
	case *ast.ForStmt:
		e.walkStmt(f, st.Init)
		if st.Cond != nil {
			e.branchCond(f, st.Cond)
		}
		e.walkStmt(f, st.Post)
		e.walkStmt(f, st.Body)
	case *ast.RangeStmt:
		e.walkRange(f, st)
	case *ast.SwitchStmt:
		e.walkStmt(f, st.Init)
		if st.Tag != nil {
			e.branchCond(f, st.Tag)
		}
		e.walkStmt(f, st.Body)
	case *ast.TypeSwitchStmt:
		e.walkStmt(f, st.Init)
		e.walkStmt(f, st.Assign)
		e.walkStmt(f, st.Body)
	case *ast.CaseClause:
		for _, expr := range st.List {
			e.eval(f, expr)
		}
		for _, inner := range st.Body {
			e.walkStmt(f, inner)
		}
	case *ast.SelectStmt:
		e.walkStmt(f, st.Body)
	case *ast.CommClause:
		e.walkStmt(f, st.Comm)
		for _, inner := range st.Body {
			e.walkStmt(f, inner)
		}
	case *ast.SendStmt:
		e.writeLValue(f, st.Chan, e.eval(f, st.Value))
	case *ast.DeferStmt:
		e.eval(f, st.Call)
	case *ast.GoStmt:
		e.eval(f, st.Call)
	case *ast.LabeledStmt:
		e.walkStmt(f, st.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// walkAssign joins each RHS value into its LHS target, honoring a
// //dp:public annotation on the statement's line (or the line above).
func (e *Engine) walkAssign(f *Func, st *ast.AssignStmt) {
	forcePub := e.pubAt(st.Pos())
	switch {
	case len(st.Lhs) == len(st.Rhs):
		for i := range st.Lhs {
			// Bind `v := func(...) {...}` so calls through v can use the
			// literal's recorded result.
			if lit, ok := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); ok {
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					obj := e.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = e.pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						f.closureVars[obj] = lit
					}
				}
			}
			v := e.eval(f, st.Rhs[i])
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				// Compound assignment (+=, etc.): arithmetic combine.
				v = Combine(e.eval(f, st.Lhs[i]), v)
			}
			if forcePub {
				v = Val{}
			}
			e.writeLValue(f, st.Lhs[i], v)
		}
	case len(st.Rhs) == 1:
		// Tuple assignment: every LHS gets the joined result — except a
		// comma-ok boolean (map index, type assertion, channel receive),
		// which reveals presence/shape, not contents.
		v := e.eval(f, st.Rhs[0])
		if forcePub {
			v = Val{}
		}
		commaOK := false
		switch ast.Unparen(st.Rhs[0]).(type) {
		case *ast.IndexExpr, *ast.TypeAssertExpr, *ast.UnaryExpr:
			commaOK = len(st.Lhs) == 2
		}
		for i, lhs := range st.Lhs {
			lv := v
			if commaOK && i == 1 {
				lv = Val{}
			}
			e.writeLValue(f, lhs, lv)
		}
	}
}

// walkRange models `for k, v := range X`: slice indices are public, values
// (and map keys) carry the container's taint; the body is interpreted
// normally. Ranging over a tainted container is itself branch-relevant:
// iteration count is data shape, which the range-over-int and slice forms
// expose only through len, kept public by design — so range conditions are
// not branch sinks.
func (e *Engine) walkRange(f *Func, st *ast.RangeStmt) {
	cv := e.eval(f, st.X)
	t := e.pass.TypesInfo.Types[st.X].Type
	keyVal := cv
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Basic, *types.Chan:
			keyVal = Val{} // index / element count position: public
		}
	}
	if st.Key != nil {
		e.writeLValue(f, st.Key, keyVal)
	}
	if st.Value != nil {
		e.writeLValue(f, st.Value, cv)
	}
	e.walkStmt(f, st.Body)
}

// branchCond evaluates a branch condition, recording symbolic parameter
// dependence in the summary. Concrete Priv conditions are the report
// phase's business (Eval is repeatable), not recorded here.
func (e *Engine) branchCond(f *Func, cond ast.Expr) {
	v := e.eval(f, cond)
	e.raiseBits(&f.sum.Branch, v.Deps)
}

// writeLValue routes a written value to the right abstract cell: local
// variable, parameter write, struct field, or package-level variable. The
// root of an index/star/slice chain receives the element write (writing a
// private value into out[i] taints out).
func (e *Engine) writeLValue(f *Func, lhs ast.Expr, v Val) {
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := e.pass.TypesInfo.Defs[x]
		if obj == nil {
			obj = e.pass.TypesInfo.Uses[x]
		}
		if obj == nil {
			return
		}
		if isErrorType(obj.Type()) {
			// Error values carry no taint: what goes INTO an error is
			// checked at the construction sink (fmt.Errorf / errors.New),
			// so the opaque value flowing onward — err != nil branches,
			// %w wrapping, returns — stays public. Without this, every
			// call that takes the histogram taints its error result and
			// the following nil check.
			v = Val{}
		}
		if idx, ok := f.params[obj]; ok {
			// Rebinding the parameter variable itself; track as a write so
			// later reads stay sound (joined via Sanitizes/deps is moot —
			// treat like a pointee write).
			e.raiseWrite(f, idx, v)
			return
		}
		if e.isPackageLevel(obj) {
			e.raiseGlobal(obj, v.K)
			return
		}
		e.setVar(f, obj, v)
	case *ast.ParenExpr:
		e.writeLValue(f, x.X, v)
	case *ast.IndexExpr:
		e.eval(f, x.Index)
		e.writeElem(f, x.X, v)
	case *ast.StarExpr:
		e.writeElem(f, x.X, v)
	case *ast.SliceExpr:
		e.writeElem(f, x.X, v)
	case *ast.SelectorExpr:
		if key, ok := e.fieldKeyOf(x); ok {
			e.writeField(f, key, v)
			return
		}
		// Cross-package field or package-level var in this package.
		if obj := e.pass.TypesInfo.Uses[x.Sel]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && obj.Pkg() == e.pass.Pkg && e.isPackageLevel(obj) {
				e.raiseGlobal(obj, v.K)
				return
			}
		}
		e.writeElem(f, x.X, v)
	}
}

// writeElem records a write through a container/pointer expression: if the
// base is a parameter the write lands in the summary; if it is a local the
// local's taint is raised (the container now holds the value); fields raise
// the global field taint.
func (e *Engine) writeElem(f *Func, base ast.Expr, v Val) {
	switch x := ast.Unparen(base).(type) {
	case *ast.Ident:
		obj := e.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = e.pass.TypesInfo.Defs[x]
		}
		if obj == nil {
			return
		}
		if idx, ok := f.params[obj]; ok {
			if k, sanitized := f.sum.Sanitizes[idx]; sanitized && v.K <= k && v.Deps == 0 {
				return
			}
			e.raiseWrite(f, idx, v)
			return
		}
		if e.isPackageLevel(obj) {
			e.raiseGlobal(obj, v.K)
			return
		}
		if _, sanitized := f.sanitized[obj]; sanitized {
			// Sanitization is final and flow-insensitive: once a buffer
			// crosses a metered draw anywhere in the function it counts as
			// released everywhere (the in-place compute→noise→infer idiom
			// writes raw sums first). The ordering unsoundness — re-tainting
			// a buffer AFTER its draw and releasing it — is documented in
			// the package comment.
			return
		}
		e.setVar(f, obj, v)
	case *ast.SelectorExpr:
		if key, ok := e.fieldKeyOf(x); ok {
			e.writeField(f, key, v)
			return
		}
		e.writeElem(f, x.X, v)
	case *ast.IndexExpr:
		e.writeElem(f, x.X, v)
	case *ast.SliceExpr:
		e.writeElem(f, x.X, v)
	case *ast.StarExpr:
		e.writeElem(f, x.X, v)
	case *ast.CallExpr:
		// Writing through a call result (rare); nothing to attribute.
		e.eval(f, x)
	}
}
